// Tests for the FCMA pipeline stages: correlation buffer layout, equality of
// the baseline and optimized stage-1/2 implementations, merged-vs-separated
// equivalence (the Table 7 correctness precondition), the per-voxel SVM
// stage, the memory model's paper regimes, and the instrumented pipeline's
// event orderings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>

#include "fcma/corr_norm.hpp"
#include "fcma/memory_model.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/task.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "stats/stats.hpp"

namespace fcma::core {
namespace {

fmri::Dataset small_dataset() {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 128;
  spec.informative = 24;
  return fmri::generate_synthetic(spec);
}

// Large enough that one task's correlation buffer exceeds the simulated
// Phi L2 (512KB) — the regime where the paper's cache effects live.
fmri::Dataset cache_pressure_dataset() {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 2048;
  spec.informative = 64;
  return fmri::generate_synthetic(spec);
}

float max_diff(const linalg::Matrix& a, const linalg::Matrix& b) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

TEST(Partition, SplitsVoxelsEvenly) {
  const auto tasks = partition_voxels(100, 30);
  ASSERT_EQ(tasks.size(), 4u);
  EXPECT_EQ(tasks[0].first, 0u);
  EXPECT_EQ(tasks[0].count, 30u);
  EXPECT_EQ(tasks[3].first, 90u);
  EXPECT_EQ(tasks[3].count, 10u);
}

TEST(Partition, CoversEveryVoxelExactlyOnce) {
  const auto tasks = partition_voxels(77, 13);
  std::vector<int> hits(77, 0);
  for (const auto& t : tasks) {
    for (std::uint32_t v = t.first; v < t.first + t.count; ++v) ++hits[v];
  }
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Partition, ZeroPerTaskThrows) {
  EXPECT_THROW(partition_voxels(10, 0), Error);
}

TEST(Partition, RejectsVoxelCountsBeyondThe32BitTaskRange) {
  // Regression: the old code cast total_voxels straight into the uint32_t
  // VoxelTask fields, silently wrapping for brains (or stress configs)
  // beyond 2^32 voxels.  The guard must throw instead of truncating.
  if constexpr (sizeof(std::size_t) > 4) {
    const std::size_t beyond =
        static_cast<std::size_t>(UINT32_MAX) + std::size_t{7};
    EXPECT_THROW(partition_voxels(beyond, 1u << 20), Error);
  }
}

// ---------------------------------------------------------------------------
// Stage 1/2: layout and cross-implementation equality
// ---------------------------------------------------------------------------

TEST(CorrStage, BufferRowsHoldPearsonCorrelations) {
  // Spot-check the un-normalized correlation values against stats::pearson
  // by re-deriving them from the Fisher/z-scored buffer is hard; instead
  // run stage 1 only (via the optimized separated path before
  // normalization is applied: use baseline gemm directly on a single
  // epoch).  Here we verify through the public API: compute the buffer,
  // then check voxel grouping/interleaving by comparing two tasks.
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();

  // Full-brain task vs a 1-voxel task at voxel 5: rows must match.
  const VoxelTask all{0, 16};
  const VoxelTask one{5, 1};
  linalg::Matrix buf_all = make_corr_buffer(all, m, d.voxels());
  linalg::Matrix buf_one = make_corr_buffer(one, m, d.voxels());
  optimized_correlate_normalize(ne, all, buf_all.view(), NormMode::kMerged);
  optimized_correlate_normalize(ne, one, buf_one.view(), NormMode::kMerged);
  for (std::size_t e = 0; e < m; ++e) {
    for (std::size_t j = 0; j < d.voxels(); ++j) {
      EXPECT_EQ(buf_one(e, j), buf_all(5 * m + e, j));
    }
  }
}

TEST(CorrStage, BaselineAndOptimizedAgree) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();
  const VoxelTask task{8, 12};
  linalg::Matrix base = make_corr_buffer(task, m, d.voxels());
  linalg::Matrix opt = make_corr_buffer(task, m, d.voxels());
  baseline_correlate_normalize(ne, task, base.view());
  optimized_correlate_normalize(ne, task, opt.view(), NormMode::kSeparated);
  EXPECT_LE(max_diff(base, opt), 2e-3f);
}

TEST(CorrStage, MergedAndSeparatedAgree) {
  // The Table 7 precondition: fusing stage 2 into stage 1 must not change
  // results.
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();
  const VoxelTask task{0, 16};
  linalg::Matrix merged = make_corr_buffer(task, m, d.voxels());
  linalg::Matrix separated = make_corr_buffer(task, m, d.voxels());
  optimized_correlate_normalize(ne, task, merged.view(), NormMode::kMerged);
  optimized_correlate_normalize(ne, task, separated.view(),
                                NormMode::kSeparated);
  EXPECT_LE(max_diff(merged, separated), 2e-3f);
}

TEST(CorrStage, InstrumentedTwinsMatchFastPaths) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();
  const VoxelTask task{4, 6};
  linalg::Matrix fast = make_corr_buffer(task, m, d.voxels());
  linalg::Matrix slow = make_corr_buffer(task, m, d.voxels());

  optimized_correlate_normalize(ne, task, fast.view(), NormMode::kMerged);
  memsim::Instrument ins;
  optimized_correlate_normalize_instrumented(ne, task, slow.view(),
                                             NormMode::kMerged, ins);
  EXPECT_LE(max_diff(fast, slow), 2e-3f);

  baseline_correlate_normalize(ne, task, fast.view());
  memsim::Instrument ins2;
  baseline_correlate_normalize_instrumented(ne, task, slow.view(), ins2);
  EXPECT_LE(max_diff(fast, slow), 2e-3f);
}

TEST(CorrStage, NormalizationPopulationIsPerSubjectColumn) {
  // After stage 2, for any (voxel, column), the values across one subject's
  // epochs must be z-scored: zero mean, unit variance.
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();
  const std::size_t eps = d.epochs_per_subject();
  const VoxelTask task{0, 4};
  linalg::Matrix buf = make_corr_buffer(task, m, d.voxels());
  optimized_correlate_normalize(ne, task, buf.view(), NormMode::kMerged);
  for (std::size_t v = 0; v < task.count; ++v) {
    for (std::int32_t s = 0; s < d.subjects(); ++s) {
      for (std::size_t j = 10; j < 13; ++j) {  // spot-check columns
        double sum = 0.0;
        double sq = 0.0;
        for (std::size_t e = 0; e < eps; ++e) {
          const float z = buf(v * m + s * eps + e, j);
          sum += z;
          sq += static_cast<double>(z) * z;
        }
        EXPECT_NEAR(sum / eps, 0.0, 1e-3);
        EXPECT_NEAR(sq / eps, 1.0, 1e-2);
      }
    }
  }
}

TEST(CorrStage, MergedSavesL2MissesUnderCachePressure) {
  // The Table 7 effect: once the correlation buffer exceeds L2, the
  // separated variant's write-out/read-back round trip turns into extra
  // L2 misses that the merged variant avoids.  (Both variants issue the
  // same load/store instructions in our kernels, so refs are ~equal; the
  // paper's ref gap came from its separated code path's extra data
  // reorganization — see EXPERIMENTS.md.)
  const fmri::Dataset d = cache_pressure_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();
  const VoxelTask task{0, 16};
  linalg::Matrix buf = make_corr_buffer(task, m, d.voxels());
  memsim::Instrument merged_ins;
  optimized_correlate_normalize_instrumented(ne, task, buf.view(),
                                             NormMode::kMerged, merged_ins);
  memsim::Instrument sep_ins;
  optimized_correlate_normalize_instrumented(ne, task, buf.view(),
                                             NormMode::kSeparated, sep_ins);
  EXPECT_LE(merged_ins.events().mem_refs, sep_ins.events().mem_refs);
  EXPECT_LT(static_cast<double>(merged_ins.events().l2_misses),
            0.8 * static_cast<double>(sep_ins.events().l2_misses));
}

// ---------------------------------------------------------------------------
// Stage 3
// ---------------------------------------------------------------------------

TEST(SvmStage, KernelMatrixIsGramOfCorrRows) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();
  const VoxelTask task{2, 3};
  linalg::Matrix buf = make_corr_buffer(task, m, d.voxels());
  optimized_correlate_normalize(ne, task, buf.view(), NormMode::kMerged);
  linalg::Matrix k(m, m);
  compute_voxel_kernel(buf.view(), m, 1, Impl::kOptimized, k.view());
  // Check one entry against a direct dot product of the voxel's rows.
  const float* r0 = buf.row(1 * m + 0);
  const float* r3 = buf.row(1 * m + 3);
  double dot = 0.0;
  for (std::size_t j = 0; j < d.voxels(); ++j) {
    dot += static_cast<double>(r0[j]) * r3[j];
  }
  EXPECT_NEAR(k(0, 3), dot, 1e-2 * (1.0 + std::abs(dot)));
  EXPECT_EQ(k(0, 3), k(3, 0));
}

TEST(SvmStage, BaselineAndOptimizedKernelsAgree) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();
  const VoxelTask task{0, 2};
  linalg::Matrix buf = make_corr_buffer(task, m, d.voxels());
  optimized_correlate_normalize(ne, task, buf.view(), NormMode::kMerged);
  linalg::Matrix kb(m, m);
  linalg::Matrix ko(m, m);
  compute_voxel_kernel(buf.view(), m, 0, Impl::kBaseline, kb.view());
  compute_voxel_kernel(buf.view(), m, 0, Impl::kOptimized, ko.view());
  EXPECT_LE(max_diff(kb, ko), 1e-2f);
}

TEST(SvmStage, InformativeVoxelsScoreAboveNoise) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();
  const VoxelTask task{0, static_cast<std::uint32_t>(d.voxels())};
  linalg::Matrix buf = make_corr_buffer(task, m, d.voxels());
  optimized_correlate_normalize(ne, task, buf.view(), NormMode::kMerged);
  const auto folds = epoch_loso_folds(ne.meta);
  const SvmStageResult r =
      svm_stage(buf.view(), ne.meta, folds, task, Impl::kOptimized,
                svm::SolverKind::kPhiSvm, svm::TrainOptions{});
  const auto& inf = d.informative_voxels();
  std::set<std::uint32_t> inf_set(inf.begin(), inf.end());
  double inf_mean = 0.0;
  double noise_mean = 0.0;
  std::size_t n_noise = 0;
  for (std::size_t v = 0; v < d.voxels(); ++v) {
    if (inf_set.count(static_cast<std::uint32_t>(v))) {
      inf_mean += r.accuracy[v];
    } else {
      noise_mean += r.accuracy[v];
      ++n_noise;
    }
  }
  inf_mean /= static_cast<double>(inf.size());
  noise_mean /= static_cast<double>(n_noise);
  EXPECT_GT(inf_mean, 0.75);
  EXPECT_LT(noise_mean, 0.65);
  EXPECT_GT(inf_mean, noise_mean + 0.15);
}

TEST(SvmStage, ThreadedMatchesSerial) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();
  const VoxelTask task{0, 10};
  linalg::Matrix buf = make_corr_buffer(task, m, d.voxels());
  optimized_correlate_normalize(ne, task, buf.view(), NormMode::kMerged);
  const auto folds = epoch_loso_folds(ne.meta);
  const SvmStageResult serial =
      svm_stage(buf.view(), ne.meta, folds, task, Impl::kOptimized,
                svm::SolverKind::kPhiSvm, svm::TrainOptions{});
  threading::ThreadPool pool(4);
  const SvmStageResult threaded =
      svm_stage(buf.view(), ne.meta, folds, task, Impl::kOptimized,
                svm::SolverKind::kPhiSvm, svm::TrainOptions{}, &pool);
  ASSERT_EQ(serial.accuracy.size(), threaded.accuracy.size());
  for (std::size_t v = 0; v < serial.accuracy.size(); ++v) {
    EXPECT_NEAR(serial.accuracy[v], threaded.accuracy[v], 1e-9);
  }
}

TEST(EpochLabels, MapsToPlusMinusOne) {
  std::vector<fmri::Epoch> meta{{0, 0, 0, 4}, {0, 1, 4, 4}};
  const auto labels = epoch_labels(meta);
  EXPECT_EQ(labels[0], -1);
  EXPECT_EQ(labels[1], 1);
}

// ---------------------------------------------------------------------------
// Full pipeline
// ---------------------------------------------------------------------------

TEST(Pipeline, BaselineAndOptimizedProduceSameAccuracies) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const VoxelTask task{0, 24};
  PipelineConfig base = PipelineConfig::baseline();
  PipelineConfig opt = PipelineConfig::optimized();
  const TaskResult rb = run_task(ne, task, base);
  const TaskResult ro = run_task(ne, task, opt);
  ASSERT_EQ(rb.accuracy.size(), ro.accuracy.size());
  // Different solvers/precision may flip individual near-boundary epochs;
  // accuracies must still agree closely per voxel.
  for (std::size_t v = 0; v < rb.accuracy.size(); ++v) {
    EXPECT_NEAR(rb.accuracy[v], ro.accuracy[v], 0.12) << "voxel " << v;
  }
}

TEST(Pipeline, InstrumentedMatchesFastAccuracies) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const VoxelTask task{16, 8};
  const PipelineConfig config = PipelineConfig::optimized();
  const TaskResult fast = run_task(ne, task, config);
  memsim::Instrument ins;
  const InstrumentedTaskResult slow =
      run_task_instrumented(ne, task, config, ins);
  ASSERT_EQ(fast.accuracy.size(), slow.result.accuracy.size());
  // The instrumented path recomputes with scalar float arithmetic, so a
  // near-boundary epoch can flip; with 8 test epochs per fold one flip is
  // 0.125 of a fold's accuracy.
  double mean_diff = 0.0;
  for (std::size_t v = 0; v < fast.accuracy.size(); ++v) {
    EXPECT_NEAR(fast.accuracy[v], slow.result.accuracy[v], 0.15);
    mean_diff += std::abs(fast.accuracy[v] - slow.result.accuracy[v]);
  }
  EXPECT_LE(mean_diff / static_cast<double>(fast.accuracy.size()), 0.05);
}

TEST(Pipeline, OptimizedBeatsBaselineOnEveryEventAxis) {
  // The Fig 9 substance: for the same task, the optimized pipeline issues
  // fewer memory references, fewer L2 misses and higher vector intensity.
  // Needs cache pressure: at toy sizes everything is L2 resident and the
  // orderings are meaningless.
  const fmri::Dataset d = cache_pressure_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const VoxelTask task{0, 32};  // enough voxels to amortize panel packing
  memsim::Instrument bi;
  const auto base =
      run_task_instrumented(ne, task, PipelineConfig::baseline(), bi);
  memsim::Instrument oi;
  const auto opt =
      run_task_instrumented(ne, task, PipelineConfig::optimized(), oi);
  EXPECT_LT(opt.total().mem_refs, base.total().mem_refs);
  EXPECT_LT(opt.total().l2_misses, base.total().l2_misses);
  EXPECT_GT(opt.total().vector_intensity(),
            base.total().vector_intensity());
}

TEST(Pipeline, StageEventsSumToTotal) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const VoxelTask task{0, 4};
  memsim::Instrument ins;
  const auto r =
      run_task_instrumented(ne, task, PipelineConfig::optimized(), ins);
  const auto total = r.total();
  EXPECT_EQ(total.mem_refs, ins.events().mem_refs);
  EXPECT_EQ(total.flops, ins.events().flops);
  EXPECT_EQ(total.l2_misses, ins.events().l2_misses);
}

// ---------------------------------------------------------------------------
// Memory model: the paper's §3.3.3/§5.4.1 regimes
// ---------------------------------------------------------------------------

TEST(MemoryModel, PaperRegimesReproduce) {
  // face-scene: 216 epochs x 34,470 voxels.
  const std::size_t fs_base = baseline_max_voxels(216, 34470,
                                                  kPhiAvailableBytes);
  // The baseline cannot feed all 240 hardware threads...
  EXPECT_LT(fs_base, 240u);
  // ...while the optimized kernel-matrix reduction can.
  EXPECT_GE(optimized_max_voxels(216, 34470, kPhiAvailableBytes), 240u);

  // attention: 540 epochs x 25,260 voxels — even tighter for the baseline.
  const std::size_t att_base = baseline_max_voxels(540, 25260,
                                                   kPhiAvailableBytes);
  EXPECT_LT(att_base, fs_base);
  EXPECT_GE(optimized_max_voxels(540, 25260, kPhiAvailableBytes), 240u);
}

TEST(MemoryModel, PaperMemoryFootprintNumbers) {
  // §3.3.3: "240 voxels' correlation vectors will consume 8.3GB" — our
  // model gives 240 * 216 * 34470 * 4B = 7.15GB; the paper's figure
  // includes allocator overhead, so check the right ballpark.
  const double gb = 240.0 * static_cast<double>(
                        corr_bytes_per_voxel(216, 34470)) /
                    (1024.0 * 1024.0 * 1024.0);
  EXPECT_GT(gb, 6.0);
  EXPECT_LT(gb, 9.0);
  // §4.4: "a data matrix is typically ~60MB (400 epochs x 35,000 voxels)".
  EXPECT_NEAR(static_cast<double>(corr_bytes_per_voxel(400, 35000)) /
                  (1024.0 * 1024.0),
              53.4, 1.0);
}

TEST(MemoryModel, KernelReductionShrinksFootprint) {
  EXPECT_LT(kernel_bytes_per_voxel(216) * 100,
            corr_bytes_per_voxel(216, 34470));
}

}  // namespace
}  // namespace fcma::core
