// Tests for the EpochSource data plane: streamed panels must be bit-
// identical to the resident path — serial or pooled, in-memory or shard-
// backed, whole-brain or partitioned — and the cache must respect its
// byte budget.  Also covers the plan_residency budget split.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "fcma/epoch_source.hpp"
#include "fcma/memory_model.hpp"
#include "fcma/pipeline.hpp"
#include "fmri/dataset_view.hpp"
#include "fmri/presets.hpp"
#include "fmri/shard_store.hpp"
#include "fmri/synthetic.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::core {
namespace {

fmri::Dataset small_dataset() {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 40;
  spec.subjects = 3;
  spec.epochs_total = 12;
  return fmri::generate_synthetic(spec);
}

std::size_t panel_bytes(const fmri::Dataset& d) {
  return d.voxels() * static_cast<std::size_t>(d.epochs().front().length) *
         sizeof(float);
}

void expect_panels_equal(EpochSource& a, EpochSource& b) {
  ASSERT_EQ(a.meta().size(), b.meta().size());
  for (std::size_t m = 0; m < a.meta().size(); ++m) {
    const auto la = a.acquire(m, m + 1);
    const auto lb = b.acquire(m, m + 1);
    const linalg::Matrix& pa = la.epoch(m);
    const linalg::Matrix& pb = lb.epoch(m);
    ASSERT_EQ(pa.rows(), pb.rows());
    ASSERT_EQ(pa.cols(), pb.cols());
    EXPECT_EQ(std::memcmp(pa.row(0), pb.row(0),
                          pa.rows() * pa.ld() * sizeof(float)),
              0)
        << "epoch " << m;
  }
}

TEST(StreamedEpochs, PanelsMatchResidentBitForBit) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs norm = fmri::normalize_epochs(d);
  ResidentEpochs resident(norm);
  const fmri::InMemoryView view(d);
  // Budget of one subject run + 1 — the floor — forces constant eviction.
  StreamedEpochs streamed(
      view, {(d.epochs_per_subject() + 1) * panel_bytes(d), nullptr});
  expect_panels_equal(resident, streamed);
}

TEST(StreamedEpochs, ShardBackedPanelsMatchResident) {
  const fmri::Dataset d = small_dataset();
  const auto stem = (std::filesystem::temp_directory_path() /
                     ("fcma_src_test_" + std::to_string(::getpid())))
                        .string();
  fmri::write_shard_store(stem, d);
  const auto view = fmri::open_shard_store(stem, "store");
  const fmri::NormalizedEpochs norm = fmri::normalize_epochs(d);
  ResidentEpochs resident(norm);
  StreamedEpochs streamed(*view, {2 * panel_bytes(d), nullptr});
  expect_panels_equal(resident, streamed);
  for (const auto& shard : view->shards()) {
    std::filesystem::remove(shard.path);
  }
  std::filesystem::remove(stem + ".shards");
  std::filesystem::remove(stem + ".epochs");
}

TEST(StreamedEpochs, CacheStaysWithinBudget) {
  const fmri::Dataset d = small_dataset();
  const fmri::InMemoryView view(d);
  const std::size_t budget = (d.epochs_per_subject() + 1) * panel_bytes(d);
  StreamedEpochs streamed(view, {budget, nullptr});
  for (std::size_t m = 0; m < streamed.meta().size(); ++m) {
    const auto lease = streamed.acquire(m, m + 1);
    EXPECT_LE(streamed.resident_bytes(), budget);
  }
  // After the sweep nothing is pinned, so the cache must still be within
  // budget and strictly smaller than the dataset.
  EXPECT_LE(streamed.resident_bytes(), budget);
  EXPECT_LT(streamed.resident_panels(), streamed.meta().size());
}

TEST(StreamedEpochs, SubsetSelectsAndReordersEpochs) {
  const fmri::Dataset d = small_dataset();
  const fmri::InMemoryView view(d);
  const std::vector<std::size_t> subset{4, 5, 6, 7, 0, 1, 2, 3};
  StreamedEpochs streamed(view, subset, {0, nullptr});
  const fmri::NormalizedEpochs norm = fmri::normalize_epochs(d, subset);
  ASSERT_EQ(streamed.meta().size(), subset.size());
  for (std::size_t m = 0; m < subset.size(); ++m) {
    EXPECT_EQ(streamed.meta()[m].start, norm.meta[m].start);
    const auto lease = streamed.acquire(m, m + 1);
    const linalg::Matrix& panel = lease.epoch(m);
    EXPECT_EQ(std::memcmp(panel.row(0), norm.per_epoch[m].row(0),
                          panel.rows() * panel.ld() * sizeof(float)),
              0);
  }
}

TEST(StreamedEpochs, PooledPrefetchIsBitIdentical) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs norm = fmri::normalize_epochs(d);
  const fmri::InMemoryView view(d);
  threading::ThreadPool pool(2);
  const std::size_t budget = (d.epochs_per_subject() + 1) * panel_bytes(d);
  StreamedEpochs streamed(view, {budget, &pool});
  ResidentEpochs resident(norm);
  for (std::size_t m = 0; m < streamed.meta().size(); ++m) {
    streamed.prefetch(m + 1, m + 3);
    const auto ls = streamed.acquire(m, m + 1);
    const auto lr = resident.acquire(m, m + 1);
    EXPECT_EQ(std::memcmp(ls.epoch(m).row(0), lr.epoch(m).row(0),
                          ls.epoch(m).rows() * ls.epoch(m).ld() *
                              sizeof(float)),
              0);
  }
}

TEST(StreamedEpochs, RunTaskMatchesResidentExactly) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs norm = fmri::normalize_epochs(d);
  const fmri::InMemoryView view(d);
  const VoxelTask task{0, static_cast<std::uint32_t>(d.voxels())};
  const PipelineConfig config = PipelineConfig::optimized();

  const TaskResult want = run_task(norm, task, config);
  StreamedEpochs streamed(
      view, {(d.epochs_per_subject() + 1) * panel_bytes(d), nullptr});
  const TaskResult got = run_task(streamed, task, config);
  ASSERT_EQ(got.accuracy.size(), want.accuracy.size());
  for (std::size_t v = 0; v < want.accuracy.size(); ++v) {
    EXPECT_EQ(got.accuracy[v], want.accuracy[v]) << "voxel " << v;
  }
}

TEST(StreamedEpochs, PartitionedGroupedRunMatchesWholeBrain) {
  // Grain invariance: per-voxel accuracies do not depend on how the brain
  // is partitioned into tasks or groups — the invariant the budgeted CLI
  // paths rely on for byte-identical reports.
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs norm = fmri::normalize_epochs(d);
  const fmri::InMemoryView view(d);
  const PipelineConfig config = PipelineConfig::optimized();

  const TaskResult whole = run_task_grouped(
      norm, VoxelTask{0, static_cast<std::uint32_t>(d.voxels())}, config, 16);

  StreamedEpochs streamed(
      view, {(d.epochs_per_subject() + 1) * panel_bytes(d), nullptr});
  std::vector<double> accuracy(d.voxels(), 0.0);
  for (const VoxelTask& task : partition_voxels(d.voxels(), 13)) {
    const TaskResult part = run_task_grouped(streamed, task, config, 5);
    for (std::size_t v = 0; v < part.accuracy.size(); ++v) {
      accuracy[task.first + v] = part.accuracy[v];
    }
  }
  for (std::size_t v = 0; v < d.voxels(); ++v) {
    EXPECT_EQ(accuracy[v], whole.accuracy[v]) << "voxel " << v;
  }
}

TEST(BudgetPlan, IsDeterministicAndWithinBudget) {
  const BudgetPlan plan = plan_residency(/*total_epochs=*/96,
                                         /*epochs_per_subject=*/12,
                                         /*brain_voxels=*/4096,
                                         /*epoch_length=*/64,
                                         /*budget_bytes=*/64u << 20);
  const BudgetPlan again = plan_residency(96, 12, 4096, 64, 64u << 20);
  EXPECT_EQ(plan.panel_cache_bytes, again.panel_cache_bytes);
  EXPECT_EQ(plan.group_voxels, again.group_voxels);
  EXPECT_EQ(plan.voxels_per_task, again.voxels_per_task);

  EXPECT_GT(plan.group_voxels, 0u);
  EXPECT_GE(plan.voxels_per_task, plan.group_voxels);
  // Panel cache floor: one subject run + one prefetched panel.
  const std::size_t panel = 4096 * 64 * sizeof(float);
  EXPECT_GE(plan.panel_cache_bytes, 13 * panel);
  // The planned pieces stay within the planning fraction of the budget.
  const std::size_t corr = plan.group_voxels *
                           corr_bytes_per_voxel(96, 4096);
  EXPECT_LE(plan.panel_cache_bytes + corr, (64u << 20) * 5 / 8);
}

TEST(BudgetPlan, ImpossibleBudgetThrows) {
  EXPECT_THROW((void)plan_residency(96, 12, 4096, 64, 1u << 20), Error);
  EXPECT_THROW((void)plan_residency(96, 12, 4096, 64, 0), Error);
  EXPECT_THROW((void)plan_residency(0, 12, 4096, 64, 1u << 30), Error);
}

}  // namespace
}  // namespace fcma::core
