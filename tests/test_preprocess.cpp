// Tests for the preprocessing substrate: detrending, spatial smoothing,
// and motion-spike detection/censoring.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fmri/preprocess.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"

namespace fcma::fmri {
namespace {

TEST(Detrend, RemovesMean) {
  std::vector<float> x{3.0f, 3.0f, 3.0f, 3.0f, 3.0f};
  detrend(x, 0);
  for (const float v : x) EXPECT_NEAR(v, 0.0f, 1e-6f);
}

TEST(Detrend, RemovesLinearTrend) {
  std::vector<float> x(50);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 2.0f + 0.3f * static_cast<float>(t);
  }
  detrend(x, 1);
  for (const float v : x) EXPECT_NEAR(v, 0.0f, 1e-4f);
}

TEST(Detrend, RemovesQuadraticDriftAtOrderTwo) {
  std::vector<float> x(60);
  for (std::size_t t = 0; t < x.size(); ++t) {
    const auto tf = static_cast<float>(t);
    x[t] = 1.0f + 0.1f * tf - 0.002f * tf * tf;
  }
  std::vector<float> linear_only = x;
  detrend(linear_only, 1);
  detrend(x, 2);
  double resid1 = 0.0;
  double resid2 = 0.0;
  for (std::size_t t = 0; t < x.size(); ++t) {
    resid1 += static_cast<double>(linear_only[t]) * linear_only[t];
    resid2 += static_cast<double>(x[t]) * x[t];
  }
  EXPECT_LT(resid2, 1e-4);
  EXPECT_GT(resid1, 100.0 * std::max(resid2, 1e-12));
}

TEST(Detrend, PreservesSignalOrthogonalToDrift) {
  // A fast oscillation should survive linear detrending nearly intact.
  std::vector<float> x(64);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = std::sin(static_cast<float>(t) * 1.3f);
  }
  std::vector<float> orig = x;
  detrend(x, 1);
  double diff = 0.0;
  double norm = 0.0;
  for (std::size_t t = 0; t < x.size(); ++t) {
    diff += std::abs(x[t] - orig[t]);
    norm += std::abs(orig[t]);
  }
  EXPECT_LT(diff / norm, 0.05);
}

TEST(Detrend, RejectsImpossibleOrder) {
  std::vector<float> x(3);
  EXPECT_THROW(detrend(x, 3), Error);
  EXPECT_THROW(detrend(x, -1), Error);
}

TEST(DetrendDataset, AppliesToEveryVoxel) {
  fmri::DatasetSpec spec = tiny_spec();
  Dataset d = generate_synthetic(spec);
  // Inject per-voxel linear drifts.
  for (std::size_t v = 0; v < d.voxels(); ++v) {
    const float slope = 0.01f * static_cast<float>(v % 7);
    for (std::size_t t = 0; t < d.timepoints(); ++t) {
      d.data()(v, t) += slope * static_cast<float>(t);
    }
  }
  detrend_dataset(d, 1);
  for (std::size_t v = 0; v < d.voxels(); v += 13) {
    // Residual correlation with time should be ~0.
    double st = 0.0;
    double sx = 0.0;
    double sxt = 0.0;
    double stt = 0.0;
    const auto n = static_cast<double>(d.timepoints());
    for (std::size_t t = 0; t < d.timepoints(); ++t) {
      st += t;
      sx += d.data()(v, t);
      sxt += t * static_cast<double>(d.data()(v, t));
      stt += static_cast<double>(t) * t;
    }
    const double slope = (n * sxt - st * sx) / (n * stt - st * st);
    EXPECT_NEAR(slope, 0.0, 1e-5) << "voxel " << v;
  }
}

// ---------------------------------------------------------------------------
// Spatial smoothing
// ---------------------------------------------------------------------------

struct SmoothFixture {
  VolumeGeometry geometry{10, 10, 6};
  VolumetricDataset vol;
  SmoothFixture() : vol(make()) {}
  static VolumetricDataset make() {
    fmri::DatasetSpec spec = tiny_spec();
    spec.informative = 12;
    return generate_synthetic_volumetric(spec, VolumeGeometry{10, 10, 6}, 2);
  }
};

TEST(SpatialSmooth, ReducesVoxelwiseVariance) {
  SmoothFixture fx;
  Dataset& d = fx.vol.dataset;
  // Variance of a noise voxel's time series before/after smoothing.
  std::vector<float> before(d.data().row(0), d.data().row(0) + 32);
  spatial_smooth(d, fx.vol.mask, 2.0);
  double var_b = 0.0;
  double var_a = 0.0;
  for (std::size_t t = 0; t < 32; ++t) {
    var_b += static_cast<double>(before[t]) * before[t];
    var_a += static_cast<double>(d.data()(0, t)) * d.data()(0, t);
  }
  EXPECT_LT(var_a, var_b);
}

TEST(SpatialSmooth, PreservesGlobalMeanPerTimepoint) {
  SmoothFixture fx;
  Dataset& d = fx.vol.dataset;
  // Uniform volumes are a fixed point of the mask-renormalized kernel.
  for (std::size_t v = 0; v < d.voxels(); ++v) {
    for (std::size_t t = 0; t < d.timepoints(); ++t) {
      d.data()(v, t) = 7.25f;
    }
  }
  spatial_smooth(d, fx.vol.mask, 2.0);
  for (std::size_t v = 0; v < d.voxels(); v += 17) {
    EXPECT_NEAR(d.data()(v, 5), 7.25f, 1e-4f);
  }
}

TEST(SpatialSmooth, IncreasesNeighborCorrelation) {
  SmoothFixture fx;
  Dataset& d = fx.vol.dataset;
  // Two adjacent noise voxels.
  const Coord center{5, 5, 3};
  const auto a = static_cast<std::uint32_t>(fx.vol.mask.mask_index(center));
  const auto b = static_cast<std::uint32_t>(
      fx.vol.mask.mask_index(Coord{6, 5, 3}));
  auto correlation = [&](std::uint32_t u, std::uint32_t v) {
    double suv = 0.0;
    double suu = 0.0;
    double svv = 0.0;
    double su = 0.0;
    double sv = 0.0;
    const auto n = static_cast<double>(d.timepoints());
    for (std::size_t t = 0; t < d.timepoints(); ++t) {
      su += d.data()(u, t);
      sv += d.data()(v, t);
      suv += static_cast<double>(d.data()(u, t)) * d.data()(v, t);
      suu += static_cast<double>(d.data()(u, t)) * d.data()(u, t);
      svv += static_cast<double>(d.data()(v, t)) * d.data()(v, t);
    }
    const double cov = suv / n - (su / n) * (sv / n);
    const double vu = suu / n - (su / n) * (su / n);
    const double vv = svv / n - (sv / n) * (sv / n);
    return cov / std::sqrt(vu * vv);
  };
  const double before = correlation(a, b);
  spatial_smooth(d, fx.vol.mask, 2.5);
  const double after = correlation(a, b);
  EXPECT_GT(after, before + 0.2);
}

TEST(SpatialSmooth, RejectsMismatchedMask) {
  fmri::DatasetSpec spec = tiny_spec();
  Dataset d = generate_synthetic(spec);
  const BrainMask mask = BrainMask::ellipsoid(VolumeGeometry{4, 4, 4});
  EXPECT_THROW(spatial_smooth(d, mask, 2.0), Error);
}

// ---------------------------------------------------------------------------
// Motion spikes
// ---------------------------------------------------------------------------

Dataset spiked_dataset(std::vector<std::size_t> spike_times) {
  fmri::DatasetSpec spec = tiny_spec();
  Dataset d = generate_synthetic(spec);
  for (const std::size_t t : spike_times) {
    for (std::size_t v = 0; v < d.voxels(); ++v) {
      d.data()(v, t) += 25.0f;  // a scanner-wide jump
    }
  }
  return d;
}

TEST(MotionSpikes, FramewiseDisplacementFlagsJumps) {
  const Dataset d = spiked_dataset({17});
  const auto fd = framewise_displacement(d);
  ASSERT_EQ(fd.size(), d.timepoints());
  EXPECT_EQ(fd[0], 0.0f);
  // The jump (t=17) and the return (t=18) dominate every other frame.
  float third = 0.0f;
  for (std::size_t t = 1; t < fd.size(); ++t) {
    if (t != 17 && t != 18) third = std::max(third, fd[t]);
  }
  EXPECT_GT(fd[17], 3.0f * third);
  EXPECT_GT(fd[18], 3.0f * third);
}

TEST(MotionSpikes, DetectionFindsInjectedSpikes) {
  const Dataset d = spiked_dataset({17, 100});
  const auto spikes = detect_motion_spikes(d, 8.0);
  // Expect {17, 18, 100, 101}: jump and recovery frames.
  EXPECT_TRUE(std::find(spikes.begin(), spikes.end(), 17u) != spikes.end());
  EXPECT_TRUE(std::find(spikes.begin(), spikes.end(), 100u) != spikes.end());
  EXPECT_LE(spikes.size(), 6u);  // no false positives beyond the recoveries
}

TEST(MotionSpikes, CleanDataHasNoSpikes) {
  fmri::DatasetSpec spec = tiny_spec();
  const Dataset d = generate_synthetic(spec);
  // The generator's per-epoch latent resets create mild boundary
  // bumps; at a 8-sigma robust threshold nothing should trigger.
  EXPECT_TRUE(detect_motion_spikes(d, 8.0).empty());
}

TEST(MotionSpikes, CensoringDropsOnlyAffectedEpochs) {
  const Dataset d = spiked_dataset({17});
  const auto spikes = detect_motion_spikes(d, 8.0);
  const auto censored = censored_epochs(d, spikes);
  const auto usable = usable_epochs(d, spikes);
  EXPECT_EQ(censored.size() + usable.size(), d.epochs().size());
  // Epoch length 12: t=17 and 18 are in epoch 1 only.
  ASSERT_GE(censored.size(), 1u);
  EXPECT_EQ(censored[0], 1u);
  EXPECT_LE(censored.size(), 2u);
  // Usable epochs feed normalize_epochs cleanly.
  const NormalizedEpochs ne = normalize_epochs(d, usable);
  EXPECT_EQ(ne.per_epoch.size(), usable.size());
}

}  // namespace
}  // namespace fcma::fmri
