// Tests for the subject-sharded on-disk store (fcma.shards.v1): bit-exact
// round trips, mmap lifecycle, and — mirroring the tune-cache negative
// tests — rejection of truncated, corrupted, and wrong-schema files.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "fmri/dataset_view.hpp"
#include "fmri/io.hpp"
#include "fmri/presets.hpp"
#include "fmri/shard_store.hpp"
#include "fmri/synthetic.hpp"

namespace fcma::fmri {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("fcma_shard_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

Dataset small_dataset() {
  DatasetSpec spec = tiny_spec();
  spec.voxels = 48;
  spec.subjects = 3;
  spec.epochs_total = 12;
  return generate_synthetic(spec);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ShardStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = small_dataset();
    stem_ = dir_.file("store");
    write_shard_store(stem_, dataset_);
  }

  TempDir dir_;
  Dataset dataset_ = Dataset();
  std::string stem_;
};

TEST_F(ShardStoreTest, RoundTripPanelsAreBitIdentical) {
  const auto view = open_shard_store(stem_, "store");
  ASSERT_EQ(view->voxels(), dataset_.voxels());
  ASSERT_EQ(view->subjects(), dataset_.subjects());
  ASSERT_EQ(view->epochs().size(), dataset_.epochs().size());
  for (std::size_t m = 0; m < dataset_.epochs().size(); ++m) {
    const Epoch& e = dataset_.epochs()[m];
    const DatasetView::Panel panel = view->epoch_panel(m);
    ASSERT_EQ(panel.view.rows, dataset_.voxels());
    ASSERT_EQ(panel.view.cols, static_cast<std::size_t>(e.length));
    for (std::size_t v = 0; v < dataset_.voxels(); ++v) {
      EXPECT_EQ(std::memcmp(panel.view.row(v),
                            dataset_.data().row(v) + e.start,
                            e.length * sizeof(float)),
                0)
          << "epoch " << m << " voxel " << v;
    }
  }
}

TEST_F(ShardStoreTest, NormalizedEpochsMatchInMemoryBackend) {
  const auto view = open_shard_store(stem_, "store");
  const NormalizedEpochs from_store = normalize_epochs(*view);
  const NormalizedEpochs from_memory = normalize_epochs(dataset_);
  ASSERT_EQ(from_store.per_epoch.size(), from_memory.per_epoch.size());
  for (std::size_t m = 0; m < from_store.per_epoch.size(); ++m) {
    const linalg::Matrix& a = from_store.per_epoch[m];
    const linalg::Matrix& b = from_memory.per_epoch[m];
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    EXPECT_EQ(std::memcmp(a.row(0), b.row(0),
                          a.rows() * a.ld() * sizeof(float)),
              0);
  }
}

TEST_F(ShardStoreTest, ShardsUnmapWhenLastPanelDrops) {
  const auto view = open_shard_store(stem_, "store");
  EXPECT_EQ(view->mapped_shards(), 0u);
  {
    const DatasetView::Panel p0 = view->epoch_panel(0);
    EXPECT_EQ(view->mapped_shards(), 1u);
    // A second panel of the same subject shares the mapping.
    const DatasetView::Panel p1 = view->epoch_panel(1);
    EXPECT_EQ(view->mapped_shards(), 1u);
  }
  EXPECT_EQ(view->mapped_shards(), 0u);
}

TEST_F(ShardStoreTest, OpenDatasetViewSelectsBackendByManifest) {
  const auto sharded = open_dataset_view(stem_, "store");
  EXPECT_NE(dynamic_cast<ShardStoreView*>(sharded.get()), nullptr);

  const std::string plain = dir_.file("plain");
  save_dataset(plain, dataset_);
  const auto memory = open_dataset_view(plain, "plain");
  EXPECT_NE(dynamic_cast<InMemoryView*>(memory.get()), nullptr);
  EXPECT_EQ(memory->epochs().size(), dataset_.epochs().size());
}

TEST_F(ShardStoreTest, TruncatedShardIsRejected) {
  const auto view = open_shard_store(stem_, "store");
  const std::string shard_path = view->shards().front().path;
  const auto size = std::filesystem::file_size(shard_path);
  std::filesystem::resize_file(shard_path, size - 64);
  EXPECT_THROW((void)open_shard_store(stem_, "store"), Error);
}

TEST_F(ShardStoreTest, PayloadCorruptionFailsChecksum) {
  const auto view = open_shard_store(stem_, "store");
  const std::string shard_path = view->shards().front().path;
  std::string bytes = read_file(shard_path);
  ASSERT_GT(bytes.size(), 4100u);
  bytes[4100] = static_cast<char>(bytes[4100] ^ 0x40);  // inside the payload
  write_file(shard_path, bytes);
  // Header and size still validate, so open succeeds; the checksum is
  // verified on first map and must throw there.
  const auto reopened = open_shard_store(stem_, "store");
  EXPECT_THROW((void)reopened->epoch_panel(0), Error);
}

TEST_F(ShardStoreTest, WrongMagicIsRejected) {
  const auto view = open_shard_store(stem_, "store");
  const std::string shard_path = view->shards().front().path;
  std::string bytes = read_file(shard_path);
  bytes[0] = 'X';
  write_file(shard_path, bytes);
  EXPECT_THROW((void)open_shard_store(stem_, "store"), Error);
}

TEST_F(ShardStoreTest, WrongManifestSchemaIsRejected) {
  std::string manifest = read_file(stem_ + ".shards");
  const auto pos = manifest.find("fcma.shards.v1");
  ASSERT_NE(pos, std::string::npos);
  manifest.replace(pos, 14, "fcma.shards.v9");
  write_file(stem_ + ".shards", manifest);
  EXPECT_THROW((void)open_shard_store(stem_, "store"), Error);
}

TEST_F(ShardStoreTest, GeometryMismatchAgainstManifestIsRejected) {
  // The manifest says one thing, the shard header another: tamper with the
  // header's voxel count (and nothing else) — open must cross-validate.
  const auto view = open_shard_store(stem_, "store");
  const std::string shard_path = view->shards().front().path;
  std::string bytes = read_file(shard_path);
  std::uint64_t voxels = 0;
  std::memcpy(&voxels, bytes.data() + 16, sizeof(voxels));
  ++voxels;
  std::memcpy(bytes.data() + 16, &voxels, sizeof(voxels));
  write_file(shard_path, bytes);
  EXPECT_THROW((void)open_shard_store(stem_, "store"), Error);
}

TEST(DatasetViewMeta, EpochsOfSubjectWithNoEpochsIsEmpty) {
  const Dataset d = small_dataset();
  const InMemoryView view(d);
  EXPECT_TRUE(view.epochs_of_subject(99).empty());
  EXPECT_FALSE(view.epochs_of_subject(0).empty());
}

}  // namespace
}  // namespace fcma::fmri
