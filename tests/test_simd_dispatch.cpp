// Tests for the runtime-dispatched SIMD micro-kernels (linalg/simd.hpp).
//
// Every ISA variant — portable-scalar, AVX2, AVX-512 lane widths — must
// agree with a double-precision reference to tolerance AND bit-identically
// with the other variants: dispatch may change speed, never answers.  The
// variants are all compiled from GCC vector extensions, so each one runs on
// any host (wide vectors are synthesized from narrower ops where needed),
// which is what makes this suite meaningful on every machine.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "linalg/opt.hpp"
#include "linalg/simd.hpp"

namespace fcma::linalg::simd {
namespace {

constexpr Isa kAllIsas[] = {Isa::kScalar, Isa::kAvx2, Isa::kAvx512};

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed);
  for (float& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

// ---------------------------------------------------------------------------
// Dispatch resolution
// ---------------------------------------------------------------------------

// Must run before anything else in this process touches active_isa(): the
// FCMA_FORCE_ISA override is resolved once and cached.  (Keep this test
// first in the file; under ctest each test is its own process anyway.)
TEST(SimdDispatch, ForceIsaEnvOverridesDetection) {
  ::setenv("FCMA_FORCE_ISA", "scalar", 1);
  EXPECT_EQ(active_isa(), Isa::kScalar);
  ::unsetenv("FCMA_FORCE_ISA");
}

TEST(SimdDispatch, IsaNamesRoundTrip) {
  for (const Isa isa : kAllIsas) {
    Isa parsed = Isa::kAvx512;
    ASSERT_TRUE(parse_isa(isa_name(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  Isa ignored;
  EXPECT_FALSE(parse_isa("", &ignored));
  EXPECT_FALSE(parse_isa("avx", &ignored));
  EXPECT_FALSE(parse_isa("AVX512", &ignored));
}

TEST(SimdDispatch, DetectedIsaIsValid) {
  const Isa isa = detect_isa();
  EXPECT_TRUE(isa == Isa::kScalar || isa == Isa::kAvx2 ||
              isa == Isa::kAvx512);
  // Whatever was detected must have a working kernel table.
  EXPECT_NE(kernels(isa).gemm_row_panel, nullptr);
  EXPECT_NE(kernels(isa).syrk_panel, nullptr);
  EXPECT_NE(kernels(isa).accumulate_moments, nullptr);
  EXPECT_NE(kernels(isa).zscore_finish, nullptr);
}

// ---------------------------------------------------------------------------
// gemm row-panel: every variant vs the double reference, and bit-identical
// across variants.  width = 150 exercises the 4-vector block, the single-
// vector loop, and the scalar remainder at every lane width.
// ---------------------------------------------------------------------------

TEST(SimdDispatch, GemmRowPanelMatchesReferenceOnEveryIsa) {
  const std::size_t k = 37;
  const std::size_t width = 150;
  const auto a = random_vec(k, 1);
  const auto bt = random_vec(k * width, 2);

  std::vector<float> want(width);
  for (std::size_t j = 0; j < width; ++j) {
    double acc = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      acc += static_cast<double>(a[kk]) *
             static_cast<double>(bt[kk * width + j]);
    }
    want[j] = static_cast<float>(acc);
  }

  std::vector<std::vector<float>> got;
  for (const Isa isa : kAllIsas) {
    std::vector<float> c(width, -42.0f);
    kernels(isa).gemm_row_panel(a.data(), k, bt.data(), width, c.data());
    for (std::size_t j = 0; j < width; ++j) {
      EXPECT_NEAR(c[j], want[j], 1e-4f)
          << "isa " << isa_name(isa) << " col " << j;
    }
    got.push_back(std::move(c));
  }
  // Dispatch must not change answers: ascending-k accumulation per output
  // element makes every lane width produce the same bits.
  EXPECT_EQ(got[0], got[1]);
  EXPECT_EQ(got[0], got[2]);
}

// ---------------------------------------------------------------------------
// syrk packed-panel sweep: full-depth panels (the compile-time-KB fast
// path) and a ragged panel, on an M that has both full 9-row tiles and an
// edge tile.  Only the lower triangle is compared — the tile sweep writes
// scratch above the diagonal that mirror_upper overwrites in production.
// ---------------------------------------------------------------------------

void check_syrk_panel(std::size_t m, std::size_t kb) {
  const auto a_local = random_vec(m * kb, 3);
  std::vector<float> at_local(kb * m);
  for (std::size_t k = 0; k < kb; ++k) {
    for (std::size_t i = 0; i < m; ++i) {
      at_local[k * m + i] = a_local[i * kb + k];
    }
  }

  std::vector<std::vector<float>> got;
  for (const Isa isa : kAllIsas) {
    std::vector<float> c(m * m, 0.0f);
    kernels(isa).syrk_panel(a_local.data(), at_local.data(), m, kb, c.data(),
                            m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < kb; ++k) {
          acc += static_cast<double>(a_local[i * kb + k]) *
                 static_cast<double>(a_local[j * kb + k]);
        }
        EXPECT_NEAR(c[i * m + j], static_cast<float>(acc), 1e-4f)
            << "isa " << isa_name(isa) << " at (" << i << ", " << j << ")";
      }
    }
    // Keep only the defined (lower-triangle) part for the bit comparison.
    std::vector<float> lower;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j <= i; ++j) lower.push_back(c[i * m + j]);
    }
    got.push_back(std::move(lower));
  }
  EXPECT_EQ(got[0], got[1]);
  EXPECT_EQ(got[0], got[2]);
}

TEST(SimdDispatch, SyrkPanelFullDepthMatchesReferenceOnEveryIsa) {
  check_syrk_panel(21, opt::kSyrkPanelK);
}

TEST(SimdDispatch, SyrkPanelRaggedDepthMatchesReferenceOnEveryIsa) {
  check_syrk_panel(13, 33);
}

// ---------------------------------------------------------------------------
// Normalization inner loops: column-parallel, so every lane width performs
// the identical per-column accumulation.
// ---------------------------------------------------------------------------

TEST(SimdDispatch, AccumulateMomentsMatchesScalarOnEveryIsa) {
  const std::size_t width = 100;
  const std::size_t rows = 3;
  const auto data = random_vec(rows * width, 4);

  std::vector<float> want_sum(width, 0.0f);
  std::vector<float> want_sumsq(width, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < width; ++j) {
      const float z = data[r * width + j];
      want_sum[j] += z;
      want_sumsq[j] += z * z;
    }
  }

  for (const Isa isa : kAllIsas) {
    std::vector<float> sum(width, 0.0f);
    std::vector<float> sumsq(width, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
      kernels(isa).accumulate_moments(data.data() + r * width, sum.data(),
                                      sumsq.data(), width);
    }
    EXPECT_EQ(sum, want_sum) << "isa " << isa_name(isa);
    EXPECT_EQ(sumsq, want_sumsq) << "isa " << isa_name(isa);
  }
}

TEST(SimdDispatch, ZscoreFinishMatchesScalarOnEveryIsa) {
  const std::size_t width = 77;
  const auto row0 = random_vec(width, 5);
  const auto mean = random_vec(width, 6);
  const auto inv_sd = random_vec(width, 7);

  std::vector<float> want(width);
  for (std::size_t j = 0; j < width; ++j) {
    want[j] = (row0[j] - mean[j]) * inv_sd[j];
  }

  for (const Isa isa : kAllIsas) {
    std::vector<float> row = row0;
    kernels(isa).zscore_finish(row.data(), mean.data(), inv_sd.data(), width);
    EXPECT_EQ(row, want) << "isa " << isa_name(isa);
  }
}

}  // namespace
}  // namespace fcma::linalg::simd
