// Scheduler stress suite — the `sched-stress` half of the TSan gate.
//
// These tests exist to give ThreadSanitizer maximal interleaving coverage
// of the work-stealing machinery: thousands of tiny tasks hammering the
// deques and the sleep/wake protocol, deep nested groups exercising the
// help-first join from worker threads, and concurrent schedulers being
// driven (and cross-called) from many external threads at once.  They are
// built into the regular test run too; correctness assertions are exact.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "sched/scheduler.hpp"

namespace fcma::sched {
namespace {

TEST(SchedStress, ThousandsOfTinyTasks) {
  Scheduler sched(4);
  constexpr std::size_t kTasks = 20000;
  std::vector<std::atomic<std::uint8_t>> hits(kTasks);
  sched.parallel_for_each(0, kTasks, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  const Scheduler::Stats stats = sched.stats();
  EXPECT_EQ(stats.local_hits + stats.steals + stats.inbox_hits,
            stats.executed);
}

TEST(SchedStress, TinyTaskWavesThroughSubmit) {
  // Repeated bursts through the inbox exercise the sleep/wake transitions:
  // between waves every worker goes idle, then the next wave must wake them
  // without losing a notification.
  Scheduler sched(4);
  std::atomic<std::size_t> done{0};
  for (int wave = 0; wave < 50; ++wave) {
    std::vector<std::future<void>> futures;
    futures.reserve(100);
    for (int i = 0; i < 100; ++i) {
      futures.push_back(sched.submit([&done] {
        done.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(done.load(), 5000u);
}

TEST(SchedStress, RecursiveNestedGroups) {
  // Divide-and-conquer sum over [0, 4096) with a fan-out of 4 per level:
  // every interior node is a worker blocked in a help-first wait while its
  // children run, several levels deep, on only 3 workers.
  Scheduler sched(3);
  struct Summer {
    Scheduler& sched;
    std::uint64_t operator()(std::size_t lo, std::size_t hi) const {
      if (hi - lo <= 64) {
        std::uint64_t s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += i;
        return s;
      }
      const std::size_t quarter = (hi - lo) / 4;
      std::uint64_t partial[4] = {0, 0, 0, 0};
      TaskGroup group(sched);
      for (int q = 0; q < 4; ++q) {
        const std::size_t a = lo + static_cast<std::size_t>(q) * quarter;
        const std::size_t b = q == 3 ? hi : a + quarter;
        group.run([this, q, a, b, &partial] { partial[q] = (*this)(a, b); });
      }
      group.wait();
      return partial[0] + partial[1] + partial[2] + partial[3];
    }
  };
  const std::uint64_t total = Summer{sched}(0, 4096);
  EXPECT_EQ(total, 4096ull * 4095ull / 2);
}

TEST(SchedStress, ConcurrentPoolsCrossTraffic) {
  // Two schedulers, four external driver threads, and tasks on each
  // scheduler fanning out onto the *other* one — the cross-instance case
  // the old process-global inside_worker() flag got wrong.
  Scheduler a(2);
  Scheduler b(2);
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> drivers;
  drivers.reserve(4);
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&a, &b, &total, d] {
      Scheduler& mine = (d % 2 == 0) ? a : b;
      Scheduler& other = (d % 2 == 0) ? b : a;
      for (int round = 0; round < 20; ++round) {
        mine.parallel_for_each(0, 8, [&other, &total](std::size_t) {
          other.parallel_for_each(0, 8, [&total](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
          });
        });
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(total.load(), 4u * 20u * 8u * 8u);
}

TEST(SchedStress, ManyConcurrentGroupsFromExternalThreads) {
  Scheduler sched(4);
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> callers;
  callers.reserve(8);
  for (int c = 0; c < 8; ++c) {
    callers.emplace_back([&sched, &done] {
      for (int round = 0; round < 25; ++round) {
        TaskGroup group(sched);
        for (int i = 0; i < 16; ++i) {
          group.run([&done] {
            done.fetch_add(1, std::memory_order_relaxed);
          });
        }
        group.wait();
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(done.load(), 8u * 25u * 16u);
}

TEST(SchedStress, RapidConstructDestructWithPendingWork) {
  // Shutdown races: destroy schedulers that still have queued and nested
  // work; the drain contract says everything spawned must run.
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> executed{0};
    {
      Scheduler sched(3);
      for (int i = 0; i < 50; ++i) {
        sched.spawn([&sched, &executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
          sched.spawn([&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
          });
        });
      }
    }
    EXPECT_EQ(executed.load(), 100u);
  }
}

}  // namespace
}  // namespace fcma::sched
