// Unit tests for the work-stealing scheduler (sched::Scheduler, TaskGroup).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace fcma::sched {
namespace {

TEST(Scheduler, SubmitReturnsValueThroughFuture) {
  Scheduler sched(2);
  auto f = sched.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(Scheduler, SubmitPropagatesExceptions) {
  Scheduler sched(2);
  auto f = sched.submit([]() -> int { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

TEST(Scheduler, DefaultSizeIsPositive) {
  Scheduler sched;
  EXPECT_GE(sched.size(), 1u);
}

TEST(Scheduler, DestructorDrainsSpawnedTasks) {
  std::atomic<int> executed{0};
  {
    Scheduler sched(2);
    for (int i = 0; i < 100; ++i) {
      sched.spawn([&executed] { ++executed; });
    }
  }
  EXPECT_EQ(executed.load(), 100);
}

TEST(Scheduler, WorkerSubmittedTasksComplete) {
  // A task spawned from a worker lands on that worker's own deque (not the
  // inbox) and still completes: stolen by peers or drained at shutdown.
  std::atomic<int> nested{0};
  {
    Scheduler sched(2);
    sched
        .submit([&sched, &nested] {
          for (int i = 0; i < 10; ++i) sched.spawn([&nested] { ++nested; });
        })
        .get();
  }
  EXPECT_EQ(nested.load(), 10);
}

TEST(TaskGroup, WaitsForEveryTask) {
  Scheduler sched(4);
  std::atomic<int> done{0};
  TaskGroup group(sched);
  for (int i = 0; i < 64; ++i) {
    group.run([&done] { ++done; });
  }
  group.wait();
  EXPECT_EQ(done.load(), 64);
}

TEST(TaskGroup, WaitRethrowsFirstException) {
  Scheduler sched(2);
  TaskGroup group(sched);
  std::atomic<int> completed{0};
  for (int i = 0; i < 16; ++i) {
    group.run([i, &completed] {
      if (i == 7) throw Error("task failed");
      ++completed;
    });
  }
  EXPECT_THROW(group.wait(), Error);
  // wait() returns only after *all* tasks finished, error or not — captured
  // state is safe to destroy immediately after.
  EXPECT_EQ(completed.load(), 15);
}

TEST(TaskGroup, WaitFromExternalThreadHelps) {
  // The waiting thread is not a worker; it must still make progress by
  // stealing the group's queued tasks even if every worker is busy.
  Scheduler sched(1);
  std::atomic<bool> release{false};
  auto blocker = sched.submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  TaskGroup group(sched);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) group.run([&done] { ++done; });
  // The only worker is blocked; the external waiter must run all 8 itself.
  std::thread unblock([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true);
  });
  group.wait();
  EXPECT_EQ(done.load(), 8);
  release.store(true);
  blocker.get();
  unblock.join();
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  Scheduler sched(4);
  std::vector<std::atomic<int>> hits(500);
  sched.parallel_for(0, 500, 13, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, DeeplyNestedCallsStayParallelAndComplete) {
  // Three levels of nesting on a 2-worker scheduler: help-first joins mean
  // no level can deadlock, and the leaves all run.
  Scheduler sched(2);
  std::atomic<int> leaves{0};
  sched.parallel_for_each(0, 4, [&](std::size_t) {
    sched.parallel_for_each(0, 4, [&](std::size_t) {
      sched.parallel_for_each(0, 4, [&](std::size_t) { ++leaves; });
    });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ParallelFor, ZeroGrainThrows) {
  Scheduler sched(2);
  EXPECT_THROW(
      sched.parallel_for(0, 10, 0, [](std::size_t, std::size_t) {}),
      Error);
}

TEST(ParallelFor, ResultsAreIndexDeterministic) {
  // Each index writes its own slot; the outcome is independent of which
  // worker ran which chunk.
  Scheduler sched(4);
  std::vector<std::size_t> out(1000, 0);
  sched.parallel_for_each(0, 1000, [&out](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Scheduler, StatsAccountEveryExecutedTask) {
  Scheduler sched(3);
  const Scheduler::Stats before = sched.stats();
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) futures.push_back(sched.submit([] {}));
  for (auto& f : futures) f.get();
  const Scheduler::Stats after = sched.stats();
  EXPECT_EQ(after.executed - before.executed, 200u);
  // Every execution came off a deque exactly once.
  EXPECT_EQ((after.local_hits + after.steals + after.inbox_hits) -
                (before.local_hits + before.steals + before.inbox_hits),
            200u);
}

TEST(Scheduler, OnWorkerThreadIsInstanceScoped) {
  Scheduler a(1);
  Scheduler b(1);
  EXPECT_FALSE(a.on_worker_thread());
  EXPECT_FALSE(Scheduler::on_any_worker());
  auto f = a.submit([&a, &b] {
    return a.on_worker_thread() && !b.on_worker_thread() &&
           Scheduler::on_any_worker();
  });
  EXPECT_TRUE(f.get());
}

TEST(Scheduler, CrossSchedulerParallelForDispatchesToTarget) {
  Scheduler a(2);
  Scheduler b(2);
  const std::uint64_t executed_before = b.stats().executed;
  std::atomic<int> hits{0};
  a.submit([&b, &hits] {
     b.parallel_for_each(0, 32, [&hits](std::size_t) { ++hits; });
   }).get();
  EXPECT_EQ(hits.load(), 32);
  EXPECT_GE(b.stats().executed - executed_before, 32u);
}

}  // namespace
}  // namespace fcma::sched
