// Tests for statistical significance machinery: exact binomial tails,
// multiple-comparison control, permutation testing, and the significance-
// driven voxel selection layer.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fcma/corr_norm.hpp"
#include "fcma/selection.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "stats/significance.hpp"

namespace fcma {
namespace {

TEST(Binomial, LogChooseKnownValues) {
  EXPECT_NEAR(std::exp(stats::log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(stats::log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(stats::log_choose(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(stats::log_choose(52, 5)), 2598960.0, 1.0);
}

TEST(Binomial, LogChooseRejectsBadArgs) {
  EXPECT_THROW(stats::log_choose(3, 4), Error);
}

TEST(Binomial, SurvivalFunctionKnownValues) {
  // Fair coin, 10 flips: P(X >= 8) = (45 + 10 + 1) / 1024.
  EXPECT_NEAR(stats::binomial_sf(8, 10, 0.5), 56.0 / 1024.0, 1e-12);
  // P(X >= 0) = 1; P(X >= n) = p^n.
  EXPECT_DOUBLE_EQ(stats::binomial_sf(0, 10, 0.5), 1.0);
  EXPECT_NEAR(stats::binomial_sf(10, 10, 0.5), std::pow(0.5, 10), 1e-15);
  EXPECT_DOUBLE_EQ(stats::binomial_sf(11, 10, 0.5), 0.0);
}

TEST(Binomial, SurvivalFunctionMonotoneInK) {
  double prev = 1.1;
  for (std::size_t k = 0; k <= 20; ++k) {
    const double p = stats::binomial_sf(k, 20, 0.5);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(Binomial, AsymmetricChanceLevel) {
  // P(X >= 2 | n=3, p=0.9) = 3*0.81*0.1 + 0.729 = 0.972.
  EXPECT_NEAR(stats::binomial_sf(2, 3, 0.9), 0.972, 1e-12);
}

TEST(Binomial, AccuracyPvalueScalesWithEvidence) {
  // 60% accuracy: far more convincing over 500 epochs than over 10.
  const double small = stats::accuracy_pvalue(6, 10);
  const double large = stats::accuracy_pvalue(300, 500);
  EXPECT_GT(small, 0.3);
  EXPECT_LT(large, 1e-4);
}

TEST(MultipleComparisons, BonferroniScalesAlpha) {
  const std::vector<double> p{0.004, 0.011, 0.2, 0.0001};
  const auto pass = stats::bonferroni(p, 0.05);  // threshold 0.0125
  EXPECT_EQ(pass, (std::vector<bool>{true, true, false, true}));
}

TEST(MultipleComparisons, BhKnownExample) {
  // Classic BH example: m = 6, q = 0.25; thresholds r/m * q.
  const std::vector<double> p{0.01, 0.04, 0.03, 0.005, 0.55, 0.34};
  const auto pass = stats::benjamini_hochberg(p, 0.25);
  // sorted: .005 .01 .03 .04 .34 .55 vs .0417 .0833 .125 .1667 .2083 .25:
  // largest passing rank = 4 -> the four smallest pass.
  EXPECT_EQ(pass, (std::vector<bool>{true, true, true, true, false, false}));
}

TEST(MultipleComparisons, BhNeverLessPowerfulThanBonferroni) {
  Rng rng(5);
  std::vector<double> p(200);
  for (auto& v : p) v = rng.uniform();
  p[3] = 1e-8;
  p[7] = 1e-6;
  const auto bh = stats::benjamini_hochberg(p, 0.05);
  const auto bf = stats::bonferroni(p, 0.05);
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (bf[i]) EXPECT_TRUE(bh[i]) << i;
  }
}

TEST(MultipleComparisons, EmptyInputs) {
  EXPECT_TRUE(stats::benjamini_hochberg({}, 0.05).empty());
  EXPECT_TRUE(stats::bonferroni({}, 0.05).empty());
}

TEST(Permutation, PvalueCountsTail) {
  const std::vector<double> nulls{0.4, 0.5, 0.45, 0.55, 0.5};
  // 1 null >= 0.55 -> (1+1)/(5+1).
  EXPECT_NEAR(stats::permutation_pvalue(0.55, nulls), 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(stats::permutation_pvalue(0.99, nulls), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(stats::permutation_pvalue(0.0, nulls), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Significance-driven selection over real pipeline output
// ---------------------------------------------------------------------------

struct SelectionFixture {
  fmri::Dataset dataset;
  core::Scoreboard board;
  std::size_t cv_total;

  SelectionFixture()
      : dataset(make_dataset()), board(dataset.voxels()), cv_total(0) {
    const fmri::NormalizedEpochs ne = fmri::normalize_epochs(dataset);
    const core::VoxelTask all{
        0, static_cast<std::uint32_t>(dataset.voxels())};
    board.add(core::run_task(ne, all, core::PipelineConfig::optimized()));
    cv_total = dataset.epochs().size();
  }

  static fmri::Dataset make_dataset() {
    fmri::DatasetSpec spec = fmri::tiny_spec();
    spec.voxels = 128;
    spec.informative = 20;
    spec.subjects = 6;
    spec.epochs_total = 72;
    return fmri::generate_synthetic(spec);
  }
};

TEST(Selection, PvaluesReflectAccuracies) {
  const SelectionFixture fx;
  const auto pvalues = core::accuracy_pvalues(fx.board, fx.cv_total);
  ASSERT_EQ(pvalues.size(), fx.dataset.voxels());
  const auto ranked = fx.board.ranked();
  // Highest accuracy -> smallest p-value; lowest -> largest.
  EXPECT_LT(pvalues[ranked.front().voxel], pvalues[ranked.back().voxel]);
  for (const double p : pvalues) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Selection, FdrFindsPlantedVoxelsOnly) {
  const SelectionFixture fx;
  const auto selected = core::significant_voxels(
      fx.board, fx.cv_total, 0.05, core::Correction::kFdr);
  EXPECT_GE(selected.size(), 10u);  // most planted voxels survive
  // Precision: selected voxels should be overwhelmingly planted.
  std::size_t hits = 0;
  const auto& truth = fx.dataset.informative_voxels();
  for (const auto v : selected) {
    hits += std::binary_search(truth.begin(), truth.end(), v);
  }
  EXPECT_GE(static_cast<double>(hits) /
                static_cast<double>(selected.size()),
            0.8);
}

TEST(Selection, BonferroniIsStricterThanFdr) {
  const SelectionFixture fx;
  const auto fdr = core::significant_voxels(fx.board, fx.cv_total, 0.05,
                                            core::Correction::kFdr);
  const auto bon = core::significant_voxels(
      fx.board, fx.cv_total, 0.05, core::Correction::kBonferroni);
  EXPECT_LE(bon.size(), fdr.size());
  const auto none = core::significant_voxels(fx.board, fx.cv_total, 0.05,
                                             core::Correction::kNone);
  EXPECT_GE(none.size(), fdr.size());
}

TEST(Selection, PermutationNullCentersAtChance) {
  const SelectionFixture fx;
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(fx.dataset);
  const std::size_t m = ne.per_epoch.size();
  // Null distribution for one *noise* voxel.
  std::uint32_t noise_voxel = 0;
  const auto& truth = fx.dataset.informative_voxels();
  while (std::binary_search(truth.begin(), truth.end(), noise_voxel)) {
    ++noise_voxel;
  }
  const core::VoxelTask one{noise_voxel, 1};
  linalg::Matrix buf =
      core::make_corr_buffer(one, m, fx.dataset.voxels());
  core::optimized_correlate_normalize(ne, one, buf.view(),
                                      core::NormMode::kMerged);
  linalg::Matrix kernel(m, m);
  core::compute_voxel_kernel(buf.view(), m, 0, core::Impl::kOptimized,
                             kernel.view());
  const auto folds = core::epoch_loso_folds(ne.meta);
  Rng rng(99);
  const auto nulls = core::permutation_null_accuracies(
      kernel.view(), ne.meta, folds, svm::SolverKind::kPhiSvm,
      svm::TrainOptions{}, 30, rng);
  ASSERT_EQ(nulls.size(), 30u);
  double mean = 0.0;
  for (const double a : nulls) mean += a;
  mean /= 30.0;
  EXPECT_NEAR(mean, 0.5, 0.12);
}

TEST(Selection, PermutationPvalueSeparatesSignalFromNoise) {
  const SelectionFixture fx;
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(fx.dataset);
  const std::size_t m = ne.per_epoch.size();
  const auto folds = core::epoch_loso_folds(ne.meta);
  const auto& truth = fx.dataset.informative_voxels();

  auto voxel_pvalue = [&](std::uint32_t voxel) {
    const core::VoxelTask one{voxel, 1};
    linalg::Matrix buf =
        core::make_corr_buffer(one, m, fx.dataset.voxels());
    core::optimized_correlate_normalize(ne, one, buf.view(),
                                        core::NormMode::kMerged);
    linalg::Matrix kernel(m, m);
    core::compute_voxel_kernel(buf.view(), m, 0, core::Impl::kOptimized,
                               kernel.view());
    const auto labels = core::epoch_labels(ne.meta);
    const double observed =
        svm::cross_validate(svm::SolverKind::kPhiSvm, kernel.view(), labels,
                            folds, svm::TrainOptions{})
            .accuracy();
    Rng rng(7);
    const auto nulls = core::permutation_null_accuracies(
        kernel.view(), ne.meta, folds, svm::SolverKind::kPhiSvm,
        svm::TrainOptions{}, 24, rng);
    return stats::permutation_pvalue(observed, nulls);
  };

  EXPECT_LE(voxel_pvalue(truth.front()), 0.05);
  std::uint32_t noise_voxel = 0;
  while (std::binary_search(truth.begin(), truth.end(), noise_voxel)) {
    ++noise_voxel;
  }
  EXPECT_GT(voxel_pvalue(noise_voxel), 0.05);
}

}  // namespace
}  // namespace fcma
