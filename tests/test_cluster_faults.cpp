// Tests for the heterogeneous / fault-injected cluster simulation and the
// KNL architecture preset.
#include <gtest/gtest.h>

#include <limits>

#include "archsim/arch_model.hpp"
#include "cluster/sim.hpp"
#include "common/error.hpp"

namespace fcma::cluster {
namespace {

FarmConfig basic_config() {
  FarmConfig c;
  c.broadcast_bytes = 0.0;
  c.task_overhead_s = 0.0;
  return c;
}

std::vector<WorkerProfile> uniform_workers(std::size_t n) {
  return std::vector<WorkerProfile>(n, WorkerProfile{});
}

TEST(FaultSim, UniformWorkersMatchHomogeneousModel) {
  const std::vector<double> tasks(64, 2.0);
  FarmConfig config = basic_config();
  config.workers = 8;
  const double homogeneous =
      simulate_task_farm(config, tasks, 2).makespan_s;
  const auto workers = uniform_workers(8);
  const double heterogeneous =
      simulate_task_farm(config, tasks, 2, workers).base.makespan_s;
  EXPECT_NEAR(heterogeneous, homogeneous, 0.05 * homogeneous);
}

TEST(FaultSim, StragglerSlowsTheFarm) {
  const std::vector<double> tasks(64, 2.0);
  FarmConfig config = basic_config();
  auto workers = uniform_workers(8);
  const double uniform =
      simulate_task_farm(config, tasks, 1, workers).base.makespan_s;
  workers[3].speed = 0.25;  // one node at quarter speed
  const double straggler =
      simulate_task_farm(config, tasks, 1, workers).base.makespan_s;
  EXPECT_GT(straggler, uniform);
  // The task farm self-balances: nowhere near the 4x a static split costs.
  EXPECT_LT(straggler, 2.0 * uniform);
}

TEST(FaultSim, FasterNodesShortenMakespan) {
  const std::vector<double> tasks(64, 2.0);
  FarmConfig config = basic_config();
  auto workers = uniform_workers(8);
  const double uniform =
      simulate_task_farm(config, tasks, 1, workers).base.makespan_s;
  for (auto& w : workers) w.speed = 2.0;
  const double fast =
      simulate_task_farm(config, tasks, 1, workers).base.makespan_s;
  EXPECT_NEAR(fast, uniform / 2.0, 0.15 * uniform);
}

TEST(FaultSim, DeadWorkerTasksAreReassignedAndCompleted) {
  const std::vector<double> tasks(40, 2.0);
  FarmConfig config = basic_config();
  auto workers = uniform_workers(4);
  workers[0].fails_at = 3.0;  // dies during its second task
  const FarmOutcomeEx outcome =
      simulate_task_farm(config, tasks, 1, workers);
  EXPECT_EQ(outcome.workers_lost, 1u);
  EXPECT_GE(outcome.tasks_reassigned, 1u);
  // All work still completed (compute_s counts every finished task).
  EXPECT_NEAR(outcome.base.compute_s, 40 * 2.0, 1e-6);
  // And the loss costs time vs the healthy cluster.
  const double healthy =
      simulate_task_farm(config, tasks, 1, uniform_workers(4))
          .base.makespan_s;
  EXPECT_GT(outcome.base.makespan_s, healthy);
}

TEST(FaultSim, NodeDeadFromStartActsLikeSmallerCluster) {
  const std::vector<double> tasks(60, 1.0);
  FarmConfig config = basic_config();
  auto workers = uniform_workers(6);
  workers[5].fails_at = 0.0;
  const double five_alive =
      simulate_task_farm(config, tasks, 1, uniform_workers(5))
          .base.makespan_s;
  const double with_dead =
      simulate_task_farm(config, tasks, 1, workers).base.makespan_s;
  EXPECT_NEAR(with_dead, five_alive, 0.15 * five_alive);
}

TEST(FaultSim, AllWorkersDeadThrows) {
  const std::vector<double> tasks(4, 1.0);
  FarmConfig config = basic_config();
  auto workers = uniform_workers(2);
  workers[0].fails_at = 0.0;
  workers[1].fails_at = 0.0;
  EXPECT_THROW((void)simulate_task_farm(config, tasks, 1, workers),
               Error);
}

TEST(FaultSim, DetectionLatencyDelaysReassignment) {
  const std::vector<double> tasks(8, 2.0);
  FarmConfig slow_detect = basic_config();
  slow_detect.failure_detect_s = 30.0;
  FarmConfig fast_detect = basic_config();
  fast_detect.failure_detect_s = 0.5;
  auto workers = uniform_workers(2);
  workers[0].fails_at = 1.0;
  const double slow =
      simulate_task_farm(slow_detect, tasks, 1, workers).base.makespan_s;
  const double fast =
      simulate_task_farm(fast_detect, tasks, 1, workers).base.makespan_s;
  EXPECT_LE(fast, slow);
}

TEST(FaultSim, RecoveryOverheadIsZeroWithoutFailures) {
  const std::vector<double> tasks(32, 1.0);
  FarmConfig config = basic_config();
  const auto workers = uniform_workers(4);
  const FarmOutcomeEx outcome =
      simulate_task_farm(config, tasks, 2, workers);
  EXPECT_EQ(outcome.workers_lost, 0u);
  EXPECT_DOUBLE_EQ(outcome.recovery_overhead_s, 0.0);
}

TEST(FaultSim, RecoveryOverheadChargedPerDeath) {
  const std::vector<double> tasks(40, 2.0);
  FarmConfig config = basic_config();
  auto workers = uniform_workers(4);
  workers[0].fails_at = 3.0;
  const FarmOutcomeEx outcome =
      simulate_task_farm(config, tasks, 1, workers);
  EXPECT_EQ(outcome.workers_lost, 1u);
  // At least the detection window; at most detection + one full task of
  // wasted partial compute per reassignment.
  EXPECT_GE(outcome.recovery_overhead_s, config.failure_detect_s);
  EXPECT_LE(outcome.recovery_overhead_s,
            static_cast<double>(outcome.tasks_reassigned) *
                (config.failure_detect_s + 2.0) + 1e-9);
}

TEST(FaultSim, RecoveryOverheadGrowsWithDetectionLatency) {
  const std::vector<double> tasks(8, 2.0);
  FarmConfig slow_detect = basic_config();
  slow_detect.failure_detect_s = 30.0;
  FarmConfig fast_detect = basic_config();
  fast_detect.failure_detect_s = 0.5;
  auto workers = uniform_workers(2);
  workers[0].fails_at = 1.0;
  const double slow =
      simulate_task_farm(slow_detect, tasks, 1, workers).recovery_overhead_s;
  const double fast =
      simulate_task_farm(fast_detect, tasks, 1, workers).recovery_overhead_s;
  EXPECT_GT(slow, fast);
}

TEST(FaultSim, RejectsBadProfiles) {
  const std::vector<double> tasks(4, 1.0);
  FarmConfig config = basic_config();
  std::vector<WorkerProfile> workers{WorkerProfile{0.0, 1e9}};
  EXPECT_THROW((void)simulate_task_farm(config, tasks, 1, workers),
               Error);
  EXPECT_THROW((void)simulate_task_farm(config, tasks, 1,
                                        std::span<const WorkerProfile>{}),
               Error);
}

// ---------------------------------------------------------------------------
// Control-plane model: master failover and speculative re-execution
// ---------------------------------------------------------------------------

TEST(FaultSim, MasterFailoverAddsTheDetectionWindow) {
  const std::vector<double> tasks(64, 2.0);
  FarmConfig config = basic_config();
  const auto workers = uniform_workers(8);
  const double clean =
      simulate_task_farm(config, tasks, 1, workers).base.makespan_s;
  config.master_fails_at = clean / 2.0;  // mid-fold
  config.failover_detect_s = 3.0;
  const auto failed = simulate_task_farm(config, tasks, 1, workers);
  EXPECT_EQ(failed.failovers, 1u);
  EXPECT_GE(failed.failover_overhead_s, config.failover_detect_s);
  // The blackout costs at least the detection window, but the farm still
  // finishes — it does not degenerate to a restart from scratch.
  EXPECT_GT(failed.base.makespan_s, clean);
  EXPECT_LT(failed.base.makespan_s, 2.0 * clean);
}

TEST(FaultSim, ResultsInFlightToTheDeadMasterAreRecomputed) {
  const std::vector<double> tasks(16, 2.0);
  FarmConfig config = basic_config();
  const auto workers = uniform_workers(4);
  // Kill the master while the first wave's results are on the wire.
  config.master_fails_at = 2.0;
  config.failover_detect_s = 1.0;
  const auto failed = simulate_task_farm(config, tasks, 1, workers);
  EXPECT_EQ(failed.failovers, 1u);
  EXPECT_GE(failed.tasks_reassigned, 1u);  // lost in flight, redone
  EXPECT_EQ(failed.workers_lost, 0u);      // the nodes themselves survived
}

TEST(FaultSim, ImmortalMasterReportsNoFailover) {
  const std::vector<double> tasks(32, 1.0);
  FarmConfig config = basic_config();
  const auto workers = uniform_workers(4);
  const auto outcome = simulate_task_farm(config, tasks, 1, workers);
  EXPECT_EQ(outcome.failovers, 0u);
  EXPECT_EQ(outcome.failover_overhead_s, 0.0);
  EXPECT_EQ(outcome.tasks_speculated, 0u);
  EXPECT_EQ(outcome.speculative_waste_s, 0.0);
}

TEST(FaultSim, SpeculationBeatsTheStragglerTailAndChargesWaste) {
  // A tenth-speed node turns any task it picks up into a 10 s tail.
  const std::vector<double> tasks(32, 1.0);
  FarmConfig config = basic_config();
  auto workers = uniform_workers(8);
  workers[0].speed = 0.1;
  const auto plain = simulate_task_farm(config, tasks, 1, workers);
  config.speculate_after_s = 2.0;
  const auto spec = simulate_task_farm(config, tasks, 1, workers);
  EXPECT_GE(spec.tasks_speculated, 1u);
  EXPECT_GT(spec.speculative_waste_s, 0.0);
  // The replica on a full-speed node finishes well before the straggler.
  EXPECT_LT(spec.base.makespan_s, plain.base.makespan_s);
}

TEST(FaultSim, RejectsBadControlPlaneConfig) {
  const std::vector<double> tasks(4, 1.0);
  const auto workers = uniform_workers(2);
  FarmConfig config = basic_config();
  config.master_fails_at = -1.0;
  EXPECT_THROW((void)simulate_task_farm(config, tasks, 1, workers), Error);
  config = basic_config();
  config.failover_detect_s = 0.0;
  EXPECT_THROW((void)simulate_task_farm(config, tasks, 1, workers), Error);
  config = basic_config();
  config.speculate_after_s = 0.0;
  EXPECT_THROW((void)simulate_task_farm(config, tasks, 1, workers), Error);
}

// ---------------------------------------------------------------------------
// KNL forward-port model (paper's conclusion: "migrated ... to KNL")
// ---------------------------------------------------------------------------

TEST(Knl, PeakMatchesDatasheet) {
  // 68 cores x 16 lanes x 2 flops x 2 VPUs x 1.4 GHz ~ 6.1 TFLOPS SP.
  EXPECT_NEAR(archsim::PhiKnl7250().peak_sp_gflops(), 6092.8, 1.0);
  EXPECT_EQ(archsim::PhiKnl7250().max_threads(), 272);
}

TEST(Knl, OutrunsKncOnTheSameEvents) {
  const memsim::KernelEvents events{.flops = 1ull << 32,
                                    .vpu_instructions = 1ull << 28,
                                    .vpu_elements = 1ull << 32,
                                    .mem_refs = 1ull << 28,
                                    .l1_misses = 1ull << 24,
                                    .l2_misses = 1ull << 23};
  const double knc = archsim::Phi5110P().modeled_seconds(events);
  const double knl = archsim::PhiKnl7250().modeled_seconds(events);
  EXPECT_LT(knl, knc / 2.0);
}

}  // namespace
}  // namespace fcma::cluster
