// Tests for the scoreboard and the offline/online analysis protocols: the
// "science" layer that must recover planted connectivity and beat chance on
// held-out subjects.
#include <gtest/gtest.h>

#include <set>

#include "fcma/offline.hpp"
#include "fcma/online.hpp"
#include "fcma/scoreboard.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::core {
namespace {

fmri::Dataset protocol_dataset() {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 96;
  spec.informative = 16;
  spec.subjects = 4;
  spec.epochs_total = 48;  // 12 per subject
  return fmri::generate_synthetic(spec);
}

TEST(Scoreboard, TracksCompletion) {
  Scoreboard board(10);
  EXPECT_FALSE(board.complete());
  TaskResult r;
  r.task = VoxelTask{0, 10};
  r.accuracy.assign(10, 0.5);
  board.add(r);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(board.scored(), 10u);
}

TEST(Scoreboard, RejectsDoubleScoring) {
  Scoreboard board(4);
  TaskResult r;
  r.task = VoxelTask{0, 2};
  r.accuracy = {0.5, 0.6};
  board.add(r);
  EXPECT_THROW(board.add(r), Error);
}

TEST(Scoreboard, RejectsOutOfRangeTask) {
  Scoreboard board(4);
  TaskResult r;
  r.task = VoxelTask{2, 5};
  r.accuracy.assign(5, 0.5);
  EXPECT_THROW(board.add(r), Error);
}

TEST(Scoreboard, RankedSortsByAccuracyThenVoxel) {
  Scoreboard board(4);
  TaskResult r;
  r.task = VoxelTask{0, 4};
  r.accuracy = {0.7, 0.9, 0.7, 0.5};
  board.add(r);
  const auto ranked = board.ranked();
  EXPECT_EQ(ranked[0].voxel, 1u);
  EXPECT_EQ(ranked[1].voxel, 0u);  // tie broken by lower id
  EXPECT_EQ(ranked[2].voxel, 2u);
  EXPECT_EQ(ranked[3].voxel, 3u);
}

TEST(Scoreboard, TopVoxelsSortedAscending) {
  Scoreboard board(5);
  TaskResult r;
  r.task = VoxelTask{0, 5};
  r.accuracy = {0.1, 0.9, 0.3, 0.8, 0.2};
  board.add(r);
  EXPECT_EQ(board.top_voxels(2), (std::vector<std::uint32_t>{1, 3}));
}

TEST(Scoreboard, RecoveryRateCountsOverlap) {
  Scoreboard board(6);
  TaskResult r;
  r.task = VoxelTask{0, 6};
  r.accuracy = {0.9, 0.8, 0.1, 0.2, 0.7, 0.1};
  board.add(r);
  // top-3 = {0, 1, 4}; truth {0, 4, 5} -> 2/3 recovered.
  EXPECT_NEAR(board.recovery_rate({0, 4, 5}), 2.0 / 3.0, 1e-12);
}

TEST(KfoldGroups, InterleavesSamples) {
  const auto folds = kfold_groups(10, 3);
  ASSERT_EQ(folds.size(), 3u);
  EXPECT_EQ(folds[0], (std::vector<std::size_t>{0, 3, 6, 9}));
  EXPECT_EQ(folds[1], (std::vector<std::size_t>{1, 4, 7}));
  EXPECT_EQ(folds[2], (std::vector<std::size_t>{2, 5, 8}));
}

TEST(KfoldGroups, RejectsBadFoldCounts) {
  EXPECT_THROW(kfold_groups(4, 1), Error);
  EXPECT_THROW(kfold_groups(4, 5), Error);
}

// ---------------------------------------------------------------------------
// Offline protocol
// ---------------------------------------------------------------------------

TEST(Offline, RecoversPlantedVoxelsAndBeatsChance) {
  const fmri::Dataset d = protocol_dataset();
  OfflineOptions opts;
  opts.top_k = 16;
  const OfflineResult result = run_offline_analysis(d, opts);
  ASSERT_EQ(result.folds.size(), static_cast<std::size_t>(d.subjects()));

  // Selection quality: most selected voxels should be planted informative.
  const std::set<std::uint32_t> truth(d.informative_voxels().begin(),
                                      d.informative_voxels().end());
  double hit_rate_sum = 0.0;
  for (const FoldResult& f : result.folds) {
    std::size_t hits = 0;
    for (const std::uint32_t v : f.selected) hits += truth.count(v);
    hit_rate_sum +=
        static_cast<double>(hits) / static_cast<double>(f.selected.size());
    EXPECT_GT(f.mean_selected_cv_accuracy, 0.7);
  }
  EXPECT_GT(hit_rate_sum / static_cast<double>(result.folds.size()), 0.7);

  // Generalization: the final classifier must beat chance on held-out
  // subjects (the paper "reproduced the results of [30] and [16]").
  EXPECT_GT(result.mean_test_accuracy(), 0.7);
}

TEST(Offline, ReliableVoxelsIntersectFolds) {
  const fmri::Dataset d = protocol_dataset();
  OfflineOptions opts;
  opts.top_k = 16;
  const OfflineResult result = run_offline_analysis(d, opts);
  const auto reliable =
      result.reliable_voxels(result.folds.size(), d.voxels());
  // Every always-selected voxel must appear in each fold's selection.
  for (const std::uint32_t v : reliable) {
    for (const FoldResult& f : result.folds) {
      EXPECT_TRUE(std::find(f.selected.begin(), f.selected.end(), v) !=
                  f.selected.end());
    }
  }
  // And with planted structure there should be a non-trivial stable core.
  EXPECT_GE(reliable.size(), 4u);
}

TEST(Offline, TaskPartitioningDoesNotChangeSelection) {
  const fmri::Dataset d = protocol_dataset();
  OfflineOptions one_task;
  one_task.top_k = 8;
  OfflineOptions many_tasks;
  many_tasks.top_k = 8;
  many_tasks.voxels_per_task = 17;  // uneven split
  const OfflineResult a = run_offline_analysis(d, one_task);
  const OfflineResult b = run_offline_analysis(d, many_tasks);
  ASSERT_EQ(a.folds.size(), b.folds.size());
  for (std::size_t f = 0; f < a.folds.size(); ++f) {
    EXPECT_EQ(a.folds[f].selected, b.folds[f].selected);
  }
}

TEST(Offline, PooledTasksBitIdenticalToSerial) {
  // Task-parallel execution must be invisible in the result: each task is
  // computed serially on one worker and the merge is in task order, so the
  // OfflineResult has to match the single-thread run bit for bit.
  const fmri::Dataset d = protocol_dataset();
  OfflineOptions serial;
  serial.top_k = 8;
  serial.voxels_per_task = 24;
  OfflineOptions pooled = serial;
  threading::ThreadPool pool(4);
  pooled.pipeline.pool = &pool;
  const OfflineResult a = run_offline_analysis(d, serial);
  const OfflineResult b = run_offline_analysis(d, pooled);
  ASSERT_EQ(a.folds.size(), b.folds.size());
  for (std::size_t f = 0; f < a.folds.size(); ++f) {
    EXPECT_EQ(a.folds[f].left_out_subject, b.folds[f].left_out_subject);
    EXPECT_EQ(a.folds[f].selected, b.folds[f].selected);
    EXPECT_EQ(a.folds[f].mean_selected_cv_accuracy,
              b.folds[f].mean_selected_cv_accuracy);
    EXPECT_EQ(a.folds[f].test_accuracy, b.folds[f].test_accuracy);
  }
}

TEST(SelectedFeatures, UpperTriangleDimensions) {
  const fmri::Dataset d = protocol_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::vector<std::uint32_t> sel{1, 5, 9, 20};
  const linalg::Matrix f = selected_correlation_features(ne, sel);
  EXPECT_EQ(f.rows(), ne.per_epoch.size());
  EXPECT_EQ(f.cols(), 6u);  // C(4,2)
}

TEST(SelectedFeatures, ValuesAreCorrelations) {
  const fmri::Dataset d = protocol_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::vector<std::uint32_t> sel{3, 7};
  const linalg::Matrix f = selected_correlation_features(ne, sel);
  for (std::size_t e = 0; e < f.rows(); ++e) {
    EXPECT_GE(f(e, 0), -1.01f);
    EXPECT_LE(f(e, 0), 1.01f);
  }
}

// ---------------------------------------------------------------------------
// Online protocol
// ---------------------------------------------------------------------------

TEST(Online, SelectsInformativeVoxelsForOneSubject) {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 96;
  spec.informative = 16;
  spec.subjects = 2;
  spec.epochs_total = 96;  // 48 epochs for the scanned subject: online
                           // selection sees far fewer samples than the
                           // offline protocol, so give it a full session
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  OnlineOptions opts;
  opts.top_k = 16;
  opts.k_folds = 4;
  const OnlineResult r = run_online_selection(d, 0, opts);
  ASSERT_EQ(r.selected.size(), 16u);
  const std::set<std::uint32_t> truth(d.informative_voxels().begin(),
                                      d.informative_voxels().end());
  std::size_t hits = 0;
  for (const std::uint32_t v : r.selected) hits += truth.count(v);
  EXPECT_GT(static_cast<double>(hits) / 16.0, 0.6);
  EXPECT_GT(r.mean_selected_cv_accuracy, 0.7);
  EXPECT_GT(r.classifier_cv_accuracy, 0.6);
}

TEST(Online, RejectsBadSubject) {
  const fmri::Dataset d = protocol_dataset();
  OnlineOptions opts;
  EXPECT_THROW(run_online_selection(d, -1, opts), Error);
  EXPECT_THROW(run_online_selection(d, d.subjects(), opts), Error);
}

TEST(Online, UsesOnlyTheScannedSubjectsData) {
  // Corrupting other subjects' data must not change the selection.
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 64;
  spec.informative = 12;
  const fmri::Dataset clean = fmri::generate_synthetic(spec);
  fmri::Dataset dirty = fmri::generate_synthetic(spec);
  for (const fmri::Epoch& e : dirty.epochs()) {
    if (e.subject == 0) continue;
    for (std::size_t v = 0; v < dirty.voxels(); ++v) {
      for (std::uint32_t t = 0; t < e.length; ++t) {
        dirty.data()(v, e.start + t) = -999.0f;
      }
    }
  }
  OnlineOptions opts;
  opts.top_k = 8;
  const OnlineResult a = run_online_selection(clean, 0, opts);
  const OnlineResult b = run_online_selection(dirty, 0, opts);
  EXPECT_EQ(a.selected, b.selected);
}

}  // namespace
}  // namespace fcma::core
