// Tests for the shape-adaptive kernel autotuner (linalg/tune): shape
// classing, probe bookkeeping, the persistent fcma.tune.v1 cache (round
// trip, corruption, truncation, out-of-grid geometries), forced geometries,
// and the roofline invalidation rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "linalg/tune.hpp"

namespace fcma::linalg::tune {
namespace {

// A scratch path in the build dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("tune_test_" + name + ".json") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << text;
}

// Each test drives a fresh private Tuner, not instance(): the singleton's
// state (env-seeded, shared with any kernel call in the binary) would bleed
// between tests.
class TuneTest : public ::testing::Test {
 protected:
  Tuner tuner;
};

TEST(TuneClass, BucketsDimensionsByLog2) {
  // Shapes within a factor of two share a class...
  EXPECT_EQ(gemm_class(100, 35000, 12), gemm_class(70, 34000, 12));
  EXPECT_EQ(syrk_class(200, 35000), syrk_class(250, 34000));
  // ...and doubling any dimension moves to a new one.
  EXPECT_NE(gemm_class(100, 35000, 12), gemm_class(100, 35000, 24));
  EXPECT_NE(gemm_class(100, 35000, 12), gemm_class(407, 35000, 12));
  EXPECT_NE(syrk_class(200, 35000), syrk_class(200, 4000));
  // Kind is part of the class name.
  EXPECT_NE(gemm_class(8, 8, 8).substr(0, 4), syrk_class(8, 8).substr(0, 4));
}

TEST(TuneCandidates, GridsMatchTheDocumentedSearchSpace) {
  EXPECT_EQ(gemm_candidates().size(), 8u);  // {128,256,512,1024} x {2,4}
  EXPECT_EQ(syrk_candidates().size(), 6u);  // {48,96,192} x {6,9}
  for (const SyrkGeometry& geo : syrk_candidates()) {
    EXPECT_EQ(geo.panel_k % 48, 0u) << "panel_k must preserve the numeric "
                                       "substep";
  }
  // The pre-tuner fixed geometries are members of their grids (so a cache
  // or force naming the defaults always validates).
  const auto& gg = gemm_candidates();
  const auto& sg = syrk_candidates();
  EXPECT_NE(std::find(gg.begin(), gg.end(), GemmGeometry{}), gg.end());
  EXPECT_NE(std::find(sg.begin(), sg.end(), SyrkGeometry{}), sg.end());
}

TEST_F(TuneTest, FirstUseProbesThenRemembers) {
  EXPECT_EQ(tuner.probes(), 0u);
  const GemmGeometry first = tuner.gemm(100, 35000, 12);
  EXPECT_EQ(tuner.probes(), gemm_candidates().size());
  EXPECT_EQ(tuner.cache_hits(), 0u);
  // Same class: no new probes, same answer.
  const GemmGeometry again = tuner.gemm(90, 34000, 12);
  EXPECT_EQ(tuner.probes(), gemm_candidates().size());
  EXPECT_EQ(tuner.cache_hits(), 1u);
  EXPECT_TRUE(first == again);
  // New class probes again.
  (void)tuner.syrk(200, 4000);
  EXPECT_EQ(tuner.probes(),
            gemm_candidates().size() + syrk_candidates().size());
}

TEST_F(TuneTest, RealShapesProbeTheActualCallShape) {
  // Default: probe shapes are clamped down to the synthetic ceiling.
  (void)tuner.gemm(100, 35000, 12);
  ASSERT_EQ(tuner.entries().size(), 1u);
  EXPECT_LT(tuner.entries()[0].probe_n, 35000u);

  tuner.reset();
  tuner.set_real_shapes(true);
  EXPECT_TRUE(tuner.real_shapes());
  (void)tuner.gemm(40, 3000, 12);
  ASSERT_EQ(tuner.entries().size(), 1u);
  const Entry e = tuner.entries()[0];
  EXPECT_EQ(e.probe_m, 40u);
  EXPECT_EQ(e.probe_n, 3000u);
  EXPECT_EQ(e.probe_k, 12u);
  // Lower clamps survive: a degenerate shape is padded up, not probed raw.
  (void)tuner.syrk(2, 50);
  const auto entries = tuner.entries();
  for (const Entry& se : entries) {
    if (se.kind != "syrk") continue;
    EXPECT_GE(se.probe_m, 8u);
    EXPECT_GE(se.probe_n, 192u);
  }
}

TEST_F(TuneTest, DisabledReturnsFixedDefaultsWithoutProbing) {
  tuner.set_enabled(false);
  const GemmGeometry g = tuner.gemm(100, 35000, 12);
  const SyrkGeometry s = tuner.syrk(200, 35000);
  EXPECT_TRUE(g == GemmGeometry{});
  EXPECT_TRUE(s == SyrkGeometry{});
  EXPECT_EQ(tuner.probes(), 0u);
}

TEST_F(TuneTest, CacheRoundTripPaysZeroProbes) {
  TempFile cache("roundtrip");
  tuner.set_cache_path(cache.path());
  (void)tuner.gemm(100, 3000, 12);
  (void)tuner.syrk(64, 3000);
  const std::size_t probes_paid = tuner.probes();
  EXPECT_GT(probes_paid, 0u);

  // A second tuner loading the file makes the same decisions for free.
  Tuner reloaded;
  reloaded.set_cache_path(cache.path());
  const GemmGeometry g = reloaded.gemm(100, 3000, 12);
  const SyrkGeometry s = reloaded.syrk(64, 3000);
  EXPECT_EQ(reloaded.probes(), 0u);
  EXPECT_EQ(reloaded.cache_hits(), 2u);
  bool found_gemm = false;
  bool found_syrk = false;
  for (const Entry& e : tuner.entries()) {
    if (e.kind == "gemm") {
      EXPECT_TRUE(e.gemm == g);
      found_gemm = true;
    } else {
      EXPECT_TRUE(e.syrk == s);
      found_syrk = true;
    }
  }
  EXPECT_TRUE(found_gemm);
  EXPECT_TRUE(found_syrk);
  for (const Entry& e : reloaded.entries()) {
    EXPECT_EQ(e.source, "cache");
  }
}

TEST_F(TuneTest, CorruptCacheIsRejected) {
  TempFile cache("corrupt");
  write_file(cache.path(), "{not json");
  EXPECT_THROW(tuner.set_cache_path(cache.path()), Error);
}

TEST_F(TuneTest, WrongSchemaIsRejected) {
  TempFile cache("schema");
  write_file(cache.path(),
             "{\"schema\": \"fcma.ckpt.v1\", \"entries\": []}");
  EXPECT_THROW(tuner.set_cache_path(cache.path()), Error);
}

TEST_F(TuneTest, TruncatedCacheIsRejected) {
  TempFile full("full");
  TempFile cut("truncated");
  tuner.set_cache_path(full.path());
  (void)tuner.gemm(100, 3000, 12);
  std::ifstream in(full.path(), std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  ASSERT_GT(text.size(), 40u);
  write_file(cut.path(), text.substr(0, text.size() / 2));
  Tuner fresh;
  EXPECT_THROW(fresh.set_cache_path(cut.path()), Error);
}

TEST_F(TuneTest, OutOfGridCacheGeometryIsRejected) {
  TempFile cache("badgeo");
  write_file(cache.path(),
             "{\"schema\": \"fcma.tune.v1\", \"entries\": ["
             "{\"key\": \"gemm:m7:n12:k4\", \"kind\": \"gemm\", "
             "\"isa\": \"avx512\", \"threads\": 1, \"panel_cols\": 333, "
             "\"unroll\": 4, \"probe_ms\": 1.0, \"gflops\": 1.0, "
             "\"pct_roofline\": 0.0}]}");
  EXPECT_THROW(tuner.set_cache_path(cache.path()), Error);
}

TEST_F(TuneTest, ForceIsHonoredWithoutProbes) {
  tuner.set_force("gemm:256");
  const GemmGeometry g = tuner.gemm(100, 35000, 12);
  EXPECT_EQ(g.panel_cols, 256u);
  EXPECT_EQ(g.unroll, 4);  // unspecified parts keep their defaults
  EXPECT_EQ(tuner.probes(), 0u);

  tuner.set_force("gemm:128:u2,syrk:48:r6");
  const GemmGeometry g2 = tuner.gemm(100, 35000, 12);
  const SyrkGeometry s2 = tuner.syrk(200, 35000);
  EXPECT_EQ(g2.panel_cols, 128u);
  EXPECT_EQ(g2.unroll, 2);
  EXPECT_EQ(s2.panel_k, 48u);
  EXPECT_EQ(s2.micro_rows, 6u);
  EXPECT_EQ(tuner.probes(), 0u);

  // Clearing the pin falls back to probing.
  tuner.set_force("");
  (void)tuner.gemm(100, 35000, 12);
  EXPECT_EQ(tuner.probes(), gemm_candidates().size());
}

TEST_F(TuneTest, BadForceSpecsThrow) {
  EXPECT_THROW(tuner.set_force("gemm:333"), Error);       // not in grid
  EXPECT_THROW(tuner.set_force("syrk:50"), Error);        // not a 48-multiple
  EXPECT_THROW(tuner.set_force("gemm:256:x9"), Error);    // bad suffix
  EXPECT_THROW(tuner.set_force("lu:256"), Error);         // unknown kind
  EXPECT_THROW(tuner.set_force("gemm"), Error);           // missing value
  EXPECT_THROW(tuner.set_force("gemm:abc"), Error);       // not a number
}

TEST_F(TuneTest, RooflineCollapseInvalidatesAndReprobes) {
  (void)tuner.gemm(100, 3000, 12);
  const std::size_t first_probes = tuner.probes();
  tuner.note_roofline("gemm", 80.0);  // healthy: recorded as best-known
  (void)tuner.gemm(100, 3000, 12);
  EXPECT_EQ(tuner.probes(), first_probes);  // still cached
  EXPECT_EQ(tuner.invalidations(), 0u);

  // A later run measures far below the recorded fraction: entry dropped.
  (void)tuner.gemm(100, 3000, 12);
  tuner.note_roofline("gemm", 80.0 * Tuner::kRetuneFraction * 0.5);
  EXPECT_EQ(tuner.invalidations(), 1u);
  (void)tuner.gemm(100, 3000, 12);
  EXPECT_EQ(tuner.probes(), 2 * first_probes);  // re-probed
}

TEST_F(TuneTest, MildRooflineDipDoesNotInvalidate) {
  (void)tuner.gemm(100, 3000, 12);
  tuner.note_roofline("gemm", 80.0);
  (void)tuner.gemm(100, 3000, 12);
  tuner.note_roofline("gemm", 80.0 * (Tuner::kRetuneFraction + 0.1));
  EXPECT_EQ(tuner.invalidations(), 0u);
}

TEST_F(TuneTest, ResetForgetsDecisionsAndCounters) {
  (void)tuner.gemm(100, 3000, 12);
  EXPECT_GT(tuner.probes(), 0u);
  tuner.reset();
  EXPECT_EQ(tuner.probes(), 0u);
  EXPECT_TRUE(tuner.entries().empty());
  (void)tuner.gemm(100, 3000, 12);
  EXPECT_EQ(tuner.probes(), gemm_candidates().size());
}

}  // namespace
}  // namespace fcma::linalg::tune
