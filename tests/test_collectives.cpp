// Tests for the MPI-style collectives over the in-process communicator.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cluster/comm.hpp"

namespace fcma::cluster {
namespace {

/// Runs `body(rank)` on `ranks` threads against one communicator.
void run_ranks(std::size_t ranks,
               const std::function<void(Comm&, std::size_t)>& body) {
  Comm comm(ranks);
  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    threads.emplace_back([&comm, &body, r] { body(comm, r); });
  }
  for (auto& t : threads) t.join();
}

TEST(Collectives, BroadcastDeliversRootPayload) {
  std::vector<std::vector<std::uint8_t>> received(5);
  run_ranks(5, [&](Comm& comm, std::size_t rank) {
    std::vector<std::uint8_t> payload;
    if (rank == 2) payload = {10, 20, 30};
    received[rank] = collective::broadcast(comm, rank, 2, std::move(payload));
  });
  for (const auto& r : received) {
    EXPECT_EQ(r, (std::vector<std::uint8_t>{10, 20, 30}));
  }
}

TEST(Collectives, GatherOrdersByRank) {
  std::vector<std::vector<std::uint8_t>> at_root;
  run_ranks(4, [&](Comm& comm, std::size_t rank) {
    auto result = collective::gather(
        comm, rank, 0, {static_cast<std::uint8_t>(rank * 11)});
    if (rank == 0) at_root = std::move(result);
  });
  ASSERT_EQ(at_root.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    ASSERT_EQ(at_root[r].size(), 1u);
    EXPECT_EQ(at_root[r][0], r * 11);
  }
}

TEST(Collectives, GatherNonRootGetsNothing) {
  run_ranks(3, [](Comm& comm, std::size_t rank) {
    const auto result = collective::gather(comm, rank, 1, {1});
    if (rank != 1) {
      EXPECT_TRUE(result.empty());
    }
  });
}

TEST(Collectives, BarrierSynchronizes) {
  std::atomic<int> before{0};
  std::atomic<bool> violation{false};
  run_ranks(6, [&](Comm& comm, std::size_t rank) {
    ++before;
    collective::barrier(comm, rank);
    // After the barrier, every rank must have incremented.
    if (before.load() != 6) violation = true;
  });
  EXPECT_FALSE(violation.load());
}

TEST(Collectives, RepeatedCollectivesStayInStep) {
  std::atomic<bool> mismatch{false};
  run_ranks(4, [&](Comm& comm, std::size_t rank) {
    for (std::uint8_t round = 0; round < 8; ++round) {
      const auto got = collective::broadcast(
          comm, rank, round % 4,
          rank == round % 4 ? std::vector<std::uint8_t>{round}
                            : std::vector<std::uint8_t>{});
      if (got != std::vector<std::uint8_t>{round}) mismatch = true;
      collective::barrier(comm, rank);
    }
  });
  EXPECT_FALSE(mismatch.load());
}

TEST(Collectives, SingleRankDegenerates) {
  Comm comm(1);
  const auto b = collective::broadcast(comm, 0, 0, {7});
  EXPECT_EQ(b, (std::vector<std::uint8_t>{7}));
  const auto g = collective::gather(comm, 0, 0, {9});
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0][0], 9);
  collective::barrier(comm, 0);  // must not deadlock
}

TEST(Collectives, BadRootThrows) {
  Comm comm(2);
  EXPECT_THROW((void)collective::broadcast(comm, 0, 5, {}), Error);
}

}  // namespace
}  // namespace fcma::cluster
