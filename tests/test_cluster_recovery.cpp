// Fault-tolerance tests for the hardened cluster protocol: deterministic
// fault injection (FaultPlan / FaultyComm), per-message checksums, timeout
// receives and the shutdown race, master-side leases with requeue on worker
// death, at-least-once idempotency, checkpoint/resume, and DriverOptions
// validation.  The load-bearing claim throughout: every recovery path
// produces a scoreboard bit-identical (EXPECT_EQ on doubles) to the
// fault-free single-node run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cluster/checkpoint.hpp"
#include "cluster/comm.hpp"
#include "cluster/driver.hpp"
#include "cluster/fault.hpp"
#include "common/error.hpp"
#include "common/timeline.hpp"
#include "common/tlstream.hpp"
#include "common/trace.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/scoreboard.hpp"
#include "fcma/task.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"

namespace fcma::cluster {
namespace {

// ---------------------------------------------------------------------------
// Comm hardening: checksums, timeouts, the shutdown race
// ---------------------------------------------------------------------------

TEST(CommHardening, ChecksumTravelsAndVerifies) {
  Comm comm(2);
  comm.send(0, 1, Tag::kUser, {1, 2, 3});
  Message m = comm.recv(1);
  EXPECT_TRUE(m.checksum_ok());
  EXPECT_EQ(m.checksum, Comm::payload_checksum({1, 2, 3}));
  m.payload[1] ^= 0xFF;  // flip a byte after delivery
  EXPECT_FALSE(m.checksum_ok());
}

TEST(CommHardening, RecvForTimesOut) {
  Comm comm(2);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(comm.recv_for(1, 0.05).has_value());
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(waited, 0.04);
  EXPECT_LT(waited, 2.0);
}

TEST(CommHardening, TaggedRecvForSkipsOtherTagsAndTimesOut) {
  Comm comm(2);
  comm.send(0, 1, Tag::kHeartbeat, {});
  // No kTaskResult pending: times out while the heartbeat stays queued.
  EXPECT_FALSE(comm.recv_for(1, Tag::kTaskResult, 0.05).has_value());
  const auto hb = comm.recv_for(1, Tag::kHeartbeat, 0.05);
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->tag, Tag::kHeartbeat);
}

TEST(CommHardening, RecvForReturnsMessageSentWhileWaiting) {
  Comm comm(2);
  std::thread sender([&comm] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    comm.send(0, 1, Tag::kUser, {42});
  });
  const auto m = comm.recv_for(1, 5.0);
  sender.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 42);
}

// The shutdown race (satellite bugfix): a worker blocked in recv while the
// master exits must unblock with a kShutdown-equivalent message instead of
// deadlocking the join.  Runs under the TSan gate via tools/ci_tsan.sh.
TEST(CommHardening, CloseUnblocksBlockedRecv) {
  Comm comm(2);
  Message got;
  std::thread blocked([&] { got = comm.recv(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  comm.close();
  blocked.join();  // would hang forever without the poison
  EXPECT_EQ(got.tag, Tag::kShutdown);
}

TEST(CommHardening, CloseUnblocksTaggedRecvToo) {
  Comm comm(2);
  Message got;
  std::thread blocked([&] { got = comm.recv(1, Tag::kTaskAssign); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  comm.close();
  blocked.join();
  EXPECT_EQ(got.tag, Tag::kShutdown);
}

TEST(CommHardening, ClosedCommDrainsQueuedMessagesFirst) {
  Comm comm(2);
  comm.send(0, 1, Tag::kUser, {7});
  comm.close();
  EXPECT_EQ(comm.recv(1).payload[0], 7);          // real message first
  EXPECT_EQ(comm.recv(1).tag, Tag::kShutdown);    // then the poison
  comm.send(0, 1, Tag::kUser, {8});               // dropped silently
  EXPECT_FALSE(comm.has_message(1));
}

// ---------------------------------------------------------------------------
// FaultPlan: deterministic decisions
// ---------------------------------------------------------------------------

TEST(FaultPlan, DecisionsAreAPureFunctionOfSeedEdgeAndSeq) {
  FaultPlan a;
  a.seed = 1234;
  a.drop = 0.3;
  a.duplicate = 0.2;
  a.corrupt = 0.2;
  a.delay = 0.2;
  FaultPlan b = a;  // independent instance, same seed
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const auto da = a.decide(0, 1, Tag::kTaskAssign, seq);
    const auto db = b.decide(0, 1, Tag::kTaskAssign, seq);
    EXPECT_EQ(da.drop, db.drop) << seq;
    EXPECT_EQ(da.duplicate, db.duplicate) << seq;
    EXPECT_EQ(da.corrupt, db.corrupt) << seq;
    EXPECT_EQ(da.delay, db.delay) << seq;
  }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan a;
  a.seed = 1;
  a.drop = 0.5;
  FaultPlan b = a;
  b.seed = 2;
  bool diverged = false;
  for (std::uint64_t seq = 0; seq < 64 && !diverged; ++seq) {
    diverged = a.decide(0, 1, Tag::kUser, seq).drop !=
               b.decide(0, 1, Tag::kUser, seq).drop;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlan, ValidatesProbabilitiesAndKillRank) {
  FaultPlan p;
  p.drop = 1.5;
  EXPECT_THROW(p.validate(3), Error);
  p.drop = 0.0;
  p.kill_rank = 5;
  EXPECT_THROW(p.validate(3), Error);  // only ranks 1..2 exist
  p.kill_rank = 2;
  EXPECT_NO_THROW(p.validate(3));
}

TEST(FaultPlan, KillScheduleIsRankAndCountGated) {
  FaultPlan p;
  p.kill_rank = 2;
  p.kill_after_tasks = 3;
  EXPECT_FALSE(p.kills(1, 100));  // wrong rank
  EXPECT_FALSE(p.kills(2, 2));    // not enough tasks yet
  EXPECT_TRUE(p.kills(2, 3));
  EXPECT_FALSE(FaultPlan{}.kills(1, 100));  // disabled by default
}

// ---------------------------------------------------------------------------
// FaultyComm: injected message faults
// ---------------------------------------------------------------------------

TEST(FaultyComm, DropsEverythingAtProbabilityOne) {
  FaultPlan p;
  p.drop = 1.0;
  FaultyComm comm(2, p);
  comm.send(0, 1, Tag::kUser, {1});
  comm.send(0, 1, Tag::kUser, {2});
  EXPECT_FALSE(comm.has_message(1));
  EXPECT_EQ(comm.stats().dropped, 2u);
}

TEST(FaultyComm, DuplicatesDeliverTwice) {
  FaultPlan p;
  p.duplicate = 1.0;
  FaultyComm comm(2, p);
  comm.send(0, 1, Tag::kUser, {9});
  EXPECT_EQ(comm.recv(1).payload[0], 9);
  EXPECT_EQ(comm.recv(1).payload[0], 9);
  EXPECT_FALSE(comm.has_message(1));
  EXPECT_EQ(comm.stats().duplicated, 1u);
}

TEST(FaultyComm, CorruptionIsCaughtByTheChecksum) {
  FaultPlan p;
  p.corrupt = 1.0;
  FaultyComm comm(2, p);
  comm.send(0, 1, Tag::kUser, {1, 2, 3});
  const Message m = comm.recv(1);
  EXPECT_FALSE(m.checksum_ok());
  EXPECT_NE(m.payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(comm.stats().corrupted, 1u);
}

TEST(FaultyComm, DelayedMessagesSurviveUntilCloseFlush) {
  FaultPlan p;
  p.delay = 1.0;
  p.delay_messages = 1;
  FaultyComm comm(2, p);
  comm.send(0, 1, Tag::kUser, {1});  // deferred
  comm.send(0, 1, Tag::kUser, {2});  // deferred; matures {1}
  EXPECT_EQ(comm.recv(1).payload[0], 1);
  EXPECT_FALSE(comm.has_message(1));
  comm.close();  // flushes {2} before poisoning
  EXPECT_EQ(comm.recv(1).payload[0], 2);
  EXPECT_EQ(comm.recv(1).tag, Tag::kShutdown);
  EXPECT_EQ(comm.stats().delayed, 2u);
}

TEST(FaultyComm, SeededInjectionReplaysByteIdentically) {
  FaultPlan p;
  p.seed = 99;
  p.drop = 0.25;
  p.duplicate = 0.25;
  p.corrupt = 0.25;
  p.delay = 0.25;
  const auto run = [&p] {
    FaultyComm comm(2, p);
    for (std::uint8_t i = 0; i < 32; ++i) {
      comm.send(0, 1, Tag::kUser, {i, static_cast<std::uint8_t>(i * 3)});
    }
    comm.close();  // flush any still-deferred messages
    std::vector<Message> delivered;
    while (comm.has_message(1)) delivered.push_back(comm.recv(1));
    return delivered;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  ASSERT_FALSE(first.empty());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].payload, second[i].payload) << i;
    EXPECT_EQ(first[i].checksum, second[i].checksum) << i;
    EXPECT_EQ(first[i].checksum_ok(), second[i].checksum_ok()) << i;
  }
}

// ---------------------------------------------------------------------------
// Scoreboard idempotency (at-least-once dedup)
// ---------------------------------------------------------------------------

core::TaskResult fake_result(std::uint32_t first, std::uint32_t count,
                             double base) {
  core::TaskResult r;
  r.task = core::VoxelTask{first, count};
  for (std::uint32_t i = 0; i < count; ++i) {
    r.accuracy.push_back(base + static_cast<double>(i) / 3.0);
  }
  return r;
}

TEST(ScoreboardIdempotency, ExactDuplicateIsAbsorbed) {
  core::Scoreboard board(8);
  const auto r = fake_result(0, 4, 0.5);
  EXPECT_EQ(board.add_idempotent(r), 4u);
  EXPECT_EQ(board.add_idempotent(r), 0u);  // redelivery: no double count
  EXPECT_EQ(board.scored(), 4u);
  EXPECT_EQ(board.accuracy_of(1), 0.5 + 1.0 / 3.0);
}

TEST(ScoreboardIdempotency, ConflictingDuplicateThrows) {
  core::Scoreboard board(8);
  (void)board.add_idempotent(fake_result(0, 4, 0.5));
  EXPECT_THROW((void)board.add_idempotent(fake_result(2, 2, 0.9)), Error);
}

TEST(ScoreboardIdempotency, StrictAddStillThrowsOnRepeat) {
  core::Scoreboard board(8);
  board.add(fake_result(0, 4, 0.5));
  EXPECT_THROW(board.add(fake_result(0, 4, 0.5)), Error);
}

// ---------------------------------------------------------------------------
// Driver end-to-end recovery
// ---------------------------------------------------------------------------

struct Workload {
  fmri::Dataset dataset;
  fmri::NormalizedEpochs epochs;
};

Workload tiny_workload(std::size_t voxels) {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = voxels;
  Workload w{fmri::generate_synthetic(spec), {}};
  w.epochs = fmri::normalize_epochs(w.dataset);
  return w;
}

core::Scoreboard single_node_reference(const Workload& w,
                                       std::size_t voxels_per_task) {
  core::Scoreboard board(w.dataset.voxels());
  for (const auto& task :
       core::partition_voxels(w.dataset.voxels(), voxels_per_task)) {
    board.add(core::run_task(w.epochs, task,
                             core::PipelineConfig::optimized()));
  }
  return board;
}

void expect_bit_identical(const core::Scoreboard& reference,
                          const core::Scoreboard& board) {
  ASSERT_EQ(reference.total_voxels(), board.total_voxels());
  for (std::uint32_t v = 0; v < reference.total_voxels(); ++v) {
    EXPECT_EQ(reference.accuracy_of(v), board.accuracy_of(v)) << v;
  }
}

TEST(DriverRecovery, KilledWorkerTasksCompleteOnSurvivorsBitIdentically) {
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 3;
  opts.voxels_per_task = 8;  // 8 tasks
  opts.lease_timeout_s = 0.5;
  opts.faults.kill_rank = 2;
  opts.faults.kill_after_tasks = 1;  // dies after its first task
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.workers_died, 1u);
  EXPECT_GE(stats.heartbeat_misses, 1u);
  EXPECT_GE(stats.tasks_requeued, 1u);
  EXPECT_GT(stats.recovery_wall_s, 0.0);
  expect_bit_identical(single_node_reference(w, 8), board);
}

TEST(DriverRecovery, DuplicatedDeliveryIsDedupedBitIdentically) {
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;
  opts.faults.seed = 11;
  opts.faults.duplicate = 1.0;  // every message delivered twice
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.workers_died, 0u);
  expect_bit_identical(single_node_reference(w, 8), board);
}

TEST(DriverRecovery, DroppedMessagesAreRetriedBitIdentically) {
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 4;  // 16 tasks -> plenty of protocol traffic
  opts.faults.seed = 5;
  opts.faults.drop = 0.2;
  opts.max_task_retries = 64;  // generous: the point is recovery, not caps
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  // With a 20% drop rate across dozens of messages, at least one loss must
  // have been recovered through the requeue path.
  EXPECT_GE(stats.tasks_requeued, 1u);
  EXPECT_GE(stats.retries, 1u);
  expect_bit_identical(single_node_reference(w, 4), board);
}

TEST(DriverRecovery, CorruptedPayloadsAreCaughtAndRecovered) {
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 4;
  opts.faults.seed = 21;
  opts.faults.corrupt = 0.2;
  opts.max_task_retries = 64;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_GE(stats.corrupt_payloads, 1u);
  expect_bit_identical(single_node_reference(w, 4), board);
}

TEST(DriverRecovery, AllWorkersDeadThrows) {
  const Workload w = tiny_workload(32);
  DriverOptions opts;
  opts.workers = 1;
  opts.voxels_per_task = 8;
  opts.lease_timeout_s = 0.2;
  opts.faults.kill_rank = 1;
  opts.faults.kill_after_tasks = 0;  // dies before its first task
  EXPECT_THROW(
      (void)run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, nullptr),
      Error);
}

// ---------------------------------------------------------------------------
// DriverOptions validation / clamping (satellite bugfix)
// ---------------------------------------------------------------------------

TEST(DriverOptionsValidation, ZeroWorkersIsAClearError) {
  const Workload w = tiny_workload(32);
  DriverOptions opts;
  opts.workers = 0;
  EXPECT_THROW(
      (void)run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, nullptr),
      Error);
}

TEST(DriverOptionsValidation, ZeroLowWaterIsAClearError) {
  const Workload w = tiny_workload(32);
  DriverOptions opts;
  opts.low_water = 0;
  EXPECT_THROW(
      (void)run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, nullptr),
      Error);
}

TEST(DriverOptionsValidation, NonPositiveTimeoutsAreClearErrors) {
  const Workload w = tiny_workload(32);
  DriverOptions opts;
  opts.lease_timeout_s = 0.0;
  EXPECT_THROW(
      (void)run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, nullptr),
      Error);
  opts.lease_timeout_s = 10.0;
  opts.worker_poll_s = -1.0;
  EXPECT_THROW(
      (void)run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, nullptr),
      Error);
}

TEST(DriverOptionsValidation, BatchLargerThanTaskCountIsClamped) {
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 16;  // 4 tasks
  opts.batch = 1000;          // would never fill: clamped to 4
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.tasks_dispatched, 4u);
  expect_bit_identical(single_node_reference(w, 16), board);
}

TEST(DriverOptionsValidation, LowWaterAboveBatchIsClamped) {
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;  // 8 tasks
  opts.batch = 2;
  opts.low_water = 50;  // above the batch: used to stall/spin, now clamps
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.tasks_dispatched, 8u);
  expect_bit_identical(single_node_reference(w, 8), board);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(Checkpoint, RoundTripIsBitExact) {
  const TempFile f("ckpt_roundtrip.json");
  core::Scoreboard board(16);
  board.add(fake_result(0, 8, 1.0 / 3.0));   // non-terminating decimals
  board.add(fake_result(12, 4, 0.1));        // gap: voxels 8..11 unscored
  write_checkpoint(f.path, board);
  const core::Scoreboard loaded = load_checkpoint(f.path, 16);
  EXPECT_EQ(loaded.scored(), board.scored());
  for (std::uint32_t v = 0; v < 16; ++v) {
    EXPECT_EQ(loaded.voxel_scored(v), board.voxel_scored(v)) << v;
    if (board.voxel_scored(v)) {
      EXPECT_EQ(loaded.accuracy_of(v), board.accuracy_of(v)) << v;
    }
  }
}

TEST(Checkpoint, RejectsMismatchedVoxelCountAndGarbage) {
  const TempFile f("ckpt_bad.json");
  core::Scoreboard board(16);
  board.add(fake_result(0, 16, 0.5));
  write_checkpoint(f.path, board);
  EXPECT_THROW((void)load_checkpoint(f.path, 32), Error);
  EXPECT_NO_THROW((void)load_checkpoint(f.path, 0));  // 0 = accept file's
  {
    std::FILE* bad = std::fopen(f.path.c_str(), "w");
    ASSERT_NE(bad, nullptr);
    std::fputs("{\"schema\": \"something.else\"}", bad);
    std::fclose(bad);
  }
  EXPECT_THROW((void)load_checkpoint(f.path, 16), Error);
}

TEST(Checkpoint, DriverWritesAndResumeReproducesBitIdentically) {
  const TempFile f("ckpt_resume.json");
  const Workload w = tiny_workload(64);
  const core::Scoreboard reference = single_node_reference(w, 8);

  // Partial progress: the first four 8-voxel tasks, checkpointed.
  core::Scoreboard partial(w.dataset.voxels());
  const auto tasks = core::partition_voxels(w.dataset.voxels(), 8);
  for (std::size_t t = 0; t < 4; ++t) {
    partial.add(core::run_task(w.epochs, tasks[t],
                               core::PipelineConfig::optimized()));
  }
  write_checkpoint(f.path, partial);

  const core::Scoreboard resumed_board = load_checkpoint(f.path, 64);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;
  opts.resume = &resumed_board;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.tasks_dispatched, 4u);  // only the unscored half
  expect_bit_identical(reference, board);
}

TEST(Checkpoint, PeriodicCheckpointsAreWrittenDuringTheRun) {
  const TempFile f("ckpt_periodic.json");
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;
  opts.checkpoint_path = f.path;
  opts.checkpoint_every = 2;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_GE(stats.checkpoints_written, 2u);  // periodic + final
  const core::Scoreboard loaded = load_checkpoint(f.path, 64);
  EXPECT_TRUE(loaded.complete());
  expect_bit_identical(board, loaded);
}

TEST(Checkpoint, ResumeFromCompleteCheckpointDispatchesNothing) {
  const TempFile f("ckpt_complete.json");
  const Workload w = tiny_workload(32);
  const core::Scoreboard reference = single_node_reference(w, 8);
  write_checkpoint(f.path, reference);
  const core::Scoreboard loaded = load_checkpoint(f.path, 32);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;
  opts.resume = &loaded;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.tasks_dispatched, 0u);
  EXPECT_EQ(stats.batches, 0u);
  expect_bit_identical(reference, board);
}

// ---------------------------------------------------------------------------
// Replicated control plane: failover, speculation, elastic membership
// ---------------------------------------------------------------------------

TEST(ControlPlane, MasterKilledMidFoldFailsOverBitIdentically) {
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;  // 8 tasks
  opts.lease_timeout_s = 0.4;
  // The primary dies after dispatching 3 batches: some results have already
  // been replicated to the standby, the rest are mid-flight or pending.
  opts.faults.kill_master_after_batches = 3;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_GT(stats.recovery_wall_s, 0.0);
  expect_bit_identical(single_node_reference(w, 8), board);
}

TEST(ControlPlane, MasterKillWithoutStandbyIsAClearError) {
  const Workload w = tiny_workload(32);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;
  opts.standby = false;
  opts.faults.kill_master_after_batches = 1;
  EXPECT_THROW(
      (void)run_cluster_analysis(w.epochs, w.dataset.voxels(), opts),
      Error);
}

TEST(ControlPlane, StragglerLeaseIsSpeculativelyReDispatched) {
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;  // 8 tasks
  opts.speculate = true;
  // Rank 2 sleeps 0.5 s before each task but heartbeats first, so it stays
  // alive (silence < 0.6 s lease timeout) while its lease ages past the
  // 0.45 s speculation threshold — the idle rank 1 gets the replica, and
  // the straggler's own late result is absorbed idempotently.
  opts.lease_timeout_s = 0.6;
  opts.faults.stall_rank = 2;
  opts.faults.stall_s = 0.5;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_GE(stats.speculative_dispatches, 1u);
  EXPECT_EQ(stats.workers_died, 0u);
  EXPECT_EQ(stats.failovers, 0u);
  expect_bit_identical(single_node_reference(w, 8), board);
}

// The resurrection bugfix (this PR): a worker declared dead after a long
// stall comes back with its delayed result, racing the requeued copy that a
// survivor is already recomputing.  The readmission must purge the zombie's
// stale leases and be counted — and the board must stay bit-identical no
// matter which copy of each result lands first.
TEST(ControlPlane, ResurrectedWorkerIsPurgedCountedAndBitIdentical) {
  // Enough tasks that the survivor is still draining the queue when the
  // zombie's delayed result lands — the race the readmission path must win.
  const Workload w = tiny_workload(1024);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;  // 128 tasks
  // Stall 0.3 s >> lease 0.15 s: rank 2 is declared dead mid-stall, its
  // tasks requeue to rank 1, then its late result arrives anyway.
  opts.lease_timeout_s = 0.15;
  opts.faults.stall_rank = 2;
  opts.faults.stall_s = 0.3;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_GE(stats.workers_died, 1u);
  EXPECT_GE(stats.resurrections, 1u);
  EXPECT_GE(stats.tasks_requeued, 1u);
  expect_bit_identical(single_node_reference(w, 8), board);
}

TEST(ControlPlane, JoiningWorkerIsReleasedMidRunBitIdentically) {
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 1;
  opts.join_workers = 1;  // rank 2 parks until released
  opts.join_after_tasks = 1;
  opts.voxels_per_task = 8;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.workers_joined, 1u);
  EXPECT_EQ(stats.workers_died, 0u);
  expect_bit_identical(single_node_reference(w, 8), board);
}

TEST(ControlPlane, GracefulLeaveRequeuesWithoutCountingADeath) {
  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 2;
  opts.leave_rank = 2;  // departs after its first completed task
  opts.leave_after_tasks = 1;
  opts.voxels_per_task = 8;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.workers_left, 1u);
  EXPECT_EQ(stats.workers_died, 0u);
  expect_bit_identical(single_node_reference(w, 8), board);
}

// ---------------------------------------------------------------------------
// Crash-safe stream flush: a dead rank's spans reach the merged timeline
// ---------------------------------------------------------------------------

#ifndef FCMA_TRACE_DISABLED

// The satellite-6 regression: with continuous profiling armed, a rank that
// the fault plan kills mid-run must still contribute its completed spans to
// the merged cross-rank stream — finalize flushes the dead lane's ring tail
// alongside the survivors', so the report accounts the lost rank's work.
TEST(DeadRankStreaming, KilledWorkerLaneReachesTheMergedStream) {
  namespace tls = trace::tlstream;
  const std::string dir = ::testing::TempDir() + "fcma_deadrank_stream";
  std::filesystem::remove_all(dir);
  trace::global().reset();
  trace::Timeline::global().reset();
  trace::Timeline::global().set_ring_capacity(64);  // force mid-run spills
  trace::new_run_id();
  trace::set_enabled(true);
  trace::set_timeline_enabled(true);
  trace::set_stream_dir(dir);

  const Workload w = tiny_workload(64);
  DriverOptions opts;
  opts.workers = 3;
  opts.voxels_per_task = 8;
  opts.lease_timeout_s = 0.5;
  opts.faults.kill_rank = 2;
  opts.faults.kill_after_tasks = 1;  // dies with exactly one task recorded
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(w.epochs, w.dataset.voxels(), opts, &stats);
  trace::Timeline::global().finalize_stream();
  const std::uint64_t run = trace::run_id();
  const tls::StreamRead read = tls::read_stream_dir(dir);

  // Restore the traceless regime before asserting (other suites in this
  // binary expect tracing off).
  trace::set_stream_dir("");
  trace::set_enabled(false);
  trace::set_timeline_enabled(false);
  trace::global().reset();
  trace::Timeline::global().reset();
  trace::Timeline::global().set_ring_capacity(1u << 16);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.workers_died, 1u);
  EXPECT_TRUE(read.done);
  EXPECT_EQ(read.done_dropped, 0u);  // streaming: the death dropped nothing
  std::size_t dead_rank_tasks = 0;
  for (const auto& ev : read.events) {
    EXPECT_EQ(ev.trace_id, run);
    if (ev.label == "cluster/worker2/task") ++dead_rank_tasks;
  }
  // The killed rank completed one task before dying; its span must have
  // been flushed out of its (now ownerless) ring by the finalize.
  EXPECT_GE(dead_rank_tasks, 1u);
}

#endif  // FCMA_TRACE_DISABLED

TEST(ControlPlane, SpeculationFactorOutOfRangeIsAClearError) {
  const Workload w = tiny_workload(32);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;
  opts.speculation_factor = 0.0;
  EXPECT_THROW(
      (void)run_cluster_analysis(w.epochs, w.dataset.voxels(), opts),
      Error);
  opts.speculation_factor = 1.5;
  EXPECT_THROW(
      (void)run_cluster_analysis(w.epochs, w.dataset.voxels(), opts),
      Error);
}

}  // namespace
}  // namespace fcma::cluster
