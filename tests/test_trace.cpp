// Unit tests for the structured tracing/metrics layer (common/trace.hpp,
// common/metrics.hpp): span aggregation and nesting, concurrent counter
// increments from the thread pool, and the JSON export schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/timeline.hpp"
#include "common/trace.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::trace {
namespace {

#ifndef FCMA_TRACE_DISABLED

/// Enables tracing for one test and restores the default (off) after, with
/// a clean global registry and timeline on both sides (global-bound spans
/// land in per-thread timeline shards until flush()).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    global().reset();
    Timeline::global().reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    global().reset();
    Timeline::global().reset();
  }
};

TEST_F(TraceTest, SpanAggregatesCountTotalMinMax) {
  Registry reg;
  reg.record_span("stage", 0.25);
  reg.record_span("stage", 0.75);
  reg.record_span("stage", 0.50);
  const SpanStats s = reg.span("stage");
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.total_s, 1.5);
  EXPECT_DOUBLE_EQ(s.min_s, 0.25);
  EXPECT_DOUBLE_EQ(s.max_s, 0.75);
}

TEST_F(TraceTest, UnknownLabelsReadAsZero) {
  Registry reg;
  EXPECT_EQ(reg.span("nope").count, 0u);
  EXPECT_EQ(reg.counter("nope"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge("nope"), 0.0);
}

TEST_F(TraceTest, ReadsOfUnknownNamesDoNotInsertThem) {
  // Documented contract: lookups never grow the registry or change its
  // exported JSON (a sidecar probing an optional key must not create it).
  Registry reg;
  (void)reg.counter("ghost/counter");
  (void)reg.gauge("ghost/gauge");
  (void)reg.span("ghost/span");
  (void)reg.span_quantile("ghost/span", 0.5);
  (void)reg.meta("ghost/meta");
  (void)reg.roofline("ghost/roofline");
  EXPECT_TRUE(reg.span_labels().empty());
  EXPECT_EQ(reg.to_json().find("ghost"), std::string::npos);
}

TEST_F(TraceTest, ScopedSpanRecordsIntoRegistry) {
  Registry reg;
  { const Span span("work", &reg); }
  const SpanStats s = reg.span("work");
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.total_s, 0.0);
}

TEST_F(TraceTest, NestedSpansRecordHierarchicalLabels) {
  Registry reg;
  {
    const Span outer("outer", &reg);
    { const Span inner("inner", &reg); }
    { const Span inner("inner", &reg); }
  }
  EXPECT_EQ(reg.span("outer").count, 1u);
  EXPECT_EQ(reg.span("outer/inner").count, 2u);
  EXPECT_EQ(reg.span("inner").count, 0u);  // never recorded unqualified
}

TEST_F(TraceTest, NestingPathUnwindsAfterScopeExit) {
  Registry reg;
  { const Span a("a", &reg); }
  { const Span b("b", &reg); }  // must NOT become "a/b"
  EXPECT_EQ(reg.span("a").count, 1u);
  EXPECT_EQ(reg.span("b").count, 1u);
  EXPECT_EQ(reg.span("a/b").count, 0u);
}

TEST_F(TraceTest, ThreeLevelNesting) {
  Registry reg;
  {
    const Span a("a", &reg);
    const Span b("b", &reg);
    const Span c("c", &reg);
  }
  EXPECT_EQ(reg.span("a/b/c").count, 1u);
  EXPECT_EQ(reg.span("a/b").count, 1u);
  EXPECT_EQ(reg.span("a").count, 1u);
}

TEST_F(TraceTest, SpansOnOtherThreadsRootTheirOwnHierarchy) {
  Registry reg;
  {
    const Span outer("outer", &reg);
    std::thread t([&reg] { const Span s("thread_span", &reg); });
    t.join();
  }
  EXPECT_EQ(reg.span("thread_span").count, 1u);
  EXPECT_EQ(reg.span("outer/thread_span").count, 0u);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  Registry reg;
  set_enabled(false);
  { const Span span("work", &reg); }
  record_span("manual", 1.0);
  count("ticks");
  gauge_set("depth", 3.0);
  flush();
  EXPECT_EQ(reg.span("work").count, 0u);
  EXPECT_EQ(global().span("manual").count, 0u);
  EXPECT_EQ(global().counter("ticks"), 0);
  EXPECT_DOUBLE_EQ(global().gauge("depth"), 0.0);
}

TEST_F(TraceTest, CountersAccumulateConcurrentlyFromParallelFor) {
  threading::ThreadPool pool(4);
  threading::parallel_for_each(pool, 0, 1000, [](std::size_t i) {
    count("test/hits");
    count("test/weighted", static_cast<std::int64_t>(i));
  });
  EXPECT_EQ(global().counter("test/hits"), 1000);
  EXPECT_EQ(global().counter("test/weighted"), 999 * 1000 / 2);
}

TEST_F(TraceTest, ConcurrentSpansOnOneLabelAggregateAllRecords) {
  threading::ThreadPool pool(4);
  threading::parallel_for_each(pool, 0, 200, [](std::size_t) {
    const Span span("test/span");
  });
  flush();  // global-bound spans live in per-thread shards until flushed
  EXPECT_EQ(global().span("test/span").count, 200u);
}

TEST_F(TraceTest, GaugeMaxKeepsHighWaterMark) {
  Registry reg;
  reg.gauge_max("depth", 3.0);
  reg.gauge_max("depth", 9.0);
  reg.gauge_max("depth", 5.0);
  EXPECT_DOUBLE_EQ(reg.gauge("depth"), 9.0);
  reg.gauge_set("depth", 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("depth"), 1.0);
}

TEST_F(TraceTest, SchedulerActivityIsTraced) {
  {
    threading::ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.submit([] {}));
    }
    for (auto& f : futures) f.get();
  }
  flush();
  EXPECT_EQ(global().counter("sched/tasks_submitted"), 50);
  EXPECT_EQ(global().counter("sched/tasks_executed"), 50);
  // External submits land on the shared inbox; workers take all of them
  // from there (the submitting thread blocks on futures, it doesn't help).
  EXPECT_EQ(global().counter("sched/inbox_hits"), 50);
  EXPECT_GE(global().gauge("sched/max_queue_depth"), 1.0);
  // Per-worker busy spans cover every executed task.
  std::uint64_t busy = 0;
  for (const auto& label : global().span_labels()) {
    if (label.rfind("sched/worker", 0) == 0) {
      busy += global().span(label).count;
    }
  }
  EXPECT_EQ(busy, 50u);
}

TEST_F(TraceTest, StealAndLocalHitCountersExistEvenWhenZero) {
  // Bench sidecars extract sched/steals and sched/local_hits; the scheduler
  // seeds both keys at construction so they are present even for runs where
  // nothing was stolen (e.g. a 1-worker pool).
  { threading::ThreadPool pool(1); }
  const std::string json = global().to_json();
  EXPECT_NE(json.find("\"sched/steals\""), std::string::npos);
  EXPECT_NE(json.find("\"sched/local_hits\""), std::string::npos);
}

TEST_F(TraceTest, ResetDropsEverything) {
  Registry reg;
  reg.record_span("s", 1.0);
  reg.count("c", 5);
  reg.gauge_set("g", 2.0);
  reg.reset();
  EXPECT_EQ(reg.span("s").count, 0u);
  EXPECT_EQ(reg.counter("c"), 0);
  EXPECT_TRUE(reg.span_labels().empty());
}

// --- JSON export schema -------------------------------------------------

/// Minimal structural validator: balanced braces outside strings, and keys
/// quoted.  Catches the classes of export bug (trailing commas aside) that
/// break downstream tooling without pulling in a JSON dependency.
bool braces_balanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (c == '{') ++depth;
    if (c == '}' && --depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST_F(TraceTest, JsonCarriesSchemaAndAllThreeFamilies) {
  Registry reg;
  reg.record_span("pipeline/svm", 0.5);
  reg.count("comm/messages", 7);
  reg.gauge_set("queue_depth", 4.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\": \"fcma.trace.v2\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"roofline\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline/svm\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"comm/messages\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\": 4"), std::string::npos);
  EXPECT_TRUE(braces_balanced(json));
}

TEST_F(TraceTest, EmptyRegistryStillExportsValidSchema) {
  const Registry reg;
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\": \"fcma.trace.v2\""), std::string::npos);
  EXPECT_TRUE(braces_balanced(json));
}

TEST_F(TraceTest, JsonEscapesLabelText) {
  Registry reg;
  reg.count("weird \"label\"\nwith\\controls", 1);
  const std::string json = reg.to_json();
  EXPECT_TRUE(braces_balanced(json));
  EXPECT_NE(json.find("\\\"label\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\\controls"), std::string::npos);
}

TEST_F(TraceTest, SpanStatsRoundTripThroughJsonFields) {
  Registry reg;
  reg.record_span("s", 0.125);
  reg.record_span("s", 0.375);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"total_s\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"min_s\": 0.125"), std::string::npos);
  EXPECT_NE(json.find("\"max_s\": 0.375"), std::string::npos);
  // v2 additions: every span carries its percentile estimates, clamped to
  // the recorded range.
  EXPECT_NE(json.find("\"p50_s\": "), std::string::npos);
  EXPECT_NE(json.find("\"p95_s\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99_s\": "), std::string::npos);
  const double p50 = reg.span_quantile("s", 0.5);
  EXPECT_GE(p50, 0.125);
  EXPECT_LE(p50, 0.375);
}

TEST_F(TraceTest, WriteJsonCreatesTheFile) {
  Registry reg;
  reg.count("c", 1);
  const std::string path = ::testing::TempDir() + "fcma_trace_test.json";
  reg.write_json(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_GT(n, 0u);
  EXPECT_NE(std::string(buf).find("fcma.trace.v2"), std::string::npos);
}

#endif  // FCMA_TRACE_DISABLED

}  // namespace
}  // namespace fcma::trace
