// Tests for the continuous-profiling stream (common/tlstream.hpp) and the
// PR 9 trace-correlation layer built on it: segment round-trips, rotation,
// the torn-tail crash-safety contract, the disk budget, the SLO rule
// grammar, ring-overflow spill exactness (dropped_events stays 0 while
// streaming), cross-rank span-context stitching through the cluster comm,
// and the follow-reader-vs-writers race (runs under TSan via ci_tsan.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/comm.hpp"
#include "cluster/driver.hpp"
#include "cluster/fault.hpp"
#include "common/error.hpp"
#include "common/timeline.hpp"
#include "common/tlstream.hpp"
#include "common/trace.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/task.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::trace {
namespace {

namespace tls = tlstream;

#ifndef FCMA_TRACE_DISABLED

/// Unique per-test stream directory, removed on scope exit.
struct StreamDir {
  std::string path;
  explicit StreamDir(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~StreamDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// --- SegmentWriter / reader round trips ---------------------------------

tls::StreamConfig test_config(const std::string& dir,
                              std::uint64_t rotate = 1ull << 20,
                              std::uint64_t budget = 256ull << 20) {
  tls::StreamConfig config;
  config.dir = dir;
  config.rotate_bytes = rotate;
  config.budget_bytes = budget;
  return config;
}

TEST(SegmentWriter, RoundTripsHeaderAndEventsThroughTheReader) {
  const StreamDir dir("tls_roundtrip");
  const auto used = std::make_shared<std::atomic<std::uint64_t>>(0);
  {
    tls::SegmentWriter w(test_config(dir.path), used, 3, "cluster/worker3",
                         0xABCDEF0123456789ull);
    EXPECT_TRUE(w.append({"alpha/one", 100, 250, 7, 3}));
    EXPECT_TRUE(w.append({"weird\"label", 300, 300, 8, 7}));
    EXPECT_TRUE(w.append({"alpha/two", 400, 900, 0, 0}));
    EXPECT_EQ(w.events_written(), 3u);
    w.finalize();
  }
  const tls::StreamRead read = tls::read_stream_dir(dir.path);
  EXPECT_TRUE(read.warnings.empty());
  EXPECT_EQ(read.segments, 1u);
  EXPECT_FALSE(read.done);
  EXPECT_EQ(read.trace_id, 0xABCDEF0123456789ull);
  ASSERT_EQ(read.events.size(), 3u);
  const tls::StreamEvent& ev = read.events[0];
  EXPECT_EQ(ev.lane, "cluster/worker3");
  EXPECT_EQ(ev.lane_id, 3u);
  EXPECT_EQ(ev.label, "alpha/one");
  EXPECT_EQ(ev.start_ns, 100u);
  EXPECT_EQ(ev.end_ns, 250u);
  EXPECT_EQ(ev.span, 7u);
  EXPECT_EQ(ev.parent, 3u);
  EXPECT_EQ(ev.trace_id, 0xABCDEF0123456789ull);
  EXPECT_EQ(read.events[1].label, "weird\"label");  // JSON escape round-trip
  EXPECT_EQ(read.events[1].end_ns, read.events[1].start_ns);
}

TEST(SegmentWriter, RotationSplitsSegmentsAndReaderPreservesLaneOrder) {
  const StreamDir dir("tls_rotate");
  const auto used = std::make_shared<std::atomic<std::uint64_t>>(0);
  {
    tls::SegmentWriter w(test_config(dir.path, /*rotate=*/512), used, 0,
                         "main", 1);
    for (std::uint64_t i = 0; i < 50; ++i) {
      EXPECT_TRUE(w.append({"rot/span", i * 10, i * 10 + 5, i + 1, 0}));
    }
    w.finalize();
  }
  const tls::StreamRead read = tls::read_stream_dir(dir.path);
  EXPECT_TRUE(read.warnings.empty());
  EXPECT_GE(read.segments, 2u);  // 512-byte rotation: several segments
  ASSERT_EQ(read.events.size(), 50u);
  // (lane_id, seq, file order) merge preserves the append order exactly.
  for (std::size_t i = 0; i < read.events.size(); ++i) {
    EXPECT_EQ(read.events[i].start_ns, i * 10) << i;
    if (i > 0) {
      EXPECT_GE(read.events[i].seq, read.events[i - 1].seq);
    }
  }
}

TEST(SegmentWriter, TornTailIsSkippedAsInFlightNotCorruption) {
  const StreamDir dir("tls_torn");
  const auto used = std::make_shared<std::atomic<std::uint64_t>>(0);
  tls::SegmentWriter w(test_config(dir.path), used, 0, "main", 1);
  EXPECT_TRUE(w.append({"torn/full", 10, 20, 1, 0}));
  EXPECT_TRUE(w.append({"torn/full", 30, 40, 2, 0}));
  w.flush();  // segment stays a .part — a crash before rotation
  // Simulate a crash mid-append: a final line with no trailing newline.
  {
    std::FILE* f = std::fopen((dir.path + "/lane0-0.tls.part").c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"ts\": 50, \"dur\": 5, \"label\": \"torn/ha", f);
    std::fclose(f);
  }
  const tls::StreamRead read = tls::read_stream_dir(dir.path);
  EXPECT_TRUE(read.warnings.empty());  // a torn tail is not a warning
  EXPECT_EQ(read.events.size(), 2u);   // every complete line survives
}

TEST(SegmentWriter, MalformedInteriorLineWarnsButKeepsTheRest) {
  const StreamDir dir("tls_corrupt");
  const auto used = std::make_shared<std::atomic<std::uint64_t>>(0);
  {
    tls::SegmentWriter w(test_config(dir.path), used, 0, "main", 1);
    EXPECT_TRUE(w.append({"ok/one", 10, 20, 1, 0}));
    w.finalize();
  }
  // Corrupt the finalized segment in place: garbage between valid lines.
  {
    std::FILE* f = std::fopen((dir.path + "/lane0-0.tls").c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not json\n", f);
    std::fputs(
        "{\"ts\": 30, \"dur\": 10, \"label\": \"ok/two\", \"span\": 2, "
        "\"parent\": 0, \"trace\": \"0000000000000001\"}\n",
        f);
    std::fclose(f);
  }
  const tls::StreamRead read = tls::read_stream_dir(dir.path);
  ASSERT_EQ(read.warnings.size(), 1u);
  EXPECT_NE(read.warnings[0].find("malformed"), std::string::npos);
  EXPECT_EQ(read.events.size(), 2u);  // the valid lines all survive
}

TEST(SegmentWriter, DiskBudgetRefusesAppendsOnceExhausted) {
  const StreamDir dir("tls_budget");
  const auto used = std::make_shared<std::atomic<std::uint64_t>>(0);
  tls::SegmentWriter w(test_config(dir.path, 1ull << 20, /*budget=*/600),
                       used, 0, "main", 1);
  std::size_t accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (w.append({"budget/span", 10, 20, 1, 0})) ++accepted;
  }
  EXPECT_GT(accepted, 0u);    // the budget admits a few events...
  EXPECT_LT(accepted, 100u);  // ...then refuses, visibly, forever
  EXPECT_FALSE(w.append({"budget/span", 10, 20, 1, 0}));
  EXPECT_EQ(w.events_written(), accepted);
  EXPECT_LE(used->load(), 600u);
}

TEST(StreamManifest, DoneManifestRoundTripsTotals) {
  const StreamDir dir("tls_done");
  tls::write_done_manifest(dir.path, 0x42, 1234, 5, 3);
  const tls::StreamRead read = tls::read_stream_dir(dir.path);
  EXPECT_TRUE(read.done);
  EXPECT_EQ(read.done_events, 1234u);
  EXPECT_EQ(read.done_dropped, 5u);
  EXPECT_EQ(read.trace_id, 0x42u);
}

TEST(StreamReader, EmptyDirIsEmptyReadAndMissingDirThrows) {
  const StreamDir dir("tls_empty");
  const tls::StreamRead read = tls::read_stream_dir(dir.path);
  EXPECT_TRUE(read.events.empty());
  EXPECT_FALSE(read.done);
  EXPECT_EQ(read.segments, 0u);
  EXPECT_THROW((void)tls::read_stream_dir(dir.path + "/missing"), Error);
}

// --- span classes, trace ids, SLO grammar -------------------------------

TEST(SpanClass, FoldsWorkerRankSegments) {
  EXPECT_EQ(tls::span_class_of("cluster/worker3/task"), "cluster/worker/task");
  EXPECT_EQ(tls::span_class_of("cluster/worker12/task/svm"),
            "cluster/worker/task/svm");
  EXPECT_EQ(tls::span_class_of("sched/worker0"), "sched/worker");
  // No digits (or non-digits) after "worker": not a rank segment.
  EXPECT_EQ(tls::span_class_of("cluster/worker/task"), "cluster/worker/task");
  EXPECT_EQ(tls::span_class_of("workerbee/task"), "workerbee/task");
  EXPECT_EQ(tls::span_class_of("stage/correlation"), "stage/correlation");
  EXPECT_EQ(tls::span_class_of(""), "");
}

TEST(TraceHex, IsSixteenLowercaseHexDigits) {
  EXPECT_EQ(tls::trace_hex(0), "0000000000000000");
  EXPECT_EQ(tls::trace_hex(0xABCDEF0123456789ull), "abcdef0123456789");
}

TEST(SloRules, ParseQuantilesUnitsAndLists) {
  const auto rules = tls::parse_slo_rules(
      "cluster/task:p99<250ms,stage/correlation:p50<2s,comm:p95<750us");
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].span_class, "cluster/task");
  EXPECT_DOUBLE_EQ(rules[0].quantile, 0.99);
  EXPECT_DOUBLE_EQ(rules[0].limit_s, 0.25);
  EXPECT_DOUBLE_EQ(rules[1].quantile, 0.50);
  EXPECT_DOUBLE_EQ(rules[1].limit_s, 2.0);
  EXPECT_DOUBLE_EQ(rules[2].quantile, 0.95);
  EXPECT_DOUBLE_EQ(rules[2].limit_s, 750e-6);
  EXPECT_EQ(tls::parse_slo_rules("a:p99<1ns")[0].limit_s, 1e-9);
  EXPECT_TRUE(tls::parse_slo_rules("").empty());
}

TEST(SloRules, RejectBadSyntaxWithClearErrors) {
  EXPECT_THROW((void)tls::parse_slo_rules("no-colon"), Error);
  EXPECT_THROW((void)tls::parse_slo_rules("a:p90<1ms"), Error);  // bad q
  EXPECT_THROW((void)tls::parse_slo_rules("a:p99=1ms"), Error);  // no '<'
  EXPECT_THROW((void)tls::parse_slo_rules("a:p99<1min"), Error);  // bad unit
  EXPECT_THROW((void)tls::parse_slo_rules("a:p99<fastms"), Error);
}

TEST(SloRules, MatchExactlyOrAsPathSuffix) {
  const tls::SloRule rule = tls::parse_slo_rules("task:p99<1s")[0];
  EXPECT_TRUE(tls::rule_matches(rule, "task"));
  EXPECT_TRUE(tls::rule_matches(rule, "cluster/task"));
  EXPECT_TRUE(tls::rule_matches(rule, "cluster/worker/task"));
  EXPECT_FALSE(tls::rule_matches(rule, "cluster/task/svm"));
  EXPECT_FALSE(tls::rule_matches(rule, "multitask"));  // not a path suffix
  const tls::SloRule full = tls::parse_slo_rules("cluster/task:p99<1s")[0];
  EXPECT_TRUE(tls::rule_matches(full, "cluster/task"));
  EXPECT_FALSE(tls::rule_matches(full, "task"));
}

// --- Timeline spill integration -----------------------------------------

class StreamingTimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    global().reset();
    Timeline::global().reset();
    Timeline::global().set_ring_capacity(1u << 16);
    new_run_id();
    set_enabled(true);
    set_timeline_enabled(true);
  }
  void TearDown() override {
    set_stream_dir("");
    set_enabled(false);
    set_timeline_enabled(false);
    global().reset();
    Timeline::global().reset();
    Timeline::global().set_ring_capacity(1u << 16);
  }
};

// The satellite-1 exactness claim: a ring 20x smaller than the event count
// spills instead of dropping, and the merged stream holds every event.
TEST_F(StreamingTimelineTest, OverflowSpillsAndMergeIsCountExact) {
  const StreamDir dir("tls_spill_exact");
  Timeline::global().set_ring_capacity(16);
  set_stream_dir(dir.path);
  ASSERT_TRUE(streaming());
  constexpr std::size_t kSpans = 300;
  for (std::size_t i = 0; i < kSpans; ++i) {
    const Span s("spill/span");
  }
  Timeline::global().finalize_stream();
  EXPECT_EQ(Timeline::global().events_dropped(), 0u);
  EXPECT_EQ(Timeline::global().events_published(), kSpans);
  const tls::StreamRead read = tls::read_stream_dir(dir.path);
  EXPECT_TRUE(read.done);
  EXPECT_EQ(read.done_events, kSpans);
  EXPECT_EQ(read.done_dropped, 0u);
  EXPECT_EQ(read.events.size(), kSpans);
  for (const auto& ev : read.events) {
    EXPECT_EQ(ev.trace_id, run_id());
    EXPECT_EQ(ev.label, "spill/span");
    EXPECT_NE(ev.span, 0u);
  }
}

// Without a stream the overflow regime is unchanged: newest events drop,
// counted — never silently truncated.
TEST_F(StreamingTimelineTest, OverflowWithoutStreamStillCountsDrops) {
  Timeline::global().set_ring_capacity(16);  // 16 is the capacity floor
  ASSERT_FALSE(streaming());
  for (int i = 0; i < 100; ++i) {
    const Span s("drop/span");
  }
  EXPECT_EQ(Timeline::global().events_published(), 16u);
  EXPECT_EQ(Timeline::global().events_dropped(), 84u);
}

TEST_F(StreamingTimelineTest, FinalizeIsIdempotentAndLaterSpillsDrop) {
  const StreamDir dir("tls_finalize");
  Timeline::global().set_ring_capacity(16);
  set_stream_dir(dir.path);
  for (int i = 0; i < 40; ++i) {
    const Span s("fin/span");
  }
  Timeline::global().finalize_stream();
  const tls::StreamRead first = tls::read_stream_dir(dir.path);
  EXPECT_TRUE(first.done);
  EXPECT_EQ(first.done_events, 40u);
  // Post-finalize records can fill the recycled ring but never spill: the
  // manifest's totals must stay the truth about the segments.
  for (int i = 0; i < 20; ++i) {
    const Span s("fin/late");
  }
  EXPECT_EQ(Timeline::global().events_dropped(), 4u);  // 16 re-ring, 4 drop
  Timeline::global().finalize_stream();  // idempotent: no second manifest
  const tls::StreamRead second = tls::read_stream_dir(dir.path);
  EXPECT_EQ(second.done_events, first.done_events);
  EXPECT_EQ(second.events.size(), first.events.size());
}

// --- span-context propagation -------------------------------------------

TEST_F(StreamingTimelineTest, SpanIdsNestAndScopedParentAdopts) {
  EXPECT_EQ(current_span(), 0u);
  {
    const Span outer("ctx/outer");
    ASSERT_NE(outer.id(), 0u);
    EXPECT_EQ(current_span(), outer.id());
    {
      const Span inner("ctx/inner");
      EXPECT_NE(inner.id(), outer.id());
      EXPECT_EQ(current_span(), inner.id());
    }
    EXPECT_EQ(current_span(), outer.id());
    {
      const ScopedParent remote(777);  // adopt a remote rank's span
      EXPECT_EQ(current_span(), 777u);
    }
    EXPECT_EQ(current_span(), outer.id());
  }
  EXPECT_EQ(current_span(), 0u);
}

TEST_F(StreamingTimelineTest, CommStampsSenderSpanContextAtSendTime) {
  cluster::Comm comm(2);
  {
    const Span s("send/span");
    comm.send(0, 1, cluster::Tag::kUser, {1});
    const cluster::Message m = comm.recv(1);
    EXPECT_EQ(m.ctx.trace_id, run_id());
    EXPECT_EQ(m.ctx.parent_span, s.id());
    EXPECT_EQ(m.ctx.edge_seq, 0u);
    EXPECT_GT(m.ctx.sent_ns, 0u);
  }
  comm.send(0, 1, cluster::Tag::kUser, {2});  // outside any span
  const cluster::Message m2 = comm.recv(1);
  EXPECT_EQ(m2.ctx.parent_span, 0u);
  EXPECT_EQ(m2.ctx.edge_seq, 1u);  // per-(from,to) sequence advanced
  comm.send(1, 0, cluster::Tag::kUser, {3});  // different edge: fresh seq
  EXPECT_EQ(comm.recv(0).ctx.edge_seq, 0u);
  set_enabled(false);
  comm.send(0, 1, cluster::Tag::kUser, {4});
  const cluster::Message off = comm.recv(1);
  EXPECT_EQ(off.ctx.trace_id, 0u);  // tracing off: all-zero context
  EXPECT_EQ(off.ctx.sent_ns, 0u);
  set_enabled(true);
}

TEST_F(StreamingTimelineTest, DelayedMessageKeepsItsOriginalSenderContext) {
  cluster::FaultPlan plan;
  plan.delay = 1.0;
  plan.delay_messages = 1;
  cluster::FaultyComm comm(2, plan);
  std::uint64_t first_span = 0;
  {
    const Span a("delay/a");
    first_span = a.id();
    comm.send(0, 1, cluster::Tag::kUser, {1});  // deferred
  }
  {
    const Span b("delay/b");
    comm.send(0, 1, cluster::Tag::kUser, {2});  // deferred; matures {1}
  }
  // {1} was flushed to the inbox during {2}'s send, while span b was
  // current — but its context must still name span a, stamped at the
  // original send.
  const cluster::Message m = comm.recv(1);
  EXPECT_EQ(m.payload[0], 1);
  EXPECT_EQ(m.ctx.parent_span, first_span);
}

// --- cluster: merged cross-rank timeline --------------------------------

/// Per-lane monotonicity: within one lane the reader's (seq, file-order)
/// merge must never step backwards in end time — each lane records at
/// span-close time, sequentially.
void expect_lane_monotonic(const std::vector<tls::StreamEvent>& events) {
  std::map<std::size_t, std::uint64_t> last_end;
  for (const auto& ev : events) {
    EXPECT_GE(ev.end_ns, ev.start_ns);
    const auto it = last_end.find(ev.lane_id);
    if (it != last_end.end()) {
      EXPECT_GE(ev.end_ns, it->second)
          << "lane " << ev.lane_id << " went backwards at " << ev.label;
    }
    last_end[ev.lane_id] = ev.end_ns;
  }
}

TEST_F(StreamingTimelineTest, ClusterRunStitchesOneCrossRankTimeline) {
  const StreamDir dir("tls_cluster");
  Timeline::global().set_ring_capacity(256);  // small: forces mid-run spills
  set_stream_dir(dir.path);

  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 64;
  const fmri::Dataset dataset = fmri::generate_synthetic(spec);
  const fmri::NormalizedEpochs epochs = fmri::normalize_epochs(dataset);
  cluster::DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;
  const core::Scoreboard board =
      cluster::run_cluster_analysis(epochs, dataset.voxels(), opts, nullptr);
  EXPECT_TRUE(board.complete());
  Timeline::global().finalize_stream();

  const tls::StreamRead read = tls::read_stream_dir(dir.path);
  EXPECT_TRUE(read.done);
  EXPECT_EQ(read.done_dropped, 0u);  // streaming: nothing may drop
  EXPECT_EQ(read.events.size(), read.done_events);
  ASSERT_FALSE(read.events.empty());

  // Every event belongs to this run's trace.
  for (const auto& ev : read.events) EXPECT_EQ(ev.trace_id, run_id());

  // The critical-path span classes all materialized.
  std::set<std::string> classes;
  std::map<std::uint64_t, std::size_t> span_lane;
  for (const auto& ev : read.events) {
    classes.insert(tls::span_class_of(ev.label));
    if (ev.span != 0) span_lane.emplace(ev.span, ev.lane_id);
  }
  EXPECT_TRUE(classes.count("cluster/dispatch"));
  EXPECT_TRUE(classes.count("cluster/comm/assign"));
  EXPECT_TRUE(classes.count("cluster/queue"));
  EXPECT_TRUE(classes.count("cluster/worker/task"));
  EXPECT_TRUE(classes.count("cluster/comm/result"));

  // No orphan parents: every referenced parent span is in the merge, and at
  // least one edge crosses ranks (a worker event under a master span).
  std::size_t cross_lane = 0;
  for (const auto& ev : read.events) {
    if (ev.parent == 0) continue;
    const auto it = span_lane.find(ev.parent);
    ASSERT_NE(it, span_lane.end()) << "orphan parent under " << ev.label;
    if (it->second != ev.lane_id) ++cross_lane;
  }
  EXPECT_GT(cross_lane, 0u);
  expect_lane_monotonic(read.events);
}

// --- follow readers racing writers (TSan gate) --------------------------

TEST_F(StreamingTimelineTest, FollowReaderRacesWritersWithoutTornReads) {
  const StreamDir dir("tls_race");
  Timeline::global().set_ring_capacity(64);
  set_stream_dir(dir.path);
  std::atomic<bool> stop{false};
  // The follow reader: polls the stream dir exactly like `fcma report
  // --follow`, asserting every snapshot is a clean prefix — well-formed
  // events, monotonic per lane.  Mid-rotation "unreadable segment"
  // warnings are expected; torn events are not.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const tls::StreamRead snap = tls::read_stream_dir(dir.path);
      expect_lane_monotonic(snap.events);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  constexpr std::size_t kSpans = 2000;
  {
    threading::ThreadPool pool(4);
    threading::parallel_for_each(pool, 0, kSpans, [](std::size_t) {
      const Span s("race/span");
    });
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  Timeline::global().finalize_stream();
  const tls::StreamRead read = tls::read_stream_dir(dir.path);
  EXPECT_TRUE(read.done);
  EXPECT_EQ(read.done_dropped, 0u);
  std::size_t race_spans = 0;
  for (const auto& ev : read.events) {
    if (ev.label == "race/span") ++race_spans;
  }
  EXPECT_EQ(race_spans, kSpans);  // exactness under concurrency
  expect_lane_monotonic(read.events);
}

#endif  // FCMA_TRACE_DISABLED

}  // namespace
}  // namespace fcma::trace
