// Tests for the cluster substrate: the in-process communicator, the real
// master-worker driver, the virtual-time task-farm simulator, and the
// calibrated cost model.
#include <gtest/gtest.h>

#include <thread>

#include "cluster/comm.hpp"
#include "cluster/cost_model.hpp"
#include "cluster/driver.hpp"
#include "cluster/sim.hpp"
#include "fcma/pipeline.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"

namespace fcma::cluster {
namespace {

TEST(Comm, SendRecvRoundtrip) {
  Comm comm(2);
  comm.send(0, 1, Tag::kUser, {1, 2, 3});
  const Message m = comm.recv(1);
  EXPECT_EQ(m.source, 0u);
  EXPECT_EQ(m.tag, Tag::kUser);
  EXPECT_EQ(m.payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Comm, FifoPerInbox) {
  Comm comm(2);
  comm.send(0, 1, Tag::kUser, {1});
  comm.send(0, 1, Tag::kUser, {2});
  EXPECT_EQ(comm.recv(1).payload[0], 1);
  EXPECT_EQ(comm.recv(1).payload[0], 2);
}

TEST(Comm, HasMessageProbe) {
  Comm comm(2);
  EXPECT_FALSE(comm.has_message(1));
  comm.send(0, 1, Tag::kUser, {});
  EXPECT_TRUE(comm.has_message(1));
}

TEST(Comm, RecvBlocksUntilSend) {
  Comm comm(2);
  std::thread sender([&comm] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    comm.send(0, 1, Tag::kUser, {42});
  });
  const Message m = comm.recv(1);  // must block, then receive
  sender.join();
  EXPECT_EQ(m.payload[0], 42);
}

TEST(Comm, RankRangeChecked) {
  Comm comm(2);
  EXPECT_THROW(comm.send(0, 5, Tag::kUser, {}), Error);
  EXPECT_THROW((void)comm.recv(7), Error);
}

TEST(Codec, PodRoundtrip) {
  const core::VoxelTask task{17, 42};
  const auto task2 = decode<core::VoxelTask>(encode(task));
  EXPECT_EQ(task2.first, 17u);
  EXPECT_EQ(task2.count, 42u);
}

TEST(Codec, VectorRoundtrip) {
  const std::vector<double> v{1.5, -2.5, 3.25};
  EXPECT_EQ(decode_vector<double>(encode_vector(v)), v);
  EXPECT_TRUE(decode_vector<double>({}).empty());
}

TEST(Codec, SizeMismatchThrows) {
  std::vector<std::uint8_t> bad(3);
  EXPECT_THROW(decode<core::VoxelTask>(bad), Error);
  EXPECT_THROW(decode_vector<double>(bad), Error);
}

// ---------------------------------------------------------------------------
// Real-thread master-worker driver
// ---------------------------------------------------------------------------

TEST(Driver, DistributedMatchesSingleNode) {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 64;
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);

  // Single-node result.
  core::Scoreboard single(d.voxels());
  const core::VoxelTask all{0, static_cast<std::uint32_t>(d.voxels())};
  single.add(core::run_task(ne, all, core::PipelineConfig::optimized()));

  // 3 workers, 10-voxel tasks.
  DriverOptions opts;
  opts.workers = 3;
  opts.voxels_per_task = 10;
  DriverStats stats;
  const core::Scoreboard distributed =
      run_cluster_analysis(ne, d.voxels(), opts, &stats);

  EXPECT_TRUE(distributed.complete());
  EXPECT_EQ(stats.tasks_dispatched, 7u);  // ceil(64/10)
  for (std::uint32_t v = 0; v < d.voxels(); ++v) {
    EXPECT_NEAR(single.accuracy_of(v), distributed.accuracy_of(v), 1e-9);
  }
}

// Serial single-node reference over the same task partition the driver
// uses: the determinism contract says moving tasks between ranks must not
// change a single bit of any voxel's score.
core::Scoreboard single_node_reference(const fmri::NormalizedEpochs& ne,
                                       std::size_t voxels,
                                       std::size_t voxels_per_task,
                                       std::size_t workers) {
  const std::size_t per_task =
      voxels_per_task != 0 ? voxels_per_task
                           : (voxels + workers - 1) / workers;
  core::Scoreboard board(voxels);
  for (const auto& task : core::partition_voxels(voxels, per_task)) {
    board.add(core::run_task(ne, task, core::PipelineConfig::optimized()));
  }
  return board;
}

void expect_bit_identical(const core::Scoreboard& reference,
                          const core::Scoreboard& distributed,
                          std::size_t voxels) {
  for (std::uint32_t v = 0; v < voxels; ++v) {
    EXPECT_EQ(reference.accuracy_of(v), distributed.accuracy_of(v)) << v;
  }
}

TEST(Driver, SingleWorkerIsBitIdenticalToSingleNode) {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 64;
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  DriverOptions opts;
  opts.workers = 1;
  opts.voxels_per_task = 16;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(ne, d.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.tasks_dispatched, 4u);
  expect_bit_identical(single_node_reference(ne, d.voxels(), 16, 1), board,
                       d.voxels());
}

TEST(Driver, MoreWorkersThanTasksIsBitIdentical) {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 64;
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  DriverOptions opts;
  opts.workers = 6;
  opts.voxels_per_task = 32;  // only 2 tasks for 6 workers
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(ne, d.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.tasks_dispatched, 2u);
  // The 4 surplus workers are released with an immediate shutdown.
  EXPECT_EQ(stats.batches, 2u);
  expect_bit_identical(single_node_reference(ne, d.voxels(), 32, 6), board,
                       d.voxels());
}

TEST(Driver, NonDividingGrainIsBitIdentical) {
  // 61 voxels in tasks of 7: nine tasks, the last only 5 voxels.
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 61;
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  DriverOptions opts;
  opts.workers = 3;
  opts.voxels_per_task = 7;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(ne, d.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.tasks_dispatched, 9u);  // ceil(61/7)
  expect_bit_identical(single_node_reference(ne, d.voxels(), 7, 3), board,
                       d.voxels());
}

TEST(Driver, ExplicitBatchingDispatchesInBatchesAndStaysBitIdentical) {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 64;
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  DriverOptions opts;
  opts.workers = 2;
  opts.voxels_per_task = 8;  // 8 tasks
  opts.batch = 3;
  DriverStats stats;
  const core::Scoreboard board =
      run_cluster_analysis(ne, d.voxels(), opts, &stats);
  EXPECT_TRUE(board.complete());
  EXPECT_EQ(stats.tasks_dispatched, 8u);
  // 3 + 3 primed, 2 more on the first refill: at least 3 assignments, and
  // batching means strictly fewer assignment messages than tasks.
  EXPECT_GE(stats.batches, 3u);
  EXPECT_LT(stats.batches, 8u);
  EXPECT_GE(stats.work_requests, 1u);
  expect_bit_identical(single_node_reference(ne, d.voxels(), 8, 2), board,
                       d.voxels());
}

// ---------------------------------------------------------------------------
// Virtual-time simulator
// ---------------------------------------------------------------------------

FarmConfig farm(std::size_t workers) {
  FarmConfig c;
  c.workers = workers;
  c.broadcast_bytes = 1e9;
  return c;
}

TEST(Sim, SingleWorkerMakespanIsSumOfTasks) {
  const std::vector<double> tasks(10, 2.0);
  const FarmOutcome o = simulate_task_farm(farm(1), tasks, 1);
  EXPECT_NEAR(o.makespan_s, 20.0, 1.5);  // + broadcast + messages
  EXPECT_DOUBLE_EQ(o.compute_s, 20.0);
}

TEST(Sim, SpeedupIsMonotonicInWorkers) {
  const std::vector<double> tasks(288, 4.0);  // face-scene-like task count
  double prev = 1e18;
  for (const std::size_t w : {1u, 8u, 16u, 32u, 64u, 96u}) {
    const FarmOutcome o = simulate_task_farm(farm(w), tasks, 3);
    EXPECT_LT(o.makespan_s, prev) << w << " workers";
    prev = o.makespan_s;
  }
}

TEST(Sim, NearLinearSpeedupInTheEasyRegime) {
  const std::vector<double> tasks(512, 5.0);
  const double t1 = simulate_task_farm(farm(1), tasks, 1).makespan_s;
  const double t16 = simulate_task_farm(farm(16), tasks, 1).makespan_s;
  const double speedup = t1 / t16;
  EXPECT_GT(speedup, 14.0);
  EXPECT_LE(speedup, 16.1);
}

TEST(Sim, QuantizationLimitsSpeedupWhenTasksAreFew) {
  // 100 equal tasks on 96 workers: two waves for 4 workers -> speedup
  // capped at 50x.
  const std::vector<double> tasks(100, 10.0);
  const double t1 = simulate_task_farm(farm(1), tasks, 1).makespan_s;
  const double t96 = simulate_task_farm(farm(96), tasks, 1).makespan_s;
  EXPECT_LT(t1 / t96, 51.0);
  EXPECT_GT(t1 / t96, 45.0);
}

TEST(Sim, CommunicationFloorCapsTinyWorkloads) {
  // Online-analysis regime: many tiny tasks — master serialization floors
  // the makespan regardless of worker count.
  const std::vector<double> tasks(500, 0.002);
  const double t48 = simulate_task_farm(farm(48), tasks, 1).makespan_s;
  const double t96 = simulate_task_farm(farm(96), tasks, 1).makespan_s;
  EXPECT_LT(t48 / t96, 1.5);  // nowhere near 2x
}

TEST(Sim, BatchingLiftsTheCommunicationFloor) {
  // Same tiny-task regime as above, but the master hands out 10 tasks per
  // assignment message: the per-assignment latency amortizes 10x, so the
  // serialization floor drops and the makespan strictly improves.
  const std::vector<double> tasks(2000, 0.0005);
  FarmConfig per_task = farm(48);
  FarmConfig batched = farm(48);
  batched.tasks_per_request = 10;
  const double t1 = simulate_task_farm(per_task, tasks, 1).makespan_s;
  const double t10 = simulate_task_farm(batched, tasks, 1).makespan_s;
  EXPECT_LT(t10, t1);
}

TEST(Sim, BatchOfOneMatchesDefault) {
  const std::vector<double> tasks(64, 0.5);
  FarmConfig explicit_one = farm(8);
  explicit_one.tasks_per_request = 1;
  const double t_default = simulate_task_farm(farm(8), tasks, 2).makespan_s;
  const double t_one = simulate_task_farm(explicit_one, tasks, 2).makespan_s;
  EXPECT_DOUBLE_EQ(t_default, t_one);
}

TEST(Sim, ZeroBatchIsRejected) {
  FarmConfig c = farm(2);
  c.tasks_per_request = 0;
  EXPECT_THROW((void)simulate_task_farm(c, std::vector<double>{1.0}, 1),
               Error);
}

TEST(Sim, FoldsAreBarriers) {
  // One straggler task per fold: folds serialize behind it.
  std::vector<double> tasks(10, 1.0);
  tasks[0] = 20.0;
  const FarmOutcome one_fold = simulate_task_farm(farm(10), tasks, 1);
  const FarmOutcome four_folds = simulate_task_farm(farm(10), tasks, 4);
  EXPECT_NEAR(four_folds.makespan_s, 4.0 * one_fold.makespan_s,
              0.2 * one_fold.makespan_s + 1.0);
}

TEST(Sim, EfficiencyBetweenZeroAndOne) {
  const std::vector<double> tasks(64, 1.0);
  const FarmOutcome o = simulate_task_farm(farm(8), tasks, 2);
  const double eff = o.efficiency(8);
  EXPECT_GT(eff, 0.5);
  EXPECT_LE(eff, 1.0);
}

TEST(Sim, RejectsDegenerateInput) {
  EXPECT_THROW((void)simulate_task_farm(farm(0), std::vector<double>{1.0}, 1),
               Error);
  EXPECT_THROW((void)simulate_task_farm(farm(2), std::vector<double>{}, 1),
               Error);
  EXPECT_THROW(
      (void)simulate_task_farm(farm(2), std::vector<double>{-1.0}, 1), Error);
}

TEST(NetworkModel, TransferTimeComposition) {
  NetworkModel net;
  net.latency_s = 1e-4;
  net.bandwidth_bytes_per_s = 1e9;
  EXPECT_NEAR(net.transfer_s(1e9), 1.0001, 1e-6);
  EXPECT_NEAR(net.transfer_s(0), 1e-4, 1e-12);
}

// ---------------------------------------------------------------------------
// Calibrated cost model
// ---------------------------------------------------------------------------

TEST(CostModel, WorkUnitsScaleWithDims) {
  const TaskDims small{10, 1000, 24, 4};
  TaskDims big = small;
  big.brain_voxels *= 2;
  EXPECT_DOUBLE_EQ(work_units(big).corr_norm,
                   2.0 * work_units(small).corr_norm);
  big = small;
  big.epochs *= 3;
  EXPECT_DOUBLE_EQ(work_units(big).kernel, 9.0 * work_units(small).kernel);
  EXPECT_DOUBLE_EQ(work_units(big).svm, 9.0 * work_units(small).svm);
}

TEST(CostModel, ExtrapolatesEventsAcrossDims) {
  // Calibrate at one size, predict another, and compare against a real
  // instrumented run at the target size: the cross-scale error of the
  // stage-1 traffic terms should be modest.
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 96;
  const fmri::Dataset d_small = fmri::generate_synthetic(spec);
  spec.voxels = 192;
  spec.informative = 24;
  spec.seed = 7;  // same seed family
  const fmri::Dataset d_big = fmri::generate_synthetic(spec);

  const auto run = [](const fmri::Dataset& d, std::uint32_t count) {
    const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
    memsim::Instrument ins;
    return core::run_task_instrumented(
        ne, core::VoxelTask{0, count}, core::PipelineConfig::optimized(),
        ins);
  };
  const auto small_run = run(d_small, 8);
  const auto big_run = run(d_big, 16);

  const TaskDims small_dims{8, 96, 32, 4};
  const TaskDims big_dims{16, 192, 32, 4};
  const CalibratedCost cost(small_run, small_dims);
  const auto predicted = cost.estimate_events(big_dims);
  const auto actual = big_run.total();
  EXPECT_NEAR(static_cast<double>(predicted.mem_refs),
              static_cast<double>(actual.mem_refs),
              0.35 * static_cast<double>(actual.mem_refs));
  EXPECT_NEAR(static_cast<double>(predicted.flops),
              static_cast<double>(actual.flops),
              0.35 * static_cast<double>(actual.flops));
}

TEST(CostModel, MoreWorkMeansMoreTime) {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 96;
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  memsim::Instrument ins;
  const auto run = core::run_task_instrumented(
      ne, core::VoxelTask{0, 8}, core::PipelineConfig::optimized(), ins);
  const TaskDims calib{8, 96, 32, 4};
  const CalibratedCost cost(run, calib);
  const archsim::ArchModel phi = archsim::Phi5110P();
  TaskDims big = calib;
  big.brain_voxels = 34470;
  EXPECT_GT(cost.task_seconds(big, phi), cost.task_seconds(calib, phi));
}

TEST(CostModel, ThreadStarvationSlowsSvmStage) {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 96;
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  memsim::Instrument ins;
  const auto run = core::run_task_instrumented(
      ne, core::VoxelTask{0, 8}, core::PipelineConfig::baseline(), ins);
  const TaskDims calib{8, 96, 32, 4};
  const CalibratedCost cost(run, calib);
  const archsim::ArchModel phi = archsim::Phi5110P();
  EXPECT_GT(cost.task_seconds(calib, phi, 60),
            cost.task_seconds(calib, phi, 240));
}

}  // namespace
}  // namespace fcma::cluster
