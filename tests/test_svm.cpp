// Tests for the three SVM solvers: analytic solutions on tiny problems,
// agreement between LibSVM-faithful and dense implementations, KKT
// conditions, separable-data behaviour, cross-validation, and the
// vector-intensity ordering of Table 8.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "linalg/opt.hpp"
#include "svm/cross_validation.hpp"

namespace fcma::svm {
namespace {

/// Builds a linear-kernel matrix from 2-D points.
linalg::Matrix kernel_from_points(const std::vector<std::pair<float, float>>& pts) {
  linalg::Matrix k(pts.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      k(i, j) = pts[i].first * pts[j].first + pts[i].second * pts[j].second;
    }
  }
  return k;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

/// A random linearly-separable problem: points at distance >= margin from
/// the separating hyperplane w = (1, 1)/sqrt(2).
struct Separable {
  std::vector<std::pair<float, float>> points;
  std::vector<std::int8_t> labels;
};

Separable make_separable(std::size_t n, float margin, std::uint64_t seed) {
  Rng rng(seed);
  Separable s;
  for (std::size_t i = 0; i < n; ++i) {
    const auto side = static_cast<std::int8_t>((i % 2 == 0) ? 1 : -1);
    // Random point on the correct side, at least `margin` away.
    const float along = rng.uniform(-2.0f, 2.0f);
    const float away = margin + rng.uniform(0.0f, 1.5f);
    // Hyperplane direction (1,1)/sqrt2; offset point along (1,-1)/sqrt2.
    const float inv = 0.70710678f;
    s.points.push_back({along * inv + side * away * inv,
                        -along * inv + side * away * inv});
    s.labels.push_back(side);
  }
  return s;
}

const TrainOptions kDefault{};

// ---------------------------------------------------------------------------
// Analytic two-point problem: optimal alpha = 1/|x1-x2|^2 (if < C), and the
// margin midpoint determines rho.
// ---------------------------------------------------------------------------

class AllSolvers : public ::testing::TestWithParam<SolverKind> {};

TEST_P(AllSolvers, TwoPointAnalyticSolution) {
  const std::vector<std::pair<float, float>> pts{{2.0f, 0.0f}, {0.0f, 0.0f}};
  const std::vector<std::int8_t> labels{1, -1};
  const linalg::Matrix k = kernel_from_points(pts);
  TrainOptions opts;
  opts.c = 10.0;  // large enough not to bind
  const Model m = train(GetParam(), k.view(), labels, all_indices(2), opts);
  // |x1 - x2|^2 = 4 -> alpha = 2/4 = 0.5 each; w = (1,0); rho = -w.mid = 1.
  EXPECT_NEAR(m.alpha_y[0], 0.5, 1e-3);
  EXPECT_NEAR(m.alpha_y[1], -0.5, 1e-3);
  EXPECT_NEAR(m.rho, 1.0, 1e-2);
  // Decision values: +1 at x1, -1 at x2.
  EXPECT_NEAR(decision_value(m, k.view(), 0, all_indices(2)), 1.0, 1e-2);
  EXPECT_NEAR(decision_value(m, k.view(), 1, all_indices(2)), -1.0, 1e-2);
}

TEST_P(AllSolvers, BoxConstraintBindsForSmallC) {
  const std::vector<std::pair<float, float>> pts{{1.0f, 0.0f}, {-1.0f, 0.0f}};
  const std::vector<std::int8_t> labels{1, -1};
  const linalg::Matrix k = kernel_from_points(pts);
  TrainOptions opts;
  opts.c = 0.1;  // binds: unconstrained alpha would be 0.5
  const Model m = train(GetParam(), k.view(), labels, all_indices(2), opts);
  EXPECT_NEAR(m.alpha_y[0], 0.1, 1e-4);
  EXPECT_NEAR(m.alpha_y[1], -0.1, 1e-4);
}

TEST_P(AllSolvers, SeparableProblemClassifiesPerfectly) {
  const Separable s = make_separable(40, 0.5f, 17);
  const linalg::Matrix k = kernel_from_points(s.points);
  const Model m =
      train(GetParam(), k.view(), s.labels, all_indices(40), kDefault);
  for (std::size_t t = 0; t < 40; ++t) {
    const double f = decision_value(m, k.view(), t, all_indices(40));
    EXPECT_GT(f * s.labels[t], 0.0) << "sample " << t;
  }
}

TEST_P(AllSolvers, DualConstraintHolds) {
  // sum alpha_i y_i = 0 at any SMO solution.
  const Separable s = make_separable(30, 0.2f, 23);
  const linalg::Matrix k = kernel_from_points(s.points);
  const Model m =
      train(GetParam(), k.view(), s.labels, all_indices(30), kDefault);
  const double sum =
      std::accumulate(m.alpha_y.begin(), m.alpha_y.end(), 0.0);
  EXPECT_NEAR(sum, 0.0, 1e-5);
}

TEST_P(AllSolvers, AlphasWithinBox) {
  const Separable s = make_separable(24, 0.1f, 29);
  const linalg::Matrix k = kernel_from_points(s.points);
  TrainOptions opts;
  opts.c = 0.7;
  const Model m = train(GetParam(), k.view(), s.labels, all_indices(24), opts);
  for (std::size_t i = 0; i < m.alpha_y.size(); ++i) {
    const double a = m.alpha_y[i] * s.labels[i];  // recover alpha
    EXPECT_GE(a, -1e-6);
    EXPECT_LE(a, opts.c + 1e-6);
  }
}

TEST_P(AllSolvers, TrainingOnSubsetIgnoresRest) {
  // Samples outside train_idx must not influence the model.
  Separable s = make_separable(20, 0.5f, 31);
  const linalg::Matrix k = kernel_from_points(s.points);
  std::vector<std::size_t> subset;
  for (std::size_t i = 0; i < 12; ++i) subset.push_back(i);
  const Model m1 = train(GetParam(), k.view(), s.labels, subset, kDefault);
  // Corrupt the labels of the unused samples; result must be identical.
  for (std::size_t i = 12; i < 20; ++i) s.labels[i] = -s.labels[i];
  const Model m2 = train(GetParam(), k.view(), s.labels, subset, kDefault);
  ASSERT_EQ(m1.alpha_y.size(), m2.alpha_y.size());
  for (std::size_t i = 0; i < m1.alpha_y.size(); ++i) {
    EXPECT_EQ(m1.alpha_y[i], m2.alpha_y[i]);
  }
  EXPECT_EQ(m1.rho, m2.rho);
}

INSTANTIATE_TEST_SUITE_P(Solvers, AllSolvers,
                         ::testing::Values(SolverKind::kLibSvm,
                                           SolverKind::kOptimizedLibSvm,
                                           SolverKind::kPhiSvm),
                         [](const auto& info) {
                           switch (info.param) {
                             case SolverKind::kLibSvm: return "LibSvm";
                             case SolverKind::kOptimizedLibSvm:
                               return "OptLibSvm";
                             default: return "PhiSvm";
                           }
                         });

// ---------------------------------------------------------------------------
// Cross-implementation agreement
// ---------------------------------------------------------------------------

TEST(SolverAgreement, ObjectivesMatchAcrossImplementations) {
  const Separable s = make_separable(50, 0.1f, 37);
  const linalg::Matrix k = kernel_from_points(s.points);
  const auto idx = all_indices(50);
  const Model lib = libsvm_train(k.view(), s.labels, idx, kDefault);
  const Model opt = optimized_libsvm_train(k.view(), s.labels, idx, kDefault);
  const Model phi = phisvm_train(k.view(), s.labels, idx, kDefault);
  // All solve the same QP: optimal objectives agree to solver tolerance.
  EXPECT_NEAR(lib.objective, opt.objective,
              1e-2 * (1.0 + std::abs(lib.objective)));
  EXPECT_NEAR(lib.objective, phi.objective,
              1e-2 * (1.0 + std::abs(lib.objective)));
}

TEST(SolverAgreement, DecisionValuesMatchOnNoisyProblem) {
  // Overlapping classes: bounded SVs exist; decisions should still agree.
  Rng rng(41);
  std::vector<std::pair<float, float>> pts;
  std::vector<std::int8_t> labels;
  for (int i = 0; i < 60; ++i) {
    const auto side = static_cast<std::int8_t>((i % 2 == 0) ? 1 : -1);
    pts.push_back({side * 0.5f + static_cast<float>(rng.gaussian()),
                   static_cast<float>(rng.gaussian())});
    labels.push_back(side);
  }
  const linalg::Matrix k = kernel_from_points(pts);
  const auto idx = all_indices(60);
  const Model lib = libsvm_train(k.view(), labels, idx, kDefault);
  const Model phi = phisvm_train(k.view(), labels, idx, kDefault);
  int disagreements = 0;
  for (std::size_t t = 0; t < 60; ++t) {
    const double fl = decision_value(lib, k.view(), t, idx);
    const double fp = decision_value(phi, k.view(), t, idx);
    disagreements += ((fl >= 0) != (fp >= 0));
  }
  EXPECT_LE(disagreements, 2);  // only near-boundary points may flip
}

TEST(SolverAgreement, FirstOrderHeuristicConvergesToSameObjective) {
  const Separable s = make_separable(40, 0.2f, 43);
  const linalg::Matrix k = kernel_from_points(s.points);
  const auto idx = all_indices(40);
  const Model second = dense_train(k.view(), s.labels, idx, kDefault,
                                   Heuristic::kSecondOrder);
  const Model first = dense_train(k.view(), s.labels, idx, kDefault,
                                  Heuristic::kFirstOrder);
  EXPECT_NEAR(second.objective, first.objective,
              1e-2 * (1.0 + std::abs(second.objective)));
}

TEST(SolverAgreement, SecondOrderNeedsFewerIterations) {
  // The Fan/Chen/Lin heuristic's whole point: fewer SMO steps.
  const Separable s = make_separable(80, 0.05f, 47);
  const linalg::Matrix k = kernel_from_points(s.points);
  const auto idx = all_indices(80);
  const Model second = dense_train(k.view(), s.labels, idx, kDefault,
                                   Heuristic::kSecondOrder);
  const Model first = dense_train(k.view(), s.labels, idx, kDefault,
                                  Heuristic::kFirstOrder);
  EXPECT_LE(second.iterations, first.iterations);
}

// ---------------------------------------------------------------------------
// Cross-validation machinery
// ---------------------------------------------------------------------------

TEST(CrossValidation, LosoFoldsGroupBySubject) {
  const std::vector<std::int32_t> subj{0, 0, 1, 1, 2, 2, 0};
  const auto folds = loso_folds(subj, 3);
  ASSERT_EQ(folds.size(), 3u);
  EXPECT_EQ(folds[0], (std::vector<std::size_t>{0, 1, 6}));
  EXPECT_EQ(folds[1], (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(folds[2], (std::vector<std::size_t>{4, 5}));
}

TEST(CrossValidation, LosoRejectsEmptySubject) {
  const std::vector<std::int32_t> subj{0, 0, 2, 2};
  EXPECT_THROW(loso_folds(subj, 3), Error);
}

TEST(CrossValidation, PerfectAccuracyOnSeparableData) {
  const Separable s = make_separable(36, 0.8f, 53);
  const linalg::Matrix k = kernel_from_points(s.points);
  std::vector<std::vector<std::size_t>> folds(4);
  for (std::size_t i = 0; i < 36; ++i) folds[i % 4].push_back(i);
  const CvResult cv = cross_validate(SolverKind::kPhiSvm, k.view(), s.labels,
                                     folds, kDefault);
  EXPECT_EQ(cv.total, 36u);
  EXPECT_EQ(cv.correct, 36u);
  EXPECT_DOUBLE_EQ(cv.accuracy(), 1.0);
}

TEST(CrossValidation, ChanceAccuracyOnRandomLabels) {
  Rng rng(59);
  std::vector<std::pair<float, float>> pts;
  std::vector<std::int8_t> labels;
  for (int i = 0; i < 64; ++i) {
    pts.push_back({static_cast<float>(rng.gaussian()),
                   static_cast<float>(rng.gaussian())});
    labels.push_back(rng.uniform() < 0.5 ? std::int8_t{1} : std::int8_t{-1});
  }
  const linalg::Matrix k = kernel_from_points(pts);
  std::vector<std::vector<std::size_t>> folds(4);
  for (std::size_t i = 0; i < 64; ++i) folds[i % 4].push_back(i);
  const CvResult cv = cross_validate(SolverKind::kPhiSvm, k.view(), labels,
                                     folds, kDefault);
  EXPECT_GT(cv.accuracy(), 0.2);
  EXPECT_LT(cv.accuracy(), 0.8);
}

TEST(CrossValidation, AllSolversAgreeOnAccuracy) {
  const Separable s = make_separable(24, 0.4f, 61);
  const linalg::Matrix k = kernel_from_points(s.points);
  std::vector<std::vector<std::size_t>> folds(3);
  for (std::size_t i = 0; i < 24; ++i) folds[i % 3].push_back(i);
  const double lib = cross_validate(SolverKind::kLibSvm, k.view(), s.labels,
                                    folds, kDefault)
                         .accuracy();
  const double opt = cross_validate(SolverKind::kOptimizedLibSvm, k.view(),
                                    s.labels, folds, kDefault)
                         .accuracy();
  const double phi = cross_validate(SolverKind::kPhiSvm, k.view(), s.labels,
                                    folds, kDefault)
                         .accuracy();
  EXPECT_DOUBLE_EQ(lib, opt);
  EXPECT_DOUBLE_EQ(lib, phi);
}

// ---------------------------------------------------------------------------
// Instrumented runs: the Table 8 vector-intensity ordering
// ---------------------------------------------------------------------------

TEST(SvmEvents, IntensityOrderingMatchesTable8) {
  const Separable s = make_separable(64, 0.1f, 67);
  const linalg::Matrix k = kernel_from_points(s.points);
  const auto idx = all_indices(64);
  auto intensity = [&](SolverKind kind) {
    memsim::Instrument ins;
    (void)train(kind, k.view(), s.labels, idx, kDefault, &ins);
    return ins.events().vector_intensity();
  };
  const double lib = intensity(SolverKind::kLibSvm);
  const double opt = intensity(SolverKind::kOptimizedLibSvm);
  const double phi = intensity(SolverKind::kPhiSvm);
  // LibSVM's sparse/double/scalar loops score ~1-2; the dense float
  // implementations approach the vector width.
  EXPECT_LT(lib, 3.0);
  EXPECT_GT(opt, 8.0);
  EXPECT_GT(phi, 8.0);
}

TEST(SvmEvents, InstrumentedResultMatchesUninstrumented) {
  const Separable s = make_separable(30, 0.3f, 71);
  const linalg::Matrix k = kernel_from_points(s.points);
  const auto idx = all_indices(30);
  memsim::Instrument ins;
  const Model with = phisvm_train(k.view(), s.labels, idx, kDefault, &ins);
  const Model without = phisvm_train(k.view(), s.labels, idx, kDefault);
  ASSERT_EQ(with.alpha_y.size(), without.alpha_y.size());
  for (std::size_t i = 0; i < with.alpha_y.size(); ++i) {
    EXPECT_EQ(with.alpha_y[i], without.alpha_y[i]);
  }
}

// ---------------------------------------------------------------------------
// Guard rails
// ---------------------------------------------------------------------------

TEST(SvmValidation, RejectsNonSquareKernel) {
  linalg::Matrix k(4, 5);
  const std::vector<std::int8_t> labels{1, -1, 1, -1};
  EXPECT_THROW(
      (void)phisvm_train(k.view(), labels, all_indices(4), kDefault), Error);
}

TEST(SvmValidation, RejectsBadLabels) {
  linalg::Matrix k(4, 4);
  k.fill(0.0f);
  for (int i = 0; i < 4; ++i) k(i, i) = 1.0f;
  const std::vector<std::int8_t> labels{1, 0, 1, -1};
  EXPECT_THROW(
      (void)phisvm_train(k.view(), labels, all_indices(4), kDefault), Error);
  EXPECT_THROW(
      (void)libsvm_train(k.view(), labels, all_indices(4), kDefault), Error);
}

TEST(SvmValidation, RejectsSingleSample) {
  linalg::Matrix k(2, 2);
  k.fill(1.0f);
  const std::vector<std::int8_t> labels{1, -1};
  const std::vector<std::size_t> one{0};
  EXPECT_THROW((void)phisvm_train(k.view(), labels, one, kDefault), Error);
}

TEST(Model, SupportVectorCount) {
  Model m;
  m.alpha_y = {0.5, 0.0, -0.5, 0.0};
  EXPECT_EQ(m.support_vectors(), 2u);
}

}  // namespace
}  // namespace fcma::svm
