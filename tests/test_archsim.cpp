// Unit tests for the analytic architecture performance model.
#include <gtest/gtest.h>

#include "archsim/arch_model.hpp"

namespace fcma::archsim {
namespace {

memsim::KernelEvents compute_bound() {
  return memsim::KernelEvents{.flops = 32ull << 30,
                              .vpu_instructions = 1ull << 30,
                              .vpu_elements = 16ull << 30,
                              .mem_refs = 1ull << 20,
                              .l1_misses = 1000,
                              .l2_misses = 100};
}

memsim::KernelEvents memory_bound() {
  return memsim::KernelEvents{.flops = 1ull << 20,
                              .vpu_instructions = 1ull << 20,
                              .vpu_elements = 16ull << 20,
                              .mem_refs = 1ull << 30,
                              .l1_misses = 1ull << 28,
                              .l2_misses = 1ull << 27};
}

TEST(ArchModel, PhiPeakMatchesDatasheet) {
  // 60 cores x 16 lanes x 2 flops x 1.053 GHz = 2.02 TFLOPS SP.
  EXPECT_NEAR(Phi5110P().peak_sp_gflops(), 2021.8, 1.0);
}

TEST(ArchModel, XeonPeakMatchesDatasheet) {
  // 8 cores x 8 lanes x 2 flops x 2 issue x 2.6 GHz = 332.8 GFLOPS SP.
  EXPECT_NEAR(XeonE5_2670().peak_sp_gflops(), 332.8, 0.5);
}

TEST(ArchModel, MaxThreads) {
  EXPECT_EQ(Phi5110P().max_threads(), 240);
  EXPECT_EQ(XeonE5_2670().max_threads(), 16);
}

TEST(ArchModel, ModeledTimePositive) {
  const ArchModel phi = Phi5110P();
  EXPECT_GT(phi.modeled_seconds(compute_bound()), 0.0);
  EXPECT_GT(phi.modeled_seconds(memory_bound()), 0.0);
}

TEST(ArchModel, FewerThreadsSlower) {
  const ArchModel phi = Phi5110P();
  const auto e = compute_bound();
  const double full = phi.modeled_seconds(e, 240);
  const double half = phi.modeled_seconds(e, 120);
  const double starved = phi.modeled_seconds(e, 60);
  EXPECT_GT(half, full);
  EXPECT_GT(starved, half);
}

TEST(ArchModel, ThreadStarvationRoughlyProportional) {
  // Compute-bound work on 1/4 of the threads should take ~4x longer.
  const ArchModel phi = Phi5110P();
  const auto e = compute_bound();
  const double full = phi.modeled_seconds(e, 240);
  const double quarter = phi.modeled_seconds(e, 60);
  EXPECT_NEAR(quarter / full, 4.0, 0.8);
}

TEST(ArchModel, MissesDominateMemoryBoundTime) {
  const ArchModel phi = Phi5110P();
  auto few = memory_bound();
  auto many = memory_bound();
  many.l2_misses *= 8;
  EXPECT_GT(phi.modeled_seconds(many), 4.0 * phi.modeled_seconds(few));
}

TEST(ArchModel, GflopsBoundedByPeak) {
  const ArchModel phi = Phi5110P();
  // Perfectly dense FMA stream: 32 flops per 16-lane instruction.
  memsim::KernelEvents e{.flops = 3200000000ull,
                         .vpu_instructions = 100000000ull,
                         .vpu_elements = 1600000000ull,
                         .mem_refs = 0,
                         .l1_misses = 0,
                         .l2_misses = 0};
  const double g = phi.modeled_gflops(e);
  EXPECT_LE(g, phi.peak_sp_gflops() * 1.001);
  EXPECT_GT(g, phi.peak_sp_gflops() * 0.5);
}

TEST(ArchModel, XeonHidesMemoryBetterThanPhi) {
  // Same balanced event mix: the out-of-order Xeon's higher mlp/overlap
  // should make memory misses a smaller fraction of its time.
  memsim::KernelEvents e{.flops = 1ull << 28,
                         .vpu_instructions = 1ull << 26,
                         .vpu_elements = 1ull << 30,
                         .mem_refs = 1ull << 26,
                         .l1_misses = 1ull << 24,
                         .l2_misses = 1ull << 23};
  auto memory_share = [&e](ArchModel m) {
    const double with = m.modeled_seconds(e);
    auto no_miss = e;
    no_miss.l2_misses = 0;
    return (with - m.modeled_seconds(no_miss)) / with;
  };
  EXPECT_GT(memory_share(Phi5110P()), memory_share(XeonE5_2670()));
}

TEST(ArchModel, ZeroThreadsMeansFullMachine) {
  const ArchModel phi = Phi5110P();
  const auto e = compute_bound();
  EXPECT_DOUBLE_EQ(phi.modeled_seconds(e, 0),
                   phi.modeled_seconds(e, phi.max_threads()));
}

}  // namespace
}  // namespace fcma::archsim
