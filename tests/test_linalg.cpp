// Tests for the matrix kernels: correctness of the baseline and optimized
// gemm/syrk against the double-precision reference across the tall-skinny
// shapes FCMA uses (and adversarial odd shapes), agreement of every
// instrumented twin with its fast kernel, and the event-count orderings the
// paper's Tables 5/6 rest on.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "linalg/baseline.hpp"
#include "linalg/matrix.hpp"
#include "linalg/opt.hpp"
#include "linalg/reference.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = rng.uniform(-1.0f, 1.0f);
    }
  }
  return m;
}

// Relative-ish tolerance for float kernels vs the double reference.
float tolerance(std::size_t k) {
  return 1e-5f * static_cast<float>(k) + 1e-5f;
}

// ---------------------------------------------------------------------------
// gemm_nt correctness across shapes (parameterized sweep)
// ---------------------------------------------------------------------------

using GemmShape = std::tuple<int, int, int>;  // M, N, K

class GemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapes, BaselineMatchesReference) {
  const auto [m, n, k] = GetParam();
  const Matrix a = random_matrix(m, k, 1);
  const Matrix b = random_matrix(n, k, 2);
  Matrix want(m, n);
  Matrix got(m, n);
  reference::gemm_nt(a.view(), b.view(), want.view());
  baseline::gemm_nt(a.view(), b.view(), got.view());
  EXPECT_LE(reference::max_abs_diff(want.view(), got.view()), tolerance(k));
}

TEST_P(GemmShapes, OptimizedMatchesReference) {
  const auto [m, n, k] = GetParam();
  const Matrix a = random_matrix(m, k, 3);
  const Matrix b = random_matrix(n, k, 4);
  Matrix want(m, n);
  Matrix got(m, n);
  reference::gemm_nt(a.view(), b.view(), want.view());
  opt::gemm_nt(a.view(), b.view(), got.view());
  EXPECT_LE(reference::max_abs_diff(want.view(), got.view()), tolerance(k));
}

TEST_P(GemmShapes, BaselineInstrumentedMatchesReference) {
  const auto [m, n, k] = GetParam();
  const Matrix a = random_matrix(m, k, 5);
  const Matrix b = random_matrix(n, k, 6);
  Matrix want(m, n);
  Matrix got(m, n);
  reference::gemm_nt(a.view(), b.view(), want.view());
  memsim::Instrument ins;
  baseline::gemm_nt_instrumented(a.view(), b.view(), got.view(), ins);
  EXPECT_LE(reference::max_abs_diff(want.view(), got.view()), tolerance(k));
  EXPECT_GT(ins.events().mem_refs, 0u);
}

TEST_P(GemmShapes, OptimizedInstrumentedMatchesReference) {
  const auto [m, n, k] = GetParam();
  const Matrix a = random_matrix(m, k, 7);
  const Matrix b = random_matrix(n, k, 8);
  Matrix want(m, n);
  Matrix got(m, n);
  reference::gemm_nt(a.view(), b.view(), want.view());
  memsim::Instrument ins;
  opt::gemm_nt_instrumented(a.view(), b.view(), got.view(), ins);
  EXPECT_LE(reference::max_abs_diff(want.view(), got.view()), tolerance(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 2},
                      GemmShape{8, 64, 12},     // one task voxel group
                      GemmShape{16, 257, 12},   // ragged panel edge
                      GemmShape{7, 511, 11},    // everything odd
                      GemmShape{32, 1024, 12},  // multi-panel
                      GemmShape{120, 700, 12},  // paper-like V and K
                      GemmShape{5, 2000, 20},   // long epoch
                      GemmShape{64, 64, 64}));  // square sanity

// ---------------------------------------------------------------------------
// syrk correctness across shapes
// ---------------------------------------------------------------------------

using SyrkShape = std::tuple<int, int>;  // M, N

class SyrkShapes : public ::testing::TestWithParam<SyrkShape> {};

TEST_P(SyrkShapes, BaselineMatchesReference) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 11);
  Matrix want(m, m);
  Matrix got(m, m);
  reference::syrk(a.view(), want.view());
  baseline::syrk(a.view(), got.view());
  EXPECT_LE(reference::max_abs_diff(want.view(), got.view()), tolerance(n));
}

TEST_P(SyrkShapes, OptimizedMatchesReference) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 12);
  Matrix want(m, m);
  Matrix got(m, m);
  reference::syrk(a.view(), want.view());
  opt::syrk(a.view(), got.view());
  EXPECT_LE(reference::max_abs_diff(want.view(), got.view()), tolerance(n));
}

TEST_P(SyrkShapes, OptimizedThreadedMatchesReference) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 13);
  Matrix want(m, m);
  Matrix got(m, m);
  reference::syrk(a.view(), want.view());
  threading::ThreadPool pool(4);
  opt::syrk(a.view(), got.view(), pool);
  EXPECT_LE(reference::max_abs_diff(want.view(), got.view()), tolerance(n));
}

TEST_P(SyrkShapes, InstrumentedTwinsMatchReference) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, 14);
  Matrix want(m, m);
  reference::syrk(a.view(), want.view());
  {
    Matrix got(m, m);
    memsim::Instrument ins;
    baseline::syrk_instrumented(a.view(), got.view(), ins);
    EXPECT_LE(reference::max_abs_diff(want.view(), got.view()), tolerance(n));
  }
  {
    Matrix got(m, m);
    memsim::Instrument ins;
    opt::syrk_instrumented(a.view(), got.view(), ins);
    EXPECT_LE(reference::max_abs_diff(want.view(), got.view()), tolerance(n));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SyrkShapes,
    ::testing::Values(SyrkShape{2, 3}, SyrkShape{9, 96},
                      SyrkShape{10, 100},   // ragged tile edges
                      SyrkShape{17, 191},   // primes
                      SyrkShape{32, 960},   // multi-panel
                      SyrkShape{204, 512},  // paper-like M
                      SyrkShape{64, 97}));  // panel remainder

// ---------------------------------------------------------------------------
// threaded gemm, interleaved layout, panel primitives
// ---------------------------------------------------------------------------

TEST(Gemm, ThreadedMatchesSerial) {
  const Matrix a = random_matrix(24, 12, 21);
  const Matrix b = random_matrix(1500, 12, 22);
  Matrix serial(24, 1500);
  Matrix threaded(24, 1500);
  opt::gemm_nt(a.view(), b.view(), serial.view());
  threading::ThreadPool pool(4);
  opt::gemm_nt(a.view(), b.view(), threaded.view(), pool);
  EXPECT_EQ(reference::max_abs_diff(serial.view(), threaded.view()), 0.0f);
}

TEST(Gemm, BaselineThreadedMatchesSerial) {
  const Matrix a = random_matrix(24, 12, 23);
  const Matrix b = random_matrix(700, 12, 24);
  Matrix serial(24, 700);
  Matrix threaded(24, 700);
  baseline::gemm_nt(a.view(), b.view(), serial.view());
  threading::ThreadPool pool(3);
  baseline::gemm_nt(a.view(), b.view(), threaded.view(), pool);
  EXPECT_EQ(reference::max_abs_diff(serial.view(), threaded.view()), 0.0f);
}

TEST(Gemm, InterleavedLdcWritesStridedRows) {
  // The FCMA layout trick: epoch slices use ld = epochs * N so voxel rows
  // interleave.  Verify against a plain run.
  const std::size_t v = 4;
  const std::size_t n = 200;
  const std::size_t epochs = 3;
  const Matrix a = random_matrix(v, 12, 31);
  const Matrix b = random_matrix(n, 12, 32);
  Matrix flat(v, n);
  opt::gemm_nt(a.view(), b.view(), flat.view());

  Matrix interleaved(v * epochs, n);
  interleaved.fill(0.0f);
  const std::size_t m = 1;  // write into epoch slot 1
  MatrixView slice{interleaved.data() + m * interleaved.ld(), v, n,
                   epochs * interleaved.ld()};
  opt::gemm_nt(a.view(), b.view(), slice);
  for (std::size_t i = 0; i < v; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(interleaved(i * epochs + m, j), flat(i, j));
      EXPECT_EQ(interleaved(i * epochs, j), 0.0f);  // other slots untouched
    }
  }
}

TEST(Gemm, PanelPrimitivesComposeToFullGemm) {
  const Matrix a = random_matrix(6, 12, 41);
  const Matrix b = random_matrix(300, 12, 42);
  Matrix want(6, 300);
  reference::gemm_nt(a.view(), b.view(), want.view());
  Matrix got(6, 300);
  std::vector<float> bt(12 * 300);
  opt::pack_bt_panel(b.view(), 0, 300, bt.data());
  for (std::size_t i = 0; i < 6; ++i) {
    opt::gemm_row_panel(a.row(i), 12, bt.data(), 300, got.row(i));
  }
  EXPECT_LE(reference::max_abs_diff(want.view(), got.view()), tolerance(12));
}

TEST(Gemm, PackBtPanelTransposes) {
  const Matrix b = random_matrix(10, 4, 43);
  std::vector<float> bt(4 * 6);
  opt::pack_bt_panel(b.view(), 2, 8, bt.data());
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(bt[k * 6 + j], b(j + 2, k));
    }
  }
}

TEST(Gemm, DimensionMismatchThrows) {
  Matrix a(4, 12);
  Matrix b(10, 11);
  Matrix c(4, 10);
  EXPECT_THROW(opt::gemm_nt(a.view(), b.view(), c.view()), Error);
  EXPECT_THROW(baseline::gemm_nt(a.view(), b.view(), c.view()), Error);
  EXPECT_THROW(reference::gemm_nt(a.view(), b.view(), c.view()), Error);
}

TEST(Syrk, BadOutputShapeThrows) {
  Matrix a(8, 32);
  Matrix c(8, 9);
  EXPECT_THROW(opt::syrk(a.view(), c.view()), Error);
  EXPECT_THROW(baseline::syrk(a.view(), c.view()), Error);
}

TEST(Syrk, ResultIsSymmetric) {
  const Matrix a = random_matrix(33, 200, 51);
  Matrix c(33, 33);
  opt::syrk(a.view(), c.view());
  for (std::size_t i = 0; i < 33; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(c(i, j), c(j, i));
    }
  }
}

TEST(Syrk, DiagonalIsNonNegative) {
  const Matrix a = random_matrix(16, 150, 52);
  Matrix c(16, 16);
  opt::syrk(a.view(), c.view());
  for (std::size_t i = 0; i < 16; ++i) EXPECT_GE(c(i, i), 0.0f);
}

// ---------------------------------------------------------------------------
// Event-count orderings (the substance of Tables 5/6)
// ---------------------------------------------------------------------------

struct TallSkinnyEvents {
  memsim::KernelEvents baseline;
  memsim::KernelEvents optimized;
};

TallSkinnyEvents corr_shape_events() {
  // A correlation-stage shaped problem: V=16, K=12, N=2048.
  const Matrix a = random_matrix(16, 12, 61);
  const Matrix b = random_matrix(2048, 12, 62);
  TallSkinnyEvents out;
  {
    Matrix c(16, 2048);
    memsim::Instrument ins;
    baseline::gemm_nt_instrumented(a.view(), b.view(), c.view(), ins);
    out.baseline = ins.events();
  }
  {
    Matrix c(16, 2048);
    memsim::Instrument ins;
    opt::gemm_nt_instrumented(a.view(), b.view(), c.view(), ins);
    out.optimized = ins.events();
  }
  return out;
}

TEST(Events, OptimizedGemmIssuesFewerMemoryReferences) {
  const auto e = corr_shape_events();
  EXPECT_LT(e.optimized.mem_refs, e.baseline.mem_refs);
}

TEST(Events, OptimizedGemmIntensityNearFullWidth) {
  const auto e = corr_shape_events();
  EXPECT_GT(e.optimized.vector_intensity(), 13.0);
  EXPECT_LE(e.optimized.vector_intensity(), 16.0);
}

TEST(Events, BaselineGemmIntensityWellBelowWidth) {
  const auto e = corr_shape_events();
  EXPECT_LT(e.baseline.vector_intensity(), 10.0);
}

TEST(Events, FlopCountsAgreeAcrossImplementations) {
  const auto e = corr_shape_events();
  // Both implementations perform the same useful work: 2*V*N*K flops.
  EXPECT_EQ(e.baseline.flops, 2ull * 16 * 2048 * 12);
  EXPECT_EQ(e.optimized.flops, e.baseline.flops);
}

TEST(Events, OptimizedSyrkHasFarFewerL2Misses) {
  // A kernel-matrix shaped problem: M=64, N=4096 (1MB operand streams
  // through the Phi's 512KB L2).
  const Matrix a = random_matrix(64, 4096, 63);
  memsim::KernelEvents base;
  memsim::KernelEvents opt_e;
  {
    Matrix c(64, 64);
    memsim::Instrument ins;
    baseline::syrk_instrumented(a.view(), c.view(), ins);
    base = ins.events();
  }
  {
    Matrix c(64, 64);
    memsim::Instrument ins;
    opt::syrk_instrumented(a.view(), c.view(), ins);
    opt_e = ins.events();
  }
  EXPECT_GT(base.l2_misses, 3 * opt_e.l2_misses);
  EXPECT_GT(base.mem_refs, opt_e.mem_refs);
  EXPECT_GT(opt_e.vector_intensity(), base.vector_intensity());
}

TEST(Events, XeonModelUsesEightLanes) {
  const Matrix a = random_matrix(8, 12, 71);
  const Matrix b = random_matrix(512, 12, 72);
  Matrix c(8, 512);
  memsim::Instrument ins(memsim::Machine::kXeonE5_2670);
  opt::gemm_nt_instrumented(a.view(), b.view(), c.view(), ins, 8);
  EXPECT_GT(ins.events().vector_intensity(), 6.0);
  EXPECT_LE(ins.events().vector_intensity(), 8.0);
}

// ---------------------------------------------------------------------------
// Matrix container
// ---------------------------------------------------------------------------

TEST(Matrix, LeadingDimensionPadding) {
  Matrix m(4, 10, 16);
  EXPECT_EQ(m.ld(), 16u);
  m(3, 9) = 5.0f;
  EXPECT_EQ(m.row(3)[9], 5.0f);
  EXPECT_THROW(Matrix(2, 8, 4), Error);  // ld < cols
}

TEST(Matrix, FillSetsEverything) {
  Matrix m(3, 3);
  m.fill(2.5f);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 2.5f);
  }
}

TEST(Matrix, ViewsShareStorage) {
  Matrix m(2, 2);
  m.fill(0.0f);
  MatrixView v = m.view();
  v(1, 1) = 9.0f;
  EXPECT_EQ(m(1, 1), 9.0f);
  ConstMatrixView cv = m.view();
  EXPECT_EQ(cv(1, 1), 9.0f);
}

// Bit-identity across the autotuner's candidate grid: every geometry the
// probe sweep can pick must produce exactly the bits of the default
// geometry, or a timing-dependent tuner decision would change results.
// Gemm regroups whole per-element dot products; syrk flushes accumulators
// every opt::kSyrkNumericK elements regardless of panel depth.

TEST(TuneGeometry, EveryGemmCandidateIsBitIdentical) {
  const std::size_t m = 7, n = 1337, k = 12;  // ragged vs every panel width
  const Matrix a = random_matrix(m, k, 61);
  const Matrix b = random_matrix(n, k, 62);
  Matrix ref(m, n);
  opt::gemm_nt_with(a.view(), b.view(), ref.view(), tune::GemmGeometry{});
  for (const tune::GemmGeometry& geo : tune::gemm_candidates()) {
    Matrix c(m, n);
    opt::gemm_nt_with(a.view(), b.view(), c.view(), geo);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(c(i, j), ref(i, j))
            << "panel_cols=" << geo.panel_cols << " unroll=" << geo.unroll
            << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(TuneGeometry, EveryGemmCandidateIsBitIdenticalThreaded) {
  threading::ThreadPool pool(3);
  const std::size_t m = 5, n = 2100, k = 12;
  const Matrix a = random_matrix(m, k, 63);
  const Matrix b = random_matrix(n, k, 64);
  Matrix ref(m, n);
  opt::gemm_nt_with(a.view(), b.view(), ref.view(), tune::GemmGeometry{});
  for (const tune::GemmGeometry& geo : tune::gemm_candidates()) {
    Matrix c(m, n);
    opt::gemm_nt_with(a.view(), b.view(), c.view(), geo, pool);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(c(i, j), ref(i, j))
            << "panel_cols=" << geo.panel_cols << " unroll=" << geo.unroll;
      }
    }
  }
}

TEST(TuneGeometry, EverySyrkCandidateIsBitIdentical) {
  const std::size_t m = 33, n = 1000;  // ragged vs every panel_k and tile
  const Matrix a = random_matrix(m, n, 65);
  Matrix ref(m, m);
  opt::syrk_with(a.view(), ref.view(), tune::SyrkGeometry{});
  for (const tune::SyrkGeometry& geo : tune::syrk_candidates()) {
    Matrix c(m, m);
    opt::syrk_with(a.view(), c.view(), geo);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        ASSERT_EQ(c(i, j), ref(i, j))
            << "panel_k=" << geo.panel_k << " micro_rows=" << geo.micro_rows
            << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(TuneGeometry, EverySyrkCandidateIsBitIdenticalThreaded) {
  // The threaded syrk chunks the long dimension in kSyrkNumericK substeps,
  // so the chunk partition — and every accumulation chain — is a function
  // of (n, pool size) only, never of the tuner's panel depth.
  threading::ThreadPool pool(3);
  const std::size_t m = 21, n = 700;
  const Matrix a = random_matrix(m, n, 66);
  Matrix ref(m, m);
  opt::syrk_with(a.view(), ref.view(), tune::SyrkGeometry{}, pool);
  for (const tune::SyrkGeometry& geo : tune::syrk_candidates()) {
    Matrix c(m, m);
    opt::syrk_with(a.view(), c.view(), geo, pool);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        ASSERT_EQ(c(i, j), ref(i, j))
            << "panel_k=" << geo.panel_k << " micro_rows=" << geo.micro_rows;
      }
    }
  }
}

TEST(TuneGeometry, CandidatesStayWithinReferenceTolerance) {
  // Identical to each other is necessary but not sufficient — anchor the
  // shared bits to the double-precision reference too.
  const std::size_t m = 9, n = 300, k = 12;
  const Matrix a = random_matrix(m, k, 67);
  const Matrix b = random_matrix(n, k, 68);
  Matrix c(m, n);
  opt::gemm_nt_with(a.view(), b.view(), c.view(),
                    tune::GemmGeometry{128, 2});
  Matrix want(m, n);
  reference::gemm_nt(a.view(), b.view(), want.view());
  EXPECT_LE(reference::max_abs_diff(want.view(), c.view()), tolerance(k));
}

}  // namespace
}  // namespace fcma::linalg
