// Unit tests for the cache simulator, VPU counter and instrumentation
// facade — the vTune replacement every event-count table relies on.
#include <gtest/gtest.h>

#include <vector>

#include "common/aligned.hpp"
#include "memsim/cache.hpp"
#include "memsim/instrument.hpp"
#include "memsim/vpu.hpp"

namespace fcma::memsim {
namespace {

CacheConfig tiny_l1() {
  return {.size_bytes = 1024, .associativity = 2, .line_bytes = 64};
}
CacheConfig tiny_l2() {
  return {.size_bytes = 4096, .associativity = 4, .line_bytes = 64};
}

TEST(CacheLevel, CompulsoryMissThenHit) {
  CacheLevel level(tiny_l1());
  EXPECT_FALSE(level.access(100));
  EXPECT_TRUE(level.access(100));
}

TEST(CacheLevel, EvictsLeastRecentlyUsed) {
  // 1KB, 2-way, 64B lines -> 8 sets.  Lines mapping to the same set differ
  // by multiples of 8 in line address.
  CacheLevel level(tiny_l1());
  EXPECT_FALSE(level.access(0));
  EXPECT_FALSE(level.access(8));
  EXPECT_TRUE(level.access(0));    // 0 is now MRU
  EXPECT_FALSE(level.access(16));  // evicts 8 (LRU)
  EXPECT_TRUE(level.access(0));
  EXPECT_FALSE(level.access(8));   // 8 was evicted
}

TEST(CacheLevel, FlushDropsEverything) {
  CacheLevel level(tiny_l1());
  level.access(1);
  level.access(2);
  level.flush();
  EXPECT_FALSE(level.access(1));
  EXPECT_FALSE(level.access(2));
}

TEST(CacheLevel, DistinctSetsDoNotConflict) {
  CacheLevel level(tiny_l1());
  for (std::uint64_t line = 0; line < 8; ++line) {
    EXPECT_FALSE(level.access(line));
  }
  for (std::uint64_t line = 0; line < 8; ++line) {
    EXPECT_TRUE(level.access(line));
  }
}

TEST(CacheConfig, SetsComputation) {
  EXPECT_EQ(phi_l1().sets(), 32 * 1024 / (8 * 64));
  EXPECT_EQ(phi_l2().sets(), 512 * 1024 / (8 * 64));
}

TEST(CacheSim, CountsRefsAndMisses) {
  CacheSim sim(tiny_l1(), tiny_l2());
  AlignedBuffer<float> buf(64);
  sim.access(buf.data(), 4);
  sim.access(buf.data(), 4);  // L1 hit
  const CacheStats& s = sim.stats();
  EXPECT_EQ(s.refs, 2u);
  EXPECT_EQ(s.l1_misses, 1u);
  EXPECT_EQ(s.l2_misses, 1u);
  EXPECT_EQ(s.bytes, 8u);
}

TEST(CacheSim, WideAccessSpanningTwoLinesIsOneRef) {
  CacheSim sim(tiny_l1(), tiny_l2());
  AlignedBuffer<float> buf(64);
  // 64 floats starting 32 bytes into a line -> spans 5 lines? No: 16 floats
  // = 64 bytes starting at offset 32 spans exactly 2 lines.
  sim.access(buf.data() + 8, 16 * sizeof(float));
  EXPECT_EQ(sim.stats().refs, 1u);
  EXPECT_EQ(sim.stats().l1_misses, 2u);
}

TEST(CacheSim, L2HoldsWhatL1Cannot) {
  CacheSim sim(tiny_l1(), tiny_l2());
  // Touch 32 lines (2KB): exceeds the 1KB L1 but fits the 4KB L2.
  AlignedBuffer<float> buf(32 * 16);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < 32; ++i) {
      sim.access(buf.data() + i * 16, 4);
    }
  }
  const CacheStats& s = sim.stats();
  EXPECT_EQ(s.l2_misses, 32u);        // only compulsory misses at L2
  EXPECT_GT(s.l1_misses, s.l2_misses);  // L1 thrashes on pass 2
}

TEST(CacheSim, StreamLargerThanL2MissesEveryLine) {
  CacheSim sim(tiny_l1(), tiny_l2());
  const std::size_t lines = 256;  // 16KB stream through a 4KB L2
  AlignedBuffer<float> buf(lines * 16);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < lines; ++i) {
      sim.access(buf.data() + i * 16, 4);
    }
  }
  EXPECT_EQ(sim.stats().l2_misses, 2 * lines);
}

TEST(CacheSim, ResetStatsKeepsContents) {
  CacheSim sim(tiny_l1(), tiny_l2());
  AlignedBuffer<float> buf(16);
  sim.access(buf.data(), 4);
  sim.reset_stats();
  sim.access(buf.data(), 4);  // still cached
  EXPECT_EQ(sim.stats().refs, 1u);
  EXPECT_EQ(sim.stats().l1_misses, 0u);
}

TEST(VpuCounter, IntensityIsElementsPerInstruction) {
  VpuCounter vpu;
  vpu.op(16);
  vpu.op(16);
  vpu.op(8);
  EXPECT_EQ(vpu.instructions(), 3u);
  EXPECT_EQ(vpu.elements(), 40u);
  EXPECT_NEAR(vpu.intensity(), 40.0 / 3.0, 1e-12);
}

TEST(VpuCounter, EmptyCounterHasZeroIntensity) {
  VpuCounter vpu;
  EXPECT_DOUBLE_EQ(vpu.intensity(), 0.0);
}

TEST(VpuCounter, BulkOpsAccumulate) {
  VpuCounter vpu;
  vpu.ops(10, 16);
  EXPECT_EQ(vpu.instructions(), 10u);
  EXPECT_EQ(vpu.elements(), 160u);
}

TEST(VpuCounter, ScalarCodeScoresOne) {
  VpuCounter vpu;
  vpu.ops(100, 1);
  EXPECT_DOUBLE_EQ(vpu.intensity(), 1.0);
}

TEST(Instrument, VectorLoadsBeatScalarLoadsOnRefs) {
  AlignedBuffer<float> buf(1024);
  Instrument vec(Machine::kPhi5110P);
  for (std::size_t i = 0; i < 1024; i += 16) vec.load(buf.data() + i, 16);
  Instrument scalar(Machine::kPhi5110P);
  for (std::size_t i = 0; i < 1024; ++i) scalar.load(buf.data() + i, 1);
  EXPECT_EQ(vec.events().mem_refs * 16, scalar.events().mem_refs);
  // Same lines touched: identical L2 misses.
  EXPECT_EQ(vec.events().l2_misses, scalar.events().l2_misses);
  EXPECT_DOUBLE_EQ(vec.events().vector_intensity(), 16.0);
  EXPECT_DOUBLE_EQ(scalar.events().vector_intensity(), 1.0);
}

TEST(Instrument, BroadcastTouchesOnlyFourBytes) {
  AlignedBuffer<float> buf(64);
  Instrument ins(Machine::kPhi5110P);
  ins.load_broadcast(buf.data(), 16);
  EXPECT_EQ(ins.events().mem_refs, 1u);
  EXPECT_EQ(ins.events().l2_misses, 1u);  // one line only
  EXPECT_EQ(ins.events().vpu_elements, 16u);
}

TEST(Instrument, ArithCountsFlops) {
  Instrument ins;
  ins.arith(16, 10, 32);  // 10 FMAs, 32 flops each
  EXPECT_EQ(ins.events().flops, 320u);
  EXPECT_EQ(ins.events().vpu_instructions, 10u);
  EXPECT_EQ(ins.events().mem_refs, 0u);
}

TEST(Instrument, XeonMachineUsesLargerLlc) {
  // Working set of 1MB: thrashes the Phi's 512KB L2 but fits Xeon's LLC.
  const std::size_t floats = 1 << 18;
  AlignedBuffer<float> buf(floats);
  auto run = [&buf, floats](Machine m) {
    Instrument ins(m);
    for (int pass = 0; pass < 3; ++pass) {
      for (std::size_t i = 0; i < floats; i += 16) {
        ins.load(buf.data() + i, 16);
      }
    }
    return ins.events().l2_misses;
  };
  EXPECT_GT(run(Machine::kPhi5110P), 2 * run(Machine::kXeonE5_2670));
}

TEST(Instrument, ResetClearsEverything) {
  AlignedBuffer<float> buf(16);
  Instrument ins;
  ins.load(buf.data(), 16);
  ins.arith(16, 1, 32);
  ins.reset();
  const KernelEvents e = ins.events();
  EXPECT_EQ(e.mem_refs, 0u);
  EXPECT_EQ(e.flops, 0u);
  EXPECT_EQ(e.vpu_instructions, 0u);
}

TEST(Instrument, FlushCacheForcesRemisses) {
  AlignedBuffer<float> buf(16);
  Instrument ins;
  ins.load(buf.data(), 16);
  ins.flush_cache();
  ins.load(buf.data(), 16);
  EXPECT_EQ(ins.events().l2_misses, 2u);
}

TEST(KernelEvents, ArithmeticOperators) {
  KernelEvents a{.flops = 10, .vpu_instructions = 2, .vpu_elements = 32,
                 .mem_refs = 5, .l1_misses = 3, .l2_misses = 1};
  KernelEvents b = a;
  b += a;
  EXPECT_EQ(b.flops, 20u);
  EXPECT_EQ(b.mem_refs, 10u);
  const KernelEvents d = b - a;
  EXPECT_EQ(d.flops, a.flops);
  EXPECT_EQ(d.l2_misses, a.l2_misses);
}

}  // namespace
}  // namespace fcma::memsim
