// Tests for the t statistics and the seed-based connectivity comparator —
// including the paper's central motivating claim: the seed approach is
// biased toward its seed while FCMA is not.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/scoreboard.hpp"
#include "fcma/seed_analysis.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "stats/significance.hpp"

namespace fcma {
namespace {

// ---------------------------------------------------------------------------
// Student-t machinery
// ---------------------------------------------------------------------------

TEST(StudentT, IncompleteBetaKnownValues) {
  // I_x(1,1) = x; I_x(2,2) = x^2 (3 - 2x).
  EXPECT_NEAR(stats::incomplete_beta(1, 1, 0.3), 0.3, 1e-10);
  EXPECT_NEAR(stats::incomplete_beta(2, 2, 0.5), 0.5, 1e-10);
  EXPECT_NEAR(stats::incomplete_beta(2, 2, 0.25), 0.25 * 0.25 * 2.5, 1e-10);
  EXPECT_DOUBLE_EQ(stats::incomplete_beta(3, 4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::incomplete_beta(3, 4, 1.0), 1.0);
}

TEST(StudentT, IncompleteBetaSymmetry) {
  for (double x : {0.1, 0.35, 0.6, 0.9}) {
    EXPECT_NEAR(stats::incomplete_beta(2.5, 4.0, x),
                1.0 - stats::incomplete_beta(4.0, 2.5, 1.0 - x), 1e-10);
  }
}

TEST(StudentT, SurvivalKnownQuantiles) {
  // Classic t-table values: P(T >= t) one-sided.
  EXPECT_NEAR(stats::student_t_sf(0.0, 7), 0.5, 1e-12);
  EXPECT_NEAR(stats::student_t_sf(2.086, 20), 0.025, 5e-4);
  EXPECT_NEAR(stats::student_t_sf(1.812, 10), 0.05, 5e-4);
  EXPECT_NEAR(stats::student_t_sf(6.314, 1), 0.05, 5e-4);
  // Negative t mirrors.
  EXPECT_NEAR(stats::student_t_sf(-2.086, 20), 0.975, 5e-4);
}

TEST(StudentT, ApproachesNormalForLargeDf) {
  // z = 1.96 -> 0.025 one-sided in the normal limit.
  EXPECT_NEAR(stats::student_t_sf(1.96, 100000), 0.025, 5e-4);
}

TEST(StudentT, OneSampleTestDetectsShift) {
  Rng rng(3);
  std::vector<double> x(40);
  for (auto& v : x) v = 0.5 + rng.gaussian();
  const auto shifted = stats::one_sample_t_test(x);
  EXPECT_LT(shifted.pvalue, 0.05);
  for (auto& v : x) v -= 0.5;  // recentre -> null
  const auto null = stats::one_sample_t_test(x);
  EXPECT_GT(null.pvalue, 0.05);
}

TEST(StudentT, PairedTestCancelsSharedVariance) {
  // Strongly correlated pairs with a small systematic offset: the paired
  // test should detect it where the unpaired means are noisy.
  Rng rng(11);
  std::vector<double> a(30);
  std::vector<double> b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    const double shared = 5.0 * rng.gaussian();
    a[i] = shared + 0.2 + 0.1 * rng.gaussian();
    b[i] = shared + 0.1 * rng.gaussian();
  }
  const auto r = stats::paired_t_test(a, b);
  EXPECT_LT(r.pvalue, 0.01);
  EXPECT_GT(r.t, 0.0);
}

TEST(StudentT, DegenerateInputsHandled) {
  const std::vector<double> constant{2.0, 2.0, 2.0};
  const auto same = stats::one_sample_t_test(constant, 2.0);
  EXPECT_DOUBLE_EQ(same.pvalue, 1.0);
  const auto off = stats::one_sample_t_test(constant, 1.0);
  EXPECT_DOUBLE_EQ(off.pvalue, 0.0);
  EXPECT_THROW(stats::one_sample_t_test(std::vector<double>{1.0}), Error);
}

// ---------------------------------------------------------------------------
// Seed analysis vs FCMA
// ---------------------------------------------------------------------------

struct SeedFixture {
  fmri::Dataset dataset;
  fmri::NormalizedEpochs epochs;
  std::set<std::uint32_t> truth;

  SeedFixture() : dataset(make()), epochs(fmri::normalize_epochs(dataset)) {
    truth.insert(dataset.informative_voxels().begin(),
                 dataset.informative_voxels().end());
  }
  static fmri::Dataset make() {
    fmri::DatasetSpec spec = fmri::tiny_spec();
    spec.voxels = 128;
    spec.informative = 20;
    spec.subjects = 6;
    spec.epochs_total = 72;
    return fmri::generate_synthetic(spec);
  }
  [[nodiscard]] std::uint32_t noise_voxel() const {
    std::uint32_t v = 0;
    while (truth.count(v)) ++v;
    return v;
  }
};

TEST(SeedAnalysis, InformativeSeedLightsUpItsPartners) {
  const SeedFixture fx;
  // Planted groups alternate through the sorted informative list: partners
  // of informative[0] (group A) are the odd-indexed informative voxels.
  const auto& inf = fx.dataset.informative_voxels();
  const std::uint32_t seed = inf[0];
  const core::SeedContrast contrast =
      core::seed_contrast_map(fx.epochs, seed);
  const auto hits = core::seed_significant_voxels(contrast, 0.05);
  EXPECT_GE(hits.size(), 5u);
  // Everything significant should be informative (group B partners whose
  // coupling to the seed flips between conditions).
  std::size_t informative_hits = 0;
  for (const auto v : hits) informative_hits += fx.truth.count(v);
  EXPECT_GE(static_cast<double>(informative_hits) /
                static_cast<double>(hits.size()),
            0.8);
  // And the contrast is positive: coupled under label 0, so delta
  // (label1 - label0) is negative for partners.
  for (const auto v : hits) {
    if (fx.truth.count(v)) EXPECT_LT(contrast.delta_z[v], 0.0);
  }
}

TEST(SeedAnalysis, NoiseSeedSeesNothing) {
  const SeedFixture fx;
  const core::SeedContrast contrast =
      core::seed_contrast_map(fx.epochs, fx.noise_voxel());
  const auto hits = core::seed_significant_voxels(contrast, 0.05);
  // The paper's point: with the "wrong" seed, the planted interactions are
  // invisible to the classical analysis.
  EXPECT_LE(hits.size(), 2u);
}

TEST(SeedAnalysis, FcmaFindsWhatTheWrongSeedMisses) {
  const SeedFixture fx;
  // Seed analysis from a noise seed: blind (previous test).  FCMA over the
  // same data: recovers the planted set without any seed choice.
  core::Scoreboard board(fx.dataset.voxels());
  board.add(core::run_task(
      fx.epochs,
      core::VoxelTask{0, static_cast<std::uint32_t>(fx.dataset.voxels())},
      core::PipelineConfig::optimized()));
  EXPECT_GT(board.recovery_rate(fx.dataset.informative_voxels()), 0.8);
}

TEST(SeedAnalysis, SeedEntryIsNeutral) {
  const SeedFixture fx;
  const std::uint32_t seed = 5;
  const core::SeedContrast c = core::seed_contrast_map(fx.epochs, seed);
  EXPECT_DOUBLE_EQ(c.delta_z[seed], 0.0);
  EXPECT_DOUBLE_EQ(c.pvalue[seed], 1.0);
  EXPECT_EQ(c.delta_z.size(), fx.dataset.voxels());
}

TEST(SeedAnalysis, RejectsBadSeed) {
  const SeedFixture fx;
  EXPECT_THROW(core::seed_contrast_map(
                   fx.epochs,
                   static_cast<std::uint32_t>(fx.dataset.voxels())),
               Error);
}

}  // namespace
}  // namespace fcma
