// End-to-end integration tests: the full FCMA system — generator, pipeline,
// cluster distribution, scoreboard, final classifier — on one synthetic
// study, checking the cross-cutting invariants no single module test can.
#include <gtest/gtest.h>

#include <set>

#include "cluster/driver.hpp"
#include "fcma/offline.hpp"
#include "fcma/online.hpp"
#include "fmri/io.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"

#include <unistd.h>

#include <filesystem>

namespace fcma {
namespace {

fmri::DatasetSpec study_spec() {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 96;
  spec.informative = 16;
  spec.subjects = 4;
  spec.epochs_total = 48;
  return spec;
}

TEST(Integration, BaselineAndOptimizedSelectTheSameTopVoxels) {
  // The whole point of the optimization work: identical science, faster.
  const fmri::Dataset d = fmri::generate_synthetic(study_spec());
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const core::VoxelTask all{0, static_cast<std::uint32_t>(d.voxels())};

  core::Scoreboard base_board(d.voxels());
  base_board.add(core::run_task(ne, all, core::PipelineConfig::baseline()));
  core::Scoreboard opt_board(d.voxels());
  opt_board.add(core::run_task(ne, all, core::PipelineConfig::optimized()));

  const auto base_top = base_board.top_voxels(16);
  const auto opt_top = opt_board.top_voxels(16);
  std::set<std::uint32_t> base_set(base_top.begin(), base_top.end());
  std::size_t overlap = 0;
  for (const auto v : opt_top) overlap += base_set.count(v);
  EXPECT_GE(overlap, 13u);  // allow tie-break noise at the selection edge
}

TEST(Integration, DistributedOfflineStudyRecoversPlantedRois) {
  const fmri::Dataset d = fmri::generate_synthetic(study_spec());
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  cluster::DriverOptions opts;
  opts.workers = 4;
  opts.voxels_per_task = 16;
  const core::Scoreboard board =
      cluster::run_cluster_analysis(ne, d.voxels(), opts);
  EXPECT_GT(board.recovery_rate(d.informative_voxels()), 0.7);
}

TEST(Integration, SavedAndReloadedDatasetGivesIdenticalAnalysis) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fcma_int_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const fmri::Dataset d = fmri::generate_synthetic(study_spec());
  fmri::save_dataset((dir / "study").string(), d);
  const fmri::Dataset loaded =
      fmri::load_dataset((dir / "study").string(), d.name());

  const core::VoxelTask task{0, 32};
  const auto r1 = core::run_task(fmri::normalize_epochs(d), task,
                                 core::PipelineConfig::optimized());
  const auto r2 = core::run_task(fmri::normalize_epochs(loaded), task,
                                 core::PipelineConfig::optimized());
  ASSERT_EQ(r1.accuracy.size(), r2.accuracy.size());
  for (std::size_t v = 0; v < r1.accuracy.size(); ++v) {
    EXPECT_EQ(r1.accuracy[v], r2.accuracy[v]);
  }
  std::filesystem::remove_all(dir);
}

TEST(Integration, OfflineThenOnlineAgreeOnInformativeVoxels) {
  // The online (single-subject) selection should substantially overlap the
  // offline (multi-subject) selection — both are estimating the same
  // planted structure.  Online selection sees only one subject's epochs,
  // so give each subject a full session's worth.
  fmri::DatasetSpec spec = study_spec();
  spec.subjects = 3;
  spec.epochs_total = 108;  // 36 epochs per subject
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  core::OfflineOptions off;
  off.top_k = 16;
  const core::OfflineResult offline = core::run_offline_analysis(d, off);
  core::OnlineOptions on;
  on.top_k = 16;
  on.k_folds = 4;
  const core::OnlineResult online = core::run_online_selection(d, 0, on);
  const std::set<std::uint32_t> offline_set(offline.folds[0].selected.begin(),
                                            offline.folds[0].selected.end());
  std::size_t overlap = 0;
  for (const auto v : online.selected) overlap += offline_set.count(v);
  EXPECT_GE(overlap, 8u);
}

TEST(Integration, AccuraciesAreValidProbabilities) {
  const fmri::Dataset d = fmri::generate_synthetic(study_spec());
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const core::VoxelTask all{0, static_cast<std::uint32_t>(d.voxels())};
  const auto r = core::run_task(ne, all, core::PipelineConfig::optimized());
  for (const double a : r.accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Integration, PipelineIsDeterministicAcrossRuns) {
  const fmri::Dataset d = fmri::generate_synthetic(study_spec());
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const core::VoxelTask task{10, 20};
  const auto r1 = core::run_task(ne, task, core::PipelineConfig::optimized());
  const auto r2 = core::run_task(ne, task, core::PipelineConfig::optimized());
  for (std::size_t v = 0; v < r1.accuracy.size(); ++v) {
    EXPECT_EQ(r1.accuracy[v], r2.accuracy[v]);
  }
}

}  // namespace
}  // namespace fcma
