// Property sweeps for the measurement substrate: cache behaviour across
// geometries, instrument/arch-model consistency, and the invariants the
// event-count tables rely on.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "archsim/arch_model.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "memsim/cache.hpp"
#include "memsim/instrument.hpp"

namespace fcma::memsim {
namespace {

// (l1_kb, l1_ways, l2_kb, l2_ways)
using Geometry = std::tuple<int, int, int, int>;

CacheSim sim_for(const Geometry& g) {
  const auto [l1_kb, l1_ways, l2_kb, l2_ways] = g;
  return CacheSim(
      CacheConfig{static_cast<std::size_t>(l1_kb) * 1024,
                  static_cast<std::size_t>(l1_ways), 64},
      CacheConfig{static_cast<std::size_t>(l2_kb) * 1024,
                  static_cast<std::size_t>(l2_ways), 64});
}

class CacheGeometries : public ::testing::TestWithParam<Geometry> {};

// Property: a working set that fits L2 incurs only compulsory L2 misses no
// matter how many passes run.
TEST_P(CacheGeometries, L2ResidentSetHasOnlyCompulsoryMisses) {
  CacheSim sim = sim_for(GetParam());
  const auto [l1_kb, l1_ways, l2_kb, l2_ways] = GetParam();
  (void)l1_kb;
  (void)l1_ways;
  (void)l2_ways;
  // Half the L2 capacity, touched five times.
  const std::size_t lines = static_cast<std::size_t>(l2_kb) * 1024 / 64 / 2;
  AlignedBuffer<float> buf(lines * 16);
  for (int pass = 0; pass < 5; ++pass) {
    for (std::size_t i = 0; i < lines; ++i) {
      sim.access(buf.data() + i * 16, 4);
    }
  }
  EXPECT_EQ(sim.stats().l2_misses, lines);
  EXPECT_EQ(sim.stats().refs, 5 * lines);
}

// Property: a working set at 4x L2 capacity misses on (nearly) every line
// of every pass under LRU with a sequential sweep.
TEST_P(CacheGeometries, StreamingSetThrashes) {
  CacheSim sim = sim_for(GetParam());
  const auto [l1_kb, l1_ways, l2_kb, l2_ways] = GetParam();
  (void)l1_kb;
  (void)l1_ways;
  (void)l2_ways;
  const std::size_t lines = static_cast<std::size_t>(l2_kb) * 1024 / 64 * 4;
  AlignedBuffer<float> buf(lines * 16);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < lines; ++i) {
      sim.access(buf.data() + i * 16, 4);
    }
  }
  EXPECT_EQ(sim.stats().l2_misses, 3 * lines);
}

// Property: misses are monotone in working-set size for a fixed pass count.
TEST_P(CacheGeometries, MissesMonotoneInWorkingSet) {
  const auto g = GetParam();
  std::uint64_t prev = 0;
  for (const std::size_t kb : {16u, 64u, 256u, 1024u, 4096u}) {
    CacheSim sim = sim_for(g);
    const std::size_t lines = kb * 1024 / 64;
    AlignedBuffer<float> buf(lines * 16);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < lines; ++i) {
        sim.access(buf.data() + i * 16, 4);
      }
    }
    EXPECT_GE(sim.stats().l2_misses, prev) << kb << "KB";
    prev = sim.stats().l2_misses;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometries,
    ::testing::Values(Geometry{32, 8, 512, 8},     // the Phi model
                      Geometry{32, 8, 2560, 20},   // the Xeon model
                      Geometry{16, 4, 256, 8},     // small
                      Geometry{64, 16, 1024, 16},  // wide associativity
                      Geometry{8, 1, 128, 2}));    // direct-mapped-ish

// ---------------------------------------------------------------------------
// Instrument / ArchModel consistency
// ---------------------------------------------------------------------------

TEST(ModelConsistency, MoreEventsNeverModelFaster) {
  const archsim::ArchModel phi = archsim::Phi5110P();
  KernelEvents base{.flops = 1000000,
                    .vpu_instructions = 100000,
                    .vpu_elements = 1600000,
                    .mem_refs = 50000,
                    .l1_misses = 5000,
                    .l2_misses = 1000};
  for (auto bump : {&KernelEvents::vpu_instructions,
                    &KernelEvents::l2_misses}) {
    KernelEvents more = base;
    more.*bump *= 10;
    EXPECT_GE(phi.modeled_seconds(more), phi.modeled_seconds(base));
  }
}

TEST(ModelConsistency, ModeledTimeScalesLinearlyWhenComputeBound) {
  const archsim::ArchModel phi = archsim::Phi5110P();
  KernelEvents e{.flops = 1ull << 30,
                 .vpu_instructions = 1ull << 26,
                 .vpu_elements = 1ull << 30,
                 .mem_refs = 1000,
                 .l1_misses = 10,
                 .l2_misses = 1};
  KernelEvents doubled = e;
  doubled.flops *= 2;
  doubled.vpu_instructions *= 2;
  doubled.vpu_elements *= 2;
  EXPECT_NEAR(phi.modeled_seconds(doubled), 2.0 * phi.modeled_seconds(e),
              0.01 * phi.modeled_seconds(doubled));
  // And GFLOPS is scale-invariant under that doubling.
  EXPECT_NEAR(phi.modeled_gflops(doubled), phi.modeled_gflops(e),
              0.01 * phi.modeled_gflops(e));
}

TEST(ModelConsistency, IntensityIndependentOfMachineGeometry) {
  // The same instrumented narration must report the same vector intensity
  // on any cache geometry — intensity is an instruction-stream property.
  AlignedBuffer<float> buf(4096);
  auto narrate = [&buf](Machine m) {
    Instrument ins(m);
    for (std::size_t i = 0; i + 16 <= 4096; i += 16) {
      ins.load(buf.data() + i, 16);
      ins.arith(16, 2, 32);
    }
    return ins.events().vector_intensity();
  };
  EXPECT_DOUBLE_EQ(narrate(Machine::kPhi5110P),
                   narrate(Machine::kXeonE5_2670));
}

TEST(ModelConsistency, DeterministicAcrossRuns) {
  // Same narration -> bit-identical event counts (the property that makes
  // the reproduction tables exactly rerunnable).
  Rng rng(1234);
  std::vector<std::uint32_t> offsets(2000);
  for (auto& o : offsets) {
    o = static_cast<std::uint32_t>(rng.uniform_index(1 << 16));
  }
  AlignedBuffer<float> buf(1 << 16);
  auto run = [&] {
    Instrument ins;
    for (const auto o : offsets) {
      ins.load(buf.data() + (o % ((1 << 16) - 16)), 16);
    }
    const KernelEvents e = ins.events();
    return std::make_tuple(e.mem_refs, e.l1_misses, e.l2_misses);
  };
  EXPECT_EQ(run(), run());
}

TEST(ModelConsistency, ThreadScalingSaturatesAtMachineSize) {
  const archsim::ArchModel phi = archsim::Phi5110P();
  const KernelEvents e{.flops = 1ull << 30,
                       .vpu_instructions = 1ull << 26,
                       .vpu_elements = 1ull << 30,
                       .mem_refs = 1ull << 20,
                       .l1_misses = 1ull << 16,
                       .l2_misses = 1ull << 14};
  EXPECT_DOUBLE_EQ(phi.modeled_seconds(e, 240),
                   phi.modeled_seconds(e, 10000));
  double prev = 1e18;
  for (const int threads : {30, 60, 120, 240}) {
    const double t = phi.modeled_seconds(e, threads);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace fcma::memsim
