// Property-based sweeps: pipeline invariants that must hold across dataset
// shapes, seeds, and configurations — not just the fixtures the unit tests
// pin down.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "fcma/corr_norm.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/scoreboard.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "stats/stats.hpp"

namespace fcma {
namespace {

// (voxels, subjects, epochs_per_subject, seed)
using Shape = std::tuple<int, int, int, int>;

fmri::Dataset dataset_for(const Shape& shape) {
  const auto [voxels, subjects, eps, seed] = shape;
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = static_cast<std::size_t>(voxels);
  spec.informative = std::max<std::size_t>(4, spec.voxels / 8);
  spec.subjects = subjects;
  spec.epochs_total = static_cast<std::size_t>(subjects * eps);
  spec.seed = static_cast<std::uint64_t>(seed);
  return fmri::generate_synthetic(spec);
}

class PipelineShapes : public ::testing::TestWithParam<Shape> {};

// Invariant 1: the normalized correlation buffer is label-blind in its
// population statistics — every (voxel, subject, column) tube has mean 0
// and unit variance, regardless of shape.
TEST_P(PipelineShapes, NormalizationMomentsHold) {
  const fmri::Dataset d = dataset_for(GetParam());
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const std::size_t m = ne.per_epoch.size();
  const std::size_t eps = d.epochs_per_subject();
  const core::VoxelTask task{0, 4};
  linalg::Matrix buf = core::make_corr_buffer(task, m, d.voxels());
  core::optimized_correlate_normalize(ne, task, buf.view(),
                                      core::NormMode::kMerged);
  for (std::size_t v = 0; v < task.count; ++v) {
    for (std::int32_t s = 0; s < d.subjects(); ++s) {
      const std::size_t col = (7 * (v + 1)) % d.voxels();
      double sum = 0.0;
      double sq = 0.0;
      for (std::size_t e = 0; e < eps; ++e) {
        const double z = buf(v * m + static_cast<std::size_t>(s) * eps + e,
                             col);
        sum += z;
        sq += z * z;
      }
      EXPECT_NEAR(sum / static_cast<double>(eps), 0.0, 1e-3);
      EXPECT_NEAR(sq / static_cast<double>(eps), 1.0, 2e-2);
    }
  }
}

// Invariant 2: baseline and optimized pipelines agree on the voxel ranking
// (the optimization must never change the science).
TEST_P(PipelineShapes, ImplementationsAgreeOnTopVoxels) {
  const fmri::Dataset d = dataset_for(GetParam());
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const core::VoxelTask all{0, static_cast<std::uint32_t>(d.voxels())};
  core::Scoreboard base(d.voxels());
  base.add(core::run_task(ne, all, core::PipelineConfig::baseline()));
  core::Scoreboard opt(d.voxels());
  opt.add(core::run_task(ne, all, core::PipelineConfig::optimized()));
  const std::size_t k = d.informative_voxels().size();
  const auto bt = base.top_voxels(k);
  const auto ot = opt.top_voxels(k);
  std::size_t overlap = 0;
  for (const auto v : ot) {
    overlap += std::binary_search(bt.begin(), bt.end(), v);
  }
  EXPECT_GE(static_cast<double>(overlap) / static_cast<double>(k), 0.75);
}

// Invariant 3: accuracies are valid frequencies with the right granularity
// (multiples of 1/M over M cross-validated epochs).
TEST_P(PipelineShapes, AccuraciesAreEpochFractions) {
  const fmri::Dataset d = dataset_for(GetParam());
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const core::VoxelTask task{0, 8};
  const auto r = core::run_task(ne, task, core::PipelineConfig::optimized());
  const auto m = static_cast<double>(ne.meta.size());
  for (const double a : r.accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
    const double scaled = a * m;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-6);
  }
}

// Invariant 4: FCMA's detection is seed-free and deterministic — recovery
// of the planted voxels holds across seeds and shapes.
TEST_P(PipelineShapes, PlantedStructureIsRecovered) {
  const fmri::Dataset d = dataset_for(GetParam());
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  core::Scoreboard board(d.voxels());
  board.add(core::run_task(
      ne, core::VoxelTask{0, static_cast<std::uint32_t>(d.voxels())},
      core::PipelineConfig::optimized()));
  // Smallest shapes have only ~32 CV samples, so the power floor is
  // modest; chance-level recovery would be informative/voxels ~ 12%.
  EXPECT_GE(board.recovery_rate(d.informative_voxels()), 0.55);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineShapes,
    ::testing::Values(Shape{64, 4, 8, 1},    // minimal
                      Shape{96, 3, 12, 2},   // few subjects, longer runs
                      Shape{80, 8, 6, 3},    // many subjects, short runs
                      Shape{128, 5, 8, 4},   // wider brain
                      Shape{64, 4, 8, 99})); // different seed

// ---------------------------------------------------------------------------
// Epoch-length sweep for the eq.2 reduction
// ---------------------------------------------------------------------------

class EpochLengths : public ::testing::TestWithParam<int> {};

TEST_P(EpochLengths, ReductionMatchesPearsonAtAnyLength) {
  const auto len = static_cast<std::size_t>(GetParam());
  Rng rng(500 + len);
  std::vector<float> x(len);
  std::vector<float> y(len);
  for (std::size_t i = 0; i < len; ++i) {
    x[i] = rng.uniform(-1.0f, 1.0f);
    y[i] = 0.4f * x[i] + rng.uniform(-1.0f, 1.0f);
  }
  const double want = stats::pearson(x, y);
  stats::normalize_epoch(x);
  stats::normalize_epoch(y);
  double dot = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    dot += static_cast<double>(x[i]) * y[i];
  }
  EXPECT_NEAR(dot, want, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Lengths, EpochLengths,
                         ::testing::Values(3, 5, 8, 12, 16, 20, 64, 100));

}  // namespace
}  // namespace fcma
