// Tests for the fMRI substrate: dataset model, synthetic generator with
// planted connectivity, presets, and serialization.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "common/error.hpp"
#include "fmri/dataset.hpp"
#include "fmri/io.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "stats/stats.hpp"

namespace fcma::fmri {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("fcma_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

TEST(Dataset, EpochsPerSubjectOfEmptyDatasetIsZero) {
  // Regression: used to divide by subjects_ == 0.
  const Dataset d;
  EXPECT_EQ(d.epochs_per_subject(), 0u);
}

TEST(Dataset, ValidateRejectsEmptyDataset) {
  const Dataset d;
  EXPECT_THROW(d.validate(), Error);
}

TEST(Presets, FaceSceneMatchesTable2) {
  const DatasetSpec s = face_scene_spec();
  EXPECT_EQ(s.voxels, 34470u);
  EXPECT_EQ(s.subjects, 18);
  EXPECT_EQ(s.epochs_total, 216u);
  EXPECT_EQ(s.epoch_length, 12u);
  EXPECT_EQ(s.epochs_per_subject(), 12u);
}

TEST(Presets, AttentionMatchesTable2) {
  const DatasetSpec s = attention_spec();
  EXPECT_EQ(s.voxels, 25260u);
  EXPECT_EQ(s.subjects, 30);
  EXPECT_EQ(s.epochs_total, 540u);
  EXPECT_EQ(s.epoch_length, 12u);
  EXPECT_EQ(s.epochs_per_subject(), 18u);
}

TEST(Presets, ScaledVoxelsPreservesProtocol) {
  const DatasetSpec s = face_scene_spec().scaled_voxels(0.1);
  EXPECT_NEAR(static_cast<double>(s.voxels), 3447.0, 1.0);
  EXPECT_EQ(s.subjects, 18);
  EXPECT_EQ(s.epochs_total, 216u);
  EXPECT_GT(s.informative, 0u);
  EXPECT_LE(s.informative, s.voxels / 4);
}

TEST(Presets, ScaledSubjectsAdjustsEpochs) {
  const DatasetSpec s = attention_spec().scaled_subjects(5);
  EXPECT_EQ(s.subjects, 5);
  EXPECT_EQ(s.epochs_total, 5u * 18u);
}

TEST(Presets, BadScaleThrows) {
  EXPECT_THROW(face_scene_spec().scaled_voxels(0.0), Error);
  EXPECT_THROW(face_scene_spec().scaled_voxels(2.0), Error);
  EXPECT_THROW(face_scene_spec().scaled_subjects(0), Error);
}

TEST(Synthetic, DimensionsMatchSpec) {
  const DatasetSpec spec = tiny_spec();
  const Dataset d = generate_synthetic(spec);
  EXPECT_EQ(d.voxels(), spec.voxels);
  EXPECT_EQ(d.subjects(), spec.subjects);
  EXPECT_EQ(d.epochs().size(), spec.epochs_total);
  EXPECT_EQ(d.timepoints(), spec.epochs_total * spec.epoch_length);
  EXPECT_EQ(d.informative_voxels().size(), spec.informative);
}

TEST(Synthetic, DeterministicForSameSeed) {
  const Dataset a = generate_synthetic(tiny_spec());
  const Dataset b = generate_synthetic(tiny_spec());
  ASSERT_EQ(a.data().rows(), b.data().rows());
  for (std::size_t i = 0; i < a.voxels(); ++i) {
    for (std::size_t t = 0; t < a.timepoints(); ++t) {
      ASSERT_EQ(a.data()(i, t), b.data()(i, t));
    }
  }
  EXPECT_EQ(a.informative_voxels(), b.informative_voxels());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  DatasetSpec s2 = tiny_spec();
  s2.seed = 999;
  const Dataset a = generate_synthetic(tiny_spec());
  const Dataset b = generate_synthetic(s2);
  int equal = 0;
  for (std::size_t t = 0; t < a.timepoints(); ++t) {
    equal += (a.data()(0, t) == b.data()(0, t));
  }
  EXPECT_LT(equal, 3);
}

TEST(Synthetic, LabelsAlternateAndBalance) {
  const Dataset d = generate_synthetic(tiny_spec());
  std::size_t label1 = 0;
  for (const Epoch& e : d.epochs()) label1 += (e.label == 1);
  EXPECT_EQ(label1 * 2, d.epochs().size());
}

TEST(Synthetic, EpochsAreSubjectMajorAndContiguous) {
  const Dataset d = generate_synthetic(tiny_spec());
  std::uint32_t cursor = 0;
  std::int32_t max_subject = -1;
  for (const Epoch& e : d.epochs()) {
    EXPECT_EQ(e.start, cursor);
    cursor += e.length;
    EXPECT_GE(e.subject, max_subject);  // non-decreasing subject order
    max_subject = std::max(max_subject, e.subject);
  }
}

// The planted effect: informative voxel pairs from opposite groups are
// strongly correlated in label-0 epochs and weakly in label-1 epochs, while
// noise pairs are weak in both.  This is the ground truth FCMA must detect.
TEST(Synthetic, PlantedConnectivityDiffersByCondition) {
  DatasetSpec spec = tiny_spec();
  spec.voxels = 64;
  spec.informative = 16;
  const Dataset d = generate_synthetic(spec);
  const auto& inf = d.informative_voxels();
  // Groups alternate through the sorted informative list.
  const std::uint32_t va = inf[0];
  const std::uint32_t vb = inf[1];
  double r_label0 = 0.0;
  double r_label1 = 0.0;
  int n0 = 0;
  int n1 = 0;
  for (const Epoch& e : d.epochs()) {
    std::vector<float> x(d.data().row(va) + e.start,
                         d.data().row(va) + e.start + e.length);
    std::vector<float> y(d.data().row(vb) + e.start,
                         d.data().row(vb) + e.start + e.length);
    const double r = stats::pearson(x, y);
    if (e.label == 0) {
      r_label0 += r;
      ++n0;
    } else {
      r_label1 += r;
      ++n1;
    }
  }
  r_label0 /= n0;
  r_label1 /= n1;
  EXPECT_GT(r_label0, 0.3);            // coupled under label 0
  EXPECT_LT(r_label1, r_label0 - 0.2);  // decoupled under label 1
}

TEST(Synthetic, NoiseVoxelsUncorrelatedInBothConditions) {
  DatasetSpec spec = tiny_spec();
  const Dataset d = generate_synthetic(spec);
  std::set<std::uint32_t> inf(d.informative_voxels().begin(),
                              d.informative_voxels().end());
  // Find two non-informative voxels.
  std::vector<std::uint32_t> noise;
  for (std::uint32_t v = 0; v < d.voxels() && noise.size() < 2; ++v) {
    if (!inf.count(v)) noise.push_back(v);
  }
  ASSERT_EQ(noise.size(), 2u);
  double sum = 0.0;
  for (const Epoch& e : d.epochs()) {
    std::vector<float> x(d.data().row(noise[0]) + e.start,
                         d.data().row(noise[0]) + e.start + e.length);
    std::vector<float> y(d.data().row(noise[1]) + e.start,
                         d.data().row(noise[1]) + e.start + e.length);
    sum += stats::pearson(x, y);
  }
  EXPECT_LT(std::abs(sum / static_cast<double>(d.epochs().size())), 0.25);
}

TEST(Synthetic, InvalidSpecsThrow) {
  DatasetSpec s = tiny_spec();
  s.informative = s.voxels;  // too many
  EXPECT_THROW(generate_synthetic(s), Error);
  s = tiny_spec();
  s.epochs_total = 33;  // not divisible by subjects
  EXPECT_THROW(generate_synthetic(s), Error);
}

TEST(Dataset, ValidateRejectsBadEpochs) {
  linalg::Matrix data(8, 24);
  data.fill(0.0f);
  std::vector<Epoch> epochs{{0, 0, 0, 12}, {0, 1, 12, 12}};
  EXPECT_NO_THROW(Dataset("ok", std::move(data), epochs, 1));

  linalg::Matrix data2(8, 24);
  data2.fill(0.0f);
  std::vector<Epoch> overrun{{0, 0, 0, 12}, {0, 1, 20, 12}};
  EXPECT_THROW(Dataset("bad", std::move(data2), overrun, 1), Error);

  linalg::Matrix data3(8, 24);
  data3.fill(0.0f);
  std::vector<Epoch> bad_label{{0, 2, 0, 12}, {0, 1, 12, 12}};
  EXPECT_THROW(Dataset("bad", std::move(data3), bad_label, 1), Error);
}

TEST(Dataset, EpochsOfSubjectFilters) {
  const Dataset d = generate_synthetic(tiny_spec());
  const auto mine = d.epochs_of_subject(2);
  EXPECT_EQ(mine.size(), d.epochs_per_subject());
  for (const std::size_t i : mine) {
    EXPECT_EQ(d.epochs()[i].subject, 2);
  }
}

TEST(NormalizeEpochs, RowsAreEq2Normalized) {
  const Dataset d = generate_synthetic(tiny_spec());
  const NormalizedEpochs ne = normalize_epochs(d);
  ASSERT_EQ(ne.per_epoch.size(), d.epochs().size());
  const linalg::Matrix& e0 = ne.per_epoch[0];
  for (std::size_t v = 0; v < 5; ++v) {
    double norm = 0.0;
    double sum = 0.0;
    for (std::size_t t = 0; t < e0.cols(); ++t) {
      norm += static_cast<double>(e0(v, t)) * e0(v, t);
      sum += e0(v, t);
    }
    EXPECT_NEAR(norm, 1.0, 1e-4);
    EXPECT_NEAR(sum, 0.0, 1e-4);
  }
}

TEST(NormalizeEpochs, SubsetSelectsRequestedEpochs) {
  const Dataset d = generate_synthetic(tiny_spec());
  const NormalizedEpochs ne = normalize_epochs(d, {0, 5, 9});
  ASSERT_EQ(ne.per_epoch.size(), 3u);
  EXPECT_EQ(ne.meta[1].start, d.epochs()[5].start);
  EXPECT_EQ(ne.meta[2].label, d.epochs()[9].label);
}

TEST(Io, ActivityRoundtrip) {
  TempDir dir;
  const Dataset d = generate_synthetic(tiny_spec());
  const std::string path = dir.file("act.fcmb");
  save_activity(path, d.data());
  const linalg::Matrix loaded = load_activity(path);
  ASSERT_EQ(loaded.rows(), d.data().rows());
  ASSERT_EQ(loaded.cols(), d.data().cols());
  for (std::size_t i = 0; i < loaded.rows(); ++i) {
    for (std::size_t j = 0; j < loaded.cols(); ++j) {
      ASSERT_EQ(loaded(i, j), d.data()(i, j));
    }
  }
}

TEST(Io, EpochsRoundtrip) {
  TempDir dir;
  const Dataset d = generate_synthetic(tiny_spec());
  const std::string path = dir.file("labels.epochs");
  save_epochs(path, d.epochs());
  const auto loaded = load_epochs(path);
  ASSERT_EQ(loaded.size(), d.epochs().size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].subject, d.epochs()[i].subject);
    EXPECT_EQ(loaded[i].label, d.epochs()[i].label);
    EXPECT_EQ(loaded[i].start, d.epochs()[i].start);
    EXPECT_EQ(loaded[i].length, d.epochs()[i].length);
  }
}

TEST(Io, DatasetRoundtrip) {
  TempDir dir;
  const Dataset d = generate_synthetic(tiny_spec());
  save_dataset(dir.file("ds"), d);
  const Dataset loaded = load_dataset(dir.file("ds"), "reloaded");
  EXPECT_EQ(loaded.voxels(), d.voxels());
  EXPECT_EQ(loaded.subjects(), d.subjects());
  EXPECT_EQ(loaded.epochs().size(), d.epochs().size());
  EXPECT_EQ(loaded.name(), "reloaded");
}

TEST(Io, RejectsMissingFile) {
  EXPECT_THROW(load_activity("/nonexistent/path.fcmb"), Error);
  EXPECT_THROW(load_epochs("/nonexistent/path.epochs"), Error);
}

TEST(Io, RejectsWrongMagic) {
  TempDir dir;
  const std::string path = dir.file("junk.fcmb");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not an FCMB file at all", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_activity(path), Error);
}

TEST(Io, RejectsTruncatedActivity) {
  TempDir dir;
  const Dataset d = generate_synthetic(tiny_spec());
  const std::string path = dir.file("trunc.fcmb");
  save_activity(path, d.data());
  std::filesystem::resize_file(path, 64);
  EXPECT_THROW(load_activity(path), Error);
}

TEST(Io, RejectsMalformedEpochLine) {
  TempDir dir;
  const std::string path = dir.file("bad.epochs");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("0 1 0 12\nnot numbers here\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_epochs(path), Error);
}

TEST(Io, EpochFileAllowsComments) {
  TempDir dir;
  const std::string path = dir.file("commented.epochs");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# header comment\n0 0 0 12 # trailing\n\n0 1 12 12\n", f);
    std::fclose(f);
  }
  const auto epochs = load_epochs(path);
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[1].label, 1);
}

}  // namespace
}  // namespace fcma::fmri
