// Unit + stress tests for the timeline profiler substrate: the log-bucketed
// latency histogram (common/histogram.hpp), the per-thread sink shards and
// Chrome-trace export (common/timeline.hpp), and the trace-layer plumbing
// that routes spans through them (flush, record_interval, exit dump).  The
// concurrent-stress cases here also run under TSan via ci_tsan.sh.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/timeline.hpp"
#include "common/trace.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::trace {
namespace {

#ifndef FCMA_TRACE_DISABLED

class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    global().reset();
    Timeline::global().reset();
    Timeline::global().set_ring_capacity(1u << 16);  // undo per-test shrinks
    set_enabled(true);
    set_timeline_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    set_timeline_enabled(false);
    global().reset();
    Timeline::global().reset();
  }
};

// --- histogram ----------------------------------------------------------

TEST(LatencyHistogram, BucketOfIsBitWidth) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 11u);
}

TEST(LatencyHistogram, QuantileOfUniformSamplesIsOrderedAndBounded) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.record_ns(static_cast<std::uint64_t>(i) * 1000);  // 1us .. 1ms
  }
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1e-6);
  EXPECT_LE(p99, 2e-3);  // within one octave of the true 0.99ms
}

TEST(LatencyHistogram, SingleSampleQuantileLandsInItsBucket) {
  LatencyHistogram h;
  h.record_seconds(0.001);  // 1e6 ns, bucket [2^19, 2^20)
  for (const double p : {0.0, 0.5, 1.0}) {
    const double q = h.quantile(p);
    EXPECT_GE(q, 0.000524288);
    EXPECT_LE(q, 0.0010485761);
  }
}

TEST(LatencyHistogram, MergeAddsCountsBucketwise) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record_ns(100);
  b.record_ns(100);
  b.record_ns(1u << 20);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket(LatencyHistogram::bucket_of(100)), 2u);
  EXPECT_EQ(a.bucket(LatencyHistogram::bucket_of(1u << 20)), 1u);
}

TEST(LatencyHistogram, EmptyQuantileIsZeroAndNegativeClampsToZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.record_seconds(-1.0);
  EXPECT_EQ(h.bucket(0), 1u);  // negative duration lands in the 0ns bucket
}

// --- registry quantiles -------------------------------------------------

TEST_F(TimelineTest, RegistryQuantilesClampToRecordedRange) {
  Registry reg;
  reg.record_span("s", 0.010);
  reg.record_span("s", 0.020);
  reg.record_span("s", 0.030);
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double q = reg.span_quantile("s", p);
    EXPECT_GE(q, 0.010);
    EXPECT_LE(q, 0.030);
  }
  EXPECT_DOUBLE_EQ(reg.span_quantile("missing", 0.5), 0.0);
}

// --- interning and sinks ------------------------------------------------

TEST_F(TimelineTest, InterningIsStablePerLabel) {
  Timeline& tl = Timeline::global();
  const std::uint32_t a = tl.intern("alpha");
  const std::uint32_t b = tl.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(tl.intern("alpha"), a);
  EXPECT_EQ(tl.intern("beta"), b);
}

TEST_F(TimelineTest, FlushMergesShardAggregatesExactlyOnce) {
  { const Span s("flush/span"); }
  { const Span s("flush/span"); }
  flush();
  EXPECT_EQ(global().span("flush/span").count, 2u);
  flush();  // shards were drained: re-flushing must not double-count
  EXPECT_EQ(global().span("flush/span").count, 2u);
}

TEST_F(TimelineTest, FullRingDropsNewestEventsAndCountsThem) {
  Timeline& tl = Timeline::global();
  tl.reset();  // detach this thread's default-capacity sink
  tl.set_ring_capacity(16);
  for (int i = 0; i < 100; ++i) {
    const Span s("ring/event");
  }
  EXPECT_EQ(tl.events_published(), 16u);
  EXPECT_EQ(tl.events_dropped(), 84u);
  // Aggregates are not subject to the ring: all 100 spans count.
  flush();
  EXPECT_EQ(global().span("ring/event").count, 100u);
}

TEST_F(TimelineTest, EventsAreOnlyCollectedWhenTimelineEnabled) {
  Timeline& tl = Timeline::global();
  set_timeline_enabled(false);
  tl.reset();  // re-register sinks under the events-off regime
  { const Span s("quiet/span"); }
  EXPECT_EQ(tl.events_published(), 0u);
  EXPECT_EQ(tl.events_dropped(), 0u);  // not even counted as drops
  flush();
  EXPECT_EQ(global().span("quiet/span").count, 1u);
}

// --- concurrent stress (runs under TSan via ci_tsan.sh) -----------------

TEST_F(TimelineTest, ConcurrentSpanAndHistogramRecordingMergesExactly) {
  constexpr std::size_t kIterations = 2000;
  {
    threading::ThreadPool pool(4);
    threading::parallel_for_each(pool, 0, kIterations, [](std::size_t i) {
      // Recorded before the Span opens: record_span() qualifies its label
      // with the thread's current span path.
      record_span("stress/manual", 1e-6 * static_cast<double>(i + 1));
      const Span span("stress/span");
    });
  }
  flush();
  const SpanStats spans = global().span("stress/span");
  const SpanStats manual = global().span("stress/manual");
  EXPECT_EQ(spans.count, kIterations);
  EXPECT_EQ(manual.count, kIterations);
  // The histogram shards merged with the stats: quantiles see all samples
  // and stay inside the exact [min, max].
  const double p95 = global().span_quantile("stress/manual", 0.95);
  EXPECT_GE(p95, manual.min_s);
  EXPECT_LE(p95, manual.max_s);
  // Worker busy intervals cover every task the scheduler executed.
  std::uint64_t busy = 0;
  for (const auto& label : global().span_labels()) {
    if (label.rfind("sched/worker", 0) == 0) busy += global().span(label).count;
  }
  EXPECT_GT(busy, 0u);
}

TEST_F(TimelineTest, ConcurrentEventPublishingIsReadableMidRun) {
  // Readers (chrome_json / events_published) run concurrently with writers;
  // under TSan this validates the acquire/release ring protocol.
  threading::ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.submit([] { const Span s("mid/span"); }));
    }
    (void)Timeline::global().events_published();
    (void)Timeline::global().chrome_json();
  }
  for (auto& f : futures) f.get();
  flush();
  EXPECT_EQ(global().span("mid/span").count, 500u);
}

// --- Chrome-trace export ------------------------------------------------

/// Extracts every `"<key>": <number>` in order of appearance.
std::vector<double> extract_numbers(const std::string& json,
                                    const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\": ";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::strtod(json.c_str() + pos, nullptr));
  }
  return out;
}

TEST_F(TimelineTest, ChromeJsonIsTimeSortedWithNamedWorkerLanes) {
  {
    threading::ThreadPool pool(2);
    threading::parallel_for_each(pool, 0, 64, [](std::size_t) {
      const Span s("chrome/span");
    });
  }
  const std::string json = Timeline::global().chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fcma.timeline.v1\""), std::string::npos);
  // One named lane per scheduler worker.
  EXPECT_NE(json.find("\"sched/worker0\""), std::string::npos);
  EXPECT_NE(json.find("\"sched/worker1\""), std::string::npos);
  // Complete events sorted by timestamp, with non-negative durations.
  const std::vector<double> ts = extract_numbers(json, "ts");
  ASSERT_GE(ts.size(), 64u);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
  for (const double d : extract_numbers(json, "dur")) EXPECT_GE(d, 0.0);
}

TEST_F(TimelineTest, WriteChromeJsonCreatesTheFile) {
  { const Span s("file/span"); }
  const std::string path = ::testing::TempDir() + "fcma_timeline_test.json";
  write_timeline_json(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_GT(n, 0u);
  EXPECT_NE(std::string(buf).find("displayTimeUnit"), std::string::npos);
}

// --- exit dump ----------------------------------------------------------

TEST_F(TimelineTest, ExitDumpWritesOnceAndIsIdempotent) {
  const std::string trace_path = ::testing::TempDir() + "fcma_dump_test.json";
  { const Span s("dump/span"); }
  set_exit_dump(trace_path, "");
  dump_now();
  std::remove(trace_path.c_str());
  dump_now();  // already fired: must not recreate the file
  std::FILE* f = std::fopen(trace_path.c_str(), "r");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
  // Re-arming makes the next dump fire again.
  set_exit_dump(trace_path, "");
  dump_now();
  f = std::fopen(trace_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(trace_path.c_str());
  // Disarm so the atexit backstop does not resurrect the temp file after
  // gtest finishes.
  set_exit_dump("", "");
  dump_now();
}

#endif  // FCMA_TRACE_DISABLED

}  // namespace
}  // namespace fcma::trace
