// Unit tests for the common utilities (RNG, aligned buffers, tables, CLI).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "common/aligned.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace fcma {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next_u64() == b.next_u64());
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.5f, 3.5f);
    EXPECT_GE(v, -2.5f);
    EXPECT_LT(v, 3.5f);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_index(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianWithParamsShiftsAndScales) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(21);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (c0.next_u64() == c1.next_u64());
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(3);
  Rng b(3);
  EXPECT_EQ(a.fork(5).next_u64(), b.fork(5).next_u64());
}

TEST(AlignedBuffer, ProvidesAlignedStorage) {
  AlignedBuffer<float> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  EXPECT_EQ(buf.size(), 1000u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<float> a(10);
  a[0] = 42.0f;
  float* p = a.data();
  AlignedBuffer<float> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42.0f);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT: inspecting moved-from state
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, ResetReallocates) {
  AlignedBuffer<double> buf(4);
  buf.reset(100);
  EXPECT_EQ(buf.size(), 100u);
  buf.reset(0);
  EXPECT_TRUE(buf.empty());
}

TEST(AlignedBuffer, SpanCoversAllElements) {
  AlignedBuffer<int> buf(5);
  for (int i = 0; i < 5; ++i) buf[i] = i;
  auto s = buf.span();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[4], 4);
}

TEST(Error, CheckThrowsWithMessage) {
  try {
    FCMA_CHECK(false, "bad thing");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad thing"), std::string::npos);
  }
}

TEST(Error, AssertThrows) {
  EXPECT_THROW(FCMA_ASSERT(1 == 2), Error);
}

TEST(Table, FormatsAlignedRows) {
  Table t("demo");
  t.header({"a", "long-header", "c"});
  t.row({"1", "2", "3"});
  t.row({"10", "20", "30"});
  const std::string s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("| 10"), std::string::npos);
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, CountInsertsSeparators) {
  EXPECT_EQ(Table::count(1234567), "1,234,567");
  EXPECT_EQ(Table::count(12), "12");
  EXPECT_EQ(Table::count(-1000), "-1,000");
  EXPECT_EQ(Table::count(0), "0");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("x");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), Error);
}

TEST(Cli, ParsesFlagsAndDefaults) {
  Cli cli("prog", "test");
  cli.add_flag("nodes", "4", "node count");
  cli.add_flag("name", "abc", "a name");
  const char* argv[] = {"prog", "--nodes", "16"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("nodes"), 16);
  EXPECT_EQ(cli.get("name"), "abc");
}

TEST(Cli, ParsesEqualsSyntax) {
  Cli cli("prog", "test");
  cli.add_flag("scale", "1.0", "scaling");
  const char* argv[] = {"prog", "--scale=0.25"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.25);
}

TEST(Cli, BooleanFlagWithoutValue) {
  Cli cli("prog", "test");
  cli.add_flag("full", "false", "run at paper dims");
  const char* argv[] = {"prog", "--full"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("full"));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("prog", "test");
  cli.add_flag("x", "1", "x");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(double(i));
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds() * 1000.0 * 0.99);
}

TEST(ScopedAccumulator, AddsToSink) {
  double total = 0.0;
  {
    ScopedAccumulator acc(total);
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_GE(total, 0.0);
}

}  // namespace
}  // namespace fcma
