// Tests for the streaming closed-loop analyzer: TR-by-TR ingestion, epoch
// bookkeeping, online training, and feedback classification consistency
// with the batch pipeline.
#include <gtest/gtest.h>

#include "fcma/streaming.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::core {
namespace {

// A single-subject session to stream: big enough for the online protocol.
fmri::Dataset session_dataset() {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 96;
  spec.informative = 16;
  spec.subjects = 1;
  spec.epochs_total = 48;
  spec.signal = 1.0;
  return fmri::generate_synthetic(spec);
}

StreamingAnalyzer::Options options_for(const fmri::Dataset& d) {
  StreamingAnalyzer::Options o;
  o.voxels = d.voxels();
  o.epoch_length = d.epochs().front().length;
  o.top_k = 12;
  o.k_folds = 4;
  return o;
}

// Pushes epoch `e` of the dataset TR by TR.
void push_epoch(StreamingAnalyzer& analyzer, const fmri::Dataset& d,
                std::size_t e) {
  const fmri::Epoch& ep = d.epochs()[e];
  std::vector<float> volume(d.voxels());
  for (std::uint32_t t = 0; t < ep.length; ++t) {
    for (std::size_t v = 0; v < d.voxels(); ++v) {
      volume[v] = d.data()(v, ep.start + t);
    }
    analyzer.push_volume(volume);
  }
}

TEST(Streaming, TracksPendingAndCommitted) {
  const fmri::Dataset d = session_dataset();
  StreamingAnalyzer analyzer(options_for(d));
  EXPECT_EQ(analyzer.pending_volumes(), 0u);
  push_epoch(analyzer, d, 0);
  EXPECT_EQ(analyzer.pending_volumes(), d.epochs()[0].length);
  analyzer.commit_epoch(d.epochs()[0].label);
  EXPECT_EQ(analyzer.pending_volumes(), 0u);
  EXPECT_EQ(analyzer.epochs_buffered(), 1u);
}

TEST(Streaming, DiscardDropsPendingOnly) {
  const fmri::Dataset d = session_dataset();
  StreamingAnalyzer analyzer(options_for(d));
  push_epoch(analyzer, d, 0);
  analyzer.commit_epoch(0);
  push_epoch(analyzer, d, 1);
  analyzer.discard_pending();
  EXPECT_EQ(analyzer.pending_volumes(), 0u);
  EXPECT_EQ(analyzer.epochs_buffered(), 1u);
}

TEST(Streaming, GuardsProtocolErrors) {
  const fmri::Dataset d = session_dataset();
  StreamingAnalyzer analyzer(options_for(d));
  std::vector<float> wrong(d.voxels() + 1);
  EXPECT_THROW(analyzer.push_volume(wrong), Error);
  EXPECT_THROW(analyzer.commit_epoch(0), Error);  // nothing pending
  push_epoch(analyzer, d, 0);
  std::vector<float> volume(d.voxels());
  EXPECT_THROW(analyzer.push_volume(volume), Error);  // epoch complete
  EXPECT_THROW(analyzer.commit_epoch(5), Error);      // bad label
  EXPECT_THROW(analyzer.train(), Error);              // too few epochs
  EXPECT_THROW((void)analyzer.classify_pending(), Error);  // not trained
}

TEST(Streaming, TrainSelectsInformativeVoxels) {
  const fmri::Dataset d = session_dataset();
  StreamingAnalyzer analyzer(options_for(d));
  for (std::size_t e = 0; e < 32; ++e) {
    push_epoch(analyzer, d, e);
    analyzer.commit_epoch(d.epochs()[e].label);
  }
  analyzer.train();
  ASSERT_TRUE(analyzer.trained());
  const auto& truth = d.informative_voxels();
  std::size_t hits = 0;
  for (const auto v : analyzer.selected_voxels()) {
    hits += std::binary_search(truth.begin(), truth.end(), v);
  }
  EXPECT_GE(static_cast<double>(hits) /
                static_cast<double>(analyzer.selected_voxels().size()),
            0.6);
  EXPECT_GT(analyzer.training_cv_accuracy(), 0.6);
}

TEST(Streaming, FeedbackBeatsChanceOnHeldOutEpochs) {
  const fmri::Dataset d = session_dataset();
  StreamingAnalyzer analyzer(options_for(d));
  const std::size_t localizer = 36;
  for (std::size_t e = 0; e < localizer; ++e) {
    push_epoch(analyzer, d, e);
    analyzer.commit_epoch(d.epochs()[e].label);
  }
  analyzer.train();
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t e = localizer; e < d.epochs().size(); ++e) {
    push_epoch(analyzer, d, e);
    const Feedback f = analyzer.classify_pending();
    correct += (f.label == d.epochs()[e].label);
    ++total;
    analyzer.discard_pending();
  }
  EXPECT_GE(total, 8u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total),
            0.75);
}

TEST(Streaming, ClassifyIsSignConsistentWithDecision) {
  const fmri::Dataset d = session_dataset();
  StreamingAnalyzer analyzer(options_for(d));
  for (std::size_t e = 0; e < 32; ++e) {
    push_epoch(analyzer, d, e);
    analyzer.commit_epoch(d.epochs()[e].label);
  }
  analyzer.train();
  push_epoch(analyzer, d, 33);
  const Feedback f = analyzer.classify_pending();
  EXPECT_EQ(f.label, f.decision >= 0.0 ? 1 : 0);
}

TEST(Streaming, RetrainingAfterMoreDataIsAllowed) {
  const fmri::Dataset d = session_dataset();
  StreamingAnalyzer analyzer(options_for(d));
  for (std::size_t e = 0; e < 16; ++e) {
    push_epoch(analyzer, d, e);
    analyzer.commit_epoch(d.epochs()[e].label);
  }
  analyzer.train();
  const double first = analyzer.training_cv_accuracy();
  for (std::size_t e = 16; e < 40; ++e) {
    push_epoch(analyzer, d, e);
    analyzer.commit_epoch(d.epochs()[e].label);
  }
  analyzer.train();  // retrain with 40 epochs
  EXPECT_TRUE(analyzer.trained());
  // More data should not catastrophically hurt the estimate.
  EXPECT_GT(analyzer.training_cv_accuracy(), first - 0.15);
}

TEST(Streaming, PooledTrainIsBitIdenticalToSerial) {
  // Training through the work-stealing scheduler must give the same result
  // as the serial path: task partitioning fixes the arithmetic, the
  // scheduler only moves tasks between threads.
  const fmri::Dataset d = session_dataset();
  StreamingAnalyzer::Options serial_opts = options_for(d);
  serial_opts.voxels_per_task = 16;  // same partition, no pool
  StreamingAnalyzer serial(serial_opts);
  threading::ThreadPool pool(3);
  StreamingAnalyzer::Options pooled_opts = options_for(d);
  pooled_opts.pool = &pool;
  pooled_opts.voxels_per_task = 16;
  StreamingAnalyzer pooled(pooled_opts);
  for (std::size_t e = 0; e < 32; ++e) {
    push_epoch(serial, d, e);
    serial.commit_epoch(d.epochs()[e].label);
    push_epoch(pooled, d, e);
    pooled.commit_epoch(d.epochs()[e].label);
  }
  serial.train();
  pooled.train();
  EXPECT_EQ(serial.selected_voxels(), pooled.selected_voxels());
  EXPECT_EQ(serial.training_cv_accuracy(), pooled.training_cv_accuracy());
  push_epoch(serial, d, 33);
  push_epoch(pooled, d, 33);
  const Feedback fs = serial.classify_pending();
  const Feedback fp = pooled.classify_pending();
  EXPECT_EQ(fs.label, fp.label);
  EXPECT_EQ(fs.decision, fp.decision);
}

TEST(Streaming, BufferCapacityIsEnforced) {
  const fmri::Dataset d = session_dataset();
  StreamingAnalyzer::Options o = options_for(d);
  o.max_epochs = 2;
  StreamingAnalyzer analyzer(o);
  for (std::size_t e = 0; e < 2; ++e) {
    push_epoch(analyzer, d, e);
    analyzer.commit_epoch(d.epochs()[e].label);
  }
  push_epoch(analyzer, d, 2);
  EXPECT_THROW(analyzer.commit_epoch(0), Error);
}

}  // namespace
}  // namespace fcma::core
