// Tests for the statistical primitives: the eq.2/3 reduction (normalize +
// dot == Pearson), Fisher transform, z-scoring, and the block normalization
// kernel against a naive reimplementation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "memsim/instrument.hpp"
#include "stats/normalization.hpp"
#include "stats/stats.hpp"

namespace fcma::stats {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-2.0f, 2.0f);
  return v;
}

TEST(Stats, MeanOfKnownSequence) {
  std::vector<float> v{1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::span<const float>{}), 0.0);
}

TEST(Stats, OnePassVarianceMatchesTwoPass) {
  const auto v = random_vec(1000, 1);
  const double m = mean(v);
  double two_pass = 0.0;
  for (float x : v) two_pass += (x - m) * (x - m);
  two_pass /= static_cast<double>(v.size());
  EXPECT_NEAR(variance_one_pass(v), two_pass, 1e-6);
}

TEST(Stats, VarianceOfConstantIsZero) {
  std::vector<float> v(50, 3.25f);
  EXPECT_NEAR(variance_one_pass(v), 0.0, 1e-9);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<float> x{1, 2, 3, 4, 5};
  std::vector<float> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-9);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  std::vector<float> x{1, 2, 3, 4, 5};
  std::vector<float> y{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-9);
}

TEST(Stats, PearsonInvariantToAffineTransform) {
  const auto x = random_vec(64, 3);
  auto y = random_vec(64, 4);
  const double r1 = pearson(x, y);
  for (auto& v : y) v = 3.0f * v + 7.0f;  // positive affine map
  EXPECT_NEAR(pearson(x, y), r1, 1e-5);
}

TEST(Stats, PearsonOfConstantIsZero) {
  std::vector<float> x(10, 1.0f);
  const auto y = random_vec(10, 5);
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, PearsonBounded) {
  for (std::uint64_t s = 0; s < 20; ++s) {
    const auto x = random_vec(12, 100 + s);
    const auto y = random_vec(12, 200 + s);
    const double r = pearson(x, y);
    EXPECT_GE(r, -1.0 - 1e-9);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
}

// The reduction at the heart of stage 1 (paper eq. 2-3): after
// normalize_epoch, the plain dot product of two vectors IS their Pearson
// correlation.  This is the property that turns FCMA into matrix multiply.
TEST(Stats, NormalizedDotEqualsPearson) {
  for (std::uint64_t s = 0; s < 25; ++s) {
    auto x = random_vec(12, 300 + s);
    auto y = random_vec(12, 400 + s);
    const double want = pearson(x, y);
    normalize_epoch(x);
    normalize_epoch(y);
    double dot = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      dot += static_cast<double>(x[i]) * y[i];
    }
    EXPECT_NEAR(dot, want, 1e-5) << "seed " << s;
  }
}

TEST(Stats, NormalizeEpochProducesUnitNorm) {
  auto x = random_vec(20, 6);
  normalize_epoch(x);
  double norm = 0.0;
  double sum = 0.0;
  for (float v : x) {
    norm += static_cast<double>(v) * v;
    sum += v;
  }
  EXPECT_NEAR(norm, 1.0, 1e-5);
  EXPECT_NEAR(sum, 0.0, 1e-5);
}

TEST(Stats, NormalizeConstantEpochGivesZeros) {
  std::vector<float> x(12, 4.0f);
  normalize_epoch(x);
  for (float v : x) EXPECT_EQ(v, 0.0f);
}

TEST(Stats, FisherZKnownValues) {
  EXPECT_NEAR(fisher_z(0.0f), 0.0f, 1e-7);
  EXPECT_NEAR(fisher_z(0.5f), 0.5493061f, 1e-5);
  EXPECT_NEAR(fisher_z(-0.5f), -0.5493061f, 1e-5);
  EXPECT_NEAR(fisher_z(0.9f), 1.4722193f, 1e-5);
}

TEST(Stats, FisherZIsOddAndMonotone) {
  float prev = -1e9f;
  for (float r = -0.95f; r <= 0.95f; r += 0.05f) {
    const float z = fisher_z(r);
    EXPECT_NEAR(z, -fisher_z(-r), 1e-6);
    EXPECT_GT(z, prev);
    prev = z;
  }
}

TEST(Stats, FisherZClampsAtUnity) {
  EXPECT_TRUE(std::isfinite(fisher_z(1.0f)));
  EXPECT_TRUE(std::isfinite(fisher_z(-1.0f)));
  EXPECT_EQ(fisher_z(1.0f), fisher_z_max());
  EXPECT_EQ(fisher_z(-1.0f), -fisher_z_max());
  EXPECT_TRUE(std::isfinite(fisher_z(1.5f)));  // out-of-range input clamps
}

TEST(Stats, ZscoreNormalizesMoments) {
  auto x = random_vec(500, 7);
  zscore(x);
  double sum = 0.0;
  double sq = 0.0;
  for (float v : x) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / 500.0, 0.0, 1e-4);
  EXPECT_NEAR(sq / 500.0, 1.0, 1e-3);
}

TEST(Stats, ZscoreConstantPopulationGivesZeros) {
  std::vector<float> x(16, -2.0f);
  zscore(x);
  for (float v : x) EXPECT_EQ(v, 0.0f);
}

// ---------------------------------------------------------------------------
// fisher_zscore_block vs a naive per-column implementation
// ---------------------------------------------------------------------------

void naive_fisher_zscore(std::vector<std::vector<float>>& block) {
  const std::size_t epochs = block.size();
  const std::size_t width = block[0].size();
  for (auto& row : block) {
    for (auto& v : row) v = fisher_z(v);
  }
  for (std::size_t j = 0; j < width; ++j) {
    std::vector<float> col(epochs);
    for (std::size_t e = 0; e < epochs; ++e) col[e] = block[e][j];
    zscore(col);
    for (std::size_t e = 0; e < epochs; ++e) block[e][j] = col[e];
  }
}

class BlockWidths : public ::testing::TestWithParam<int> {};

TEST_P(BlockWidths, BlockKernelMatchesNaive) {
  const std::size_t epochs = 6;
  const auto width = static_cast<std::size_t>(GetParam());
  Rng rng(88);
  std::vector<float> data(epochs * width);
  for (auto& v : data) v = rng.uniform(-0.99f, 0.99f);
  std::vector<std::vector<float>> naive(epochs, std::vector<float>(width));
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t j = 0; j < width; ++j) naive[e][j] = data[e * width + j];
  }
  fisher_zscore_block(data.data(), epochs, width, width);
  naive_fisher_zscore(naive);
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t j = 0; j < width; ++j) {
      EXPECT_NEAR(data[e * width + j], naive[e][j], 2e-4)
          << "e=" << e << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BlockWidths,
                         ::testing::Values(1, 3, 16, 63, 64, 65, 200));

TEST(BlockNormalization, RespectsLeadingDimension) {
  // Two independent voxels' blocks interleaved with stride: normalizing one
  // must not touch the other.
  const std::size_t epochs = 4;
  const std::size_t width = 8;
  const std::size_t ld = 24;
  std::vector<float> data(epochs * ld, 123.0f);
  Rng rng(9);
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t j = 0; j < width; ++j) {
      data[e * ld + j] = rng.uniform(-0.9f, 0.9f);
    }
  }
  fisher_zscore_block(data.data(), epochs, width, ld);
  for (std::size_t e = 0; e < epochs; ++e) {
    for (std::size_t j = width; j < ld; ++j) {
      EXPECT_EQ(data[e * ld + j], 123.0f);
    }
  }
}

TEST(BlockNormalization, ColumnsBecomeZeroMeanUnitVar) {
  const std::size_t epochs = 10;
  const std::size_t width = 40;
  Rng rng(10);
  std::vector<float> data(epochs * width);
  for (auto& v : data) v = rng.uniform(-0.9f, 0.9f);
  fisher_zscore_block(data.data(), epochs, width, width);
  for (std::size_t j = 0; j < width; ++j) {
    double sum = 0.0;
    double sq = 0.0;
    for (std::size_t e = 0; e < epochs; ++e) {
      sum += data[e * width + j];
      sq += static_cast<double>(data[e * width + j]) * data[e * width + j];
    }
    EXPECT_NEAR(sum / epochs, 0.0, 1e-4);
    EXPECT_NEAR(sq / epochs, 1.0, 1e-3);
  }
}

TEST(BlockNormalization, InstrumentedMatchesFast) {
  const std::size_t epochs = 5;
  const std::size_t width = 100;
  Rng rng(11);
  std::vector<float> a(epochs * width);
  for (auto& v : a) v = rng.uniform(-0.95f, 0.95f);
  std::vector<float> b = a;
  fisher_zscore_block(a.data(), epochs, width, width);
  memsim::Instrument ins;
  fisher_zscore_block_instrumented(b.data(), epochs, width, width, ins);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 2e-4);
  }
  // Fig 6's layout: the kernel's intensity should sit clearly above scalar
  // but (transcendental sequences) below the pure-FMA kernels.
  EXPECT_GT(ins.events().vector_intensity(), 6.0);
  EXPECT_LT(ins.events().vector_intensity(), 16.0);
}

TEST(BlockNormalization, EmptyInputsAreNoops) {
  std::vector<float> data(8, 1.0f);
  fisher_zscore_block(data.data(), 0, 4, 4);
  fisher_zscore_block(data.data(), 2, 0, 4);
  for (float v : data) EXPECT_EQ(v, 1.0f);
}

}  // namespace
}  // namespace fcma::stats
