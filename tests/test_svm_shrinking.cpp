// Tests for LibSVM-style active-set shrinking: result equivalence with the
// unshrunk solver, iteration behaviour, and the gradient-reconstruction
// endgame.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "svm/libsvm_solver.hpp"

namespace fcma::svm {
namespace {

struct Problem {
  linalg::Matrix kernel{0, 0};
  std::vector<std::int8_t> labels;
};

/// Linearly separable-with-overlap 2D problem of size n.
Problem make_problem(std::size_t n, double margin, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<float, float>> pts;
  Problem p;
  for (std::size_t i = 0; i < n; ++i) {
    const auto side = static_cast<std::int8_t>((i % 2 == 0) ? 1 : -1);
    pts.push_back({static_cast<float>(side * margin + rng.gaussian()),
                   static_cast<float>(rng.gaussian())});
    p.labels.push_back(side);
  }
  p.kernel = linalg::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      p.kernel(i, j) = pts[i].first * pts[j].first +
                       pts[i].second * pts[j].second;
    }
  }
  return p;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

class ShrinkingProblems : public ::testing::TestWithParam<int> {};

TEST_P(ShrinkingProblems, MatchesUnshrunkObjective) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Problem p = make_problem(120, 0.8, seed);
  TrainOptions with;
  with.shrinking = true;
  TrainOptions without;
  without.shrinking = false;
  const Model a =
      libsvm_train(p.kernel.view(), p.labels, all_indices(120), with);
  const Model b =
      libsvm_train(p.kernel.view(), p.labels, all_indices(120), without);
  EXPECT_NEAR(a.objective, b.objective,
              1e-2 * (1.0 + std::abs(b.objective)));
  EXPECT_NEAR(a.rho, b.rho, 0.05 * (1.0 + std::abs(b.rho)));
}

TEST_P(ShrinkingProblems, MatchesUnshrunkDecisions) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Problem p = make_problem(100, 0.5, seed + 100);
  TrainOptions with;
  with.shrinking = true;
  TrainOptions without;
  without.shrinking = false;
  const auto idx = all_indices(100);
  const Model a = libsvm_train(p.kernel.view(), p.labels, idx, with);
  const Model b = libsvm_train(p.kernel.view(), p.labels, idx, without);
  int flips = 0;
  for (std::size_t t = 0; t < 100; ++t) {
    const double fa = decision_value(a, p.kernel.view(), t, idx);
    const double fb = decision_value(b, p.kernel.view(), t, idx);
    flips += ((fa >= 0) != (fb >= 0));
  }
  EXPECT_LE(flips, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShrinkingProblems,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Shrinking, DualConstraintStillHolds) {
  const Problem p = make_problem(150, 0.3, 42);
  TrainOptions opts;
  opts.shrinking = true;
  const Model m =
      libsvm_train(p.kernel.view(), p.labels, all_indices(150), opts);
  const double sum =
      std::accumulate(m.alpha_y.begin(), m.alpha_y.end(), 0.0);
  EXPECT_NEAR(sum, 0.0, 1e-5);
  for (std::size_t i = 0; i < m.alpha_y.size(); ++i) {
    const double a = m.alpha_y[i] * p.labels[i];
    EXPECT_GE(a, -1e-9);
    EXPECT_LE(a, opts.c + 1e-9);
  }
}

TEST(Shrinking, WorksWithTightBoxConstraint) {
  // Small C forces many bounded alphas — the regime shrinking targets.
  const Problem p = make_problem(200, 0.2, 77);
  TrainOptions with;
  with.shrinking = true;
  with.c = 0.05;
  TrainOptions without = with;
  without.shrinking = false;
  const auto idx = all_indices(200);
  const Model a = libsvm_train(p.kernel.view(), p.labels, idx, with);
  const Model b = libsvm_train(p.kernel.view(), p.labels, idx, without);
  EXPECT_NEAR(a.objective, b.objective,
              1e-2 * (1.0 + std::abs(b.objective)));
}

TEST(Shrinking, SmallProblemsUnaffected) {
  // A well-separated tiny problem converges in fewer iterations than the
  // shrink cadence (min(n, 1000)), so shrinking never engages: results
  // must be bit-identical.
  const Problem p = make_problem(6, 4.0, 9);
  TrainOptions with;
  with.shrinking = true;
  TrainOptions without;
  without.shrinking = false;
  const auto idx = all_indices(6);
  const Model a = libsvm_train(p.kernel.view(), p.labels, idx, with);
  const Model b = libsvm_train(p.kernel.view(), p.labels, idx, without);
  ASSERT_LT(a.iterations, 6);
  ASSERT_EQ(a.alpha_y.size(), b.alpha_y.size());
  for (std::size_t i = 0; i < a.alpha_y.size(); ++i) {
    EXPECT_EQ(a.alpha_y[i], b.alpha_y[i]);
  }
}

TEST(Shrinking, InstrumentedRunStillWorks) {
  const Problem p = make_problem(80, 0.4, 13);
  TrainOptions opts;
  opts.shrinking = true;
  memsim::Instrument ins;
  const Model m = libsvm_train(p.kernel.view(), p.labels, all_indices(80),
                               opts, &ins);
  EXPECT_GT(m.iterations, 0);
  EXPECT_GT(ins.events().mem_refs, 0u);
}

TEST(Shrinking, LimitedCacheStillCorrect) {
  // Shrinking's gradient reconstruction re-fetches rows; a tiny LRU cache
  // stresses that path.
  const Problem p = make_problem(120, 0.3, 21);
  TrainOptions opts;
  opts.shrinking = true;
  opts.cache_rows = 8;
  TrainOptions reference;
  reference.shrinking = false;
  const auto idx = all_indices(120);
  const Model a = libsvm_train(p.kernel.view(), p.labels, idx, opts);
  const Model b = libsvm_train(p.kernel.view(), p.labels, idx, reference);
  EXPECT_NEAR(a.objective, b.objective,
              1e-2 * (1.0 + std::abs(b.objective)));
}

}  // namespace
}  // namespace fcma::svm
