// Tests for the volumetric geometry, brain mask, ROI clustering, and the
// blob-planting volumetric generator.
#include <gtest/gtest.h>

#include <set>

#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "fmri/volume.hpp"

namespace fcma::fmri {
namespace {

TEST(VolumeGeometry, IndexCoordRoundtrip) {
  const VolumeGeometry g{5, 7, 3};
  EXPECT_EQ(g.size(), 105u);
  for (std::uint32_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.index_of(g.coord_of(i)), i);
  }
}

TEST(VolumeGeometry, XIsFastest) {
  const VolumeGeometry g{4, 4, 4};
  EXPECT_EQ(g.index_of(Coord{1, 0, 0}), 1u);
  EXPECT_EQ(g.index_of(Coord{0, 1, 0}), 4u);
  EXPECT_EQ(g.index_of(Coord{0, 0, 1}), 16u);
}

TEST(VolumeGeometry, ContainsBounds) {
  const VolumeGeometry g{4, 4, 4};
  EXPECT_TRUE(g.contains(Coord{0, 0, 0}));
  EXPECT_TRUE(g.contains(Coord{3, 3, 3}));
  EXPECT_FALSE(g.contains(Coord{4, 0, 0}));
  EXPECT_FALSE(g.contains(Coord{0, -1, 0}));
  EXPECT_THROW(g.index_of(Coord{4, 0, 0}), Error);
  EXPECT_THROW(g.coord_of(64), Error);
}

TEST(BrainMask, EllipsoidIsCenteredAndNonTrivial) {
  const VolumeGeometry g{16, 16, 16};
  const BrainMask mask = BrainMask::ellipsoid(g);
  EXPECT_GT(mask.voxels(), g.size() / 4);
  EXPECT_LT(mask.voxels(), g.size());
  // Center voxel is brain; corners are not.
  EXPECT_TRUE(mask.in_brain(Coord{8, 8, 8}));
  EXPECT_FALSE(mask.in_brain(Coord{0, 0, 0}));
  EXPECT_FALSE(mask.in_brain(Coord{15, 15, 15}));
}

TEST(BrainMask, MappingsAreConsistent) {
  const VolumeGeometry g{8, 8, 8};
  const BrainMask mask = BrainMask::ellipsoid(g);
  for (std::uint32_t m = 0; m < mask.voxels(); ++m) {
    const Coord c = mask.coord(m);
    EXPECT_EQ(mask.mask_index(c), static_cast<std::int64_t>(m));
  }
}

TEST(BrainMask, MaskIndicesAreSortedByGridIndex) {
  const VolumeGeometry g{8, 8, 8};
  const BrainMask mask = BrainMask::ellipsoid(g);
  std::uint32_t prev = 0;
  for (std::uint32_t m = 0; m < mask.voxels(); ++m) {
    EXPECT_GE(mask.grid_index(m), prev);
    prev = mask.grid_index(m);
  }
}

TEST(BrainMask, CustomMaskFromGrid) {
  const VolumeGeometry g{3, 3, 1};
  std::vector<bool> in(g.size(), false);
  in[g.index_of(Coord{1, 1, 0})] = true;
  in[g.index_of(Coord{2, 1, 0})] = true;
  const BrainMask mask(g, in);
  EXPECT_EQ(mask.voxels(), 2u);
  EXPECT_EQ(mask.mask_index(Coord{0, 0, 0}), -1);
  EXPECT_THROW(BrainMask(g, std::vector<bool>(g.size(), false)), Error);
}

TEST(Clusters, SingleBlob) {
  const VolumeGeometry g{8, 8, 8};
  const BrainMask mask = BrainMask::ellipsoid(g, 1.0);
  // A 2x2x1 blob around the center.
  std::vector<std::uint32_t> sel;
  for (const Coord c : {Coord{4, 4, 4}, Coord{5, 4, 4}, Coord{4, 5, 4},
                        Coord{5, 5, 4}}) {
    sel.push_back(static_cast<std::uint32_t>(mask.mask_index(c)));
  }
  const auto clusters = find_clusters(mask, sel);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 4u);
  EXPECT_NEAR(clusters[0].centroid_x, 4.5, 1e-12);
  EXPECT_NEAR(clusters[0].centroid_y, 4.5, 1e-12);
  EXPECT_NEAR(clusters[0].centroid_z, 4.0, 1e-12);
}

TEST(Clusters, DiagonalVoxelsAreSeparateUnderSixConnectivity) {
  const VolumeGeometry g{6, 6, 6};
  const BrainMask mask = BrainMask::ellipsoid(g, 1.0);
  std::vector<std::uint32_t> sel{
      static_cast<std::uint32_t>(mask.mask_index(Coord{2, 2, 2})),
      static_cast<std::uint32_t>(mask.mask_index(Coord{3, 3, 2}))};
  const auto clusters = find_clusters(mask, sel);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(Clusters, MinSizeFiltersSingletons) {
  const VolumeGeometry g{8, 8, 8};
  const BrainMask mask = BrainMask::ellipsoid(g, 1.0);
  std::vector<std::uint32_t> sel{
      static_cast<std::uint32_t>(mask.mask_index(Coord{2, 2, 2})),
      static_cast<std::uint32_t>(mask.mask_index(Coord{5, 5, 5})),
      static_cast<std::uint32_t>(mask.mask_index(Coord{5, 5, 4}))};
  EXPECT_EQ(find_clusters(mask, sel, 1).size(), 2u);
  const auto big = find_clusters(mask, sel, 2);
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0].size(), 2u);
}

TEST(Clusters, SortedLargestFirst) {
  const VolumeGeometry g{10, 10, 4};
  const BrainMask mask = BrainMask::ellipsoid(g, 1.0);
  std::vector<std::uint32_t> sel;
  // Blob of 3 and blob of 1, far apart.
  for (const Coord c : {Coord{2, 2, 1}, Coord{3, 2, 1}, Coord{4, 2, 1},
                        Coord{7, 7, 2}}) {
    sel.push_back(static_cast<std::uint32_t>(mask.mask_index(c)));
  }
  const auto clusters = find_clusters(mask, sel);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size(), 3u);
  EXPECT_EQ(clusters[1].size(), 1u);
}

TEST(Clusters, EmptySelection) {
  const VolumeGeometry g{4, 4, 4};
  const BrainMask mask = BrainMask::ellipsoid(g, 1.0);
  EXPECT_TRUE(find_clusters(mask, {}).empty());
}

TEST(Clusters, RejectsOutOfMaskSelection) {
  const VolumeGeometry g{4, 4, 4};
  const BrainMask mask = BrainMask::ellipsoid(g, 1.0);
  const std::vector<std::uint32_t> sel{
      static_cast<std::uint32_t>(mask.voxels())};
  EXPECT_THROW(find_clusters(mask, sel), Error);
}

// ---------------------------------------------------------------------------
// Volumetric generator
// ---------------------------------------------------------------------------

VolumetricDataset small_volumetric() {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.informative = 24;
  return generate_synthetic_volumetric(spec, VolumeGeometry{10, 10, 8}, 3);
}

TEST(VolumetricGenerator, MaskDefinesVoxelCount) {
  const VolumetricDataset v = small_volumetric();
  EXPECT_EQ(v.dataset.voxels(), v.mask.voxels());
  EXPECT_EQ(v.dataset.informative_voxels().size(), 24u);
}

TEST(VolumetricGenerator, PlantsRequestedBlobCount) {
  const VolumetricDataset v = small_volumetric();
  ASSERT_EQ(v.planted_rois.size(), 3u);
  std::size_t total = 0;
  for (const auto& roi : v.planted_rois) total += roi.size();
  EXPECT_EQ(total, 24u);
  // Blobs are compact: each ROI is one connected component by construction.
  for (const auto& roi : v.planted_rois) {
    const auto sub = find_clusters(v.mask, roi.voxels);
    EXPECT_EQ(sub.size(), 1u);
  }
}

TEST(VolumetricGenerator, Deterministic) {
  const VolumetricDataset a = small_volumetric();
  const VolumetricDataset b = small_volumetric();
  EXPECT_EQ(a.dataset.informative_voxels(),
            b.dataset.informative_voxels());
  EXPECT_EQ(a.dataset.data()(3, 7), b.dataset.data()(3, 7));
}

TEST(VolumetricGenerator, RejectsDegenerateRequests) {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.informative = 2;
  EXPECT_THROW(
      generate_synthetic_volumetric(spec, VolumeGeometry{10, 10, 8}, 3),
      Error);  // fewer informative voxels than blobs
}

}  // namespace
}  // namespace fcma::fmri
