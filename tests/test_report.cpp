// Tests for the grouped (memory-bounded) pipeline, mask serialization, and
// the report renderer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "fcma/offline.hpp"
#include "fcma/online.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/report.hpp"
#include "fcma/scoreboard.hpp"
#include "fmri/io.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"

namespace fcma {
namespace {

fmri::Dataset small_dataset() {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 96;
  spec.informative = 16;
  return fmri::generate_synthetic(spec);
}

// ---------------------------------------------------------------------------
// run_task_grouped
// ---------------------------------------------------------------------------

class GroupSizes : public ::testing::TestWithParam<int> {};

TEST_P(GroupSizes, GroupedMatchesMonolithicPipeline) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const core::VoxelTask task{8, 40};
  const core::PipelineConfig config = core::PipelineConfig::optimized();
  const core::TaskResult whole = core::run_task(ne, task, config);
  const core::TaskResult grouped = core::run_task_grouped(
      ne, task, config, static_cast<std::size_t>(GetParam()));
  ASSERT_EQ(whole.accuracy.size(), grouped.accuracy.size());
  for (std::size_t v = 0; v < whole.accuracy.size(); ++v) {
    EXPECT_NEAR(whole.accuracy[v], grouped.accuracy[v], 1e-9) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroupSizes,
                         ::testing::Values(1, 7, 16, 40, 100));

TEST(GroupedPipeline, WorksWithBaselineImplAndThreads) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const core::VoxelTask task{0, 24};
  core::PipelineConfig config = core::PipelineConfig::baseline();
  const auto serial = core::run_task_grouped(ne, task, config, 8);
  threading::ThreadPool pool(3);
  config.pool = &pool;
  const auto threaded = core::run_task_grouped(ne, task, config, 8);
  for (std::size_t v = 0; v < serial.accuracy.size(); ++v) {
    EXPECT_NEAR(serial.accuracy[v], threaded.accuracy[v], 1e-9);
  }
}

TEST(GroupedPipeline, HonorsCustomFolds) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  const auto folds = core::kfold_groups(ne.meta.size(), 4);
  core::PipelineConfig config = core::PipelineConfig::optimized();
  config.cv_folds = &folds;
  const core::VoxelTask task{0, 8};
  const auto grouped = core::run_task_grouped(ne, task, config, 3);
  const auto whole = core::run_task(ne, task, config);
  for (std::size_t v = 0; v < whole.accuracy.size(); ++v) {
    EXPECT_NEAR(whole.accuracy[v], grouped.accuracy[v], 1e-9);
  }
}

TEST(GroupedPipeline, RejectsZeroGroup) {
  const fmri::Dataset d = small_dataset();
  const fmri::NormalizedEpochs ne = fmri::normalize_epochs(d);
  EXPECT_THROW((void)core::run_task_grouped(
                   ne, core::VoxelTask{0, 4},
                   core::PipelineConfig::optimized(), 0),
               Error);
}

// ---------------------------------------------------------------------------
// Mask serialization
// ---------------------------------------------------------------------------

TEST(MaskIo, Roundtrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fcma_mask_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const fmri::BrainMask mask =
      fmri::BrainMask::ellipsoid(fmri::VolumeGeometry{9, 11, 7});
  const std::string path = (dir / "brain.fcmm").string();
  fmri::save_mask(path, mask);
  const fmri::BrainMask loaded = fmri::load_mask(path);
  EXPECT_EQ(loaded.voxels(), mask.voxels());
  EXPECT_EQ(loaded.geometry().nx, 9);
  EXPECT_EQ(loaded.geometry().ny, 11);
  EXPECT_EQ(loaded.geometry().nz, 7);
  for (std::uint32_t m = 0; m < mask.voxels(); m += 5) {
    EXPECT_EQ(loaded.grid_index(m), mask.grid_index(m));
  }
  std::filesystem::remove_all(dir);
}

TEST(MaskIo, RejectsWrongMagic) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fcma_mask2_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const fmri::Dataset d = small_dataset();
  const std::string path = (dir / "act.fcmb").string();
  fmri::save_activity(path, d.data());
  EXPECT_THROW(fmri::load_mask(path), Error);  // FCMB != FCMM
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

struct ReportFixture {
  fmri::VolumetricDataset vol;
  core::Scoreboard board;

  ReportFixture()
      : vol(make_vol()), board(vol.dataset.voxels()) {
    const fmri::NormalizedEpochs ne = fmri::normalize_epochs(vol.dataset);
    board.add(core::run_task(
        ne,
        core::VoxelTask{0, static_cast<std::uint32_t>(vol.dataset.voxels())},
        core::PipelineConfig::optimized()));
  }

  static fmri::VolumetricDataset make_vol() {
    fmri::DatasetSpec spec = fmri::tiny_spec();
    spec.informative = 16;
    return fmri::generate_synthetic_volumetric(
        spec, fmri::VolumeGeometry{10, 10, 6}, 2);
  }
};

TEST(Report, ContainsRankedVoxelsAndClusters) {
  const ReportFixture fx;
  core::ReportOptions opts;
  opts.cv_total = fx.vol.dataset.epochs().size();
  opts.top_voxels = 5;
  const auto selected = fx.board.top_voxels(16);
  const std::string report =
      core::render_report(fx.board, selected, &fx.vol.mask, opts);
  EXPECT_NE(report.find("top voxels"), std::string::npos);
  EXPECT_NE(report.find("ROI clusters"), std::string::npos);
  EXPECT_NE(report.find("p (binomial)"), std::string::npos);
  // The best voxel's id appears in the table.
  EXPECT_NE(report.find(std::to_string(fx.board.ranked().front().voxel)),
            std::string::npos);
}

TEST(Report, OmitsPvaluesWithoutCvTotal) {
  const ReportFixture fx;
  core::ReportOptions opts;
  opts.cv_total = 0;
  const std::string report = core::render_report(
      fx.board, fx.board.top_voxels(8), nullptr, opts);
  EXPECT_EQ(report.find("p (binomial)"), std::string::npos);
  EXPECT_EQ(report.find("ROI clusters"), std::string::npos);
}

TEST(Report, OfflineSummaryRendersFolds) {
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 96;
  spec.informative = 16;
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  core::OfflineOptions opts;
  opts.top_k = 12;
  const core::OfflineResult result = core::run_offline_analysis(d, opts);
  const std::string report = core::render_offline_report(
      result, d.voxels(), nullptr, core::ReportOptions{});
  EXPECT_NE(report.find("per-fold results"), std::string::npos);
  EXPECT_NE(report.find("mean held-out accuracy"), std::string::npos);
  EXPECT_NE(report.find("reliable voxels"), std::string::npos);
}

TEST(Report, WriteReportRoundtrips) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fcma_report_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "analysis.txt").string();
  core::write_report(path, "hello analysis\n");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hello analysis");
  std::filesystem::remove_all(dir);
  EXPECT_THROW(core::write_report("/nonexistent/dir/x.txt", "y"), Error);
}

}  // namespace
}  // namespace fcma
