// Unit tests for the thread pool and parallel_for helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::threading {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

TEST(ParallelFor, CoversEntireRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, 37, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, 1,
               [&calls](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, ZeroGrainThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 10, 0, [](std::size_t, std::size_t) {}),
      Error);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10, 1,
                            [](std::size_t lo, std::size_t) {
                              if (lo == 5) throw Error("body failed");
                            }),
               Error);
}

TEST(ParallelForEach, SumsCorrectly) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  parallel_for_each(pool, 1, 101, [&sum](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ParallelFor, GrainLargerThanRangeStillWorks) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 0, 7, 100, [&total](std::size_t lo, std::size_t hi) {
    total += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(total.load(), 7);
}

TEST(ParallelFor, NestedCallFromWorkerCompletesWithoutDeadlock) {
  // A parallel_for issued from inside a pool task must not wait on a queue
  // nobody can drain.  The scheduler's help-first join makes this safe at
  // any pool size: the blocked thread executes its own deque and steals
  // until the nested group completes.  With a 1-thread pool a naive
  // blocking join would deadlock (the only worker waiting on chunks no one
  // can run).
  ThreadPool pool(1);
  std::atomic<int> inner_hits{0};
  parallel_for(pool, 0, 4, 1,
               [&pool, &inner_hits](std::size_t, std::size_t) {
                 parallel_for(pool, 0, 10, 2,
                              [&inner_hits](std::size_t lo, std::size_t hi) {
                                inner_hits +=
                                    static_cast<int>(hi - lo);
                              });
               });
  EXPECT_EQ(inner_hits.load(), 40);
  EXPECT_FALSE(pool.inside_worker());
}

TEST(ParallelFor, NestedCallStillCoversRangeOnSaturatedPool) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(256);
  parallel_for(pool, 0, 16, 1,
               [&pool, &hits](std::size_t lo, std::size_t) {
                 parallel_for(pool, lo * 16, (lo + 1) * 16, 3,
                              [&hits](std::size_t a, std::size_t b) {
                                for (std::size_t i = a; i < b; ++i) {
                                  ++hits[i];
                                }
                              });
               });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  // Drain-on-destruction contract: ~ThreadPool() completes every task
  // already submitted — futures from abandoned submits never carry
  // broken_promise, and side effects of all 100 tasks are visible.
  std::atomic<int> executed{0};
  std::future<int> last;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      last = pool.submit([&executed, i] {
        ++executed;
        return i;
      });
    }
    // No .get() before destruction: the destructor must drain the queue.
  }
  EXPECT_EQ(executed.load(), 100);
  EXPECT_EQ(last.get(), 99);  // resolved, not std::future_error
}

TEST(ThreadPool, DestructorResolvesEveryFuture) {
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([i] { return i * i; }));
    }
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_NO_THROW(EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
                              i * i));
  }
}

TEST(ThreadPool, InsideWorkerIsFalseOnCallerThread) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.inside_worker());
  auto f = pool.submit([&pool] { return pool.inside_worker(); });
  EXPECT_TRUE(f.get());
  EXPECT_FALSE(pool.inside_worker());
}

TEST(ThreadPool, InsideWorkerIsScopedToTheOwningPool) {
  // Regression: the old check was one process-global flag, so a task on
  // pool A reported inside_worker() for pool B too and parallel_for on B
  // wrongly ran inline on A's thread.
  ThreadPool a(2);
  ThreadPool b(2);
  auto f = a.submit([&a, &b] {
    return a.inside_worker() && !b.inside_worker();
  });
  EXPECT_TRUE(f.get());
}

TEST(ParallelFor, CrossPoolCallDispatchesToTheTargetPool) {
  // A task on pool A fanning out on pool B must spawn the chunks into B
  // (where B's workers and the helping caller execute them), not inline
  // them on A's worker.  Every chunk — wherever it ran — counts in B's
  // executed tally; under the old global inside_worker() fallback nothing
  // was ever submitted to B.
  ThreadPool a(2);
  ThreadPool b(2);
  const std::uint64_t executed_before = b.scheduler().stats().executed;
  std::atomic<int> hits{0};
  a.submit([&b, &hits] {
      parallel_for_each(b, 0, 32, [&hits](std::size_t) { ++hits; });
    }).get();
  EXPECT_EQ(hits.load(), 32);
  EXPECT_GE(b.scheduler().stats().executed - executed_before, 32u);
}

}  // namespace
}  // namespace fcma::threading
