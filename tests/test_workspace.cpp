// Tests for the per-thread workspace arena (common/workspace.hpp): lease
// sizing and alignment, buffer reuse through the free lists, the free-list
// cap, and concurrent checkout from pool workers (each worker must hit its
// own arena — no sharing, no aliasing).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/numa.hpp"
#include "common/workspace.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::core {
namespace {

TEST(Workspace, LeaseIsSizedAndAligned) {
  Workspace ws;
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{7}, std::size_t{256}, std::size_t{1000},
        std::size_t{70000}}) {
    auto lease = ws.acquire(n);
    ASSERT_NE(lease.data(), nullptr);
    EXPECT_GE(lease.size(), n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lease.data()) % 64, 0u)
        << "request of " << n << " floats not 64-byte aligned";
  }
}

TEST(Workspace, ZeroRequestYieldsEmptyLease) {
  Workspace ws;
  const auto lease = ws.acquire(0);
  EXPECT_TRUE(lease.empty());
  EXPECT_EQ(lease.size(), 0u);
}

TEST(Workspace, ReleasedBufferIsReused) {
  Workspace ws;
  float* first = nullptr;
  {
    auto lease = ws.acquire(1000);
    first = lease.data();
    EXPECT_EQ(ws.pool_hits(), 0u);
  }
  // Same size class again: must come back from the free list, not malloc.
  auto lease = ws.acquire(900);
  EXPECT_EQ(lease.data(), first);
  EXPECT_EQ(ws.acquires(), 2u);
  EXPECT_EQ(ws.pool_hits(), 1u);
}

TEST(Workspace, LiveLeasesNeverAlias) {
  Workspace ws;
  auto a = ws.acquire(512);
  auto b = ws.acquire(512);
  auto c = ws.acquire(512);
  EXPECT_NE(a.data(), b.data());
  EXPECT_NE(a.data(), c.data());
  EXPECT_NE(b.data(), c.data());
}

TEST(Workspace, FreeListIsCappedAndTrimmable) {
  Workspace ws;
  {
    std::vector<Workspace::Lease> leases;
    for (int i = 0; i < 6; ++i) leases.push_back(ws.acquire(4096));
  }
  // Only a bounded number of buffers stays cached; 4096 floats = 16 KiB.
  EXPECT_GT(ws.bytes_held(), 0u);
  EXPECT_LE(ws.bytes_held(), 4u * 4096u * sizeof(float));
  ws.trim();
  EXPECT_EQ(ws.bytes_held(), 0u);
}

TEST(Workspace, MoveTransfersOwnership) {
  Workspace ws;
  auto a = ws.acquire(300);
  float* p = a.data();
  Workspace::Lease b = std::move(a);
  EXPECT_EQ(b.data(), p);
  b = ws.acquire(300);  // releasing the moved-to lease must not double-free
  EXPECT_NE(b.data(), nullptr);
}

TEST(Workspace, LocalArenaIsPerThread) {
  const auto here = reinterpret_cast<std::uintptr_t>(&Workspace::local());
  std::uintptr_t there = 0;
  std::thread t(
      [&] { there = reinterpret_cast<std::uintptr_t>(&Workspace::local()); });
  t.join();
  EXPECT_NE(here, there);
  EXPECT_NE(there, 0u);
}

TEST(Workspace, ConcurrentCheckoutFromPoolWorkers) {
  threading::ThreadPool pool(4);
  std::atomic<int> failures{0};
  threading::parallel_for_each(pool, 0, 64, [&](std::size_t i) {
    auto& ws = Workspace::local();
    auto a = ws.acquire(300 + i);
    auto b = ws.acquire(300 + i);
    if (a.data() == b.data()) failures.fetch_add(1);
    // Fill both leases, then verify the first survived the second's writes.
    const auto va = static_cast<float>(i);
    const auto vb = static_cast<float>(i) + 0.5f;
    for (std::size_t j = 0; j < a.size(); ++j) a.data()[j] = va;
    for (std::size_t j = 0; j < b.size(); ++j) b.data()[j] = vb;
    for (std::size_t j = 0; j < a.size(); ++j) {
      if (a.data()[j] != va) {
        failures.fetch_add(1);
        break;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(WorkspaceNuma, NodeProbesAreConsistent) {
  // The syscall wrappers must agree with each other: a node index returned
  // for the current thread or a first-touched buffer is within
  // [0, node_count), or -1 where the platform can't say.
  const int nodes = numa::node_count();
  EXPECT_GE(nodes, 1);
  const int here = numa::current_node();
  EXPECT_GE(here, -1);
  if (here >= 0) EXPECT_LT(here, nodes);
  std::vector<float> buf(4096);
  numa::first_touch(buf.data(), buf.size() * sizeof(float));
  const int node = numa::node_of(buf.data());
  EXPECT_GE(node, -1);
  if (node >= 0) EXPECT_LT(node, nodes);
}

TEST(WorkspaceNuma, RemoteHitsStayZeroWithinOneThread) {
  // A buffer first-touched and re-acquired on the same thread can never be
  // remote (and on a single-node machine nothing ever is).
  Workspace ws;
  for (int round = 0; round < 3; ++round) {
    auto lease = ws.acquire(2048);
    lease.data()[0] = 1.0f;
  }
  EXPECT_GE(ws.pool_hits(), 2u);
  if (numa::node_count() == 1) {
    EXPECT_EQ(ws.remote_hits(), 0u);
  } else {
    // Multi-node machines may migrate the thread between acquires; the
    // counter only ever counts pool hits.
    EXPECT_LE(ws.remote_hits(), ws.pool_hits());
  }
}

}  // namespace
}  // namespace fcma::core
