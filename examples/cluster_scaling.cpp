// Cluster demonstration: the master-worker task farm of paper SS3.1.1.
//
// Part 1 runs the *real* protocol with real threads over the in-process
// message-passing layer and verifies the distributed scoreboard matches a
// single-node run.  Part 2 puts the same task structure on the virtual-time
// simulator to project elapsed time and speedup on a 96-coprocessor
// cluster, Fig 8-style.
//
// Build & run:  ./build/examples/cluster_scaling
#include <cstdio>
#include <numeric>

#include "archsim/arch_model.hpp"
#include "cluster/cost_model.hpp"
#include "cluster/driver.hpp"
#include "cluster/sim.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "fcma/task.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"

int main() {
  using namespace fcma;

  // Trace the run: the sidecar picks up comm message/byte counters and the
  // per-worker task latency spans from part 1's real protocol run.
  trace::set_enabled(true);

  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 256;
  spec.informative = 32;
  const fmri::Dataset dataset = fmri::generate_synthetic(spec);
  const fmri::NormalizedEpochs epochs = fmri::normalize_epochs(dataset);

  // ---- Part 1: real threads, real messages -----------------------------
  std::printf("part 1: master + 4 workers over the message-passing layer\n");
  cluster::DriverOptions options;
  options.workers = 4;
  options.voxels_per_task = 32;
  cluster::DriverStats stats;
  WallTimer timer;
  const core::Scoreboard distributed =
      cluster::run_cluster_analysis(epochs, dataset.voxels(), options,
                                    &stats);
  std::printf("  %zu tasks, %zu messages, %.2f s; recovery of planted "
              "voxels: %.0f%%\n",
              stats.tasks_dispatched, stats.messages, timer.seconds(),
              100.0 * distributed.recovery_rate(
                          dataset.informative_voxels()));
  std::printf("  traced: %lld comm messages, %lld payload bytes\n\n",
              static_cast<long long>(
                  trace::global().counter("comm/messages")),
              static_cast<long long>(trace::global().counter("comm/bytes")));
  trace::global().write_json("cluster_scaling.trace.json");

  // ---- Part 2: virtual-time projection to a 96-node cluster ------------
  std::printf("part 2: virtual 48-node cluster, paper-scale face-scene\n");
  memsim::Instrument ins;
  const auto calib = core::run_task_instrumented(
      epochs, core::VoxelTask{0, 16}, core::PipelineConfig::optimized(),
      ins);
  const cluster::CalibratedCost cost(
      calib, cluster::TaskDims{16, dataset.voxels(),
                               dataset.epochs().size(),
                               dataset.subjects()});

  const fmri::DatasetSpec paper = fmri::face_scene_spec();
  const auto arch = archsim::Phi5110P();
  const auto tasks = core::partition_voxels(paper.voxels, 120);
  std::vector<double> task_seconds;
  for (const auto& task : tasks) {
    task_seconds.push_back(cost.task_seconds(
        cluster::TaskDims{task.count, paper.voxels, paper.epochs_total,
                          paper.subjects},
        arch, 240));
  }
  cluster::FarmConfig farm;
  farm.broadcast_bytes = static_cast<double>(paper.voxels) * 2592 * 4;
  farm.fold_overhead_s = 1.0;
  std::printf("  %zu tasks/fold, %.1f s of node compute per fold\n",
              tasks.size(),
              std::accumulate(task_seconds.begin(), task_seconds.end(), 0.0));
  std::printf("  nodes | elapsed (18 folds) | speedup | efficiency\n");
  double t1 = 0.0;
  for (const std::size_t nodes : {1u, 8u, 24u, 48u, 96u}) {
    farm.workers = nodes;
    const auto outcome = cluster::simulate_task_farm(
        farm, task_seconds, static_cast<std::size_t>(paper.subjects));
    if (nodes == 1) t1 = outcome.makespan_s;
    std::printf("  %5zu | %18.0f | %6.1fx | %.2f\n", nodes,
                outcome.makespan_s, t1 / outcome.makespan_s,
                outcome.efficiency(nodes));
  }
  return 0;
}
