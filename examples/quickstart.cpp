// Quickstart: the smallest complete FCMA analysis.
//
//   1. generate a synthetic multi-subject fMRI dataset with planted
//      condition-dependent connectivity;
//   2. run the three-stage FCMA pipeline (correlate -> normalize -> SVM
//      cross-validate) over every voxel;
//   3. rank voxels by cross-validation accuracy and check how well the
//      planted "informative" voxels were recovered.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/timer.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/scoreboard.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"

int main() {
  using namespace fcma;

  // A small brain: 256 voxels, 6 subjects, 12 epochs each (2 conditions).
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 256;
  spec.informative = 32;
  spec.subjects = 6;
  spec.epochs_total = 72;
  std::printf("generating '%s': %zu voxels, %d subjects, %zu epochs...\n",
              spec.name.c_str(), spec.voxels, spec.subjects,
              spec.epochs_total);
  const fmri::Dataset dataset = fmri::generate_synthetic(spec);

  // Stage 0: eq.2-normalize every labeled epoch so that stage 1 reduces
  // Pearson correlation to matrix multiplication.
  const fmri::NormalizedEpochs epochs = fmri::normalize_epochs(dataset);

  // Run the optimized pipeline for all voxels as one task.
  WallTimer timer;
  const core::VoxelTask all{0, static_cast<std::uint32_t>(dataset.voxels())};
  const core::TaskResult result =
      core::run_task(epochs, all, core::PipelineConfig::optimized());
  std::printf("pipeline done in %.2f s (%ld SMO iterations)\n",
              timer.seconds(), result.svm_iterations);

  // Rank voxels and report.
  core::Scoreboard board(dataset.voxels());
  board.add(result);
  std::printf("\ntop 10 voxels by cross-validation accuracy:\n");
  const auto ranked = board.ranked();
  for (int i = 0; i < 10; ++i) {
    std::printf("  voxel %4u  accuracy %.3f\n", ranked[i].voxel,
                ranked[i].accuracy);
  }
  std::printf("\nplanted informative voxels recovered in top-%zu: %.0f%%\n",
              dataset.informative_voxels().size(),
              100.0 * board.recovery_rate(dataset.informative_voxels()));
  return 0;
}
