// Volumetric end-to-end study: the closest thing to a real FCMA deployment
// this repository can run without human data.
//
//   1. synthesize a 3D scan: an ellipsoid brain mask with two planted
//      connectivity ROIs, scanner drift, and a motion spike;
//   2. preprocess: detrend, censor spiked epochs, spatially smooth;
//   3. run the FCMA pipeline over the surviving epochs;
//   4. select voxels with FDR-controlled binomial significance;
//   5. cluster the selection into ROIs and render the analysis report.
//
// Build & run:  ./build/examples/volumetric_study
#include <cstdio>

#include "common/timer.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/report.hpp"
#include "fcma/scoreboard.hpp"
#include "fcma/selection.hpp"
#include "fmri/preprocess.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"

int main() {
  using namespace fcma;

  // ---- 1. synthesize ----------------------------------------------------
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.informative = 24;
  spec.subjects = 6;
  spec.epochs_total = 72;
  const fmri::VolumeGeometry geometry{12, 12, 8};
  fmri::VolumetricDataset vol =
      fmri::generate_synthetic_volumetric(spec, geometry, 2);
  fmri::Dataset& scan = vol.dataset;
  std::printf("synthetic scan: %dx%dx%d grid, %zu brain voxels, %zu planted"
              " ROI voxels in %zu blobs\n",
              geometry.nx, geometry.ny, geometry.nz, scan.voxels(),
              scan.informative_voxels().size(), vol.planted_rois.size());

  // Corrupt it the way real scans are corrupted.
  for (std::size_t v = 0; v < scan.voxels(); ++v) {
    const float drift = 0.002f * static_cast<float>(v % 5 + 1);
    for (std::size_t t = 0; t < scan.timepoints(); ++t) {
      scan.data()(v, t) += drift * static_cast<float>(t);  // scanner drift
    }
  }
  for (std::size_t v = 0; v < scan.voxels(); ++v) {
    scan.data()(v, 200) += 20.0f;  // a head-motion spike at TR 200
  }

  // ---- 2. preprocess ----------------------------------------------------
  fmri::detrend_dataset(scan, 1);
  const auto spikes = fmri::detect_motion_spikes(scan, 8.0);
  const auto usable = fmri::usable_epochs(scan, spikes);
  std::printf("preprocess: detrended; %zu motion spike(s) found, %zu of %zu"
              " epochs usable\n",
              spikes.size(), usable.size(), scan.epochs().size());
  fmri::spatial_smooth(scan, vol.mask, 1.5);

  // ---- 3. FCMA pipeline -------------------------------------------------
  WallTimer timer;
  const fmri::NormalizedEpochs epochs = fmri::normalize_epochs(scan, usable);
  core::Scoreboard board(scan.voxels());
  const core::VoxelTask all{0, static_cast<std::uint32_t>(scan.voxels())};
  board.add(core::run_task_grouped(epochs, all,
                                   core::PipelineConfig::optimized(), 64));
  std::printf("pipeline (grouped, 64 voxels in flight): %.1f s\n",
              timer.seconds());

  // ---- 4. significance-controlled selection ------------------------------
  const auto selected = core::significant_voxels(
      board, epochs.meta.size(), 0.05, core::Correction::kFdr);
  std::printf("FDR (q = 0.05) selected %zu voxels\n", selected.size());

  // ---- 5. ROI clustering + report ----------------------------------------
  core::ReportOptions report_options;
  report_options.cv_total = epochs.meta.size();
  report_options.top_voxels = 12;
  const std::string report =
      core::render_report(board, selected, &vol.mask, report_options);
  std::fputs(report.c_str(), stdout);

  // Ground-truth check: how many planted ROI voxels did FDR recover?
  std::size_t hits = 0;
  const auto& truth = scan.informative_voxels();
  for (const auto v : selected) {
    hits += std::binary_search(truth.begin(), truth.end(), v);
  }
  std::printf("\nplanted-voxel recall: %zu/%zu; selection precision: "
              "%.0f%%\n",
              hits, truth.size(),
              selected.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(hits) /
                        static_cast<double>(selected.size()));
  return 0;
}
