// Emulated closed-loop real-time fMRI session (paper Fig 1 and SS5.2.2).
//
// Phase 1 (localizer): the subject in the scanner produces labeled epochs;
// after acquisition, FCMA voxel selection runs on that subject's data alone
// and a feedback classifier is trained on the selected voxels' correlation
// patterns.
//
// Phase 2 (feedback): new epochs stream in one at a time; each is
// classified within milliseconds and "feedback" (the decision value) is
// emitted — the latency budget the paper's 96-node selection time (~3 s)
// plus this per-epoch path must fit is the scanner's 1-2 s TR.
//
// Build & run:  ./build/examples/realtime_feedback
#include <cstdio>

#include "common/timer.hpp"
#include "fcma/offline.hpp"
#include "fcma/online.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "linalg/opt.hpp"
#include "stats/normalization.hpp"

int main() {
  using namespace fcma;

  // One scanning session: 64 labeled epochs for the subject being scanned
  // (subject 0); a second synthetic subject exists but is never touched.
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = 384;
  spec.informative = 32;
  spec.subjects = 2;
  spec.epochs_total = 128;
  const fmri::Dataset session = fmri::generate_synthetic(spec);
  const auto subject_epochs = session.epochs_of_subject(0);
  const std::size_t localizer_count = subject_epochs.size() * 3 / 4;

  // ---- Phase 1: voxel selection on the localizer prefix ----------------
  std::printf("phase 1: localizer with %zu epochs, selecting voxels...\n",
              localizer_count);
  // Build a localizer-only dataset view by restricting the epoch list.
  const std::vector<std::size_t> localizer(
      subject_epochs.begin(),
      subject_epochs.begin() + static_cast<long>(localizer_count));
  const fmri::NormalizedEpochs loc_epochs =
      fmri::normalize_epochs(session, localizer);
  const auto folds = core::kfold_groups(loc_epochs.meta.size(), 4);
  core::PipelineConfig pipeline = core::PipelineConfig::optimized();
  pipeline.cv_folds = &folds;

  WallTimer select_timer;
  core::Scoreboard board(session.voxels());
  const core::VoxelTask all{0,
                            static_cast<std::uint32_t>(session.voxels())};
  board.add(core::run_task(loc_epochs, all, pipeline));
  const auto selected = board.top_voxels(24);
  std::printf("  selected %zu voxels in %.2f s (mean CV accuracy of "
              "selection run: top voxel %.2f)\n",
              selected.size(), select_timer.seconds(),
              board.ranked().front().accuracy);

  // Train the feedback classifier on the localizer epochs.
  linalg::Matrix features =
      core::selected_correlation_features(loc_epochs, selected);
  stats::fisher_zscore_block(features.row(0), features.rows(),
                             features.cols(), features.ld());
  linalg::Matrix gram(features.rows(), features.rows());
  linalg::opt::syrk(features.view(), gram.view());
  std::vector<std::int8_t> labels(loc_epochs.meta.size());
  std::vector<std::size_t> train_idx(loc_epochs.meta.size());
  for (std::size_t e = 0; e < loc_epochs.meta.size(); ++e) {
    labels[e] = loc_epochs.meta[e].label == 1 ? 1 : -1;
    train_idx[e] = e;
  }
  const svm::Model classifier = svm::phisvm_train(
      gram.view(), labels, train_idx, svm::TrainOptions{});
  std::printf("  classifier trained: %zu support vectors\n\n",
              classifier.support_vectors());

  // ---- Phase 2: stream the remaining epochs as "live" volumes ----------
  std::printf("phase 2: streaming %zu feedback epochs\n",
              subject_epochs.size() - localizer_count);
  std::size_t correct = 0;
  std::size_t total = 0;
  double worst_latency_ms = 0.0;
  for (std::size_t idx = localizer_count; idx < subject_epochs.size();
       ++idx) {
    WallTimer epoch_timer;
    // The incoming epoch: normalize, compute selected-voxel correlations,
    // evaluate the kernel against the training set, classify.
    const fmri::NormalizedEpochs incoming =
        fmri::normalize_epochs(session, {subject_epochs[idx]});
    const linalg::Matrix f =
        core::selected_correlation_features(incoming, selected);
    // Kernel row against every training epoch.
    double decision = -classifier.rho;
    for (std::size_t e = 0; e < features.rows(); ++e) {
      double dot = 0.0;
      for (std::size_t d = 0; d < f.cols(); ++d) {
        dot += static_cast<double>(f(0, d)) * features(e, d);
      }
      decision += classifier.alpha_y[e] * dot;
    }
    const int predicted = decision >= 0.0 ? 1 : 0;
    const int actual = session.epochs()[subject_epochs[idx]].label;
    correct += (predicted == actual);
    ++total;
    const double ms = epoch_timer.millis();
    worst_latency_ms = std::max(worst_latency_ms, ms);
    std::printf("  epoch %3zu: decision %+7.3f -> condition %d (true %d) "
                "[%.2f ms]\n",
                idx, decision, predicted, actual, ms);
  }
  std::printf("\nfeedback accuracy: %zu/%zu (%.0f%%), worst per-epoch "
              "latency %.2f ms (TR budget: 1500 ms)\n",
              correct, total, 100.0 * correct / total, worst_latency_ms);
  return 0;
}
