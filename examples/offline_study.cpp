// Offline study: the paper's SS5.2.1 protocol on a synthetic face-scene-like
// dataset — nested leave-one-subject-out cross-validation with per-fold
// voxel selection and a final classifier tested on the held-out subject.
//
// Build & run:  ./build/examples/offline_study [--voxels N] [--subjects S]
#include <cstdio>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "fcma/offline.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace fcma;
  Cli cli("offline_study", "nested LOSO FCMA study on synthetic data");
  cli.add_flag("voxels", "512", "brain size");
  cli.add_flag("subjects", "8", "subject count");
  cli.add_flag("top-k", "16", "voxels selected per fold");
  if (!cli.parse(argc, argv)) return 0;

  fmri::DatasetSpec spec =
      fmri::face_scene_spec()
          .scaled_subjects(static_cast<std::int32_t>(cli.get_int("subjects")))
          .scaled_voxels(static_cast<double>(cli.get_int("voxels")) / 34470.0);
  std::printf("dataset: %zu voxels, %d subjects, %zu epochs, %zu planted\n",
              spec.voxels, spec.subjects, spec.epochs_total,
              spec.informative);
  const fmri::Dataset dataset = fmri::generate_synthetic(spec);

  core::OfflineOptions options;
  options.top_k = static_cast<std::size_t>(cli.get_int("top-k"));
  WallTimer timer;
  const core::OfflineResult result =
      core::run_offline_analysis(dataset, options);
  std::printf("nested LOSO (%d folds) finished in %.1f s\n\n",
              dataset.subjects(), timer.seconds());

  std::printf("fold | held-out | selected-voxel CV acc | test acc\n");
  for (const core::FoldResult& fold : result.folds) {
    std::printf("%4d | %8d | %21.3f | %.3f\n", fold.left_out_subject,
                fold.left_out_subject, fold.mean_selected_cv_accuracy,
                fold.test_accuracy);
  }
  std::printf("\nmean held-out accuracy: %.3f (chance = 0.5)\n",
              result.mean_test_accuracy());

  const auto reliable =
      result.reliable_voxels(result.folds.size(), dataset.voxels());
  std::size_t hits = 0;
  for (const std::uint32_t v : reliable) {
    for (const std::uint32_t t : dataset.informative_voxels()) {
      if (t == v) {
        ++hits;
        break;
      }
    }
  }
  std::printf("reliable ROIs (selected in every fold): %zu, of which %zu "
              "are planted informative voxels\n",
              reliable.size(), hits);
  return 0;
}
