// Ablation: the kernel-matrix reduction's memory effect (paper SS4.4).
//
// Prints the memory model's task-size limits for both datasets (the numbers
// behind the baseline's 120/60-voxel caps and the optimized 240+), and
// measures the grouped pipeline's peak correlation-buffer footprint against
// the monolithic one on a scaled workload.
#include "bench_common.hpp"
#include "fcma/memory_model.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_ablation_memory",
          "memory regimes: correlation data vs kernel-matrix reduction");
  cli.add_flag("group", "8", "voxels in flight in the grouped pipeline");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Ablation: device-memory regimes (SS3.3.3 / SS4.4 / SS5.4.1)");
  Table t("task-size limits on the modeled 6GB coprocessor");
  t.header({"dataset", "corr MB/voxel", "kernel KB/voxel", "baseline max",
            "optimized max", "paper assignment"});
  for (const auto& spec :
       {fmri::face_scene_spec(), fmri::attention_spec()}) {
    const std::size_t m = spec.epochs_total;
    const std::size_t n = spec.voxels;
    t.row({spec.name,
           Table::num(static_cast<double>(core::corr_bytes_per_voxel(m, n)) /
                          (1024.0 * 1024.0),
                      1),
           Table::num(static_cast<double>(core::kernel_bytes_per_voxel(m)) /
                          1024.0,
                      1),
           Table::count(static_cast<long long>(core::baseline_max_voxels(
               m, n, core::kPhiAvailableBytes))),
           Table::count(static_cast<long long>(core::optimized_max_voxels(
               m, n, core::kPhiAvailableBytes))),
           spec.name == "face-scene" ? "120 (base) / 240 (opt)"
                                     : "60 (base) / 240 (opt)"});
  }
  t.print();

  // Peak working set of the two pipeline drivers for a 240-voxel task.
  const std::size_t group =
      static_cast<std::size_t>(cli.get_int("group"));
  Table w("peak correlation working set for a 240-voxel task (GB)");
  w.header({"dataset", "monolithic run_task", "grouped (g=" +
                                                  std::to_string(group) +
                                                  ")", "+ kernels"});
  for (const auto& spec :
       {fmri::face_scene_spec(), fmri::attention_spec()}) {
    const double per_voxel = static_cast<double>(
        core::corr_bytes_per_voxel(spec.epochs_total, spec.voxels));
    const double kernels =
        240.0 * static_cast<double>(
                    core::kernel_bytes_per_voxel(spec.epochs_total));
    const double gb = 1024.0 * 1024.0 * 1024.0;
    w.row({spec.name, Table::num(240.0 * per_voxel / gb, 2),
           Table::num(static_cast<double>(group) * per_voxel / gb, 3),
           Table::num((static_cast<double>(group) * per_voxel + kernels) / gb,
                      3)});
  }
  w.print();
  std::printf("\nthe grouped pipeline (core::run_task_grouped) realizes the "
              "optimized column;\nits results are bit-equivalent to the "
              "monolithic driver (test_report.cpp).\n");
  return 0;
}
