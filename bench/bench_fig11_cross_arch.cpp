// Reproduces Fig 11: baseline and optimized implementations compared across
// the Xeon E5-2670 processor and the Xeon Phi 5110P coprocessor, for both
// datasets, normalized to the E5-2670 baseline.
//
// Paper shape: on both datasets the optimized coprocessor implementation is
// the fastest configuration; the baseline on the coprocessor is *not*
// clearly better than the processor (the coprocessor punishes unoptimized
// code).
#include "bench_common.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_fig11_cross_arch",
          "Fig 11: processor vs coprocessor, baseline and optimized");
  cli.add_flag("voxels", "4096", "scaled brain size for calibration");
  cli.add_flag("subjects", "6", "scaled subject count for calibration");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Fig 11 reproduction: cross-architecture comparison");
  for (const auto& paper :
       {fmri::face_scene_spec(), fmri::attention_spec()}) {
    const bench::Workload w = bench::make_workload(
        paper, static_cast<std::size_t>(cli.get_int("voxels")),
        static_cast<std::int32_t>(cli.get_int("subjects")));

    struct Config {
      const char* label;
      core::PipelineConfig pipeline;
      archsim::ArchModel arch;
      memsim::Machine machine;
      unsigned lanes;
      std::size_t task;
      int threads;
    };
    const std::size_t base_task = paper.name == "face-scene" ? 120 : 60;
    const Config configs[] = {
        {"E5-2670 baseline", core::PipelineConfig::baseline(),
         archsim::XeonE5_2670(), memsim::Machine::kXeonE5_2670, 8, base_task,
         16},
        {"E5-2670 optimized", core::PipelineConfig::optimized(),
         archsim::XeonE5_2670(), memsim::Machine::kXeonE5_2670, 8, base_task,
         16},
        {"Phi 5110P baseline", core::PipelineConfig::baseline(),
         archsim::Phi5110P(), memsim::Machine::kPhi5110P, 16, base_task,
         static_cast<int>(base_task)},
        {"Phi 5110P optimized", core::PipelineConfig::optimized(),
         archsim::Phi5110P(), memsim::Machine::kPhi5110P, 16, 240, 240},
    };

    double reference_pv = 0.0;
    Table t("Fig 11 (" + paper.name +
            "): relative performance, E5-2670 baseline = 1");
    t.header({"configuration", "ms/voxel", "relative performance"});
    for (const Config& c : configs) {
      const auto cost = bench::calibrate(w, c.pipeline, 8, c.lanes,
                                         c.machine);
      const auto dims = bench::paper_dims(paper, c.task);
      const double pv = cost.task_seconds(dims, c.arch, c.threads) /
                        static_cast<double>(c.task) * 1e3;
      if (reference_pv == 0.0) reference_pv = pv;
      t.row({c.label, Table::num(pv, 1), Table::num(reference_pv / pv, 2)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
