// Reproduces Table 4: elapsed time of online (single-subject) voxel
// selection as a function of coprocessor count.  The workload is tiny, so
// scaling saturates early on communication overheads — the paper's point is
// that 96 nodes still select voxels within ~3 seconds, fast enough to close
// the real-time feedback loop.
//
// Paper values (seconds): face-scene 12.00 at 1 node -> 2.21 at 96;
//                         attention 16.50 at 1 node -> 2.51 at 96.
#include "bench_common.hpp"
#include "cluster/sim.hpp"
#include "fcma/task.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_table4_online_scaling",
          "Table 4: online voxel-selection scaling across coprocessors");
  cli.add_flag("voxels", "1024", "scaled brain size for calibration");
  cli.add_flag("task-size", "240", "voxels per task");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Table 4 reproduction: online voxel selection time vs node count");
  const auto arch = archsim::Phi5110P();
  const std::size_t task_size =
      static_cast<std::size_t>(cli.get_int("task-size"));
  const std::size_t node_counts[] = {1, 8, 16, 32, 64, 96};
  const struct {
    fmri::DatasetSpec paper;
    const char* paper_1;
    const char* paper_96;
  } datasets[] = {
      {fmri::face_scene_spec(), "12.00", "2.21"},
      {fmri::attention_spec(), "16.50", "2.51"},
  };

  Table t("Table 4: online voxel-selection elapsed time (s)");
  t.header({"dataset", "1", "8", "16", "32", "64", "96", "paper 1 node",
            "paper 96"});
  for (const auto& ds : datasets) {
    // Calibrate on a single-subject-like workload: few epochs, k-fold CV.
    bench::Workload w = bench::make_workload(
        ds.paper, static_cast<std::size_t>(cli.get_int("voxels")), 2);
    const auto cost =
        bench::calibrate(w, core::PipelineConfig::optimized());

    // Online dims: one subject's epochs, 4 pseudo-folds.
    const std::size_t eps =
        ds.paper.epochs_total / static_cast<std::size_t>(ds.paper.subjects);
    cluster::TaskDims dims = bench::paper_dims(ds.paper, task_size);
    dims.epochs = eps;
    dims.subjects = 4;  // k-fold groups play the role of subjects
    const auto tasks = core::partition_voxels(ds.paper.voxels, task_size);
    std::vector<double> task_seconds;
    for (const auto& task : tasks) {
      cluster::TaskDims d = dims;
      d.task_voxels = task.count;
      task_seconds.push_back(cost.task_seconds(d, arch, 240));
    }

    cluster::FarmConfig farm;
    farm.fold_overhead_s = 2.0;  // serial master work per fold (see sim.hpp)
    // Only the scanned subject's data is broadcast in the online setting.
    farm.broadcast_bytes = static_cast<double>(ds.paper.voxels) *
                           static_cast<double>(eps * ds.paper.epoch_length) *
                           4.0;
    farm.result_bytes = static_cast<double>(task_size) * 8.0;
    farm.task_overhead_s = 5e-3;  // per-task startup is visible at this scale
    std::vector<std::string> row{ds.paper.name};
    for (const std::size_t nodes : node_counts) {
      farm.workers = nodes;
      const auto outcome = cluster::simulate_task_farm(farm, task_seconds, 1);
      row.push_back(Table::num(outcome.makespan_s, 2));
    }
    row.push_back(ds.paper_1);
    row.push_back(ds.paper_96);
    t.row(row);
  }
  t.print();
  return 0;
}
