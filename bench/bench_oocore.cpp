// Out-of-core data-plane proof (PR 8): runs the same analysis twice over a
// shard store larger than the memory budget — once fully resident, once
// streamed through StreamedEpochs under plan_residency — and checks two
// claims machine-verifiably:
//
//   1. the streamed run's peak RSS (VmHWM) stays under --memory-budget,
//   2. the streamed per-voxel accuracies are byte-identical to resident.
//
// VmHWM is a per-process high-water mark, so each phase re-execs this
// binary (--phase generate|resident|streamed); the parent orchestrates,
// byte-compares the reports, and publishes oocore/* gauges to the metrics
// sidecar for bench_smoke.sh.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "fcma/epoch_source.hpp"
#include "fcma/memory_model.hpp"
#include "fmri/dataset_view.hpp"
#include "fmri/shard_store.hpp"

using namespace fcma;

namespace {

// Peak resident set of this process in bytes (VmHWM of /proc/self/status).
std::size_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(
                 std::strtoull(line.c_str() + 6, nullptr, 10)) *
             1024;
    }
  }
  return 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_accuracies(const std::string& path,
                      const std::vector<double>& accuracy) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(accuracy.data()),
            static_cast<std::streamsize>(accuracy.size() * sizeof(double)));
}

// One "key=value" stats line per phase, parsed back by the parent.
void write_stat(std::ofstream& out, const std::string& key, double value) {
  out << key << "=" << value << "\n";
}

double read_stat(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key + "=", 0) == 0) {
      return std::strtod(line.c_str() + key.size() + 1, nullptr);
    }
  }
  return 0.0;
}

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  FCMA_CHECK(n > 0, "cannot resolve /proc/self/exe");
  buf[n] = '\0';
  return buf;
}

int run_phase(const std::string& exe, const std::string& phase,
              const std::string& passthrough) {
  const std::string cmd = exe + " --phase " + phase + " " + passthrough;
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

struct PhaseArgs {
  std::string dir;
  std::size_t voxels = 0;
  std::int32_t subjects = 0;
  std::size_t task_voxels = 0;
  std::size_t budget = 0;
  unsigned threads = 0;
};

int phase_generate(const PhaseArgs& a) {
  fmri::DatasetSpec spec = fmri::face_scene_spec();
  spec = spec.scaled_subjects(a.subjects);
  spec = spec.scaled_voxels(static_cast<double>(a.voxels) /
                            static_cast<double>(spec.voxels));
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  fmri::write_shard_store(a.dir + "/store", d);
  const double raw_mb =
      static_cast<double>(d.voxels() * d.epochs().size() *
                          static_cast<std::size_t>(d.epochs().front().length) *
                          sizeof(float)) /
      (1024.0 * 1024.0);
  std::ofstream stats(a.dir + "/generate.stats");
  write_stat(stats, "raw_mb", raw_mb);
  std::printf("generated %zu voxels x %zu epochs (%.1f MB raw panels)\n",
              d.voxels(), d.epochs().size(), raw_mb);
  return 0;
}

int phase_resident(const PhaseArgs& a) {
  WallTimer timer;
  const auto view = fmri::open_shard_store(a.dir + "/store", "store");
  const fmri::NormalizedEpochs norm = fmri::normalize_epochs(*view);
  threading::ThreadPool pool(a.threads);
  core::PipelineConfig config = core::PipelineConfig::optimized();
  config.pool = &pool;
  const core::VoxelTask task{0, static_cast<std::uint32_t>(a.task_voxels)};
  const core::TaskResult result = core::run_task_grouped(norm, task, config,
                                                         /*group_voxels=*/32);
  write_accuracies(a.dir + "/resident.acc", result.accuracy);
  std::ofstream stats(a.dir + "/resident.stats");
  write_stat(stats, "wall_s", timer.seconds());
  write_stat(stats, "peak_rss_mb",
             static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));
  return 0;
}

int phase_streamed(const PhaseArgs& a) {
  WallTimer timer;
  trace::set_enabled(true);
  const auto view = fmri::open_shard_store(a.dir + "/store", "store");
  const core::BudgetPlan plan = core::plan_residency(
      view->epochs().size(), view->epochs_per_subject(), view->voxels(),
      static_cast<std::size_t>(view->epochs().front().length), a.budget);
  threading::ThreadPool pool(a.threads);
  core::PipelineConfig config = core::PipelineConfig::optimized();
  core::StreamedEpochs source(*view,
                              {plan.panel_cache_bytes, &pool});
  std::vector<double> accuracy(a.task_voxels, 0.0);
  // Tasks run serially (the pool only drives prefetch + stage 3), so one
  // plan-sized correlation buffer is live at a time — the accounting the
  // residency plan assumes.
  config.pool = &pool;
  std::size_t first = 0;
  while (first < a.task_voxels) {
    const std::size_t count =
        std::min(plan.voxels_per_task, a.task_voxels - first);
    const core::VoxelTask task{static_cast<std::uint32_t>(first),
                               static_cast<std::uint32_t>(count)};
    const core::TaskResult part =
        core::run_task_grouped(source, task, config, plan.group_voxels);
    std::memcpy(accuracy.data() + first, part.accuracy.data(),
                count * sizeof(double));
    first += count;
  }
  write_accuracies(a.dir + "/streamed.acc", accuracy);

  trace::flush();
  const auto& reg = trace::global();
  const std::size_t peak = peak_rss_bytes();
  std::ofstream stats(a.dir + "/streamed.stats");
  write_stat(stats, "wall_s", timer.seconds());
  write_stat(stats, "peak_rss_mb",
             static_cast<double>(peak) / (1024.0 * 1024.0));
  write_stat(stats, "shard_loads",
             static_cast<double>(reg.counter("io/shard_loads")));
  write_stat(stats, "bytes_mapped",
             static_cast<double>(reg.counter("io/bytes_mapped")));
  write_stat(stats, "prefetch_hits",
             static_cast<double>(reg.counter("io/prefetch_hits")));
  write_stat(stats, "stall_s", reg.gauge("io/stall_s"));
  if (peak > a.budget) {
    std::fprintf(stderr,
                 "FAIL: streamed peak RSS %.1f MB exceeds budget %.1f MB\n",
                 static_cast<double>(peak) / (1024.0 * 1024.0),
                 static_cast<double>(a.budget) / (1024.0 * 1024.0));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_oocore",
          "out-of-core proof: streamed run under --memory-budget, "
          "byte-identical to resident");
  cli.add_flag("phase", "", "internal: generate|resident|streamed");
  cli.add_flag("dir", "", "working directory (default: a fresh temp dir)");
  cli.add_flag("voxels", "16384", "brain size (raw panels must exceed budget)");
  cli.add_flag("subjects", "10", "subject count");
  cli.add_flag("task", "96", "voxels to score");
  cli.add_flag("memory-budget-mb", "80", "streamed-phase budget (MB)");
  cli.add_flag("threads", "2", "pool threads (prefetch + stage 3)");
  if (!cli.parse(argc, argv)) return 0;

  PhaseArgs a;
  a.voxels = static_cast<std::size_t>(cli.get_int("voxels"));
  a.subjects = static_cast<std::int32_t>(cli.get_int("subjects"));
  a.task_voxels = static_cast<std::size_t>(cli.get_int("task"));
  a.budget = static_cast<std::size_t>(cli.get_int("memory-budget-mb")) << 20;
  a.threads = static_cast<unsigned>(cli.get_int("threads"));
  a.dir = cli.get("dir");

  const std::string phase = cli.get("phase");
  if (!phase.empty()) {
    FCMA_CHECK(!a.dir.empty(), "--phase requires --dir");
    if (phase == "generate") return phase_generate(a);
    if (phase == "resident") return phase_resident(a);
    if (phase == "streamed") return phase_streamed(a);
    std::fprintf(stderr, "unknown phase: %s\n", phase.c_str());
    return 2;
  }

  // Parent: orchestrate the three phases in child processes so each gets
  // its own VmHWM, then compare and publish.
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  bool own_dir = false;
  if (a.dir.empty()) {
    a.dir = (std::filesystem::temp_directory_path() /
             ("fcma_oocore_" + std::to_string(::getpid())))
                .string();
    std::filesystem::create_directories(a.dir);
    own_dir = true;
  }
  std::ostringstream pass;
  pass << "--dir " << a.dir << " --voxels " << a.voxels << " --subjects "
       << a.subjects << " --task " << a.task_voxels << " --memory-budget-mb "
       << (a.budget >> 20) << " --threads " << a.threads;

  const std::string exe = self_exe();
  bench::print_preamble(
      "Out-of-core data plane: streamed vs resident over one shard store");
  int rc = run_phase(exe, "generate", pass.str());
  if (rc == 0) {
    // The claim is only meaningful out of core: the dataset must not fit.
    const double raw_mb = read_stat(a.dir + "/generate.stats", "raw_mb");
    FCMA_CHECK(raw_mb * 1024.0 * 1024.0 > static_cast<double>(a.budget),
               "dataset smaller than the budget -- raise --voxels/--subjects");
  }
  if (rc == 0) rc = run_phase(exe, "resident", pass.str());
  if (rc == 0) rc = run_phase(exe, "streamed", pass.str());
  FCMA_CHECK(rc == 0, "a bench phase failed (exit " + std::to_string(rc) +
                          ") -- see stderr above");

  const std::string res = read_file(a.dir + "/resident.acc");
  const std::string str = read_file(a.dir + "/streamed.acc");
  const bool identical = !res.empty() && res == str;
  const double res_wall = read_stat(a.dir + "/resident.stats", "wall_s");
  const double str_wall = read_stat(a.dir + "/streamed.stats", "wall_s");
  const double res_rss = read_stat(a.dir + "/resident.stats", "peak_rss_mb");
  const double str_rss = read_stat(a.dir + "/streamed.stats", "peak_rss_mb");
  const double budget_mb = static_cast<double>(a.budget) / (1024.0 * 1024.0);
  const double slowdown = res_wall > 0.0 ? str_wall / res_wall : 0.0;

  Table t("streamed vs resident");
  t.header({"metric", "resident", "streamed"});
  t.row({"wall (s)", Table::num(res_wall, 2), Table::num(str_wall, 2)});
  t.row({"peak RSS (MB)", Table::num(res_rss, 1), Table::num(str_rss, 1)});
  t.row({"within budget (" + Table::num(budget_mb, 0) + " MB)", "-",
         str_rss <= budget_mb ? "yes" : "NO"});
  t.row({"reports identical", "-", identical ? "yes" : "NO"});
  t.print();

  Table io("streamed-phase io counters");
  io.header({"counter", "value"});
  io.row({"io/shard_loads", Table::num(read_stat(a.dir + "/streamed.stats",
                                                 "shard_loads"), 0)});
  io.row({"io/bytes_mapped", Table::num(read_stat(a.dir + "/streamed.stats",
                                                  "bytes_mapped"), 0)});
  io.row({"io/prefetch_hits", Table::num(read_stat(a.dir + "/streamed.stats",
                                                   "prefetch_hits"), 0)});
  io.row({"io/stall_s", Table::num(read_stat(a.dir + "/streamed.stats",
                                             "stall_s"), 3)});
  io.print();

  trace::gauge_set("oocore/budget_mb", budget_mb);
  trace::gauge_set("oocore/streamed_peak_rss_mb", str_rss);
  trace::gauge_set("oocore/resident_peak_rss_mb", res_rss);
  trace::gauge_set("oocore/streamed_wall_s", str_wall);
  trace::gauge_set("oocore/resident_wall_s", res_wall);
  trace::gauge_set("oocore/streamed_slowdown", slowdown);
  trace::gauge_set("oocore/within_budget", str_rss <= budget_mb ? 1.0 : 0.0);
  trace::gauge_set("oocore/reports_identical", identical ? 1.0 : 0.0);

  if (own_dir) std::filesystem::remove_all(a.dir);
  FCMA_CHECK(identical, "streamed report differs from resident");
  FCMA_CHECK(str_rss <= budget_mb, "streamed run exceeded the memory budget");
  std::printf("streamed run stayed under %.0f MB and matched resident "
              "bit-for-bit (%.1fx wall)\n", budget_mb, slowdown);
  return 0;
}
