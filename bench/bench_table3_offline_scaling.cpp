// Reproduces Table 3: elapsed time of the offline (nested leave-one-
// subject-out) analysis as a function of coprocessor count, for both
// datasets, on the virtual-time cluster simulator.
//
// Paper values (seconds):
//   face-scene: 5101 / 694 / 385 / 242 / 124 / 85   at 1/8/16/32/64/96
//   attention: 54506 / 6813 / 3620 / 2172 / 1099 / 741
#include "bench_common.hpp"
#include "cluster/sim.hpp"
#include "fcma/task.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_table3_offline_scaling",
          "Table 3: offline analysis scaling across coprocessors");
  cli.add_flag("voxels", "1024", "scaled brain size for calibration");
  cli.add_flag("subjects", "6", "scaled subject count for calibration");
  cli.add_flag("task-size", "0",
               "voxels per task (0 = the paper's per-dataset assignment: 120 "
               "for face-scene, 60 for attention)");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Table 3 reproduction: offline analysis elapsed time vs node count");
  const auto arch = archsim::Phi5110P();
  const std::size_t task_size_flag =
      static_cast<std::size_t>(cli.get_int("task-size"));
  const std::size_t node_counts[] = {1, 8, 16, 32, 64, 96};
  const struct {
    fmri::DatasetSpec paper;
    const char* paper_row;
  } datasets[] = {
      {fmri::face_scene_spec(), "5101 / 694 / 385 / 242 / 124 / 85"},
      {fmri::attention_spec(), "54506 / 6813 / 3620 / 2172 / 1099 / 741"},
  };

  Table t("Table 3: offline analysis elapsed time (s) on the virtual "
          "cluster");
  t.header({"dataset", "1", "8", "16", "32", "64", "96", "paper row"});
  for (const auto& ds : datasets) {
    const bench::Workload w = bench::make_workload(
        ds.paper, static_cast<std::size_t>(cli.get_int("voxels")),
        static_cast<std::int32_t>(cli.get_int("subjects")));
    const auto cost =
        bench::calibrate(w, core::PipelineConfig::optimized());
    const std::size_t task_size =
        task_size_flag != 0 ? task_size_flag
                            : (ds.paper.name == "face-scene" ? 120 : 60);

    // Each outer fold selects voxels with the remaining S-1 subjects:
    // M_train epochs per analysis, every brain voxel covered by tasks.
    const std::size_t s = static_cast<std::size_t>(ds.paper.subjects);
    const std::size_t m_train =
        ds.paper.epochs_total / s * (s - 1);
    cluster::TaskDims dims = bench::paper_dims(ds.paper, task_size);
    dims.epochs = m_train;
    dims.subjects = ds.paper.subjects - 1;
    const auto tasks =
        core::partition_voxels(ds.paper.voxels, task_size);
    std::vector<double> task_seconds;
    for (const auto& task : tasks) {
      cluster::TaskDims d = dims;
      d.task_voxels = task.count;
      task_seconds.push_back(cost.task_seconds(d, arch, 240));
    }

    cluster::FarmConfig farm;
    farm.fold_overhead_s = 1.0;  // serial master work per fold (see sim.hpp)
    farm.broadcast_bytes =
        static_cast<double>(ds.paper.voxels) *
        static_cast<double>(ds.paper.epochs_total * ds.paper.epoch_length) *
        4.0;
    farm.result_bytes = static_cast<double>(task_size) * 8.0;
    std::vector<std::string> row{ds.paper.name};
    for (const std::size_t nodes : node_counts) {
      farm.workers = nodes;
      const auto outcome =
          cluster::simulate_task_farm(farm, task_seconds, s);
      row.push_back(Table::num(outcome.makespan_s, 0));
    }
    row.push_back(ds.paper_row);
    t.row(row);
  }
  t.print();
  return 0;
}
