// Ablation: how the gemm panel width and the syrk panel depth affect the
// kernels.  DESIGN.md calls out the blocking parameters (512-column gemm
// panels, 96-deep syrk panels) as the load-bearing choices of optimization
// idea #1; this bench sweeps them on the host CPU (wall clock) and through
// the cache simulator (Phi L2 misses).
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "linalg/opt.hpp"
#include "linalg/reference.hpp"

using namespace fcma;

namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  linalg::Matrix m(r, c);
  Rng rng(seed);
  for (auto& v : m.flat()) v = rng.uniform(-1.0f, 1.0f);
  return m;
}

// Panel-width-parameterized gemm built from the public panel primitives.
double gemm_with_panel(const linalg::Matrix& a, const linalg::Matrix& b,
                       linalg::Matrix& c, std::size_t panel,
                       int repeats) {
  std::vector<float> bt(a.cols() * panel);
  WallTimer timer;
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t j0 = 0; j0 < b.rows(); j0 += panel) {
      const std::size_t j1 = std::min(b.rows(), j0 + panel);
      linalg::opt::pack_bt_panel(b.view(), j0, j1, bt.data());
      for (std::size_t i = 0; i < a.rows(); ++i) {
        linalg::opt::gemm_row_panel(a.row(i), a.cols(), bt.data(), j1 - j0,
                                    c.row(i) + j0);
      }
    }
  }
  return timer.millis() / repeats;
}

// Best-of-repeats wall milliseconds of `fn` (steadier than the mean on a
// shared machine; one extra warm-up call first).
template <typename Fn>
double best_ms(Fn&& fn, int repeats) {
  fn();
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const WallTimer timer;
    fn();
    const double ms = timer.millis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

std::string gemm_geo_str(const linalg::tune::GemmGeometry& g) {
  return "panel_cols=" + std::to_string(g.panel_cols) +
         ",unroll=" + std::to_string(g.unroll);
}

std::string syrk_geo_str(const linalg::tune::SyrkGeometry& g) {
  return "panel_k=" + std::to_string(g.panel_k) +
         ",micro_rows=" + std::to_string(g.micro_rows);
}

// Fraction of the fixed-vs-best gap the tuned pick closed: 100 means the
// tuner matched the measured best, 0 means it did no better than the fixed
// default.  Two guards keep wall-clock jitter from dominating: a gap under
// 5% of the fixed time means every candidate ties on this shape (the
// default already wins — count it as fully recovered rather than divide
// by noise), and the result is clamped to [-100, 100] so one jittery
// shape cannot swamp the mean.
double recovered_pct(double fixed_ms, double best, double tuned_ms) {
  const double gap = fixed_ms - best;
  if (gap <= 0.05 * fixed_ms) return 100.0;
  return std::clamp((fixed_ms - tuned_ms) / gap * 100.0, -100.0, 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_ablation_block_size",
          "ablation: blocking parameter sweeps for the optimized kernels");
  cli.add_flag("voxels", "8192", "brain size N for the gemm sweep");
  cli.add_flag("rows", "64", "task voxels V");
  cli.add_flag("repeats", "5", "wall-clock repetitions");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble("Ablation: gemm panel width (idea #1 block sizing)");
  const auto n = static_cast<std::size_t>(cli.get_int("voxels"));
  const auto v = static_cast<std::size_t>(cli.get_int("rows"));
  const int repeats = static_cast<int>(cli.get_int("repeats"));

  const linalg::Matrix a = random_matrix(v, 12, 1);
  const linalg::Matrix b = random_matrix(n, 12, 2);
  linalg::Matrix c(v, n);
  linalg::Matrix want(v, n);
  linalg::reference::gemm_nt(a.view(), b.view(), want.view());

  Table t("gemm panel width sweep (host wall clock; default panel = 512)");
  t.header({"panel cols", "host ms", "GFLOP/s (host)", "max |err|"});
  const double gflop =
      2.0 * static_cast<double>(v) * static_cast<double>(n) * 12.0 / 1e9;
  for (const std::size_t panel : {64u, 128u, 256u, 512u, 1024u, 4096u}) {
    const double ms = gemm_with_panel(a, b, c, panel, repeats);
    t.row({Table::count(static_cast<long long>(panel)), Table::num(ms, 2),
           Table::num(gflop / (ms / 1e3), 1),
           Table::num(linalg::reference::max_abs_diff(want.view(), c.view()),
                      5)});
  }
  t.print();

  // Syrk micro-tile behaviour vs problem size: wall clock of the production
  // kernel against the baseline shape sensitivity (M sweep).
  Table s("syrk host wall clock vs M (N = 4096; panel depth fixed at 96)");
  s.header({"M (epochs)", "opt ms", "GFLOP/s (host)"});
  for (const std::size_t m : {96u, 204u, 408u, 540u}) {
    const linalg::Matrix d = random_matrix(m, 4096, 3);
    linalg::Matrix k(m, m);
    WallTimer timer;
    for (int r = 0; r < repeats; ++r) linalg::opt::syrk(d.view(), k.view());
    const double ms = timer.millis() / repeats;
    const double g =
        2.0 * static_cast<double>(m) * m * 4096.0 / 2.0 / 1e9;
    s.row({Table::count(static_cast<long long>(m)), Table::num(ms, 2),
           Table::num(g / (ms / 1e3), 1)});
  }
  s.print();

  // Autotune vs fixed geometry: for shapes away from the tuned-for default,
  // time every candidate, the fixed default, and the tuner's pick.  The
  // `autotune ...` / `autotune_summary ...` lines are parsed by
  // bench_smoke.sh into the sidecar's tune section.
  Table at("autotune vs fixed geometry (gap recovered toward measured best)");
  at.header({"kernel", "shape", "fixed ms", "best ms", "tuned ms",
             "tuned geometry", "recovered %"});
  double rec_sum = 0.0;
  double rec_min = 1e300;
  int rec_n = 0;
  auto note = [&](double rec) {
    rec_sum += rec;
    rec_min = std::min(rec_min, rec);
    ++rec_n;
  };

  const struct {
    std::size_t v, n;
  } gemm_shapes[] = {{16, 24576}, {64, 8192}, {256, 2048}};
  for (const auto& shape : gemm_shapes) {
    const linalg::Matrix ga = random_matrix(shape.v, 12, 4);
    const linalg::Matrix gb = random_matrix(shape.n, 12, 5);
    linalg::Matrix gc(shape.v, shape.n);
    double fixed_ms = 0.0;
    double best = 1e300;
    linalg::tune::GemmGeometry best_geo;
    for (const auto& geo : linalg::tune::gemm_candidates()) {
      const double ms = best_ms(
          [&] { linalg::opt::gemm_nt_with(ga.view(), gb.view(), gc.view(),
                                          geo); },
          repeats);
      if (geo == linalg::tune::GemmGeometry{}) fixed_ms = ms;
      if (ms < best) {
        best = ms;
        best_geo = geo;
      }
    }
    // Resolve the plan before timing so a first-use probe stays outside
    // the timed region (as it is in production: probe once, then reuse).
    const auto tuned_geo =
        linalg::tune::gemm_plan(shape.v, shape.n, 12);
    const double tuned_ms = best_ms(
        [&] { linalg::opt::gemm_nt_with(ga.view(), gb.view(), gc.view(),
                                        tuned_geo); },
        repeats);
    const double rec = recovered_pct(fixed_ms, best, tuned_ms);
    note(rec);
    const std::string shape_str =
        std::to_string(shape.v) + "x" + std::to_string(shape.n);
    at.row({"gemm", shape_str, Table::num(fixed_ms, 3), Table::num(best, 3),
            Table::num(tuned_ms, 3), gemm_geo_str(tuned_geo),
            Table::num(rec, 1)});
    std::printf("autotune gemm %s fixed_ms=%.3f best_ms=%.3f best=%s "
                "tuned_ms=%.3f tuned=%s recovered_pct=%.1f\n",
                shape_str.c_str(), fixed_ms, best,
                gemm_geo_str(best_geo).c_str(), tuned_ms,
                gemm_geo_str(tuned_geo).c_str(), rec);
  }

  const struct {
    std::size_t m, n;
  } syrk_shapes[] = {{96, 1536}, {204, 4096}, {540, 6144}};
  for (const auto& shape : syrk_shapes) {
    const linalg::Matrix sa = random_matrix(shape.m, shape.n, 6);
    linalg::Matrix sc(shape.m, shape.m);
    double fixed_ms = 0.0;
    double best = 1e300;
    linalg::tune::SyrkGeometry best_geo;
    for (const auto& geo : linalg::tune::syrk_candidates()) {
      const double ms = best_ms(
          [&] { linalg::opt::syrk_with(sa.view(), sc.view(), geo); },
          repeats);
      if (geo == linalg::tune::SyrkGeometry{}) fixed_ms = ms;
      if (ms < best) {
        best = ms;
        best_geo = geo;
      }
    }
    const auto tuned_geo = linalg::tune::syrk_plan(shape.m, shape.n);
    const double tuned_ms = best_ms(
        [&] { linalg::opt::syrk_with(sa.view(), sc.view(), tuned_geo); },
        repeats);
    const double rec = recovered_pct(fixed_ms, best, tuned_ms);
    note(rec);
    const std::string shape_str =
        std::to_string(shape.m) + "x" + std::to_string(shape.n);
    at.row({"syrk", shape_str, Table::num(fixed_ms, 3), Table::num(best, 3),
            Table::num(tuned_ms, 3), syrk_geo_str(tuned_geo),
            Table::num(rec, 1)});
    std::printf("autotune syrk %s fixed_ms=%.3f best_ms=%.3f best=%s "
                "tuned_ms=%.3f tuned=%s recovered_pct=%.1f\n",
                shape_str.c_str(), fixed_ms, best,
                syrk_geo_str(best_geo).c_str(), tuned_ms,
                syrk_geo_str(tuned_geo).c_str(), rec);
  }
  at.print();
  std::printf("autotune_summary shapes=%d recovered_pct_mean=%.1f "
              "recovered_pct_min=%.1f\n",
              rec_n, rec_n > 0 ? rec_sum / rec_n : 0.0,
              rec_n > 0 ? rec_min : 0.0);
  return 0;
}
