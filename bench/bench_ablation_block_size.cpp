// Ablation: how the gemm panel width and the syrk panel depth affect the
// kernels.  DESIGN.md calls out the blocking parameters (512-column gemm
// panels, 96-deep syrk panels) as the load-bearing choices of optimization
// idea #1; this bench sweeps them on the host CPU (wall clock) and through
// the cache simulator (Phi L2 misses).
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "linalg/opt.hpp"
#include "linalg/reference.hpp"

using namespace fcma;

namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  linalg::Matrix m(r, c);
  Rng rng(seed);
  for (auto& v : m.flat()) v = rng.uniform(-1.0f, 1.0f);
  return m;
}

// Panel-width-parameterized gemm built from the public panel primitives.
double gemm_with_panel(const linalg::Matrix& a, const linalg::Matrix& b,
                       linalg::Matrix& c, std::size_t panel,
                       int repeats) {
  std::vector<float> bt(a.cols() * panel);
  WallTimer timer;
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t j0 = 0; j0 < b.rows(); j0 += panel) {
      const std::size_t j1 = std::min(b.rows(), j0 + panel);
      linalg::opt::pack_bt_panel(b.view(), j0, j1, bt.data());
      for (std::size_t i = 0; i < a.rows(); ++i) {
        linalg::opt::gemm_row_panel(a.row(i), a.cols(), bt.data(), j1 - j0,
                                    c.row(i) + j0);
      }
    }
  }
  return timer.millis() / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_ablation_block_size",
          "ablation: blocking parameter sweeps for the optimized kernels");
  cli.add_flag("voxels", "8192", "brain size N for the gemm sweep");
  cli.add_flag("rows", "64", "task voxels V");
  cli.add_flag("repeats", "5", "wall-clock repetitions");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble("Ablation: gemm panel width (idea #1 block sizing)");
  const auto n = static_cast<std::size_t>(cli.get_int("voxels"));
  const auto v = static_cast<std::size_t>(cli.get_int("rows"));
  const int repeats = static_cast<int>(cli.get_int("repeats"));

  const linalg::Matrix a = random_matrix(v, 12, 1);
  const linalg::Matrix b = random_matrix(n, 12, 2);
  linalg::Matrix c(v, n);
  linalg::Matrix want(v, n);
  linalg::reference::gemm_nt(a.view(), b.view(), want.view());

  Table t("gemm panel width sweep (host wall clock; default panel = 512)");
  t.header({"panel cols", "host ms", "GFLOP/s (host)", "max |err|"});
  const double gflop =
      2.0 * static_cast<double>(v) * static_cast<double>(n) * 12.0 / 1e9;
  for (const std::size_t panel : {64u, 128u, 256u, 512u, 1024u, 4096u}) {
    const double ms = gemm_with_panel(a, b, c, panel, repeats);
    t.row({Table::count(static_cast<long long>(panel)), Table::num(ms, 2),
           Table::num(gflop / (ms / 1e3), 1),
           Table::num(linalg::reference::max_abs_diff(want.view(), c.view()),
                      5)});
  }
  t.print();

  // Syrk micro-tile behaviour vs problem size: wall clock of the production
  // kernel against the baseline shape sensitivity (M sweep).
  Table s("syrk host wall clock vs M (N = 4096; panel depth fixed at 96)");
  s.header({"M (epochs)", "opt ms", "GFLOP/s (host)"});
  for (const std::size_t m : {96u, 204u, 408u, 540u}) {
    const linalg::Matrix d = random_matrix(m, 4096, 3);
    linalg::Matrix k(m, m);
    WallTimer timer;
    for (int r = 0; r < repeats; ++r) linalg::opt::syrk(d.view(), k.view());
    const double ms = timer.millis() / repeats;
    const double g =
        2.0 * static_cast<double>(m) * m * 4096.0 / 2.0 / 1e9;
    s.row({Table::count(static_cast<long long>(m)), Table::num(ms, 2),
           Table::num(g / (ms / 1e3), 1)});
  }
  s.print();
  return 0;
}
