// Small real-driver cluster run for the observability smoke sweep: runs the
// master-worker task farm (cluster/driver.hpp) with actual threads at a
// reduced brain size and reports the straggler/load-imbalance view — per-rank
// busy seconds, max/mean busy, and the imbalance ratio — that the driver
// publishes as cluster/* gauges.  The metrics sidecar therefore captures the
// same numbers machine-readably for bench_smoke.sh.
#include "bench_common.hpp"
#include "cluster/driver.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_cluster_smoke",
          "cluster observability smoke: real task farm + straggler report");
  cli.add_flag("voxels", "512", "scaled brain size");
  cli.add_flag("subjects", "4", "scaled subject count");
  cli.add_flag("workers", "3", "worker ranks");
  cli.add_flag("task", "32", "voxels per task");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Cluster smoke: dynamic task farm with per-rank busy attribution");
  const bench::Workload w = bench::make_workload(
      fmri::face_scene_spec(), static_cast<std::size_t>(cli.get_int("voxels")),
      static_cast<std::int32_t>(cli.get_int("subjects")));

  cluster::DriverOptions options;
  options.workers = static_cast<std::size_t>(cli.get_int("workers"));
  options.voxels_per_task = static_cast<std::size_t>(cli.get_int("task"));
  cluster::DriverStats stats;
  const core::Scoreboard board = run_cluster_analysis(
      w.epochs, w.dataset.voxels(), options, &stats);

  Table t("per-rank busy time (dynamic farm)");
  t.header({"rank", "busy (s)", "share of max"});
  const double max_busy = stats.max_worker_busy_s();
  for (std::size_t r = 0; r < stats.worker_busy_s.size(); ++r) {
    const double busy = stats.worker_busy_s[r];
    t.row({"worker" + std::to_string(r + 1), Table::num(busy, 3),
           Table::num(max_busy > 0.0 ? 100.0 * busy / max_busy : 0.0, 0) +
               "%"});
  }
  t.print();

  Table s("load balance");
  s.header({"metric", "value"});
  s.row({"tasks dispatched", Table::count(static_cast<long long>(
                                 stats.tasks_dispatched))});
  s.row({"batches", Table::count(static_cast<long long>(stats.batches))});
  s.row({"max busy (s)", Table::num(max_busy, 3)});
  s.row({"mean busy (s)", Table::num(stats.mean_worker_busy_s(), 3)});
  s.row({"imbalance (max/mean)", Table::num(stats.imbalance_ratio(), 3)});
  s.print();

  std::printf("scored %zu voxels across %zu ranks\n", board.scored(),
              options.workers);
  return 0;
}
