// Small real-driver cluster run for the observability smoke sweep: runs the
// master-worker task farm (cluster/driver.hpp) with actual threads at a
// reduced brain size and reports the straggler/load-imbalance view — per-rank
// busy seconds, max/mean busy, and the imbalance ratio — that the driver
// publishes as cluster/* gauges.  The metrics sidecar therefore captures the
// same numbers machine-readably for bench_smoke.sh.
#include "bench_common.hpp"
#include "cluster/driver.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_cluster_smoke",
          "cluster observability smoke: real task farm + straggler report");
  cli.add_flag("voxels", "512", "scaled brain size");
  cli.add_flag("subjects", "4", "scaled subject count");
  cli.add_flag("workers", "3", "worker ranks");
  cli.add_flag("task", "32", "voxels per task");
  cli.add_flag("lease-timeout", "10.0", "seconds before a silent lease expires");
  cli.add_flag("fault-seed", "0", "fault-injection decision seed");
  cli.add_flag("fault-drop", "0", "P(drop) per message");
  cli.add_flag("fault-kill-rank", "0", "worker rank to crash (0 = none)");
  cli.add_flag("fault-kill-after", "0", "tasks the victim completes first");
  cli.add_flag("fault-kill-master-after", "0",
               "batches the primary master dispatches before crashing "
               "(0 = never; standby takes over)");
  cli.add_flag("fault-stall-rank", "0", "worker rank that straggles");
  cli.add_flag("fault-stall-s", "0", "straggler sleep before each task");
  cli.add_flag("standby", "1", "replicate the control plane to a standby");
  cli.add_flag("speculate", "0", "re-dispatch straggling leases to idle ranks");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Cluster smoke: dynamic task farm with per-rank busy attribution");
  const bench::Workload w = bench::make_workload(
      fmri::face_scene_spec(), static_cast<std::size_t>(cli.get_int("voxels")),
      static_cast<std::int32_t>(cli.get_int("subjects")));

  cluster::DriverOptions options;
  options.workers = static_cast<std::size_t>(cli.get_int("workers"));
  options.voxels_per_task = static_cast<std::size_t>(cli.get_int("task"));
  options.lease_timeout_s = cli.get_double("lease-timeout");
  options.faults.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed"));
  options.faults.drop = cli.get_double("fault-drop");
  options.faults.kill_rank =
      static_cast<std::size_t>(cli.get_int("fault-kill-rank"));
  options.faults.kill_after_tasks =
      static_cast<std::size_t>(cli.get_int("fault-kill-after"));
  options.faults.kill_master_after_batches =
      static_cast<std::size_t>(cli.get_int("fault-kill-master-after"));
  options.faults.stall_rank =
      static_cast<std::size_t>(cli.get_int("fault-stall-rank"));
  options.faults.stall_s = cli.get_double("fault-stall-s");
  options.standby = cli.get_int("standby") != 0;
  options.speculate = cli.get_int("speculate") != 0;
  cluster::DriverStats stats;
  const core::Scoreboard board = run_cluster_analysis(
      w.epochs, w.dataset.voxels(), options, &stats);

  Table t("per-rank busy time (dynamic farm)");
  t.header({"rank", "busy (s)", "share of max"});
  const double max_busy = stats.max_worker_busy_s();
  for (std::size_t r = 0; r < stats.worker_busy_s.size(); ++r) {
    const double busy = stats.worker_busy_s[r];
    t.row({"worker" + std::to_string(r + 1), Table::num(busy, 3),
           Table::num(max_busy > 0.0 ? 100.0 * busy / max_busy : 0.0, 0) +
               "%"});
  }
  t.print();

  Table s("load balance");
  s.header({"metric", "value"});
  s.row({"tasks dispatched", Table::count(static_cast<long long>(
                                 stats.tasks_dispatched))});
  s.row({"batches", Table::count(static_cast<long long>(stats.batches))});
  s.row({"max busy (s)", Table::num(max_busy, 3)});
  s.row({"mean busy (s)", Table::num(stats.mean_worker_busy_s(), 3)});
  s.row({"imbalance (max/mean)", Table::num(stats.imbalance_ratio(), 3)});
  s.print();

  // Recovery view: all zeros on a clean run, the cost of the fault-injected
  // variant otherwise.  The same numbers land in the metrics sidecar as the
  // cluster/* counters plus the gauges below.
  Table r("fault recovery");
  r.header({"metric", "value"});
  r.row({"workers died",
         Table::count(static_cast<long long>(stats.workers_died))});
  r.row({"tasks requeued",
         Table::count(static_cast<long long>(stats.tasks_requeued))});
  r.row({"retries", Table::count(static_cast<long long>(stats.retries))});
  r.row({"heartbeat misses",
         Table::count(static_cast<long long>(stats.heartbeat_misses))});
  r.row({"recovery wall (s)", Table::num(stats.recovery_wall_s, 3)});
  r.row({"failovers", Table::count(static_cast<long long>(stats.failovers))});
  r.row({"speculative dispatches",
         Table::count(static_cast<long long>(stats.speculative_dispatches))});
  r.row({"resurrections",
         Table::count(static_cast<long long>(stats.resurrections))});
  r.print();
  trace::gauge_set("cluster/workers_died",
                   static_cast<double>(stats.workers_died));
  trace::gauge_set("cluster/recovery_wall_s", stats.recovery_wall_s);

  std::printf("scored %zu voxels across %zu ranks\n", board.scored(),
              options.workers);
  return 0;
}
