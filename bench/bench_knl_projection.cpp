// Forward-port projection: the paper's conclusion claims the implementation
// "can be migrated on to the next generation of Intel Xeon Phi (KNL) with
// moderate effort".  This bench projects the Fig 9 single-node comparison
// onto the KNL 7250 model: same kernels, same event counts, newer machine.
//
// Expected shape: KNL keeps the optimized/baseline ordering but compresses
// the gap relative to KNC (its deeper memory-level parallelism forgives the
// baseline's L2 sins, like the Xeon does) while delivering a large absolute
// speedup over the 5110P.
#include "bench_common.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_knl_projection",
          "projection of the single-node comparison onto Knights Landing");
  cli.add_flag("voxels", "4096", "scaled brain size for calibration");
  cli.add_flag("subjects", "6", "scaled subject count for calibration");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "KNL forward-port projection (paper SS7: 'migrated ... with moderate "
      "effort')");
  const archsim::ArchModel knc = archsim::Phi5110P();
  const archsim::ArchModel knl = archsim::PhiKnl7250();
  std::printf("modeled peaks: %s %.0f GF, %s %.0f GF\n\n", knc.name.c_str(),
              knc.peak_sp_gflops(), knl.name.c_str(), knl.peak_sp_gflops());

  for (const auto& paper :
       {fmri::face_scene_spec(), fmri::attention_spec()}) {
    const bench::Workload w = bench::make_workload(
        paper, static_cast<std::size_t>(cli.get_int("voxels")),
        static_cast<std::int32_t>(cli.get_int("subjects")));
    const auto base_cost =
        bench::calibrate(w, core::PipelineConfig::baseline());
    const auto opt_cost =
        bench::calibrate(w, core::PipelineConfig::optimized());
    const std::size_t base_task = paper.name == "face-scene" ? 120 : 60;
    // KNL nodes carry 96-384GB of RAM: the baseline's memory wall is gone,
    // but its per-voxel-thread structure still limits stage-3 occupancy.
    const auto base_dims = bench::paper_dims(paper, base_task);
    const auto opt_dims = bench::paper_dims(paper, 240);

    Table t("KNL projection (" + paper.name + "), per-voxel ms");
    t.header({"machine", "baseline", "optimized", "speedup"});
    for (const auto* arch : {&knc, &knl}) {
      const double base_pv =
          base_cost.task_seconds(base_dims, *arch,
                                 static_cast<int>(base_task)) /
          static_cast<double>(base_task) * 1e3;
      const double opt_pv = opt_cost.task_seconds(opt_dims, *arch,
                                                  arch->max_threads()) /
                            240.0 * 1e3;
      t.row({arch->name, Table::num(base_pv, 2), Table::num(opt_pv, 2),
             Table::num(base_pv / opt_pv, 2) + "x"});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
