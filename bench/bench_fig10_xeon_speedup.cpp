// Reproduces Fig 10: the same optimized-vs-baseline comparison on the host
// Xeon E5-2670 processor.  The gains shrink because the Xeon's large LLC
// hides the baseline's cache sins, its vectors are half as wide, and with
// only 16 hardware threads the baseline's SVM stage is not starved.
//
// Paper values: 1.4x (face-scene), 2.5x (attention).
#include "bench_common.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_fig10_xeon_speedup",
          "Fig 10: optimized vs baseline per-voxel time on the Xeon");
  cli.add_flag("voxels", "1024", "scaled brain size for calibration");
  cli.add_flag("subjects", "6", "scaled subject count for calibration");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Fig 10 reproduction: Xeon E5-2670 optimized-vs-baseline speedup");
  const auto arch = archsim::XeonE5_2670();
  const struct {
    fmri::DatasetSpec paper;
    const char* paper_speedup;
  } rows[] = {
      {fmri::face_scene_spec(), "1.4x"},
      {fmri::attention_spec(), "2.5x"},
  };

  Table t("Fig 10: per-voxel processing time on the modeled E5-2670 "
          "(baseline normalized to 1)");
  t.header({"dataset", "base ms/voxel", "opt ms/voxel", "speedup", "paper"});
  for (const auto& row : rows) {
    const bench::Workload w = bench::make_workload(
        row.paper, static_cast<std::size_t>(cli.get_int("voxels")),
        static_cast<std::int32_t>(cli.get_int("subjects")));
    // 8-lane AVX model and Xeon cache geometry for both implementations.
    const auto base_cost =
        bench::calibrate(w, core::PipelineConfig::baseline(), 8, 8,
                         memsim::Machine::kXeonE5_2670);
    const auto opt_cost =
        bench::calibrate(w, core::PipelineConfig::optimized(), 8, 8,
                         memsim::Machine::kXeonE5_2670);
    const std::size_t task = row.paper.name == "face-scene" ? 120 : 60;
    const auto dims = bench::paper_dims(row.paper, task);
    // 256GB host memory: no thread starvation on either implementation.
    const double base_pv = base_cost.task_seconds(dims, arch, 16) /
                           static_cast<double>(task) * 1e3;
    const double opt_pv = opt_cost.task_seconds(dims, arch, 16) /
                          static_cast<double>(task) * 1e3;
    t.row({row.paper.name, Table::num(base_pv, 1), Table::num(opt_pv, 1),
           Table::num(base_pv / opt_pv, 2) + "x", row.paper_speedup});
  }
  t.print();
  return 0;
}
