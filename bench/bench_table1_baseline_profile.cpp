// Reproduces Table 1: the vTune-style instrumentation of the *baseline*
// implementation that motivated the paper's optimizations — per-component
// time, memory references, L2 misses and vectorization intensity for one
// face-scene worker task.
//
// Paper values (120-voxel task, face-scene):
//   matrix multiplication  1830 ms, 34.9 B refs, 709 M L2 misses, 3.6
//   normalization           766 ms,  6.2 B refs, 179 M L2 misses, 8.5
//   LibSVM                 3600 ms, 23.0 B refs,   7 M L2 misses, 1.9
#include "bench_common.hpp"
#include "fcma/corr_norm.hpp"
#include "fcma/svm_stage.hpp"
#include "linalg/baseline.hpp"
#include "stats/normalization.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_table1_baseline_profile",
          "Table 1: instrumentation of the baseline implementation");
  cli.add_flag("voxels", "1024", "scaled brain size");
  cli.add_flag("subjects", "9", "scaled subject count");
  cli.add_flag("task", "8", "voxels per worker task");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Table 1 reproduction: baseline implementation profile");
  const bench::Workload w = bench::make_workload(
      fmri::face_scene_spec(), static_cast<std::size_t>(cli.get_int("voxels")),
      static_cast<std::int32_t>(cli.get_int("subjects")));
  const auto task_voxels = static_cast<std::uint32_t>(cli.get_int("task"));
  // Start the task at the first planted informative voxel so the accuracy
  // sanity column carries signal.
  const core::VoxelTask task{w.dataset.informative_voxels().front(),
                             task_voxels};
  const std::size_t m = w.epochs.per_epoch.size();
  const std::size_t n = w.dataset.voxels();

  // Stage 1 gemm (baseline, per-epoch MKL-style ldc trick).
  linalg::Matrix buf = core::make_corr_buffer(task, m, n);
  memsim::Instrument matmul_ins;
  for (std::size_t e = 0; e < m; ++e) {
    const linalg::Matrix& act = w.epochs.per_epoch[e];
    linalg::ConstMatrixView a{act.row(task.first), task.count, act.cols(),
                              act.ld()};
    linalg::MatrixView slice{buf.data() + e * buf.ld(), task.count, n,
                             m * buf.ld()};
    linalg::baseline::gemm_nt_instrumented(a, act.view(), slice, matmul_ins);
  }

  // Stage 2 normalization (separate pass, as the baseline runs it).
  memsim::Instrument norm_ins;
  {
    // A fresh instrument models the compulsory re-read the paper observed
    // between the two stages (SS3.3.2).
    std::size_t start = 0;
    const auto& meta = w.epochs.meta;
    for (std::size_t v = 0; v < task.count; ++v) {
      start = 0;
      for (std::size_t e = 1; e <= meta.size(); ++e) {
        if (e == meta.size() || meta[e].subject != meta[start].subject) {
          stats::fisher_zscore_block_instrumented(
              buf.row(v * m + start), e - start, n, buf.ld(), norm_ins);
          start = e;
        }
      }
    }
  }

  // Stage 3: baseline syrk (counts toward "matrix multiplication", as in
  // the paper's SS3.3.1) + LibSVM cross-validation.
  const auto folds = core::epoch_loso_folds(w.epochs.meta);
  const auto labels = core::epoch_labels(w.epochs.meta);
  memsim::Instrument svm_ins;
  for (std::uint32_t v = 0; v < task.count; ++v) {
    linalg::Matrix kernel(m, m);
    linalg::ConstMatrixView block{buf.row(v * m), m, n, buf.ld()};
    linalg::baseline::syrk_instrumented(block, kernel.view(), matmul_ins);
    (void)svm::cross_validate(svm::SolverKind::kLibSvm, kernel.view(), labels,
                              folds, svm::TrainOptions{}, &svm_ins);
  }

  const auto arch = archsim::Phi5110P();
  auto emit = [&](Table& t, const char* name, const memsim::Instrument& ins,
                  int threads, const char* p_time, const char* p_refs,
                  const char* p_miss, const char* p_vi) {
    const auto e = ins.events();
    t.row({name, Table::num(arch.modeled_seconds(e, threads) * 1e3, 2),
           Table::count(static_cast<long long>(e.mem_refs)),
           Table::count(static_cast<long long>(e.l2_misses)),
           Table::num(e.vector_intensity(), 1), p_time, p_refs, p_miss,
           p_vi});
  };

  Table t("Table 1: baseline instrumentation (scaled dims; paper values for "
          "the full-size task alongside)");
  t.header({"component", "time (ms)", "#mem refs", "L2 miss", "vec int",
            "paper time", "paper refs", "paper L2", "paper vi"});
  emit(t, "matrix multiplication", matmul_ins, 240, "1830", "34.9 B",
       "709 M", "3.6");
  emit(t, "normalization", norm_ins, 240, "766", "6.2 B", "179 M", "8.5");
  emit(t, "LibSVM", svm_ins, static_cast<int>(task_voxels), "3600", "23.0 B",
       "7 M", "1.9");
  t.print();
  return 0;
}
