// Reproduces Table 5: elapsed time and GFLOPS of the matrix-multiplication
// routines in the correlation-computation and SVM-kernel stages, our
// blocked kernels vs the generic (MKL-like) baseline, on the modeled Xeon
// Phi 5110P.
//
// Paper values: ours 170ms/126GF (corr) and 400ms/430GF (syrk);
//               MKL  230ms/93GF  (corr) and 1600ms/108GF (syrk).
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "linalg/baseline.hpp"
#include "linalg/opt.hpp"

namespace {

using namespace fcma;

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  linalg::Matrix m(r, c);
  Rng rng(seed);
  for (auto& v : m.flat()) v = rng.uniform(-1.0f, 1.0f);
  return m;
}

struct OpResult {
  double gflops;
  double full_time_ms;
};

/// Runs `op` instrumented at scaled dims, then scales to the paper's flop
/// count: GFLOPS is scale-invariant, full time = paper flops / rate.
template <typename Op>
OpResult measure(Op&& op, double paper_gflop_count) {
  memsim::Instrument ins;
  op(ins);
  const auto arch = archsim::Phi5110P();
  const double gflops = arch.modeled_gflops(ins.events());
  return OpResult{gflops, paper_gflop_count / gflops * 1000.0};
}

}  // namespace

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_table5_matmul_gflops",
          "Table 5: matmul GFLOPS, blocked kernels vs generic baseline");
  cli.add_flag("voxels", "16384", "scaled brain size N for the corr gemm");
  cli.add_flag("syrk-voxels", "4096", "scaled brain size N for the svm syrk");
  cli.add_flag("epochs", "4", "scaled epoch count for the corr stage");
  if (!cli.parse(argc, argv)) return 0;
  const auto n = static_cast<std::size_t>(cli.get_int("voxels"));
  const auto n_syrk = static_cast<std::size_t>(cli.get_int("syrk-voxels"));
  const auto epochs = static_cast<std::size_t>(cli.get_int("epochs"));

  bench::print_preamble(
      "Table 5 reproduction: matrix multiplication time and GFLOPS");

  // Correlation stage shape (paper: 216 x [120,12]*[12,34470], 21.443
  // GFLOP); scaled: `epochs` multiplications against an N-voxel brain.
  const linalg::Matrix a = random_matrix(120, 12, 1);
  const linalg::Matrix b = random_matrix(n, 12, 2);
  const double corr_paper_gflop = 21.443;

  const OpResult corr_opt = measure(
      [&](memsim::Instrument& ins) {
        linalg::Matrix c(120, n);
        for (std::size_t e = 0; e < epochs; ++e) {
          linalg::opt::gemm_nt_instrumented(a.view(), b.view(), c.view(),
                                            ins);
        }
      },
      corr_paper_gflop);
  const OpResult corr_base = measure(
      [&](memsim::Instrument& ins) {
        linalg::Matrix c(120, n);
        for (std::size_t e = 0; e < epochs; ++e) {
          linalg::baseline::gemm_nt_instrumented(a.view(), b.view(), c.view(),
                                                 ins);
        }
      },
      corr_paper_gflop);

  // SVM kernel stage shape (paper: [204,34470] * transpose, 172.14 GFLOP
  // per voxel task of 120 voxels... the paper reports one multiplication).
  const linalg::Matrix d = random_matrix(204, n_syrk, 3);
  const double syrk_paper_gflop = 172.14;
  const OpResult syrk_opt = measure(
      [&](memsim::Instrument& ins) {
        linalg::Matrix c(204, 204);
        linalg::opt::syrk_instrumented(d.view(), c.view(), ins);
      },
      syrk_paper_gflop);
  const OpResult syrk_base = measure(
      [&](memsim::Instrument& ins) {
        linalg::Matrix c(204, 204);
        linalg::baseline::syrk_instrumented(d.view(), c.view(), ins);
      },
      syrk_paper_gflop);

  Table t("Table 5: matmul routines on the modeled Phi 5110P");
  t.header({"impl", "function", "time (ms)", "GFLOPS", "paper time",
            "paper GFLOPS"});
  t.row({"our blocking", "correlation matrix", Table::num(corr_opt.full_time_ms, 0),
         Table::num(corr_opt.gflops, 0), "170 ms", "126"});
  t.row({"our blocking", "SVM kernel matrix", Table::num(syrk_opt.full_time_ms, 0),
         Table::num(syrk_opt.gflops, 0), "400 ms", "430"});
  t.row({"baseline (MKL-like)", "correlation matrix",
         Table::num(corr_base.full_time_ms, 0), Table::num(corr_base.gflops, 0),
         "230 ms", "93"});
  t.row({"baseline (MKL-like)", "SVM kernel matrix",
         Table::num(syrk_base.full_time_ms, 0), Table::num(syrk_base.gflops, 0),
         "1600 ms", "108"});
  t.print();

  std::printf("\nshape check: ours beats baseline on both ops: %s; syrk gap "
              "larger than corr gap: %s\n",
              (corr_opt.gflops > corr_base.gflops &&
               syrk_opt.gflops > syrk_base.gflops)
                  ? "yes"
                  : "NO",
              (syrk_opt.gflops / syrk_base.gflops >
               corr_opt.gflops / corr_base.gflops)
                  ? "yes"
                  : "NO");
  return 0;
}
