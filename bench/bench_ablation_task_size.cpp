// Ablation: voxels-per-task vs cluster speedup.  The master's task
// granularity trades load balance (small tasks) against per-task overhead
// and the memory model's per-node limits (large tasks).  This sweep shows
// why the paper's 240-voxel optimized tasks sit in the sweet spot at 96
// nodes.
#include "bench_common.hpp"
#include "cluster/sim.hpp"
#include "fcma/task.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_ablation_task_size",
          "ablation: task granularity vs 96-node speedup");
  cli.add_flag("voxels", "1024", "scaled brain size for calibration");
  cli.add_flag("subjects", "6", "scaled subject count for calibration");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble("Ablation: voxels-per-task vs cluster efficiency");
  const auto arch = archsim::Phi5110P();
  const fmri::DatasetSpec paper = fmri::face_scene_spec();
  const bench::Workload w = bench::make_workload(
      paper, static_cast<std::size_t>(cli.get_int("voxels")),
      static_cast<std::int32_t>(cli.get_int("subjects")));
  const auto cost = bench::calibrate(w, core::PipelineConfig::optimized());
  const std::size_t s = static_cast<std::size_t>(paper.subjects);

  Table t("task-size sweep, face-scene offline on 96 virtual nodes");
  t.header({"voxels/task", "tasks/fold", "elapsed (s)", "speedup vs 1 node",
            "worker efficiency"});
  for (const std::size_t task_size : {30u, 60u, 120u, 240u, 480u, 1200u,
                                      4800u}) {
    cluster::TaskDims dims = bench::paper_dims(paper, task_size);
    dims.epochs = paper.epochs_total / s * (s - 1);
    dims.subjects = paper.subjects - 1;
    const auto tasks = core::partition_voxels(paper.voxels, task_size);
    std::vector<double> task_seconds;
    for (const auto& task : tasks) {
      cluster::TaskDims d = dims;
      d.task_voxels = task.count;
      task_seconds.push_back(cost.task_seconds(d, arch, 240));
    }
    cluster::FarmConfig farm;
    farm.broadcast_bytes =
        static_cast<double>(paper.voxels) *
        static_cast<double>(paper.epochs_total * paper.epoch_length) * 4.0;
    farm.result_bytes = static_cast<double>(task_size) * 8.0;
    farm.workers = 1;
    const double t1 =
        cluster::simulate_task_farm(farm, task_seconds, s).makespan_s;
    farm.workers = 96;
    const auto o96 = cluster::simulate_task_farm(farm, task_seconds, s);
    t.row({Table::count(static_cast<long long>(task_size)),
           Table::count(static_cast<long long>(tasks.size())),
           Table::num(o96.makespan_s, 0), Table::num(t1 / o96.makespan_s, 1),
           Table::num(o96.efficiency(96), 2)});
  }
  t.print();
  return 0;
}
