// Reproduces Table 6: memory references, L2 cache misses and vectorization
// intensity of the matrix-multiplication routines (correlation gemm + SVM
// syrk combined), our blocking vs the generic baseline.
//
// Paper values: ours 9,974,870,500 refs / 121.8M misses / intensity 16;
//               MKL 34,858,368,500 refs / 708.9M misses / intensity 3.6.
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "linalg/baseline.hpp"
#include "linalg/opt.hpp"

namespace {

using namespace fcma;

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  linalg::Matrix m(r, c);
  Rng rng(seed);
  for (auto& v : m.flat()) v = rng.uniform(-1.0f, 1.0f);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_table6_matmul_events",
          "Table 6: matmul memory references, L2 misses, vector intensity");
  cli.add_flag("voxels", "16384", "scaled brain size N for the corr gemm");
  cli.add_flag("syrk-voxels", "4096", "scaled brain size N for the svm syrk");
  cli.add_flag("epochs", "4", "scaled epoch count for the corr stage");
  if (!cli.parse(argc, argv)) return 0;
  const auto n = static_cast<std::size_t>(cli.get_int("voxels"));
  const auto n_syrk = static_cast<std::size_t>(cli.get_int("syrk-voxels"));
  const auto epochs = static_cast<std::size_t>(cli.get_int("epochs"));

  bench::print_preamble(
      "Table 6 reproduction: matmul event counts (corr gemm + svm syrk)");

  const linalg::Matrix a = random_matrix(120, 12, 1);
  const linalg::Matrix b = random_matrix(n, 12, 2);
  const linalg::Matrix d = random_matrix(204, n_syrk, 3);

  auto run = [&](bool optimized) {
    memsim::Instrument ins;
    linalg::Matrix c(120, n);
    for (std::size_t e = 0; e < epochs; ++e) {
      if (optimized) {
        linalg::opt::gemm_nt_instrumented(a.view(), b.view(), c.view(), ins);
      } else {
        linalg::baseline::gemm_nt_instrumented(a.view(), b.view(), c.view(),
                                               ins);
      }
    }
    linalg::Matrix k(204, 204);
    if (optimized) {
      linalg::opt::syrk_instrumented(d.view(), k.view(), ins);
    } else {
      linalg::baseline::syrk_instrumented(d.view(), k.view(), ins);
    }
    return ins.events();
  };

  const auto opt = run(true);
  const auto base = run(false);

  Table t("Table 6: matmul routine events (scaled dims; ratios are the "
          "reproduction target)");
  t.header({"impl", "#memory refs", "L2 miss", "vector intensity"});
  t.row({"our blocking", Table::count(static_cast<long long>(opt.mem_refs)),
         Table::count(static_cast<long long>(opt.l2_misses)),
         Table::num(opt.vector_intensity(), 1)});
  t.row({"baseline (MKL-like)",
         Table::count(static_cast<long long>(base.mem_refs)),
         Table::count(static_cast<long long>(base.l2_misses)),
         Table::num(base.vector_intensity(), 1)});
  t.print();

  Table r("ratios: baseline / ours (paper: 3.49x refs, 5.82x L2 misses; "
          "intensity 3.6 -> 16)");
  r.header({"metric", "ours", "paper"});
  r.row({"memory-ref ratio",
         Table::num(static_cast<double>(base.mem_refs) /
                        static_cast<double>(opt.mem_refs),
                    2),
         "3.49"});
  r.row({"L2-miss ratio",
         Table::num(static_cast<double>(base.l2_misses) /
                        static_cast<double>(opt.l2_misses),
                    2),
         "5.82"});
  r.row({"optimized intensity", Table::num(opt.vector_intensity(), 1), "16"});
  r.row({"baseline intensity", Table::num(base.vector_intensity(), 1),
         "3.6"});
  r.print();
  return 0;
}
