// Reproduces Fig 9: per-voxel speedup of the optimized implementation over
// the baseline for a single worker task on one Xeon Phi coprocessor.
//
// Paper values: 5.24x (face-scene), 16.39x (attention).  The attention gap
// is larger because its SVM stage dominates and the baseline's LibSVM both
// runs slowly and starves threads (only 60 voxels fit in memory).
#include <iterator>
#include <optional>

#include "bench_common.hpp"
#include "fcma/memory_model.hpp"
#include "fcma/task.hpp"
#include "threading/thread_pool.hpp"

using namespace fcma;

namespace {

struct DatasetRow {
  fmri::DatasetSpec paper;
  const char* paper_speedup;
};

}  // namespace

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_fig9_single_node_speedup",
          "Fig 9: optimized vs baseline per-voxel time on the Phi");
  cli.add_flag("voxels", "4096", "scaled brain size for calibration");
  cli.add_flag("subjects", "6", "scaled subject count for calibration");
  cli.add_flag("calib-task", "8", "task voxels in the calibration run");
  cli.add_flag("threads", "0",
               "worker threads for workload generation and calibration "
               "(0 = hardware concurrency)");
  cli.add_flag("grain-task", "8",
               "voxels per task in the small-grain scheduler sweep (the "
               "steal-heavy regime; 0 = skip the sweep)");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Fig 9 reproduction: single-coprocessor optimized-vs-baseline speedup");
  const auto arch = archsim::Phi5110P();
  const DatasetRow rows[] = {
      {fmri::face_scene_spec(), "5.24x"},
      {fmri::attention_spec(), "16.39x"},
  };
  constexpr std::size_t kRows = std::size(rows);

  // The expensive pieces — synthesizing the two scaled datasets and the
  // four instrumented calibration runs — are independent, so spread them
  // over the pool and print the table serially afterwards.  Every unit is
  // deterministic, so the table is identical at any thread count.
  threading::ThreadPool pool(
      static_cast<std::size_t>(cli.get_int("threads")));
  std::optional<bench::Workload> workloads[kRows];
  threading::parallel_for_each(pool, 0, kRows, [&](std::size_t i) {
    workloads[i] = bench::make_workload(
        rows[i].paper, static_cast<std::size_t>(cli.get_int("voxels")),
        static_cast<std::int32_t>(cli.get_int("subjects")));
  });
  const auto calib_task = static_cast<std::size_t>(cli.get_int("calib-task"));
  std::optional<cluster::CalibratedCost> costs[2 * kRows];
  threading::parallel_for_each(pool, 0, 2 * kRows, [&](std::size_t u) {
    const core::PipelineConfig config = u % 2 == 0
                                            ? core::PipelineConfig::baseline()
                                            : core::PipelineConfig::optimized();
    costs[u] = bench::calibrate(*workloads[u / 2], config, calib_task);
  });

  Table t("Fig 9: per-voxel processing time on the modeled Phi 5110P "
          "(baseline normalized to 1)");
  t.header({"dataset", "baseline task", "optimized task", "base ms/voxel",
            "opt ms/voxel", "speedup", "paper"});
  for (std::size_t i = 0; i < kRows; ++i) {
    const DatasetRow& row = rows[i];
    const cluster::CalibratedCost& base_cost = *costs[2 * i];
    const cluster::CalibratedCost& opt_cost = *costs[2 * i + 1];

    // Paper task sizes follow the memory model: the baseline fits 120
    // (face-scene) / 60 (attention) voxels; the optimized path takes 240.
    const std::size_t base_task =
        row.paper.name == "face-scene" ? 120 : 60;
    const std::size_t opt_task = 240;
    const auto base_dims = bench::paper_dims(row.paper, base_task);
    const auto opt_dims = bench::paper_dims(row.paper, opt_task);
    // Thread starvation: baseline stage 3 runs one thread per voxel.
    const double base_pv =
        base_cost.task_seconds(base_dims, arch,
                               static_cast<int>(base_task)) /
        static_cast<double>(base_task) * 1e3;
    const double opt_pv =
        opt_cost.task_seconds(opt_dims, arch, 240) /
        static_cast<double>(opt_task) * 1e3;
    t.row({row.paper.name, Table::count(static_cast<long long>(base_task)),
           Table::count(static_cast<long long>(opt_task)),
           Table::num(base_pv, 1), Table::num(opt_pv, 1),
           Table::num(base_pv / opt_pv, 2) + "x", row.paper_speedup});
  }
  t.print();

  // Small-grain scheduler sweep: run the real pipeline over the face-scene
  // workload with tiny tasks — the regime where per-task dispatch overhead
  // and load imbalance dominate, i.e. where work stealing earns its keep.
  // Wall-clock plus the scheduler's steal/local-hit counters go to stdout
  // and (as trace counters) into the metrics sidecar.
  const auto grain = static_cast<std::size_t>(cli.get_int("grain-task"));
  if (grain > 0) {
    const bench::Workload& w = *workloads[0];
    core::PipelineConfig config = core::PipelineConfig::optimized();
    config.pool = &pool;
    const auto tasks = core::partition_voxels(w.dataset.voxels(), grain);
    const sched::Scheduler::Stats before = pool.scheduler().stats();
    WallTimer timer;
    const auto results = core::run_tasks(w.epochs, tasks, config);
    const double wall = timer.seconds();
    const sched::Scheduler::Stats after = pool.scheduler().stats();
    std::printf(
        "\nsmall-grain sweep (%s, %zu tasks of %zu voxels, %zu threads): "
        "%.3f s wall, %llu steals, %llu local hits\n",
        w.spec.name.c_str(), tasks.size(), grain, pool.size(), wall,
        static_cast<unsigned long long>(after.steals - before.steals),
        static_cast<unsigned long long>(after.local_hits -
                                        before.local_hits));
    trace::gauge_set("bench/fig9/small_grain_wall_s", wall);
    (void)results;
  }
  return 0;
}
