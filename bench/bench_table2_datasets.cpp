// Reproduces Table 2: the datasets used in the experiments.  Since the
// human data are private, the table is regenerated from the synthetic
// presets and verified against the generator's actual output.
#include "bench_common.hpp"
#include "fmri/synthetic.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_table2_datasets", "Table 2: dataset descriptions");
  cli.add_flag("generate", "true",
               "actually generate scaled instances to verify the specs");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble("Table 2 reproduction: datasets");
  Table t("Table 2: datasets used in the experiments (synthetic stand-ins "
          "with the paper's dimensions)");
  t.header({"dataset", "voxels", "subjects", "epochs", "epoch length",
            "planted informative"});
  for (const auto& spec : {fmri::face_scene_spec(), fmri::attention_spec()}) {
    t.row({spec.name, Table::count(static_cast<long long>(spec.voxels)),
           Table::count(spec.subjects),
           Table::count(static_cast<long long>(spec.epochs_total)),
           Table::count(static_cast<long long>(spec.epoch_length)),
           Table::count(static_cast<long long>(spec.informative))});
  }
  t.print();

  if (cli.get_bool("generate")) {
    Table v("generator verification (1/16-scale instances)");
    v.header({"dataset", "voxels", "epochs", "time points", "label balance"});
    for (const auto& paper : {fmri::face_scene_spec(),
                              fmri::attention_spec()}) {
      const fmri::Dataset d =
          fmri::generate_synthetic(paper.scaled_voxels(1.0 / 16.0));
      std::size_t ones = 0;
      for (const auto& e : d.epochs()) ones += (e.label == 1);
      v.row({d.name(), Table::count(static_cast<long long>(d.voxels())),
             Table::count(static_cast<long long>(d.epochs().size())),
             Table::count(static_cast<long long>(d.timepoints())),
             Table::num(static_cast<double>(ones) /
                            static_cast<double>(d.epochs().size()),
                        2)});
    }
    v.print();
  }
  return 0;
}
