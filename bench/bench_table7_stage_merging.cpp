// Reproduces Table 7: the effect of retaining L2 cache contents across the
// correlation and normalization stages (merged vs separated), measured as
// elapsed (modeled) time, memory references and L2 misses.
//
// Paper values: merged 320ms / 1.93B refs / 67.5M misses;
//               separated 420ms / 4.35B refs / 188.1M misses (24% slower).
#include "bench_common.hpp"
#include "fcma/corr_norm.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_table7_stage_merging",
          "Table 7: merged vs separated correlation+normalization stages");
  cli.add_flag("voxels", "2048", "scaled brain size");
  cli.add_flag("subjects", "6", "scaled subject count");
  cli.add_flag("task", "32", "voxels per worker task");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Table 7 reproduction: retaining cache contents across stages");
  const bench::Workload w = bench::make_workload(
      fmri::face_scene_spec(), static_cast<std::size_t>(cli.get_int("voxels")),
      static_cast<std::int32_t>(cli.get_int("subjects")));
  const auto task_voxels =
      static_cast<std::uint32_t>(cli.get_int("task"));
  const core::VoxelTask task{0, task_voxels};
  const std::size_t m = w.epochs.per_epoch.size();

  auto run = [&](core::NormMode mode) {
    linalg::Matrix buf =
        core::make_corr_buffer(task, m, w.dataset.voxels());
    memsim::Instrument ins;
    core::optimized_correlate_normalize_instrumented(w.epochs, task,
                                                     buf.view(), mode, ins);
    return ins.events();
  };
  const auto merged = run(core::NormMode::kMerged);
  const auto separated = run(core::NormMode::kSeparated);

  const auto arch = archsim::Phi5110P();
  const double t_merged = arch.modeled_seconds(merged) * 1e3;
  const double t_separated = arch.modeled_seconds(separated) * 1e3;

  Table t("Table 7: merged vs separated stages (scaled dims)");
  t.header({"method", "time (ms)", "#memory refs", "L2 miss"});
  t.row({"merged", Table::num(t_merged, 1),
         Table::count(static_cast<long long>(merged.mem_refs)),
         Table::count(static_cast<long long>(merged.l2_misses))});
  t.row({"separated", Table::num(t_separated, 1),
         Table::count(static_cast<long long>(separated.mem_refs)),
         Table::count(static_cast<long long>(separated.l2_misses))});
  t.print();

  Table r("shape vs paper");
  r.header({"metric", "ours", "paper"});
  r.row({"time reduction from merging",
         Table::num(100.0 * (t_separated - t_merged) / t_separated, 0) + "%",
         "24%"});
  r.row({"ref ratio (sep/merged)",
         Table::num(static_cast<double>(separated.mem_refs) /
                        static_cast<double>(merged.mem_refs),
                    2),
         "2.26"});
  r.row({"L2-miss ratio (sep/merged)",
         Table::num(static_cast<double>(separated.l2_misses) /
                        static_cast<double>(merged.l2_misses),
                    2),
         "2.79"});
  r.print();
  return 0;
}
