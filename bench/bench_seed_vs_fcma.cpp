// Motivation study: unbiased FCMA vs the classical seed-based analysis.
//
// The paper's opening claim (SS1) is that FCMA enables "exhaustive study of
// neural interactions" where prior approaches examine "correlations ... over
// limited subregions" — i.e., seed-based maps whose findings depend on
// choosing the right seed.  This bench quantifies that: recall of planted
// connectivity voxels as a function of where the seed sits, against
// seedless FCMA on identical data.
#include <set>

#include "bench_common.hpp"
#include "fcma/scoreboard.hpp"
#include "fcma/seed_analysis.hpp"
#include "fcma/selection.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_seed_vs_fcma",
          "recall of planted connectivity: seed maps vs FCMA");
  cli.add_flag("voxels", "256", "brain size");
  cli.add_flag("subjects", "8", "subject count");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble("Seed-based analysis vs FCMA (the paper's SS1 bias "
                        "argument, quantified)");
  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.voxels = static_cast<std::size_t>(cli.get_int("voxels"));
  spec.informative = spec.voxels / 8;
  spec.subjects = static_cast<std::int32_t>(cli.get_int("subjects"));
  spec.epochs_total = static_cast<std::size_t>(spec.subjects) * 12;
  const fmri::Dataset d = fmri::generate_synthetic(spec);
  const fmri::NormalizedEpochs epochs = fmri::normalize_epochs(d);
  const auto& inf = d.informative_voxels();
  const std::set<std::uint32_t> truth(inf.begin(), inf.end());

  auto recall = [&](const std::vector<std::uint32_t>& found) {
    std::size_t hits = 0;
    for (const auto v : found) hits += truth.count(v);
    return 100.0 * static_cast<double>(hits) /
           static_cast<double>(truth.size());
  };

  Table t("recall of planted connectivity voxels (%)");
  t.header({"method", "seed placement", "significant voxels", "recall"});

  // Seed inside the planted structure (the lucky guess).
  {
    const auto c = core::seed_contrast_map(epochs, inf[0]);
    const auto hits = core::seed_significant_voxels(c, 0.05);
    t.row({"seed map", "inside planted ROI (lucky)",
           Table::count(static_cast<long long>(hits.size())),
           Table::num(recall(hits), 0) + "%"});
  }
  // Seed outside it (the typical a-priori guess).
  {
    std::uint32_t noise = 0;
    while (truth.count(noise)) ++noise;
    const auto c = core::seed_contrast_map(epochs, noise);
    const auto hits = core::seed_significant_voxels(c, 0.05);
    t.row({"seed map", "outside planted ROI",
           Table::count(static_cast<long long>(hits.size())),
           Table::num(recall(hits), 0) + "%"});
  }
  // FCMA: no seed at all.
  {
    core::Scoreboard board(d.voxels());
    board.add(core::run_task(
        epochs, core::VoxelTask{0, static_cast<std::uint32_t>(d.voxels())},
        core::PipelineConfig::optimized()));
    const auto hits = core::significant_voxels(
        board, epochs.meta.size(), 0.05, core::Correction::kFdr);
    t.row({"FCMA", "(seedless, exhaustive)",
           Table::count(static_cast<long long>(hits.size())),
           Table::num(recall(hits), 0) + "%"});
  }
  t.print();
  return 0;
}
