// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper.  Since the
// paper's machines are modeled (see archsim/) and full-size instrumented
// runs through the cache simulator would take hours, benches run at reduced
// brain sizes by default (--voxels, --subjects) and extrapolate to paper
// dimensions through the calibrated cost model where a paper-scale number
// is required.  Every table prints the paper's values alongside ours.
#pragma once

#include <cstdio>
#include <string>

#include "archsim/arch_model.hpp"
#include "cluster/cost_model.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "fcma/pipeline.hpp"
#include "fmri/presets.hpp"
#include "fmri/synthetic.hpp"
#include "linalg/simd.hpp"

namespace fcma::bench {

/// A generated dataset plus its normalized epochs, ready for the pipeline.
struct Workload {
  fmri::DatasetSpec spec;       ///< the (possibly scaled) generation spec
  fmri::DatasetSpec paper_spec; ///< the unscaled Table 2 spec
  fmri::Dataset dataset;
  fmri::NormalizedEpochs epochs;
};

/// Builds a scaled instance of `paper` with ~`target_voxels` voxels and
/// (optionally) a reduced subject count.
inline Workload make_workload(const fmri::DatasetSpec& paper,
                              std::size_t target_voxels,
                              std::int32_t subjects = 0) {
  fmri::DatasetSpec spec = paper;
  if (subjects > 0) spec = spec.scaled_subjects(subjects);
  const double factor =
      std::min(1.0, static_cast<double>(target_voxels) /
                        static_cast<double>(spec.voxels));
  spec = spec.scaled_voxels(factor);
  Workload w{spec, paper, fmri::generate_synthetic(spec), {}};
  w.epochs = fmri::normalize_epochs(w.dataset);
  return w;
}

/// Task dimensions of one scaled workload run with `task_voxels` voxels.
inline cluster::TaskDims dims_of(const Workload& w, std::size_t task_voxels) {
  return cluster::TaskDims{
      .task_voxels = task_voxels,
      .brain_voxels = w.dataset.voxels(),
      .epochs = w.dataset.epochs().size(),
      .subjects = w.dataset.subjects()};
}

/// Paper-scale task dimensions (full brain, full subject count).
inline cluster::TaskDims paper_dims(const fmri::DatasetSpec& paper,
                                    std::size_t task_voxels) {
  return cluster::TaskDims{.task_voxels = task_voxels,
                           .brain_voxels = paper.voxels,
                           .epochs = paper.epochs_total,
                           .subjects = paper.subjects};
}

/// Runs the instrumented pipeline for a leading task of `task_voxels`.
inline core::InstrumentedTaskResult instrumented_task(
    const Workload& w, std::size_t task_voxels,
    const core::PipelineConfig& config, unsigned model_lanes = 16,
    memsim::Machine machine = memsim::Machine::kPhi5110P) {
  memsim::Instrument ins(machine);
  return core::run_task_instrumented(
      w.epochs,
      core::VoxelTask{0, static_cast<std::uint32_t>(task_voxels)}, config,
      ins, model_lanes);
}

/// Calibrates the cost model from one instrumented task run at the scaled
/// workload's dimensions (see cluster/cost_model.hpp for the scaling laws).
inline cluster::CalibratedCost calibrate(const Workload& w,
                                         const core::PipelineConfig& config,
                                         std::size_t calib_task_voxels = 8,
                                         unsigned model_lanes = 16,
                                         memsim::Machine machine =
                                             memsim::Machine::kPhi5110P) {
  const auto run =
      instrumented_task(w, calib_task_voxels, config, model_lanes, machine);
  return cluster::CalibratedCost(run, dims_of(w, calib_task_voxels));
}

/// Writes the global trace registry (stage spans, thread-pool and comm
/// counters) as JSON to `path`.  Spans are recorded into per-thread shards
/// first (see common/timeline.hpp), so drain them into the registry before
/// serializing.
inline void dump_metrics(const std::string& path) {
  trace::flush();
  trace::global().write_json(path);
}

/// Turns tracing on for the bench's lifetime and writes the metrics
/// sidecar `<argv0>.metrics.json` when main() returns, so every table and
/// figure reproduction leaves a machine-readable stage breakdown next to
/// its printed output.  Declare first in main().
class MetricsSidecar {
 public:
  explicit MetricsSidecar(const std::string& argv0)
      : path_(argv0 + ".metrics.json") {
    trace::set_enabled(true);
    trace::meta_set("simd/isa",
                    linalg::simd::isa_name(linalg::simd::active_isa()));
  }
  ~MetricsSidecar() {
    dump_metrics(path_);
    std::printf("\nmetrics sidecar written to %s\n", path_.c_str());
  }

  MetricsSidecar(const MetricsSidecar&) = delete;
  MetricsSidecar& operator=(const MetricsSidecar&) = delete;

 private:
  std::string path_;
};

/// Standard preamble: describes the modeled-machine methodology once per
/// bench so table outputs are self-explanatory.
inline void print_preamble(const std::string& what) {
  std::printf(
      "\n%s\n"
      "(event counts from the deterministic cache/VPU simulator; times and\n"
      " GFLOPS are modeled for the paper's machines via archsim — absolute\n"
      " 2015 wall-clock is not reproducible, shapes and ratios are)\n\n",
      what.c_str());
}

}  // namespace fcma::bench
