// Reproduces Table 8: SVM cross-validation time and vectorization intensity
// for LibSVM (sparse/double), optimized LibSVM (dense/float) and PhiSVM
// (dense/float + adaptive working-set selection).
//
// Paper values: LibSVM 3600ms/1.9; optimized LibSVM 1150ms; PhiSVM
// 390ms/9.8 — for one face-scene worker task's cross-validation.
#include "bench_common.hpp"
#include "fcma/corr_norm.hpp"
#include "fcma/svm_stage.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_table8_svm",
          "Table 8: SVM cross-validation across the three solvers");
  cli.add_flag("voxels", "1024", "scaled brain size");
  cli.add_flag("subjects", "9", "scaled subject count");
  cli.add_flag("task", "6", "voxels cross-validated per solver");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble("Table 8 reproduction: SVM cross-validation");
  const bench::Workload w = bench::make_workload(
      fmri::face_scene_spec(), static_cast<std::size_t>(cli.get_int("voxels")),
      static_cast<std::int32_t>(cli.get_int("subjects")));
  const auto task_voxels = static_cast<std::uint32_t>(cli.get_int("task"));
  // Start at the first planted informative voxel so the accuracy sanity
  // column carries signal.
  const core::VoxelTask task{w.dataset.informative_voxels().front(),
                             task_voxels};
  const std::size_t m = w.epochs.per_epoch.size();

  // Shared stage-1/2 output and precomputed kernels (Table 8 isolates the
  // CV itself; kernels are precomputed, as in the paper's setup).
  linalg::Matrix buf = core::make_corr_buffer(task, m, w.dataset.voxels());
  core::optimized_correlate_normalize(w.epochs, task, buf.view(),
                                      core::NormMode::kMerged);
  const auto folds = core::epoch_loso_folds(w.epochs.meta);
  const auto labels = core::epoch_labels(w.epochs.meta);

  std::vector<linalg::Matrix> kernels;
  for (std::uint32_t v = 0; v < task_voxels; ++v) {
    linalg::Matrix k(m, m);
    core::compute_voxel_kernel(buf.view(), m, v, core::Impl::kOptimized,
                               k.view());
    kernels.push_back(std::move(k));
  }

  struct Row {
    const char* name;
    svm::SolverKind kind;
    const char* paper_time;
    const char* paper_intensity;
  };
  const Row rows[] = {
      {"LibSVM", svm::SolverKind::kLibSvm, "3600 ms", "1.9"},
      {"Optimized LibSVM", svm::SolverKind::kOptimizedLibSvm, "1150 ms",
       "(n/r)"},
      {"PhiSVM", svm::SolverKind::kPhiSvm, "390 ms", "9.8"},
  };

  Table t("Table 8: SVM cross-validation (scaled dims; modeled Phi time "
          "for a 120-voxel task)");
  t.header({"solver", "modeled time (ms)", "vector intensity", "SMO iters",
            "mean accuracy", "paper time", "paper intensity"});
  double libsvm_ms = 0.0;
  double phisvm_ms = 0.0;
  for (const Row& row : rows) {
    memsim::Instrument ins;
    double acc_sum = 0.0;
    long iters = 0;
    for (const auto& k : kernels) {
      const svm::CvResult cv = svm::cross_validate(
          row.kind, k.view(), labels, folds, svm::TrainOptions{}, &ins);
      acc_sum += cv.accuracy();
      iters += cv.iterations;
    }
    // The baseline can only hold 120 voxels' data (one thread per voxel,
    // SS3.3.3); the optimized path accumulates >=240 kernel matrices.
    const int threads = row.kind == svm::SolverKind::kLibSvm ? 120 : 240;
    const auto arch = archsim::Phi5110P();
    // Extrapolate events to the paper's task: SVM work scales with
    // V * S * M^2 (see cluster/cost_model.hpp).
    const auto paper = fmri::face_scene_spec();
    const double scale =
        (120.0 * paper.subjects *
         static_cast<double>(paper.epochs_total) * paper.epochs_total) /
        (static_cast<double>(task_voxels) * w.dataset.subjects() *
         static_cast<double>(m) * static_cast<double>(m));
    const double ms = arch.modeled_seconds(ins.events(), threads) * scale * 1e3;
    if (row.kind == svm::SolverKind::kLibSvm) libsvm_ms = ms;
    if (row.kind == svm::SolverKind::kPhiSvm) phisvm_ms = ms;
    t.row({row.name, Table::num(ms, 0),
           Table::num(ins.events().vector_intensity(), 1),
           Table::count(iters),
           Table::num(acc_sum / static_cast<double>(kernels.size()), 2),
           row.paper_time, row.paper_intensity});
  }
  t.print();
  std::printf("\nLibSVM/PhiSVM speedup: ours %.1fx, paper 9.2x\n",
              libsvm_ms / phisvm_ms);
  return 0;
}
