// Reproduces Fig 8: speedup of the offline analysis as a function of the
// number of coprocessors, for both datasets.
//
// Paper values at 96 nodes: 59.8x (face-scene), 73.5x (attention) — the
// larger dataset scales further because it has more tasks per fold, so
// per-fold load imbalance bites later.
#include "bench_common.hpp"
#include "cluster/sim.hpp"
#include "fcma/task.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_fig8_speedup", "Fig 8: offline-analysis speedup curves");
  cli.add_flag("voxels", "1024", "scaled brain size for calibration");
  cli.add_flag("subjects", "6", "scaled subject count for calibration");
  cli.add_flag("task-size", "0",
               "voxels per task (0 = the paper's per-dataset assignment: 120 "
               "for face-scene, 60 for attention)");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble("Fig 8 reproduction: cluster speedup curves");
  const auto arch = archsim::Phi5110P();
  const std::size_t task_size_flag =
      static_cast<std::size_t>(cli.get_int("task-size"));
  const std::size_t node_counts[] = {1, 8, 16, 32, 64, 96};
  const struct {
    fmri::DatasetSpec paper;
    double paper_96;
  } datasets[] = {
      {fmri::face_scene_spec(), 59.8},
      {fmri::attention_spec(), 73.5},
  };

  Table t("Fig 8: speedup vs coprocessor count (ideal = node count)");
  t.header({"dataset", "8", "16", "32", "64", "96", "paper @96"});
  for (const auto& ds : datasets) {
    const bench::Workload w = bench::make_workload(
        ds.paper, static_cast<std::size_t>(cli.get_int("voxels")),
        static_cast<std::int32_t>(cli.get_int("subjects")));
    const auto cost =
        bench::calibrate(w, core::PipelineConfig::optimized());
    const std::size_t task_size =
        task_size_flag != 0 ? task_size_flag
                            : (ds.paper.name == "face-scene" ? 120 : 60);
    const std::size_t s = static_cast<std::size_t>(ds.paper.subjects);
    cluster::TaskDims dims = bench::paper_dims(ds.paper, task_size);
    dims.epochs = ds.paper.epochs_total / s * (s - 1);
    dims.subjects = ds.paper.subjects - 1;
    const auto tasks = core::partition_voxels(ds.paper.voxels, task_size);
    std::vector<double> task_seconds;
    for (const auto& task : tasks) {
      cluster::TaskDims d = dims;
      d.task_voxels = task.count;
      task_seconds.push_back(cost.task_seconds(d, arch, 240));
    }
    cluster::FarmConfig farm;
    farm.fold_overhead_s = 1.0;  // serial master work per fold (see sim.hpp)
    farm.broadcast_bytes =
        static_cast<double>(ds.paper.voxels) *
        static_cast<double>(ds.paper.epochs_total * ds.paper.epoch_length) *
        4.0;
    farm.result_bytes = static_cast<double>(task_size) * 8.0;
    farm.workers = 1;
    const double t1 =
        cluster::simulate_task_farm(farm, task_seconds, s).makespan_s;
    std::vector<std::string> row{ds.paper.name};
    for (const std::size_t nodes : node_counts) {
      if (nodes == 1) continue;
      farm.workers = nodes;
      const double tn =
          cluster::simulate_task_farm(farm, task_seconds, s).makespan_s;
      row.push_back(Table::num(t1 / tn, 1) + "x");
    }
    row.push_back(Table::num(ds.paper_96, 1) + "x");
    t.row(row);
  }
  t.print();
  return 0;
}
