// Host wall-clock microbenchmarks of the production kernels
// (google-benchmark).  These complement the modeled-machine tables: they
// demonstrate that the optimized kernels also beat the generic baseline on
// whatever real CPU this runs on, the paper's SS5.5 observation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>

#include "common/rng.hpp"
#include "linalg/baseline.hpp"
#include "linalg/opt.hpp"
#include "linalg/tune.hpp"
#include "stats/normalization.hpp"

namespace {

using namespace fcma;

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  linalg::Matrix m(r, c);
  Rng rng(seed);
  for (auto& v : m.flat()) v = rng.uniform(-1.0f, 1.0f);
  return m;
}

void BM_CorrGemm_Optimized(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(120, 12, 1);
  const linalg::Matrix b = random_matrix(n, 12, 2);
  linalg::Matrix c(120, n);
  for (auto _ : state) {
    linalg::opt::gemm_nt(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 120 * n * 12 * 2);
}
BENCHMARK(BM_CorrGemm_Optimized)->Arg(4096)->Arg(16384);

void BM_CorrGemm_Baseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(120, 12, 1);
  const linalg::Matrix b = random_matrix(n, 12, 2);
  linalg::Matrix c(120, n);
  for (auto _ : state) {
    linalg::baseline::gemm_nt(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 120 * n * 12 * 2);
}
BENCHMARK(BM_CorrGemm_Baseline)->Arg(4096)->Arg(16384);

void BM_Syrk_Optimized(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(m, 8192, 3);
  linalg::Matrix c(m, m);
  for (auto _ : state) {
    linalg::opt::syrk(a.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * m * 8192);
}
BENCHMARK(BM_Syrk_Optimized)->Arg(204)->Arg(540);

void BM_Syrk_Baseline(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_matrix(m, 8192, 3);
  linalg::Matrix c(m, m);
  for (auto _ : state) {
    linalg::baseline::syrk(a.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * m * 8192);
}
BENCHMARK(BM_Syrk_Baseline)->Arg(204)->Arg(540);

void BM_FisherZscoreBlock(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<float> block(12 * width);
  std::vector<float> work(12 * width);
  for (auto& v : block) v = rng.uniform(-0.95f, 0.95f);
  for (auto _ : state) {
    work = block;
    stats::fisher_zscore_block(work.data(), 12, width, width);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * 12 * width);
}
BENCHMARK(BM_FisherZscoreBlock)->Arg(4096)->Arg(34470);

// --tune: instead of the google-benchmark suite, probe the autotuner on the
// shapes the suite exercises and print each class's winner, one parseable
// `tune <class> <geometry> src=...` line per decision (bench_smoke.sh lifts
// these into the sidecar's tune section).
int run_tune_mode() {
  auto& tuner = linalg::tune::Tuner::instance();
  const struct {
    std::size_t m, n, k;
  } gemm_shapes[] = {{120, 4096, 12}, {120, 16384, 12}};
  for (const auto& s : gemm_shapes) {
    (void)tuner.gemm(s.m, s.n, s.k);
  }
  const struct {
    std::size_t m, n;
  } syrk_shapes[] = {{204, 8192}, {540, 8192}};
  for (const auto& s : syrk_shapes) {
    (void)tuner.syrk(s.m, s.n);
  }
  for (const auto& e : tuner.entries()) {
    if (e.kind == "gemm") {
      std::printf("tune %s panel_cols=%zu unroll=%d src=%s gflops=%.1f\n",
                  e.key.c_str(), e.gemm.panel_cols, e.gemm.unroll,
                  e.source.c_str(), e.gflops);
    } else {
      std::printf("tune %s panel_k=%zu micro_rows=%zu src=%s gflops=%.1f\n",
                  e.key.c_str(), e.syrk.panel_k, e.syrk.micro_rows,
                  e.source.c_str(), e.gflops);
    }
  }
  std::printf("tune_done probes=%zu cache_hits=%zu\n", tuner.probes(),
              tuner.cache_hits());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--tune") return run_tune_mode();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
