// Prices continuous profiling (PR 9): the identical serial pipeline sweep
// with tracing fully off vs streaming every span to fcma.tlstream.v1
// segment files.  Two measurement choices keep a small delta resolvable on
// shared hardware:
//
//  * Both variants run interleaved inside ONE process as back-to-back
//    pairs, alternating which leg of each pair goes first, and the
//    overhead is the median of the per-pair streamed/untraced wall-clock
//    ratios — process-level A/B timing swings ±10% between invocations
//    (DVFS, CPU contention), while the two legs of one pair sample the
//    same machine state, so their ratio cancels the machine's mood and
//    the median discards bursts that land inside a single leg.
//  * The workload is the single-threaded stage 1-3 pipeline, not the
//    cluster farm: the farm's scheduler/heartbeat jitter on a loaded box
//    dwarfs the tracing cost being measured.  The span record + ring
//    publish + spill path priced here is per-thread and identical to what
//    every cluster rank runs.
//
// The streamed leg uses a deliberately small ring (--ring) so segments
// spill continuously mid-run — the always-on production shape, not a
// single flush at exit — and the timed window includes finalize_stream()
// because publishing the manifest is part of the streaming cost.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <vector>

#include "bench_common.hpp"
#include "common/timeline.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_trace_overhead",
          "continuous-profiling cost: untraced vs streamed pipeline sweep");
  cli.add_flag("voxels", "128", "scaled brain size");
  cli.add_flag("subjects", "4", "scaled subject count");
  cli.add_flag("task", "8", "voxels per task (small = more spans per rep)");
  cli.add_flag("reps", "3", "interleaved untraced/streamed pairs");
  cli.add_flag("ring", "64", "per-thread ring capacity (small = spill "
                             "continuously mid-run)");
  cli.add_flag("stream-dir", "", "stream segment root (default "
                                 "<argv0>.stream, wiped per invocation)");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Tracing overhead: untraced vs streamed pipeline, interleaved A/B");
#ifdef FCMA_TRACE_DISABLED
  std::printf("tracing compiled out (FCMA_TRACE=OFF): nothing to measure\n");
  std::printf("trace_overhead pct=0.00 baseline_s=0 streaming_s=0 "
              "events=0 dropped=0\n");
  return 0;
#else
  const bench::Workload w = bench::make_workload(
      fmri::face_scene_spec(), static_cast<std::size_t>(cli.get_int("voxels")),
      static_cast<std::int32_t>(cli.get_int("subjects")));
  const core::PipelineConfig config = core::PipelineConfig::optimized();
  const auto task_voxels = static_cast<std::uint32_t>(cli.get_int("task"));
  const auto total = static_cast<std::uint32_t>(w.dataset.voxels());
  const int reps = cli.get_int("reps");
  const auto ring = static_cast<std::size_t>(cli.get_int("ring"));
  std::string stream_root = cli.get("stream-dir");
  if (stream_root.empty()) stream_root = std::string(argv[0]) + ".stream";
  std::filesystem::remove_all(stream_root);

  // One full sweep over the brain, serial, returning an accuracy checksum
  // so the two variants can be compared for identity.
  auto sweep = [&] {
    double checksum = 0.0;
    for (std::uint32_t first = 0; first < total; first += task_voxels) {
      const core::VoxelTask task{first,
                                 std::min(task_voxels, total - first)};
      const core::TaskResult r = core::run_task(w.epochs, task, config);
      for (const double a : r.accuracy) checksum += a;
    }
    return checksum;
  };
  auto wall = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  auto& timeline = trace::Timeline::global();

  // One untraced leg: the main switch is off, so spans, counters and comm
  // span contexts all collapse to no-ops.
  double sum_off = 0.0;
  auto run_off = [&] {
    trace::set_enabled(false);
    return wall([&] { sum_off = sweep(); });
  };
  // One streamed leg: fresh sinks and run id per rep (reset() detaches the
  // previous rep's lanes, so every rep streams into its own directory).
  double sum_on = 0.0;
  std::uint64_t streamed_events = 0;
  std::uint64_t streamed_dropped = 0;
  int rep_seq = 0;
  auto run_on = [&] {
    const std::string dir = stream_root + "/rep" + std::to_string(rep_seq++);
    timeline.reset();
    timeline.set_ring_capacity(ring);
    trace::new_run_id();
    trace::set_enabled(true);
    trace::set_timeline_enabled(true);
    trace::set_stream_dir(dir);
    const double s = wall([&] {
      sum_on = sweep();
      timeline.finalize_stream();
    });
    streamed_events = timeline.events_published();
    streamed_dropped += timeline.events_dropped();
    trace::set_stream_dir("");
    trace::set_timeline_enabled(false);
    return s;
  };

  std::vector<double> off_s;
  std::vector<double> on_s;
  for (int rep = 0; rep < reps; ++rep) {
    if (rep % 2 == 0) {
      off_s.push_back(run_off());
      on_s.push_back(run_on());
    } else {
      on_s.push_back(run_on());
      off_s.push_back(run_off());
    }
  }
  // The sidecar's own dump below needs the main switch back on.
  trace::set_enabled(true);

  if (std::abs(sum_off - sum_on) > 1e-12) {
    std::fprintf(stderr,
                 "trace_overhead: streamed sweep checksum %.17g != untraced "
                 "%.17g — tracing must not change results\n",
                 sum_on, sum_off);
    return 1;
  }
  if (streamed_dropped != 0) {
    std::fprintf(stderr,
                 "trace_overhead: %llu events dropped with streaming armed "
                 "(continuous profiling must not drop)\n",
                 static_cast<unsigned long long>(streamed_dropped));
    return 1;
  }

  const double min_off = *std::min_element(off_s.begin(), off_s.end());
  const double min_on = *std::min_element(on_s.begin(), on_s.end());
  std::vector<double> ratios(off_s.size());
  for (std::size_t i = 0; i < off_s.size(); ++i) {
    ratios[i] = on_s[i] / off_s[i];
  }
  std::sort(ratios.begin(), ratios.end());
  const std::size_t mid = ratios.size() / 2;
  const double median_ratio =
      ratios.size() % 2 != 0 ? ratios[mid]
                             : 0.5 * (ratios[mid - 1] + ratios[mid]);
  const double pct = 100.0 * (median_ratio - 1.0);

  Table t("wall clock over " + std::to_string(reps) + " interleaved pairs");
  t.header({"variant", "min wall (s)", "events", "dropped"});
  t.row({"untraced", Table::num(min_off, 3), "0", "0"});
  t.row({"streamed", Table::num(min_on, 3),
         Table::count(static_cast<long long>(streamed_events)), "0"});
  t.print();

  std::printf("trace_overhead pct=%.2f baseline_s=%.3f streaming_s=%.3f "
              "events=%llu dropped=%llu\n",
              pct, min_off, min_on,
              static_cast<unsigned long long>(streamed_events),
              static_cast<unsigned long long>(streamed_dropped));
  trace::gauge_set("trace/baseline_wall_s", min_off);
  trace::gauge_set("trace/streaming_wall_s", min_on);
  trace::gauge_set("trace/overhead_pct", pct);
  trace::gauge_set("trace/streamed_events",
                   static_cast<double>(streamed_events));
  return 0;
#endif  // FCMA_TRACE_DISABLED
}
