// Ablation: working-set-selection heuristics in the dense SMO solver —
// first-order (Keerthi), second-order (Fan/Chen/Lin, LibSVM's default) and
// PhiSVM's adaptive switch.  The paper's PhiSVM "adaptively chooses the
// faster heuristic based on the convergence rate" (SS4.4); this bench shows
// when each wins.
#include "bench_common.hpp"
#include "fcma/corr_norm.hpp"
#include "fcma/svm_stage.hpp"
#include "svm/dense_solver.hpp"

using namespace fcma;

int main(int argc, char** argv) {
  const fcma::bench::MetricsSidecar metrics(argv[0]);
  Cli cli("bench_ablation_wss",
          "ablation: SMO working-set selection heuristics");
  cli.add_flag("voxels", "1024", "scaled brain size");
  cli.add_flag("subjects", "9", "scaled subject count");
  cli.add_flag("task", "8", "voxels cross-validated");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_preamble(
      "Ablation: first-order vs second-order vs adaptive WSS");
  const bench::Workload w = bench::make_workload(
      fmri::face_scene_spec(), static_cast<std::size_t>(cli.get_int("voxels")),
      static_cast<std::int32_t>(cli.get_int("subjects")));
  const auto task_voxels = static_cast<std::uint32_t>(cli.get_int("task"));
  const core::VoxelTask task{w.dataset.informative_voxels().front(),
                             task_voxels};
  const std::size_t m = w.epochs.per_epoch.size();
  linalg::Matrix buf = core::make_corr_buffer(task, m, w.dataset.voxels());
  core::optimized_correlate_normalize(w.epochs, task, buf.view(),
                                      core::NormMode::kMerged);
  const auto folds = core::epoch_loso_folds(w.epochs.meta);
  const auto labels = core::epoch_labels(w.epochs.meta);

  const struct {
    const char* name;
    svm::Heuristic heuristic;
  } rows[] = {
      {"first order (Keerthi et al.)", svm::Heuristic::kFirstOrder},
      {"second order (Fan et al.)", svm::Heuristic::kSecondOrder},
      {"adaptive (PhiSVM)", svm::Heuristic::kAdaptive},
  };

  Table t("WSS heuristic ablation over real FCMA voxel problems");
  t.header({"heuristic", "SMO iterations", "host ms", "mean accuracy"});
  for (const auto& row : rows) {
    long iters = 0;
    double acc = 0.0;
    WallTimer timer;
    for (std::uint32_t v = 0; v < task_voxels; ++v) {
      linalg::Matrix kernel(m, m);
      core::compute_voxel_kernel(buf.view(), m, v, core::Impl::kOptimized,
                                 kernel.view());
      for (const auto& test : folds) {
        std::vector<bool> in_test(m, false);
        for (const std::size_t x : test) in_test[x] = true;
        std::vector<std::size_t> train_idx;
        for (std::size_t x = 0; x < m; ++x) {
          if (!in_test[x]) train_idx.push_back(x);
        }
        const svm::Model model =
            svm::dense_train(kernel.view(), labels, train_idx,
                             svm::TrainOptions{}, row.heuristic);
        iters += model.iterations;
        std::size_t correct = 0;
        for (const std::size_t x : test) {
          const double f =
              svm::decision_value(model, kernel.view(), x, train_idx);
          correct += ((f >= 0.0 ? 1 : -1) == labels[x]);
        }
        acc += static_cast<double>(correct) /
               static_cast<double>(test.size());
      }
    }
    const double total_folds =
        static_cast<double>(task_voxels) * static_cast<double>(folds.size());
    t.row({row.name, Table::count(iters), Table::num(timer.millis(), 1),
           Table::num(acc / total_folds, 3)});
  }
  t.print();
  return 0;
}
