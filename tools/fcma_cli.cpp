// fcma — command-line driver for the FCMA toolkit.
//
// Wraps the library's main workflows behind one binary so an analysis can
// run end-to-end without writing C++:
//
//   fcma generate   --out study --voxels 512 --subjects 8
//   fcma info       --in study
//   fcma preprocess --in study --out clean --detrend 1 --spike-threshold 8
//   fcma analyze    --in clean --report analysis.txt --fdr 0.05
//   fcma offline    --in clean --report offline.txt --top-k 32
//
// Datasets live in the FCMB/epoch-file pair written by fmri::save_dataset;
// `generate --grid X,Y,Z` additionally writes an FCMM brain mask and the
// analysis report then includes ROI clusters.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "cluster/checkpoint.hpp"
#include "cluster/driver.hpp"
#include "common/cli.hpp"
#include "common/histogram.hpp"
#include "common/json.hpp"
#include "common/timeline.hpp"
#include "common/timer.hpp"
#include "common/tlstream.hpp"
#include "common/trace.hpp"
#include "memsim/instrument.hpp"
#include "fcma/memory_model.hpp"
#include "fcma/offline.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/report.hpp"
#include "fcma/scoreboard.hpp"
#include "fcma/selection.hpp"
#include "fmri/io.hpp"
#include "fmri/preprocess.hpp"
#include "fmri/presets.hpp"
#include "fmri/shard_store.hpp"
#include "fmri/synthetic.hpp"
#include "linalg/simd.hpp"
#include "linalg/tune.hpp"
#include "threading/thread_pool.hpp"

namespace {

using namespace fcma;

void usage() {
  std::puts(
      "fcma <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate    synthesize a dataset (optionally volumetric)\n"
      "  info        summarize a dataset\n"
      "  preprocess  detrend + censor motion spikes (+ smooth if a mask "
      "exists)\n"
      "  shard       convert a dataset into a subject-sharded on-disk store\n"
      "              (fcma.shards.v1) for out-of-core analysis\n"
      "  analyze     run the FCMA pipeline and write a report\n"
      "  cluster     run the fault-tolerant master-worker farm (in-process\n"
      "              ranks; --fault-* injection, --checkpoint/--resume)\n"
      "  offline     run the nested leave-one-subject-out study\n"
      "  report      summarize a --trace JSON file (spans, percentiles,\n"
      "              roofline, cluster balance)\n"
      "\n"
      "run `fcma <command> --help` for that command's flags.");
}

// Autotuner knobs shared by the analysis commands (analyze/cluster/offline).
// CLI flags override the FCMA_TUNE / FCMA_TUNE_CACHE / FCMA_TUNE_FORCE
// environment the Tuner read on first use.
void add_tune_flags(Cli& cli) {
  cli.add_flag("tune-off", "false",
               "disable the shape-adaptive kernel autotuner (fixed default "
               "geometry; results stay bit-identical either way)");
  cli.add_flag("tune-cache", "",
               "persistent tuning cache path (fcma.tune.v1 JSON; loaded if "
               "present, rewritten after new decisions)");
  cli.add_flag("tune-force", "",
               "pin kernel geometries, e.g. gemm:256:u2,syrk:48:r6");
}

void apply_tune_flags(const Cli& cli) {
  auto& tuner = linalg::tune::Tuner::instance();
  if (cli.get_bool("tune-off")) tuner.set_enabled(false);
  if (!cli.get("tune-force").empty()) tuner.set_force(cli.get("tune-force"));
  if (!cli.get("tune-cache").empty()) {
    tuner.set_cache_path(cli.get("tune-cache"));
  }
}

// Tracing knobs shared by the analysis commands (analyze/cluster/offline).
void add_trace_flags(Cli& cli) {
  cli.add_flag("trace", "",
               "write a JSON span/counter trace of the run to this path");
  cli.add_flag("trace-timeline", "",
               "write a Chrome-trace timeline of the run to this path "
               "(open in chrome://tracing or ui.perfetto.dev)");
  cli.add_flag("trace-stream", "",
               "continuously stream the timeline to fcma.tlstream.v1 "
               "segment files in this directory (full rings spill instead "
               "of dropping; tail live with `fcma report --stream-in <dir> "
               "--follow`)");
}

/// What setup_tracing() armed, for the end-of-run prints and exit dump.
struct TraceSetup {
  std::string trace_path;
  std::string timeline_path;
  std::string stream_dir;
  bool tracing = false;
};

TraceSetup setup_tracing(const Cli& cli) {
  TraceSetup t;
  t.trace_path = cli.get("trace");
  t.timeline_path = cli.get("trace-timeline");
  t.stream_dir = cli.get("trace-stream");
  t.tracing = !t.trace_path.empty() || !t.timeline_path.empty() ||
              !t.stream_dir.empty();
  if (!t.tracing) return t;
  trace::set_enabled(true);
  // FCMA_TL_RING shrinks the per-thread event rings (tests force tiny
  // rings to exercise the spill path mid-run).
  if (const char* ring = std::getenv("FCMA_TL_RING")) {
    const long n = std::strtol(ring, nullptr, 10);
    if (n > 0) {
      trace::Timeline::global().set_ring_capacity(
          static_cast<std::size_t>(n));
    }
  }
  // Event capture must be live before the recording threads register their
  // sinks (rings are sized at sink creation); streaming implies events.
  if (!t.timeline_path.empty() || !t.stream_dir.empty()) {
    trace::set_timeline_enabled(true);
  }
  if (!t.stream_dir.empty()) trace::set_stream_dir(t.stream_dir);
  trace::set_thread_name("main");
  trace::set_exit_dump(t.trace_path, t.timeline_path);
  trace::meta_set("simd/isa",
                  linalg::simd::isa_name(linalg::simd::active_isa()));
  trace::meta_set("trace/run_id",
                  trace::tlstream::trace_hex(trace::run_id()));
  return t;
}

void finish_tracing(const TraceSetup& t) {
  if (!t.tracing) return;
  trace::dump_now();
  if (!t.trace_path.empty()) {
    std::printf("trace written to %s\n", t.trace_path.c_str());
  }
  if (!t.timeline_path.empty()) {
    std::printf("timeline written to %s\n", t.timeline_path.c_str());
  }
  if (!t.stream_dir.empty()) {
    std::printf("timeline stream written to %s (trace %s)\n",
                t.stream_dir.c_str(),
                trace::tlstream::trace_hex(trace::run_id()).c_str());
  }
}

// Out-of-core knob shared by the analysis commands.
void add_budget_flag(Cli& cli) {
  cli.add_flag("memory-budget", "",
               "peak-memory budget, e.g. 512M or 2G (bytes; K/M/G "
               "suffixes).  Streams epoch panels through a bounded cache "
               "and sizes tasks to fit, instead of materializing the whole "
               "normalized dataset; reports stay byte-identical");
}

// "512M"/"2G"/"1048576" byte sizes for --memory-budget.
std::size_t parse_bytes(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  FCMA_CHECK(end != s.c_str() && value >= 0.0, "bad byte size: " + s);
  std::size_t scale = 1;
  if (*end != '\0') {
    FCMA_CHECK(end[1] == '\0', "bad byte-size suffix: " + s);
    switch (*end) {
      case 'k': case 'K': scale = 1ull << 10; break;
      case 'm': case 'M': scale = 1ull << 20; break;
      case 'g': case 'G': scale = 1ull << 30; break;
      default: fcma::raise("bad byte-size suffix: " + s);
    }
  }
  return static_cast<std::size_t>(value * static_cast<double>(scale));
}

core::BudgetPlan budget_plan_for(const fmri::DatasetView& view,
                                 std::size_t budget_bytes) {
  return core::plan_residency(
      view.epochs().size(), view.epochs_per_subject(), view.voxels(),
      static_cast<std::size_t>(view.epochs().front().length), budget_bytes);
}

int cmd_generate(int argc, const char* const* argv) {
  Cli cli("fcma generate", "synthesize a planted-connectivity dataset");
  cli.add_flag("out", "study", "output stem (<stem>.fcmb/.epochs[/.fcmm])");
  cli.add_flag("voxels", "512", "brain voxels (ignored with --grid)");
  cli.add_flag("subjects", "8", "subject count");
  cli.add_flag("epochs-per-subject", "12", "epochs per subject (even)");
  cli.add_flag("informative", "64", "planted informative voxels");
  cli.add_flag("signal", "0.8", "latent loading of informative voxels");
  cli.add_flag("seed", "42", "generator seed");
  cli.add_flag("grid", "",
               "volumetric mode: X,Y,Z grid with an ellipsoid brain mask "
               "and blob-planted ROIs");
  cli.add_flag("blobs", "4", "ROI blob count (volumetric mode)");
  if (!cli.parse(argc, argv)) return 0;

  fmri::DatasetSpec spec = fmri::tiny_spec();
  spec.name = cli.get("out");
  spec.voxels = static_cast<std::size_t>(cli.get_int("voxels"));
  spec.subjects = static_cast<std::int32_t>(cli.get_int("subjects"));
  spec.epochs_total = static_cast<std::size_t>(
      cli.get_int("epochs-per-subject") * cli.get_int("subjects"));
  spec.informative = static_cast<std::size_t>(cli.get_int("informative"));
  spec.signal = cli.get_double("signal");
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const std::string stem = cli.get("out");
  const std::string grid = cli.get("grid");
  if (!grid.empty()) {
    int nx = 0;
    int ny = 0;
    int nz = 0;
    FCMA_CHECK(std::sscanf(grid.c_str(), "%d,%d,%d", &nx, &ny, &nz) == 3,
               "--grid expects X,Y,Z");
    const fmri::VolumetricDataset vol = fmri::generate_synthetic_volumetric(
        spec, fmri::VolumeGeometry{nx, ny, nz},
        static_cast<std::size_t>(cli.get_int("blobs")));
    fmri::save_dataset(stem, vol.dataset);
    fmri::save_mask(stem + ".fcmm", vol.mask);
    std::printf("wrote %s.fcmb/.epochs/.fcmm: %zu brain voxels in a "
                "%dx%dx%d grid, %zu planted ROI voxels in %zu blobs\n",
                stem.c_str(), vol.dataset.voxels(), nx, ny, nz,
                vol.dataset.informative_voxels().size(),
                vol.planted_rois.size());
  } else {
    const fmri::Dataset d = fmri::generate_synthetic(spec);
    fmri::save_dataset(stem, d);
    std::printf("wrote %s.fcmb/.epochs: %zu voxels, %d subjects, %zu "
                "epochs, %zu planted informative voxels\n",
                stem.c_str(), d.voxels(), d.subjects(), d.epochs().size(),
                d.informative_voxels().size());
  }
  return 0;
}

int cmd_info(int argc, const char* const* argv) {
  Cli cli("fcma info", "summarize a dataset");
  cli.add_flag("in", "study", "dataset stem");
  if (!cli.parse(argc, argv)) return 0;
  // Works on either backend: a shard store is summarized from its manifest
  // and epoch labels without touching the activity payloads.
  const auto view = fmri::open_dataset_view(cli.get("in"), cli.get("in"));
  std::printf("dataset %s (%s)\n", view->name().c_str(),
              fmri::shard_store_exists(cli.get("in")) ? "sharded" : "fcmb");
  std::printf("  voxels:      %zu\n", view->voxels());
  std::printf("  time points: %zu\n", view->timepoints());
  std::printf("  subjects:    %d\n", view->subjects());
  std::printf("  epochs:      %zu (%zu per subject, length %u)\n",
              view->epochs().size(), view->epochs_per_subject(),
              view->epochs().front().length);
  std::size_t ones = 0;
  for (const auto& e : view->epochs()) ones += (e.label == 1);
  std::printf("  label balance: %.2f\n",
              static_cast<double>(ones) /
                  static_cast<double>(view->epochs().size()));
  return 0;
}

int cmd_shard(int argc, const char* const* argv) {
  Cli cli("fcma shard",
          "convert a dataset into a subject-sharded store (fcma.shards.v1)");
  cli.add_flag("in", "study", "input dataset stem (<stem>.fcmb/.epochs)");
  cli.add_flag("out", "", "output stem (defaults to --in)");
  if (!cli.parse(argc, argv)) return 0;
  const std::string in = cli.get("in");
  const std::string out = cli.get("out").empty() ? in : cli.get("out");
  const fmri::Dataset d = fmri::load_dataset(in, in);
  fmri::write_shard_store(out, d);
  // Carry the brain mask along so analyses on the store still cluster ROIs.
  if (out != in) {
    try {
      fmri::save_mask(out + ".fcmm", fmri::load_mask(in + ".fcmm"));
    } catch (const Error&) {
      // No mask alongside the input; nothing to copy.
    }
  }
  std::printf("wrote %s.shards + %d subject shard(s): %zu voxels, %zu "
              "epochs\n",
              out.c_str(), d.subjects(), d.voxels(), d.epochs().size());
  return 0;
}

int cmd_preprocess(int argc, const char* const* argv) {
  Cli cli("fcma preprocess", "detrend, censor, and (with a mask) smooth");
  cli.add_flag("in", "study", "input dataset stem");
  cli.add_flag("out", "clean", "output dataset stem");
  cli.add_flag("detrend", "1", "polynomial detrend order (-1 = off)");
  cli.add_flag("spike-threshold", "8.0",
               "motion-spike threshold in robust SDs (0 = off)");
  cli.add_flag("fwhm", "0", "Gaussian smoothing FWHM in voxels (needs "
                            "<in>.fcmm; 0 = off)");
  if (!cli.parse(argc, argv)) return 0;

  fmri::Dataset d = fmri::load_dataset(cli.get("in"), cli.get("in"));
  const long order = cli.get_int("detrend");
  if (order >= 0) {
    fmri::detrend_dataset(d, static_cast<int>(order));
    std::printf("detrended (order %ld)\n", order);
  }
  const double fwhm = cli.get_double("fwhm");
  if (fwhm > 0.0) {
    const fmri::BrainMask mask = fmri::load_mask(cli.get("in") + ".fcmm");
    fmri::spatial_smooth(d, mask, fwhm);
    fmri::save_mask(cli.get("out") + ".fcmm", mask);
    std::printf("smoothed (FWHM %.1f voxels)\n", fwhm);
  }
  const double thresh = cli.get_double("spike-threshold");
  if (thresh > 0.0) {
    const auto spikes = fmri::detect_motion_spikes(d, thresh);
    const auto censored = fmri::censored_epochs(d, spikes);
    std::printf("motion spikes: %zu -> %zu epoch(s) censored\n",
                spikes.size(), censored.size());
    // Censoring is recorded by *dropping* the epochs from the label file:
    // rebuild the dataset with only usable epochs referenced.
    if (!censored.empty()) {
      const auto usable = fmri::usable_epochs(d, spikes);
      std::vector<fmri::Epoch> keep;
      for (const std::size_t e : usable) keep.push_back(d.epochs()[e]);
      fmri::save_activity(cli.get("out") + ".fcmb", d.data());
      fmri::save_epochs(cli.get("out") + ".epochs", keep);
      std::printf("wrote %s (with %zu usable epochs)\n",
                  cli.get("out").c_str(), keep.size());
      return 0;
    }
  }
  fmri::save_dataset(cli.get("out"), d);
  std::printf("wrote %s\n", cli.get("out").c_str());
  return 0;
}

int cmd_analyze(int argc, const char* const* argv) {
  Cli cli("fcma analyze", "score every voxel and write a report");
  cli.add_flag("in", "study", "dataset stem");
  cli.add_flag("report", "analysis.txt", "report output path");
  cli.add_flag("top-k", "20", "voxels listed in the report");
  cli.add_flag("fdr", "0.05", "FDR level for the selected set");
  cli.add_flag("grouped", "64", "voxels in flight (memory-bounded driver)");
  cli.add_flag("baseline", "false", "use the baseline implementation");
  cli.add_flag("threads", "0",
               "worker threads for stage 3 (0 = hardware concurrency)");
  cli.add_flag("sched", "steal",
               "task scheduler: steal (work-stealing pool) or serial");
  add_trace_flags(cli);
  add_budget_flag(cli);
  add_tune_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_tune_flags(cli);
  const std::string sched = cli.get("sched");
  FCMA_CHECK(sched == "steal" || sched == "serial",
             "--sched expects 'steal' or 'serial'");

  const TraceSetup tracing_setup = setup_tracing(cli);
  const bool tracing = tracing_setup.tracing;

  const auto view = fmri::open_dataset_view(cli.get("in"), cli.get("in"));
  const std::size_t budget = parse_bytes(cli.get("memory-budget"));
  core::PipelineConfig config = cli.get_bool("baseline")
                                    ? core::PipelineConfig::baseline()
                                    : core::PipelineConfig::optimized();
  std::optional<threading::ThreadPool> pool;
  if (sched == "steal") {
    pool.emplace(static_cast<std::size_t>(cli.get_int("threads")));
    config.pool = &*pool;
  }
  WallTimer timer;
  core::Scoreboard board(view->voxels());
  std::optional<fmri::NormalizedEpochs> epochs;  // resident path only
  if (budget > 0) {
    // Out-of-core run: panels stream through a budget-bounded cache, the
    // task grain caps kernel accumulation, and the group size caps the
    // in-flight correlation block — peak residency follows the plan, not
    // the dataset size.  Per-voxel results are independent of the task
    // partition, so the report is byte-identical to the resident run.
    const core::BudgetPlan plan = budget_plan_for(*view, budget);
    core::StreamedEpochs source(
        *view,
        core::StreamedEpochs::Options{plan.panel_cache_bytes, config.pool});
    for (const core::VoxelTask& task :
         core::partition_voxels(view->voxels(), plan.voxels_per_task)) {
      board.add(core::run_task_grouped(source, task, config,
                                       plan.group_voxels));
    }
  } else {
    epochs = fmri::normalize_epochs(*view);
    board.add(core::run_task_grouped(
        *epochs,
        core::VoxelTask{0, static_cast<std::uint32_t>(view->voxels())},
        config, static_cast<std::size_t>(cli.get_int("grouped"))));
  }
  std::printf("scored %zu voxels in %.1f s\n", view->voxels(),
              timer.seconds());

  if (tracing && epochs.has_value()) {
    // Roofline calibration: a small serial instrumented run whose memsim
    // event counts attach modeled-time / arithmetic-intensity / %-roofline
    // attribution to the gemm/syrk/svm span labels in the exported trace.
    // Resident runs only — it needs the materialized epochs, and a
    // budgeted run must not allocate them.
    memsim::Instrument ins(memsim::Machine::kPhi5110P);
    core::PipelineConfig calib = config;
    calib.pool = nullptr;
    const auto calib_voxels = static_cast<std::uint32_t>(
        std::min<std::size_t>(8, view->voxels()));
    (void)core::run_task_instrumented(
        *epochs, core::VoxelTask{0, calib_voxels}, calib, ins);
  }

  const auto selected = core::significant_voxels(
      board, view->epochs().size(), cli.get_double("fdr"),
      core::Correction::kFdr);
  std::printf("FDR (q = %.3g) selected %zu voxels\n",
              cli.get_double("fdr"), selected.size());

  core::ReportOptions opts;
  opts.cv_total = view->epochs().size();
  opts.top_voxels = static_cast<std::size_t>(cli.get_int("top-k"));
  std::string report;
  // Use the mask for ROI clustering when one exists alongside the data.
  try {
    const fmri::BrainMask mask = fmri::load_mask(cli.get("in") + ".fcmm");
    report = core::render_report(board, selected, &mask, opts);
  } catch (const Error&) {
    report = core::render_report(board, selected, nullptr, opts);
  }
  core::write_report(cli.get("report"), report);
  std::printf("report written to %s\n", cli.get("report").c_str());
  finish_tracing(tracing_setup);
  return 0;
}

int cmd_cluster(int argc, const char* const* argv) {
  Cli cli("fcma cluster",
          "fault-tolerant master-worker analysis over in-process ranks");
  cli.add_flag("in", "study", "dataset stem");
  cli.add_flag("report", "cluster.txt", "report output path");
  cli.add_flag("workers", "3", "worker ranks (rank 0 is the master)");
  cli.add_flag("voxels-per-task", "0",
               "voxels per task (0 = one task per worker)");
  cli.add_flag("batch", "0", "tasks per assignment (0 = auto)");
  cli.add_flag("low-water", "1", "worker queue level that requests a refill");
  cli.add_flag("top-k", "20", "voxels listed in the report");
  cli.add_flag("fdr", "0.05", "FDR level for the selected set");
  cli.add_flag("lease-timeout", "10.0",
               "seconds of silence after which a leased worker is declared "
               "dead and its tasks requeued");
  cli.add_flag("fault-seed", "0", "fault-injection decision seed");
  cli.add_flag("fault-drop", "0", "P(drop) per message");
  cli.add_flag("fault-dup", "0", "P(duplicate) per message");
  cli.add_flag("fault-corrupt", "0", "P(corrupt payload) per message");
  cli.add_flag("fault-delay", "0", "P(delay/reorder) per message");
  cli.add_flag("fault-kill-rank", "0",
               "worker rank to crash mid-run (0 = none)");
  cli.add_flag("fault-kill-after", "0",
               "tasks the doomed rank completes before dying");
  cli.add_flag("fault-kill-master-after", "0",
               "batches the primary master dispatches before crashing "
               "(0 = never; requires --standby 1)");
  cli.add_flag("fault-stall-rank", "0",
               "worker rank that straggles (0 = none)");
  cli.add_flag("fault-stall-s", "0",
               "seconds the straggler sleeps before each task");
  cli.add_flag("standby", "1",
               "replicate the control plane to a standby rank that takes "
               "over if the master goes silent");
  cli.add_flag("speculate", "0",
               "speculatively re-dispatch straggling leases to idle ranks");
  cli.add_flag("spec-factor", "0.75",
               "lease age (fraction of --lease-timeout) that triggers "
               "speculation");
  cli.add_flag("join-workers", "0",
               "extra worker ranks that join mid-run (parked until "
               "--join-after results are in)");
  cli.add_flag("join-after", "1",
               "completed tasks that release the joining workers");
  cli.add_flag("leave-rank", "0",
               "worker rank that leaves gracefully mid-run (0 = none)");
  cli.add_flag("leave-after", "1",
               "tasks the leaving rank completes before departing");
  cli.add_flag("checkpoint", "",
               "scoreboard checkpoint path (fcma.ckpt.v1; written "
               "periodically and at completion)");
  cli.add_flag("checkpoint-every", "0",
               "task results between periodic checkpoints (0 = final only)");
  cli.add_flag("resume", "",
               "resume from a checkpoint, skipping scored voxel ranges");
  add_trace_flags(cli);
  add_budget_flag(cli);
  add_tune_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_tune_flags(cli);

  const TraceSetup tracing_setup = setup_tracing(cli);

  const auto view = fmri::open_dataset_view(cli.get("in"), cli.get("in"));
  const std::size_t budget = parse_bytes(cli.get("memory-budget"));

  cluster::DriverOptions opts;
  opts.workers = static_cast<std::size_t>(cli.get_int("workers"));
  opts.voxels_per_task =
      static_cast<std::size_t>(cli.get_int("voxels-per-task"));
  opts.batch = static_cast<std::size_t>(cli.get_int("batch"));
  opts.low_water = static_cast<std::size_t>(cli.get_int("low-water"));
  opts.lease_timeout_s = cli.get_double("lease-timeout");
  opts.faults.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed"));
  opts.faults.drop = cli.get_double("fault-drop");
  opts.faults.duplicate = cli.get_double("fault-dup");
  opts.faults.corrupt = cli.get_double("fault-corrupt");
  opts.faults.delay = cli.get_double("fault-delay");
  opts.faults.kill_rank =
      static_cast<std::size_t>(cli.get_int("fault-kill-rank"));
  opts.faults.kill_after_tasks =
      static_cast<std::size_t>(cli.get_int("fault-kill-after"));
  opts.faults.kill_master_after_batches =
      static_cast<std::size_t>(cli.get_int("fault-kill-master-after"));
  opts.faults.stall_rank =
      static_cast<std::size_t>(cli.get_int("fault-stall-rank"));
  opts.faults.stall_s = cli.get_double("fault-stall-s");
  opts.standby = cli.get_int("standby") != 0;
  opts.speculate = cli.get_int("speculate") != 0;
  opts.speculation_factor = cli.get_double("spec-factor");
  opts.join_workers = static_cast<std::size_t>(cli.get_int("join-workers"));
  opts.join_after_tasks = static_cast<std::size_t>(cli.get_int("join-after"));
  opts.leave_rank = static_cast<std::size_t>(cli.get_int("leave-rank"));
  opts.leave_after_tasks =
      static_cast<std::size_t>(cli.get_int("leave-after"));
  opts.checkpoint_path = cli.get("checkpoint");
  opts.checkpoint_every =
      static_cast<std::size_t>(cli.get_int("checkpoint-every"));
  std::optional<core::Scoreboard> resumed;
  if (!cli.get("resume").empty()) {
    resumed = cluster::load_checkpoint(cli.get("resume"), view->voxels());
    opts.resume = &*resumed;
    std::printf("resuming from %s: %zu of %zu voxels already scored\n",
                cli.get("resume").c_str(), resumed->scored(),
                view->voxels());
  }

  WallTimer timer;
  cluster::DriverStats stats;
  std::optional<fmri::NormalizedEpochs> epochs;
  std::optional<core::ResidentEpochs> resident;
  std::optional<core::StreamedEpochs> streamed;
  core::EpochSource* source = nullptr;
  if (budget > 0) {
    const core::BudgetPlan plan = budget_plan_for(*view, budget);
    if (opts.voxels_per_task == 0) {
      // Every worker rank holds one task's correlation buffer at a time,
      // so the plan's correlation allowance is split across the ranks.
      opts.voxels_per_task =
          std::max<std::size_t>(1, plan.group_voxels / opts.workers);
    }
    streamed.emplace(
        *view, core::StreamedEpochs::Options{plan.panel_cache_bytes,
                                             nullptr});
    source = &*streamed;
  } else {
    epochs = fmri::normalize_epochs(*view);
    resident.emplace(*epochs);
    source = &*resident;
  }
  const core::Scoreboard board =
      cluster::run_cluster_analysis(*source, view->voxels(), opts, &stats);
  std::printf("scored %zu voxels on %zu workers in %.1f s "
              "(%zu tasks in %zu batches, %zu work requests)\n",
              view->voxels(), opts.workers, timer.seconds(),
              stats.tasks_dispatched, stats.batches, stats.work_requests);
  std::printf("recovery: deaths=%zu requeued=%zu retries=%zu "
              "heartbeat_misses=%zu corrupt=%zu wall=%.2fs\n",
              stats.workers_died, stats.tasks_requeued, stats.retries,
              stats.heartbeat_misses, stats.corrupt_payloads,
              stats.recovery_wall_s);
  std::printf("control plane: failovers=%zu speculative=%zu "
              "resurrections=%zu joined=%zu left=%zu\n",
              stats.failovers, stats.speculative_dispatches,
              stats.resurrections, stats.workers_joined, stats.workers_left);
  if (stats.checkpoints_written > 0) {
    std::printf("checkpoint written to %s (%zu snapshot(s))\n",
                opts.checkpoint_path.c_str(), stats.checkpoints_written);
  }

  const auto selected = core::significant_voxels(
      board, view->epochs().size(), cli.get_double("fdr"),
      core::Correction::kFdr);
  std::printf("FDR (q = %.3g) selected %zu voxels\n", cli.get_double("fdr"),
              selected.size());
  core::ReportOptions ropts;
  ropts.cv_total = view->epochs().size();
  ropts.top_voxels = static_cast<std::size_t>(cli.get_int("top-k"));
  std::string report;
  try {
    const fmri::BrainMask mask = fmri::load_mask(cli.get("in") + ".fcmm");
    report = core::render_report(board, selected, &mask, ropts);
  } catch (const Error&) {
    report = core::render_report(board, selected, nullptr, ropts);
  }
  core::write_report(cli.get("report"), report);
  std::printf("report written to %s\n", cli.get("report").c_str());
  finish_tracing(tracing_setup);
  return 0;
}

int cmd_offline(int argc, const char* const* argv) {
  Cli cli("fcma offline", "nested leave-one-subject-out study");
  cli.add_flag("in", "study", "dataset stem");
  cli.add_flag("report", "offline.txt", "report output path");
  cli.add_flag("top-k", "32", "voxels selected per fold");
  cli.add_flag("threads", "0",
               "worker threads for the task/stage parallelism (0 = hardware "
               "concurrency)");
  cli.add_flag("voxels-per-task", "64",
               "voxels per pipeline task (0 = the whole brain in one task)");
  cli.add_flag("sched", "steal",
               "task scheduler: steal (work-stealing pool) or serial");
  add_trace_flags(cli);
  add_budget_flag(cli);
  add_tune_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_tune_flags(cli);
  const std::string sched = cli.get("sched");
  FCMA_CHECK(sched == "steal" || sched == "serial",
             "--sched expects 'steal' or 'serial'");

  const TraceSetup tracing_setup = setup_tracing(cli);

  const auto view = fmri::open_dataset_view(cli.get("in"), cli.get("in"));
  core::OfflineOptions opts;
  opts.top_k = static_cast<std::size_t>(cli.get_int("top-k"));
  opts.voxels_per_task =
      static_cast<std::size_t>(cli.get_int("voxels-per-task"));
  opts.memory_budget_bytes = parse_bytes(cli.get("memory-budget"));
  std::optional<threading::ThreadPool> pool;
  if (sched == "steal") {
    pool.emplace(static_cast<std::size_t>(cli.get_int("threads")));
    opts.pipeline.pool = &*pool;
  }
  WallTimer timer;
  const core::OfflineResult result = core::run_offline_analysis(*view, opts);
  std::printf("%zu folds in %.1f s; mean held-out accuracy %.3f\n",
              result.folds.size(), timer.seconds(),
              result.mean_test_accuracy());
  std::string report;
  try {
    const fmri::BrainMask mask = fmri::load_mask(cli.get("in") + ".fcmm");
    report = core::render_offline_report(result, view->voxels(), &mask,
                                         core::ReportOptions{});
  } catch (const Error&) {
    report = core::render_offline_report(result, view->voxels(), nullptr,
                                         core::ReportOptions{});
  }
  core::write_report(cli.get("report"), report);
  std::printf("report written to %s\n", cli.get("report").c_str());
  finish_tracing(tracing_setup);
  return 0;
}

/// Per-span-class rollup of one stream read: counts, total time, and a
/// log-bucketed histogram for the percentile columns and the SLO rules.
struct ClassStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
  trace::LatencyHistogram hist;
};

std::map<std::string, ClassStats> fold_classes(
    const trace::tlstream::StreamRead& read) {
  std::map<std::string, ClassStats> classes;
  for (const auto& ev : read.events) {
    ClassStats& c = classes[trace::tlstream::span_class_of(ev.label)];
    const std::uint64_t dur_ns =
        ev.end_ns >= ev.start_ns ? ev.end_ns - ev.start_ns : 0;
    ++c.count;
    c.total_s += static_cast<double>(dur_ns) * 1e-9;
    c.hist.record_ns(dur_ns);
  }
  return classes;
}

/// Evaluates `rules` against the class rollup; prints one row per rule and
/// returns the violation count.  A rule matching no class is a violation
/// too — a silently-absent span class must not read as "SLO met".
std::size_t evaluate_slo(const std::vector<trace::tlstream::SloRule>& rules,
                         const std::map<std::string, ClassStats>& classes) {
  if (rules.empty()) return 0;
  std::size_t violations = 0;
  std::printf("\n%-44s %10s %12s %12s  %s\n", "slo rule", "count",
              "observed_s", "limit_s", "verdict");
  for (const auto& rule : rules) {
    trace::LatencyHistogram merged;
    std::uint64_t count = 0;
    for (const auto& [name, c] : classes) {
      if (!trace::tlstream::rule_matches(rule, name)) continue;
      merged.merge(c.hist);
      count += c.count;
    }
    double observed = 0.0;
    bool violated = false;
    if (count == 0) {
      violated = true;  // no matching spans: cannot claim the SLO held
    } else {
      observed = merged.quantile(rule.quantile);
      violated = observed >= rule.limit_s;
    }
    if (violated) ++violations;
    std::printf("%-44s %10llu %12.4g %12.4g  %s\n", rule.raw.c_str(),
                static_cast<unsigned long long>(count), observed,
                rule.limit_s,
                violated ? "VIOLATED" : (count == 0 ? "NO-DATA" : "OK"));
  }
  std::printf("slo/violations %zu\n", violations);
  return violations;
}

/// Critical-path attribution: where each dispatched task's wall time went,
/// bucketed by span class family across the whole merged timeline.
void print_attribution(const std::map<std::string, ClassStats>& classes) {
  struct Bucket {
    const char* name;
    const char* suffix_a;
    const char* suffix_b;
  };
  // Folded classes: worker<N> segments collapse to "worker".
  const Bucket buckets[] = {
      {"dispatch", "cluster/dispatch", nullptr},
      {"comm", "cluster/comm/assign", "cluster/comm/result"},
      {"queue wait", "cluster/queue", nullptr},
      {"compute", "cluster/worker/task", nullptr},
      {"recovery", "cluster/recovery", "cluster/recovery/takeover"},
  };
  double bucket_s[5] = {};
  std::uint64_t bucket_n[5] = {};
  bool any = false;
  for (const auto& [name, c] : classes) {
    for (std::size_t b = 0; b < 5; ++b) {
      const bool match =
          name == buckets[b].suffix_a ||
          (buckets[b].suffix_b != nullptr && name == buckets[b].suffix_b) ||
          name.rfind(std::string(buckets[b].suffix_a) + "/", 0) == 0;
      if (match) {
        bucket_s[b] += c.total_s;
        bucket_n[b] += c.count;
        any = true;
        break;
      }
    }
  }
  if (!any) return;
  double total = 0.0;
  for (const double s : bucket_s) total += s;
  std::printf("\ncritical-path attribution (all ranks, merged):\n");
  for (std::size_t b = 0; b < 5; ++b) {
    if (bucket_n[b] == 0) continue;
    std::printf("  %-12s %10llu spans %12.4g s  %5.1f%%\n", buckets[b].name,
                static_cast<unsigned long long>(bucket_n[b]), bucket_s[b],
                total > 0.0 ? 100.0 * bucket_s[b] / total : 0.0);
  }
}

/// Stream-mode report: merge (and optionally tail) an fcma.tlstream.v1
/// directory, render per-class percentiles + critical-path attribution, and
/// evaluate SLO rules.  Returns 2 when any rule is violated.
int report_stream(const Cli& cli) {
  const std::string dir = cli.get("stream-in");
  const bool follow = cli.get_bool("follow");
  const double follow_timeout = cli.get_double("follow-timeout");
  const double poll_s = cli.get_double("poll");
  const std::vector<trace::tlstream::SloRule> rules =
      trace::tlstream::parse_slo_rules(cli.get("slo"));

  trace::tlstream::StreamRead read;
  const auto started = std::chrono::steady_clock::now();
  bool timed_out = false;
  for (;;) {
    read = trace::tlstream::read_stream_dir(dir);
    if (!follow || read.done) break;
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    if (waited >= follow_timeout) {
      timed_out = true;
      break;
    }
    // Live tail: one rolling line per poll so an operator (and the smoke
    // test) can watch the run converge before the final report.
    const auto classes = fold_classes(read);
    double worst_p99 = 0.0;
    std::string worst;
    for (const auto& [name, c] : classes) {
      const double p99 = c.hist.quantile(0.99);
      if (p99 > worst_p99) {
        worst_p99 = p99;
        worst = name;
      }
    }
    std::printf("follow: %zu events in %zu segment(s), %zu class(es)%s\n",
                read.events.size(), read.segments, classes.size(),
                worst.empty()
                    ? ""
                    : ("; worst p99 " + worst + " = " +
                       std::to_string(worst_p99) + " s")
                          .c_str());
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_s));
  }

  std::printf("stream %s (%s)\n", dir.c_str(),
              std::string(trace::tlstream::kSchema).c_str());
  std::printf("  trace id:  %s\n",
              trace::tlstream::trace_hex(read.trace_id).c_str());
  std::printf("  events:    %zu in %zu segment(s)\n", read.events.size(),
              read.segments);
  if (read.done) {
    std::printf("  finalized: yes (%llu events, %llu dropped)\n",
                static_cast<unsigned long long>(read.done_events),
                static_cast<unsigned long long>(read.done_dropped));
  } else {
    std::printf("  finalized: no%s\n",
                timed_out ? " (--follow timed out)" : " (partial stream)");
  }
  for (const auto& w : read.warnings) {
    std::printf("  warning: %s\n", w.c_str());
  }

  const auto classes = fold_classes(read);
  std::printf("\n%-36s %10s %12s %12s %12s %12s\n", "span class", "count",
              "total_s", "p50_s", "p95_s", "p99_s");
  for (const auto& [name, c] : classes) {
    std::printf("%-36s %10llu %12.4g %12.4g %12.4g %12.4g\n", name.c_str(),
                static_cast<unsigned long long>(c.count), c.total_s,
                c.hist.quantile(0.50), c.hist.quantile(0.95),
                c.hist.quantile(0.99));
  }
  print_attribution(classes);

  const std::size_t violations = evaluate_slo(rules, classes);
  return violations > 0 ? 2 : 0;
}

int cmd_report(int argc, const char* const* argv) {
  Cli cli("fcma report",
          "summarize a --trace JSON file or an fcma.tlstream.v1 stream");
  cli.add_flag("trace-in", "", "fcma.trace.v1/v2 JSON file to summarize");
  cli.add_flag("top", "12", "span rows shown (by total time)");
  cli.add_flag("stream-in", "",
               "fcma.tlstream.v1 stream directory to merge and summarize "
               "(per-class percentiles, critical-path attribution)");
  cli.add_flag("follow", "false",
               "tail a live stream: poll until its stream.done manifest "
               "appears (or --follow-timeout elapses), then report");
  cli.add_flag("follow-timeout", "30",
               "seconds --follow waits for the run to finalize");
  cli.add_flag("poll", "0.2", "seconds between --follow polls");
  cli.add_flag("slo", "",
               "comma-separated SLO rules, e.g. "
               "'cluster/worker/task:p99<250ms,cluster/queue:p95<50ms'; any "
               "violation makes the exit code 2");
  if (!cli.parse(argc, argv)) return 0;
  if (!cli.get("stream-in").empty()) return report_stream(cli);
  const std::string path = cli.get("trace-in");
  FCMA_CHECK(!path.empty(),
             "report requires --trace-in <trace.json> or --stream-in <dir>");
  const json::Value doc = json::parse_file(path);
  FCMA_CHECK(doc.is_object(), "trace file is not a JSON object");
  std::printf("trace %s (%s)\n", path.c_str(),
              doc.at("schema").as_string().empty()
                  ? "unversioned"
                  : doc.at("schema").as_string().c_str());
  for (const auto& [name, v] : doc.at("meta").members()) {
    std::printf("  meta %-24s %s\n", name.c_str(), v.as_string().c_str());
  }

  // Spans, widest first.  v1 files have no percentile fields; at() then
  // yields 0 and the columns print as zeros rather than failing.
  std::vector<std::pair<std::string, const json::Value*>> spans;
  for (const auto& [label, v] : doc.at("spans").members()) {
    spans.emplace_back(label, &v);
  }
  std::sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
    return a.second->at("total_s").as_number() >
           b.second->at("total_s").as_number();
  });
  const auto top = static_cast<std::size_t>(cli.get_int("top"));
  std::printf("\n%-36s %10s %12s %12s %12s %12s\n", "span", "count",
              "total_s", "p50_s", "p95_s", "p99_s");
  for (std::size_t i = 0; i < spans.size() && i < top; ++i) {
    const json::Value& s = *spans[i].second;
    std::printf("%-36s %10.0f %12.4g %12.4g %12.4g %12.4g\n",
                spans[i].first.c_str(), s.at("count").as_number(),
                s.at("total_s").as_number(), s.at("p50_s").as_number(),
                s.at("p95_s").as_number(), s.at("p99_s").as_number());
  }
  if (spans.size() > top) {
    std::printf("  ... %zu more span label(s)\n", spans.size() - top);
  }

  if (doc.at("roofline").size() > 0) {
    std::printf("\n%-36s %12s %10s %10s %8s  %s\n", "roofline", "modeled_s",
                "gflops", "ai_f/B", "%roof", "bound");
    for (const auto& [label, r] : doc.at("roofline").members()) {
      std::printf("%-36s %12.4g %10.3g %10.3g %8.1f  %s\n", label.c_str(),
                  r.at("modeled_s").as_number(), r.at("gflops").as_number(),
                  r.at("ai_flops_per_byte").as_number(),
                  r.at("pct_roofline").as_number(),
                  r.at("bound").as_string().c_str());
    }
  }

  // Cluster balance, when the trace came from a driver/sim run.
  const json::Value& gauges = doc.at("gauges");
  if (gauges.has("cluster/imbalance_ratio")) {
    std::printf("\ncluster balance: max %.4g s / mean %.4g s busy "
                "(imbalance %.3f)\n",
                gauges.at("cluster/max_worker_busy_s").as_number(),
                gauges.at("cluster/mean_worker_busy_s").as_number(),
                gauges.at("cluster/imbalance_ratio").as_number());
  }
  std::printf("\n%zu counter(s), %zu gauge(s)\n", doc.at("counters").size(),
              gauges.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parses its own flags.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "generate") return cmd_generate(sub_argc, sub_argv);
    if (command == "info") return cmd_info(sub_argc, sub_argv);
    if (command == "preprocess") return cmd_preprocess(sub_argc, sub_argv);
    if (command == "shard") return cmd_shard(sub_argc, sub_argv);
    if (command == "analyze") return cmd_analyze(sub_argc, sub_argv);
    if (command == "cluster") return cmd_cluster(sub_argc, sub_argv);
    if (command == "offline") return cmd_offline(sub_argc, sub_argv);
    if (command == "report") return cmd_report(sub_argc, sub_argv);
    std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
    usage();
    return 1;
  } catch (const fcma::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // A failed run still leaves its --trace/--trace-timeline files behind
    // (no-op unless a command armed the dump).
    fcma::trace::dump_now();
    return 1;
  }
}
