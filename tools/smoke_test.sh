#!/bin/sh
# End-to-end smoke test of the fcma CLI: generate -> info -> preprocess ->
# analyze -> offline -> report, asserting each artifact exists and the
# reports carry the expected sections.  When python3 is available, the
# trace/timeline artifacts are additionally schema-checked by
# tools/trace_check.py.
#
# Usage: smoke_test.sh <fcma-binary> [tools-dir]
set -eu
FCMA="$1"
TOOLS_DIR="${2:-$(dirname "$0")}"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

# Schema validation needs a python3; degrade to a warning where the
# interpreter is absent so the CLI checks still run.
if command -v python3 >/dev/null 2>&1; then
  trace_check() { python3 "$TOOLS_DIR/trace_check.py" "$@"; }
else
  echo "smoke: python3 not found, skipping trace_check.py validation" >&2
  trace_check() { :; }
fi

"$FCMA" generate --out study --grid 10,10,8 --subjects 4 \
    --epochs-per-subject 12 --informative 16 --blobs 2
test -f study.fcmb && test -f study.epochs && test -f study.fcmm

"$FCMA" info --in study | grep -q "subjects:    4"

"$FCMA" preprocess --in study --out clean --detrend 1 --fwhm 1.2
test -f clean.fcmb && test -f clean.fcmm

"$FCMA" analyze --in clean --report analysis.txt --top-k 6
grep -q "top voxels" analysis.txt
grep -q "ROI clusters" analysis.txt

# Tracing: the run's span/counter breakdown lands in a JSON file with all
# three pipeline stages, latency percentiles, roofline attribution, and the
# work-stealing scheduler's activity; --trace-timeline adds a Chrome-trace
# event dump with one named lane per scheduler worker.
"$FCMA" analyze --in clean --report traced.txt --top-k 6 --trace trace.json \
    --trace-timeline timeline.json
test -f trace.json && test -f timeline.json
grep -q '"fcma.trace.v2"' trace.json
grep -q 'correlation' trace.json
grep -q 'normalization' trace.json
grep -q 'svm' trace.json
grep -q 'sched/' trace.json
grep -q 'sched/steals' trace.json
grep -q 'sched/local_hits' trace.json
grep -q '"p95_s"' trace.json
grep -q '"roofline"' trace.json
grep -q 'task/correlation/gemm_nt' trace.json
grep -q '"fcma.timeline.v1"' timeline.json
grep -q 'sched/worker0' timeline.json
trace_check trace.json timeline.json

# The report subcommand renders the JSON back into tables.
"$FCMA" report --trace-in trace.json > report.txt
grep -q 'fcma.trace.v2' report.txt
grep -q 'task/correlation' report.txt
grep -q 'p95' report.txt
grep -q 'roofline' report.txt

# Abnormal exit still flushes the trace: a failing run must exit non-zero
# yet leave valid (if sparse) trace artifacts behind.
if "$FCMA" analyze --in /nonexistent --trace err.json \
    --trace-timeline err_tl.json 2>/dev/null; then
  echo "expected failure for a missing analyze input" >&2
  exit 1
fi
test -f err.json && test -f err_tl.json
grep -q '"fcma.trace.v2"' err.json
trace_check err.json err_tl.json

# --sched serial runs the same analysis without a pool and must produce an
# identical report (the scheduler only moves tasks between threads).
"$FCMA" analyze --in clean --report serial.txt --top-k 6 --sched serial
cmp traced.txt serial.txt
if "$FCMA" analyze --in clean --sched bogus 2>/dev/null; then
  echo "expected failure for an unknown --sched value" >&2
  exit 1
fi

# Forced-ISA dispatch: every variant runs on any host (portable vector
# code), reports itself in the trace metadata, and — because dispatch never
# changes answers — produces an identical report.
for isa in scalar avx2 avx512; do
  FCMA_FORCE_ISA=$isa "$FCMA" analyze --in clean --report "isa_$isa.txt" \
      --top-k 6 --trace "isa_$isa.json"
  grep -q "\"simd/isa\": \"$isa\"" "isa_$isa.json"
done
cmp isa_scalar.txt isa_avx2.txt
cmp isa_scalar.txt isa_avx512.txt

# Shape-adaptive autotuner: geometry only regroups whole dot products, so
# tuned, untuned, and forced runs must all render byte-identical reports.
# The persistent cache pays the probe cost exactly once, a forced geometry
# is honored verbatim, and a corrupt cache fails loudly instead of
# silently mistuning.
env FCMA_TUNE=on "$FCMA" analyze --in clean --report tuned.txt --top-k 6 \
    --tune-cache tune_cache.json --trace tuned1.json
test -f tune_cache.json
grep -q '"fcma.tune.v1"' tune_cache.json
grep -q '"tune/enabled": "1"' tuned1.json
grep -q '"tune/probes"' tuned1.json
trace_check tuned1.json
cmp traced.txt tuned.txt
# Warm cache: the second run must decide every shape class with zero probes.
env FCMA_TUNE=on "$FCMA" analyze --in clean --report tuned2.txt --top-k 6 \
    --tune-cache tune_cache.json --trace tuned2.json
grep -q '"tune/probes": 0' tuned2.json
cmp traced.txt tuned2.txt
# Tuning disabled and a forced off-default geometry: same bytes again.
env FCMA_TUNE=on "$FCMA" analyze --in clean --report tune_off.txt --top-k 6 \
    --tune-off
cmp tuned.txt tune_off.txt
env FCMA_TUNE=on "$FCMA" analyze --in clean --report tune_forced.txt \
    --top-k 6 --tune-force gemm:256,syrk:192 --trace tune_forced.json
grep -q 'panel_cols=256' tune_forced.json
grep -q 'panel_k=192' tune_forced.json
grep -q 'src=forced' tune_forced.json
trace_check tune_forced.json
cmp tuned.txt tune_forced.txt
# A corrupt cache is a hard error, not a silent re-probe.
echo '{not json' > corrupt_cache.json
if env FCMA_TUNE=on "$FCMA" analyze --in clean --report bad_tune.txt \
    --top-k 6 --tune-cache corrupt_cache.json 2>/dev/null; then
  echo "expected failure for a corrupt tuning cache" >&2
  exit 1
fi

"$FCMA" offline --in clean --report offline.txt --top-k 12 --threads 2 \
    --voxels-per-task 100
grep -q "per-fold results" offline.txt
grep -q "mean held-out accuracy" offline.txt

# Out-of-core data plane: shard the dataset (subject-sharded fcma.shards.v1
# store), then run analyze/offline streamed under a memory budget from both
# backends.  Streaming only changes *where* panels live, never their bytes,
# so every report must be byte-identical to the resident run; the streamed
# trace must carry the full io/* counter set (enforced by trace_check.py).
"$FCMA" shard --in clean --out sharded | grep -q "shards"
test -f sharded.shards && test -f sharded.epochs
"$FCMA" info --in sharded | grep -q "(sharded)"
"$FCMA" analyze --in sharded --report sharded_resident.txt --top-k 6
cmp traced.txt sharded_resident.txt
"$FCMA" analyze --in clean --report budgeted.txt --top-k 6 \
    --memory-budget 16M
cmp traced.txt budgeted.txt
"$FCMA" analyze --in sharded --report streamed.txt --top-k 6 \
    --memory-budget 16M --trace streamed.json
cmp traced.txt streamed.txt
grep -q 'io/shard_loads' streamed.json
grep -q 'io/bytes_mapped' streamed.json
grep -q 'io/prefetch_hits' streamed.json
grep -q 'io/stall_s' streamed.json
trace_check streamed.json
"$FCMA" offline --in sharded --report offline_streamed.txt --top-k 12 \
    --threads 2 --voxels-per-task 100 --memory-budget 16M
cmp offline.txt offline_streamed.txt
# A budget too small for even one subject's panels fails loudly.
if "$FCMA" analyze --in sharded --report tiny.txt --memory-budget 64K \
    2>/dev/null; then
  echo "expected failure for an impossible memory budget" >&2
  exit 1
fi

# Cluster driver: a clean 3-worker run, then a crash-injected run (worker 2
# killed after its first task, short lease so detection is fast).  The
# recovery protocol is bit-deterministic, so the two reports must be
# byte-identical; recovery counters land in the trace and are
# schema-checked (including the zero-valued ones on the clean run).
"$FCMA" cluster --in clean --report cluster_clean.txt --workers 3 \
    --voxels-per-task 40 --top-k 6 --trace cluster_clean.json \
    > cluster_clean.log
grep -q "top voxels" cluster_clean.txt
grep -q 'deaths=0' cluster_clean.log
grep -q 'cluster/tasks_dispatched' cluster_clean.json
grep -q 'cluster/retries' cluster_clean.json
grep -q 'cluster/reassignments' cluster_clean.json
trace_check cluster_clean.json

# Streamed farm: all worker ranks lease panels from one budgeted shard-
# backed source; any worker count must render the resident report verbatim.
"$FCMA" cluster --in sharded --report cluster_streamed.txt --workers 3 \
    --voxels-per-task 40 --top-k 6 --memory-budget 16M
cmp cluster_clean.txt cluster_streamed.txt
"$FCMA" cluster --in sharded --report cluster_streamed2.txt --workers 2 \
    --voxels-per-task 40 --top-k 6 --memory-budget 16M
cmp cluster_clean.txt cluster_streamed2.txt

"$FCMA" cluster --in clean --report cluster_faulted.txt --workers 3 \
    --voxels-per-task 40 --top-k 6 --lease-timeout 0.5 \
    --fault-kill-rank 2 --fault-kill-after 1 \
    --trace cluster_faulted.json > cluster_faulted.log
grep -q 'deaths=1' cluster_faulted.log
cmp cluster_clean.txt cluster_faulted.txt
trace_check cluster_faulted.json

# Replicated control plane: kill the primary master mid-fold; the standby
# detects the silence, announces the takeover, re-primes the workers from
# its replicated scoreboard, and the report stays byte-identical.
"$FCMA" cluster --in clean --report cluster_failover.txt --workers 2 \
    --voxels-per-task 40 --top-k 6 --lease-timeout 0.4 \
    --fault-kill-master-after 2 --trace cluster_failover.json \
    > cluster_failover.log
grep -q 'failovers=1' cluster_failover.log
cmp cluster_clean.txt cluster_failover.txt
grep -q 'cluster/failovers' cluster_failover.json
grep -q 'cluster/speculative_dispatches' cluster_failover.json
grep -q 'cluster/resurrections' cluster_failover.json
trace_check cluster_failover.json

# Speculative re-execution: a planted straggler ages its leases past the
# speculation threshold; duplicate completions are absorbed idempotently,
# so the report is byte-identical again (the dispatch count itself is
# timing-dependent, so only the identity is asserted).
"$FCMA" cluster --in clean --report cluster_spec.txt --workers 2 \
    --voxels-per-task 40 --top-k 6 --lease-timeout 0.6 --speculate 1 \
    --fault-stall-rank 2 --fault-stall-s 0.5 > cluster_spec.log
grep -q 'speculative=' cluster_spec.log
cmp cluster_clean.txt cluster_spec.txt

# Checkpoint during the run, then resume from the snapshot: the resumed run
# reports its head start and renders the same report again.
"$FCMA" cluster --in clean --report cluster_ckpt.txt --workers 3 \
    --voxels-per-task 40 --top-k 6 --checkpoint board.ckpt \
    --checkpoint-every 2 > cluster_ckpt.log
test -f board.ckpt
grep -q 'checkpoint written' cluster_ckpt.log
"$FCMA" cluster --in clean --report cluster_resumed.txt --workers 3 \
    --voxels-per-task 40 --top-k 6 --resume board.ckpt \
    > cluster_resume.log
grep -q 'resuming from' cluster_resume.log
cmp cluster_clean.txt cluster_resumed.txt
if "$FCMA" cluster --in clean --resume /nonexistent 2>/dev/null; then
  echo "expected failure for a missing resume checkpoint" >&2
  exit 1
fi

# Distributed trace correlation + continuous profiling: a streaming cluster
# run with a deliberately tiny event ring (FCMA_TL_RING=32) must spill every
# ring overflow to fcma.tlstream.v1 segments instead of dropping, survive a
# worker kill AND a master failover, and still merge into one finalized
# cross-rank timeline — zero dropped events, every span stamped with the
# run's trace id, no orphan parent references (all enforced by
# trace_check.py's stream mode).
env FCMA_TL_RING=32 "$FCMA" cluster --in clean --report cluster_stream.txt \
    --workers 3 --voxels-per-task 40 --top-k 6 --lease-timeout 0.5 \
    --fault-kill-rank 2 --fault-kill-after 1 --fault-kill-master-after 2 \
    --trace-stream stream_dir > cluster_stream.log
grep -q 'deaths=1' cluster_stream.log
grep -q 'failovers=1' cluster_stream.log
cmp cluster_clean.txt cluster_stream.txt
test -f stream_dir/stream.done
grep -q '"dropped": 0' stream_dir/stream.done
trace_check stream_dir

# The merged report stitches all ranks into one causal timeline: per-class
# percentiles (worker ranks folded into one class), critical-path
# attribution including the kill's recovery window, and the run's trace id.
"$FCMA" report --stream-in stream_dir > stream_report.txt
grep -q 'finalized: yes' stream_report.txt
grep -q '0 dropped' stream_report.txt
grep -q 'cluster/worker/task' stream_report.txt
grep -q 'cluster/comm/assign' stream_report.txt
grep -q 'critical-path attribution' stream_report.txt
grep -q 'recovery' stream_report.txt

# Declarative SLOs: an impossible rule must be reported VIOLATED and turn
# the exit code non-zero; a generous rule passes the same stream.
if "$FCMA" report --stream-in stream_dir \
    --slo 'cluster/worker/task:p99<1ns' > slo_report.txt; then
  echo "expected a violated SLO to exit non-zero" >&2
  exit 1
fi
grep -q 'VIOLATED' slo_report.txt
grep -q 'slo/violations 1' slo_report.txt
"$FCMA" report --stream-in stream_dir \
    --slo 'cluster/worker/task:p99<100s' > slo_ok.txt
grep -q 'slo/violations 0' slo_ok.txt

# Live SLO surface: --follow tails the stream of a *running* job and only
# reports once the stream finalizes; the violation still exits non-zero.
mkdir stream_live
env FCMA_TL_RING=32 "$FCMA" cluster --in clean --report cluster_live.txt \
    --workers 3 --voxels-per-task 40 --top-k 6 --trace-stream stream_live \
    > cluster_live.log &
CLUSTER_PID=$!
if "$FCMA" report --stream-in stream_live --follow --follow-timeout 60 \
    --slo 'cluster/worker/task:p99<1ns' > follow_report.txt; then
  echo "expected the followed stream's violated SLO to exit non-zero" >&2
  exit 1
fi
wait "$CLUSTER_PID"
grep -q 'follow:' follow_report.txt
grep -q 'finalized: yes' follow_report.txt
grep -q 'slo/violations 1' follow_report.txt
cmp cluster_clean.txt cluster_live.txt

# A corrupted segment must fail validation loudly, not parse quietly.
if command -v python3 >/dev/null 2>&1; then
  cp -r stream_dir stream_corrupt
  corrupt_seg=$(ls stream_corrupt/lane*.tls | head -n 1)
  printf 'this is not an event line\n' >> "$corrupt_seg"
  if trace_check stream_corrupt 2>/dev/null; then
    echo "expected trace_check to reject a corrupt segment" >&2
    exit 1
  fi
fi

# Bench sidecar drift gate: the per-PR BENCH_pr*.json files committed at
# the repo root were produced on one machine in one sitting, so comparing
# the two most recent is deterministic — tools/bench_diff.py fails on >10%
# regressions in the named spans.
REPO_ROOT=$(cd "$TOOLS_DIR/.." && pwd)
if command -v python3 >/dev/null 2>&1; then
  sidecars=$(ls "$REPO_ROOT"/BENCH_pr*.json 2>/dev/null \
    | sort -t r -k 2 -n || true)
  count=$(printf '%s\n' "$sidecars" | grep -c 'BENCH' || true)
  if [ "$count" -ge 2 ]; then
    prev=$(printf '%s\n' "$sidecars" | tail -n 2 | head -n 1)
    curr=$(printf '%s\n' "$sidecars" | tail -n 1)
    python3 "$TOOLS_DIR/bench_diff.py" "$prev" "$curr"
  else
    echo "smoke: fewer than two BENCH_pr*.json sidecars, skipping bench_diff" >&2
  fi
fi

# Error paths exit non-zero with a message.
if "$FCMA" info --in /nonexistent 2>/dev/null; then
  echo "expected failure for a missing dataset" >&2
  exit 1
fi
if "$FCMA" bogus-command 2>/dev/null; then
  echo "expected failure for an unknown command" >&2
  exit 1
fi
echo "cli smoke test passed"
