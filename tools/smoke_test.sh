#!/bin/sh
# End-to-end smoke test of the fcma CLI: generate -> info -> preprocess ->
# analyze -> offline, asserting each artifact exists and the reports carry
# the expected sections.
set -eu
FCMA="$1"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

"$FCMA" generate --out study --grid 10,10,8 --subjects 4 \
    --epochs-per-subject 12 --informative 16 --blobs 2
test -f study.fcmb && test -f study.epochs && test -f study.fcmm

"$FCMA" info --in study | grep -q "subjects:    4"

"$FCMA" preprocess --in study --out clean --detrend 1 --fwhm 1.2
test -f clean.fcmb && test -f clean.fcmm

"$FCMA" analyze --in clean --report analysis.txt --top-k 6
grep -q "top voxels" analysis.txt
grep -q "ROI clusters" analysis.txt

"$FCMA" offline --in clean --report offline.txt --top-k 12
grep -q "per-fold results" offline.txt
grep -q "mean held-out accuracy" offline.txt

# Error paths exit non-zero with a message.
if "$FCMA" info --in /nonexistent 2>/dev/null; then
  echo "expected failure for a missing dataset" >&2
  exit 1
fi
if "$FCMA" bogus-command 2>/dev/null; then
  echo "expected failure for an unknown command" >&2
  exit 1
fi
echo "cli smoke test passed"
