#!/bin/sh
# End-to-end smoke test of the fcma CLI: generate -> info -> preprocess ->
# analyze -> offline, asserting each artifact exists and the reports carry
# the expected sections.
set -eu
FCMA="$1"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

"$FCMA" generate --out study --grid 10,10,8 --subjects 4 \
    --epochs-per-subject 12 --informative 16 --blobs 2
test -f study.fcmb && test -f study.epochs && test -f study.fcmm

"$FCMA" info --in study | grep -q "subjects:    4"

"$FCMA" preprocess --in study --out clean --detrend 1 --fwhm 1.2
test -f clean.fcmb && test -f clean.fcmm

"$FCMA" analyze --in clean --report analysis.txt --top-k 6
grep -q "top voxels" analysis.txt
grep -q "ROI clusters" analysis.txt

# Tracing: the run's span/counter breakdown lands in a JSON file with all
# three pipeline stages and the work-stealing scheduler's activity.
"$FCMA" analyze --in clean --report traced.txt --top-k 6 --trace trace.json
test -f trace.json
grep -q '"fcma.trace.v1"' trace.json
grep -q 'correlation' trace.json
grep -q 'normalization' trace.json
grep -q 'svm' trace.json
grep -q 'sched/' trace.json
grep -q 'sched/steals' trace.json
grep -q 'sched/local_hits' trace.json

# --sched serial runs the same analysis without a pool and must produce an
# identical report (the scheduler only moves tasks between threads).
"$FCMA" analyze --in clean --report serial.txt --top-k 6 --sched serial
cmp traced.txt serial.txt
if "$FCMA" analyze --in clean --sched bogus 2>/dev/null; then
  echo "expected failure for an unknown --sched value" >&2
  exit 1
fi

# Forced-ISA dispatch: every variant runs on any host (portable vector
# code), reports itself in the trace metadata, and — because dispatch never
# changes answers — produces an identical report.
for isa in scalar avx2 avx512; do
  FCMA_FORCE_ISA=$isa "$FCMA" analyze --in clean --report "isa_$isa.txt" \
      --top-k 6 --trace "isa_$isa.json"
  grep -q "\"simd/isa\": \"$isa\"" "isa_$isa.json"
done
cmp isa_scalar.txt isa_avx2.txt
cmp isa_scalar.txt isa_avx512.txt

"$FCMA" offline --in clean --report offline.txt --top-k 12 --threads 2 \
    --voxels-per-task 100
grep -q "per-fold results" offline.txt
grep -q "mean held-out accuracy" offline.txt

# Error paths exit non-zero with a message.
if "$FCMA" info --in /nonexistent 2>/dev/null; then
  echo "expected failure for a missing dataset" >&2
  exit 1
fi
if "$FCMA" bogus-command 2>/dev/null; then
  echo "expected failure for an unknown command" >&2
  exit 1
fi
echo "cli smoke test passed"
