#!/bin/sh
# ThreadSanitizer gate for the concurrency-sensitive layers: configures a
# separate build tree with -DFCMA_SANITIZE=thread, builds the scheduler
# (unit + sched-stress), threading, tracing, and cluster fault-tolerance
# test binaries, and runs them under TSan.  Any reported race fails
# the script (halt_on_error); environments where TSan cannot compile or run
# (no libtsan, unsupported kernel/ASLR settings) skip with exit 77, which
# CTest maps to "skipped" via SKIP_RETURN_CODE.
#
# Usage: ci_tsan.sh <repo-root> [build-dir]
set -eu

SRC="${1:?usage: ci_tsan.sh <repo-root> [build-dir]}"
BUILD="${2:-$SRC/build-tsan}"

# Probe: can this toolchain produce and run a TSan binary at all?
PROBE_DIR=$(mktemp -d)
trap 'rm -rf "$PROBE_DIR"' EXIT
cat > "$PROBE_DIR/probe.cpp" <<'EOF'
#include <thread>
int main() {
  int x = 0;
  std::thread t([&x] { x = 1; });
  t.join();
  return x - 1;
}
EOF
if ! c++ -fsanitize=thread -g "$PROBE_DIR/probe.cpp" \
    -o "$PROBE_DIR/probe" 2>/dev/null; then
  echo "ci_tsan: toolchain cannot link -fsanitize=thread; skipping" >&2
  exit 77
fi
if ! "$PROBE_DIR/probe" >/dev/null 2>&1; then
  echo "ci_tsan: TSan binaries cannot run here; skipping" >&2
  exit 77
fi

# Configure the sanitizer tree.  Bench/example binaries are irrelevant to
# the race check and native-arch codegen just slows the instrumented build.
cmake -S "$SRC" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFCMA_SANITIZE=thread \
  -DFCMA_BUILD_BENCH=OFF \
  -DFCMA_BUILD_EXAMPLES=OFF \
  -DFCMA_NATIVE_ARCH=OFF > /dev/null

JOBS=$(nproc 2>/dev/null || echo 4)
cmake --build "$BUILD" \
  --target test_sched test_sched_stress test_threading test_trace \
          test_timeline test_tlstream test_cluster test_cluster_recovery \
  -j "$JOBS" > /dev/null

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
echo "ci_tsan: running test_sched under TSan"
"$BUILD/tests/test_sched"
echo "ci_tsan: running test_sched_stress under TSan"
"$BUILD/tests/test_sched_stress"
echo "ci_tsan: running test_threading under TSan"
"$BUILD/tests/test_threading"
echo "ci_tsan: running test_trace under TSan"
"$BUILD/tests/test_trace"
echo "ci_tsan: running test_timeline under TSan"
"$BUILD/tests/test_timeline"
# Stream spill + the follow-reader-vs-writers race: readers poll segment
# files while every ring overflow spills concurrently.
echo "ci_tsan: running test_tlstream under TSan"
"$BUILD/tests/test_tlstream"
# The cluster driver + fault-injection suites exercise the comm shutdown
# race, lease expiry, and worker-death requeue paths across real threads.
echo "ci_tsan: running test_cluster under TSan"
"$BUILD/tests/test_cluster"
echo "ci_tsan: running test_cluster_recovery under TSan"
"$BUILD/tests/test_cluster_recovery"
echo "ci_tsan: clean"
