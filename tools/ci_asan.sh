#!/bin/sh
# Address+UB sanitizer gate for the memory-sensitive layers: configures a
# separate build tree with -DFCMA_SANITIZE=address,undefined, builds the
# data-plane test binaries (shard store mmap lifecycle, streamed epoch
# cache, fmri io, pipeline stages), and runs them instrumented.  Any heap
# error, leak, or UB report fails the script (halt_on_error); environments
# where ASan cannot compile or run (no libasan, restricted ptrace/ASLR)
# skip with exit 77, which CTest maps to "skipped" via SKIP_RETURN_CODE.
#
# Usage: ci_asan.sh <repo-root> [build-dir]
set -eu

SRC="${1:?usage: ci_asan.sh <repo-root> [build-dir]}"
BUILD="${2:-$SRC/build-asan}"

# Probe: can this toolchain produce and run an ASan+UBSan binary at all?
PROBE_DIR=$(mktemp -d)
trap 'rm -rf "$PROBE_DIR"' EXIT
cat > "$PROBE_DIR/probe.cpp" <<'EOF'
#include <vector>
int main() {
  std::vector<int> v(4, 1);
  return v[3] - 1;
}
EOF
if ! c++ -fsanitize=address,undefined -g "$PROBE_DIR/probe.cpp" \
    -o "$PROBE_DIR/probe" 2>/dev/null; then
  echo "ci_asan: toolchain cannot link -fsanitize=address,undefined; skipping" >&2
  exit 77
fi
if ! "$PROBE_DIR/probe" >/dev/null 2>&1; then
  echo "ci_asan: ASan binaries cannot run here; skipping" >&2
  exit 77
fi

cmake -S "$SRC" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFCMA_SANITIZE=address,undefined \
  -DFCMA_BUILD_BENCH=OFF \
  -DFCMA_BUILD_EXAMPLES=OFF \
  -DFCMA_NATIVE_ARCH=OFF > /dev/null

JOBS=$(nproc 2>/dev/null || echo 4)
cmake --build "$BUILD" \
  --target test_shard_store test_epoch_source test_fmri test_fcma_stages \
  -j "$JOBS" > /dev/null

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
# The shard store maps files read-only and hands pointers up through
# Panel keepalives — exactly the lifetime bugs ASan catches.
echo "ci_asan: running test_shard_store under ASan+UBSan"
"$BUILD/tests/test_shard_store"
echo "ci_asan: running test_epoch_source under ASan+UBSan"
"$BUILD/tests/test_epoch_source"
echo "ci_asan: running test_fmri under ASan+UBSan"
"$BUILD/tests/test_fmri"
echo "ci_asan: running test_fcma_stages under ASan+UBSan"
"$BUILD/tests/test_fcma_stages"
echo "ci_asan: clean"
