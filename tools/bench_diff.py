#!/usr/bin/env python3
"""Compare two bench_smoke sidecars and fail on perf regressions.

Usage: bench_diff.py OLD.json NEW.json [--max-regress FRACTION]

Reads two BENCH_pr*.json files (fcma.bench_smoke.v3 or later; the per-PR
sidecars committed at the repo root) and compares the named spans below.
A span regresses when it moves in the bad direction by more than
--max-regress (default 0.10 = 10%) AND by more than the span's absolute
noise floor — wall-clock smoke numbers are small, so a floor keeps
millisecond jitter from failing the gate.  A span missing from the OLD
sidecar is skipped (schema grew since that PR); a span present in the old
sidecar but missing from the NEW one fails loudly by name — losing a
measurement is a regression of the harness, not noise.

Exit status: 0 = no regression, 1 = at least one, 2 = usage/parse error.
"""

import json
import sys

# (dot.path, direction, absolute noise floor).  Direction "down" means
# smaller is better (latencies); "up" means larger is better (throughput).
SPANS = [
    ("benches.table5_matmul_gflops.wall_s", "down", 0.08),
    ("benches.table5_matmul_gflops.gflops.opt_corr_gemm", "up", 2.0),
    ("benches.table5_matmul_gflops.gflops.opt_svm_syrk", "up", 2.0),
    ("benches.table7_stage_merging.wall_s", "down", 0.08),
    ("benches.table8_svm.wall_s", "down", 0.08),
    ("benches.fig9_single_node_speedup.wall_s", "down", 0.08),
    ("benches.fig9_single_node_speedup.small_grain_wall_s", "down", 0.08),
    ("benches.fig9_single_node_speedup.p95_task_correlation_s", "down",
     0.005),
    ("benches.fig9_single_node_speedup.p95_task_svm_s", "down", 0.005),
    ("benches.cluster_smoke.wall_s", "down", 0.08),
    ("benches.cluster_smoke_faulted.wall_s", "down", 0.08),
    ("benches.cluster_smoke_faulted.recovery_wall_s", "down", 0.10),
    ("benches.cluster_smoke_failover.wall_s", "down", 0.10),
    ("benches.cluster_smoke_failover.recovery_wall_s", "down", 0.15),
    # Autotuner quality (fcma.bench_smoke.v5+): how much of the fixed-vs-
    # best geometry gap the tuned pick recovers, clamped per shape to
    # [-100, 100].  A ratio of small wall-clock gaps swings tens of points
    # between runs, so the floor is set to catch only a sign-level collapse
    # (tuner actively mistuning), not jitter.
    ("benches.tune.recovered_pct_mean", "up", 100.0),
]


def lookup(doc, path):
    node = doc
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    max_regress = 0.10
    it = iter(argv[1:])
    for a in it:
        if a == "--max-regress":
            try:
                max_regress = float(next(it))
            except (StopIteration, ValueError):
                print("bench_diff: --max-regress needs a number",
                      file=sys.stderr)
                return 2
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    docs = []
    for path in args:
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, ValueError) as e:
            print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
            return 2
    old, new = docs

    failures = []
    lost = []
    compared = 0
    for path, direction, floor in SPANS:
        ov, nv = lookup(old, path), lookup(new, path)
        if ov is None:
            continue  # span postdates the old sidecar's schema
        if nv is None:
            lost.append(path)
            print(f"  {path}: {ov:g} -> MISSING  << LOST SPAN")
            continue
        compared += 1
        delta = nv - ov
        worse = delta if direction == "down" else -delta
        rel = worse / abs(ov) if ov else 0.0
        flag = ""
        if worse > floor and rel > max_regress:
            failures.append((path, ov, nv, rel))
            flag = "  << REGRESSION"
        print(f"  {path}: {ov:g} -> {nv:g} ({rel:+.1%}){flag}")
    if compared == 0 and not lost:
        print("bench_diff: no comparable spans between the two sidecars",
              file=sys.stderr)
        return 2
    if lost:
        for path in lost:
            print(f"bench_diff: span '{path}' exists in {args[0]} but is "
                  f"missing from {args[1]} — the new sidecar stopped "
                  "measuring it", file=sys.stderr)
        return 1
    if failures:
        print(f"bench_diff: {len(failures)} span(s) regressed more than "
              f"{max_regress:.0%} ({args[0]} -> {args[1]})",
              file=sys.stderr)
        return 1
    print(f"bench_diff: {compared} spans within {max_regress:.0%} "
          f"({args[0]} -> {args[1]})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
