#!/usr/bin/env python3
"""Validator for fcma trace artifacts.

Accepts any artifact the CLI / benches emit and sniffs which one it got:

* a metrics dump (``fcma.trace.v2``): the aggregate span/counter/gauge
  registry written by ``--trace`` and the bench sidecars.  Checks the schema
  string, that every span's quantiles are ordered (p50 <= p95 <= p99) and
  clamped inside the exact [min_s, max_s] range, that counters/gauges are
  numeric, and that any roofline attribution carries the full field set
  with sane values.
* a Chrome-trace timeline (``fcma.timeline.v1``): the per-thread event
  dump written by ``--trace-timeline``.  Checks that complete events are
  globally time-sorted with non-negative durations, that every event's
  lane (tid) has exactly one thread_name metadata record, and that named
  scheduler-worker lanes are distinct (one lane per worker).
* a stream directory (``fcma.tlstream.v1``): the continuous-profiling
  segments written by ``--trace-stream`` (pass the directory itself).
  Checks every segment's header against its filename, that every event
  line carries the full span-context field set with the run's trace id,
  that event end times are monotonic per lane, and — once the stream.done
  manifest is present — that the manifest's event total equals the merged
  parse (nothing was lost), that no torn tail survived the finalize, and
  that every non-zero parent span id resolves somewhere in the merge (no
  orphan cross-rank references).

Exit status 0 means the artifact validated; 1 means a check failed (each
failure is printed); 2 means it could not be read or parsed.

Usage: trace_check.py <trace.json|stream-dir> [more ...]
"""

import json
import os
import re
import sys

REQUIRED_SPAN_FIELDS = (
    "count", "total_s", "min_s", "max_s", "p50_s", "p95_s", "p99_s")
REQUIRED_ROOFLINE_FIELDS = (
    "modeled_s", "gflops", "ai_flops_per_byte", "pct_roofline", "bound")
# Autotuner decisions recorded in the meta section, one per shape class.
# The class key encodes the log2-bucketed dimensions; the value is the
# winning geometry plus provenance (probe sweep, cache hit, or forced).
TUNE_CLASS_RE = re.compile(r"^tune/(gemm:m\d+:n\d+:k\d+|syrk:m\d+:n\d+)$")
TUNE_GEMM_RE = re.compile(
    r"^panel_cols=\d+ unroll=\d+ src=(probe|cache|forced) "
    r"gflops=[0-9.]+ pct_roof=[0-9.]+$")
TUNE_SYRK_RE = re.compile(
    r"^panel_k=\d+ micro_rows=\d+ src=(probe|cache|forced) "
    r"gflops=[0-9.]+ pct_roof=[0-9.]+$")
# Quantiles interpolate inside power-of-two buckets, so allow a hair of
# floating-point slack around the exact recorded range.
EPS = 1e-9


class Checker:
    def __init__(self, path):
        self.path = path
        self.failures = []

    def check(self, ok, message):
        if not ok:
            self.failures.append(message)
        return ok

    def is_number(self, value):
        return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_metrics(c, doc):
    c.check(doc.get("schema") == "fcma.trace.v2",
            "schema is %r, expected 'fcma.trace.v2'" % doc.get("schema"))
    spans = doc.get("spans", {})
    c.check(isinstance(spans, dict), "'spans' is not an object")
    for label, span in sorted(spans.items() if isinstance(spans, dict) else []):
        for field in REQUIRED_SPAN_FIELDS:
            if not c.check(c.is_number(span.get(field)),
                           "span %r: missing numeric %r" % (label, field)):
                break
        else:
            lo, hi = span["min_s"], span["max_s"]
            p50, p95, p99 = span["p50_s"], span["p95_s"], span["p99_s"]
            c.check(span["count"] >= 1, "span %r: count < 1" % label)
            c.check(lo <= hi + EPS, "span %r: min_s > max_s" % label)
            c.check(p50 <= p95 + EPS and p95 <= p99 + EPS,
                    "span %r: quantiles not ordered "
                    "(p50=%g p95=%g p99=%g)" % (label, p50, p95, p99))
            c.check(lo - EPS <= p50 and p99 <= hi + EPS,
                    "span %r: quantiles escape [min_s, max_s] "
                    "([%g, %g] vs p50=%g p99=%g)" % (label, lo, hi, p50, p99))
    for section in ("counters", "gauges"):
        values = doc.get(section, {})
        c.check(isinstance(values, dict), "%r is not an object" % section)
        for name, value in (values.items() if isinstance(values, dict) else []):
            c.check(c.is_number(value),
                    "%s %r: value is not numeric" % (section, name))
    # Cluster runs must emit the full recovery counter set (zeros included):
    # consumers diffing a clean run against a faulted one rely on every
    # counter being present in both.
    counters = doc.get("counters", {})
    if isinstance(counters, dict) and "cluster/tasks_dispatched" in counters:
        for name in ("cluster/retries", "cluster/reassignments",
                     "cluster/heartbeat_misses", "cluster/corrupt_payloads",
                     "cluster/speculative_dispatches",
                     "cluster/resurrections", "cluster/failovers"):
            value = counters.get(name)
            c.check(c.is_number(value) and value >= 0,
                    "cluster run: counter %r missing or negative" % name)
    # Streamed (out-of-core) runs must emit the full io counter set plus the
    # stall gauge (zeros included): prefetch-efficiency dashboards diff
    # io/prefetch_hits against io/shard_loads and need both present.
    if isinstance(counters, dict) and "io/shard_loads" in counters:
        for name in ("io/bytes_mapped", "io/prefetch_hits"):
            value = counters.get(name)
            c.check(c.is_number(value) and value >= 0,
                    "streamed run: counter %r missing or negative" % name)
        gauges = doc.get("gauges", {})
        stall = gauges.get("io/stall_s") if isinstance(gauges, dict) else None
        c.check(c.is_number(stall) and stall >= 0,
                "streamed run: gauge 'io/stall_s' missing or negative")
    # Autotuner runs must record every decision coherently: the enabled
    # flag is "0"/"1", each tune/<class> meta key names a valid shape class
    # and carries the full geometry + provenance string, and the probe /
    # cache-hit counters are seeded (zeros included) whenever the tuner ran.
    meta = doc.get("meta", {})
    meta = meta if isinstance(meta, dict) else {}
    tune_keys = [k for k in meta if k.startswith("tune/")]
    if tune_keys:
        enabled = meta.get("tune/enabled")
        c.check(enabled in ("0", "1"),
                "meta 'tune/enabled' is %r, expected '0' or '1'" % enabled)
        for name in ("tune/probes", "tune/cache_hits"):
            c.check(c.is_number(counters.get(name))
                    and counters.get(name, -1) >= 0,
                    "tune run: counter %r missing or negative" % name)
        for key in sorted(tune_keys):
            if key == "tune/enabled":
                continue
            if not c.check(TUNE_CLASS_RE.match(key) is not None,
                           "meta %r: not a valid tune shape class" % key):
                continue
            pattern = TUNE_GEMM_RE if key.startswith("tune/gemm") \
                else TUNE_SYRK_RE
            c.check(pattern.match(meta[key]) is not None,
                    "meta %r: malformed tune decision %r" % (key, meta[key]))
    for label, roof in sorted(doc.get("roofline", {}).items()):
        for field in REQUIRED_ROOFLINE_FIELDS:
            c.check(field in roof,
                    "roofline %r: missing field %r" % (label, field))
        if all(f in roof for f in REQUIRED_ROOFLINE_FIELDS):
            c.check(roof["bound"] in ("memory", "compute"),
                    "roofline %r: bound is %r" % (label, roof["bound"]))
            c.check(c.is_number(roof["pct_roofline"])
                    and roof["pct_roofline"] >= 0.0,
                    "roofline %r: pct_roofline negative" % label)
            c.check(c.is_number(roof["ai_flops_per_byte"])
                    and roof["ai_flops_per_byte"] >= 0.0,
                    "roofline %r: arithmetic intensity negative" % label)
    decisions = sum(1 for k in tune_keys if k != "tune/enabled")
    return "fcma.trace.v2 metrics: %d spans, %d roofline points, " \
        "%d tune decisions" % (
            len(spans), len(doc.get("roofline", {})), decisions)


def check_timeline(c, doc):
    other = doc.get("otherData", {})
    c.check(other.get("schema") == "fcma.timeline.v1",
            "otherData.schema is %r, expected 'fcma.timeline.v1'"
            % other.get("schema"))
    c.check(c.is_number(other.get("dropped_events")),
            "otherData.dropped_events missing or non-numeric")
    events = doc.get("traceEvents", [])
    if not c.check(isinstance(events, list), "'traceEvents' is not a list"):
        return "invalid"
    lane_names = {}  # tid -> list of thread_name records
    complete = []
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "thread_name":
            lane_names.setdefault(ev.get("tid"), []).append(
                ev.get("args", {}).get("name"))
        elif ph == "X":
            for field in ("ts", "dur"):
                c.check(c.is_number(ev.get(field)),
                        "event %d: missing numeric %r" % (i, field))
            complete.append(ev)
    prev_ts = None
    for ev in complete:
        ts, dur = ev.get("ts"), ev.get("dur")
        if not (c.is_number(ts) and c.is_number(dur)):
            continue
        c.check(dur >= 0.0, "event %r: negative duration" % ev.get("name"))
        if prev_ts is not None and not c.check(
                ts >= prev_ts, "timestamps not monotonic at %r (ts=%g after "
                "%g)" % (ev.get("name"), ts, prev_ts)):
            break
        prev_ts = ts
        c.check(ev.get("tid") in lane_names,
                "event %r: lane tid=%r has no thread_name metadata"
                % (ev.get("name"), ev.get("tid")))
    # One lane per thread: no tid renamed twice, no worker name reused.
    workers = {}
    for tid, names in sorted(lane_names.items(), key=lambda kv: str(kv[0])):
        c.check(len(names) == 1,
                "lane tid=%r has %d thread_name records" % (tid, len(names)))
        for name in names:
            if isinstance(name, str) and name.startswith("sched/worker"):
                c.check(name not in workers,
                        "worker lane %r claimed by tid %r and %r"
                        % (name, workers.get(name), tid))
                workers[name] = tid
    return "fcma.timeline.v1: %d events across %d lanes (%d worker lanes)" % (
        len(complete), len(lane_names), len(workers))


SEGMENT_RE = re.compile(r"^lane(\d+)-(\d+)\.tls(\.part)?$")
TRACE_HEX_RE = re.compile(r"^[0-9a-f]{16}$")
STREAM_EVENT_FIELDS = ("ts", "dur", "label", "span", "parent", "trace")


def parse_stream_segment(c, path, lane_id, seq, state):
    """Parses one segment file into the shared stream `state`."""
    with open(path, "rb") as f:
        data = f.read()
    lines = data.split(b"\n")
    torn = lines and lines[-1] != b""  # no trailing newline: in-flight tail
    body = lines[:-1]
    if torn:
        state["torn"].append(os.path.basename(path))
    if not c.check(len(body) >= 1, "%s: segment has no header" % path):
        return
    try:
        header = json.loads(body[0])
    except ValueError:
        c.check(False, "%s: unparseable header" % path)
        return
    c.check(header.get("schema") == "fcma.tlstream.v1",
            "%s: header schema is %r" % (path, header.get("schema")))
    c.check(header.get("lane_id") == lane_id,
            "%s: header lane_id %r != filename lane %d"
            % (path, header.get("lane_id"), lane_id))
    c.check(header.get("seq") == seq,
            "%s: header seq %r != filename seq %d"
            % (path, header.get("seq"), seq))
    c.check(isinstance(header.get("lane"), str) and header["lane"],
            "%s: header lane name missing" % path)
    trace = header.get("trace")
    if c.check(isinstance(trace, str) and TRACE_HEX_RE.match(trace),
               "%s: header trace id %r is not 16 hex digits" % (path, trace)):
        if state["trace"] is None:
            state["trace"] = trace
        c.check(trace == state["trace"],
                "%s: trace id %r differs from the stream's %r"
                % (path, trace, state["trace"]))
    state["lanes"].add(lane_id)
    for i, raw in enumerate(body[1:], start=2):
        try:
            ev = json.loads(raw)
        except ValueError:
            c.check(False, "%s:%d: unparseable event line" % (path, i))
            continue
        ok = True
        for field in STREAM_EVENT_FIELDS:
            ok = c.check(field in ev,
                         "%s:%d: missing field %r" % (path, i, field)) and ok
        if not ok:
            continue
        c.check(isinstance(ev["ts"], int) and ev["ts"] >= 0
                and isinstance(ev["dur"], int) and ev["dur"] >= 0,
                "%s:%d: ts/dur not non-negative integers" % (path, i))
        c.check(isinstance(ev["label"], str) and ev["label"],
                "%s:%d: empty label" % (path, i))
        c.check(isinstance(ev["span"], int) and ev["span"] >= 0
                and isinstance(ev["parent"], int) and ev["parent"] >= 0,
                "%s:%d: span/parent not non-negative integers" % (path, i))
        c.check(ev["trace"] == trace,
                "%s:%d: event trace %r != segment trace %r"
                % (path, i, ev["trace"], trace))
        # Cluster protocol spans are the cross-rank stitch: every one must
        # be addressable (a real span id) under the run's trace.
        if isinstance(ev.get("label"), str) \
                and ev["label"].startswith("cluster/"):
            c.check(ev.get("span", 0) != 0,
                    "%s:%d: cluster span %r has no span id"
                    % (path, i, ev["label"]))
        end = ev.get("ts", 0) + ev.get("dur", 0)
        last = state["last_end"].get(lane_id)
        c.check(last is None or end >= last,
                "%s:%d: lane %d end time went backwards (%d after %d)"
                % (path, i, lane_id, end, last if last is not None else 0))
        state["last_end"][lane_id] = end
        if ev.get("span"):
            state["spans"].add(ev["span"])
        if ev.get("parent"):
            state["parent_refs"].append((ev["label"], ev["parent"]))
        state["events"] += 1


def check_stream_dir(c, dirpath):
    segments = []
    for name in os.listdir(dirpath):
        m = SEGMENT_RE.match(name)
        if m:
            segments.append((int(m.group(1)), int(m.group(2)),
                             m.group(3) is not None, name))
    c.check(segments, "no stream segments under %s" % dirpath)
    state = {"trace": None, "events": 0, "spans": set(), "parent_refs": [],
             "lanes": set(), "last_end": {}, "torn": []}
    for lane_id, seq, _partial, name in sorted(segments):
        parse_stream_segment(c, os.path.join(dirpath, name), lane_id, seq,
                             state)

    done_path = os.path.join(dirpath, "stream.done")
    done = os.path.exists(done_path)
    if done:
        try:
            with open(done_path, "r", encoding="utf-8") as f:
                manifest = json.load(f)
        except (OSError, ValueError) as err:
            c.check(False, "unreadable stream.done: %s" % err)
            manifest = {}
        c.check(manifest.get("schema") == "fcma.tlstream.v1",
                "stream.done schema is %r" % manifest.get("schema"))
        c.check(manifest.get("done") is True, "stream.done lacks done=true")
        c.check(manifest.get("trace") == state["trace"],
                "stream.done trace %r != segments' %r"
                % (manifest.get("trace"), state["trace"]))
        c.check(isinstance(manifest.get("dropped"), int)
                and manifest["dropped"] >= 0,
                "stream.done dropped missing or negative")
        c.check(manifest.get("lanes") == len(state["lanes"]),
                "stream.done lanes %r != %d lanes with segments"
                % (manifest.get("lanes"), len(state["lanes"])))
        # The continuous-profiling exactness claim: the finalized merge
        # holds every event the manifest accounted, with no torn tails.
        c.check(manifest.get("events") == state["events"],
                "stream.done events %r != %d parsed from segments"
                % (manifest.get("events"), state["events"]))
        c.check(not state["torn"],
                "finalized stream has torn tails: %s"
                % ", ".join(state["torn"]))
        # And the cross-rank causal claim: every parent reference resolves
        # against some recorded span — no orphans across lanes.
        orphans = [(label, parent) for label, parent in state["parent_refs"]
                   if parent not in state["spans"]]
        for label, parent in orphans[:5]:
            c.check(False, "orphan parent %d under %r" % (parent, label))
        if len(orphans) > 5:
            c.check(False, "... and %d more orphan parents"
                    % (len(orphans) - 5))
    return "fcma.tlstream.v1: %d events, %d lanes, %d segments%s" % (
        state["events"], len(state["lanes"]), len(segments),
        ", finalized" if done else " (live)")


def check_file(path):
    if os.path.isdir(path):
        c = Checker(path)
        try:
            summary = check_stream_dir(c, path)
        except OSError as err:
            print("%s: cannot read stream dir: %s" % (path, err),
                  file=sys.stderr)
            return 2
        if c.failures:
            for failure in c.failures:
                print("%s: FAIL: %s" % (path, failure), file=sys.stderr)
            return 1
        print("%s: OK (%s)" % (path, summary))
        return 0
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print("%s: cannot parse: %s" % (path, err), file=sys.stderr)
        return 2
    c = Checker(path)
    if isinstance(doc, dict) and "traceEvents" in doc:
        summary = check_timeline(c, doc)
    elif isinstance(doc, dict) and "spans" in doc:
        summary = check_metrics(c, doc)
    else:
        print("%s: neither a metrics dump nor a Chrome trace" % path,
              file=sys.stderr)
        return 2
    if c.failures:
        for failure in c.failures:
            print("%s: FAIL: %s" % (path, failure), file=sys.stderr)
        return 1
    print("%s: OK (%s)" % (path, summary))
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        status = max(status, check_file(path))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
