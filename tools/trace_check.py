#!/usr/bin/env python3
"""Validator for fcma trace artifacts.

Accepts either artifact the CLI / benches emit and sniffs which one it got:

* a metrics dump (``fcma.trace.v2``): the aggregate span/counter/gauge
  registry written by ``--trace`` and the bench sidecars.  Checks the schema
  string, that every span's quantiles are ordered (p50 <= p95 <= p99) and
  clamped inside the exact [min_s, max_s] range, that counters/gauges are
  numeric, and that any roofline attribution carries the full field set
  with sane values.
* a Chrome-trace timeline (``fcma.timeline.v1``): the per-thread event
  dump written by ``--trace-timeline``.  Checks that complete events are
  globally time-sorted with non-negative durations, that every event's
  lane (tid) has exactly one thread_name metadata record, and that named
  scheduler-worker lanes are distinct (one lane per worker).

Exit status 0 means the file validated; 1 means a check failed (each
failure is printed); 2 means the file could not be read or parsed.

Usage: trace_check.py <trace.json> [more.json ...]
"""

import json
import re
import sys

REQUIRED_SPAN_FIELDS = (
    "count", "total_s", "min_s", "max_s", "p50_s", "p95_s", "p99_s")
REQUIRED_ROOFLINE_FIELDS = (
    "modeled_s", "gflops", "ai_flops_per_byte", "pct_roofline", "bound")
# Autotuner decisions recorded in the meta section, one per shape class.
# The class key encodes the log2-bucketed dimensions; the value is the
# winning geometry plus provenance (probe sweep, cache hit, or forced).
TUNE_CLASS_RE = re.compile(r"^tune/(gemm:m\d+:n\d+:k\d+|syrk:m\d+:n\d+)$")
TUNE_GEMM_RE = re.compile(
    r"^panel_cols=\d+ unroll=\d+ src=(probe|cache|forced) "
    r"gflops=[0-9.]+ pct_roof=[0-9.]+$")
TUNE_SYRK_RE = re.compile(
    r"^panel_k=\d+ micro_rows=\d+ src=(probe|cache|forced) "
    r"gflops=[0-9.]+ pct_roof=[0-9.]+$")
# Quantiles interpolate inside power-of-two buckets, so allow a hair of
# floating-point slack around the exact recorded range.
EPS = 1e-9


class Checker:
    def __init__(self, path):
        self.path = path
        self.failures = []

    def check(self, ok, message):
        if not ok:
            self.failures.append(message)
        return ok

    def is_number(self, value):
        return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_metrics(c, doc):
    c.check(doc.get("schema") == "fcma.trace.v2",
            "schema is %r, expected 'fcma.trace.v2'" % doc.get("schema"))
    spans = doc.get("spans", {})
    c.check(isinstance(spans, dict), "'spans' is not an object")
    for label, span in sorted(spans.items() if isinstance(spans, dict) else []):
        for field in REQUIRED_SPAN_FIELDS:
            if not c.check(c.is_number(span.get(field)),
                           "span %r: missing numeric %r" % (label, field)):
                break
        else:
            lo, hi = span["min_s"], span["max_s"]
            p50, p95, p99 = span["p50_s"], span["p95_s"], span["p99_s"]
            c.check(span["count"] >= 1, "span %r: count < 1" % label)
            c.check(lo <= hi + EPS, "span %r: min_s > max_s" % label)
            c.check(p50 <= p95 + EPS and p95 <= p99 + EPS,
                    "span %r: quantiles not ordered "
                    "(p50=%g p95=%g p99=%g)" % (label, p50, p95, p99))
            c.check(lo - EPS <= p50 and p99 <= hi + EPS,
                    "span %r: quantiles escape [min_s, max_s] "
                    "([%g, %g] vs p50=%g p99=%g)" % (label, lo, hi, p50, p99))
    for section in ("counters", "gauges"):
        values = doc.get(section, {})
        c.check(isinstance(values, dict), "%r is not an object" % section)
        for name, value in (values.items() if isinstance(values, dict) else []):
            c.check(c.is_number(value),
                    "%s %r: value is not numeric" % (section, name))
    # Cluster runs must emit the full recovery counter set (zeros included):
    # consumers diffing a clean run against a faulted one rely on every
    # counter being present in both.
    counters = doc.get("counters", {})
    if isinstance(counters, dict) and "cluster/tasks_dispatched" in counters:
        for name in ("cluster/retries", "cluster/reassignments",
                     "cluster/heartbeat_misses", "cluster/corrupt_payloads",
                     "cluster/speculative_dispatches",
                     "cluster/resurrections", "cluster/failovers"):
            value = counters.get(name)
            c.check(c.is_number(value) and value >= 0,
                    "cluster run: counter %r missing or negative" % name)
    # Streamed (out-of-core) runs must emit the full io counter set plus the
    # stall gauge (zeros included): prefetch-efficiency dashboards diff
    # io/prefetch_hits against io/shard_loads and need both present.
    if isinstance(counters, dict) and "io/shard_loads" in counters:
        for name in ("io/bytes_mapped", "io/prefetch_hits"):
            value = counters.get(name)
            c.check(c.is_number(value) and value >= 0,
                    "streamed run: counter %r missing or negative" % name)
        gauges = doc.get("gauges", {})
        stall = gauges.get("io/stall_s") if isinstance(gauges, dict) else None
        c.check(c.is_number(stall) and stall >= 0,
                "streamed run: gauge 'io/stall_s' missing or negative")
    # Autotuner runs must record every decision coherently: the enabled
    # flag is "0"/"1", each tune/<class> meta key names a valid shape class
    # and carries the full geometry + provenance string, and the probe /
    # cache-hit counters are seeded (zeros included) whenever the tuner ran.
    meta = doc.get("meta", {})
    meta = meta if isinstance(meta, dict) else {}
    tune_keys = [k for k in meta if k.startswith("tune/")]
    if tune_keys:
        enabled = meta.get("tune/enabled")
        c.check(enabled in ("0", "1"),
                "meta 'tune/enabled' is %r, expected '0' or '1'" % enabled)
        for name in ("tune/probes", "tune/cache_hits"):
            c.check(c.is_number(counters.get(name))
                    and counters.get(name, -1) >= 0,
                    "tune run: counter %r missing or negative" % name)
        for key in sorted(tune_keys):
            if key == "tune/enabled":
                continue
            if not c.check(TUNE_CLASS_RE.match(key) is not None,
                           "meta %r: not a valid tune shape class" % key):
                continue
            pattern = TUNE_GEMM_RE if key.startswith("tune/gemm") \
                else TUNE_SYRK_RE
            c.check(pattern.match(meta[key]) is not None,
                    "meta %r: malformed tune decision %r" % (key, meta[key]))
    for label, roof in sorted(doc.get("roofline", {}).items()):
        for field in REQUIRED_ROOFLINE_FIELDS:
            c.check(field in roof,
                    "roofline %r: missing field %r" % (label, field))
        if all(f in roof for f in REQUIRED_ROOFLINE_FIELDS):
            c.check(roof["bound"] in ("memory", "compute"),
                    "roofline %r: bound is %r" % (label, roof["bound"]))
            c.check(c.is_number(roof["pct_roofline"])
                    and roof["pct_roofline"] >= 0.0,
                    "roofline %r: pct_roofline negative" % label)
            c.check(c.is_number(roof["ai_flops_per_byte"])
                    and roof["ai_flops_per_byte"] >= 0.0,
                    "roofline %r: arithmetic intensity negative" % label)
    decisions = sum(1 for k in tune_keys if k != "tune/enabled")
    return "fcma.trace.v2 metrics: %d spans, %d roofline points, " \
        "%d tune decisions" % (
            len(spans), len(doc.get("roofline", {})), decisions)


def check_timeline(c, doc):
    other = doc.get("otherData", {})
    c.check(other.get("schema") == "fcma.timeline.v1",
            "otherData.schema is %r, expected 'fcma.timeline.v1'"
            % other.get("schema"))
    c.check(c.is_number(other.get("dropped_events")),
            "otherData.dropped_events missing or non-numeric")
    events = doc.get("traceEvents", [])
    if not c.check(isinstance(events, list), "'traceEvents' is not a list"):
        return "invalid"
    lane_names = {}  # tid -> list of thread_name records
    complete = []
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "thread_name":
            lane_names.setdefault(ev.get("tid"), []).append(
                ev.get("args", {}).get("name"))
        elif ph == "X":
            for field in ("ts", "dur"):
                c.check(c.is_number(ev.get(field)),
                        "event %d: missing numeric %r" % (i, field))
            complete.append(ev)
    prev_ts = None
    for ev in complete:
        ts, dur = ev.get("ts"), ev.get("dur")
        if not (c.is_number(ts) and c.is_number(dur)):
            continue
        c.check(dur >= 0.0, "event %r: negative duration" % ev.get("name"))
        if prev_ts is not None and not c.check(
                ts >= prev_ts, "timestamps not monotonic at %r (ts=%g after "
                "%g)" % (ev.get("name"), ts, prev_ts)):
            break
        prev_ts = ts
        c.check(ev.get("tid") in lane_names,
                "event %r: lane tid=%r has no thread_name metadata"
                % (ev.get("name"), ev.get("tid")))
    # One lane per thread: no tid renamed twice, no worker name reused.
    workers = {}
    for tid, names in sorted(lane_names.items(), key=lambda kv: str(kv[0])):
        c.check(len(names) == 1,
                "lane tid=%r has %d thread_name records" % (tid, len(names)))
        for name in names:
            if isinstance(name, str) and name.startswith("sched/worker"):
                c.check(name not in workers,
                        "worker lane %r claimed by tid %r and %r"
                        % (name, workers.get(name), tid))
                workers[name] = tid
    return "fcma.timeline.v1: %d events across %d lanes (%d worker lanes)" % (
        len(complete), len(lane_names), len(workers))


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print("%s: cannot parse: %s" % (path, err), file=sys.stderr)
        return 2
    c = Checker(path)
    if isinstance(doc, dict) and "traceEvents" in doc:
        summary = check_timeline(c, doc)
    elif isinstance(doc, dict) and "spans" in doc:
        summary = check_metrics(c, doc)
    else:
        print("%s: neither a metrics dump nor a Chrome trace" % path,
              file=sys.stderr)
        return 2
    if c.failures:
        for failure in c.failures:
            print("%s: FAIL: %s" % (path, failure), file=sys.stderr)
        return 1
    print("%s: OK (%s)" % (path, summary))
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        status = max(status, check_file(path))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
