#!/bin/sh
# Scaled-down smoke run of the paper benches: Table 5 (matmul GFLOPS),
# Table 7 (stage merging), Table 8 (SVM solvers), Fig 9 (single-node
# speedup), and the cluster task-farm smoke in clean, fault-injected
# (worker crash + recovery) and master-failover (standby takeover)
# variants.  Each bench runs at a fraction of its default problem size so
# the whole sweep finishes in seconds, and the results land in one JSON
# file: per-bench wall-clock, the Table 5 per-kernel GFLOPS, p95 span
# latencies of the pipeline stages, the cluster load-imbalance ratio, the
# recovery/failover costs, and the cost of always-on streaming tracing
# (interleaved untraced vs streamed pipeline pairs, asserted < 3%).
#
# Usage: bench_smoke.sh <bench-dir> [output.json] [--pr N]
#
# The output defaults to BENCH_pr${BENCH_PR:-9}.json — the per-PR sidecar
# committed at the repo root so tools/bench_diff.py can gate later PRs
# against it.  Pass --pr N (or set BENCH_PR) instead of hardcoding a name.
set -eu

BENCH_DIR="$1"
shift
PR="${BENCH_PR:-9}"
OUT=""
while [ $# -gt 0 ]; do
  case "$1" in
    --pr)
      PR="$2"
      shift 2
      ;;
    *)
      OUT="$1"
      shift
      ;;
  esac
done
[ -n "$OUT" ] || OUT="BENCH_pr${PR}.json"
TOOLS_DIR=$(dirname "$0")
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Milliseconds since the epoch (GNU date nanoseconds, truncated).
now_ms() {
  date +%s%N | cut -c1-13
}

# run_bench <name> <binary> [args...]: runs the bench, stores stdout in
# $WORK/<name>.txt and its wall-clock milliseconds in $WORK/<name>.ms.
run_bench() {
  name="$1"
  shift
  start=$(now_ms)
  "$@" > "$WORK/$name.txt"
  end=$(now_ms)
  echo $((end - start)) > "$WORK/$name.ms"
  echo "  $name: $((end - start)) ms"
}

wall_s() {
  awk '{printf "%.3f", $1 / 1000.0}' "$WORK/$1.ms"
}

echo "bench smoke sweep (scaled-down problem sizes)"
# The legacy timed sweep runs with the autotuner off so its wall-clock
# numbers stay comparable with pre-autotuner sidecars (results are
# bit-identical either way; only first-use probe time would differ).  The
# dedicated tune runs below re-enable it.
export FCMA_TUNE=off
run_bench table5_matmul_gflops "$BENCH_DIR/bench_table5_matmul_gflops" \
  --voxels 2048 --syrk-voxels 512 --epochs 2
run_bench table7_stage_merging "$BENCH_DIR/bench_table7_stage_merging" \
  --voxels 512 --subjects 4 --task 16
run_bench table8_svm "$BENCH_DIR/bench_table8_svm" \
  --voxels 256 --subjects 6 --task 4
run_bench fig9_single_node_speedup \
  "$BENCH_DIR/bench_fig9_single_node_speedup" \
  --voxels 1024 --subjects 4 --calib-task 6
run_bench cluster_smoke "$BENCH_DIR/bench_cluster_smoke" \
  --voxels 256 --subjects 4 --workers 3 --task 16
# The metrics sidecar is overwritten per invocation: snapshot the clean
# run's before the fault-injected variant (worker 2 crashes after one
# task; a short lease keeps detection fast) replaces it.
cp "$BENCH_DIR/bench_cluster_smoke.metrics.json" \
  "$WORK/cluster_clean_metrics.json"
run_bench cluster_smoke_faulted "$BENCH_DIR/bench_cluster_smoke" \
  --voxels 256 --subjects 4 --workers 3 --task 16 \
  --lease-timeout 0.5 --fault-kill-rank 2 --fault-kill-after 1
cp "$BENCH_DIR/bench_cluster_smoke.metrics.json" \
  "$WORK/cluster_faulted_metrics.json"
# Master-failover variant: the primary dies after 3 dispatched batches and
# the standby takes over mid-fold (the replicated-control-plane cost).
run_bench cluster_smoke_failover "$BENCH_DIR/bench_cluster_smoke" \
  --voxels 256 --subjects 4 --workers 2 --task 16 \
  --lease-timeout 0.5 --fault-kill-master-after 3
cp "$BENCH_DIR/bench_cluster_smoke.metrics.json" \
  "$WORK/cluster_failover_metrics.json"

# Out-of-core proof: streamed analysis of a shard store larger than the
# memory budget must stay under budget (VmHWM, asserted inside the bench)
# and match the resident run bit-for-bit; the sidecar records the cost.
run_bench oocore "$BENCH_DIR/bench_oocore" --task 64
cp "$BENCH_DIR/bench_oocore.metrics.json" "$WORK/oocore_metrics.json"

# Autotuner sweep (tuning back on): per-shape winners from the micro-bench
# probe mode plus the ablation bench's fixed-vs-tuned gap recovery.
run_bench kernels_micro_tune env FCMA_TUNE=on \
  "$BENCH_DIR/bench_kernels_micro" --tune
run_bench ablation_autotune env FCMA_TUNE=on \
  "$BENCH_DIR/bench_ablation_block_size" --voxels 4096 --rows 32 --repeats 2

# Tracing overhead: the serial pipeline sweep with tracing fully off vs
# streaming every span to tlstream segments, run as interleaved A/B pairs
# inside one process (see bench_trace_overhead.cpp for why process-level
# timing cannot resolve a small delta on shared hardware).  The
# continuous-profiling contract is that always-on streaming costs < 3%.
run_bench trace_overhead "$BENCH_DIR/bench_trace_overhead" \
  --voxels 256 --reps 5
OVH_LINE=$(grep '^trace_overhead ' "$WORK/trace_overhead.txt")
OVH_PCT=$(echo "$OVH_LINE" \
  | sed -n 's/.*pct=\(-\{0,1\}[0-9.]*\).*/\1/p')
OVH_OFF_S=$(echo "$OVH_LINE" \
  | sed -n 's/.*baseline_s=\([0-9.]*\).*/\1/p')
OVH_ON_S=$(echo "$OVH_LINE" \
  | sed -n 's/.*streaming_s=\([0-9.]*\).*/\1/p')
OVH_EVENTS=$(echo "$OVH_LINE" | sed -n 's/.*events=\([0-9]*\).*/\1/p')
test -n "$OVH_PCT" && test -n "$OVH_OFF_S" && test -n "$OVH_ON_S"
# The streamed legs must have been real ones: zero drops, spans on disk.
echo "$OVH_LINE" | grep -q 'dropped=0'
test "$OVH_EVENTS" -gt 0
echo "  tracing overhead: ${OVH_PCT}% (${OVH_EVENTS} events streamed)"
awk -v pct="$OVH_PCT" 'BEGIN {exit !(pct < 3.0)}' || {
  echo "bench smoke: tracing overhead ${OVH_PCT}% breaches the 3% budget" >&2
  exit 1
}

# Every table must have produced its metrics sidecar with the dispatched
# ISA recorded.
ISA=$(sed -n 's/.*"simd\/isa": "\([a-z0-9]*\)".*/\1/p' \
  "$BENCH_DIR/bench_table5_matmul_gflops.metrics.json" | head -n 1)
test -n "$ISA"

# Table 5 GFLOPS per kernel, keyed impl x function.  Table rows look like:
#   | our blocking        | correlation matrix | 86        | 248    | ...
t5_gflops() {
  grep -F "| $1" "$WORK/table5_matmul_gflops.txt" \
    | grep -F "$2" \
    | awk -F'|' '{gsub(/ /, "", $5); print $5}'
}
OPT_CORR=$(t5_gflops "our blocking" "correlation matrix")
OPT_SYRK=$(t5_gflops "our blocking" "SVM kernel matrix")
BASE_CORR=$(t5_gflops "baseline" "correlation matrix")
BASE_SYRK=$(t5_gflops "baseline" "SVM kernel matrix")
test -n "$OPT_CORR" && test -n "$OPT_SYRK"
test -n "$BASE_CORR" && test -n "$BASE_SYRK"

# Fig 9 must report a speedup > 1x for both datasets.
grep -qE "face-scene.*\|[^|]*x" "$WORK/fig9_single_node_speedup.txt"
grep -qE "attention" "$WORK/fig9_single_node_speedup.txt"

# Scheduler dispatch counters and the small-grain sweep wall-clock, from
# the Fig 9 metrics sidecar.  The counters are always seeded, but fall back
# to 0 so a missing sidecar key degrades instead of breaking the sweep.
FIG9_METRICS="$BENCH_DIR/bench_fig9_single_node_speedup.metrics.json"
sidecar_num() {
  v=$(sed -n "s/.*\"$1\": \([0-9.eE+-]*\).*/\1/p" "$FIG9_METRICS" \
    | head -n 1)
  echo "${v:-0}"
}
SCHED_STEALS=$(sidecar_num "sched\\/steals")
SCHED_LOCAL=$(sidecar_num "sched\\/local_hits")
SMALL_GRAIN_S=$(sidecar_num "bench\\/fig9\\/small_grain_wall_s")

# p95 span latencies of the pipeline stages, from the Fig 9 sidecar.  Each
# span serializes on one line, so select the label's line and pull p95_s.
span_p95() {
  v=$(grep -F "\"$1\": {" "$FIG9_METRICS" \
    | sed -n 's/.*"p95_s": \([0-9.eE+-]*\).*/\1/p' | head -n 1)
  echo "${v:-0}"
}
P95_CORR=$(span_p95 "task/correlation")
P95_SVM=$(span_p95 "task/svm")

# Cluster load-balance gauges from the clean task-farm smoke sidecar, the
# recovery counters from the fault-injected one, and the control-plane
# counters from the master-failover one.
CLUSTER_METRICS="$WORK/cluster_clean_metrics.json"
FAULTED_METRICS="$WORK/cluster_faulted_metrics.json"
FAILOVER_METRICS="$WORK/cluster_failover_metrics.json"
cluster_num() {
  v=$(sed -n "s/.*\"$2\": \([0-9.eE+-]*\).*/\1/p" "$1" | head -n 1)
  echo "${v:-0}"
}
IMBALANCE=$(cluster_num "$CLUSTER_METRICS" "cluster\\/imbalance_ratio")
MAX_BUSY=$(cluster_num "$CLUSTER_METRICS" "cluster\\/max_worker_busy_s")
MEAN_BUSY=$(cluster_num "$CLUSTER_METRICS" "cluster\\/mean_worker_busy_s")
DIED=$(cluster_num "$FAULTED_METRICS" "cluster\\/workers_died")
REASSIGNED=$(cluster_num "$FAULTED_METRICS" "cluster\\/reassignments")
RETRIES=$(cluster_num "$FAULTED_METRICS" "cluster\\/retries")
HB_MISSES=$(cluster_num "$FAULTED_METRICS" "cluster\\/heartbeat_misses")
RECOVERY_S=$(cluster_num "$FAULTED_METRICS" "cluster\\/recovery_wall_s")
FAILOVERS=$(cluster_num "$FAILOVER_METRICS" "cluster\\/failovers")
FAILOVER_WALL_S=$(cluster_num "$FAILOVER_METRICS" \
  "cluster\\/recovery_wall_s")
# The injected crash must actually have been detected and recovered from,
# and the injected master death must have promoted the standby.
test "$DIED" = "1"
test "$FAILOVERS" = "1"

# Out-of-core gauges from the bench_oocore sidecar; the budget and identity
# assertions already ran inside the bench, re-check the published verdicts.
OOCORE_METRICS="$WORK/oocore_metrics.json"
OOC_BUDGET_MB=$(cluster_num "$OOCORE_METRICS" "oocore\\/budget_mb")
OOC_RSS_MB=$(cluster_num "$OOCORE_METRICS" "oocore\\/streamed_peak_rss_mb")
OOC_SLOWDOWN=$(cluster_num "$OOCORE_METRICS" "oocore\\/streamed_slowdown")
OOC_WITHIN=$(cluster_num "$OOCORE_METRICS" "oocore\\/within_budget")
OOC_IDENTICAL=$(cluster_num "$OOCORE_METRICS" "oocore\\/reports_identical")
test "$OOC_WITHIN" = "1"
test "$OOC_IDENTICAL" = "1"

# Autotuner results: each `tune <class> <geometry> src=... gflops=...` line
# becomes one winners[] string; the ablation summary provides the
# recovered-gap headline numbers.
TUNE_PROBES=$(sed -n 's/^tune_done probes=\([0-9]*\).*/\1/p' \
  "$WORK/kernels_micro_tune.txt")
TUNE_WINNERS=$(awk '/^tune /{
  line = $0; sub(/^tune /, "", line);
  printf "%s\"%s\"", sep, line; sep = ", "
}' "$WORK/kernels_micro_tune.txt")
TUNE_REC_MEAN=$(sed -n \
  's/^autotune_summary.*recovered_pct_mean=\(-\{0,1\}[0-9.]*\).*/\1/p' \
  "$WORK/ablation_autotune.txt")
TUNE_REC_MIN=$(sed -n \
  's/^autotune_summary.*recovered_pct_min=\(-\{0,1\}[0-9.]*\).*/\1/p' \
  "$WORK/ablation_autotune.txt")
test -n "$TUNE_PROBES" && test -n "$TUNE_WINNERS"
test -n "$TUNE_REC_MEAN" && test -n "$TUNE_REC_MIN"

# Every sidecar this sweep consumed must pass the schema check (skipped
# where python3 is unavailable).
if command -v python3 >/dev/null 2>&1; then
  python3 "$TOOLS_DIR/trace_check.py" "$FIG9_METRICS" "$CLUSTER_METRICS" \
    "$FAULTED_METRICS" "$FAILOVER_METRICS"
else
  echo "bench smoke: python3 not found, skipping trace_check.py" >&2
fi

cat > "$OUT" <<EOF
{
  "schema": "fcma.bench_smoke.v7",
  "simd_isa": "$ISA",
  "benches": {
    "table5_matmul_gflops": {
      "wall_s": $(wall_s table5_matmul_gflops),
      "gflops": {
        "opt_corr_gemm": $OPT_CORR,
        "opt_svm_syrk": $OPT_SYRK,
        "baseline_corr_gemm": $BASE_CORR,
        "baseline_svm_syrk": $BASE_SYRK
      }
    },
    "table7_stage_merging": {"wall_s": $(wall_s table7_stage_merging)},
    "table8_svm": {"wall_s": $(wall_s table8_svm)},
    "fig9_single_node_speedup": {
      "wall_s": $(wall_s fig9_single_node_speedup),
      "small_grain_wall_s": $SMALL_GRAIN_S,
      "sched_steals": $SCHED_STEALS,
      "sched_local_hits": $SCHED_LOCAL,
      "p95_task_correlation_s": $P95_CORR,
      "p95_task_svm_s": $P95_SVM
    },
    "cluster_smoke": {
      "wall_s": $(wall_s cluster_smoke),
      "imbalance_ratio": $IMBALANCE,
      "max_worker_busy_s": $MAX_BUSY,
      "mean_worker_busy_s": $MEAN_BUSY
    },
    "cluster_smoke_faulted": {
      "wall_s": $(wall_s cluster_smoke_faulted),
      "workers_died": $DIED,
      "tasks_reassigned": $REASSIGNED,
      "retries": $RETRIES,
      "heartbeat_misses": $HB_MISSES,
      "recovery_wall_s": $RECOVERY_S
    },
    "cluster_smoke_failover": {
      "wall_s": $(wall_s cluster_smoke_failover),
      "failovers": $FAILOVERS,
      "recovery_wall_s": $FAILOVER_WALL_S
    },
    "oocore": {
      "wall_s": $(wall_s oocore),
      "budget_mb": $OOC_BUDGET_MB,
      "streamed_peak_rss_mb": $OOC_RSS_MB,
      "streamed_slowdown": $OOC_SLOWDOWN,
      "within_budget": $OOC_WITHIN,
      "reports_identical": $OOC_IDENTICAL
    },
    "tune": {
      "wall_s": $(wall_s ablation_autotune),
      "probes": $TUNE_PROBES,
      "recovered_pct_mean": $TUNE_REC_MEAN,
      "recovered_pct_min": $TUNE_REC_MIN,
      "winners": [$TUNE_WINNERS]
    },
    "tracing_overhead": {
      "baseline_wall_s": $OVH_OFF_S,
      "streaming_wall_s": $OVH_ON_S,
      "overhead_pct": $OVH_PCT,
      "overhead_budget_pct": 3.0,
      "streamed_events": $OVH_EVENTS,
      "estimator": "median of per-pair streamed/untraced wall ratios",
      "reps": 5
    }
  }
}
EOF
echo "bench smoke results written to $OUT (isa: $ISA)"

# Regenerate the cross-PR trajectory table from the committed sidecars so
# BENCH_TRAJECTORY.md never drifts from the data (skipped without python3).
REPO_ROOT=$(cd "$TOOLS_DIR/.." && pwd)
if command -v python3 >/dev/null 2>&1; then
  python3 "$TOOLS_DIR/bench_trajectory.py" "$REPO_ROOT"
else
  echo "bench smoke: python3 not found, skipping bench_trajectory.py" >&2
fi
