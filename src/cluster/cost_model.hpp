// Calibrated per-task cost model.
//
// Running the instrumented pipeline at the paper's full dimensions (34,470
// voxels x 216 epochs) through the cache simulator would take hours, so the
// cluster benches calibrate instead: one instrumented task runs at reduced
// dimensions, and its per-stage event counts are scaled to target dimensions
// by each stage's asymptotic work term (epoch length is held fixed, so the
// scaling is exact in V, N and M up to cache-boundary effects):
//
//   corr+norm : V * M * N        (stage-1 outputs dominate; T fixed)
//   kernel    : V * M^2 * N      (per-voxel syrk)
//   svm       : V * S * M^2      (S folds; SMO iterations and per-iteration
//                                 cost both scale with M)
//
// ArchModel then converts scaled events into modeled node-seconds.  The
// thread-starvation regime of the baseline (§3.3.3) enters through
// `svm_threads`: the baseline runs one CV per voxel, so only min(V, threads)
// hardware threads are busy during stage 3.
#pragma once

#include "archsim/arch_model.hpp"
#include "fcma/pipeline.hpp"

namespace fcma::cluster {

/// Dimensions describing one voxel-range task of a dataset analysis.
struct TaskDims {
  std::size_t task_voxels = 0;   ///< V: voxels assigned to the node
  std::size_t brain_voxels = 0;  ///< N: whole-brain voxels
  std::size_t epochs = 0;        ///< M: epochs in the analysis
  std::int32_t subjects = 0;     ///< S: CV folds
};

/// Per-stage scaling work terms for `dims` (see header comment).
struct StageWork {
  double corr_norm = 0.0;
  double kernel = 0.0;
  double svm = 0.0;
};
[[nodiscard]] StageWork work_units(const TaskDims& dims);

/// Event model calibrated from one instrumented pipeline run.
class CalibratedCost {
 public:
  /// `events` must come from run_task_instrumented at `calib_dims`.
  CalibratedCost(const core::InstrumentedTaskResult& events,
                 const TaskDims& calib_dims);

  /// Scaled event estimate for a task of `dims`.
  [[nodiscard]] memsim::KernelEvents estimate_events(
      const TaskDims& dims) const;

  /// Modeled node-seconds for a task of `dims` on `arch`.  `svm_threads`
  /// caps stage-3 thread occupancy (baseline: one thread per task voxel).
  [[nodiscard]] double task_seconds(const TaskDims& dims,
                                    const archsim::ArchModel& arch,
                                    int svm_threads = 0) const;

 private:
  static memsim::KernelEvents scale(const memsim::KernelEvents& e,
                                    double factor);

  memsim::KernelEvents corr_norm_;
  memsim::KernelEvents kernel_;
  memsim::KernelEvents svm_;
  StageWork calib_work_;
};

}  // namespace fcma::cluster
