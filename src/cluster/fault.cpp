#include "cluster/fault.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fcma::cluster {

namespace {

// splitmix64 finalizer: mixes one word into the decision-stream seed.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h += v + 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

}  // namespace

FaultPlan::Decision FaultPlan::decide(std::size_t from, std::size_t to,
                                      Tag tag, std::uint64_t seq) const {
  // One private Rng stream per (seed, edge, seq): the decision depends only
  // on those values, never on global draw order, so two runs with different
  // thread interleavings agree on every shared message's fate.
  std::uint64_t h = mix(seed, 0x6661756C74ull);  // "fault"
  h = mix(h, static_cast<std::uint64_t>(from));
  h = mix(h, static_cast<std::uint64_t>(to));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::int32_t>(tag)));
  h = mix(h, seq);
  Rng rng(h);
  Decision d;
  // Fixed draw order regardless of which probabilities are zero.
  d.drop = rng.uniform() < drop;
  d.duplicate = rng.uniform() < duplicate;
  d.corrupt = rng.uniform() < corrupt;
  d.delay = rng.uniform() < delay;
  return d;
}

void FaultPlan::validate(std::size_t ranks) const {
  const auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  FCMA_CHECK(prob_ok(drop) && prob_ok(duplicate) && prob_ok(corrupt) &&
                 prob_ok(delay),
             "fault probabilities must be in [0, 1]");
  FCMA_CHECK(delay_messages >= 1, "delay_messages must be >= 1");
  if (kill_rank != 0) {
    FCMA_CHECK(kill_rank < ranks, "kill rank out of range");
  }
  if (stall_rank != 0) {
    FCMA_CHECK(stall_rank < ranks, "stall rank out of range");
  }
  FCMA_CHECK(stall_s >= 0.0, "stall seconds must be non-negative");
}

FaultyComm::FaultyComm(std::size_t ranks, FaultPlan plan)
    : Comm(ranks), plan_(plan), dest_sends_(ranks, 0), deferred_(ranks) {
  plan_.validate(ranks);
}

void FaultyComm::send(std::size_t from, std::size_t to, Tag tag,
                      std::vector<std::uint8_t> payload) {
  // Honest checksum first: a corrupted payload must travel with the stale
  // checksum so the receiver's checksum_ok() catches it.
  const std::uint64_t checksum = payload_checksum(payload);
  // Span context too: stamped now, on the sending thread, so a delayed
  // message still names the sender's span as parent when it finally lands.
  const Message::SpanContext ctx = make_context(from, to);

  FaultPlan::Decision d;
  std::uint64_t release_at = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t seq =
        edge_seq_[{from, to, static_cast<std::int32_t>(tag)}]++;
    d = plan_.decide(from, to, tag, seq);

    if (d.drop) {
      ++stats_.dropped;
      ++dest_sends_[to];
      flush_matured(to);
      return;
    }
    if (d.corrupt) {
      ++stats_.corrupted;
      if (!payload.empty()) {
        payload[payload.size() / 2] ^= 0xA5;
      }
      // Empty payload: nothing to flip, so deliver intact.  An empty
      // payload with a matching checksum is indistinguishable from the
      // original anyway.
    }
    ++dest_sends_[to];
    if (d.delay) {
      ++stats_.delayed;
      release_at = dest_sends_[to] + plan_.delay_messages;
      deferred_[to].push_back(
          Deferred{release_at, from, tag, std::move(payload), checksum, ctx});
      flush_matured(to);
      return;
    }
    if (d.duplicate) ++stats_.duplicated;
    flush_matured(to);
  }
  // Deliver outside the fault lock (enqueue takes the inbox lock).
  if (d.duplicate) {
    enqueue(from, to, tag, payload, checksum, ctx);
  }
  enqueue(from, to, tag, std::move(payload), checksum, ctx);
}

void FaultyComm::flush_matured(std::size_t to) {
  auto& q = deferred_[to];
  for (auto it = q.begin(); it != q.end();) {
    if (dest_sends_[to] >= it->release_at) {
      enqueue(it->from, to, it->tag, std::move(it->payload), it->checksum,
              it->ctx);
      it = q.erase(it);
    } else {
      ++it;
    }
  }
}

void FaultyComm::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t to = 0; to < deferred_.size(); ++to) {
      for (auto& d : deferred_[to]) {
        enqueue(d.from, to, d.tag, std::move(d.payload), d.checksum, d.ctx);
      }
      deferred_[to].clear();
    }
  }
  Comm::close();
}

FaultStats FaultyComm::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace fcma::cluster
