// Fault-tolerant master-worker FCMA driver over the in-process communicator.
//
// Runs the real distribution protocol of paper §3.1.1 with real threads:
// rank 0 (master) partitions the brain into voxel-range tasks and streams
// them to the workers in *batches*; a worker runs the three-stage pipeline
// task by task, returning one accuracies message per task, and sends a
// work request when its local queue drops to the low-water mark so the
// next batch overlaps the tail of the current one (the paper's dynamic
// load-balancing protocol, where idle coprocessors pull work).
//
// Unlike the paper's farm, this driver survives faults (PR 5).  Every
// dispatched batch carries an id and is tracked as a master-side *lease*;
// workers heartbeat at each task start, and a worker whose lease outlives
// its last sign of life is declared dead and its unacknowledged tasks are
// requeued to the survivors.  Delivery is at-least-once — lost messages are
// recovered by worker idle-retries (capped backoff) and lease expiry, and
// redelivered results are deduplicated by the scoreboard's idempotent
// per-voxel slots, which is what keeps every recovery path bit-identical
// to the fault-free run.  Corrupted payloads are caught by the per-message
// checksum (kTaskNack / ignored result).  The scoreboard can be
// checkpointed periodically and a later run resumed from the sidecar,
// skipping completed voxel ranges.
//
// The control plane itself is replicated (PR 6): a standby rank mirrors the
// scoreboard through kStateDelta messages piggybacked on the result flow
// (one delta per newly-recorded result, pings while idle), declares the
// master dead after lease_timeout_s of silence, announces the takeover to
// every worker, and resumes the same master loop from the replicated state
// — the failover analogue of checkpoint/resume, with in-flight duplicates
// absorbed by the idempotent scoreboard.  Straggling leases are
// speculatively re-dispatched to idle ranks at speculation_factor of the
// lease timeout, and workers can join (parked until released) or leave
// (graceful kLeave) mid-run over the same lease/requeue machinery.  Fault
// injection for all of the above lives in fault.hpp; the virtual-time
// simulator (sim.hpp) answers the timing questions at 96-node scale,
// including recovery, failover, and speculation overhead.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/comm.hpp"
#include "cluster/fault.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/scoreboard.hpp"
#include "fmri/dataset.hpp"

namespace fcma::cluster {

/// Options of one distributed analysis run.
struct DriverOptions {
  std::size_t workers = 2;
  std::size_t voxels_per_task = 0;  ///< 0 = one task per worker
  /// Tasks per kTaskAssign batch.  0 = auto: a quarter of a worker's even
  /// share, so every worker refills ~4 times and the tail stays balanced.
  /// Clamped to the task count.
  std::size_t batch = 0;
  /// A worker requests more work when its local queue drops to this many
  /// tasks (it keeps computing while the request is in flight).  Clamped to
  /// the batch size — a higher value would only re-request immediately.
  std::size_t low_water = 1;
  core::PipelineConfig pipeline;

  // --- fault tolerance ---------------------------------------------------
  /// A worker with an outstanding lease and no sign of life (heartbeat,
  /// result, request) for this long is declared dead; its unacknowledged
  /// tasks are requeued to the survivors.  Must exceed the longest single
  /// task — workers heartbeat at task start, not mid-task.
  double lease_timeout_s = 10.0;
  /// Idle-worker poll interval: an idle worker retransmits its work request
  /// after this long without traffic, with doubling backoff capped at 8x
  /// (recovers dropped assignments well before any lease expires).  Also
  /// bounds the master's lease-sweep latency.
  double worker_poll_s = 0.05;
  /// A task requeued more than this many times aborts the run — the
  /// at-least-once loop must not spin forever when every delivery fails.
  std::size_t max_task_retries = 8;
  /// Fault injection (inactive by default).  Message faults wrap the
  /// communicator in a FaultyComm; kill_rank/kill_after_tasks crash a
  /// worker thread mid-run; kill_master_after_batches crashes the primary
  /// master (standby takeover); stall_rank/stall_s plants a straggler.
  FaultPlan faults;

  // --- replicated control plane -------------------------------------------
  /// Mirror the master's state (scoreboard deltas piggybacked on result
  /// traffic, pings while idle) to a standby rank that promotes itself on
  /// master silence longer than lease_timeout_s: it announces the takeover,
  /// rebuilds the pending queue from the replicated scoreboard, and
  /// re-primes the workers mid-fold.  The idempotent scoreboard absorbs any
  /// work the old master had in flight, so failover is bit-identical.
  bool standby = true;

  // --- speculative execution ----------------------------------------------
  /// Re-dispatch a straggling lease's unscored tasks to an idle rank once
  /// the lease is older than speculation_factor * lease_timeout_s.  Both
  /// replicas run to completion; the first result scores each voxel and the
  /// duplicate is absorbed idempotently, so speculation never changes
  /// results — it only shortens the straggler tail.  Off by default: a
  /// speculative replica can recover a crashed worker's lease before death
  /// detection fires, which is the desired production behaviour but makes
  /// death/requeue counters timing-dependent — opt in per run.
  bool speculate = false;
  double speculation_factor = 0.75;

  // --- elastic membership --------------------------------------------------
  /// Extra worker ranks that join mid-run: they park until the master has
  /// collected `join_after_tasks` task results, then enter the normal
  /// worker loop and pull work through the same lease/request machinery.
  std::size_t join_workers = 0;
  std::size_t join_after_tasks = 1;
  /// Graceful departure: rank `leave_rank` (0 = disabled) sends kLeave and
  /// exits after completing `leave_after_tasks` tasks; its leases requeue
  /// without being counted as a death.
  std::size_t leave_rank = 0;
  std::size_t leave_after_tasks = 1;

  // --- checkpoint / resume ----------------------------------------------
  /// When non-empty, the master writes the scoreboard here (fcma.ckpt.v1,
  /// atomic tmp+rename): every `checkpoint_every` task results if that is
  /// non-zero, and always once at completion.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 0;
  /// Resume from a previously checkpointed scoreboard (loaded via
  /// checkpoint.hpp): tasks whose voxels are already scored are not
  /// dispatched.  Must match total_voxels.  Not owned.
  const core::Scoreboard* resume = nullptr;
};

/// Statistics of a driver run.
struct DriverStats {
  std::size_t tasks_dispatched = 0;
  std::size_t batches = 0;        ///< kTaskAssign messages sent
  std::size_t work_requests = 0;  ///< kWorkRequest messages received
  std::size_t messages = 0;       ///< every protocol message, both ways
  /// Wall-clock seconds each worker rank spent inside the pipeline (index
  /// 0 = rank 1).  The straggler report: a healthy dynamic farm keeps
  /// max/mean near 1, a stuck rank shows up as a long bar.
  std::vector<double> worker_busy_s;

  // --- recovery ----------------------------------------------------------
  std::size_t workers_died = 0;      ///< ranks declared dead (lease expiry)
  std::size_t tasks_requeued = 0;    ///< tasks returned to the pending queue
  std::size_t retries = 0;           ///< batch re-dispatches after loss/nack
  std::size_t heartbeat_misses = 0;  ///< lease-expiry detections
  std::size_t corrupt_payloads = 0;  ///< checksum failures (master + nacks)
  std::size_t checkpoints_written = 0;

  // --- control plane ------------------------------------------------------
  std::size_t failovers = 0;  ///< standby promotions (master silence)
  /// Straggler leases speculatively re-dispatched to an idle rank.
  std::size_t speculative_dispatches = 0;
  /// Declared-dead workers readmitted after late traffic (their stale
  /// leases are purged on the way back in).
  std::size_t resurrections = 0;
  std::size_t workers_joined = 0;  ///< parked ranks released mid-run
  std::size_t workers_left = 0;    ///< graceful kLeave departures
  /// Wall-clock from the first death detection to completion — the real
  /// protocol's analogue of the simulator's recovery_overhead_s.
  double recovery_wall_s = 0.0;

  [[nodiscard]] double max_worker_busy_s() const {
    double m = 0.0;
    for (const double b : worker_busy_s) m = b > m ? b : m;
    return m;
  }
  [[nodiscard]] double mean_worker_busy_s() const {
    if (worker_busy_s.empty()) return 0.0;
    double sum = 0.0;
    for (const double b : worker_busy_s) sum += b;
    return sum / static_cast<double>(worker_busy_s.size());
  }
  /// Load imbalance as max/mean busy time (1 = perfectly balanced; 0 when
  /// nothing ran).
  [[nodiscard]] double imbalance_ratio() const {
    const double mean = mean_worker_busy_s();
    return mean > 0.0 ? max_worker_busy_s() / mean : 0.0;
  }
};

/// Runs the task farm over `epochs`, scoring every voxel of the brain.
/// Returns the populated scoreboard.  The result is a pure function of
/// (epochs, total_voxels, pipeline, voxels_per_task): workers/batch/
/// low_water only move tasks between ranks, the scoreboard stores per-voxel
/// slots, and every recovery path recomputes identical values — so any
/// configuration, faulted or not, is bit-identical to the single-node run
/// over the same tasks.  Throws fcma::Error if every worker dies or a task
/// exhausts max_task_retries.
///
/// The EpochSource form is primary: all worker ranks lease panels from the
/// shared source (both backends are thread-safe), so a streamed source
/// bounds the farm's panel residency the same way it bounds a single-node
/// run.  The NormalizedEpochs overload wraps ResidentEpochs.
[[nodiscard]] core::Scoreboard run_cluster_analysis(
    core::EpochSource& epochs, std::size_t total_voxels,
    const DriverOptions& options, DriverStats* stats = nullptr);
[[nodiscard]] core::Scoreboard run_cluster_analysis(
    const fmri::NormalizedEpochs& epochs, std::size_t total_voxels,
    const DriverOptions& options, DriverStats* stats = nullptr);

}  // namespace fcma::cluster
