// Functional master-worker FCMA driver over the in-process communicator.
//
// Runs the real distribution protocol of paper §3.1.1 with real threads:
// rank 0 (master) partitions the brain into voxel-range tasks and hands one
// to each worker; a worker runs the three-stage pipeline on its task and
// returns the accuracies; the master feeds the scoreboard and keeps
// dispatching until all voxels are scored.  Used by tests and examples to
// validate that the distributed analysis is bit-identical to the
// single-node one; the virtual-time simulator (sim.hpp) answers the timing
// questions at 96-node scale.
#pragma once

#include "cluster/comm.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/scoreboard.hpp"
#include "fmri/dataset.hpp"

namespace fcma::cluster {

/// Options of one distributed analysis run.
struct DriverOptions {
  std::size_t workers = 2;
  std::size_t voxels_per_task = 0;  ///< 0 = one task per worker
  core::PipelineConfig pipeline;
};

/// Statistics of a driver run.
struct DriverStats {
  std::size_t tasks_dispatched = 0;
  std::size_t messages = 0;
};

/// Runs the task farm over `epochs` (already normalized), scoring every
/// voxel of the brain.  Returns the populated scoreboard.
[[nodiscard]] core::Scoreboard run_cluster_analysis(
    const fmri::NormalizedEpochs& epochs, std::size_t total_voxels,
    const DriverOptions& options, DriverStats* stats = nullptr);

}  // namespace fcma::cluster
