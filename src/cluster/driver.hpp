// Functional master-worker FCMA driver over the in-process communicator.
//
// Runs the real distribution protocol of paper §3.1.1 with real threads:
// rank 0 (master) partitions the brain into voxel-range tasks and streams
// them to the workers in *batches*; a worker runs the three-stage pipeline
// task by task, returning one accuracies message per task, and sends a
// work request when its local queue drops to the low-water mark so the
// next batch overlaps the tail of the current one (the paper's dynamic
// load-balancing protocol, where idle coprocessors pull work).  Used by
// tests and examples to validate that the distributed analysis is
// bit-identical to the single-node one; the virtual-time simulator
// (sim.hpp) answers the timing questions at 96-node scale.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/comm.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/scoreboard.hpp"
#include "fmri/dataset.hpp"

namespace fcma::cluster {

/// Options of one distributed analysis run.
struct DriverOptions {
  std::size_t workers = 2;
  std::size_t voxels_per_task = 0;  ///< 0 = one task per worker
  /// Tasks per kTaskAssign batch.  0 = auto: a quarter of a worker's even
  /// share, so every worker refills ~4 times and the tail stays balanced.
  std::size_t batch = 0;
  /// A worker requests more work when its local queue drops to this many
  /// tasks (it keeps computing while the request is in flight).
  std::size_t low_water = 1;
  core::PipelineConfig pipeline;
};

/// Statistics of a driver run.
struct DriverStats {
  std::size_t tasks_dispatched = 0;
  std::size_t batches = 0;        ///< kTaskAssign messages sent
  std::size_t work_requests = 0;  ///< kWorkRequest messages received
  std::size_t messages = 0;       ///< every protocol message, both ways
  /// Wall-clock seconds each worker rank spent inside the pipeline (index
  /// 0 = rank 1).  The straggler report: a healthy dynamic farm keeps
  /// max/mean near 1, a stuck rank shows up as a long bar.
  std::vector<double> worker_busy_s;

  [[nodiscard]] double max_worker_busy_s() const {
    double m = 0.0;
    for (const double b : worker_busy_s) m = b > m ? b : m;
    return m;
  }
  [[nodiscard]] double mean_worker_busy_s() const {
    if (worker_busy_s.empty()) return 0.0;
    double sum = 0.0;
    for (const double b : worker_busy_s) sum += b;
    return sum / static_cast<double>(worker_busy_s.size());
  }
  /// Load imbalance as max/mean busy time (1 = perfectly balanced; 0 when
  /// nothing ran).
  [[nodiscard]] double imbalance_ratio() const {
    const double mean = mean_worker_busy_s();
    return mean > 0.0 ? max_worker_busy_s() / mean : 0.0;
  }
};

/// Runs the task farm over `epochs` (already normalized), scoring every
/// voxel of the brain.  Returns the populated scoreboard.  The result is a
/// pure function of (epochs, total_voxels, pipeline, voxels_per_task):
/// workers/batch/low_water only move tasks between ranks, and the
/// scoreboard stores per-voxel slots, so any configuration is bit-identical
/// to the single-node run over the same tasks.
[[nodiscard]] core::Scoreboard run_cluster_analysis(
    const fmri::NormalizedEpochs& epochs, std::size_t total_voxels,
    const DriverOptions& options, DriverStats* stats = nullptr);

}  // namespace fcma::cluster
