// Virtual-time simulation of the FCMA master-worker task farm.
//
// The paper's scaling results (Tables 3/4, Fig 8) are a property of the
// task-farm structure: one master distributing voxel-range tasks to W
// coprocessor nodes over a 10GE network.  This simulator executes the same
// scheduling policy (first-free worker gets the next task) in virtual time:
//
//   * data distribution: a pipelined broadcast of the dataset;
//   * per task: an assignment message, the node's compute time, and a
//     result message; the master serializes its sends/receives (it is a
//     single NIC + single control loop);
//   * folds (outer cross-validation iterations) are barriers: all of a
//     fold's tasks finish before the next fold starts, as in the offline
//     protocol.
//
// Near-linear speedup, the quantization loss when tasks-per-worker is
// small, and the communication floor that caps online-analysis scaling all
// emerge from this model rather than being curve-fit.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace fcma::cluster {

/// Point-to-point network model (per-link).
struct NetworkModel {
  double latency_s = 50e-6;            ///< one-way message latency
  double bandwidth_bytes_per_s = 1.1e9;  ///< ~10GE payload bandwidth

  /// Transfer time of one message of `bytes`.
  [[nodiscard]] double transfer_s(double bytes) const {
    return latency_s + bytes / bandwidth_bytes_per_s;
  }
};

/// Static description of one simulated run.
struct FarmConfig {
  std::size_t workers = 1;
  NetworkModel net;
  double broadcast_bytes = 0.0;    ///< dataset distributed before round 1
  double assign_bytes = 64.0;      ///< task-assignment message size
  double result_bytes = 1024.0;    ///< per-task result message size
  double task_overhead_s = 1e-3;   ///< per-task node-side setup cost
  /// Tasks streamed per assignment message (the driver's batch dispatch +
  /// work-request protocol).  1 = the classic one-task-per-round farm; a
  /// larger batch amortizes the master's per-assignment serialization, the
  /// lever that lifts the communication floor on short-task folds.  Applies
  /// to the homogeneous model; the fault-injected overload stays per-task.
  std::size_t tasks_per_request = 1;
  /// Serial master-side work at the end of every fold: collecting and
  /// ranking voxel scores, training/testing the fold's final classifier.
  /// This floor is what keeps short-fold datasets from scaling ideally
  /// (the paper's face-scene vs attention asymmetry in Fig 8).
  double fold_overhead_s = 0.0;
  /// How long the master takes to notice a dead worker and re-dispatch its
  /// task (heartbeat/timeout interval); used by the fault-injected overload.
  double failure_detect_s = 5.0;
  /// Virtual instant at which the primary master dies (infinity = never).
  /// Dispatches stall until the standby notices the silence and promotes;
  /// results in flight to the dead master during the blackout are lost and
  /// recomputed — the model of driver.hpp's replicated control plane.
  double master_fails_at = std::numeric_limits<double>::infinity();
  /// Standby silence threshold: the dispatch blackout after a master death
  /// lasts this long (the real driver waits 1.5 lease timeouts).
  double failover_detect_s = 5.0;
  /// Speculative re-execution trigger: a task whose service time exceeds
  /// this is cloned onto a free worker that long after its assignment;
  /// both replicas run to completion and the earlier result wins
  /// (infinity = speculation off).  Models the driver's
  /// speculation_factor * lease_timeout_s re-dispatch.
  double speculate_after_s = std::numeric_limits<double>::infinity();
};

/// Outcome of a simulated run.
struct FarmOutcome {
  double makespan_s = 0.0;       ///< broadcast + all folds
  double compute_s = 0.0;        ///< total node-seconds of useful compute
  /// Node-seconds of useful compute per worker, across every fold — the
  /// simulated counterpart of DriverStats::worker_busy_s (straggler /
  /// load-imbalance attribution at 96-node scale).
  std::vector<double> worker_busy_s;

  /// Mean fraction of the makespan each worker spent computing.
  [[nodiscard]] double efficiency(std::size_t workers) const {
    return makespan_s <= 0.0
               ? 0.0
               : compute_s / (makespan_s * static_cast<double>(workers));
  }
  [[nodiscard]] double max_worker_busy_s() const {
    double m = 0.0;
    for (const double b : worker_busy_s) m = b > m ? b : m;
    return m;
  }
  [[nodiscard]] double mean_worker_busy_s() const {
    if (worker_busy_s.empty()) return 0.0;
    return compute_s / static_cast<double>(worker_busy_s.size());
  }
  /// Load imbalance as max/mean busy time (1 = perfectly balanced).
  [[nodiscard]] double imbalance_ratio() const {
    const double mean = mean_worker_busy_s();
    return mean > 0.0 ? max_worker_busy_s() / mean : 0.0;
  }
};

/// Simulates `folds` sequential rounds, each dispatching every task in
/// `fold_task_seconds` (the per-task compute times of one fold) across the
/// workers.  Identical folds are the offline protocol's outer loop.
[[nodiscard]] FarmOutcome simulate_task_farm(
    const FarmConfig& config, std::span<const double> fold_task_seconds,
    std::size_t folds);

/// Per-node behaviour for heterogeneous / fault-injected simulations.
struct WorkerProfile {
  double speed = 1.0;      ///< task time divisor (0.5 = half-speed node)
  /// Wall-clock time at which this node dies (it finishes nothing at or
  /// after this instant); infinity = never.
  double fails_at = std::numeric_limits<double>::infinity();
};

/// Extended outcome with fault accounting.
struct FarmOutcomeEx {
  FarmOutcome base;
  std::size_t tasks_reassigned = 0;  ///< tasks lost to dead nodes and redone
  std::size_t workers_lost = 0;
  /// Virtual seconds burned by failures: for each death, the detection
  /// interval (failure_detect_s) plus the partial compute the dying node
  /// threw away.  The model-side mirror of DriverStats::recovery_wall_s,
  /// so recovery overhead can be budgeted at 96-node scale before paying
  /// for a real run.
  double recovery_overhead_s = 0.0;

  // --- control plane -----------------------------------------------------
  std::size_t failovers = 0;  ///< master deaths survived by the standby
  /// Virtual seconds of failover damage: the dispatch blackout
  /// (failover_detect_s) plus the compute of every result lost in flight
  /// to the dead master.
  double failover_overhead_s = 0.0;
  std::size_t tasks_speculated = 0;  ///< straggler tasks cloned to a free node
  /// Node-seconds burned by losing speculative replicas (both copies run to
  /// completion; the loser's full service time is waste).
  double speculative_waste_s = 0.0;
};

/// Heterogeneous / faulty cluster: like simulate_task_farm but each worker
/// has its own speed and (optional) failure time.  A task in flight on a
/// dying node is re-dispatched after config.failure_detect_s; throws
/// fcma::Error if every node dies before the work completes.
[[nodiscard]] FarmOutcomeEx simulate_task_farm(
    const FarmConfig& config, std::span<const double> fold_task_seconds,
    std::size_t folds, std::span<const WorkerProfile> workers);

}  // namespace fcma::cluster
