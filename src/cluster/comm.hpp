// In-process message-passing layer.
//
// The paper's cluster runs master-worker FCMA over MPI.  This communicator
// reproduces the message-passing programming model inside one process: a
// fixed set of ranks, each with a thread-safe inbox, blocking tagged
// send/recv, and a barrier.  The FCMA cluster driver (driver.hpp) runs the
// real protocol over it; the virtual-time simulator (sim.hpp) models its
// timing at scale.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace fcma::cluster {

/// Well-known message tags of the FCMA protocol.
enum class Tag : std::int32_t {
  kTaskAssign = 1,   ///< master -> worker: batch of VoxelTasks payload
  kTaskResult = 2,   ///< worker -> master: accuracies payload
  kShutdown = 3,     ///< master -> worker: no more tasks
  kWorkRequest = 4,  ///< worker -> master: local queue low, send more tasks
  kUser = 100,       ///< first tag available to applications
};

/// One delivered message.
struct Message {
  std::size_t source = 0;
  Tag tag = Tag::kUser;
  std::vector<std::uint8_t> payload;
};

/// Fixed-size communicator: ranks 0..size()-1 with blocking mailboxes.
class Comm {
 public:
  explicit Comm(std::size_t ranks);

  [[nodiscard]] std::size_t size() const { return inboxes_.size(); }

  /// Enqueues a message into `to`'s inbox (copies the payload).
  void send(std::size_t from, std::size_t to, Tag tag,
            std::vector<std::uint8_t> payload);

  /// Blocks until a message is available for `rank`, FIFO order.
  [[nodiscard]] Message recv(std::size_t rank);

  /// Blocks until a message with `tag` is available for `rank` and removes
  /// the first such message (other tags stay queued in order).  Collectives
  /// need this: a fast rank's next-operation message can arrive before the
  /// current operation's message from a slower rank.
  [[nodiscard]] Message recv(std::size_t rank, Tag tag);

  /// Non-blocking probe: true if `rank` has a pending message.
  [[nodiscard]] bool has_message(std::size_t rank);

 private:
  struct Inbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  std::vector<std::unique_ptr<Inbox>> inboxes_;
};

/// MPI-style collectives over a Comm.  Every rank (0..size-1) must call the
/// collective exactly once per logical operation, like MPI; tags in the
/// collective range are reserved internally.
namespace collective {

/// Root's payload is delivered to every rank (including the root's own
/// return value).  Non-roots pass an empty payload.
[[nodiscard]] std::vector<std::uint8_t> broadcast(
    Comm& comm, std::size_t rank, std::size_t root,
    std::vector<std::uint8_t> payload);

/// Every rank contributes a payload; the root receives all of them ordered
/// by rank (others get an empty vector).
[[nodiscard]] std::vector<std::vector<std::uint8_t>> gather(
    Comm& comm, std::size_t rank, std::size_t root,
    std::vector<std::uint8_t> payload);

/// Blocks until every rank has entered the barrier.
void barrier(Comm& comm, std::size_t rank);

}  // namespace collective

/// Payload codecs for POD-like structures.
template <typename T>
std::vector<std::uint8_t> encode(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::uint8_t> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

template <typename T>
T decode(const std::vector<std::uint8_t>& payload) {
  static_assert(std::is_trivially_copyable_v<T>);
  FCMA_CHECK(payload.size() == sizeof(T), "payload size mismatch");
  T value;
  std::memcpy(&value, payload.data(), sizeof(T));
  return value;
}

/// Vector codecs (element count inferred from the byte length).
template <typename T>
std::vector<std::uint8_t> encode_vector(const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::uint8_t> out(values.size() * sizeof(T));
  if (!values.empty()) {
    std::memcpy(out.data(), values.data(), out.size());
  }
  return out;
}

template <typename T>
std::vector<T> decode_vector(const std::vector<std::uint8_t>& payload) {
  static_assert(std::is_trivially_copyable_v<T>);
  FCMA_CHECK(payload.size() % sizeof(T) == 0, "payload size mismatch");
  std::vector<T> values(payload.size() / sizeof(T));
  if (!values.empty()) {
    std::memcpy(values.data(), payload.data(), payload.size());
  }
  return values;
}

}  // namespace fcma::cluster
