// In-process message-passing layer.
//
// The paper's cluster runs master-worker FCMA over MPI.  This communicator
// reproduces the message-passing programming model inside one process: a
// fixed set of ranks, each with a thread-safe inbox, blocking tagged
// send/recv, and a barrier.  The FCMA cluster driver (driver.hpp) runs the
// real protocol over it; the virtual-time simulator (sim.hpp) models its
// timing at scale.
//
// Trace correlation (PR 9).  Every message also carries a SpanContext —
// the run's trace id, the sender's current span id, a per-(from,to) edge
// sequence number, and the send instant — stamped by send() at the moment
// the sender still holds its span open.  The receiver adopts the context's
// parent span (trace::ScopedParent), which is what stitches a worker's
// task spans causally under the master's dispatch spans in the merged
// cross-rank timeline.  With tracing off the context is all-zero and costs
// one branch.
//
// Fault-tolerance surface (PR 5).  Every message carries an FNV-1a payload
// checksum computed at send time (Message::checksum_ok() re-verifies it, so
// a FaultyComm-corrupted payload is detectable at the receiver).  recv_for()
// is the timeout overload the hardened protocol is built on: it returns
// std::nullopt instead of blocking forever, which lets the master sweep for
// expired task leases and lets an idle worker retransmit a lost work
// request.  close() poisons the communicator: every blocked or future recv
// drains real messages first and then returns a kShutdown-equivalent
// message instead of blocking, so a worker stuck in recv while the master
// exits (crash, thrown error) always unblocks; send() on a closed
// communicator silently drops.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace fcma::cluster {

/// Well-known message tags of the FCMA protocol.
enum class Tag : std::int32_t {
  kTaskAssign = 1,   ///< master -> worker: batch id + VoxelTasks payload
  kTaskResult = 2,   ///< worker -> master: batch id + accuracies payload
  kShutdown = 3,     ///< master -> worker: no more tasks (also what recv
                     ///< returns on a closed communicator)
  kWorkRequest = 4,  ///< worker -> master: queue low / idle retransmit
  kHeartbeat = 5,    ///< worker -> master: liveness (renews the task lease)
  kTaskNack = 6,     ///< worker -> master: batch unusable (bad checksum)
  kStateDelta = 7,   ///< master -> standby: one newly-recorded task result
                     ///< (same packed payload as kTaskResult)
  kMasterPing = 8,   ///< master -> standby: liveness while no results flow
  kTakeover = 9,     ///< standby -> everyone: I am the master now; route
                     ///< protocol traffic to this message's source rank
  kJoinGo = 10,      ///< master -> parked joiner: enter the worker loop
  kLeave = 11,       ///< worker -> master: graceful departure (requeue my
                     ///< leases; do not count me as a death)
  kUser = 100,       ///< first tag available to applications
};

/// One delivered message.
struct Message {
  /// Piggybacked span context: stamped at send time, all-zero when tracing
  /// is off.  `sent_ns` is timeline-epoch ns (ranks share one process
  /// epoch, so the receiver can time the flight directly).
  struct SpanContext {
    std::uint64_t trace_id = 0;     ///< run trace id (trace::run_id())
    std::uint64_t parent_span = 0;  ///< sender's open span at send()
    std::uint64_t edge_seq = 0;     ///< per-(from,to) logical sequence
    std::uint64_t sent_ns = 0;      ///< send instant (0 = no context)
  };

  std::size_t source = 0;
  Tag tag = Tag::kUser;
  std::vector<std::uint8_t> payload;
  /// FNV-1a of the payload, computed by send().  A mismatch means the bytes
  /// were corrupted in flight (fault injection, or a real transport in a
  /// future out-of-process port).
  std::uint64_t checksum = 0;
  SpanContext ctx;

  [[nodiscard]] bool checksum_ok() const;
};

/// Fixed-size communicator: ranks 0..size()-1 with blocking mailboxes.
class Comm {
 public:
  explicit Comm(std::size_t ranks);
  virtual ~Comm() = default;

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] std::size_t size() const { return inboxes_.size(); }

  /// Enqueues a message into `to`'s inbox (copies the payload).  Virtual so
  /// a FaultyComm decorator can drop/delay/duplicate/corrupt in flight.
  /// Dropped silently once the communicator is closed.
  virtual void send(std::size_t from, std::size_t to, Tag tag,
                    std::vector<std::uint8_t> payload);

  /// Blocks until a message is available for `rank`, FIFO order.  On a
  /// closed communicator, drains queued messages and then returns a
  /// kShutdown-equivalent message instead of blocking.
  [[nodiscard]] Message recv(std::size_t rank);

  /// Blocks until a message with `tag` is available for `rank` and removes
  /// the first such message (other tags stay queued in order).  Collectives
  /// need this: a fast rank's next-operation message can arrive before the
  /// current operation's message from a slower rank.  On a closed
  /// communicator, returns a kShutdown-equivalent message once no queued
  /// message matches.
  [[nodiscard]] Message recv(std::size_t rank, Tag tag);

  /// Timeout overloads: like recv(), but give up after `timeout_s` seconds
  /// and return std::nullopt.  The hardened master/worker protocol polls
  /// through these so lost messages can never block the farm forever.
  [[nodiscard]] std::optional<Message> recv_for(std::size_t rank,
                                                double timeout_s);
  [[nodiscard]] std::optional<Message> recv_for(std::size_t rank, Tag tag,
                                                double timeout_s);

  /// Non-blocking probe: true if `rank` has a pending message.
  [[nodiscard]] bool has_message(std::size_t rank);

  /// Poisons the communicator: wakes every blocked recv (they return a
  /// kShutdown-equivalent message once their queue is drained) and turns
  /// every later send into a no-op.  Idempotent; safe to call from any
  /// thread.  This is the master's exit path — a worker blocked in recv
  /// while the master unwinds must never deadlock the join.
  virtual void close();

  /// True once close() has been called.
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// FNV-1a 64-bit checksum of a byte span — the per-message integrity
  /// check (exposed so fault injection can pre-compute the honest checksum
  /// before corrupting the bytes).
  [[nodiscard]] static std::uint64_t payload_checksum(
      const std::vector<std::uint8_t>& payload);

 protected:
  /// Delivery primitive used by send() and by FaultyComm: enqueues with an
  /// explicit (possibly stale) checksum and the send-time span context.
  void enqueue(std::size_t from, std::size_t to, Tag tag,
               std::vector<std::uint8_t> payload, std::uint64_t checksum,
               Message::SpanContext ctx);

  /// Stamps the span context for a message leaving `from` toward `to` NOW,
  /// on the sending thread (FaultyComm must call this before deferring a
  /// delayed message — the delivering thread's span is the wrong parent).
  /// All-zero while tracing is off.
  [[nodiscard]] Message::SpanContext make_context(std::size_t from,
                                                  std::size_t to);

 private:
  struct Inbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  [[nodiscard]] static Message closed_message(std::size_t rank) {
    return Message{rank, Tag::kShutdown, {}, payload_checksum({}), {}};
  }
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::atomic<bool> closed_{false};
  /// Per-(from,to) logical edge sequence counters for SpanContext (distinct
  /// from FaultyComm's fault-decision sequencing).  Flat ranks*ranks array.
  std::unique_ptr<std::atomic<std::uint64_t>[]> ctx_edge_seq_;
};

/// MPI-style collectives over a Comm.  Every rank (0..size-1) must call the
/// collective exactly once per logical operation, like MPI; tags in the
/// collective range are reserved internally.
namespace collective {

/// Root's payload is delivered to every rank (including the root's own
/// return value).  Non-roots pass an empty payload.
[[nodiscard]] std::vector<std::uint8_t> broadcast(
    Comm& comm, std::size_t rank, std::size_t root,
    std::vector<std::uint8_t> payload);

/// Every rank contributes a payload; the root receives all of them ordered
/// by rank (others get an empty vector).
[[nodiscard]] std::vector<std::vector<std::uint8_t>> gather(
    Comm& comm, std::size_t rank, std::size_t root,
    std::vector<std::uint8_t> payload);

/// Blocks until every rank has entered the barrier.
void barrier(Comm& comm, std::size_t rank);

}  // namespace collective

/// Payload codecs for POD-like structures.
template <typename T>
std::vector<std::uint8_t> encode(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::uint8_t> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

template <typename T>
T decode(const std::vector<std::uint8_t>& payload) {
  static_assert(std::is_trivially_copyable_v<T>);
  FCMA_CHECK(payload.size() == sizeof(T), "payload size mismatch");
  T value;
  std::memcpy(&value, payload.data(), sizeof(T));
  return value;
}

/// Vector codecs (element count inferred from the byte length).
template <typename T>
std::vector<std::uint8_t> encode_vector(const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::uint8_t> out(values.size() * sizeof(T));
  if (!values.empty()) {
    std::memcpy(out.data(), values.data(), out.size());
  }
  return out;
}

template <typename T>
std::vector<T> decode_vector(const std::vector<std::uint8_t>& payload) {
  static_assert(std::is_trivially_copyable_v<T>);
  FCMA_CHECK(payload.size() % sizeof(T) == 0, "payload size mismatch");
  std::vector<T> values(payload.size() / sizeof(T));
  if (!values.empty()) {
    std::memcpy(values.data(), payload.data(), payload.size());
  }
  return values;
}

}  // namespace fcma::cluster
