#include "cluster/driver.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "cluster/checkpoint.hpp"
#include "common/trace.hpp"
#include "fcma/task.hpp"

namespace fcma::cluster {

namespace {

using Clock = std::chrono::steady_clock;

// kWorkRequest flag byte: a plain low-water refill request, or an idle
// retransmit (the worker has nothing to do and suspects a lost message —
// the master must requeue that worker's outstanding leases).
constexpr std::uint8_t kRequestRefill = 0;
constexpr std::uint8_t kRequestIdleRetry = 1;

std::vector<std::uint8_t> assign_payload(
    std::uint64_t batch_id, const std::vector<core::VoxelTask>& batch) {
  std::vector<std::uint8_t> payload = encode(batch_id);
  const auto tasks = encode_vector(batch);
  payload.insert(payload.end(), tasks.begin(), tasks.end());
  return payload;
}

/// Worker loop: receive task batches, run the pipeline task by task, return
/// one accuracies message per task, and request the next batch when the
/// local queue reaches the low-water mark — the request overlaps the
/// remaining local compute, so the worker never idles waiting for the
/// master unless the master itself is the bottleneck.  Workers share the
/// read-only normalized epoch data, exactly as the paper's workers share
/// the broadcast dataset.
///
/// Hardening: receives are polled (recv_for), and an idle worker
/// retransmits its work request with capped doubling backoff — a dropped
/// assignment, result, or request therefore recovers in O(poll) instead of
/// stalling the farm.  Each task start sends a heartbeat (renews the
/// master-side lease), and an assignment that fails its checksum is nacked
/// so the master can re-dispatch immediately.
void worker_main(Comm& comm, std::size_t rank,
                 const fmri::NormalizedEpochs& epochs,
                 const DriverOptions& options, std::size_t low_water,
                 double& busy_s) {
  // Per-worker span family: count/total/min/max of this rank's task
  // latencies, the cluster-level analogue of Table 3's load-balance data.
  const std::string task_label =
      "cluster/worker" + std::to_string(rank) + "/task";
  trace::set_thread_name("cluster/worker" + std::to_string(rank));
  std::deque<std::pair<std::uint64_t, core::VoxelTask>> local;
  bool requested = false;
  std::size_t completed = 0;
  const double base_poll = options.worker_poll_s;
  double poll = base_poll;
  for (;;) {
    // Injected crash: the worker vanishes without a farewell message once
    // it has completed its scheduled number of tasks.  The master only
    // finds out through the missed heartbeats.
    if (options.faults.kills(rank, completed)) return;
    if (local.empty()) {
      const std::optional<Message> m = comm.recv_for(rank, poll);
      if (!m) {
        // Idle with nothing inbound: our request or its assignment may
        // have been lost.  Retransmit with backoff; the idle-retry flag
        // tells the master to requeue whatever it still thinks we hold.
        comm.send(rank, 0, Tag::kWorkRequest, {kRequestIdleRetry});
        requested = true;
        poll = std::min(poll * 2.0, base_poll * 8.0);
        continue;
      }
      if (m->tag == Tag::kShutdown) return;
      if (m->tag == Tag::kTaskAssign) {
        if (!m->checksum_ok()) {
          // Corrupted in flight: unusable (even the batch id bytes are
          // suspect).  Nack so the master requeues our leases promptly.
          comm.send(rank, 0, Tag::kTaskNack, {});
          continue;
        }
        FCMA_CHECK(m->payload.size() > sizeof(std::uint64_t),
                   "empty task batch");
        std::uint64_t batch_id = 0;
        std::memcpy(&batch_id, m->payload.data(), sizeof(batch_id));
        const std::vector<std::uint8_t> rest(
            m->payload.begin() + sizeof(batch_id), m->payload.end());
        for (const auto& task : decode_vector<core::VoxelTask>(rest)) {
          local.emplace_back(batch_id, task);
        }
        requested = false;
        poll = base_poll;
      }
      // Any other tag is stale traffic from a recovered fault; ignore it.
      continue;
    }
    if (!requested && local.size() <= low_water) {
      comm.send(rank, 0, Tag::kWorkRequest, {kRequestRefill});
      requested = true;
    }
    const auto [batch_id, task] = local.front();
    local.pop_front();
    comm.send(rank, 0, Tag::kHeartbeat, {});  // renews our lease
    const auto task_begin = Clock::now();
    {
      const trace::Span task_span(task_label);
      const core::TaskResult result =
          core::run_task(epochs, task, options.pipeline);
      busy_s +=
          std::chrono::duration<double>(Clock::now() - task_begin).count();
      // Result message: batch id, the task descriptor, the accuracies.
      std::vector<double> packed;
      packed.reserve(3 + result.accuracy.size());
      packed.push_back(static_cast<double>(batch_id));
      packed.push_back(static_cast<double>(task.first));
      packed.push_back(static_cast<double>(task.count));
      packed.insert(packed.end(), result.accuracy.begin(),
                    result.accuracy.end());
      comm.send(rank, 0, Tag::kTaskResult, encode_vector(packed));
    }
    ++completed;
  }
}

/// Joins the farm on every exit path: poisons the communicator first so a
/// worker blocked in recv unblocks (the shutdown-race fix), then joins.
struct FarmGuard {
  Comm& comm;
  std::vector<std::thread>& threads;
  ~FarmGuard() {
    comm.close();
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }
};

void emit_counters(const DriverStats& s, std::size_t reassigned) {
  // Always emitted (0 included) so trace consumers can rely on presence.
  trace::count("cluster/tasks_dispatched",
               static_cast<std::int64_t>(s.tasks_dispatched));
  trace::count("cluster/work_requests",
               static_cast<std::int64_t>(s.work_requests));
  trace::count("cluster/retries", static_cast<std::int64_t>(s.retries));
  trace::count("cluster/reassignments", static_cast<std::int64_t>(reassigned));
  trace::count("cluster/heartbeat_misses",
               static_cast<std::int64_t>(s.heartbeat_misses));
  trace::count("cluster/corrupt_payloads",
               static_cast<std::int64_t>(s.corrupt_payloads));
}

}  // namespace

core::Scoreboard run_cluster_analysis(const fmri::NormalizedEpochs& epochs,
                                      std::size_t total_voxels,
                                      const DriverOptions& options,
                                      DriverStats* stats) {
  FCMA_CHECK(options.workers >= 1, "need at least one worker");
  FCMA_CHECK(options.low_water >= 1, "low_water must be at least 1");
  FCMA_CHECK(total_voxels >= 1, "need at least one voxel");
  FCMA_CHECK(options.lease_timeout_s > 0.0, "lease timeout must be positive");
  FCMA_CHECK(options.worker_poll_s > 0.0, "worker poll must be positive");
  FCMA_CHECK(options.max_task_retries >= 1, "retry limit must be at least 1");
  options.faults.validate(options.workers + 1);

  const std::size_t per_task =
      options.voxels_per_task != 0
          ? options.voxels_per_task
          : (total_voxels + options.workers - 1) / options.workers;
  const auto tasks = core::partition_voxels(total_voxels, per_task);
  // Clamp the batch size to the task count (a larger request could never be
  // filled) and the low-water mark to the batch size (a higher mark would
  // only re-request immediately after every refill).
  const std::size_t batch_size = std::min(
      options.batch != 0
          ? options.batch
          : std::max<std::size_t>(1, tasks.size() / (options.workers * 4)),
      tasks.size());
  const std::size_t low_water = std::min(options.low_water, batch_size);

  DriverStats local_stats;
  local_stats.worker_busy_s.assign(options.workers, 0.0);

  core::Scoreboard board =
      options.resume != nullptr ? *options.resume
                                : core::Scoreboard(total_voxels);
  if (options.resume != nullptr) {
    FCMA_CHECK(board.total_voxels() == total_voxels,
               "resume scoreboard does not match the dataset");
  }
  // Pending queue: every task with at least one unscored voxel.  A resumed
  // run therefore skips completed ranges entirely; partially-scored tasks
  // are recomputed whole (the idempotent scoreboard absorbs the overlap).
  std::deque<core::VoxelTask> pending;
  for (const auto& task : tasks) {
    bool done = true;
    for (std::uint32_t v = task.first; v < task.first + task.count; ++v) {
      if (!board.voxel_scored(v)) {
        done = false;
        break;
      }
    }
    if (!done) pending.push_back(task);
  }
  if (board.complete()) {
    // Nothing to do (fully-scored resume); keep the side effects uniform.
    if (!options.checkpoint_path.empty()) {
      write_checkpoint(options.checkpoint_path, board);
      ++local_stats.checkpoints_written;
    }
    emit_counters(local_stats, 0);
    if (stats != nullptr) *stats = local_stats;
    return board;
  }

  const std::unique_ptr<Comm> comm_owner =
      options.faults.message_faults()
          ? std::make_unique<FaultyComm>(options.workers + 1, options.faults)
          : std::make_unique<Comm>(options.workers + 1);  // rank 0 = master
  Comm& comm = *comm_owner;

  std::vector<std::thread> workers;
  workers.reserve(options.workers);
  const FarmGuard guard{comm, workers};
  for (std::size_t w = 1; w <= options.workers; ++w) {
    workers.emplace_back(worker_main, std::ref(comm), w, std::cref(epochs),
                         std::cref(options), low_water,
                         std::ref(local_stats.worker_busy_s[w - 1]));
  }

  // --- master state -------------------------------------------------------
  struct Lease {
    std::size_t worker = 0;
    std::vector<core::VoxelTask> outstanding;  ///< tasks without a result yet
  };
  std::unordered_map<std::uint64_t, Lease> leases;
  std::uint64_t next_batch_id = 1;
  std::vector<char> alive(options.workers + 1, 1);
  std::vector<Clock::time_point> last_activity(options.workers + 1,
                                               Clock::now());
  std::unordered_map<std::uint32_t, std::size_t> requeue_count;
  std::size_t tasks_reassigned_death = 0;
  std::size_t results_since_ckpt = 0;
  bool any_death = false;
  Clock::time_point first_death{};

  // Returns `w`'s outstanding leased tasks to the front of the pending
  // queue (prompt recovery) and drops the leases.  The retry cap aborts the
  // run instead of spinning when faults are severe enough that no delivery
  // ever lands.
  const auto requeue_worker = [&](std::size_t w) -> std::size_t {
    std::size_t n = 0;
    for (auto it = leases.begin(); it != leases.end();) {
      if (it->second.worker != w) {
        ++it;
        continue;
      }
      for (const auto& task : it->second.outstanding) {
        FCMA_CHECK(++requeue_count[task.first] <= options.max_task_retries,
                   "task exceeded the retry limit; faults too severe to "
                   "make progress");
        pending.push_front(task);
        ++n;
      }
      it = leases.erase(it);
    }
    local_stats.tasks_requeued += n;
    return n;
  };

  // Sends the next batch to `w` under a fresh lease; false when no work is
  // pending (the worker keeps idling and will retry later).
  const auto dispatch = [&](std::size_t w) -> bool {
    if (pending.empty()) return false;
    const std::size_t count = std::min(batch_size, pending.size());
    const std::vector<core::VoxelTask> batch(
        pending.begin(),
        pending.begin() + static_cast<std::ptrdiff_t>(count));
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(count));
    const std::uint64_t batch_id = next_batch_id++;
    leases[batch_id] = Lease{w, batch};
    comm.send(0, w, Tag::kTaskAssign, assign_payload(batch_id, batch));
    local_stats.tasks_dispatched += count;
    ++local_stats.batches;
    ++local_stats.messages;
    // Per-batch master queue depth: how many tasks are still undispatched
    // after this assignment (the drain curve of the farm).
    trace::gauge_set("cluster/master/tasks_remaining",
                     static_cast<double>(pending.size()));
    trace::gauge_max("cluster/master/max_batch_tasks",
                     static_cast<double>(count));
    return true;
  };

  // Declares silent workers dead: a worker holding a lease that has shown
  // no sign of life (heartbeat, result, request) for a full lease timeout
  // is not coming back; its tasks move to the survivors.
  const auto sweep_leases = [&] {
    const auto now = Clock::now();
    for (std::size_t w = 1; w <= options.workers; ++w) {
      if (!alive[w]) continue;
      bool leased = false;
      for (const auto& entry : leases) {
        if (entry.second.worker == w) {
          leased = true;
          break;
        }
      }
      if (!leased) continue;
      const double silent_s =
          std::chrono::duration<double>(now - last_activity[w]).count();
      if (silent_s <= options.lease_timeout_s) continue;
      alive[w] = 0;
      ++local_stats.workers_died;
      ++local_stats.heartbeat_misses;
      if (!any_death) {
        any_death = true;
        first_death = now;
      }
      tasks_reassigned_death += requeue_worker(w);
    }
    bool any_alive = false;
    for (std::size_t w = 1; w <= options.workers; ++w) {
      if (alive[w]) any_alive = true;
    }
    FCMA_CHECK(any_alive, "every worker died before the analysis completed");
  };

  const auto checkpoint_if_due = [&](bool force) {
    if (options.checkpoint_path.empty()) return;
    if (!force && (options.checkpoint_every == 0 ||
                   results_since_ckpt < options.checkpoint_every)) {
      return;
    }
    write_checkpoint(options.checkpoint_path, board);
    ++local_stats.checkpoints_written;
    results_since_ckpt = 0;
  };

  // Prime every worker with one batch; surplus workers idle until shutdown.
  for (std::size_t w = 1; w <= options.workers; ++w) (void)dispatch(w);

  // Collect results, answer work requests, and recover losses until every
  // voxel is scored.  The poll timeout bounds how stale the lease sweep can
  // be; messages wake the master immediately.
  const double master_poll =
      std::min(0.05, options.lease_timeout_s / 4.0);
  while (!board.complete()) {
    const std::optional<Message> maybe = comm.recv_for(0, master_poll);
    sweep_leases();
    if (!maybe) continue;
    const Message& m = *maybe;
    ++local_stats.messages;
    const std::size_t w = m.source;
    last_activity[w] = Clock::now();
    if (!alive[w]) alive[w] = 1;  // false positive: it spoke, so it lives

    switch (m.tag) {
      case Tag::kHeartbeat:
        break;
      case Tag::kWorkRequest: {
        ++local_stats.work_requests;
        const bool idle_retry =
            !m.payload.empty() && m.payload[0] == kRequestIdleRetry;
        if (idle_retry) {
          // The worker has nothing, yet we may think it does: whatever it
          // still leases was lost in flight (assignment or results) — put
          // it back and re-serve.
          const std::size_t n = requeue_worker(w);
          if (n > 0) ++local_stats.retries;
        }
        (void)dispatch(w);
        break;
      }
      case Tag::kTaskNack: {
        // The worker received an assignment that failed its checksum; the
        // batch id inside is untrustworthy, so requeue everything it holds
        // and re-dispatch.
        ++local_stats.corrupt_payloads;
        const std::size_t n = requeue_worker(w);
        if (n > 0) ++local_stats.retries;
        (void)dispatch(w);
        break;
      }
      case Tag::kTaskResult: {
        if (!m.checksum_ok()) {
          // Corrupted result: drop it.  The worker moves on; the lease (or
          // its idle retry) re-runs the task eventually.
          ++local_stats.corrupt_payloads;
          break;
        }
        const auto packed = decode_vector<double>(m.payload);
        FCMA_CHECK(packed.size() >= 3, "malformed result payload");
        const auto batch_id = static_cast<std::uint64_t>(packed[0]);
        core::TaskResult result;
        result.task.first = static_cast<std::uint32_t>(packed[1]);
        result.task.count = static_cast<std::uint32_t>(packed[2]);
        result.accuracy.assign(packed.begin() + 3, packed.end());
        // At-least-once: duplicates (redelivery, recomputation after a
        // false requeue) are absorbed; disagreement throws.
        (void)board.add_idempotent(result);
        ++results_since_ckpt;
        const auto lease_it = leases.find(batch_id);
        if (lease_it != leases.end()) {
          auto& out = lease_it->second.outstanding;
          for (auto it = out.begin(); it != out.end(); ++it) {
            if (it->first == result.task.first) {
              out.erase(it);
              break;
            }
          }
          if (out.empty()) leases.erase(lease_it);
        }
        checkpoint_if_due(false);
        break;
      }
      default:
        FCMA_CHECK(false, "master received an unexpected message tag");
    }
  }

  if (any_death) {
    local_stats.recovery_wall_s =
        std::chrono::duration<double>(Clock::now() - first_death).count();
  }
  checkpoint_if_due(true);
  // Release the farm; a lost shutdown is covered by the guard's close().
  for (std::size_t w = 1; w <= options.workers; ++w) {
    comm.send(0, w, Tag::kShutdown, {});
    ++local_stats.messages;
  }
  // The guard closes the communicator and joins every worker here — the
  // per-rank busy slots are final afterwards, but we still need them below,
  // so join explicitly first (the guard's second pass is a no-op).
  comm.close();
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }

  emit_counters(local_stats, tasks_reassigned_death);
  // Straggler / load-imbalance summary (joined above, so the per-rank busy
  // slots are final).
  trace::gauge_set("cluster/max_worker_busy_s",
                   local_stats.max_worker_busy_s());
  trace::gauge_set("cluster/mean_worker_busy_s",
                   local_stats.mean_worker_busy_s());
  trace::gauge_set("cluster/imbalance_ratio", local_stats.imbalance_ratio());
  if (stats != nullptr) *stats = local_stats;
  return board;
}

}  // namespace fcma::cluster
