#include "cluster/driver.hpp"

#include <string>
#include <thread>

#include "common/trace.hpp"
#include "fcma/task.hpp"

namespace fcma::cluster {

namespace {

/// Worker loop: receive tasks, run the pipeline, return accuracies, until
/// shutdown.  Workers share the read-only normalized epoch data, exactly as
/// the paper's workers share the broadcast dataset.
void worker_main(Comm& comm, std::size_t rank,
                 const fmri::NormalizedEpochs& epochs,
                 const core::PipelineConfig& pipeline) {
  // Per-worker span family: count/total/min/max of this rank's task
  // latencies, the cluster-level analogue of Table 3's load-balance data.
  const std::string task_label =
      "cluster/worker" + std::to_string(rank) + "/task";
  for (;;) {
    const Message m = comm.recv(rank);
    if (m.tag == Tag::kShutdown) return;
    FCMA_CHECK(m.tag == Tag::kTaskAssign, "worker expected a task");
    const auto task = decode<core::VoxelTask>(m.payload);
    const trace::Span task_span(task_label);
    const core::TaskResult result = core::run_task(epochs, task, pipeline);
    // Result message: the task descriptor followed by the accuracies.
    std::vector<double> packed;
    packed.reserve(2 + result.accuracy.size());
    packed.push_back(static_cast<double>(task.first));
    packed.push_back(static_cast<double>(task.count));
    packed.insert(packed.end(), result.accuracy.begin(),
                  result.accuracy.end());
    comm.send(rank, 0, Tag::kTaskResult, encode_vector(packed));
  }
}

}  // namespace

core::Scoreboard run_cluster_analysis(const fmri::NormalizedEpochs& epochs,
                                      std::size_t total_voxels,
                                      const DriverOptions& options,
                                      DriverStats* stats) {
  FCMA_CHECK(options.workers >= 1, "need at least one worker");
  const std::size_t per_task =
      options.voxels_per_task != 0
          ? options.voxels_per_task
          : (total_voxels + options.workers - 1) / options.workers;
  auto tasks = core::partition_voxels(total_voxels, per_task);

  Comm comm(options.workers + 1);  // rank 0 = master
  std::vector<std::thread> workers;
  workers.reserve(options.workers);
  for (std::size_t w = 1; w <= options.workers; ++w) {
    workers.emplace_back(worker_main, std::ref(comm), w, std::cref(epochs),
                         std::cref(options.pipeline));
  }

  core::Scoreboard board(total_voxels);
  DriverStats local_stats;
  std::size_t next_task = 0;
  std::size_t in_flight = 0;

  // Prime every worker with one task (or shut it down if none remain).
  for (std::size_t w = 1; w <= options.workers; ++w) {
    if (next_task < tasks.size()) {
      comm.send(0, w, Tag::kTaskAssign, encode(tasks[next_task++]));
      ++in_flight;
      ++local_stats.tasks_dispatched;
      ++local_stats.messages;
    } else {
      comm.send(0, w, Tag::kShutdown, {});
      ++local_stats.messages;
    }
  }

  // Collect results; a finishing worker immediately gets the next task.
  while (in_flight > 0) {
    const Message m = comm.recv(0);
    FCMA_CHECK(m.tag == Tag::kTaskResult, "master expected a result");
    ++local_stats.messages;
    const auto packed = decode_vector<double>(m.payload);
    FCMA_CHECK(packed.size() >= 2, "malformed result payload");
    core::TaskResult result;
    result.task.first = static_cast<std::uint32_t>(packed[0]);
    result.task.count = static_cast<std::uint32_t>(packed[1]);
    result.accuracy.assign(packed.begin() + 2, packed.end());
    board.add(result);
    --in_flight;
    if (next_task < tasks.size()) {
      comm.send(0, m.source, Tag::kTaskAssign, encode(tasks[next_task++]));
      ++in_flight;
      ++local_stats.tasks_dispatched;
      ++local_stats.messages;
    } else {
      comm.send(0, m.source, Tag::kShutdown, {});
      ++local_stats.messages;
    }
  }

  for (auto& t : workers) t.join();
  trace::count("cluster/tasks_dispatched",
               static_cast<std::int64_t>(local_stats.tasks_dispatched));
  if (stats != nullptr) *stats = local_stats;
  return board;
}

}  // namespace fcma::cluster
