#include "cluster/driver.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "cluster/checkpoint.hpp"
#include "common/trace.hpp"
#include "fcma/task.hpp"

namespace fcma::cluster {

namespace {

using Clock = std::chrono::steady_clock;

// kWorkRequest flag byte: a plain low-water refill request, or an idle
// retransmit (the worker has nothing to do and suspects a lost message —
// the master must requeue that worker's outstanding leases).
constexpr std::uint8_t kRequestRefill = 0;
constexpr std::uint8_t kRequestIdleRetry = 1;

// A promoted standby opens a disjoint batch-id space so its fresh leases can
// never collide with ids still riding in stale worker queues.
constexpr std::uint64_t kFailoverBatchBase = std::uint64_t{1} << 32;

std::vector<std::uint8_t> assign_payload(
    std::uint64_t batch_id, const std::vector<core::VoxelTask>& batch) {
  std::vector<std::uint8_t> payload = encode(batch_id);
  const auto tasks = encode_vector(batch);
  payload.insert(payload.end(), tasks.begin(), tasks.end());
  return payload;
}

/// A kTaskResult / kStateDelta payload: batch id, task descriptor,
/// accuracies, packed as doubles.
struct PackedResult {
  std::uint64_t batch_id = 0;
  core::TaskResult result;
};

std::optional<PackedResult> decode_result(
    const std::vector<std::uint8_t>& payload) {
  const auto packed = decode_vector<double>(payload);
  if (packed.size() < 3) return std::nullopt;
  PackedResult r;
  r.batch_id = static_cast<std::uint64_t>(packed[0]);
  r.result.task.first = static_cast<std::uint32_t>(packed[1]);
  r.result.task.count = static_cast<std::uint32_t>(packed[2]);
  r.result.accuracy.assign(packed.begin() + 3, packed.end());
  return r;
}

/// Worker loop: receive task batches, run the pipeline task by task, return
/// one accuracies message per task, and request the next batch when the
/// local queue reaches the low-water mark — the request overlaps the
/// remaining local compute, so the worker never idles waiting for the
/// master unless the master itself is the bottleneck.  Workers share the
/// read-only normalized epoch data, exactly as the paper's workers share
/// the broadcast dataset.
///
/// Hardening: receives are polled (recv_for), and an idle worker
/// retransmits its work request with capped doubling backoff — a dropped
/// assignment, result, or request therefore recovers in O(poll) instead of
/// stalling the farm.  Each task start sends a heartbeat (renews the
/// master-side lease), and an assignment that fails its checksum is nacked
/// so the master can re-dispatch immediately.
///
/// The master is not a fixed rank: protocol traffic goes to whichever rank
/// last assigned work or announced a takeover, so a standby promotion
/// redirects the farm without restarting it.  A `parked` worker (elastic
/// join) waits for kJoinGo before entering the loop, and the scheduled
/// leaver sends kLeave and exits after its quota.
void worker_main(Comm& comm, std::size_t rank, core::EpochSource& epochs,
                 const DriverOptions& options, std::size_t low_water,
                 double& busy_s, bool parked) {
  // Per-worker span family: count/total/min/max of this rank's task
  // latencies, the cluster-level analogue of Table 3's load-balance data.
  const std::string task_label =
      "cluster/worker" + std::to_string(rank) + "/task";
  trace::set_thread_name("cluster/worker" + std::to_string(rank));
  std::size_t master = 0;  // rank currently running the control plane
  if (parked) {
    // Elastic join: park until whichever master crosses the join threshold
    // releases us.  A takeover announcement only re-routes; it does not
    // release.
    for (;;) {
      const Message m = comm.recv(rank);
      if (m.tag == Tag::kShutdown) return;
      if (m.tag == Tag::kTakeover) {
        master = m.source;
        continue;
      }
      if (m.tag == Tag::kJoinGo) {
        master = m.source;
        break;
      }
      // Anything else is stale traffic; stay parked.
    }
  }
  // Local queue entries remember their causal origin: the master's dispatch
  // span (from the assignment's piggybacked context) parents everything the
  // task records, and the arrival instant feeds the queue-wait attribution.
  struct LocalTask {
    std::uint64_t batch_id = 0;
    core::VoxelTask task;
    std::uint64_t parent_span = 0;
    std::uint64_t recv_ns = 0;
  };
  std::deque<LocalTask> local;
  bool requested = false;
  std::size_t completed = 0;
  const double base_poll = options.worker_poll_s;
  double poll = base_poll;
  for (;;) {
    // Injected crash: the worker vanishes without a farewell message once
    // it has completed its scheduled number of tasks.  The master only
    // finds out through the missed heartbeats.
    if (options.faults.kills(rank, completed)) return;
    if (local.empty()) {
      const std::optional<Message> m = comm.recv_for(rank, poll);
      if (!m) {
        // Idle with nothing inbound: our request or its assignment may
        // have been lost.  Retransmit with backoff; the idle-retry flag
        // tells the master to requeue whatever it still thinks we hold.
        comm.send(rank, master, Tag::kWorkRequest, {kRequestIdleRetry});
        requested = true;
        poll = std::min(poll * 2.0, base_poll * 8.0);
        continue;
      }
      if (m->tag == Tag::kShutdown) return;
      if (m->tag == Tag::kTakeover) {
        // New control plane: route to it and re-request promptly — our old
        // request (or its assignment) may have died with the old master.
        master = m->source;
        requested = false;
        poll = base_poll;
        continue;
      }
      if (m->tag == Tag::kTaskAssign) {
        if (!m->checksum_ok()) {
          // Corrupted in flight: unusable (even the batch id bytes are
          // suspect).  Nack so the master requeues our leases promptly.
          comm.send(rank, master, Tag::kTaskNack, {});
          continue;
        }
        FCMA_CHECK(m->payload.size() > sizeof(std::uint64_t),
                   "empty task batch");
        master = m->source;  // results go to whoever assigned the work
        std::uint64_t batch_id = 0;
        std::memcpy(&batch_id, m->payload.data(), sizeof(batch_id));
        const std::vector<std::uint8_t> rest(
            m->payload.begin() + sizeof(batch_id), m->payload.end());
        const std::uint64_t recv_ns = trace::now_ns();
        if (trace::enabled() && m->ctx.sent_ns != 0) {
          // Assignment flight time, parented to the master's dispatch span
          // (both endpoints are on the shared process timeline epoch).
          const trace::ScopedParent parent(m->ctx.parent_span);
          trace::record_interval_ns("cluster/comm/assign", m->ctx.sent_ns,
                                    recv_ns);
        }
        for (const auto& task : decode_vector<core::VoxelTask>(rest)) {
          local.push_back(LocalTask{batch_id, task, m->ctx.parent_span,
                                    recv_ns});
        }
        requested = false;
        poll = base_poll;
      }
      // Any other tag is stale traffic from a recovered fault; ignore it.
      continue;
    }
    if (!requested && local.size() <= low_water) {
      comm.send(rank, master, Tag::kWorkRequest, {kRequestRefill});
      requested = true;
    }
    const LocalTask entry = local.front();
    const auto batch_id = entry.batch_id;
    const auto task = entry.task;
    local.pop_front();
    // Adopt the dispatching master's span for the whole task scope: the
    // queue wait, the task span, and the result send's context all parent
    // to it — the cross-rank stitch.
    const trace::ScopedParent dispatch_parent(entry.parent_span);
    comm.send(rank, master, Tag::kHeartbeat, {});  // renews our lease
    if (options.faults.stalls(rank)) {
      // Scheduled straggler: the lease ages while we sleep, but the
      // heartbeat above keeps us alive — the speculation trigger, not the
      // death trigger.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.faults.stall_s));
    }
    if (trace::enabled() && entry.recv_ns != 0) {
      // Queue wait: assignment arrival to compute start.
      trace::record_interval_ns("cluster/queue", entry.recv_ns,
                                trace::now_ns());
    }
    const auto task_begin = Clock::now();
    {
      const trace::Span task_span(task_label);
      const core::TaskResult result =
          core::run_task(epochs, task, options.pipeline);
      busy_s +=
          std::chrono::duration<double>(Clock::now() - task_begin).count();
      // Result message: batch id, the task descriptor, the accuracies.
      std::vector<double> packed;
      packed.reserve(3 + result.accuracy.size());
      packed.push_back(static_cast<double>(batch_id));
      packed.push_back(static_cast<double>(task.first));
      packed.push_back(static_cast<double>(task.count));
      packed.insert(packed.end(), result.accuracy.begin(),
                    result.accuracy.end());
      comm.send(rank, master, Tag::kTaskResult, encode_vector(packed));
    }
    ++completed;
    if (options.leave_rank == rank && completed >= options.leave_after_tasks) {
      // Graceful departure: unlike a crash, we say goodbye so the master
      // requeues immediately instead of waiting out the lease.
      comm.send(rank, master, Tag::kLeave, {});
      return;
    }
  }
}

/// Joins the farm on every exit path: poisons the communicator first so a
/// worker (or the standby) blocked in recv unblocks (the shutdown-race
/// fix), then joins.
struct FarmGuard {
  Comm& comm;
  std::vector<std::thread>& threads;
  std::thread* standby = nullptr;
  ~FarmGuard() {
    comm.close();
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
    if (standby != nullptr && standby->joinable()) standby->join();
  }
};

void emit_counters(const DriverStats& s, std::size_t reassigned) {
  // Always emitted (0 included) so trace consumers can rely on presence.
  trace::count("cluster/tasks_dispatched",
               static_cast<std::int64_t>(s.tasks_dispatched));
  trace::count("cluster/work_requests",
               static_cast<std::int64_t>(s.work_requests));
  trace::count("cluster/retries", static_cast<std::int64_t>(s.retries));
  trace::count("cluster/reassignments", static_cast<std::int64_t>(reassigned));
  trace::count("cluster/heartbeat_misses",
               static_cast<std::int64_t>(s.heartbeat_misses));
  trace::count("cluster/corrupt_payloads",
               static_cast<std::int64_t>(s.corrupt_payloads));
  trace::count("cluster/speculative_dispatches",
               static_cast<std::int64_t>(s.speculative_dispatches));
  trace::count("cluster/resurrections",
               static_cast<std::int64_t>(s.resurrections));
  trace::count("cluster/failovers", static_cast<std::int64_t>(s.failovers));
}

/// Immutable per-run context shared by both control-plane incarnations.
struct ControlContext {
  Comm& comm;
  const DriverOptions& options;
  const std::vector<core::VoxelTask>& tasks;
  std::size_t batch_size;
  std::size_t worker_ranks;  ///< initial + joiner ranks (1..worker_ranks)
  std::size_t standby_rank;  ///< 0 = control plane not replicated
};

enum class MasterExit {
  kCompleted,  ///< every voxel scored; farm shut down
  kKilled,     ///< injected master crash (kill_master_after_batches)
  kAbdicated,  ///< a promoted standby (or teardown) superseded this loop
};

/// The master protocol loop, runnable by the primary (self = 0, fresh or
/// resumed state) and by a promoted standby (self = standby_rank, state
/// replicated from the delta stream).  Rebuilds the pending queue from the
/// scoreboard exactly like checkpoint/resume, primes the initial workers,
/// then collects results, answers work requests, and recovers losses until
/// every voxel is scored.  `reassigned_death` accumulates tasks moved off
/// dead workers (the cluster/reassignments counter).
MasterExit run_master_loop(const ControlContext& ctx, std::size_t self,
                           bool is_failover, core::Scoreboard& board,
                           DriverStats& stats,
                           std::size_t& reassigned_death) {
  Comm& comm = ctx.comm;
  const DriverOptions& options = ctx.options;
  const std::size_t worker_ranks = ctx.worker_ranks;
  const bool replicate = ctx.standby_rank != 0 && self != ctx.standby_rank;

  const auto task_scored = [&board](const core::VoxelTask& task) {
    for (std::uint32_t v = task.first; v < task.first + task.count; ++v) {
      if (!board.voxel_scored(v)) return false;
    }
    return true;
  };

  // Pending queue: every task with at least one unscored voxel.  A resumed
  // (or failed-over) run therefore skips completed ranges entirely;
  // partially-scored tasks are recomputed whole (the idempotent scoreboard
  // absorbs the overlap).
  std::deque<core::VoxelTask> pending;
  for (const auto& task : ctx.tasks) {
    if (!task_scored(task)) pending.push_back(task);
  }

  struct Lease {
    std::size_t worker = 0;
    std::vector<core::VoxelTask> outstanding;  ///< tasks without a result yet
    Clock::time_point granted{};
    bool speculated = false;  ///< a replica exists (or this is one)
  };
  std::unordered_map<std::uint64_t, Lease> leases;
  std::uint64_t next_batch_id = is_failover ? kFailoverBatchBase : 1;
  std::vector<char> alive(worker_ranks + 1, 1);
  // Joiner ranks park until released.  The release threshold is a pure
  // function of the scoreboard, so whichever incarnation crosses it sends
  // the go; a duplicate go is ignored by an already-running worker.
  std::vector<char> released(worker_ranks + 1, 0);
  for (std::size_t w = 1; w <= options.workers; ++w) released[w] = 1;
  bool joiners_parked = options.join_workers > 0;
  std::vector<Clock::time_point> last_activity(worker_ranks + 1,
                                               Clock::now());
  std::unordered_map<std::uint32_t, std::size_t> requeue_count;
  std::size_t results_since_ckpt = 0;
  // A failover IS a recovery window: clock it from promotion to completion.
  bool any_death = is_failover;
  Clock::time_point first_death = Clock::now();

  // Returns `w`'s outstanding leased tasks to the front of the pending
  // queue (prompt recovery) and drops the leases.  Tasks whose voxels are
  // already fully scored (a late result or speculative replica raced the
  // requeue) are purged without recompute — and without burning a retry.
  // The retry cap aborts the run instead of spinning when faults are severe
  // enough that no delivery ever lands.
  const auto requeue_worker = [&](std::size_t w) -> std::size_t {
    std::size_t n = 0;
    for (auto it = leases.begin(); it != leases.end();) {
      if (it->second.worker != w) {
        ++it;
        continue;
      }
      for (const auto& task : it->second.outstanding) {
        if (task_scored(task)) continue;
        FCMA_CHECK(++requeue_count[task.first] <= options.max_task_retries,
                   "task exceeded the retry limit; faults too severe to "
                   "make progress");
        pending.push_front(task);
        ++n;
      }
      it = leases.erase(it);
    }
    stats.tasks_requeued += n;
    return n;
  };

  const auto holds_lease = [&](std::size_t w) {
    for (const auto& entry : leases) {
      if (entry.second.worker == w) return true;
    }
    return false;
  };

  // Sends the next batch to `w` under a fresh lease; false when no work is
  // pending (the worker keeps idling and will retry later).
  const auto dispatch = [&](std::size_t w) -> bool {
    if (pending.empty()) return false;
    const std::size_t count = std::min(ctx.batch_size, pending.size());
    std::vector<core::VoxelTask> batch(
        pending.begin(),
        pending.begin() + static_cast<std::ptrdiff_t>(count));
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(count));
    const std::uint64_t batch_id = next_batch_id++;
    {
      // The dispatch span is the causal root of everything this batch does
      // on its worker: send() stamps it into the assignment's context while
      // the span is still open.
      const trace::Span dispatch_span("cluster/dispatch");
      comm.send(self, w, Tag::kTaskAssign, assign_payload(batch_id, batch));
    }
    leases[batch_id] = Lease{w, std::move(batch), Clock::now(), false};
    stats.tasks_dispatched += count;
    ++stats.batches;
    ++stats.messages;
    // Per-batch master queue depth: how many tasks are still undispatched
    // after this assignment (the drain curve of the farm).
    trace::gauge_set("cluster/master/tasks_remaining",
                     static_cast<double>(pending.size()));
    trace::gauge_max("cluster/master/max_batch_tasks",
                     static_cast<double>(count));
    return true;
  };

  // Releases the parked joiner ranks once `join_after_tasks` tasks are
  // fully scored (or immediately when forced — the farm would otherwise
  // have no capacity left).
  const auto release_joiners = [&](bool force) {
    if (!joiners_parked) return;
    if (!force) {
      std::size_t done = 0;
      for (const auto& task : ctx.tasks) {
        if (task_scored(task)) ++done;
      }
      if (done < options.join_after_tasks) return;
    }
    for (std::size_t w = options.workers + 1; w <= worker_ranks; ++w) {
      comm.send(self, w, Tag::kJoinGo, {});
      ++stats.messages;
      released[w] = 1;
      ++stats.workers_joined;
    }
    joiners_parked = false;
  };

  // Declares silent workers dead (a leased worker with no sign of life for
  // a full lease timeout is not coming back; its tasks move to the
  // survivors) and speculatively replicates straggling leases onto idle
  // ranks before they get that far.
  const auto sweep = [&] {
    const auto now = Clock::now();
    for (std::size_t w = 1; w <= worker_ranks; ++w) {
      if (!alive[w]) continue;
      if (!holds_lease(w)) continue;
      const double silent_s =
          std::chrono::duration<double>(now - last_activity[w]).count();
      if (silent_s <= options.lease_timeout_s) continue;
      alive[w] = 0;
      ++stats.workers_died;
      ++stats.heartbeat_misses;
      if (!any_death) {
        any_death = true;
        first_death = now;
      }
      reassigned_death += requeue_worker(w);
      // Recovery window for this death: last sign of life to requeue done.
      trace::record_interval("cluster/recovery", last_activity[w], now);
    }
    if (options.speculate) {
      // A lease older than speculation_factor * lease_timeout_s on a live
      // worker is a straggler: clone its unscored tasks onto an idle rank.
      // Both replicas run to completion and the idempotent scoreboard keeps
      // whichever result lands first, so this is pure tail-latency insurance.
      std::vector<std::uint64_t> stale;
      for (const auto& [id, lease] : leases) {
        const double age_s =
            std::chrono::duration<double>(now - lease.granted).count();
        if (!lease.speculated &&
            age_s > options.speculation_factor * options.lease_timeout_s) {
          stale.push_back(id);
        }
      }
      for (const std::uint64_t id : stale) {
        std::size_t idle = 0;
        for (std::size_t w = 1; w <= worker_ranks; ++w) {
          if (alive[w] && released[w] && w != leases[id].worker &&
              !holds_lease(w)) {
            idle = w;
            break;
          }
        }
        if (idle == 0) break;  // nobody free; later sweeps retry
        leases[id].speculated = true;
        std::vector<core::VoxelTask> copy;
        for (const auto& task : leases[id].outstanding) {
          if (!task_scored(task)) copy.push_back(task);
        }
        if (copy.empty()) continue;
        const std::uint64_t replica_id = next_batch_id++;
        {
          const trace::Span dispatch_span("cluster/dispatch");
          comm.send(self, idle, Tag::kTaskAssign,
                    assign_payload(replica_id, copy));
        }
        stats.tasks_dispatched += copy.size();
        ++stats.batches;
        ++stats.messages;
        ++stats.speculative_dispatches;
        leases[replica_id] = Lease{idle, std::move(copy), now, true};
      }
    }
    bool any_active = false;
    for (std::size_t w = 1; w <= worker_ranks; ++w) {
      if (alive[w] && released[w]) any_active = true;
    }
    if (!any_active && joiners_parked) {
      // Parked joiners are untapped capacity: release them instead of
      // declaring the farm lost.
      release_joiners(true);
      for (std::size_t w = 1; w <= worker_ranks; ++w) {
        if (alive[w] && released[w]) any_active = true;
      }
    }
    FCMA_CHECK(any_active, "every worker died before the analysis completed");
  };

  const auto checkpoint_if_due = [&](bool force) {
    if (options.checkpoint_path.empty()) return;
    if (!force && (options.checkpoint_every == 0 ||
                   results_since_ckpt < options.checkpoint_every)) {
      return;
    }
    write_checkpoint(options.checkpoint_path, board);
    ++stats.checkpoints_written;
    results_since_ckpt = 0;
  };

  // Prime every initial worker with one batch; surplus workers idle until
  // shutdown.  (A promoted standby re-primes the same way: stale in-flight
  // work is absorbed idempotently.)
  for (std::size_t w = 1; w <= options.workers; ++w) (void)dispatch(w);

  // Collect results, answer work requests, and recover losses until every
  // voxel is scored.  The poll timeout bounds how stale the lease sweep can
  // be; messages wake the master immediately.
  const double master_poll = std::min(0.05, options.lease_timeout_s / 4.0);
  Clock::time_point last_ping = Clock::now();
  while (!board.complete()) {
    // Injected master crash: the primary vanishes mid-protocol — no
    // farewell, no final delta — once it has dispatched its quota.
    if (self == 0 && options.faults.kills_master(stats.batches)) {
      return MasterExit::kKilled;
    }
    const std::optional<Message> maybe = comm.recv_for(self, master_poll);
    sweep();
    release_joiners(false);
    if (replicate) {
      // Liveness for the standby while no results flow; results themselves
      // double as liveness (every delta refreshes the standby's timer).
      const auto now = Clock::now();
      if (std::chrono::duration<double>(now - last_ping).count() >=
          master_poll) {
        comm.send(self, ctx.standby_rank, Tag::kMasterPing, {});
        ++stats.messages;
        last_ping = now;
      }
    }
    if (!maybe) continue;
    const Message& m = *maybe;
    if (m.tag == Tag::kShutdown) return MasterExit::kAbdicated;  // teardown
    if (m.tag == Tag::kTakeover) {
      // A promoted standby declared us dead.  Its state is a superset of
      // what we have durably forwarded, the workers now route to it, and
      // anything we still believe is leased will be recomputed from its
      // pending queue — abdicate instead of fighting for the farm.
      return MasterExit::kAbdicated;
    }
    ++stats.messages;
    const std::size_t w = m.source;
    if (w < 1 || w > worker_ranks) {
      // Control-plane traffic from the old master (a not-actually-dead
      // primary still relaying): absorb state deltas, ignore pings.
      if (m.tag == Tag::kStateDelta && m.checksum_ok()) {
        if (const auto delta = decode_result(m.payload)) {
          (void)board.add_idempotent(delta->result);
        }
      }
      continue;
    }
    last_activity[w] = Clock::now();
    if (!alive[w]) {
      // Resurrection: a declared-dead worker spoke again (it was slow, not
      // gone).  Its tasks were already requeued at death, so any lease
      // still recorded for it is stale — purge them (unscored tasks go
      // back to pending, scored ones vanish) before readmitting it, and
      // count the event: every resurrection is a false-positive death.
      alive[w] = 1;
      ++stats.resurrections;
      (void)requeue_worker(w);
    }

    switch (m.tag) {
      case Tag::kHeartbeat:
        break;
      case Tag::kLeave: {
        // Graceful departure: requeue whatever it still holds, but do not
        // count a death — nothing timed out.
        alive[w] = 0;
        ++stats.workers_left;
        (void)requeue_worker(w);
        break;
      }
      case Tag::kWorkRequest: {
        ++stats.work_requests;
        const bool idle_retry =
            !m.payload.empty() && m.payload[0] == kRequestIdleRetry;
        if (idle_retry) {
          // The worker has nothing, yet we may think it does: whatever it
          // still leases was lost in flight (assignment or results) — put
          // it back and re-serve.
          const std::size_t n = requeue_worker(w);
          if (n > 0) ++stats.retries;
        }
        (void)dispatch(w);
        break;
      }
      case Tag::kTaskNack: {
        // The worker received an assignment that failed its checksum; the
        // batch id inside is untrustworthy, so requeue everything it holds
        // and re-dispatch.
        ++stats.corrupt_payloads;
        const std::size_t n = requeue_worker(w);
        if (n > 0) ++stats.retries;
        (void)dispatch(w);
        break;
      }
      case Tag::kTaskResult: {
        if (trace::enabled() && m.ctx.sent_ns != 0) {
          // Result flight time, parented to the worker's task span.
          const trace::ScopedParent parent(m.ctx.parent_span);
          trace::record_interval_ns("cluster/comm/result", m.ctx.sent_ns,
                                    trace::now_ns());
        }
        if (!m.checksum_ok()) {
          // Corrupted result: drop it.  The worker moves on; the lease (or
          // its idle retry) re-runs the task eventually.
          ++stats.corrupt_payloads;
          break;
        }
        const auto packed = decode_result(m.payload);
        FCMA_CHECK(packed.has_value(), "malformed result payload");
        // At-least-once: duplicates (redelivery, recomputation after a
        // false requeue, a speculative replica) are absorbed; disagreement
        // throws.
        const std::size_t newly = board.add_idempotent(packed->result);
        if (replicate && newly > 0) {
          // Replicate before anything else observes the new state: the
          // delta is the result payload verbatim, so the standby's board
          // is bit-identical to ours by construction.
          comm.send(self, ctx.standby_rank, Tag::kStateDelta, m.payload);
          ++stats.messages;
        }
        ++results_since_ckpt;
        const auto lease_it = leases.find(packed->batch_id);
        if (lease_it != leases.end()) {
          auto& out = lease_it->second.outstanding;
          for (auto it = out.begin(); it != out.end(); ++it) {
            if (it->first == packed->result.task.first) {
              out.erase(it);
              break;
            }
          }
          if (out.empty()) leases.erase(lease_it);
        }
        checkpoint_if_due(false);
        break;
      }
      default:
        FCMA_CHECK(false, "master received an unexpected message tag");
    }
  }

  if (any_death) {
    stats.recovery_wall_s =
        std::chrono::duration<double>(Clock::now() - first_death).count();
  }
  checkpoint_if_due(true);
  // Release the farm; a lost shutdown is covered by the guard's close().
  for (std::size_t w = 1; w <= worker_ranks; ++w) {
    comm.send(self, w, Tag::kShutdown, {});
    ++stats.messages;
  }
  if (replicate) {
    comm.send(self, ctx.standby_rank, Tag::kShutdown, {});
    ++stats.messages;
  }
  if (self != 0) {
    // Tell an abdicated (or long-dead) primary the run is over.
    comm.send(self, 0, Tag::kShutdown, {});
    ++stats.messages;
  }
  return MasterExit::kCompleted;
}

/// What the standby thread hands back to the orchestrator.  Only read
/// after the thread is joined.
struct StandbyOutcome {
  std::optional<core::Scoreboard> board;
  DriverStats stats;
  std::size_t reassigned_death = 0;
  bool completed = false;
  std::exception_ptr error;
};

/// Standby loop: mirror the master's scoreboard through the delta stream,
/// and promote to master once the primary has been silent for 1.5 lease
/// timeouts (more conservative than the worker-death threshold — a
/// failover re-primes the whole farm, a worker requeue moves one batch).
void standby_main(const ControlContext& ctx, core::Scoreboard board,
                  StandbyOutcome& out) {
  try {
    trace::set_thread_name("cluster/standby");
    const double poll = std::min(0.05, ctx.options.lease_timeout_s / 4.0);
    const double silence_limit = 1.5 * ctx.options.lease_timeout_s;
    auto last_master = Clock::now();
    for (;;) {
      const std::optional<Message> m =
          ctx.comm.recv_for(ctx.standby_rank, poll);
      if (m) {
        if (m->tag == Tag::kShutdown) return;  // primary completed/teardown
        last_master = Clock::now();
        if (m->tag == Tag::kStateDelta && m->checksum_ok()) {
          if (const auto delta = decode_result(m->payload)) {
            // The delta carries the result payload verbatim, so the mirror
            // is bit-identical; a dropped or corrupted delta only means the
            // promoted plan recomputes that task.
            (void)board.add_idempotent(delta->result);
          }
        }
        // kMasterPing (and any stray traffic) only refreshes liveness.
        continue;
      }
      const double silent_s =
          std::chrono::duration<double>(Clock::now() - last_master).count();
      if (silent_s <= silence_limit) continue;
      // Promote: announce the takeover to every worker (and the old master,
      // in case it is merely slow — it abdicates on receipt), then run the
      // same master loop from the replicated state.
      out.stats.failovers = 1;
      for (std::size_t w = 1; w <= ctx.worker_ranks; ++w) {
        ctx.comm.send(ctx.standby_rank, w, Tag::kTakeover, {});
        ++out.stats.messages;
      }
      ctx.comm.send(ctx.standby_rank, 0, Tag::kTakeover, {});
      ++out.stats.messages;
      // Takeover window: last sign of the primary to promotion complete.
      trace::record_interval("cluster/recovery/takeover", last_master,
                             Clock::now());
      const MasterExit exit =
          run_master_loop(ctx, ctx.standby_rank, /*is_failover=*/true, board,
                          out.stats, out.reassigned_death);
      out.completed = exit == MasterExit::kCompleted;
      out.board.emplace(std::move(board));
      return;
    }
  } catch (...) {
    out.error = std::current_exception();
  }
}

/// Field-wise accumulation of one control-plane incarnation's counters into
/// the run totals (worker_busy_s stays with the orchestrator).
void merge_stats(DriverStats& total, const DriverStats& part) {
  total.tasks_dispatched += part.tasks_dispatched;
  total.batches += part.batches;
  total.work_requests += part.work_requests;
  total.messages += part.messages;
  total.workers_died += part.workers_died;
  total.tasks_requeued += part.tasks_requeued;
  total.retries += part.retries;
  total.heartbeat_misses += part.heartbeat_misses;
  total.corrupt_payloads += part.corrupt_payloads;
  total.checkpoints_written += part.checkpoints_written;
  total.failovers += part.failovers;
  total.speculative_dispatches += part.speculative_dispatches;
  total.resurrections += part.resurrections;
  total.workers_joined += part.workers_joined;
  total.workers_left += part.workers_left;
  total.recovery_wall_s = std::max(total.recovery_wall_s,
                                   part.recovery_wall_s);
}

}  // namespace

core::Scoreboard run_cluster_analysis(core::EpochSource& epochs,
                                      std::size_t total_voxels,
                                      const DriverOptions& options,
                                      DriverStats* stats) {
  FCMA_CHECK(options.workers >= 1, "need at least one worker");
  FCMA_CHECK(options.low_water >= 1, "low_water must be at least 1");
  FCMA_CHECK(total_voxels >= 1, "need at least one voxel");
  FCMA_CHECK(options.lease_timeout_s > 0.0, "lease timeout must be positive");
  FCMA_CHECK(options.worker_poll_s > 0.0, "worker poll must be positive");
  FCMA_CHECK(options.max_task_retries >= 1, "retry limit must be at least 1");
  FCMA_CHECK(options.speculation_factor > 0.0 &&
                 options.speculation_factor <= 1.0,
             "speculation factor must be in (0, 1]");
  const std::size_t worker_ranks = options.workers + options.join_workers;
  options.faults.validate(worker_ranks + 1);
  FCMA_CHECK(options.faults.kill_master_after_batches == 0 || options.standby,
             "a master kill schedule requires a standby rank");
  if (options.leave_rank != 0) {
    FCMA_CHECK(options.leave_rank <= worker_ranks, "leave rank out of range");
  }

  const std::size_t per_task =
      options.voxels_per_task != 0
          ? options.voxels_per_task
          : (total_voxels + options.workers - 1) / options.workers;
  const auto tasks = core::partition_voxels(total_voxels, per_task);
  // Clamp the batch size to the task count (a larger request could never be
  // filled) and the low-water mark to the batch size (a higher mark would
  // only re-request immediately after every refill).
  const std::size_t batch_size = std::min(
      options.batch != 0
          ? options.batch
          : std::max<std::size_t>(1, tasks.size() / (options.workers * 4)),
      tasks.size());
  const std::size_t low_water = std::min(options.low_water, batch_size);

  DriverStats totals;
  totals.worker_busy_s.assign(worker_ranks, 0.0);

  core::Scoreboard board =
      options.resume != nullptr ? *options.resume
                                : core::Scoreboard(total_voxels);
  if (options.resume != nullptr) {
    FCMA_CHECK(board.total_voxels() == total_voxels,
               "resume scoreboard does not match the dataset");
  }
  if (board.complete()) {
    // Nothing to do (fully-scored resume); keep the side effects uniform.
    if (!options.checkpoint_path.empty()) {
      write_checkpoint(options.checkpoint_path, board);
      ++totals.checkpoints_written;
    }
    emit_counters(totals, 0);
    if (stats != nullptr) *stats = totals;
    return board;
  }

  // Rank layout: 0 = primary master, 1..workers = initial workers,
  // workers+1..worker_ranks = parked joiners, last = standby (if enabled).
  const std::size_t standby_rank = options.standby ? worker_ranks + 1 : 0;
  const std::size_t ranks = worker_ranks + 1 + (options.standby ? 1 : 0);
  const std::unique_ptr<Comm> comm_owner =
      options.faults.message_faults()
          ? std::make_unique<FaultyComm>(ranks, options.faults)
          : std::make_unique<Comm>(ranks);
  Comm& comm = *comm_owner;

  const ControlContext ctx{comm,       options,      tasks,
                           batch_size, worker_ranks, standby_rank};

  std::vector<std::thread> workers;
  workers.reserve(worker_ranks);
  std::thread standby_thread;
  const FarmGuard guard{comm, workers, &standby_thread};
  for (std::size_t w = 1; w <= worker_ranks; ++w) {
    workers.emplace_back(worker_main, std::ref(comm), w, std::ref(epochs),
                         std::cref(options), low_water,
                         std::ref(totals.worker_busy_s[w - 1]),
                         /*parked=*/w > options.workers);
  }
  StandbyOutcome standby_out;
  if (options.standby) {
    // The mirror seed is copied here, before the primary loop mutates the
    // board; from then on the delta stream keeps the copies convergent.
    standby_thread = std::thread(
        [&ctx, &standby_out, seed = board]() mutable {
          standby_main(ctx, std::move(seed), standby_out);
        });
  }

  DriverStats primary;
  std::size_t primary_reassigned = 0;
  const MasterExit exit =
      run_master_loop(ctx, 0, /*is_failover=*/false, board, primary,
                      primary_reassigned);

  if (exit != MasterExit::kCompleted) {
    // The primary died (injected crash) or abdicated to a promoted standby:
    // the run now completes — or fails — on the standby's control plane.
    // Do NOT close the communicator here; the standby is still driving the
    // farm over it.
    FCMA_CHECK(options.standby, "master died with no standby to take over");
    if (standby_thread.joinable()) standby_thread.join();
    if (standby_out.error) std::rethrow_exception(standby_out.error);
    FCMA_CHECK(standby_out.completed && standby_out.board.has_value(),
               "standby exited without completing the analysis");
    board = std::move(*standby_out.board);
  }

  // The guard closes the communicator and joins every thread here — the
  // per-rank busy slots are final afterwards, but we still need them below,
  // so close and join explicitly first (the guard's second pass is a no-op).
  comm.close();
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
  if (standby_thread.joinable()) standby_thread.join();

  merge_stats(totals, primary);
  merge_stats(totals, standby_out.stats);
  const std::size_t reassigned =
      primary_reassigned + standby_out.reassigned_death;

  emit_counters(totals, reassigned);
  // Straggler / load-imbalance summary (joined above, so the per-rank busy
  // slots are final).
  trace::gauge_set("cluster/max_worker_busy_s", totals.max_worker_busy_s());
  trace::gauge_set("cluster/mean_worker_busy_s", totals.mean_worker_busy_s());
  trace::gauge_set("cluster/imbalance_ratio", totals.imbalance_ratio());
  if (stats != nullptr) *stats = totals;
  return board;
}

core::Scoreboard run_cluster_analysis(const fmri::NormalizedEpochs& epochs,
                                      std::size_t total_voxels,
                                      const DriverOptions& options,
                                      DriverStats* stats) {
  // Safe to stack-allocate: the farm joins every worker thread before the
  // primary overload returns.
  core::ResidentEpochs source(epochs);
  return run_cluster_analysis(source, total_voxels, options, stats);
}

}  // namespace fcma::cluster
