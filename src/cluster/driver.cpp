#include "cluster/driver.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <string>
#include <thread>

#include "common/trace.hpp"
#include "fcma/task.hpp"

namespace fcma::cluster {

namespace {

/// Worker loop: receive task batches, run the pipeline task by task, return
/// one accuracies message per task, and request the next batch when the
/// local queue reaches the low-water mark — the request overlaps the
/// remaining local compute, so the worker never idles waiting for the
/// master unless the master itself is the bottleneck.  Workers share the
/// read-only normalized epoch data, exactly as the paper's workers share
/// the broadcast dataset.
void worker_main(Comm& comm, std::size_t rank,
                 const fmri::NormalizedEpochs& epochs,
                 const DriverOptions& options, double& busy_s) {
  // Per-worker span family: count/total/min/max of this rank's task
  // latencies, the cluster-level analogue of Table 3's load-balance data.
  const std::string task_label =
      "cluster/worker" + std::to_string(rank) + "/task";
  trace::set_thread_name("cluster/worker" + std::to_string(rank));
  std::deque<core::VoxelTask> local;
  bool requested = false;
  for (;;) {
    if (local.empty()) {
      const Message m = comm.recv(rank);
      if (m.tag == Tag::kShutdown) return;
      FCMA_CHECK(m.tag == Tag::kTaskAssign, "worker expected a task batch");
      const auto batch = decode_vector<core::VoxelTask>(m.payload);
      FCMA_CHECK(!batch.empty(), "empty task batch");
      local.insert(local.end(), batch.begin(), batch.end());
      requested = false;
    }
    if (!requested && local.size() <= options.low_water) {
      comm.send(rank, 0, Tag::kWorkRequest, {});
      requested = true;
    }
    const core::VoxelTask task = local.front();
    local.pop_front();
    const auto task_begin = std::chrono::steady_clock::now();
    const trace::Span task_span(task_label);
    const core::TaskResult result =
        core::run_task(epochs, task, options.pipeline);
    busy_s += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            task_begin)
                  .count();
    // Result message: the task descriptor followed by the accuracies.
    std::vector<double> packed;
    packed.reserve(2 + result.accuracy.size());
    packed.push_back(static_cast<double>(task.first));
    packed.push_back(static_cast<double>(task.count));
    packed.insert(packed.end(), result.accuracy.begin(),
                  result.accuracy.end());
    comm.send(rank, 0, Tag::kTaskResult, encode_vector(packed));
  }
}

}  // namespace

core::Scoreboard run_cluster_analysis(const fmri::NormalizedEpochs& epochs,
                                      std::size_t total_voxels,
                                      const DriverOptions& options,
                                      DriverStats* stats) {
  FCMA_CHECK(options.workers >= 1, "need at least one worker");
  FCMA_CHECK(options.low_water >= 1, "low_water must be at least 1");
  const std::size_t per_task =
      options.voxels_per_task != 0
          ? options.voxels_per_task
          : (total_voxels + options.workers - 1) / options.workers;
  auto tasks = core::partition_voxels(total_voxels, per_task);
  const std::size_t batch_size =
      options.batch != 0
          ? options.batch
          : std::max<std::size_t>(
                1, tasks.size() / (options.workers * 4));

  Comm comm(options.workers + 1);  // rank 0 = master
  core::Scoreboard board(total_voxels);
  DriverStats local_stats;
  // One busy-seconds slot per rank, written only by that rank's thread
  // until the join below publishes them to the master.
  local_stats.worker_busy_s.assign(options.workers, 0.0);
  std::vector<std::thread> workers;
  workers.reserve(options.workers);
  for (std::size_t w = 1; w <= options.workers; ++w) {
    workers.emplace_back(worker_main, std::ref(comm), w, std::cref(epochs),
                         std::cref(options),
                         std::ref(local_stats.worker_busy_s[w - 1]));
  }

  std::size_t next_task = 0;
  std::size_t shutdowns = 0;

  // Sends the next batch to `w`, or a shutdown when no tasks remain.
  auto dispatch = [&](std::size_t w) {
    if (next_task >= tasks.size()) {
      comm.send(0, w, Tag::kShutdown, {});
      ++shutdowns;
      ++local_stats.messages;
      return;
    }
    const std::size_t count =
        std::min(batch_size, tasks.size() - next_task);
    const std::vector<core::VoxelTask> batch(
        tasks.begin() + static_cast<std::ptrdiff_t>(next_task),
        tasks.begin() + static_cast<std::ptrdiff_t>(next_task + count));
    next_task += count;
    comm.send(0, w, Tag::kTaskAssign, encode_vector(batch));
    local_stats.tasks_dispatched += count;
    ++local_stats.batches;
    ++local_stats.messages;
    // Per-batch master queue depth: how many tasks are still undispatched
    // after this assignment (the drain curve of the farm).
    trace::gauge_set("cluster/master/tasks_remaining",
                     static_cast<double>(tasks.size() - next_task));
    trace::gauge_max("cluster/master/max_batch_tasks",
                     static_cast<double>(count));
  };

  // Prime every worker with one batch (or shut it down if none remain).
  for (std::size_t w = 1; w <= options.workers; ++w) dispatch(w);

  // Collect results and answer work requests until every task's result is
  // in and every worker has been released.  A worker's final work request
  // always precedes its final result in its FIFO mailbox, so the request
  // loop cannot stall: either results remain (recv will yield something)
  // or only shutdown replies are owed (already counted via dispatch).
  std::size_t results = 0;
  while (results < tasks.size() || shutdowns < options.workers) {
    const Message m = comm.recv(0);
    ++local_stats.messages;
    if (m.tag == Tag::kWorkRequest) {
      ++local_stats.work_requests;
      dispatch(m.source);
      continue;
    }
    FCMA_CHECK(m.tag == Tag::kTaskResult,
               "master expected a result or work request");
    const auto packed = decode_vector<double>(m.payload);
    FCMA_CHECK(packed.size() >= 2, "malformed result payload");
    core::TaskResult result;
    result.task.first = static_cast<std::uint32_t>(packed[0]);
    result.task.count = static_cast<std::uint32_t>(packed[1]);
    result.accuracy.assign(packed.begin() + 2, packed.end());
    board.add(result);
    ++results;
  }

  for (auto& t : workers) t.join();
  trace::count("cluster/tasks_dispatched",
               static_cast<std::int64_t>(local_stats.tasks_dispatched));
  trace::count("cluster/work_requests",
               static_cast<std::int64_t>(local_stats.work_requests));
  // Straggler / load-imbalance summary (joined above, so the per-rank busy
  // slots are final).
  trace::gauge_set("cluster/max_worker_busy_s",
                   local_stats.max_worker_busy_s());
  trace::gauge_set("cluster/mean_worker_busy_s",
                   local_stats.mean_worker_busy_s());
  trace::gauge_set("cluster/imbalance_ratio", local_stats.imbalance_ratio());
  if (stats != nullptr) *stats = local_stats;
  return board;
}

}  // namespace fcma::cluster
