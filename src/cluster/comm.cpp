#include "cluster/comm.hpp"

#include <chrono>
#include <cstring>
#include <memory>

#include "common/timeline.hpp"
#include "common/trace.hpp"

namespace fcma::cluster {

std::uint64_t Comm::payload_checksum(
    const std::vector<std::uint8_t>& payload) {
  // FNV-1a 64: tiny, dependency-free, and plenty to catch injected bit
  // flips (this is an integrity check against faults, not an adversary).
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::uint8_t b : payload) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

bool Message::checksum_ok() const {
  return checksum == Comm::payload_checksum(payload);
}

Comm::Comm(std::size_t ranks) {
  FCMA_CHECK(ranks >= 1, "communicator needs at least one rank");
  inboxes_.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
  ctx_edge_seq_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      ranks * ranks);
  for (std::size_t i = 0; i < ranks * ranks; ++i) {
    ctx_edge_seq_[i].store(0, std::memory_order_relaxed);
  }
}

Message::SpanContext Comm::make_context(std::size_t from, std::size_t to) {
  Message::SpanContext ctx;
  if (!trace::enabled()) return ctx;
  ctx.trace_id = trace::run_id();
  ctx.parent_span = trace::current_span();
  ctx.edge_seq = ctx_edge_seq_[from * size() + to].fetch_add(
      1, std::memory_order_relaxed);
  ctx.sent_ns = trace::Timeline::global().now_ns();
  return ctx;
}

void Comm::enqueue(std::size_t from, std::size_t to, Tag tag,
                   std::vector<std::uint8_t> payload, std::uint64_t checksum,
                   Message::SpanContext ctx) {
  FCMA_CHECK(from < size() && to < size(), "rank out of range");
  if (closed()) return;  // poisoned: deliveries are dropped
  if (trace::enabled()) {
    trace::count("comm/messages");
    trace::count("comm/bytes", static_cast<std::int64_t>(payload.size()));
  }
  Inbox& inbox = *inboxes_[to];
  {
    const std::lock_guard<std::mutex> lock(inbox.mutex);
    inbox.queue.push_back(
        Message{from, tag, std::move(payload), checksum, ctx});
  }
  inbox.cv.notify_one();
}

void Comm::send(std::size_t from, std::size_t to, Tag tag,
                std::vector<std::uint8_t> payload) {
  const std::uint64_t checksum = payload_checksum(payload);
  enqueue(from, to, tag, std::move(payload), checksum,
          make_context(from, to));
}

Message Comm::recv(std::size_t rank) {
  FCMA_CHECK(rank < size(), "rank out of range");
  Inbox& inbox = *inboxes_[rank];
  std::unique_lock<std::mutex> lock(inbox.mutex);
  inbox.cv.wait(lock, [&] { return !inbox.queue.empty() || closed(); });
  if (inbox.queue.empty()) return closed_message(rank);
  Message m = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return m;
}

Message Comm::recv(std::size_t rank, Tag tag) {
  FCMA_CHECK(rank < size(), "rank out of range");
  Inbox& inbox = *inboxes_[rank];
  std::unique_lock<std::mutex> lock(inbox.mutex);
  for (;;) {
    for (auto it = inbox.queue.begin(); it != inbox.queue.end(); ++it) {
      if (it->tag == tag) {
        Message m = std::move(*it);
        inbox.queue.erase(it);
        return m;
      }
    }
    if (closed()) return closed_message(rank);
    inbox.cv.wait(lock);
  }
}

std::optional<Message> Comm::recv_for(std::size_t rank, double timeout_s) {
  FCMA_CHECK(rank < size(), "rank out of range");
  FCMA_CHECK(timeout_s >= 0.0, "timeout must be non-negative");
  Inbox& inbox = *inboxes_[rank];
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  std::unique_lock<std::mutex> lock(inbox.mutex);
  if (!inbox.cv.wait_until(lock, deadline, [&] {
        return !inbox.queue.empty() || closed();
      })) {
    return std::nullopt;
  }
  if (inbox.queue.empty()) return closed_message(rank);
  Message m = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return m;
}

std::optional<Message> Comm::recv_for(std::size_t rank, Tag tag,
                                      double timeout_s) {
  FCMA_CHECK(rank < size(), "rank out of range");
  FCMA_CHECK(timeout_s >= 0.0, "timeout must be non-negative");
  Inbox& inbox = *inboxes_[rank];
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  std::unique_lock<std::mutex> lock(inbox.mutex);
  for (;;) {
    for (auto it = inbox.queue.begin(); it != inbox.queue.end(); ++it) {
      if (it->tag == tag) {
        Message m = std::move(*it);
        inbox.queue.erase(it);
        return m;
      }
    }
    if (closed()) return closed_message(rank);
    if (inbox.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last sweep under the lock: a message may have landed between
      // the timeout and re-acquisition.
      for (auto it = inbox.queue.begin(); it != inbox.queue.end(); ++it) {
        if (it->tag == tag) {
          Message m = std::move(*it);
          inbox.queue.erase(it);
          return m;
        }
      }
      return closed() ? std::optional<Message>(closed_message(rank))
                      : std::nullopt;
    }
  }
}

bool Comm::has_message(std::size_t rank) {
  FCMA_CHECK(rank < size(), "rank out of range");
  Inbox& inbox = *inboxes_[rank];
  const std::lock_guard<std::mutex> lock(inbox.mutex);
  return !inbox.queue.empty();
}

void Comm::close() {
  closed_.store(true, std::memory_order_release);
  // Take each inbox mutex before notifying: a receiver between its
  // predicate check and its wait must observe the wakeup.
  for (auto& inbox : inboxes_) {
    { const std::lock_guard<std::mutex> lock(inbox->mutex); }
    inbox->cv.notify_all();
  }
}

namespace collective {

namespace {
// Internal tags, outside the application range.
constexpr Tag kBcast = static_cast<Tag>(-1);
constexpr Tag kGather = static_cast<Tag>(-2);
constexpr Tag kBarrierUp = static_cast<Tag>(-3);
constexpr Tag kBarrierDown = static_cast<Tag>(-4);

Message recv_tag(Comm& comm, std::size_t rank, Tag tag) {
  // Tag-selective receive: messages of a *different* collective (e.g. the
  // next round's broadcast overtaking this round's barrier release) stay
  // queued instead of faulting.
  return comm.recv(rank, tag);
}
}  // namespace

std::vector<std::uint8_t> broadcast(Comm& comm, std::size_t rank,
                                    std::size_t root,
                                    std::vector<std::uint8_t> payload) {
  FCMA_CHECK(root < comm.size(), "root out of range");
  // Flat fan-out: the root sends to everyone.  The virtual-time simulator
  // (sim.hpp) models the pipelined tree; the functional layer favors
  // simplicity.
  if (rank == root) {
    for (std::size_t r = 0; r < comm.size(); ++r) {
      if (r != root) comm.send(root, r, kBcast, payload);
    }
    return payload;
  }
  return recv_tag(comm, rank, kBcast).payload;
}

std::vector<std::vector<std::uint8_t>> gather(
    Comm& comm, std::size_t rank, std::size_t root,
    std::vector<std::uint8_t> payload) {
  FCMA_CHECK(root < comm.size(), "root out of range");
  if (rank != root) {
    comm.send(rank, root, kGather, std::move(payload));
    return {};
  }
  std::vector<std::vector<std::uint8_t>> out(comm.size());
  out[root] = std::move(payload);
  for (std::size_t i = 1; i < comm.size(); ++i) {
    Message m = recv_tag(comm, root, kGather);
    FCMA_CHECK(out[m.source].empty() && m.source != root,
               "duplicate gather contribution");
    out[m.source] = std::move(m.payload);
  }
  return out;
}

void barrier(Comm& comm, std::size_t rank) {
  // All-to-root then root-to-all.
  if (rank == 0) {
    for (std::size_t i = 1; i < comm.size(); ++i) {
      (void)recv_tag(comm, 0, kBarrierUp);
    }
    for (std::size_t r = 1; r < comm.size(); ++r) {
      comm.send(0, r, kBarrierDown, {});
    }
  } else {
    comm.send(rank, 0, kBarrierUp, {});
    (void)recv_tag(comm, rank, kBarrierDown);
  }
}

}  // namespace collective

}  // namespace fcma::cluster
