#include "cluster/comm.hpp"

#include <cstring>
#include <memory>

#include "common/trace.hpp"

namespace fcma::cluster {

Comm::Comm(std::size_t ranks) {
  FCMA_CHECK(ranks >= 1, "communicator needs at least one rank");
  inboxes_.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

void Comm::send(std::size_t from, std::size_t to, Tag tag,
                std::vector<std::uint8_t> payload) {
  FCMA_CHECK(from < size() && to < size(), "rank out of range");
  if (trace::enabled()) {
    trace::count("comm/messages");
    trace::count("comm/bytes", static_cast<std::int64_t>(payload.size()));
  }
  Inbox& inbox = *inboxes_[to];
  {
    const std::lock_guard<std::mutex> lock(inbox.mutex);
    inbox.queue.push_back(Message{from, tag, std::move(payload)});
  }
  inbox.cv.notify_one();
}

Message Comm::recv(std::size_t rank) {
  FCMA_CHECK(rank < size(), "rank out of range");
  Inbox& inbox = *inboxes_[rank];
  std::unique_lock<std::mutex> lock(inbox.mutex);
  inbox.cv.wait(lock, [&inbox] { return !inbox.queue.empty(); });
  Message m = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return m;
}

Message Comm::recv(std::size_t rank, Tag tag) {
  FCMA_CHECK(rank < size(), "rank out of range");
  Inbox& inbox = *inboxes_[rank];
  std::unique_lock<std::mutex> lock(inbox.mutex);
  for (;;) {
    for (auto it = inbox.queue.begin(); it != inbox.queue.end(); ++it) {
      if (it->tag == tag) {
        Message m = std::move(*it);
        inbox.queue.erase(it);
        return m;
      }
    }
    inbox.cv.wait(lock);
  }
}

bool Comm::has_message(std::size_t rank) {
  FCMA_CHECK(rank < size(), "rank out of range");
  Inbox& inbox = *inboxes_[rank];
  const std::lock_guard<std::mutex> lock(inbox.mutex);
  return !inbox.queue.empty();
}

namespace collective {

namespace {
// Internal tags, outside the application range.
constexpr Tag kBcast = static_cast<Tag>(-1);
constexpr Tag kGather = static_cast<Tag>(-2);
constexpr Tag kBarrierUp = static_cast<Tag>(-3);
constexpr Tag kBarrierDown = static_cast<Tag>(-4);

Message recv_tag(Comm& comm, std::size_t rank, Tag tag) {
  // Tag-selective receive: messages of a *different* collective (e.g. the
  // next round's broadcast overtaking this round's barrier release) stay
  // queued instead of faulting.
  return comm.recv(rank, tag);
}
}  // namespace

std::vector<std::uint8_t> broadcast(Comm& comm, std::size_t rank,
                                    std::size_t root,
                                    std::vector<std::uint8_t> payload) {
  FCMA_CHECK(root < comm.size(), "root out of range");
  // Flat fan-out: the root sends to everyone.  The virtual-time simulator
  // (sim.hpp) models the pipelined tree; the functional layer favors
  // simplicity.
  if (rank == root) {
    for (std::size_t r = 0; r < comm.size(); ++r) {
      if (r != root) comm.send(root, r, kBcast, payload);
    }
    return payload;
  }
  return recv_tag(comm, rank, kBcast).payload;
}

std::vector<std::vector<std::uint8_t>> gather(
    Comm& comm, std::size_t rank, std::size_t root,
    std::vector<std::uint8_t> payload) {
  FCMA_CHECK(root < comm.size(), "root out of range");
  if (rank != root) {
    comm.send(rank, root, kGather, std::move(payload));
    return {};
  }
  std::vector<std::vector<std::uint8_t>> out(comm.size());
  out[root] = std::move(payload);
  for (std::size_t i = 1; i < comm.size(); ++i) {
    Message m = recv_tag(comm, root, kGather);
    FCMA_CHECK(out[m.source].empty() && m.source != root,
               "duplicate gather contribution");
    out[m.source] = std::move(m.payload);
  }
  return out;
}

void barrier(Comm& comm, std::size_t rank) {
  // All-to-root then root-to-all.
  if (rank == 0) {
    for (std::size_t i = 1; i < comm.size(); ++i) {
      (void)recv_tag(comm, 0, kBarrierUp);
    }
    for (std::size_t r = 1; r < comm.size(); ++r) {
      comm.send(0, r, kBarrierDown, {});
    }
  } else {
    comm.send(rank, 0, kBarrierUp, {});
    (void)recv_tag(comm, rank, kBarrierDown);
  }
}

}  // namespace collective

}  // namespace fcma::cluster
