#include "cluster/sim.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"

namespace fcma::cluster {

namespace {

/// Pipelined-tree broadcast estimate: the payload streams at link bandwidth
/// once, plus a latency term per tree level.
double broadcast_s(const NetworkModel& net, double bytes,
                   std::size_t workers) {
  if (bytes <= 0.0 || workers == 0) return 0.0;
  const double levels = std::ceil(std::log2(static_cast<double>(workers) + 1));
  return bytes / net.bandwidth_bytes_per_s + levels * net.latency_s;
}

}  // namespace

FarmOutcome simulate_task_farm(const FarmConfig& config,
                               std::span<const double> fold_task_seconds,
                               std::size_t folds) {
  FCMA_CHECK(config.workers >= 1, "need at least one worker");
  FCMA_CHECK(!fold_task_seconds.empty(), "need at least one task");
  FCMA_CHECK(config.tasks_per_request >= 1,
             "tasks_per_request must be at least 1");

  FarmOutcome outcome;
  outcome.worker_busy_s.assign(config.workers, 0.0);
  double clock = broadcast_s(config.net, config.broadcast_bytes,
                             config.workers);

  const double assign_s = config.net.transfer_s(config.assign_bytes);
  const double result_s = config.net.transfer_s(config.result_bytes);
  const std::size_t tasks = fold_task_seconds.size();
  const std::size_t batch = config.tasks_per_request;

  for (std::size_t fold = 0; fold < folds; ++fold) {
    // Worker availability: min-heap of (time the worker can accept a new
    // batch, worker id) — it has returned its previous batch's last result
    // by then.  The id attributes busy time for the imbalance report.
    using Slot = std::pair<double, std::size_t>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
    for (std::size_t w = 0; w < config.workers; ++w) free_at.push({clock, w});
    // The master's NIC/control loop is a serial resource.  Sends serialize
    // against each other; result receptions interleave with them, which we
    // account as an aggregate throughput floor below.
    double master_send_free = clock;
    double fold_end = clock;
    std::size_t batches = 0;

    for (std::size_t t = 0; t < tasks; t += batch) {
      const std::size_t count = std::min(batch, tasks - t);
      double batch_s = 0.0;
      for (std::size_t i = t; i < t + count; ++i) {
        FCMA_CHECK(fold_task_seconds[i] >= 0.0,
                   "task time must be non-negative");
        batch_s += fold_task_seconds[i];
      }
      ++batches;
      const auto [worker_free, w] = free_at.top();
      free_at.pop();
      const double send_begin = std::max(master_send_free, worker_free);
      master_send_free = send_begin + assign_s;
      const double compute_done =
          send_begin + assign_s +
          static_cast<double>(count) * config.task_overhead_s + batch_s;
      // Results before the batch's last overlap the remaining compute; the
      // worker is free again once its final result is on the wire.
      const double result_arrives = compute_done + result_s;
      free_at.push({result_arrives, w});
      fold_end = std::max(fold_end, result_arrives);
      outcome.compute_s += batch_s;
      outcome.worker_busy_s[w] += batch_s;
    }
    // Master message-throughput floor: one assignment per batch plus one
    // result per task passes through the master's single link — batching
    // amortizes the assignment half of the old per-task floor.
    const double master_floor =
        clock + static_cast<double>(batches) * assign_s +
        static_cast<double>(tasks) * result_s;
    clock = std::max(fold_end, master_floor) + config.fold_overhead_s;
  }
  outcome.makespan_s = clock;
  return outcome;
}

FarmOutcomeEx simulate_task_farm(const FarmConfig& config,
                                 std::span<const double> fold_task_seconds,
                                 std::size_t folds,
                                 std::span<const WorkerProfile> workers) {
  FCMA_CHECK(!workers.empty(), "need at least one worker");
  FCMA_CHECK(!fold_task_seconds.empty(), "need at least one task");
  for (const WorkerProfile& w : workers) {
    FCMA_CHECK(w.speed > 0.0, "worker speed must be positive");
  }

  FCMA_CHECK(config.master_fails_at >= 0.0,
             "master failure time must be non-negative");
  FCMA_CHECK(config.failover_detect_s > 0.0,
             "failover detection interval must be positive");
  FCMA_CHECK(config.speculate_after_s > 0.0,
             "speculation threshold must be positive");

  FarmOutcomeEx outcome;
  outcome.base.worker_busy_s.assign(workers.size(), 0.0);
  double clock = broadcast_s(config.net, config.broadcast_bytes,
                             workers.size());
  const double assign_s = config.net.transfer_s(config.assign_bytes);
  const double result_s = config.net.transfer_s(config.result_bytes);

  struct Pending {
    double task_s;
    double not_before;
  };
  std::vector<bool> dead(workers.size(), false);
  // Master death is a one-time event across the whole run: once the standby
  // promotes, the control plane is back for good.
  const bool master_mortal = std::isfinite(config.master_fails_at);
  const double failover_resume =
      config.master_fails_at + config.failover_detect_s;
  bool failed_over = false;

  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<Pending> pending;
    pending.reserve(fold_task_seconds.size());
    for (const double t : fold_task_seconds) {
      FCMA_CHECK(t >= 0.0, "task time must be non-negative");
      pending.push_back(Pending{t, clock});
    }
    // (ready_time, worker): min-heap over availability.
    using Slot = std::pair<double, std::size_t>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (!dead[w]) free_at.push({clock, w});
    }
    double master_send_free = clock;
    double fold_end = clock;

    while (!pending.empty()) {
      FCMA_CHECK(!free_at.empty(), "all workers died before completion");
      const auto [worker_ready, w] = free_at.top();
      free_at.pop();
      // Earliest-available pending task.
      std::size_t best = 0;
      for (std::size_t p = 1; p < pending.size(); ++p) {
        if (pending[p].not_before < pending[best].not_before) best = p;
      }
      const Pending task = pending[best];
      pending.erase(pending.begin() + static_cast<long>(best));

      double send_begin =
          std::max({master_send_free, worker_ready, task.not_before});
      if (master_mortal && !failed_over &&
          send_begin >= config.master_fails_at) {
        // The primary died before this dispatch: nothing moves until the
        // standby's silence detector fires and it re-primes the farm.
        failed_over = true;
        ++outcome.failovers;
        outcome.failover_overhead_s += config.failover_detect_s;
        send_begin = std::max(send_begin, failover_resume);
      }
      master_send_free = send_begin + assign_s;
      const double service =
          config.task_overhead_s + task.task_s / workers[w].speed;
      const double compute_done = send_begin + assign_s + service;
      if (compute_done >= workers[w].fails_at && !dead[w]) {
        // The node dies mid-task: the master notices after the detection
        // interval and re-dispatches; the node never returns.
        dead[w] = true;
        ++outcome.workers_lost;
        ++outcome.tasks_reassigned;
        // Overhead of this death: the detection window plus whatever the
        // node had computed of the doomed task (clipped — it may have died
        // before the assignment even landed).
        const double task_begin = send_begin + assign_s;
        outcome.recovery_overhead_s +=
            config.failure_detect_s +
            std::max(0.0, workers[w].fails_at - task_begin);
        pending.push_back(Pending{
            task.task_s, workers[w].fails_at + config.failure_detect_s});
        continue;
      }
      const double result_arrives = compute_done + result_s;
      if (std::isfinite(config.speculate_after_s) &&
          service > config.speculate_after_s && !free_at.empty()) {
        // Straggler: clone the task onto the next free node once the lease
        // has aged speculate_after_s.  Both replicas run to completion (no
        // preemption, exactly like the real driver); the earlier result
        // wins and the loser's service time is pure waste.  Only the
        // winner's compute counts as useful.
        const auto [spec_ready, w2] = free_at.top();
        // The replica send happens in the future (at the trigger), so it
        // must not reserve the master's send pipe now — one extra message
        // among thousands does not move the aggregate floor.
        const double spec_send = std::max(
            spec_ready, send_begin + assign_s + config.speculate_after_s);
        const double spec_service =
            config.task_overhead_s + task.task_s / workers[w2].speed;
        const double spec_done = spec_send + assign_s + spec_service;
        if (spec_done < compute_done) {
          free_at.pop();
          ++outcome.tasks_speculated;
          outcome.speculative_waste_s += service;
          outcome.base.compute_s += task.task_s / workers[w2].speed;
          outcome.base.worker_busy_s[w2] += task.task_s / workers[w2].speed;
          // Both nodes return a result; the original's duplicate is
          // absorbed idempotently and only frees its node.
          free_at.push({result_arrives, w});
          free_at.push({spec_done + result_s, w2});
          fold_end = std::max(fold_end, spec_done + result_s);
          continue;
        }
      }
      if (master_mortal && result_arrives >= config.master_fails_at &&
          result_arrives < failover_resume) {
        // The result was in flight to the dead master: lost.  The promoted
        // standby's pending queue (rebuilt from the replicated scoreboard)
        // re-dispatches the task after the blackout; the node itself is
        // unharmed and frees up normally.
        ++outcome.tasks_reassigned;
        outcome.failover_overhead_s += task.task_s / workers[w].speed;
        pending.push_back(Pending{task.task_s, failover_resume});
        free_at.push({result_arrives, w});
        continue;
      }
      free_at.push({result_arrives, w});
      fold_end = std::max(fold_end, result_arrives);
      outcome.base.compute_s += task.task_s / workers[w].speed;
      outcome.base.worker_busy_s[w] += task.task_s / workers[w].speed;
    }
    const double master_floor =
        clock + static_cast<double>(fold_task_seconds.size()) *
                    (assign_s + result_s);
    clock = std::max(fold_end, master_floor) + config.fold_overhead_s;
  }
  outcome.base.makespan_s = clock;
  return outcome;
}

}  // namespace fcma::cluster
