// Scoreboard checkpoint sidecars (fcma.ckpt.v1).
//
// The master periodically snapshots the scoreboard so a crashed run can be
// resumed with `fcma cluster --resume <ckpt>` instead of recomputing every
// voxel.  The format is a small JSON document (read back through
// common/json) holding the scored voxels as contiguous [first, count] runs
// with their accuracies; doubles are printed with %.17g so a write/load
// round trip is bit-exact — resuming must not perturb the bit-identity
// contract.
#pragma once

#include <string>

#include "fcma/scoreboard.hpp"

namespace fcma::cluster {

/// Writes `board`'s scored voxels to `path` (atomically: tmp + rename, so a
/// crash mid-write never leaves a torn checkpoint).  Throws fcma::Error on
/// I/O failure.
void write_checkpoint(const std::string& path, const core::Scoreboard& board);

/// Loads a checkpoint into a fresh scoreboard.  Throws fcma::Error on I/O
/// failure, malformed JSON, a schema/version mismatch, or a total-voxel
/// count that disagrees with `expected_voxels` (pass 0 to accept the file's
/// own count).
[[nodiscard]] core::Scoreboard load_checkpoint(const std::string& path,
                                               std::size_t expected_voxels);

}  // namespace fcma::cluster
