#include "cluster/cost_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fcma::cluster {

StageWork work_units(const TaskDims& dims) {
  const auto v = static_cast<double>(dims.task_voxels);
  const auto n = static_cast<double>(dims.brain_voxels);
  const auto m = static_cast<double>(dims.epochs);
  const auto s = static_cast<double>(dims.subjects);
  return StageWork{.corr_norm = v * m * n,
                   .kernel = v * m * m * n,
                   .svm = v * s * m * m};
}

CalibratedCost::CalibratedCost(const core::InstrumentedTaskResult& events,
                               const TaskDims& calib_dims)
    : corr_norm_(events.corr_norm),
      kernel_(events.kernel),
      svm_(events.svm),
      calib_work_(work_units(calib_dims)) {
  FCMA_CHECK(calib_work_.corr_norm > 0 && calib_work_.kernel > 0 &&
                 calib_work_.svm > 0,
             "calibration dims must be non-degenerate");
}

memsim::KernelEvents CalibratedCost::scale(const memsim::KernelEvents& e,
                                           double factor) {
  auto s = [factor](std::uint64_t v) {
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(v) * factor));
  };
  return memsim::KernelEvents{.flops = s(e.flops),
                              .vpu_instructions = s(e.vpu_instructions),
                              .vpu_elements = s(e.vpu_elements),
                              .mem_refs = s(e.mem_refs),
                              .l1_misses = s(e.l1_misses),
                              .l2_misses = s(e.l2_misses)};
}

memsim::KernelEvents CalibratedCost::estimate_events(
    const TaskDims& dims) const {
  const StageWork w = work_units(dims);
  memsim::KernelEvents total =
      scale(corr_norm_, w.corr_norm / calib_work_.corr_norm);
  total += scale(kernel_, w.kernel / calib_work_.kernel);
  total += scale(svm_, w.svm / calib_work_.svm);
  return total;
}

double CalibratedCost::task_seconds(const TaskDims& dims,
                                    const archsim::ArchModel& arch,
                                    int svm_threads) const {
  const StageWork w = work_units(dims);
  const double t_corr = arch.modeled_seconds(
      scale(corr_norm_, w.corr_norm / calib_work_.corr_norm));
  const double t_kernel =
      arch.modeled_seconds(scale(kernel_, w.kernel / calib_work_.kernel));
  const double t_svm = arch.modeled_seconds(
      scale(svm_, w.svm / calib_work_.svm),
      svm_threads > 0 ? svm_threads : arch.max_threads());
  return t_corr + t_kernel + t_svm;
}

}  // namespace fcma::cluster
