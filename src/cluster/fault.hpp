// Deterministic fault injection for the in-process cluster.
//
// The paper's 48-node task farm assumes every rank survives the run; the
// hardened driver (driver.hpp) does not, and this module is the harness
// that proves it.  A FaultPlan describes which faults to inject — message
// drop / duplication / payload corruption / delayed (re-ordered) delivery,
// plus a worker-rank crash after N completed tasks — and FaultyComm applies
// the message faults as a decorator over the base communicator's delivery
// path.
//
// Determinism contract.  Every per-message decision is a pure function of
// (seed, from, to, tag, per-edge sequence number): the plan hashes those
// five values into a common/rng stream and draws in a fixed order.  The
// thread-schedule of a run can change *which* messages exist (retries are
// timing-dependent), but the fate of the N-th message on a given edge is
// identical across runs and across replays — the property the seeded
// replay test pins down.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "cluster/comm.hpp"

namespace fcma::cluster {

/// Declarative description of the faults to inject into one run.
struct FaultPlan {
  std::uint64_t seed = 0;  ///< stream selector; same seed = same decisions

  // Per-message fault probabilities in [0, 1], evaluated independently in
  // the order drop -> duplicate -> corrupt -> delay (a dropped message is
  // gone; a duplicated one can also be corrupted or delayed).
  double drop = 0.0;       ///< message vanishes in flight
  double duplicate = 0.0;  ///< message delivered twice (at-least-once test)
  double corrupt = 0.0;    ///< payload bytes flipped after checksumming
  double delay = 0.0;      ///< delivery deferred past later traffic

  /// A delayed message is released after this many subsequent sends to the
  /// same destination rank (re-ordering, not wall-clock sleep).  A deferred
  /// message with no later traffic to flush it behaves like a drop — the
  /// retry protocol must cope either way.
  std::size_t delay_messages = 1;

  /// Worker crash schedule: rank `kill_rank` (0 = disabled; rank 0 is the
  /// master and cannot be killed) exits abruptly — no farewell messages —
  /// when it has completed `kill_after_tasks` tasks.
  std::size_t kill_rank = 0;
  std::size_t kill_after_tasks = 0;

  /// Master crash schedule: the primary master abandons the run — no
  /// farewell messages, state deltas stop — once it has dispatched this
  /// many batches (0 = disabled).  Requires a standby rank to take over;
  /// the driver refuses the plan otherwise.
  std::size_t kill_master_after_batches = 0;

  /// Deterministic straggler: rank `stall_rank` (0 = disabled) sleeps
  /// `stall_s` wall-clock seconds before each task's compute, after its
  /// lease-renewing heartbeat — the rank stays alive but its lease ages,
  /// which is exactly what speculative re-dispatch triggers on.
  std::size_t stall_rank = 0;
  double stall_s = 0.0;

  /// Fate of one message, drawn deterministically.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    bool delay = false;
  };

  /// Pure function of (seed, edge, seq): the fate of the seq-th message
  /// sent from `from` to `to` with `tag`.
  [[nodiscard]] Decision decide(std::size_t from, std::size_t to, Tag tag,
                                std::uint64_t seq) const;

  /// True when `rank` should crash given it has completed `tasks` tasks.
  [[nodiscard]] bool kills(std::size_t rank, std::size_t tasks) const {
    return kill_rank != 0 && rank == kill_rank && tasks >= kill_after_tasks;
  }

  /// True when the primary master should crash given it has dispatched
  /// `batches` batches.
  [[nodiscard]] bool kills_master(std::size_t batches) const {
    return kill_master_after_batches != 0 &&
           batches >= kill_master_after_batches;
  }

  /// True when `rank` is the scheduled straggler.
  [[nodiscard]] bool stalls(std::size_t rank) const {
    return stall_rank != 0 && rank == stall_rank && stall_s > 0.0;
  }

  /// True when any message-level fault can fire (drives FaultyComm use).
  [[nodiscard]] bool message_faults() const {
    return drop > 0.0 || duplicate > 0.0 || corrupt > 0.0 || delay > 0.0;
  }

  /// True when the plan injects anything at all.
  [[nodiscard]] bool active() const {
    return message_faults() || kill_rank != 0 ||
           kill_master_after_batches != 0 || stall_rank != 0;
  }

  /// Throws fcma::Error on out-of-range probabilities or a kill plan aimed
  /// at the master.
  void validate(std::size_t ranks) const;
};

/// Injection tally of one FaultyComm (what actually fired).
struct FaultStats {
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t corrupted = 0;
  std::size_t delayed = 0;
};

/// Communicator with the FaultPlan's message faults applied on the send
/// path.  Receives are untouched: a corrupted payload travels with its
/// original (now stale) checksum, so Message::checksum_ok() fails at the
/// receiver exactly like a real wire error.
class FaultyComm final : public Comm {
 public:
  FaultyComm(std::size_t ranks, FaultPlan plan);

  void send(std::size_t from, std::size_t to, Tag tag,
            std::vector<std::uint8_t> payload) override;

  /// Flushes every still-deferred message, then poisons the communicator.
  /// Without the flush, a delayed message with no later traffic to the same
  /// destination would silently become a drop at teardown.
  void close() override;

  [[nodiscard]] FaultStats stats() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  /// Releases deferred messages to `to` that have matured (enough later
  /// sends happened).  Caller holds mutex_.
  void flush_matured(std::size_t to);

  struct Deferred {
    std::uint64_t release_at;  ///< dest send-count that releases it
    std::size_t from;
    Tag tag;
    std::vector<std::uint8_t> payload;
    std::uint64_t checksum;
    /// Span context stamped at the original send — the flushing thread's
    /// own span would be the wrong causal parent.
    Message::SpanContext ctx;
  };

  FaultPlan plan_;
  mutable std::mutex mutex_;
  // Per-edge sequence numbers feeding the deterministic decisions, and the
  // per-destination deferred queues of delayed messages.
  std::map<std::tuple<std::size_t, std::size_t, std::int32_t>, std::uint64_t>
      edge_seq_;
  std::vector<std::uint64_t> dest_sends_;
  std::vector<std::vector<Deferred>> deferred_;
  FaultStats stats_;
};

}  // namespace fcma::cluster
