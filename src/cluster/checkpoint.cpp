#include "cluster/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace fcma::cluster {

namespace {

constexpr const char* kSchema = "fcma.ckpt.v1";

void append_double(std::string& out, double v) {
  char buf[32];
  // 17 significant digits round-trip any IEEE-754 double through strtod.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

void write_checkpoint(const std::string& path,
                      const core::Scoreboard& board) {
  std::string out;
  out += "{\n  \"schema\": \"";
  out += kSchema;
  out += "\",\n  \"total_voxels\": ";
  out += std::to_string(board.total_voxels());
  out += ",\n  \"scored\": ";
  out += std::to_string(board.scored());
  out += ",\n  \"runs\": [";

  // Contiguous scored runs: [{"first": f, "accuracy": [..]}, ...].
  bool first_run = true;
  std::size_t v = 0;
  const std::size_t n = board.total_voxels();
  while (v < n) {
    if (!board.voxel_scored(static_cast<std::uint32_t>(v))) {
      ++v;
      continue;
    }
    std::size_t end = v;
    while (end < n && board.voxel_scored(static_cast<std::uint32_t>(end))) {
      ++end;
    }
    out += first_run ? "\n" : ",\n";
    first_run = false;
    out += "    {\"first\": ";
    out += std::to_string(v);
    out += ", \"accuracy\": [";
    for (std::size_t i = v; i < end; ++i) {
      if (i != v) out += ", ";
      append_double(out, board.accuracy_of(static_cast<std::uint32_t>(i)));
    }
    out += "]}";
    v = end;
  }
  out += first_run ? "]\n}\n" : "\n  ]\n}\n";

  // tmp + rename: readers never observe a torn file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    FCMA_CHECK(f.good(), "cannot open checkpoint file for writing: " + tmp);
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    f.flush();
    FCMA_CHECK(f.good(), "checkpoint write failed: " + tmp);
  }
  FCMA_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "checkpoint rename failed: " + path);
}

core::Scoreboard load_checkpoint(const std::string& path,
                                 std::size_t expected_voxels) {
  const json::Value doc = json::parse_file(path);
  FCMA_CHECK(doc.at("schema").as_string() == kSchema,
             "not an fcma.ckpt.v1 checkpoint: " + path);
  const auto total =
      static_cast<std::size_t>(doc.at("total_voxels").as_number());
  FCMA_CHECK(total > 0, "checkpoint has no voxels: " + path);
  FCMA_CHECK(expected_voxels == 0 || expected_voxels == total,
             "checkpoint voxel count does not match the dataset");

  core::Scoreboard board(total);
  for (const json::Value& run : doc.at("runs").elements()) {
    core::TaskResult result;
    result.task.first =
        static_cast<std::uint32_t>(run.at("first").as_number());
    const auto& acc = run.at("accuracy").elements();
    result.task.count = static_cast<std::uint32_t>(acc.size());
    result.accuracy.reserve(acc.size());
    for (const json::Value& a : acc) result.accuracy.push_back(a.as_number());
    board.add(result);  // strict: a checkpoint never repeats a voxel
  }
  const auto scored = static_cast<std::size_t>(doc.at("scored").as_number());
  FCMA_CHECK(board.scored() == scored,
             "checkpoint scored-count mismatch: " + path);
  return board;
}

}  // namespace fcma::cluster
