// Streaming closed-loop analyzer (paper Fig 1).
//
// In the deployed system the scanner produces one whole-brain volume per
// TR; FCMA must ingest that stream, accumulate the localizer epochs, run
// voxel selection + classifier training between localizer and feedback
// blocks, and then classify each subsequent epoch within the TR budget.
// StreamingAnalyzer is that state machine:
//
//   push_volume(volume);            // once per TR
//   ... epoch_length pushes ...
//   commit_epoch(label);            // localizer: labeled training epoch
//   ...
//   train(top_k, k_folds);          // between blocks: selection + training
//   ...
//   Feedback f = classify_pending();// feedback: classify the pending epoch
//   commit_epoch(actual_label);     //   (keep it as extra training data)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fmri/dataset.hpp"
#include "linalg/matrix.hpp"
#include "svm/types.hpp"

namespace fcma::threading {
class ThreadPool;
}

namespace fcma::core {

/// Online classification result for one epoch.
struct Feedback {
  std::int32_t label = 0;    ///< predicted condition (0 or 1)
  double decision = 0.0;     ///< signed SVM decision value
};

/// Incremental FCMA engine over a per-TR volume stream.
class StreamingAnalyzer {
 public:
  struct Options {
    std::size_t voxels = 0;         ///< volume size
    std::size_t epoch_length = 0;   ///< TRs per epoch
    std::size_t max_epochs = 1024;  ///< buffer capacity
    std::size_t top_k = 32;         ///< voxels selected by train()
    std::size_t k_folds = 4;        ///< CV folds used during selection
    svm::TrainOptions svm_options;
    /// Scheduler for train(): voxel selection fans out in tasks of
    /// `voxels_per_task` voxels and the CV-estimate folds run concurrently.
    /// Results are merged in task/fold order, so any pool size (including
    /// none) produces bit-identical selections and accuracy estimates.
    threading::ThreadPool* pool = nullptr;
    std::size_t voxels_per_task = 0;  ///< selection task grain (0 = one task)
  };

  explicit StreamingAnalyzer(const Options& options);

  /// Ingests one TR's volume (must have options.voxels elements).
  void push_volume(std::span<const float> volume);

  /// Number of TRs pushed since the last commit/discard.
  [[nodiscard]] std::size_t pending_volumes() const { return pending_; }

  /// Labels the pending epoch (must be exactly epoch_length volumes) and
  /// adds it to the training buffer.
  void commit_epoch(std::int32_t label);

  /// Drops the pending volumes (e.g., motion-corrupted epoch).
  void discard_pending();

  [[nodiscard]] std::size_t epochs_buffered() const {
    return epoch_labels_.size();
  }

  /// Runs FCMA voxel selection over every buffered epoch and trains the
  /// feedback classifier on the selected voxels' correlation patterns.
  /// Requires >= 2 * k_folds buffered epochs with both labels present.
  void train();

  [[nodiscard]] bool trained() const { return model_.has_value(); }

  /// The voxels backing the current classifier (ascending mask indices).
  [[nodiscard]] const std::vector<std::uint32_t>& selected_voxels() const;

  /// Classifies the pending epoch (exactly epoch_length volumes) without
  /// consuming it; requires trained().
  [[nodiscard]] Feedback classify_pending() const;

  /// Cross-validated accuracy estimate recorded by the last train() call.
  [[nodiscard]] double training_cv_accuracy() const {
    return training_cv_accuracy_;
  }

 private:
  [[nodiscard]] fmri::Dataset snapshot_dataset() const;
  void rebuild_classifier(const fmri::Dataset& data);

  Options options_;
  // Committed activity, [voxels x committed TRs], grown epoch by epoch.
  std::vector<float> committed_;      // row-major [voxel][time]
  std::size_t committed_t_ = 0;
  std::vector<std::int32_t> epoch_labels_;
  // Pending (uncommitted) volumes of the current epoch.
  std::vector<float> pending_data_;   // [pending_][voxels], push order
  std::size_t pending_ = 0;

  // Classifier state after train().
  std::vector<std::uint32_t> selected_;
  std::optional<svm::Model> model_;
  linalg::Matrix train_features_;     // [epochs x C(k,2)], normalized
  std::vector<float> feature_mean_;   // frozen training statistics for
  std::vector<float> feature_inv_sd_; //   consistent test-time transforms
  double training_cv_accuracy_ = 0.0;
};

}  // namespace fcma::core
