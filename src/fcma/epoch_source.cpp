#include "fcma/epoch_source.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/trace.hpp"

namespace fcma::core {

EpochSource::Lease ResidentEpochs::acquire(std::size_t first,
                                           std::size_t last) {
  FCMA_CHECK(first <= last && last <= epochs_->per_epoch.size(),
             "epoch range out of bounds");
  Lease lease;
  lease.first_ = first;
  lease.panels_.reserve(last - first);
  for (std::size_t m = first; m < last; ++m) {
    lease.panels_.push_back(&epochs_->per_epoch[m]);
  }
  return lease;
}

StreamedEpochs::StreamedEpochs(const fmri::DatasetView& view,
                               std::vector<std::size_t> epoch_indices,
                               Options options)
    : view_(&view),
      indices_(std::move(epoch_indices)),
      voxels_(view.voxels()),
      options_(options) {
  meta_.reserve(indices_.size());
  for (const std::size_t idx : indices_) {
    FCMA_CHECK(idx < view.epochs().size(), "epoch index out of range");
    meta_.push_back(view.epochs()[idx]);
  }
  FCMA_CHECK(!meta_.empty(), "streamed epoch source needs epochs");
  slots_ = std::vector<Slot>(meta_.size());
  // Seed the full io metric set so trace consumers see zeros, not holes.
  trace::count("io/shard_loads", 0);
  trace::count("io/bytes_mapped", 0);
  trace::count("io/prefetch_hits", 0);
  trace::gauge_set("io/stall_s", 0.0);
}

StreamedEpochs::StreamedEpochs(const fmri::DatasetView& view, Options options)
    : StreamedEpochs(view,
                     [&view] {
                       std::vector<std::size_t> all(view.epochs().size());
                       for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
                       return all;
                     }(),
                     options) {}

StreamedEpochs::~StreamedEpochs() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  // Prefetch tasks capture `this`; wait for every submitted one to retire.
  cv_.wait(lock, [this] { return inflight_ == 0; });
}

std::size_t StreamedEpochs::resident_panels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.state == Slot::State::kReady) ++n;
  }
  return n;
}

std::size_t StreamedEpochs::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t StreamedEpochs::estimated_panel_bytes(std::size_t m) const {
  return voxels_ * meta_[m].length * sizeof(float);
}

void StreamedEpochs::evict_locked() {
  if (options_.budget_bytes == 0) return;
  while (bytes_ > options_.budget_bytes) {
    std::size_t victim = slots_.size();
    for (std::size_t m = 0; m < slots_.size(); ++m) {
      const Slot& s = slots_[m];
      if (s.state != Slot::State::kReady || s.refs != 0) continue;
      if (victim == slots_.size() || s.last_use < slots_[victim].last_use) {
        victim = m;
      }
    }
    if (victim == slots_.size()) return;  // everything left is pinned
    Slot& s = slots_[victim];
    bytes_ -= s.panel.rows() * s.panel.ld() * sizeof(float);
    s.panel = linalg::Matrix();
    s.state = Slot::State::kEmpty;
    s.prefetched = false;
  }
}

void StreamedEpochs::fill_slot(std::size_t m) {
  const fmri::Epoch& e = meta_[m];
  linalg::Matrix panel(voxels_, e.length);
  // The backing shard (if any) stays mapped only for this call: the
  // Panel's keepalive drops when epoch_panel's result goes out of scope.
  fmri::normalize_epoch_panel(view_->epoch_panel(indices_[m]), panel.view());
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[m];
  bytes_ += panel.rows() * panel.ld() * sizeof(float);
  s.panel = std::move(panel);
  s.state = Slot::State::kReady;
  evict_locked();
  cv_.notify_all();
}

EpochSource::Lease StreamedEpochs::acquire(std::size_t first,
                                           std::size_t last) {
  FCMA_CHECK(first <= last && last <= meta_.size(),
             "epoch range out of bounds");
  std::vector<std::size_t> to_load;
  std::vector<std::size_t> to_wait;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++tick_;
    for (std::size_t m = first; m < last; ++m) {
      Slot& s = slots_[m];
      ++s.refs;
      s.last_use = tick_;
      switch (s.state) {
        case Slot::State::kEmpty:
          // Claim and load synchronously.  Never wait for a queued-but-
          // unstarted prefetch task: with help-first scheduler joins a
          // worker blocking on queued work can deadlock.
          s.state = Slot::State::kLoading;
          to_load.push_back(m);
          break;
        case Slot::State::kLoading:
          if (s.prefetched) {
            s.prefetched = false;
            trace::count("io/prefetch_hits");
          }
          to_wait.push_back(m);
          break;
        case Slot::State::kReady:
          if (s.prefetched) {
            s.prefetched = false;
            trace::count("io/prefetch_hits");
          }
          break;
      }
    }
  }
  for (const std::size_t m : to_load) fill_slot(m);
  if (!to_wait.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    for (const std::size_t m : to_wait) {
      cv_.wait(lock,
               [&] { return slots_[m].state == Slot::State::kReady; });
    }
    const std::chrono::duration<double> waited =
        std::chrono::steady_clock::now() - t0;
    stall_s_ += waited.count();
    trace::gauge_set("io/stall_s", stall_s_);
  }

  Lease lease;
  lease.first_ = first;
  lease.panels_.reserve(last - first);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t m = first; m < last; ++m) {
      lease.panels_.push_back(&slots_[m].panel);
    }
  }
  lease.release_ = [this, first, last] { release_range(first, last); };
  return lease;
}

void StreamedEpochs::release_range(std::size_t first, std::size_t last) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t m = first; m < last; ++m) {
    FCMA_CHECK(slots_[m].refs > 0, "epoch lease release underflow");
    --slots_[m].refs;
  }
  evict_locked();
}

void StreamedEpochs::prefetch(std::size_t first, std::size_t last) {
  if (options_.pool == nullptr) return;
  last = std::min(last, meta_.size());
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  for (std::size_t m = first; m < last; ++m) {
    Slot& s = slots_[m];
    if (s.state != Slot::State::kEmpty || s.prefetch_queued) continue;
    // Do not prefetch past the budget: a panel nothing has pinned yet
    // would only evict panels compute is about to use.
    if (options_.budget_bytes != 0 &&
        bytes_ + estimated_panel_bytes(m) > options_.budget_bytes) {
      break;
    }
    s.prefetch_queued = true;
    ++inflight_;
    options_.pool->submit([this, m] { prefetch_task(m); });
  }
}

void StreamedEpochs::prefetch_task(std::size_t m) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& s = slots_[m];
    s.prefetch_queued = false;
    if (shutdown_ || s.state != Slot::State::kEmpty) {
      if (--inflight_ == 0) cv_.notify_all();
      return;
    }
    s.state = Slot::State::kLoading;
    s.prefetched = true;
  }
  fill_slot(m);
  std::lock_guard<std::mutex> lock(mu_);
  if (--inflight_ == 0) cv_.notify_all();
}

}  // namespace fcma::core
