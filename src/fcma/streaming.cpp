#include "fcma/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "fcma/offline.hpp"
#include "fcma/online.hpp"
#include "fcma/pipeline.hpp"
#include "fcma/scoreboard.hpp"
#include "fcma/task.hpp"
#include "linalg/opt.hpp"
#include "stats/stats.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::core {

StreamingAnalyzer::StreamingAnalyzer(const Options& options)
    : options_(options) {
  FCMA_CHECK(options.voxels >= 8, "need at least 8 voxels");
  FCMA_CHECK(options.epoch_length >= 3, "epochs need >= 3 TRs");
  FCMA_CHECK(options.top_k >= 2, "need at least 2 selected voxels");
  pending_data_.reserve(options.epoch_length * options.voxels);
}

void StreamingAnalyzer::push_volume(std::span<const float> volume) {
  FCMA_CHECK(volume.size() == options_.voxels, "volume size mismatch");
  FCMA_CHECK(pending_ < options_.epoch_length,
             "epoch already complete; commit or discard first");
  pending_data_.insert(pending_data_.end(), volume.begin(), volume.end());
  ++pending_;
}

void StreamingAnalyzer::commit_epoch(std::int32_t label) {
  FCMA_CHECK(label == 0 || label == 1, "label must be 0 or 1");
  FCMA_CHECK(pending_ == options_.epoch_length,
             "epoch incomplete: push epoch_length volumes first");
  FCMA_CHECK(epoch_labels_.size() < options_.max_epochs,
             "epoch buffer full");
  // Transpose the push-order pending block into [voxel][time] and append.
  committed_.resize(committed_.size() +
                    options_.voxels * options_.epoch_length);
  const std::size_t new_t = committed_t_ + options_.epoch_length;
  // committed_ is stored epoch-major: epoch e occupies the slab
  // [e * voxels * epoch_length, ...), row-major [voxel][tr-within-epoch].
  float* slab = committed_.data() +
                epoch_labels_.size() * options_.voxels *
                    options_.epoch_length;
  for (std::size_t t = 0; t < options_.epoch_length; ++t) {
    const float* vol = pending_data_.data() + t * options_.voxels;
    for (std::size_t v = 0; v < options_.voxels; ++v) {
      slab[v * options_.epoch_length + t] = vol[v];
    }
  }
  committed_t_ = new_t;
  epoch_labels_.push_back(label);
  discard_pending();
}

void StreamingAnalyzer::discard_pending() {
  pending_data_.clear();
  pending_ = 0;
}

fmri::Dataset StreamingAnalyzer::snapshot_dataset() const {
  const std::size_t m = epoch_labels_.size();
  const std::size_t len = options_.epoch_length;
  linalg::Matrix data(options_.voxels, m * len);
  std::vector<fmri::Epoch> epochs;
  epochs.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    const float* slab = committed_.data() + e * options_.voxels * len;
    for (std::size_t v = 0; v < options_.voxels; ++v) {
      std::copy(slab + v * len, slab + (v + 1) * len,
                data.row(v) + e * len);
    }
    epochs.push_back(fmri::Epoch{
        .subject = 0,
        .label = epoch_labels_[e],
        .start = static_cast<std::uint32_t>(e * len),
        .length = static_cast<std::uint32_t>(len)});
  }
  return fmri::Dataset("stream", std::move(data), std::move(epochs), 1);
}

void StreamingAnalyzer::train() {
  const std::size_t m = epoch_labels_.size();
  FCMA_CHECK(m >= 2 * options_.k_folds,
             "not enough epochs buffered to cross-validate");
  const std::size_t ones = static_cast<std::size_t>(
      std::count(epoch_labels_.begin(), epoch_labels_.end(), 1));
  FCMA_CHECK(ones > 0 && ones < m, "both conditions must be present");

  const fmri::Dataset data = snapshot_dataset();
  // The buffered localizer is inherently resident, but it flows through the
  // same DatasetView seam (and the same normalization kernel) as every
  // other consumer of the data plane.
  const fmri::InMemoryView view(data);
  const fmri::NormalizedEpochs epochs = fmri::normalize_epochs(view);
  const auto folds = kfold_groups(m, options_.k_folds);

  // Voxel selection over the buffered localizer, fanned out through the
  // scheduler when one is configured.  Task results feed the scoreboard in
  // task order and each voxel owns its slot, so the selection is identical
  // at any pool size.
  PipelineConfig pipeline = PipelineConfig::optimized();
  pipeline.svm_options = options_.svm_options;
  pipeline.cv_folds = &folds;
  pipeline.pool = options_.pool;
  const std::size_t grain = options_.voxels_per_task != 0
                                ? options_.voxels_per_task
                                : options_.voxels;
  const auto tasks = partition_voxels(options_.voxels, grain);
  Scoreboard board(options_.voxels);
  for (const TaskResult& result : run_tasks(epochs, tasks, pipeline)) {
    board.add(result);
  }
  selected_ = board.top_voxels(options_.top_k);

  // Feedback classifier on the selected voxels' correlation features, with
  // the normalization statistics frozen from the training data so
  // classify_pending() transforms incoming epochs consistently.
  train_features_ = selected_correlation_features(epochs, selected_);
  const std::size_t dim = train_features_.cols();
  feature_mean_.assign(dim, 0.0f);
  feature_inv_sd_.assign(dim, 0.0f);
  for (std::size_t e = 0; e < m; ++e) {
    float* row = train_features_.row(e);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = stats::fisher_z(row[d]);
      feature_mean_[d] += row[d];
    }
  }
  for (std::size_t d = 0; d < dim; ++d) {
    feature_mean_[d] /= static_cast<float>(m);
  }
  for (std::size_t d = 0; d < dim; ++d) {
    double var = 0.0;
    for (std::size_t e = 0; e < m; ++e) {
      const double diff = train_features_(e, d) - feature_mean_[d];
      var += diff * diff;
    }
    var /= static_cast<double>(m);
    feature_inv_sd_[d] =
        var > 0.0 ? static_cast<float>(1.0 / std::sqrt(var)) : 0.0f;
  }
  for (std::size_t e = 0; e < m; ++e) {
    float* row = train_features_.row(e);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = (row[d] - feature_mean_[d]) * feature_inv_sd_[d];
    }
  }

  // CV accuracy estimate on the frozen features, then the final model on
  // every epoch.  Folds run through the scheduler when available; each fold
  // writes its own slot and the sum folds them in fold order, matching the
  // serial loop's floating-point order exactly.
  std::vector<double> fold_correct(folds.size(), 0.0);
  std::vector<std::size_t> fold_total(folds.size(), 0);
  auto eval_fold = [&](std::size_t f) {
    const auto& test = folds[f];
    std::vector<bool> in_test(m, false);
    for (const std::size_t t : test) in_test[t] = true;
    std::vector<std::size_t> train_idx;
    for (std::size_t t = 0; t < m; ++t) {
      if (!in_test[t]) train_idx.push_back(t);
    }
    fold_correct[f] = train_and_test_classifier(train_features_,
                                                data.epochs(), train_idx,
                                                test, options_.svm_options) *
                      static_cast<double>(test.size());
    fold_total[f] = test.size();
  };
  if (options_.pool != nullptr) {
    threading::parallel_for_each(*options_.pool, 0, folds.size(), eval_fold);
  } else {
    for (std::size_t f = 0; f < folds.size(); ++f) eval_fold(f);
  }
  double correct = 0.0;
  std::size_t total = 0;
  for (std::size_t f = 0; f < folds.size(); ++f) {
    correct += fold_correct[f];
    total += fold_total[f];
  }
  training_cv_accuracy_ = total == 0 ? 0.0 : correct / total;

  linalg::Matrix gram(m, m);
  linalg::opt::syrk(train_features_.view(), gram.view());
  std::vector<std::int8_t> labels(m);
  std::vector<std::size_t> all(m);
  std::iota(all.begin(), all.end(), 0);
  for (std::size_t e = 0; e < m; ++e) {
    labels[e] = epoch_labels_[e] == 1 ? std::int8_t{1} : std::int8_t{-1};
  }
  model_ = svm::phisvm_train(gram.view(), labels, all,
                             options_.svm_options);
}

const std::vector<std::uint32_t>& StreamingAnalyzer::selected_voxels()
    const {
  FCMA_CHECK(trained(), "call train() first");
  return selected_;
}

Feedback StreamingAnalyzer::classify_pending() const {
  FCMA_CHECK(trained(), "call train() first");
  FCMA_CHECK(pending_ == options_.epoch_length,
             "epoch incomplete: push epoch_length volumes first");
  const std::size_t k = selected_.size();
  const std::size_t len = options_.epoch_length;

  // Extract + eq.2-normalize the selected voxels' pending time series.
  linalg::Matrix act(k, len);
  for (std::size_t s = 0; s < k; ++s) {
    for (std::size_t t = 0; t < len; ++t) {
      act(s, t) = pending_data_[t * options_.voxels + selected_[s]];
    }
    stats::normalize_epoch({act.row(s), len});
  }

  // Feature row: fisher(r) standardized by the frozen training stats.
  std::vector<float> feature(k * (k - 1) / 2);
  std::size_t d = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      float r = 0.0f;
      for (std::size_t t = 0; t < len; ++t) r += act(i, t) * act(j, t);
      feature[d] = (stats::fisher_z(r) - feature_mean_[d]) *
                   feature_inv_sd_[d];
      ++d;
    }
  }

  // Decision value against the trained model.
  double decision = -model_->rho;
  for (std::size_t e = 0; e < train_features_.rows(); ++e) {
    double dot = 0.0;
    const float* row = train_features_.row(e);
    for (std::size_t x = 0; x < feature.size(); ++x) {
      dot += static_cast<double>(feature[x]) * row[x];
    }
    decision += model_->alpha_y[e] * dot;
  }
  return Feedback{decision >= 0.0 ? 1 : 0, decision};
}

}  // namespace fcma::core
