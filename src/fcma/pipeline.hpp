// The full three-stage FCMA worker pipeline (paper Fig 3).
//
// run_task executes stages 1-3 for one voxel-range task against
// pre-normalized epoch data, returning one cross-validation accuracy per
// assigned voxel.  PipelineConfig selects the baseline or optimized
// implementation of every stage; run_task_instrumented additionally collects
// the per-stage event counts that drive the Table 1/7 and Fig 9/10/11
// reproductions.
#pragma once

#include <span>

#include "fcma/corr_norm.hpp"
#include "fcma/svm_stage.hpp"

namespace fcma::core {

/// Stage-implementation selection for one pipeline run.
struct PipelineConfig {
  Impl impl = Impl::kOptimized;
  /// Stage 1/2 fusion; only meaningful for the optimized implementation
  /// (the baseline is inherently separated).
  NormMode norm_mode = NormMode::kMerged;
  svm::SolverKind solver = svm::SolverKind::kPhiSvm;
  svm::TrainOptions svm_options;
  /// Optional pool for voxel-parallel stage 3 and panel-parallel kernels.
  threading::ThreadPool* pool = nullptr;
  /// Optional custom cross-validation folds (test-index groups).  When
  /// null, leave-one-subject-out folds are derived from the epoch metadata.
  const std::vector<std::vector<std::size_t>>* cv_folds = nullptr;

  /// The paper's baseline configuration: generic kernels + LibSVM.
  [[nodiscard]] static PipelineConfig baseline() {
    PipelineConfig c;
    c.impl = Impl::kBaseline;
    c.norm_mode = NormMode::kSeparated;
    c.solver = svm::SolverKind::kLibSvm;
    return c;
  }

  /// The paper's fully optimized configuration.
  [[nodiscard]] static PipelineConfig optimized() { return {}; }
};

/// Outcome of one task: per-voxel accuracies (index i corresponds to voxel
/// task.first + i).
struct TaskResult {
  VoxelTask task;
  std::vector<double> accuracy;
  long svm_iterations = 0;
};

/// Runs the three-stage pipeline for `task`.
///
/// The EpochSource form is primary: stages lease epoch panels in the
/// granularity they need (per epoch, or per subject run when stage 1/2 are
/// merged), so a streamed source bounds panel residency instead of holding
/// the whole dataset.  The NormalizedEpochs overloads wrap ResidentEpochs
/// and are bit-identical.  Sources must be thread-safe when a pool is
/// configured (both backends are).
[[nodiscard]] TaskResult run_task(EpochSource& epochs, const VoxelTask& task,
                                  const PipelineConfig& config);
[[nodiscard]] TaskResult run_task(const fmri::NormalizedEpochs& epochs,
                                  const VoxelTask& task,
                                  const PipelineConfig& config);

/// Runs every task and returns the results in task order.
///
/// With a pool configured and more than one task, tasks are distributed
/// across the workers (the paper's task-level parallelism); each task's
/// inner stages then run inline on their worker.  With one task — or no
/// pool — tasks run on the calling thread, which keeps the pool available
/// to the *inner* stage parallelism instead.  Either way the result vector
/// is ordered by task index, so downstream consumers see an identical
/// sequence regardless of thread count.
[[nodiscard]] std::vector<TaskResult> run_tasks(
    EpochSource& epochs, std::span<const VoxelTask> tasks,
    const PipelineConfig& config);
[[nodiscard]] std::vector<TaskResult> run_tasks(
    const fmri::NormalizedEpochs& epochs, std::span<const VoxelTask> tasks,
    const PipelineConfig& config);

/// Per-stage event breakdown of an instrumented task run.
struct InstrumentedTaskResult {
  TaskResult result;
  memsim::KernelEvents corr_norm;  ///< stages 1+2 (fused or not)
  memsim::KernelEvents kernel;     ///< per-voxel syrk precompute
  memsim::KernelEvents svm;        ///< SMO cross-validation
  [[nodiscard]] memsim::KernelEvents total() const {
    memsim::KernelEvents t = corr_norm;
    t += kernel;
    t += svm;
    return t;
  }
};

/// Instrumented (serial, event-counted) pipeline run.
[[nodiscard]] InstrumentedTaskResult run_task_instrumented(
    const fmri::NormalizedEpochs& epochs, const VoxelTask& task,
    const PipelineConfig& config, memsim::Instrument& ins,
    unsigned model_lanes = 16);

/// Memory-bounded variant of run_task — the paper's §4.4 workflow.
///
/// run_task keeps the whole task's correlation buffer (task.count x M x N
/// floats) alive through stage 3; at the paper's dimensions that caps a
/// coprocessor task at ~120 voxels.  run_task_grouped instead processes the
/// task in groups of `group_voxels`: stages 1+2 run for one group, each
/// group voxel's M x N block is immediately reduced to its M x M kernel
/// matrix, and the correlation buffer is reused for the next group.  Only
/// the small kernel matrices accumulate, so a task of 240+ voxels fits the
/// modeled 6GB — the enabler for full thread occupancy during SVM
/// cross-validation.  Peak correlation memory: group_voxels * M * N floats.
[[nodiscard]] TaskResult run_task_grouped(EpochSource& epochs,
                                          const VoxelTask& task,
                                          const PipelineConfig& config,
                                          std::size_t group_voxels);
[[nodiscard]] TaskResult run_task_grouped(const fmri::NormalizedEpochs& epochs,
                                          const VoxelTask& task,
                                          const PipelineConfig& config,
                                          std::size_t group_voxels);

}  // namespace fcma::core
