// Pipeline stages 1 & 2: correlation computation + within-subject
// normalization (paper §4.2, §4.3).
//
// Input: the eq.2-normalized per-epoch activity (fmri::NormalizedEpochs).
// Output: the task's correlation data in the voxel-grouped layout of Fig 4 —
// a matrix of V*M rows by N columns where row v*M + m holds the (Fisher- and
// z-transformed) correlations of assigned voxel v with the whole brain in
// epoch m.
//
// Three implementations:
//   baseline           — per-epoch generic gemm into the interleaved layout
//                        (the cblas_sgemm ldc trick), then a separate
//                        normalization pass (the paper's baseline).
//   optimized          — panel-blocked tall-skinny gemm; NormMode selects
//                        whether normalization runs as a separate pass
//                        (Separated) or fused into the gemm panels while
//                        they are cache-resident (Merged, idea #2).
//   *_instrumented     — event-counted twins.
#pragma once

#include "fmri/dataset.hpp"
#include "fcma/epoch_source.hpp"
#include "fcma/task.hpp"
#include "linalg/matrix.hpp"
#include "memsim/instrument.hpp"

namespace fcma::core {

/// Whether stage 2 is fused into stage 1 (paper Table 7's ablation).
enum class NormMode { kSeparated, kMerged };

/// Correlation output buffer for one task: rows = task.count * epochs,
/// row v_local * epochs + m = voxel (task.first + v_local)'s correlations in
/// epoch m against all N voxels.
[[nodiscard]] linalg::Matrix make_corr_buffer(const VoxelTask& task,
                                              std::size_t epochs,
                                              std::size_t brain_voxels);

/// Baseline stages 1+2 (always separated — the baseline has no fusion).
/// The EpochSource form is primary: panels are leased one epoch (baseline /
/// separated) or one subject run (merged) at a time with the next range
/// prefetched, so a streamed source never needs the full panel stack
/// resident.  The NormalizedEpochs overloads wrap ResidentEpochs and stay
/// bit-identical.
void baseline_correlate_normalize(EpochSource& epochs, const VoxelTask& task,
                                  linalg::MatrixView out);
void baseline_correlate_normalize(const fmri::NormalizedEpochs& epochs,
                                  const VoxelTask& task, linalg::MatrixView out);

/// Optimized stages 1+2.
void optimized_correlate_normalize(EpochSource& epochs, const VoxelTask& task,
                                   linalg::MatrixView out, NormMode mode);
void optimized_correlate_normalize(const fmri::NormalizedEpochs& epochs,
                                   const VoxelTask& task,
                                   linalg::MatrixView out, NormMode mode);

/// Instrumented twins; `model_lanes` selects the modeled VPU width.
void baseline_correlate_normalize_instrumented(
    const fmri::NormalizedEpochs& epochs, const VoxelTask& task,
    linalg::MatrixView out, memsim::Instrument& ins,
    unsigned model_lanes = 16);

void optimized_correlate_normalize_instrumented(
    const fmri::NormalizedEpochs& epochs, const VoxelTask& task,
    linalg::MatrixView out, NormMode mode, memsim::Instrument& ins,
    unsigned model_lanes = 16);

/// Applies stage 2 alone (Fisher + within-subject z-score) to a correlation
/// buffer laid out as above.  Exposed for the Table 7 ablation and tests.
void normalize_corr_buffer(const std::vector<fmri::Epoch>& meta,
                           const VoxelTask& task, linalg::MatrixView buf);

}  // namespace fcma::core
