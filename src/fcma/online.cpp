#include "fcma/online.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/trace.hpp"
#include "fcma/memory_model.hpp"
#include "fcma/offline.hpp"
#include "fcma/scoreboard.hpp"
#include "linalg/opt.hpp"
#include "stats/normalization.hpp"

namespace fcma::core {

std::vector<std::vector<std::size_t>> kfold_groups(std::size_t n,
                                                   std::size_t k) {
  FCMA_CHECK(k >= 2 && k <= n, "bad fold count");
  std::vector<std::vector<std::size_t>> folds(k);
  for (std::size_t i = 0; i < n; ++i) folds[i % k].push_back(i);
  return folds;
}

OnlineResult run_online_selection(const fmri::DatasetView& dataset,
                                  std::int32_t subject,
                                  const OnlineOptions& options) {
  FCMA_CHECK(subject >= 0 && subject < dataset.subjects(),
             "subject out of range");
  const trace::Span span("online_selection");
  const std::vector<std::size_t> subject_epochs =
      dataset.epochs_of_subject(subject);
  const bool streamed = options.memory_budget_bytes > 0;
  const std::size_t v_total = dataset.voxels();

  // One source serves selection and the final classifier.  The budget plan
  // sees only this subject's epochs — the whole working set of the online
  // protocol.
  std::optional<BudgetPlan> plan;
  std::optional<fmri::NormalizedEpochs> resident;
  std::optional<StreamedEpochs> source_streamed;
  EpochSource* source = nullptr;
  std::optional<ResidentEpochs> source_resident;
  if (streamed) {
    plan = plan_residency(
        subject_epochs.size(), subject_epochs.size(), v_total,
        static_cast<std::size_t>(dataset.epochs().front().length),
        options.memory_budget_bytes);
    source_streamed.emplace(
        dataset, subject_epochs,
        StreamedEpochs::Options{plan->panel_cache_bytes,
                                options.pipeline.pool});
    source = &*source_streamed;
  } else {
    resident = fmri::normalize_epochs(dataset, subject_epochs);
    source_resident.emplace(*resident);
    source = &*source_resident;
  }
  const auto folds = kfold_groups(source->meta().size(), options.k_folds);

  PipelineConfig pipeline = options.pipeline;
  pipeline.cv_folds = &folds;

  std::size_t per_task = options.voxels_per_task;
  if (per_task == 0) {
    if (streamed) {
      const std::size_t lanes =
          pipeline.pool != nullptr ? pipeline.pool->size() : 1;
      per_task = std::max<std::size_t>(1, plan->group_voxels / lanes);
    } else {
      per_task = v_total;
    }
  }
  const std::vector<VoxelTask> tasks = partition_voxels(v_total, per_task);
  Scoreboard board(v_total);
  for (const TaskResult& tr : run_tasks(*source, tasks, pipeline)) {
    board.add(tr);
  }

  OnlineResult result;
  result.selected = board.top_voxels(options.top_k);
  double acc_sum = 0.0;
  for (const std::uint32_t v : result.selected) {
    acc_sum += board.accuracy_of(v);
  }
  result.mean_selected_cv_accuracy =
      result.selected.empty()
          ? 0.0
          : acc_sum / static_cast<double>(result.selected.size());

  // Final classifier estimate: k-fold CV over the selected voxels'
  // correlation features within this subject.
  linalg::Matrix features =
      selected_correlation_features(*source, result.selected);
  stats::fisher_zscore_block(features.row(0), features.rows(),
                             features.cols(), features.ld());
  std::size_t correct = 0;
  std::size_t total = 0;
  for (const auto& test : folds) {
    std::vector<bool> in_test(features.rows(), false);
    for (const std::size_t t : test) in_test[t] = true;
    std::vector<std::size_t> train_idx;
    for (std::size_t t = 0; t < features.rows(); ++t) {
      if (!in_test[t]) train_idx.push_back(t);
    }
    const double acc = train_and_test_classifier(
        features, source->meta(), train_idx, test, pipeline.svm_options);
    correct += static_cast<std::size_t>(
        std::llround(acc * static_cast<double>(test.size())));
    total += test.size();
  }
  result.classifier_cv_accuracy =
      total == 0 ? 0.0
                 : static_cast<double>(correct) / static_cast<double>(total);
  return result;
}

OnlineResult run_online_selection(const fmri::Dataset& dataset,
                                  std::int32_t subject,
                                  const OnlineOptions& options) {
  return run_online_selection(fmri::InMemoryView(dataset), subject, options);
}

}  // namespace fcma::core
