// Emulated online (closed-loop) analysis: single-subject voxel selection
// (paper §5.2.2).
//
// In the closed-loop scenario the classifier must be built from the data of
// the subject currently in the scanner: voxel selection runs FCMA on that
// subject's epochs alone (k-fold CV over epochs instead of the nested
// cross-subject protocol), and the selected voxels' correlation patterns
// train the real-time feedback classifier.
#pragma once

#include <cstdint>
#include <vector>

#include "fcma/pipeline.hpp"
#include "fmri/dataset.hpp"
#include "fmri/dataset_view.hpp"
#include "svm/types.hpp"

namespace fcma::core {

/// Options of the online protocol.
struct OnlineOptions {
  std::size_t top_k = 64;          ///< voxels selected for the classifier
  std::size_t k_folds = 4;         ///< CV folds over the subject's epochs
  std::size_t voxels_per_task = 0; ///< 0 = one task for all voxels
  /// Peak-memory budget in bytes; 0 = resident.  Same semantics as
  /// OfflineOptions::memory_budget_bytes, scaled to one subject's epochs.
  std::size_t memory_budget_bytes = 0;
  PipelineConfig pipeline;
};

/// Outcome of an online selection run.
struct OnlineResult {
  std::vector<std::uint32_t> selected;  ///< classifier voxels, ascending
  double mean_selected_cv_accuracy = 0.0;
  /// k-fold CV accuracy of the final classifier on the selected voxels'
  /// correlation features — the estimate available before feedback starts.
  double classifier_cv_accuracy = 0.0;
};

/// Runs online voxel selection + classifier construction for one subject.
/// The DatasetView form is primary (panels stream under a budget when one
/// is set); the Dataset overload wraps a borrowing InMemoryView.
[[nodiscard]] OnlineResult run_online_selection(
    const fmri::DatasetView& dataset, std::int32_t subject,
    const OnlineOptions& options);
[[nodiscard]] OnlineResult run_online_selection(const fmri::Dataset& dataset,
                                                std::int32_t subject,
                                                const OnlineOptions& options);

/// Builds interleaved k-fold test groups over `n` samples (fold f gets
/// samples f, f+k, f+2k, ... so both labels appear in every fold for
/// alternating-label datasets).
[[nodiscard]] std::vector<std::vector<std::size_t>> kfold_groups(
    std::size_t n, std::size_t k);

}  // namespace fcma::core
