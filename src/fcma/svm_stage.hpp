// Pipeline stage 3: per-voxel kernel precomputation + SVM cross-validation
// (paper §3.2 baseline, §4.4 optimized).
//
// For every assigned voxel, its M x N correlation block is reduced to an
// M x M linear-kernel matrix (a syrk), and a leave-one-subject-out
// cross-validation assigns the voxel an accuracy score.  The baseline uses
// the generic syrk and the LibSVM solver; the optimized path uses the
// panel-blocked syrk and PhiSVM.
#pragma once

#include <vector>

#include "fcma/task.hpp"
#include "fmri/dataset.hpp"
#include "linalg/matrix.hpp"
#include "linalg/tune.hpp"
#include "memsim/instrument.hpp"
#include "svm/cross_validation.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::core {

/// Which kernel implementations stage 3 uses.
enum class Impl { kBaseline, kOptimized };

/// Per-voxel outcome of stage 3.
struct SvmStageResult {
  std::vector<double> accuracy;  ///< CV accuracy per task voxel
  long svm_iterations = 0;       ///< total SMO iterations across voxels
};

/// Computes voxel `v_local`'s kernel matrix from the task's correlation
/// buffer into `kernel` (must be M x M).  `geo` pins the syrk geometry;
/// null consults the autotuner per call (svm_stage resolves the plan once
/// per stage and passes it through so the tuner lock is off the voxel loop).
void compute_voxel_kernel(linalg::ConstMatrixView corr, std::size_t epochs,
                          std::size_t v_local, Impl impl,
                          linalg::MatrixView kernel,
                          const linalg::tune::SyrkGeometry* geo = nullptr);

/// Runs stage 3 for every voxel of the task.  `corr` is the stage-1/2
/// output buffer (task.count * M rows by N); `folds` are the CV test groups
/// (leave-one-subject-out for multi-subject analysis, k-fold over epochs for
/// online single-subject selection).  If `pool` is non-null, voxels are
/// cross-validated in parallel, one problem per thread (the paper's scheme).
[[nodiscard]] SvmStageResult svm_stage(
    linalg::ConstMatrixView corr, const std::vector<fmri::Epoch>& meta,
    const std::vector<std::vector<std::size_t>>& folds, const VoxelTask& task,
    Impl impl, svm::SolverKind solver, const svm::TrainOptions& options,
    threading::ThreadPool* pool = nullptr);

/// Instrumented twin (serial; events accumulate into `ins`).
[[nodiscard]] SvmStageResult svm_stage_instrumented(
    linalg::ConstMatrixView corr, const std::vector<fmri::Epoch>& meta,
    const std::vector<std::vector<std::size_t>>& folds, const VoxelTask& task,
    Impl impl, svm::SolverKind solver, const svm::TrainOptions& options,
    memsim::Instrument& ins, unsigned model_lanes = 16,
    memsim::KernelEvents* kernel_events = nullptr);

/// Builds the +1/-1 label vector and LOSO folds from epoch metadata.
[[nodiscard]] std::vector<std::int8_t> epoch_labels(
    const std::vector<fmri::Epoch>& meta);
[[nodiscard]] std::vector<std::vector<std::size_t>> epoch_loso_folds(
    const std::vector<fmri::Epoch>& meta);

}  // namespace fcma::core
