// Voxel-range tasks: the unit of cluster-level parallelism.
//
// The master partitions the full correlation matrix along its rows (paper
// §3.1.1); a task is "run the three-stage pipeline for voxels
// [first, first+count)".
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace fcma::core {

/// A contiguous range of assigned voxels.
struct VoxelTask {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

/// Splits `total_voxels` into tasks of at most `voxels_per_task`.
[[nodiscard]] inline std::vector<VoxelTask> partition_voxels(
    std::size_t total_voxels, std::size_t voxels_per_task) {
  FCMA_CHECK(voxels_per_task > 0, "voxels_per_task must be positive");
  // VoxelTask carries 32-bit offsets (they cross the wire in the cluster
  // protocol); a larger brain would silently truncate in the casts below.
  FCMA_CHECK(total_voxels <= UINT32_MAX,
             "partition_voxels: total_voxels exceeds the 32-bit task range");
  std::vector<VoxelTask> tasks;
  tasks.reserve((total_voxels + voxels_per_task - 1) / voxels_per_task);
  for (std::size_t v = 0; v < total_voxels; v += voxels_per_task) {
    tasks.push_back(VoxelTask{
        static_cast<std::uint32_t>(v),
        static_cast<std::uint32_t>(
            std::min(voxels_per_task, total_voxels - v))});
  }
  return tasks;
}

}  // namespace fcma::core
