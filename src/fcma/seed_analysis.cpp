#include "fcma/seed_analysis.hpp"

#include <algorithm>

#include "stats/stats.hpp"

namespace fcma::core {

SeedContrast seed_contrast_map(const fmri::NormalizedEpochs& epochs,
                               std::uint32_t seed) {
  FCMA_CHECK(!epochs.per_epoch.empty(), "no epochs");
  const std::size_t n = epochs.per_epoch.front().rows();
  FCMA_CHECK(seed < n, "seed voxel out of range");
  const std::size_t m = epochs.per_epoch.size();

  // Seed correlation per (epoch, voxel): the eq. 2 reduction makes this a
  // matrix-vector product per epoch.
  std::vector<std::vector<float>> z(m, std::vector<float>(n));
  for (std::size_t e = 0; e < m; ++e) {
    const linalg::Matrix& act = epochs.per_epoch[e];
    const float* sv = act.row(seed);
    for (std::size_t v = 0; v < n; ++v) {
      const float* row = act.row(v);
      float r = 0.0f;
      for (std::size_t t = 0; t < act.cols(); ++t) r += sv[t] * row[t];
      z[e][v] = stats::fisher_z(r);
    }
  }

  // Pair label-1 and label-0 epochs within subject in temporal order; the
  // generator's alternating design gives exact pairs, and real designs are
  // analyzed the same way after balancing.
  std::vector<std::size_t> ones;
  std::vector<std::size_t> zeros;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::int32_t current = epochs.meta.empty() ? 0 : epochs.meta[0].subject;
  auto flush = [&]() {
    const std::size_t k = std::min(ones.size(), zeros.size());
    for (std::size_t i = 0; i < k; ++i) pairs.push_back({ones[i], zeros[i]});
    ones.clear();
    zeros.clear();
  };
  for (std::size_t e = 0; e < m; ++e) {
    if (epochs.meta[e].subject != current) {
      flush();
      current = epochs.meta[e].subject;
    }
    (epochs.meta[e].label == 1 ? ones : zeros).push_back(e);
  }
  flush();
  FCMA_CHECK(pairs.size() >= 2, "need at least two condition pairs");

  SeedContrast out;
  out.seed = seed;
  out.delta_z.resize(n);
  out.t.resize(n);
  out.pvalue.resize(n);
  std::vector<double> a(pairs.size());
  std::vector<double> b(pairs.size());
  for (std::size_t v = 0; v < n; ++v) {
    if (v == seed) {
      out.delta_z[v] = 0.0;
      out.t[v] = 0.0;
      out.pvalue[v] = 1.0;
      continue;
    }
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      a[p] = z[pairs[p].first][v];
      b[p] = z[pairs[p].second][v];
    }
    const stats::TTestResult tt = stats::paired_t_test(a, b);
    double mean_diff = 0.0;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      mean_diff += a[p] - b[p];
    }
    out.delta_z[v] = mean_diff / static_cast<double>(pairs.size());
    out.t[v] = tt.t;
    out.pvalue[v] = tt.pvalue;
  }
  return out;
}

std::vector<std::uint32_t> seed_significant_voxels(
    const SeedContrast& contrast, double q) {
  const auto pass = stats::benjamini_hochberg(contrast.pvalue, q);
  std::vector<std::uint32_t> out;
  for (std::size_t v = 0; v < pass.size(); ++v) {
    if (pass[v]) out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

}  // namespace fcma::core
