#include "fcma/corr_norm.hpp"

#include <algorithm>
#include <vector>

#include "common/aligned.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "common/workspace.hpp"
#include "linalg/baseline.hpp"
#include "linalg/opt.hpp"
#include "stats/normalization.hpp"

namespace fcma::core {

namespace {

/// Contiguous run of epochs belonging to one subject: [first, last).
struct SubjectRun {
  std::size_t first;
  std::size_t last;
};

// Datasets store epochs subject-major, so each subject is one run; this
// helper also guards that assumption.
std::vector<SubjectRun> subject_runs(const std::vector<fmri::Epoch>& meta) {
  std::vector<SubjectRun> runs;
  std::size_t start = 0;
  for (std::size_t m = 1; m <= meta.size(); ++m) {
    if (m == meta.size() || meta[m].subject != meta[start].subject) {
      runs.push_back(SubjectRun{start, m});
      start = m;
    }
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    FCMA_CHECK(meta[runs[r].first].subject != meta[runs[r - 1].first].subject,
               "epochs must be grouped by subject");
  }
  return runs;
}

// View of epoch m's interleaved destination: rows = task voxels, ld jumps
// one whole voxel group (the cblas ldc trick of §3.2).
linalg::MatrixView epoch_slice(linalg::MatrixView out, const VoxelTask& task,
                               std::size_t epochs, std::size_t m) {
  return linalg::MatrixView{out.data + m * out.ld, task.count, out.cols,
                            epochs * out.ld};
}

// View of the task's rows of epoch e's normalized activity.
linalg::ConstMatrixView task_rows(const linalg::Matrix& epoch,
                                  const VoxelTask& task) {
  return linalg::ConstMatrixView{epoch.row(task.first), task.count,
                                 epoch.cols(), epoch.ld()};
}

}  // namespace

linalg::Matrix make_corr_buffer(const VoxelTask& task, std::size_t epochs,
                                std::size_t brain_voxels) {
  return linalg::Matrix(static_cast<std::size_t>(task.count) * epochs,
                        brain_voxels);
}

void normalize_corr_buffer(const std::vector<fmri::Epoch>& meta,
                           const VoxelTask& task, linalg::MatrixView buf) {
  const trace::Span span("normalization");
  const std::size_t m_total = meta.size();
  const auto runs = subject_runs(meta);
  for (std::size_t v = 0; v < task.count; ++v) {
    for (const SubjectRun& run : runs) {
      float* block = buf.row(v * m_total + run.first);
      stats::fisher_zscore_block(block, run.last - run.first, buf.cols,
                                 buf.ld);
    }
  }
}

void baseline_correlate_normalize(EpochSource& epochs, const VoxelTask& task,
                                  linalg::MatrixView out) {
  const std::size_t m_total = epochs.meta().size();
  FCMA_CHECK(out.rows == task.count * m_total, "bad corr buffer shape");
  {
    const trace::Span span("correlation");
    for (std::size_t m = 0; m < m_total; ++m) {
      epochs.prefetch(m + 1, m + 2);
      const auto lease = epochs.acquire(m, m + 1);
      const linalg::Matrix& act = lease.epoch(m);
      linalg::baseline::gemm_nt(task_rows(act, task), act.view(),
                                epoch_slice(out, task, m_total, m));
    }
  }
  normalize_corr_buffer(epochs.meta(), task, out);
}

void baseline_correlate_normalize(const fmri::NormalizedEpochs& epochs,
                                  const VoxelTask& task,
                                  linalg::MatrixView out) {
  ResidentEpochs source(epochs);
  baseline_correlate_normalize(source, task, out);
}

void optimized_correlate_normalize(EpochSource& epochs, const VoxelTask& task,
                                   linalg::MatrixView out, NormMode mode) {
  const std::size_t m_total = epochs.meta().size();
  FCMA_CHECK(out.rows == task.count * m_total, "bad corr buffer shape");
  if (mode == NormMode::kSeparated) {
    {
      const trace::Span span("correlation");
      for (std::size_t m = 0; m < m_total; ++m) {
        epochs.prefetch(m + 1, m + 2);
        const auto lease = epochs.acquire(m, m + 1);
        const linalg::Matrix& act = lease.epoch(m);
        linalg::opt::gemm_nt(task_rows(act, task), act.view(),
                             epoch_slice(out, task, m_total, m));
      }
    }
    normalize_corr_buffer(epochs.meta(), task, out);
    return;
  }

  // Merged (idea #2): per subject and per column panel, compute that
  // subject's E epoch rows for each voxel and normalize them immediately,
  // while the freshly-written panel is still cache resident.  The two
  // logical stages interleave per panel, so their trace spans are split by
  // accumulating the normalization slices and attributing the rest of the
  // elapsed time to correlation.  The fused sweep needs one subject's
  // panels live at a time — that run is the streaming granularity, and the
  // next subject's panels prefetch while this one computes.
  const bool tracing = trace::enabled();
  const WallTimer fused_timer;
  double norm_s = 0.0;
  const std::size_t n = out.cols;
  const auto runs = subject_runs(epochs.meta());
  std::size_t max_e = 0;
  for (const SubjectRun& r : runs) max_e = std::max(max_e, r.last - r.first);
  const auto t_len = static_cast<std::size_t>(epochs.meta().front().length);
  // One tuning decision covers the whole fused sweep: classify by the
  // per-row-panel shape (task.count rows, n output columns, t_len depth).
  const linalg::tune::GemmGeometry geo =
      linalg::tune::gemm_plan(task.count, n, t_len);
  auto bt = Workspace::local().acquire(max_e * t_len * geo.panel_cols);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const SubjectRun& run = runs[r];
    if (r + 1 < runs.size()) {
      epochs.prefetch(runs[r + 1].first, runs[r + 1].last);
    }
    const auto lease = epochs.acquire(run.first, run.last);
    const std::size_t e_count = run.last - run.first;
    for (std::size_t j0 = 0; j0 < n; j0 += geo.panel_cols) {
      const std::size_t j1 = std::min(n, j0 + geo.panel_cols);
      const std::size_t width = j1 - j0;
      for (std::size_t e = 0; e < e_count; ++e) {
        linalg::opt::pack_bt_panel(lease.epoch(run.first + e).view(), j0, j1,
                                   bt.data() + e * t_len * width);
      }
      for (std::size_t v = 0; v < task.count; ++v) {
        for (std::size_t e = 0; e < e_count; ++e) {
          const linalg::Matrix& act = lease.epoch(run.first + e);
          linalg::opt::gemm_row_panel(
              act.row(task.first + v), act.cols(),
              bt.data() + e * t_len * width, width,
              out.row(v * m_total + run.first + e) + j0, geo);
        }
        if (tracing) {
          const WallTimer norm_timer;
          stats::fisher_zscore_block(out.row(v * m_total + run.first) + j0,
                                     e_count, width, out.ld);
          norm_s += norm_timer.seconds();
        } else {
          stats::fisher_zscore_block(out.row(v * m_total + run.first) + j0,
                                     e_count, width, out.ld);
        }
      }
    }
  }
  if (tracing) {
    trace::record_span("normalization", norm_s);
    trace::record_span("correlation", fused_timer.seconds() - norm_s);
  }
}

void optimized_correlate_normalize(const fmri::NormalizedEpochs& epochs,
                                   const VoxelTask& task,
                                   linalg::MatrixView out, NormMode mode) {
  ResidentEpochs source(epochs);
  optimized_correlate_normalize(source, task, out, mode);
}

void baseline_correlate_normalize_instrumented(
    const fmri::NormalizedEpochs& epochs, const VoxelTask& task,
    linalg::MatrixView out, memsim::Instrument& ins, unsigned model_lanes) {
  const std::size_t m_total = epochs.per_epoch.size();
  FCMA_CHECK(out.rows == task.count * m_total, "bad corr buffer shape");
  // One span for the fused stage 1+2; wall time here includes the cache
  // simulator, so use the sidecar for call counts and relative shares.
  const trace::Span span("corr_norm");
  for (std::size_t m = 0; m < m_total; ++m) {
    linalg::baseline::gemm_nt_instrumented(
        task_rows(epochs.per_epoch[m], task), epochs.per_epoch[m].view(),
        epoch_slice(out, task, m_total, m), ins, model_lanes);
  }
  const auto runs = subject_runs(epochs.meta);
  for (std::size_t v = 0; v < task.count; ++v) {
    for (const SubjectRun& run : runs) {
      stats::fisher_zscore_block_instrumented(
          out.row(v * m_total + run.first), run.last - run.first, out.cols,
          out.ld, ins, model_lanes);
    }
  }
}

void optimized_correlate_normalize_instrumented(
    const fmri::NormalizedEpochs& epochs, const VoxelTask& task,
    linalg::MatrixView out, NormMode mode, memsim::Instrument& ins,
    unsigned model_lanes) {
  const std::size_t m_total = epochs.per_epoch.size();
  FCMA_CHECK(out.rows == task.count * m_total, "bad corr buffer shape");
  const trace::Span span("corr_norm");
  if (mode == NormMode::kSeparated) {
    for (std::size_t m = 0; m < m_total; ++m) {
      linalg::opt::gemm_nt_instrumented(
          task_rows(epochs.per_epoch[m], task), epochs.per_epoch[m].view(),
          epoch_slice(out, task, m_total, m), ins, model_lanes);
    }
    const auto runs = subject_runs(epochs.meta);
    for (std::size_t v = 0; v < task.count; ++v) {
      for (const SubjectRun& run : runs) {
        stats::fisher_zscore_block_instrumented(
            out.row(v * m_total + run.first), run.last - run.first, out.cols,
            out.ld, ins, model_lanes);
      }
    }
    return;
  }

  const std::size_t n = out.cols;
  const auto runs = subject_runs(epochs.meta);
  std::size_t max_e = 0;
  for (const SubjectRun& r : runs) max_e = std::max(max_e, r.last - r.first);
  const std::size_t t_len = epochs.per_epoch.front().cols();
  AlignedBuffer<float> bt(max_e * t_len * linalg::opt::kGemmPanelCols);
  for (const SubjectRun& run : runs) {
    const std::size_t e_count = run.last - run.first;
    for (std::size_t j0 = 0; j0 < n; j0 += linalg::opt::kGemmPanelCols) {
      const std::size_t j1 = std::min(n, j0 + linalg::opt::kGemmPanelCols);
      const std::size_t width = j1 - j0;
      for (std::size_t e = 0; e < e_count; ++e) {
        linalg::opt::pack_bt_panel_instrumented(
            epochs.per_epoch[run.first + e].view(), j0, j1,
            bt.data() + e * t_len * width, ins, model_lanes);
      }
      for (std::size_t v = 0; v < task.count; ++v) {
        for (std::size_t e = 0; e < e_count; ++e) {
          const linalg::Matrix& act = epochs.per_epoch[run.first + e];
          linalg::opt::gemm_row_panel_instrumented(
              act.row(task.first + v), act.cols(),
              bt.data() + e * t_len * width, width,
              out.row(v * m_total + run.first + e) + j0, ins, model_lanes);
        }
        stats::fisher_zscore_block_instrumented(
            out.row(v * m_total + run.first) + j0, e_count, width, out.ld,
            ins, model_lanes);
      }
    }
  }
}

}  // namespace fcma::core
