// Seed-based functional connectivity — the classical comparator.
//
// Before FCMA, task-related connectivity was studied by picking a *seed*
// voxel (or averaging a seed ROI), correlating it with every other voxel
// per epoch, and t-testing the per-voxel correlation difference between
// conditions.  The paper's motivation (§1, citing [27]) is exactly that
// this approach is biased: it only finds interactions involving the chosen
// seed.  This module implements the classical method so the claim is
// testable in-repo: with a seed inside a planted ROI, the seed map lights
// up its partners; with a seed elsewhere, the planted structure is
// invisible — while FCMA finds it regardless (see test_seed_analysis.cpp
// and bench_seed_vs_fcma).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fmri/dataset.hpp"
#include "stats/significance.hpp"

namespace fcma::core {

/// Per-voxel outcome of a seed contrast analysis.
struct SeedContrast {
  std::uint32_t seed = 0;
  /// Fisher-z seed correlation averaged over label-1 minus label-0 epochs,
  /// one value per brain voxel (the seed's own entry is 0).
  std::vector<double> delta_z;
  /// Paired-t statistic and two-sided p-value of that contrast per voxel.
  std::vector<double> t;
  std::vector<double> pvalue;
};

/// Runs the classical seed analysis: correlate `seed` with every voxel in
/// every epoch (eq. 2 reduction), Fisher-transform, pair label-1 vs label-0
/// epochs within subject in temporal order, and t-test the differences.
[[nodiscard]] SeedContrast seed_contrast_map(
    const fmri::NormalizedEpochs& epochs, std::uint32_t seed);

/// Voxels whose seed-contrast survives Benjamini-Hochberg FDR at level `q`
/// (ascending indices).
[[nodiscard]] std::vector<std::uint32_t> seed_significant_voxels(
    const SeedContrast& contrast, double q);

}  // namespace fcma::core
