#include "fcma/memory_model.hpp"

#include <algorithm>

namespace fcma::core {

std::size_t corr_bytes_per_voxel(std::size_t epochs,
                                 std::size_t brain_voxels) {
  return epochs * brain_voxels * sizeof(float);
}

std::size_t kernel_bytes_per_voxel(std::size_t epochs) {
  return epochs * epochs * sizeof(float);
}

std::size_t baseline_max_voxels(std::size_t epochs, std::size_t brain_voxels,
                                std::size_t available_bytes) {
  const std::size_t per_voxel = corr_bytes_per_voxel(epochs, brain_voxels);
  return per_voxel == 0 ? 0 : available_bytes / per_voxel;
}

std::size_t optimized_max_voxels(std::size_t epochs, std::size_t brain_voxels,
                                 std::size_t available_bytes,
                                 std::size_t group) {
  const std::size_t in_flight =
      group * corr_bytes_per_voxel(epochs, brain_voxels);
  if (in_flight >= available_bytes) return 0;
  const std::size_t per_voxel = kernel_bytes_per_voxel(epochs);
  return per_voxel == 0 ? 0 : (available_bytes - in_flight) / per_voxel;
}

}  // namespace fcma::core
