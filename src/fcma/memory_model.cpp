#include "fcma/memory_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fcma::core {

std::size_t corr_bytes_per_voxel(std::size_t epochs,
                                 std::size_t brain_voxels) {
  return epochs * brain_voxels * sizeof(float);
}

std::size_t kernel_bytes_per_voxel(std::size_t epochs) {
  return epochs * epochs * sizeof(float);
}

std::size_t baseline_max_voxels(std::size_t epochs, std::size_t brain_voxels,
                                std::size_t available_bytes) {
  const std::size_t per_voxel = corr_bytes_per_voxel(epochs, brain_voxels);
  return per_voxel == 0 ? 0 : available_bytes / per_voxel;
}

std::size_t optimized_max_voxels(std::size_t epochs, std::size_t brain_voxels,
                                 std::size_t available_bytes,
                                 std::size_t group) {
  const std::size_t in_flight =
      group * corr_bytes_per_voxel(epochs, brain_voxels);
  if (in_flight >= available_bytes) return 0;
  const std::size_t per_voxel = kernel_bytes_per_voxel(epochs);
  return per_voxel == 0 ? 0 : (available_bytes - in_flight) / per_voxel;
}

BudgetPlan plan_residency(std::size_t total_epochs,
                          std::size_t epochs_per_subject,
                          std::size_t brain_voxels, std::size_t epoch_length,
                          std::size_t budget_bytes) {
  FCMA_CHECK(total_epochs > 0 && epochs_per_subject > 0 && brain_voxels > 0 &&
                 epoch_length > 0,
             "residency plan needs a non-empty dataset shape");
  FCMA_CHECK(budget_bytes > 0, "memory budget must be positive");

  const std::size_t panel_bytes = brain_voxels * epoch_length * sizeof(float);
  const std::size_t all_panels = total_epochs * panel_bytes;
  // Merged stage 1/2 pins one whole subject run; +1 panel of lookahead.
  const std::size_t min_cache = (epochs_per_subject + 1) * panel_bytes;
  const std::size_t corr_voxel = corr_bytes_per_voxel(total_epochs,
                                                      brain_voxels);
  const std::size_t kernel_voxel = kernel_bytes_per_voxel(total_epochs);

  // Plan against 5/8 of the budget; see the header for what the remaining
  // 3/8 of headroom absorbs.
  const std::size_t usable = budget_bytes * 5 / 8;
  FCMA_CHECK(min_cache + corr_voxel + kernel_voxel <= usable,
             "memory budget too small for one subject's panels plus a "
             "one-voxel working set");

  BudgetPlan plan;
  plan.budget_bytes = budget_bytes;
  // Half the usable budget for panels (never more than the whole dataset's
  // panels, never less than the merged sweep's floor) ...
  plan.panel_cache_bytes =
      std::clamp(usable / 2, min_cache, std::max(min_cache, all_panels));
  // ... and the remainder split evenly between in-flight correlation
  // blocks (group size) and per-task kernel accumulation (task grain).
  const std::size_t rest = usable - plan.panel_cache_bytes;
  plan.group_voxels = std::max<std::size_t>(1, rest / 2 / corr_voxel);
  plan.voxels_per_task =
      std::max(plan.group_voxels,
               std::max<std::size_t>(1, rest / 2 / kernel_voxel));
  return plan;
}

}  // namespace fcma::core
