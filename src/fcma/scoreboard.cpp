#include "fcma/scoreboard.hpp"

#include <algorithm>
#include <unordered_set>

namespace fcma::core {

Scoreboard::Scoreboard(std::size_t total_voxels)
    : scores_(total_voxels, 0.0), seen_(total_voxels, false) {}

void Scoreboard::add(const TaskResult& result) {
  FCMA_CHECK(result.task.first + result.task.count <= scores_.size(),
             "task exceeds scoreboard range");
  FCMA_CHECK(result.accuracy.size() == result.task.count,
             "task result size mismatch");
  for (std::size_t i = 0; i < result.task.count; ++i) {
    const std::size_t v = result.task.first + i;
    FCMA_CHECK(!seen_[v], "voxel scored twice");
    seen_[v] = true;
    scores_[v] = result.accuracy[i];
    ++scored_;
  }
}

std::size_t Scoreboard::add_idempotent(const TaskResult& result) {
  FCMA_CHECK(result.task.first + result.task.count <= scores_.size(),
             "task exceeds scoreboard range");
  FCMA_CHECK(result.accuracy.size() == result.task.count,
             "task result size mismatch");
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < result.task.count; ++i) {
    const std::size_t v = result.task.first + i;
    if (seen_[v]) {
      FCMA_CHECK(scores_[v] == result.accuracy[i],
                 "duplicate voxel score disagrees with recorded value");
      continue;
    }
    seen_[v] = true;
    scores_[v] = result.accuracy[i];
    ++scored_;
    ++fresh;
  }
  return fresh;
}

std::vector<VoxelScore> Scoreboard::ranked() const {
  std::vector<VoxelScore> out(scores_.size());
  for (std::size_t v = 0; v < scores_.size(); ++v) {
    out[v] = VoxelScore{static_cast<std::uint32_t>(v), scores_[v]};
  }
  std::sort(out.begin(), out.end(),
            [](const VoxelScore& a, const VoxelScore& b) {
              if (a.accuracy != b.accuracy) return a.accuracy > b.accuracy;
              return a.voxel < b.voxel;
            });
  return out;
}

std::vector<std::uint32_t> Scoreboard::top_voxels(std::size_t k) const {
  const auto r = ranked();
  k = std::min(k, r.size());
  std::vector<std::uint32_t> out(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = r[i].voxel;
  std::sort(out.begin(), out.end());
  return out;
}

double Scoreboard::accuracy_of(std::uint32_t voxel) const {
  FCMA_CHECK(voxel < scores_.size(), "voxel out of range");
  return scores_[voxel];
}

double Scoreboard::recovery_rate(
    const std::vector<std::uint32_t>& truth) const {
  if (truth.empty()) return 0.0;
  const auto top = top_voxels(truth.size());
  const std::unordered_set<std::uint32_t> truth_set(truth.begin(),
                                                    truth.end());
  std::size_t hits = 0;
  for (const std::uint32_t v : top) hits += truth_set.count(v);
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace fcma::core
