#include "fcma/selection.hpp"

#include <algorithm>
#include <cmath>

#include "stats/significance.hpp"

namespace fcma::core {

std::vector<double> accuracy_pvalues(const Scoreboard& board,
                                     std::size_t cv_total, double chance) {
  FCMA_CHECK(cv_total > 0, "cv_total must be positive");
  const auto ranked = board.ranked();
  std::vector<double> pvalues(ranked.size());
  for (const VoxelScore& score : ranked) {
    const auto correct = static_cast<std::size_t>(
        std::llround(score.accuracy * static_cast<double>(cv_total)));
    pvalues[score.voxel] =
        stats::accuracy_pvalue(correct, cv_total, chance);
  }
  return pvalues;
}

std::vector<std::uint32_t> significant_voxels(const Scoreboard& board,
                                              std::size_t cv_total,
                                              double alpha,
                                              Correction correction,
                                              double chance) {
  const std::vector<double> pvalues =
      accuracy_pvalues(board, cv_total, chance);
  std::vector<bool> pass;
  switch (correction) {
    case Correction::kNone: {
      pass.resize(pvalues.size());
      for (std::size_t v = 0; v < pvalues.size(); ++v) {
        pass[v] = pvalues[v] <= alpha;
      }
      break;
    }
    case Correction::kBonferroni:
      pass = stats::bonferroni(pvalues, alpha);
      break;
    case Correction::kFdr:
      pass = stats::benjamini_hochberg(pvalues, alpha);
      break;
  }
  std::vector<std::uint32_t> out;
  for (std::size_t v = 0; v < pass.size(); ++v) {
    if (pass[v]) out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

std::vector<double> permutation_null_accuracies(
    linalg::ConstMatrixView kernel, const std::vector<fmri::Epoch>& meta,
    const std::vector<std::vector<std::size_t>>& folds,
    svm::SolverKind solver, const svm::TrainOptions& options,
    std::size_t permutations, Rng& rng) {
  FCMA_CHECK(permutations > 0, "need at least one permutation");
  // Group epoch indices by subject so shuffles respect exchangeability.
  std::vector<std::vector<std::size_t>> by_subject;
  {
    std::int32_t current = -1;
    for (std::size_t e = 0; e < meta.size(); ++e) {
      if (by_subject.empty() || meta[e].subject != current) {
        current = meta[e].subject;
        by_subject.emplace_back();
      }
      by_subject.back().push_back(e);
    }
  }

  const auto base_labels = epoch_labels(meta);
  std::vector<double> nulls;
  nulls.reserve(permutations);
  std::vector<std::int8_t> labels(base_labels.begin(), base_labels.end());
  for (std::size_t p = 0; p < permutations; ++p) {
    // Fisher-Yates within each subject's epochs.
    labels.assign(base_labels.begin(), base_labels.end());
    for (const auto& group : by_subject) {
      for (std::size_t i = group.size(); i > 1; --i) {
        const std::size_t j = rng.uniform_index(i);
        std::swap(labels[group[i - 1]], labels[group[j]]);
      }
    }
    const svm::CvResult cv =
        svm::cross_validate(solver, kernel, labels, folds, options);
    nulls.push_back(cv.accuracy());
  }
  return nulls;
}

}  // namespace fcma::core
