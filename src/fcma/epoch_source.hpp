// Normalized-epoch access for the pipeline stages, resident or streamed.
//
// Stage 1 consumes eq.2-normalized [voxels x epoch_length] panels.  An
// EpochSource hands them out one epoch range at a time behind an RAII
// lease, so the pipeline no longer dictates that every panel is live at
// once.  Two backends:
//
//   * ResidentEpochs — zero-cost adapter over fmri::NormalizedEpochs (the
//     classic fully-resident path; leases are pointer bundles).
//   * StreamedEpochs — loads panels on demand from any fmri::DatasetView
//     (in-memory or mmap'd shard store), normalizes them with the shared
//     normalize_epoch_panel kernel, caches them under a byte budget with
//     LRU eviction of unpinned panels, and overlaps loads with compute by
//     prefetching upcoming epochs on the scheduler.
//
// Both backends produce bit-identical panels; the repo's standing
// EXPECT_EQ contract (streamed == resident == serial == pooled) holds
// because normalization runs through one shared kernel and gemm consumes
// the same float bits either way.
//
// Observability: StreamedEpochs maintains the io/* trace metrics —
// io/shard_loads and io/bytes_mapped counters (fed by ShardStoreView),
// an io/prefetch_hits counter (acquired panel was already loaded or
// loading thanks to prefetch) and an io/stall_s gauge (cumulative seconds
// acquire() spent waiting on in-flight loads).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "fmri/dataset.hpp"
#include "fmri/dataset_view.hpp"
#include "linalg/matrix.hpp"
#include "threading/thread_pool.hpp"

namespace fcma::core {

/// Hands out pinned normalized epoch panels for ranges of epoch indices.
class EpochSource {
 public:
  /// RAII pin on the panels of one acquired range.  `epoch(m)` takes the
  /// *absolute* epoch index (into meta()), like per_epoch[m] used to.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept
        : first_(o.first_),
          panels_(std::move(o.panels_)),
          release_(std::exchange(o.release_, nullptr)) {}
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        if (release_) release_();
        first_ = o.first_;
        panels_ = std::move(o.panels_);
        release_ = std::exchange(o.release_, nullptr);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (release_) release_();
    }

    [[nodiscard]] const linalg::Matrix& epoch(std::size_t m) const {
      return *panels_[m - first_];
    }

   private:
    friend class ResidentEpochs;
    friend class StreamedEpochs;
    std::size_t first_ = 0;
    std::vector<const linalg::Matrix*> panels_;
    std::function<void()> release_;
  };

  virtual ~EpochSource() = default;

  /// Epoch metadata, subject-major (always resident).
  [[nodiscard]] virtual const std::vector<fmri::Epoch>& meta() const = 0;
  /// Brain voxels per panel row.
  [[nodiscard]] virtual std::size_t voxels() const = 0;

  /// Pins (loading if needed) the normalized panels of [first, last).
  /// Blocks until every panel in the range is resident.  Thread-safe.
  [[nodiscard]] virtual Lease acquire(std::size_t first, std::size_t last) = 0;

  /// Hints that [first, last) is needed soon; backends may start loads in
  /// the background (never blocks).  The default is a no-op.
  virtual void prefetch(std::size_t first, std::size_t last) {
    (void)first;
    (void)last;
  }
};

/// Fully-resident backend over fmri::NormalizedEpochs (not owned).
class ResidentEpochs final : public EpochSource {
 public:
  explicit ResidentEpochs(const fmri::NormalizedEpochs& epochs)
      : epochs_(&epochs) {}

  [[nodiscard]] const std::vector<fmri::Epoch>& meta() const override {
    return epochs_->meta;
  }
  [[nodiscard]] std::size_t voxels() const override {
    return epochs_->per_epoch.empty() ? 0 : epochs_->per_epoch.front().rows();
  }
  [[nodiscard]] Lease acquire(std::size_t first, std::size_t last) override;

 private:
  const fmri::NormalizedEpochs* epochs_;
};

/// Budget-bounded streaming backend over a DatasetView (not owned).
class StreamedEpochs final : public EpochSource {
 public:
  struct Options {
    /// Panel-cache budget in bytes; 0 means unbounded (cache everything).
    std::size_t budget_bytes = 0;
    /// Scheduler for background prefetch loads; nullptr disables overlap
    /// (prefetch() becomes a no-op and acquire() loads synchronously).
    threading::ThreadPool* pool = nullptr;
  };

  /// Streams the epochs of `view` selected by `epoch_indices` (all epochs
  /// with the two-argument constructor), in the given order.
  StreamedEpochs(const fmri::DatasetView& view,
                 std::vector<std::size_t> epoch_indices, Options options);
  StreamedEpochs(const fmri::DatasetView& view, Options options);
  ~StreamedEpochs() override;

  [[nodiscard]] const std::vector<fmri::Epoch>& meta() const override {
    return meta_;
  }
  [[nodiscard]] std::size_t voxels() const override { return voxels_; }
  [[nodiscard]] Lease acquire(std::size_t first, std::size_t last) override;
  void prefetch(std::size_t first, std::size_t last) override;

  /// Cache introspection for tests and the oocore bench.
  [[nodiscard]] std::size_t resident_panels() const;
  [[nodiscard]] std::size_t resident_bytes() const;
  [[nodiscard]] std::size_t budget_bytes() const {
    return options_.budget_bytes;
  }

 private:
  struct Slot {
    enum class State : unsigned char { kEmpty, kLoading, kReady };
    State state = State::kEmpty;
    bool prefetch_queued = false;  ///< submitted to the pool, not started
    bool prefetched = false;       ///< load initiated by prefetch()
    std::size_t refs = 0;
    std::uint64_t last_use = 0;
    linalg::Matrix panel;
  };

  /// Loads slot `m` (caller already transitioned it to kLoading), then
  /// publishes it ready.  Runs without the mutex during I/O + normalize.
  void fill_slot(std::size_t m);
  void prefetch_task(std::size_t m);
  void release_range(std::size_t first, std::size_t last);
  /// Frees LRU unpinned panels until within budget.  Caller holds mu_.
  void evict_locked();
  [[nodiscard]] std::size_t estimated_panel_bytes(std::size_t m) const;

  const fmri::DatasetView* view_;
  std::vector<std::size_t> indices_;  ///< into view_->epochs()
  std::vector<fmri::Epoch> meta_;
  std::size_t voxels_ = 0;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::size_t bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::size_t inflight_ = 0;  ///< submitted prefetch tasks not yet done
  bool shutdown_ = false;
  double stall_s_ = 0.0;
};

}  // namespace fcma::core
