#include "fcma/svm_stage.hpp"

#include <algorithm>
#include <atomic>
#include <map>

#include "common/trace.hpp"
#include "common/workspace.hpp"
#include "linalg/baseline.hpp"
#include "linalg/opt.hpp"

namespace fcma::core {

namespace {

/// View of voxel v_local's M x N correlation block inside the task buffer.
linalg::ConstMatrixView voxel_block(linalg::ConstMatrixView corr,
                                    std::size_t epochs, std::size_t v_local) {
  return linalg::ConstMatrixView{corr.row(v_local * epochs), epochs,
                                 corr.cols, corr.ld};
}

}  // namespace

std::vector<std::int8_t> epoch_labels(const std::vector<fmri::Epoch>& meta) {
  std::vector<std::int8_t> labels(meta.size());
  for (std::size_t m = 0; m < meta.size(); ++m) {
    labels[m] = meta[m].label == 1 ? std::int8_t{1} : std::int8_t{-1};
  }
  return labels;
}

std::vector<std::vector<std::size_t>> epoch_loso_folds(
    const std::vector<fmri::Epoch>& meta) {
  // Subject ids need not be dense here: during the offline protocol the
  // held-out subject's id is absent from the training metadata.  Remap the
  // distinct ids that actually occur onto fold indices.
  std::map<std::int32_t, std::int32_t> fold_of;
  for (const fmri::Epoch& e : meta) {
    fold_of.emplace(e.subject, static_cast<std::int32_t>(fold_of.size()));
  }
  std::vector<std::int32_t> subject_of(meta.size());
  for (std::size_t m = 0; m < meta.size(); ++m) {
    subject_of[m] = fold_of.at(meta[m].subject);
  }
  return svm::loso_folds(subject_of,
                         static_cast<std::int32_t>(fold_of.size()));
}

void compute_voxel_kernel(linalg::ConstMatrixView corr, std::size_t epochs,
                          std::size_t v_local, Impl impl,
                          linalg::MatrixView kernel,
                          const linalg::tune::SyrkGeometry* geo) {
  const auto block = voxel_block(corr, epochs, v_local);
  if (impl == Impl::kBaseline) {
    linalg::baseline::syrk(block, kernel);
  } else if (geo != nullptr) {
    linalg::opt::syrk_with(block, kernel, *geo);
  } else {
    linalg::opt::syrk(block, kernel);
  }
}

SvmStageResult svm_stage(linalg::ConstMatrixView corr,
                         const std::vector<fmri::Epoch>& meta,
                         const std::vector<std::vector<std::size_t>>& folds,
                         const VoxelTask& task, Impl impl,
                         svm::SolverKind solver,
                         const svm::TrainOptions& options,
                         threading::ThreadPool* pool) {
  const trace::Span span("svm");
  const std::size_t m = meta.size();
  const auto labels = epoch_labels(meta);
  SvmStageResult result;
  result.accuracy.assign(task.count, 0.0);
  std::atomic<long> iterations{0};

  // Every voxel's syrk has the same (m x n) shape; resolve the tuning plan
  // once so a possible first-use probe runs here, not inside the voxel loop.
  const linalg::tune::SyrkGeometry syrk_geo =
      impl == Impl::kBaseline ? linalg::tune::SyrkGeometry{}
                              : linalg::tune::syrk_plan(m, corr.cols);

  auto run_voxel = [&](std::size_t v) {
    // Every voxel of a task needs the same M x M kernel matrix; drawing it
    // from the executing worker's arena turns count allocations into one.
    auto kernel_lease = Workspace::local().acquire(m * m);
    const linalg::MatrixView kernel{kernel_lease.data(), m, m, m};
    compute_voxel_kernel(corr, m, v, impl, kernel, &syrk_geo);
    const svm::CvResult cv =
        svm::cross_validate(solver, kernel, labels, folds, options);
    result.accuracy[v] = cv.accuracy();
    iterations.fetch_add(cv.iterations, std::memory_order_relaxed);
  };

  if (pool != nullptr) {
    threading::parallel_for_each(*pool, 0, task.count, run_voxel);
  } else {
    for (std::size_t v = 0; v < task.count; ++v) run_voxel(v);
  }
  result.svm_iterations = iterations.load();
  trace::count("svm/cv_iterations", result.svm_iterations);
  return result;
}

SvmStageResult svm_stage_instrumented(
    linalg::ConstMatrixView corr, const std::vector<fmri::Epoch>& meta,
    const std::vector<std::vector<std::size_t>>& folds, const VoxelTask& task,
    Impl impl, svm::SolverKind solver, const svm::TrainOptions& options,
    memsim::Instrument& ins, unsigned model_lanes,
    memsim::KernelEvents* kernel_events) {
  const trace::Span span("svm");
  const std::size_t m = meta.size();
  const auto labels = epoch_labels(meta);
  SvmStageResult result;
  result.accuracy.assign(task.count, 0.0);
  memsim::KernelEvents kernel_total{};
  for (std::size_t v = 0; v < task.count; ++v) {
    linalg::Matrix kernel(m, m);
    const auto block = voxel_block(corr, m, v);
    const memsim::KernelEvents before = ins.events();
    if (impl == Impl::kBaseline) {
      linalg::baseline::syrk_instrumented(block, kernel.view(), ins,
                                          model_lanes);
    } else {
      linalg::opt::syrk_instrumented(block, kernel.view(), ins, model_lanes);
    }
    kernel_total += ins.events() - before;
    const svm::CvResult cv = svm::cross_validate(
        solver, kernel.view(), labels, folds, options, &ins, model_lanes);
    result.accuracy[v] = cv.accuracy();
    result.svm_iterations += cv.iterations;
  }
  if (kernel_events != nullptr) *kernel_events = kernel_total;
  return result;
}

}  // namespace fcma::core
