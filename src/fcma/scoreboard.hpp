// Voxel scoreboard: collects per-voxel accuracies and ranks them.
//
// The master node "collects all voxels and sorts them by their resulting
// accuracies of cross validation" (paper §3.1.2); the top voxels form the
// ROIs used by the final classifier and the neuroscientific analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "fcma/pipeline.hpp"

namespace fcma::core {

/// One voxel's selection score.
struct VoxelScore {
  std::uint32_t voxel = 0;
  double accuracy = 0.0;
};

/// Accumulates task results; thread-compatible (external synchronization).
class Scoreboard {
 public:
  explicit Scoreboard(std::size_t total_voxels);

  /// Records one task's accuracies.
  void add(const TaskResult& result);

  /// True once every voxel has been scored.
  [[nodiscard]] bool complete() const { return scored_ == scores_.size(); }
  [[nodiscard]] std::size_t scored() const { return scored_; }

  /// All scores, sorted by accuracy descending (ties: lower voxel id first,
  /// for determinism).
  [[nodiscard]] std::vector<VoxelScore> ranked() const;

  /// The top-k voxel ids, sorted ascending for stable downstream use.
  [[nodiscard]] std::vector<std::uint32_t> top_voxels(std::size_t k) const;

  /// Accuracy of one voxel.
  [[nodiscard]] double accuracy_of(std::uint32_t voxel) const;

  /// Fraction of `truth` present in the top-|truth| ranked voxels — the
  /// recovery metric used to validate planted synthetic structure.
  [[nodiscard]] double recovery_rate(
      const std::vector<std::uint32_t>& truth) const;

 private:
  std::vector<double> scores_;
  std::vector<bool> seen_;
  std::size_t scored_ = 0;
};

}  // namespace fcma::core
