// Voxel scoreboard: collects per-voxel accuracies and ranks them.
//
// The master node "collects all voxels and sorts them by their resulting
// accuracies of cross validation" (paper §3.1.2); the top voxels form the
// ROIs used by the final classifier and the neuroscientific analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "fcma/pipeline.hpp"

namespace fcma::core {

/// One voxel's selection score.
struct VoxelScore {
  std::uint32_t voxel = 0;
  double accuracy = 0.0;
};

/// Accumulates task results; thread-compatible (external synchronization).
class Scoreboard {
 public:
  explicit Scoreboard(std::size_t total_voxels);

  /// Records one task's accuracies.  Throws on any already-scored voxel —
  /// the single-node paths dispatch each voxel exactly once, so a repeat is
  /// a scheduling bug there.
  void add(const TaskResult& result);

  /// At-least-once variant for the fault-tolerant cluster driver: an exact
  /// duplicate of an already-recorded score is skipped silently (this is
  /// what makes redelivered kTaskResult messages harmless), but a
  /// *conflicting* re-score throws — under the bit-identity contract two
  /// deliveries of the same voxel must agree, so disagreement means data
  /// corruption slipped past the checksum.  Returns the number of voxels
  /// newly scored by this call (0 for a full duplicate).
  std::size_t add_idempotent(const TaskResult& result);

  /// True once every voxel has been scored.
  [[nodiscard]] bool complete() const { return scored_ == scores_.size(); }
  [[nodiscard]] std::size_t scored() const { return scored_; }
  [[nodiscard]] std::size_t total_voxels() const { return scores_.size(); }

  /// True if voxel `v` has been scored (checkpoint/resume uses this to skip
  /// completed ranges).
  [[nodiscard]] bool voxel_scored(std::uint32_t v) const {
    FCMA_CHECK(v < seen_.size(), "voxel out of range");
    return seen_[v];
  }

  /// All scores, sorted by accuracy descending (ties: lower voxel id first,
  /// for determinism).
  [[nodiscard]] std::vector<VoxelScore> ranked() const;

  /// The top-k voxel ids, sorted ascending for stable downstream use.
  [[nodiscard]] std::vector<std::uint32_t> top_voxels(std::size_t k) const;

  /// Accuracy of one voxel.
  [[nodiscard]] double accuracy_of(std::uint32_t voxel) const;

  /// Fraction of `truth` present in the top-|truth| ranked voxels — the
  /// recovery metric used to validate planted synthetic structure.
  [[nodiscard]] double recovery_rate(
      const std::vector<std::uint32_t>& truth) const;

 private:
  std::vector<double> scores_;
  std::vector<bool> seen_;
  std::size_t scored_ = 0;
};

}  // namespace fcma::core
