// Human-readable analysis reports.
//
// After an offline study the neuroscientist wants one artifact: which
// regions were selected, how reliably, with what accuracies and p-values.
// This module renders that summary (and a machine-parsable voxel table)
// from the analysis results, optionally with spatial ROI clustering when a
// brain mask is available.
#pragma once

#include <string>

#include "fcma/offline.hpp"
#include "fcma/scoreboard.hpp"
#include "fmri/volume.hpp"

namespace fcma::core {

/// Options controlling report contents.
struct ReportOptions {
  std::size_t top_voxels = 20;      ///< entries in the per-voxel table
  std::size_t cv_total = 0;         ///< CV sample count for p-values
                                    ///< (0 = omit p-values)
  std::size_t min_cluster_size = 2; ///< ROI cluster threshold
};

/// Renders a single-analysis report: ranked voxels (+ binomial p-values if
/// cv_total is set) and, when `mask` is non-null, the ROI clusters formed
/// by the `selected` voxels.
[[nodiscard]] std::string render_report(
    const Scoreboard& board, const std::vector<std::uint32_t>& selected,
    const fmri::BrainMask* mask, const ReportOptions& options);

/// Renders the offline (nested LOSO) study summary: per-fold selection
/// quality and held-out accuracy, reliable voxels, and their ROI clusters
/// when a mask is available.
[[nodiscard]] std::string render_offline_report(
    const OfflineResult& result, std::size_t total_voxels,
    const fmri::BrainMask* mask, const ReportOptions& options);

/// Writes `content` to `path` (throws fcma::Error on failure).
void write_report(const std::string& path, const std::string& content);

}  // namespace fcma::core
