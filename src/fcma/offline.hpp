// Offline analysis: nested leave-one-subject-out cross-validation (paper
// §5.2.1).
//
// For each outer fold, one subject is held out; FCMA voxel selection runs on
// the remaining n-1 subjects (itself an inner leave-one-subject-out per
// voxel), the top-k voxels are selected, and a final classifier trained on
// the training subjects' selected-voxel correlation patterns is tested on
// the held-out subject.  Voxels selected consistently across folds are the
// "reliable" ROIs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fcma/pipeline.hpp"
#include "fcma/scoreboard.hpp"
#include "fmri/dataset.hpp"
#include "fmri/dataset_view.hpp"

namespace fcma::core {

/// Options of the offline protocol.
struct OfflineOptions {
  std::size_t top_k = 64;          ///< voxels selected per fold
  std::size_t voxels_per_task = 0; ///< 0 = one task for all voxels
  /// Peak-memory budget in bytes.  0 = resident: every fold's normalized
  /// epochs are materialized up front.  Non-zero = streamed: panels are
  /// leased from the DatasetView through a budget-bounded StreamedEpochs
  /// cache and tasks are sized by plan_residency, so the run never needs
  /// the full dataset in memory.  Results are bit-identical either way.
  std::size_t memory_budget_bytes = 0;
  PipelineConfig pipeline;
};

/// Result of one outer fold.
struct FoldResult {
  std::int32_t left_out_subject = 0;
  std::vector<std::uint32_t> selected;  ///< top-k voxels, ascending
  double test_accuracy = 0.0;           ///< final classifier on held-out
  double mean_selected_cv_accuracy = 0.0;
};

/// Result of the whole offline analysis.
struct OfflineResult {
  std::vector<FoldResult> folds;

  [[nodiscard]] double mean_test_accuracy() const;

  /// Voxels selected in at least `min_folds` outer folds.
  [[nodiscard]] std::vector<std::uint32_t> reliable_voxels(
      std::size_t min_folds, std::size_t total_voxels) const;
};

/// Runs the full nested LOSO analysis.  The DatasetView form is primary:
/// with a memory budget set, epoch panels stream through a bounded cache
/// instead of being materialized per fold.  The Dataset overload wraps a
/// borrowing InMemoryView.
[[nodiscard]] OfflineResult run_offline_analysis(
    const fmri::DatasetView& dataset, const OfflineOptions& options);
[[nodiscard]] OfflineResult run_offline_analysis(const fmri::Dataset& dataset,
                                                 const OfflineOptions& options);

/// Builds per-epoch feature vectors over the correlations among `selected`
/// voxels: row e = upper triangle (i<j) of the selected-voxel correlation
/// matrix in epoch e, Fisher-transformed and z-scored within subject.
/// Shared by the offline final classifier and the online protocol.  The
/// EpochSource form leases one panel at a time (next one prefetched); the
/// NormalizedEpochs overload wraps ResidentEpochs and is bit-identical.
[[nodiscard]] linalg::Matrix selected_correlation_features(
    EpochSource& epochs, std::span<const std::uint32_t> selected);
[[nodiscard]] linalg::Matrix selected_correlation_features(
    const fmri::NormalizedEpochs& epochs,
    std::span<const std::uint32_t> selected);

/// Trains on `train_idx` epochs of the feature matrix and reports accuracy
/// on `test_idx` (linear kernel = gram matrix of the feature rows).
[[nodiscard]] double train_and_test_classifier(
    const linalg::Matrix& features, const std::vector<fmri::Epoch>& meta,
    std::span<const std::size_t> train_idx,
    std::span<const std::size_t> test_idx,
    const svm::TrainOptions& options);

}  // namespace fcma::core
