#include "fcma/pipeline.hpp"

#include <atomic>

#include "archsim/roofline.hpp"
#include "common/trace.hpp"
#include "common/workspace.hpp"
#include "linalg/tune.hpp"

namespace fcma::core {

namespace {

// Places each instrumented stage on the modeled machine's roofline and
// attaches the result to the span labels the stage records under.  Last
// writer wins per label, which matches the one-calibration-run-per-export
// usage of `fcma analyze --trace`.
void attach_roofline(const memsim::Instrument& ins,
                     const InstrumentedTaskResult& out) {
  if (!trace::enabled()) return;
  const archsim::ArchModel model = ins.machine() == memsim::Machine::kPhi5110P
                                       ? archsim::Phi5110P()
                                       : archsim::XeonE5_2670();
  trace::Registry& reg = trace::global();
  const trace::RooflineStats gemm_pt =
      archsim::roofline_point(model, out.corr_norm);
  const trace::RooflineStats syrk_pt =
      archsim::roofline_point(model, out.kernel);
  reg.roofline_set("task/correlation/gemm_nt", gemm_pt);
  reg.roofline_set("task/svm/syrk", syrk_pt);
  // Close the tuning loop: feed each kernel's measured percent-of-roofline
  // back to the autotuner, which drops (and later re-probes) a remembered
  // geometry that falls far below its own best-known fraction.
  linalg::tune::Tuner::instance().note_roofline("gemm", gemm_pt.pct_roofline);
  linalg::tune::Tuner::instance().note_roofline("syrk", syrk_pt.pct_roofline);
  reg.roofline_set("task/svm", archsim::roofline_point(model, out.svm));
  reg.roofline_set("task", archsim::roofline_point(model, out.total()));
  reg.meta_set("roofline/machine", model.name);
}

}  // namespace

TaskResult run_task(EpochSource& epochs, const VoxelTask& task,
                    const PipelineConfig& config) {
  FCMA_CHECK(!epochs.meta().empty(), "no epochs to process");
  const trace::Span task_span("task");
  trace::count("pipeline/tasks");
  const std::size_t m = epochs.meta().size();
  const std::size_t n = epochs.voxels();
  // The count*M x N correlation buffer is the single biggest allocation of
  // the pipeline; tasks of equal size reuse it through the worker's arena.
  auto corr_lease =
      Workspace::local().acquire(static_cast<std::size_t>(task.count) * m * n);
  const linalg::MatrixView corr{corr_lease.data(),
                                static_cast<std::size_t>(task.count) * m, n,
                                n};
  if (config.impl == Impl::kBaseline) {
    baseline_correlate_normalize(epochs, task, corr);
  } else {
    optimized_correlate_normalize(epochs, task, corr, config.norm_mode);
  }
  const auto folds = config.cv_folds != nullptr
                         ? *config.cv_folds
                         : epoch_loso_folds(epochs.meta());
  const SvmStageResult stage3 =
      svm_stage(corr, epochs.meta(), folds, task, config.impl, config.solver,
                config.svm_options, config.pool);
  TaskResult result;
  result.task = task;
  result.accuracy = stage3.accuracy;
  result.svm_iterations = stage3.svm_iterations;
  return result;
}

TaskResult run_task(const fmri::NormalizedEpochs& epochs,
                    const VoxelTask& task, const PipelineConfig& config) {
  ResidentEpochs source(epochs);
  return run_task(source, task, config);
}

std::vector<TaskResult> run_tasks(EpochSource& epochs,
                                  std::span<const VoxelTask> tasks,
                                  const PipelineConfig& config) {
  std::vector<TaskResult> results(tasks.size());
  if (config.pool != nullptr && tasks.size() > 1) {
    // One task per scheduler task; the nested stage-3 parallel_for inside
    // each runs through the same scheduler (help-first joins), so small
    // task counts still fill the machine.  Arithmetic is identical to the
    // single-thread path: every voxel writes its own accuracy slot and the
    // results vector is indexed by task order, not completion order.
    threading::parallel_for_each(
        *config.pool, 0, tasks.size(),
        [&](std::size_t i) { results[i] = run_task(epochs, tasks[i], config); });
  } else {
    // A single task (or no pool): run on the calling thread so the pool
    // stays free for the task's inner stage-3 parallelism.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      results[i] = run_task(epochs, tasks[i], config);
    }
  }
  return results;
}

std::vector<TaskResult> run_tasks(const fmri::NormalizedEpochs& epochs,
                                  std::span<const VoxelTask> tasks,
                                  const PipelineConfig& config) {
  ResidentEpochs source(epochs);
  return run_tasks(source, tasks, config);
}

TaskResult run_task_grouped(EpochSource& epochs, const VoxelTask& task,
                            const PipelineConfig& config,
                            std::size_t group_voxels) {
  FCMA_CHECK(!epochs.meta().empty(), "no epochs to process");
  FCMA_CHECK(group_voxels > 0, "group size must be positive");
  const trace::Span task_span("task");
  trace::count("pipeline/tasks");
  const std::size_t m = epochs.meta().size();
  const std::size_t n = epochs.voxels();

  // Phase 1: per group, correlate+normalize into a reusable buffer and
  // reduce each voxel to its kernel matrix.  One group-sized workspace
  // lease covers every group (the last, possibly shorter group just views
  // a prefix).
  std::vector<linalg::Matrix> kernels;
  kernels.reserve(task.count);
  const std::size_t max_group =
      std::min<std::size_t>(group_voxels, task.count);
  auto corr_lease = Workspace::local().acquire(max_group * m * n);
  for (std::uint32_t g0 = 0; g0 < task.count; g0 += group_voxels) {
    const VoxelTask group{
        task.first + g0,
        static_cast<std::uint32_t>(
            std::min<std::size_t>(group_voxels, task.count - g0))};
    const linalg::MatrixView corr{
        corr_lease.data(), static_cast<std::size_t>(group.count) * m, n, n};
    if (config.impl == Impl::kBaseline) {
      baseline_correlate_normalize(epochs, group, corr);
    } else {
      optimized_correlate_normalize(epochs, group, corr, config.norm_mode);
    }
    for (std::uint32_t v = 0; v < group.count; ++v) {
      linalg::Matrix kernel(m, m);
      compute_voxel_kernel(corr, m, v, config.impl, kernel.view());
      kernels.push_back(std::move(kernel));
    }
  }

  // Phase 2: cross-validate the accumulated kernel matrices — all voxels at
  // once, the regime where every hardware thread has a problem to solve.
  const trace::Span svm_span("svm");
  const auto folds = config.cv_folds != nullptr
                         ? *config.cv_folds
                         : epoch_loso_folds(epochs.meta());
  const auto labels = epoch_labels(epochs.meta());
  TaskResult result;
  result.task = task;
  result.accuracy.assign(task.count, 0.0);
  std::atomic<long> iterations{0};
  auto run_voxel = [&](std::size_t v) {
    const svm::CvResult cv =
        svm::cross_validate(config.solver, kernels[v].view(), labels, folds,
                            config.svm_options);
    result.accuracy[v] = cv.accuracy();
    iterations.fetch_add(cv.iterations, std::memory_order_relaxed);
  };
  if (config.pool != nullptr) {
    threading::parallel_for_each(*config.pool, 0, task.count, run_voxel);
  } else {
    for (std::size_t v = 0; v < task.count; ++v) run_voxel(v);
  }
  result.svm_iterations = iterations.load();
  trace::count("svm/cv_iterations", result.svm_iterations);
  return result;
}

TaskResult run_task_grouped(const fmri::NormalizedEpochs& epochs,
                            const VoxelTask& task,
                            const PipelineConfig& config,
                            std::size_t group_voxels) {
  ResidentEpochs source(epochs);
  return run_task_grouped(source, task, config, group_voxels);
}

InstrumentedTaskResult run_task_instrumented(
    const fmri::NormalizedEpochs& epochs, const VoxelTask& task,
    const PipelineConfig& config, memsim::Instrument& ins,
    unsigned model_lanes) {
  FCMA_CHECK(!epochs.per_epoch.empty(), "no epochs to process");
  const trace::Span task_span("instrumented_task");
  trace::count("pipeline/instrumented_tasks");
  const std::size_t m = epochs.per_epoch.size();
  const std::size_t n = epochs.per_epoch.front().rows();
  linalg::Matrix corr = make_corr_buffer(task, m, n);

  InstrumentedTaskResult out;
  const memsim::KernelEvents at_start = ins.events();
  if (config.impl == Impl::kBaseline) {
    baseline_correlate_normalize_instrumented(epochs, task, corr.view(), ins,
                                              model_lanes);
  } else {
    optimized_correlate_normalize_instrumented(
        epochs, task, corr.view(), config.norm_mode, ins, model_lanes);
  }
  const memsim::KernelEvents after_corr = ins.events();
  out.corr_norm = after_corr - at_start;

  const auto folds = config.cv_folds != nullptr
                         ? *config.cv_folds
                         : epoch_loso_folds(epochs.meta);
  const SvmStageResult stage3 = svm_stage_instrumented(
      corr.view(), epochs.meta, folds, task, config.impl, config.solver,
      config.svm_options, ins, model_lanes, &out.kernel);
  out.svm = (ins.events() - after_corr) - out.kernel;

  out.result.task = task;
  out.result.accuracy = stage3.accuracy;
  out.result.svm_iterations = stage3.svm_iterations;
  attach_roofline(ins, out);
  return out;
}

}  // namespace fcma::core
