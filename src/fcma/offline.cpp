#include "fcma/offline.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <optional>

#include "common/trace.hpp"
#include "common/workspace.hpp"
#include "fcma/memory_model.hpp"
#include "linalg/opt.hpp"
#include "stats/normalization.hpp"

namespace fcma::core {

namespace {

// Subject runs over a feature matrix's epoch rows (the offline features are
// built over all epochs, subject-major).
void zscore_features_within_subject(linalg::Matrix& features,
                                    const std::vector<fmri::Epoch>& meta) {
  std::size_t start = 0;
  for (std::size_t m = 1; m <= meta.size(); ++m) {
    if (m == meta.size() || meta[m].subject != meta[start].subject) {
      stats::fisher_zscore_block(features.row(start), m - start,
                                 features.cols(), features.ld());
      start = m;
    }
  }
}

}  // namespace

double OfflineResult::mean_test_accuracy() const {
  if (folds.empty()) return 0.0;
  double sum = 0.0;
  for (const FoldResult& f : folds) sum += f.test_accuracy;
  return sum / static_cast<double>(folds.size());
}

std::vector<std::uint32_t> OfflineResult::reliable_voxels(
    std::size_t min_folds, std::size_t total_voxels) const {
  std::vector<std::size_t> counts(total_voxels, 0);
  for (const FoldResult& f : folds) {
    for (const std::uint32_t v : f.selected) ++counts[v];
  }
  std::vector<std::uint32_t> out;
  for (std::size_t v = 0; v < total_voxels; ++v) {
    if (counts[v] >= min_folds) out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

linalg::Matrix selected_correlation_features(
    EpochSource& epochs, std::span<const std::uint32_t> selected) {
  const std::size_t k = selected.size();
  FCMA_CHECK(k >= 2, "need at least two selected voxels");
  const std::size_t m = epochs.meta().size();
  const std::size_t dim = k * (k - 1) / 2;
  linalg::Matrix features(m, dim);
  // Per epoch: gather the k selected rows into a packed k x T panel and let
  // the blocked syrk produce the k x k Gram matrix; its strict upper
  // triangle, read row-major, is exactly the (i, j>i) pair ordering of the
  // feature vector.  Entries are already Pearson r's (eq. 2/3
  // normalization).
  const auto t_len = static_cast<std::size_t>(epochs.meta().front().length);
  auto& workspace = Workspace::local();
  auto packed = workspace.acquire(k * t_len);
  auto gram = workspace.acquire(k * k);
  for (std::size_t e = 0; e < m; ++e) {
    epochs.prefetch(e + 1, e + 2);
    const auto lease = epochs.acquire(e, e + 1);
    const linalg::Matrix& act = lease.epoch(e);
    for (std::size_t i = 0; i < k; ++i) {
      std::memcpy(packed.data() + i * t_len, act.row(selected[i]),
                  t_len * sizeof(float));
    }
    linalg::opt::syrk(
        linalg::ConstMatrixView{packed.data(), k, t_len, t_len},
        linalg::MatrixView{gram.data(), k, k, k});
    float* row = features.row(e);
    std::size_t f = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const float* gram_row = gram.data() + i * k;
      for (std::size_t j = i + 1; j < k; ++j) row[f++] = gram_row[j];
    }
  }
  return features;
}

linalg::Matrix selected_correlation_features(
    const fmri::NormalizedEpochs& epochs,
    std::span<const std::uint32_t> selected) {
  ResidentEpochs source(epochs);
  return selected_correlation_features(source, selected);
}

double train_and_test_classifier(const linalg::Matrix& features,
                                 const std::vector<fmri::Epoch>& meta,
                                 std::span<const std::size_t> train_idx,
                                 std::span<const std::size_t> test_idx,
                                 const svm::TrainOptions& options) {
  FCMA_CHECK(features.rows() == meta.size(), "feature/epoch mismatch");
  // Gram matrix over all epochs: K = F F^T via the optimized syrk.
  linalg::Matrix gram(features.rows(), features.rows());
  linalg::opt::syrk(features.view(), gram.view());
  std::vector<std::int8_t> labels(meta.size());
  for (std::size_t e = 0; e < meta.size(); ++e) {
    labels[e] = meta[e].label == 1 ? std::int8_t{1} : std::int8_t{-1};
  }
  const svm::Model model = svm::phisvm_train(gram.view(), labels, train_idx,
                                             options);
  std::size_t correct = 0;
  for (const std::size_t t : test_idx) {
    const double f = svm::decision_value(model, gram.view(), t, train_idx);
    const std::int8_t predicted = f >= 0.0 ? 1 : -1;
    correct += (predicted == labels[t]);
  }
  return test_idx.empty()
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(test_idx.size());
}

OfflineResult run_offline_analysis(const fmri::DatasetView& dataset,
                                   const OfflineOptions& options) {
  OfflineResult result;
  const std::size_t v_total = dataset.voxels();
  const bool streamed = options.memory_budget_bytes > 0;
  threading::ThreadPool* pool = options.pipeline.pool;

  std::size_t per_task = options.voxels_per_task;
  std::optional<BudgetPlan> plan;
  if (streamed) {
    plan = plan_residency(
        dataset.epochs().size(), dataset.epochs_per_subject(), v_total,
        static_cast<std::size_t>(dataset.epochs().front().length),
        options.memory_budget_bytes);
    if (per_task == 0) {
      // Concurrent tasks each hold their own correlation buffer, so the
      // plan's correlation allowance is split across the pool lanes.
      const std::size_t lanes = pool != nullptr ? pool->size() : 1;
      per_task = std::max<std::size_t>(1, plan->group_voxels / lanes);
    }
  } else if (per_task == 0) {
    per_task = v_total;
  }
  const std::vector<VoxelTask> tasks = partition_voxels(v_total, per_task);

  // All-epoch panels feed the final per-fold classifier but do not depend
  // on the fold, so one source (materialized epochs, or a bounded streamed
  // cache) serves every fold.
  std::optional<fmri::NormalizedEpochs> all;
  std::optional<StreamedEpochs> all_streamed;
  if (streamed) {
    all_streamed.emplace(dataset,
                         StreamedEpochs::Options{plan->panel_cache_bytes,
                                                 pool});
  } else {
    all = fmri::normalize_epochs(dataset);
  }
  const std::vector<fmri::Epoch>& all_meta =
      streamed ? all_streamed->meta() : all->meta;

  for (std::int32_t fold = 0; fold < dataset.subjects(); ++fold) {
    const trace::Span fold_span("offline_fold");
    trace::count("offline/folds");
    // Training epochs: everything not belonging to the held-out subject.
    std::vector<std::size_t> train_epochs;
    for (std::size_t e = 0; e < dataset.epochs().size(); ++e) {
      if (dataset.epochs()[e].subject != fold) train_epochs.push_back(e);
    }

    // Voxel selection: full FCMA over the training subjects.  Tasks run
    // through the configured pool; results come back in task order, so the
    // scoreboard fills identically at any thread count.
    Scoreboard board(v_total);
    std::vector<TaskResult> fold_results;
    if (streamed) {
      StreamedEpochs training(
          dataset, train_epochs,
          StreamedEpochs::Options{plan->panel_cache_bytes, pool});
      fold_results = run_tasks(training, tasks, options.pipeline);
    } else {
      const fmri::NormalizedEpochs training =
          fmri::normalize_epochs(dataset, train_epochs);
      fold_results = run_tasks(training, tasks, options.pipeline);
    }
    for (const TaskResult& tr : fold_results) board.add(tr);
    FoldResult fr;
    fr.left_out_subject = fold;
    fr.selected = board.top_voxels(options.top_k);
    double acc_sum = 0.0;
    for (const std::uint32_t v : fr.selected) acc_sum += board.accuracy_of(v);
    fr.mean_selected_cv_accuracy =
        fr.selected.empty()
            ? 0.0
            : acc_sum / static_cast<double>(fr.selected.size());

    // Final classifier: selected-voxel correlation patterns over *all*
    // epochs; train on the training subjects, test on the held-out one.
    linalg::Matrix features =
        streamed ? selected_correlation_features(*all_streamed, fr.selected)
                 : selected_correlation_features(*all, fr.selected);
    zscore_features_within_subject(features, all_meta);
    std::vector<std::size_t> train_idx;
    std::vector<std::size_t> test_idx;
    for (std::size_t e = 0; e < all_meta.size(); ++e) {
      (all_meta[e].subject == fold ? test_idx : train_idx).push_back(e);
    }
    fr.test_accuracy = train_and_test_classifier(
        features, all_meta, train_idx, test_idx,
        options.pipeline.svm_options);
    result.folds.push_back(std::move(fr));
  }
  return result;
}

OfflineResult run_offline_analysis(const fmri::Dataset& dataset,
                                   const OfflineOptions& options) {
  return run_offline_analysis(fmri::InMemoryView(dataset), options);
}

}  // namespace fcma::core
