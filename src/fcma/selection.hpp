// Statistically principled voxel selection.
//
// Ranking by raw accuracy (Scoreboard::top_voxels) is what the paper's
// pipeline does online; for publication-grade offline analyses the selected
// set should control a false-positive rate over the ~35k simultaneous
// tests.  This layer turns scoreboard accuracies into p-values (exact
// binomial, or label-permutation when the binomial's independence
// assumptions are in doubt) and applies Bonferroni or FDR control.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fcma/scoreboard.hpp"
#include "fcma/svm_stage.hpp"

namespace fcma::core {

/// Multiple-comparison control method.
enum class Correction { kNone, kBonferroni, kFdr };

/// Exact binomial p-values for every voxel's accuracy, assuming each of the
/// `cv_total` cross-validated epochs is an independent Bernoulli trial at
/// `chance` under the null.
[[nodiscard]] std::vector<double> accuracy_pvalues(const Scoreboard& board,
                                                   std::size_t cv_total,
                                                   double chance = 0.5);

/// Voxels surviving the chosen correction at level `alpha`, ascending.
[[nodiscard]] std::vector<std::uint32_t> significant_voxels(
    const Scoreboard& board, std::size_t cv_total, double alpha,
    Correction correction, double chance = 0.5);

/// Label-permutation null for ONE voxel: re-runs the voxel's
/// cross-validation `permutations` times with labels shuffled *within
/// subject* (preserving the exchangeability structure), returning the null
/// accuracies.  The p-value is stats::permutation_pvalue(observed, nulls).
[[nodiscard]] std::vector<double> permutation_null_accuracies(
    linalg::ConstMatrixView kernel, const std::vector<fmri::Epoch>& meta,
    const std::vector<std::vector<std::size_t>>& folds,
    svm::SolverKind solver, const svm::TrainOptions& options,
    std::size_t permutations, Rng& rng);

}  // namespace fcma::core
