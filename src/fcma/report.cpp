#include "fcma/report.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/table.hpp"
#include "fcma/selection.hpp"
#include "stats/significance.hpp"

namespace fcma::core {

namespace {

void append_cluster_table(std::ostringstream& os,
                          const fmri::BrainMask& mask,
                          const std::vector<std::uint32_t>& selected,
                          std::size_t min_cluster_size) {
  const auto clusters =
      fmri::find_clusters(mask, selected, min_cluster_size);
  Table t("ROI clusters (6-connected, >= " +
          std::to_string(min_cluster_size) + " voxels)");
  t.header({"rank", "voxels", "peak (x,y,z)", "centroid"});
  std::size_t rank = 1;
  for (const auto& c : clusters) {
    std::ostringstream peak;
    peak << "(" << c.peak.x << "," << c.peak.y << "," << c.peak.z << ")";
    std::ostringstream centroid;
    centroid.setf(std::ios::fixed);
    centroid.precision(1);
    centroid << "(" << c.centroid_x << "," << c.centroid_y << ","
             << c.centroid_z << ")";
    t.row({std::to_string(rank++),
           std::to_string(c.size()), peak.str(), centroid.str()});
  }
  os << t.str();
  if (clusters.empty()) {
    os << "(no clusters at this threshold)\n";
  }
}

}  // namespace

std::string render_report(const Scoreboard& board,
                          const std::vector<std::uint32_t>& selected,
                          const fmri::BrainMask* mask,
                          const ReportOptions& options) {
  std::ostringstream os;
  os << "FCMA analysis report\n";
  os << "====================\n\n";
  os << "voxels scored: " << board.scored() << "\n";
  os << "voxels selected: " << selected.size() << "\n\n";

  std::vector<double> pvalues;
  if (options.cv_total > 0) {
    pvalues = accuracy_pvalues(board, options.cv_total);
  }
  Table t("top voxels by cross-validation accuracy");
  if (pvalues.empty()) {
    t.header({"voxel", "accuracy"});
  } else {
    t.header({"voxel", "accuracy", "p (binomial)"});
  }
  const auto ranked = board.ranked();
  const std::size_t rows =
      std::min(options.top_voxels, ranked.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{std::to_string(ranked[i].voxel),
                                 Table::num(ranked[i].accuracy, 3)};
    if (!pvalues.empty()) {
      std::ostringstream p;
      p.precision(2);
      p << std::scientific << pvalues[ranked[i].voxel];
      row.push_back(p.str());
    }
    t.row(std::move(row));
  }
  os << t.str();

  if (mask != nullptr) {
    os << "\n";
    append_cluster_table(os, *mask, selected, options.min_cluster_size);
  }
  return os.str();
}

std::string render_offline_report(const OfflineResult& result,
                                  std::size_t total_voxels,
                                  const fmri::BrainMask* mask,
                                  const ReportOptions& options) {
  std::ostringstream os;
  os << "FCMA offline study report (nested leave-one-subject-out)\n";
  os << "=========================================================\n\n";
  Table folds("per-fold results");
  folds.header({"held-out subject", "selected", "mean selection CV acc",
                "held-out accuracy"});
  for (const FoldResult& f : result.folds) {
    folds.row({std::to_string(f.left_out_subject),
               std::to_string(f.selected.size()),
               Table::num(f.mean_selected_cv_accuracy, 3),
               Table::num(f.test_accuracy, 3)});
  }
  os << folds.str();
  os << "\nmean held-out accuracy: "
     << Table::num(result.mean_test_accuracy(), 3)
     << "  (chance = 0.500)\n";

  const auto reliable =
      result.reliable_voxels(result.folds.size(), total_voxels);
  os << "reliable voxels (selected in every fold): " << reliable.size()
     << "\n";
  if (mask != nullptr && !reliable.empty()) {
    os << "\n";
    append_cluster_table(os, *mask, reliable, options.min_cluster_size);
  }
  return os.str();
}

void write_report(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  FCMA_CHECK(out.good(), "cannot open " + path);
  out << content;
  FCMA_CHECK(out.good(), "write failed for " + path);
}

}  // namespace fcma::core
