// Device-memory feasibility model (paper §3.3.3, §4.4, §5.4.1).
//
// The Xeon Phi 5110P leaves ~6GB to applications.  The baseline pipeline
// must keep every assigned voxel's full correlation data (M x N floats)
// resident through SVM cross-validation, which caps a task at 120 voxels
// (face-scene) or 60 (attention) — starving the coprocessor's 240 hardware
// threads during stage 3.  The optimized pipeline reduces each voxel's
// correlation block to an M x M kernel matrix portion by portion, so >= 240
// voxels' problems fit and every thread has work.
//
// These helpers quantify both regimes; the cluster simulator and the Fig 9
// bench use them to reproduce the thread-starvation effect.
#pragma once

#include <cstddef>

namespace fcma::core {

/// Memory available to applications on the modeled coprocessor (~6GB).
inline constexpr std::size_t kPhiAvailableBytes = 6ull << 30;

/// Bytes of correlation data one voxel contributes (M epochs x N voxels).
[[nodiscard]] std::size_t corr_bytes_per_voxel(std::size_t epochs,
                                               std::size_t brain_voxels);

/// Bytes of one voxel's precomputed kernel matrix (M x M).
[[nodiscard]] std::size_t kernel_bytes_per_voxel(std::size_t epochs);

/// Largest task the *baseline* can accept: all correlation data resident.
[[nodiscard]] std::size_t baseline_max_voxels(std::size_t epochs,
                                              std::size_t brain_voxels,
                                              std::size_t available_bytes);

/// Largest task the *optimized* pipeline can accept: `group` voxels'
/// correlation blocks in flight plus one kernel matrix per assigned voxel.
[[nodiscard]] std::size_t optimized_max_voxels(std::size_t epochs,
                                               std::size_t brain_voxels,
                                               std::size_t available_bytes,
                                               std::size_t group = 8);

/// Residency plan for a budget-bounded streamed run (`--memory-budget`).
///
/// Splits the budget deterministically between the three big consumers of
/// a streamed grouped run:
///   * panel cache — StreamedEpochs' normalized-epoch panels (at least one
///     full subject run plus one prefetched panel, the floor the merged
///     stage 1/2 sweep needs);
///   * correlation — the group's in-flight count x M x N blocks;
///   * kernels — the per-task accumulated M x M kernel matrices.
/// Only ~5/8 of the budget is planned; the rest is headroom for code,
/// transient shard mappings, SVM scratch, and allocator slack so the
/// *process* peak RSS stays under the user's number, not just the plan.
struct BudgetPlan {
  std::size_t budget_bytes = 0;       ///< the user's total budget
  std::size_t panel_cache_bytes = 0;  ///< StreamedEpochs cache budget
  std::size_t group_voxels = 0;       ///< grouped-pipeline group size
  std::size_t voxels_per_task = 0;    ///< task grain (caps kernel buildup)
};

/// Plans shard/task sizes for `budget_bytes`; throws fcma::Error when the
/// budget cannot hold even the minimal working set (one subject's panels,
/// a one-voxel correlation block, one kernel matrix).  Pure function of
/// its arguments, so resident and streamed runs of the same shape always
/// pick the same sizes.
[[nodiscard]] BudgetPlan plan_residency(std::size_t total_epochs,
                                        std::size_t epochs_per_subject,
                                        std::size_t brain_voxels,
                                        std::size_t epoch_length,
                                        std::size_t budget_bytes);

}  // namespace fcma::core
