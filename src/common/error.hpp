// Error handling helpers.
//
// Library code throws fcma::Error on contract violations that depend on
// runtime input (bad file, inconsistent dimensions supplied by a caller).
// Internal invariants use FCMA_ASSERT, which is compiled in all build types
// because the kernels are heavily tested against references and a silent
// out-of-bounds write would invalidate every benchmark downstream.
#pragma once

#include <stdexcept>
#include <string>

namespace fcma {

/// Exception type thrown by all FCMA libraries for recoverable errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& msg) { throw Error(msg); }

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw Error(std::string("assertion failed: ") + expr + " at " + file + ":" +
              std::to_string(line));
}
}  // namespace detail

}  // namespace fcma

/// Checks a runtime condition; throws fcma::Error with location on failure.
#define FCMA_CHECK(cond, msg)                                   \
  do {                                                          \
    if (!(cond)) {                                              \
      ::fcma::raise(std::string(msg) + " (" #cond ") at " +     \
                    __FILE__ + ":" + std::to_string(__LINE__)); \
    }                                                           \
  } while (0)

/// Internal invariant check, active in every build type.
#define FCMA_ASSERT(expr)                                       \
  do {                                                          \
    if (!(expr)) {                                              \
      ::fcma::detail::assert_fail(#expr, __FILE__, __LINE__);   \
    }                                                           \
  } while (0)
