#include "common/metrics.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace fcma::trace {

namespace {

// Labels are library-chosen, but escape defensively so the exporter always
// emits valid JSON even for user-supplied label text.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void Registry::record_span(const std::string& label, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_[label].record(seconds);
}

void Registry::count(const std::string& name, std::int64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void Registry::gauge_set(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void Registry::gauge_max(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = gauges_.emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

void Registry::meta_set(const std::string& name, const std::string& value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  meta_[name] = value;
}

SpanStats Registry::span(const std::string& label) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spans_.find(label);
  return it == spans_.end() ? SpanStats{} : it->second;
}

std::int64_t Registry::counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::string Registry::meta(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = meta_.find(name);
  return it == meta_.end() ? std::string() : it->second;
}

std::vector<std::string> Registry::span_labels() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(spans_.size());
  for (const auto& [label, stats] : spans_) out.push_back(label);
  return out;
}

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"schema\": \"fcma.trace.v1\",\n  \"meta\": {";
  bool first = true;
  for (const auto& [name, v] : meta_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": \"" + json_escape(v) + "\"";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"spans\": {";
  first = true;
  for (const auto& [label, s] : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(label) + "\": {\"count\": " +
           std::to_string(s.count) + ", \"total_s\": " +
           json_double(s.total_s) + ", \"min_s\": " + json_double(s.min_s) +
           ", \"max_s\": " + json_double(s.max_s) + "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"counters\": {";
  first = true;
  for (const auto& [name, v] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_double(v);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void Registry::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  FCMA_CHECK(f != nullptr, "cannot open trace output file " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  FCMA_CHECK(written == json.size(), "short write to trace file " + path);
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  counters_.clear();
  gauges_.clear();
  meta_.clear();
}

Registry& global() {
  static Registry instance;
  return instance;
}

}  // namespace fcma::trace
