#include "common/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace fcma::trace {

namespace {

// Labels are library-chosen, but escape defensively so the exporter always
// emits valid JSON even for user-supplied label text.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void Registry::record_span(const std::string& label, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  SpanEntry& entry = spans_[label];
  entry.stats.record(seconds);
  entry.hist.record_seconds(seconds);
}

void Registry::merge_span(const std::string& label, const SpanStats& stats,
                          const LatencyHistogram& hist) {
  if (stats.count == 0 && hist.count() == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  SpanEntry& entry = spans_[label];
  entry.stats.merge(stats);
  entry.hist.merge(hist);
}

void Registry::count(const std::string& name, std::int64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void Registry::gauge_set(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void Registry::gauge_max(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = gauges_.emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

void Registry::meta_set(const std::string& name, const std::string& value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  meta_[name] = value;
}

void Registry::roofline_set(const std::string& label,
                            const RooflineStats& stats) {
  const std::lock_guard<std::mutex> lock(mutex_);
  roofline_[label] = stats;
}

SpanStats Registry::span(const std::string& label) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spans_.find(label);
  return it == spans_.end() ? SpanStats{} : it->second.stats;
}

double Registry::clamped_quantile(const SpanEntry& entry, double p) {
  if (entry.hist.count() == 0) return 0.0;
  return std::clamp(entry.hist.quantile(p), entry.stats.min_s,
                    entry.stats.max_s);
}

double Registry::span_quantile(const std::string& label, double p) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spans_.find(label);
  return it == spans_.end() ? 0.0 : clamped_quantile(it->second, p);
}

std::int64_t Registry::counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::string Registry::meta(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = meta_.find(name);
  return it == meta_.end() ? std::string() : it->second;
}

RooflineStats Registry::roofline(const std::string& label) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = roofline_.find(label);
  return it == roofline_.end() ? RooflineStats{} : it->second;
}

std::vector<std::string> Registry::span_labels() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(spans_.size());
  for (const auto& [label, entry] : spans_) out.push_back(label);
  return out;
}

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"schema\": \"fcma.trace.v2\",\n  \"meta\": {";
  bool first = true;
  for (const auto& [name, v] : meta_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": \"" + json_escape(v) + "\"";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"spans\": {";
  first = true;
  for (const auto& [label, e] : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(label) + "\": {\"count\": " +
           std::to_string(e.stats.count) + ", \"total_s\": " +
           json_double(e.stats.total_s) + ", \"min_s\": " +
           json_double(e.stats.min_s) + ", \"max_s\": " +
           json_double(e.stats.max_s) + ", \"p50_s\": " +
           json_double(clamped_quantile(e, 0.50)) + ", \"p95_s\": " +
           json_double(clamped_quantile(e, 0.95)) + ", \"p99_s\": " +
           json_double(clamped_quantile(e, 0.99)) + "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"counters\": {";
  first = true;
  for (const auto& [name, v] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_double(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"roofline\": {";
  first = true;
  for (const auto& [label, r] : roofline_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(label) + "\": {\"modeled_s\": " +
           json_double(r.modeled_s) + ", \"gflops\": " +
           json_double(r.gflops) + ", \"ai_flops_per_byte\": " +
           json_double(r.ai_flops_per_byte) + ", \"pct_roofline\": " +
           json_double(r.pct_roofline) + ", \"bound\": \"" +
           json_escape(r.bound) + "\"}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void Registry::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  FCMA_CHECK(f != nullptr, "cannot open trace output file " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  FCMA_CHECK(written == json.size(), "short write to trace file " + path);
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  counters_.clear();
  gauges_.clear();
  meta_.clear();
  roofline_.clear();
}

Registry& global() {
  static Registry instance;
  return instance;
}

}  // namespace fcma::trace
