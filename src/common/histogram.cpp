#include "common/histogram.hpp"

#include <algorithm>

namespace fcma::trace {

double LatencyHistogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested sample, 1-based: p = 0 -> first, p = 1 -> last.
  const double rank = p * static_cast<double>(count_ - 1) + 1.0;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[b];
    if (static_cast<double>(cumulative) < rank) continue;
    if (b == 0) return 0.0;
    // Interpolate across the bucket's nanosecond range by the fraction of
    // the bucket's samples below the requested rank.
    const double lo = static_cast<double>(std::uint64_t{1} << (b - 1));
    const double hi = b >= 64 ? lo * 2.0
                              : static_cast<double>(std::uint64_t{1} << b);
    const double frac =
        (rank - before) / static_cast<double>(buckets_[b]);
    return (lo + (hi - lo) * std::clamp(frac, 0.0, 1.0)) * 1e-9;
  }
  return 0.0;  // unreachable when count_ > 0
}

}  // namespace fcma::trace
