// Per-thread workspace: a pool of aligned, size-bucketed scratch buffers.
//
// The FCMA hot path used to heap-allocate on every task: a count*M x N
// correlation buffer per task, a packed B^T panel per gemm call, an M x M
// kernel matrix per voxel, and private accumulators per syrk worker.  At
// paper dimensions that is thousands of malloc/free round trips per second,
// all for buffers whose sizes repeat across tasks.  Workspace::local()
// gives each thread its own arena: checkout rounds the request up to a
// power-of-two bucket, reuses a cached buffer when one is free, and the
// RAII Lease returns it on scope exit.  Steady state allocates nothing.
//
// Thread affinity: a Lease must be released on the thread that acquired it
// (every user acquires and releases within one task body, which the pool
// runs on a single worker).  Because each thread owns its arena there is no
// locking anywhere on the checkout path.
//
// NUMA: fresh buffers are first-touched on the acquiring thread, so their
// pages land on that thread's node (common/numa).  The buffer remembers the
// node; when a later pool hit hands it to a thread the OS has since migrated
// to another node, that checkout counts as a numa/remote_hit — the
// measurement behind the trace counter.  Single-node machines report 0.
#pragma once

#include <array>
#include <cstddef>

#include "common/aligned.hpp"

namespace fcma::core {

class Workspace {
 public:
  /// RAII checkout of one buffer; returns it to the owning workspace on
  /// destruction.  Movable, not copyable.  data() is 64-byte aligned and
  /// holds at least the requested element count (capacity is the bucket
  /// size); contents are uninitialized.
  class Lease {
   public:
    Lease() = default;

    Lease(Lease&& other) noexcept
        : owner_(std::exchange(other.owner_, nullptr)),
          buf_(std::move(other.buf_)) {}

    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        owner_ = std::exchange(other.owner_, nullptr);
        buf_ = std::move(other.buf_);
      }
      return *this;
    }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ~Lease() { release(); }

    [[nodiscard]] float* data() noexcept { return buf_.data(); }
    [[nodiscard]] const float* data() const noexcept { return buf_.data(); }

    /// Capacity in floats (>= the requested count).
    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

    [[nodiscard]] bool empty() const noexcept { return buf_.empty(); }

   private:
    friend class Workspace;
    Lease(Workspace* owner, AlignedBuffer<float> buf, int node)
        : owner_(owner), buf_(std::move(buf)), node_(node) {}

    void release() noexcept;

    Workspace* owner_ = nullptr;
    AlignedBuffer<float> buf_;
    int node_ = -1;  // NUMA node the buffer was first-touched on (-1 unknown)
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Checks out a buffer of at least `floats` elements (floats == 0 yields
  /// an empty lease).
  [[nodiscard]] Lease acquire(std::size_t floats);

  /// Total checkouts / checkouts served from the pool without allocating.
  [[nodiscard]] std::size_t acquires() const noexcept { return acquires_; }
  [[nodiscard]] std::size_t pool_hits() const noexcept { return hits_; }

  /// Checkouts that handed a buffer first-touched on another NUMA node to
  /// the acquiring thread (the thread migrated since the first touch).
  /// Always 0 on single-node machines.
  [[nodiscard]] std::size_t remote_hits() const noexcept {
    return remote_hits_;
  }

  /// Bytes currently cached in the free lists (leased buffers excluded).
  [[nodiscard]] std::size_t bytes_held() const noexcept { return bytes_held_; }

  /// Frees every cached buffer (outstanding leases are unaffected).
  void trim();

  /// The calling thread's arena (created on first use, lives for the
  /// thread's lifetime).
  [[nodiscard]] static Workspace& local();

 private:
  friend class Lease;

  static std::size_t bucket_of(std::size_t floats) noexcept;

  void put_back(AlignedBuffer<float> buf, int node) noexcept;

  // Bucket b caches buffers of exactly (kMinBucketFloats << b) floats.
  static constexpr std::size_t kMinBucketFloats = 256;  // 1 KiB
  static constexpr std::size_t kBucketCount = 44;
  // Free lists kept tiny: the hot paths lease at most a handful of
  // distinct sizes at once per thread.
  static constexpr std::size_t kMaxFreePerBucket = 4;

  std::array<std::array<AlignedBuffer<float>, kMaxFreePerBucket>, kBucketCount>
      free_{};
  // First-touch node of the cached buffer in the same slot of free_.
  std::array<std::array<int, kMaxFreePerBucket>, kBucketCount> free_node_{};
  std::array<std::size_t, kBucketCount> free_count_{};
  std::size_t acquires_ = 0;
  std::size_t hits_ = 0;
  std::size_t remote_hits_ = 0;
  std::size_t bytes_held_ = 0;
};

}  // namespace fcma::core
