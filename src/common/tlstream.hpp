// Timeline stream segments: continuous-profiling spill format + reader.
//
// PR 4's event rings are bounded, so a long run used to drop its newest
// events once a ring filled.  This module gives the timeline collector a
// disk lane instead: each recording thread spills its ring to per-lane
// segment files under one stream directory, and exporters (plus the live
// `fcma report --follow` tail) merge the segments back into one cross-rank
// timeline.
//
// Format (`fcma.tlstream.v1`).  A stream directory holds
//
//   lane<id>-<seq>.tls       finalized segments (rotated atomically)
//   lane<id>-<seq>.tls.part  the segment currently being appended
//   stream.done              end-of-run manifest (written via rename)
//
// Every segment is JSON-lines: one header object (schema, lane name,
// lane id, segment seq, run trace id) followed by one object per event
// (`ts`/`dur` in timeline-epoch ns, label, span id, parent span id, trace
// id).  The crash-safety argument is structural: lines are appended and
// fflush()ed in batch, a segment becomes immutable at rotation through a
// same-directory rename, and the reader treats a torn final line (a crash
// or a mid-write tail) as absent rather than as corruption — so a killed
// rank's partial `.part` segment still yields every complete line it ever
// flushed, and a reader polling mid-run can never observe a half-written
// event.  stream.done exists only after a clean finalize; its event count
// lets validators (tools/trace_check.py) prove the merge lost nothing.
//
// The writer half runs under the owning ThreadSink's mutex (timeline.cpp);
// the reader half and the SLO rule grammar are shared by the CLI report
// path and the tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fcma::trace::tlstream {

inline constexpr std::string_view kSchema = "fcma.tlstream.v1";
inline constexpr std::string_view kDoneFile = "stream.done";

/// Stream-wide configuration, shared by every lane's writer.
struct StreamConfig {
  std::string dir;                            ///< segment directory
  std::uint64_t rotate_bytes = 1ull << 20;    ///< segment rotation threshold
  std::uint64_t budget_bytes = 256ull << 20;  ///< total on-disk budget
};

/// One event to append (the writer resolves nothing; callers pass strings).
struct EventRecord {
  std::string_view label;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
};

/// Appends one lane's events to rotating segment files.  Not thread-safe:
/// the owning ThreadSink serializes calls under its own mutex.
class SegmentWriter {
 public:
  /// `used_bytes` is the stream-wide disk accounting shared across lanes;
  /// appends that would exceed `config.budget_bytes` are refused (false),
  /// which the caller must count as a dropped event.
  SegmentWriter(StreamConfig config,
                std::shared_ptr<std::atomic<std::uint64_t>> used_bytes,
                std::size_t lane_id, std::string lane_name,
                std::uint64_t trace_id);
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Appends one event line; false when the disk budget is exhausted or the
  /// segment file cannot be written (the event is lost and must be counted).
  [[nodiscard]] bool append(const EventRecord& ev);

  /// Flushes the active segment so concurrent readers see every appended
  /// line.  Called once per spill batch, not per event.
  void flush();

  /// Flushes and atomically promotes the active `.part` segment to its
  /// final name.  The next append opens a fresh segment.
  void finalize();

  [[nodiscard]] std::uint64_t events_written() const { return events_; }

 private:
  bool open_segment();
  bool write_line(const std::string& line);

  StreamConfig config_;
  std::shared_ptr<std::atomic<std::uint64_t>> used_bytes_;
  std::size_t lane_id_ = 0;
  std::string lane_name_;
  std::uint64_t trace_id_ = 0;
  std::FILE* file_ = nullptr;
  std::string part_path_;
  std::string final_path_;
  std::uint64_t seq_ = 0;
  std::uint64_t segment_bytes_ = 0;
  std::uint64_t events_ = 0;
  bool failed_ = false;  // budget exhausted or I/O error; appends refused
};

/// Writes the stream.done manifest (event totals per the writers) through a
/// temp-file + rename so a reader either sees a complete manifest or none.
void write_done_manifest(const std::string& dir, std::uint64_t trace_id,
                         std::uint64_t events, std::uint64_t dropped,
                         std::size_t lanes);

/// One event read back from a segment.
struct StreamEvent {
  std::string lane;
  std::size_t lane_id = 0;
  std::uint64_t seq = 0;  ///< segment sequence within the lane
  std::string label;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::uint64_t trace_id = 0;
};

/// A merged read of a stream directory.  The reader is deliberately
/// tolerant — torn tails are skipped, unreadable segments become warnings —
/// because it must work mid-run against files being appended; strict
/// validation lives in tools/trace_check.py.
struct StreamRead {
  std::vector<StreamEvent> events;  ///< ordered by (lane_id, seq, file order)
  bool done = false;                ///< stream.done manifest present
  std::uint64_t done_events = 0;    ///< manifest totals (when done)
  std::uint64_t done_dropped = 0;
  std::uint64_t trace_id = 0;  ///< from the first header seen
  std::size_t segments = 0;
  std::vector<std::string> warnings;
};

/// Reads every segment (final and partial) under `dir`.  Throws fcma::Error
/// only when `dir` itself cannot be listed.
[[nodiscard]] StreamRead read_stream_dir(const std::string& dir);

/// 16-digit lowercase hex of a trace id (the on-disk spelling).
[[nodiscard]] std::string trace_hex(std::uint64_t trace_id);

/// Folds per-rank span labels into rank-independent classes for the SLO /
/// percentile tables: any "worker<N>" path segment collapses to "worker",
/// so "cluster/worker3/task" and "cluster/worker7/task" share one class.
[[nodiscard]] std::string span_class_of(std::string_view label);

/// One declarative SLO rule: `<class>:p<50|95|99><<limit><ns|us|ms|s>`,
/// e.g. "cluster/task:p99<250ms".  `span_class` matches a class exactly or
/// as a trailing path suffix ("task:p99<1s" matches "cluster/task").
struct SloRule {
  std::string span_class;
  double quantile = 0.99;  ///< 0.50 / 0.95 / 0.99
  double limit_s = 0.0;
  std::string raw;  ///< original spelling, for reporting
};

/// Parses a comma-separated rule list; throws fcma::Error on bad syntax.
[[nodiscard]] std::vector<SloRule> parse_slo_rules(std::string_view spec);

/// True when `rule` governs `span_class` (exact match or path suffix).
[[nodiscard]] bool rule_matches(const SloRule& rule,
                                std::string_view span_class);

}  // namespace fcma::trace::tlstream
