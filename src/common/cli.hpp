// Tiny command-line flag parser shared by benches and examples.
//
// Supports `--flag value`, `--flag=value` and boolean `--flag`.  Unknown
// flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fcma {

/// Declarative CLI: register flags with defaults, then parse().
class Cli {
 public:
  /// `program` and `blurb` are used by the auto-generated --help text.
  Cli(std::string program, std::string blurb);

  /// Registers a string flag with a default value and help text.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv.  Returns false if --help was requested (help printed).
  /// Throws fcma::Error on unknown flags or missing values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Renders the --help text.
  [[nodiscard]] std::string help() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };

  std::string program_;
  std::string blurb_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace fcma
