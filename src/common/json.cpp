#include "common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace fcma::json {

namespace {
const Value g_null;
}

const Value& Value::at(std::string_view key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) return value;
  }
  return g_null;
}

bool Value::has(std::string_view key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw fcma::Error("JSON parse error at byte " + std::to_string(pos_) +
                      ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind_ = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind_ = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by fcma's own writers; pass them through raw).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  FCMA_CHECK(f != nullptr, "cannot open JSON file " + path);
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  FCMA_CHECK(!read_error, "I/O error reading JSON file " + path);
  return parse(text);
}

}  // namespace fcma::json
