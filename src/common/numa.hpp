// Minimal NUMA topology queries for workspace placement accounting.
//
// The container ships no libnuma, so these are raw Linux syscalls
// (`getcpu`, `get_mempolicy(MPOL_F_NODE | MPOL_F_ADDR)`) with graceful
// fallbacks: on single-node machines, non-Linux hosts, or kernels that
// refuse the calls, everything degrades to "node unknown" (-1) and the
// derived `numa/remote_hits` counter stays 0 — exactly the honest answer
// for hardware where remote accesses cannot happen or cannot be observed.
#pragma once

#include <cstddef>

namespace fcma::numa {

/// Number of possible NUMA nodes (>= 1; 1 when the topology is unknown).
[[nodiscard]] int node_count();

/// NUMA node of the CPU the calling thread is currently running on, or -1
/// when the kernel cannot say.
[[nodiscard]] int current_node();

/// First-touch node of the page holding `p`, or -1 when unknown (page not
/// yet faulted in, syscall unsupported, ...).
[[nodiscard]] int node_of(const void* p);

/// Faults every page of [p, p+bytes) in from the calling thread, so the
/// kernel's first-touch policy places the memory on that thread's node.
/// The buffer's contents afterwards are unspecified (callers treat fresh
/// workspace buffers as uninitialized anyway).
void first_touch(void* p, std::size_t bytes);

}  // namespace fcma::numa
