#include "common/timeline.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace fcma::trace {

namespace {

/// The calling thread's sink plus the generation it was registered under
/// (reset() bumps the generation; stale threads re-register lazily).
struct LocalSink {
  std::shared_ptr<ThreadSink> sink;
  std::uint64_t generation = ~std::uint64_t{0};
};
thread_local LocalSink t_local;

/// Per-thread label-intern cache; cleared on generation change so ids from
/// before a reset() never leak into the new intern table.
struct LocalInterns {
  std::unordered_map<std::string, std::uint32_t> ids;
  std::uint64_t generation = ~std::uint64_t{0};
};
thread_local LocalInterns t_interns;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with sub-ns-safe precision for Chrome's "ts"/"dur" fields.
std::string json_us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

void ThreadSink::record(std::uint32_t label, std::uint64_t start_ns,
                        std::uint64_t end_ns, bool event) {
  {
    const std::lock_guard<std::mutex> lock(agg_mutex_);
    LabelAggregate& agg = aggs_[label];
    const std::uint64_t dur_ns = end_ns - start_ns;
    agg.stats.record(static_cast<double>(dur_ns) * 1e-9);
    agg.hist.record_ns(dur_ns);
  }
  if (!event) return;
  // Single-writer publish: slot n is written before the release store of
  // n+1, so any reader that acquires published_ >= n+1 sees a complete
  // event.  Published entries are never rewritten (a full ring drops the
  // newest events and counts them instead).
  const std::uint64_t n = published_.load(std::memory_order_relaxed);
  if (n >= ring_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring_[n] = TimelineEvent{start_ns, end_ns, label};
  published_.store(n + 1, std::memory_order_release);
}

Timeline& Timeline::global() {
  // Deliberately leaked: detached/late threads may record during static
  // destruction, and an immortal collector makes that safe.
  static Timeline* instance = new Timeline();
  return *instance;
}

void Timeline::set_ring_capacity(std::size_t events) {
  const std::lock_guard<std::mutex> lock(sinks_mutex_);
  ring_capacity_ = std::max<std::size_t>(events, 16);
}

ThreadSink& Timeline::local() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_local.sink == nullptr || t_local.generation != gen) {
    const std::lock_guard<std::mutex> lock(sinks_mutex_);
    const bool collect = collect_.load(std::memory_order_relaxed);
    t_local.sink = std::make_shared<ThreadSink>(collect ? ring_capacity_ : 0);
    t_local.generation = gen;
    sinks_.push_back(t_local.sink);
  }
  return *t_local.sink;
}

std::uint32_t Timeline::intern(std::string_view label) {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_interns.generation != gen) {
    t_interns.ids.clear();
    t_interns.generation = gen;
  }
  const auto cached = t_interns.ids.find(std::string(label));
  if (cached != t_interns.ids.end()) return cached->second;
  std::uint32_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(intern_mutex_);
    const auto [it, inserted] =
        ids_.emplace(std::string(label),
                     static_cast<std::uint32_t>(names_.size()));
    if (inserted) names_.emplace_back(label);
    id = it->second;
  }
  t_interns.ids.emplace(std::string(label), id);
  return id;
}

void Timeline::name_thread(std::string_view name, int worker) {
  ThreadSink& sink = local();
  const std::lock_guard<std::mutex> lock(sink.agg_mutex_);
  sink.name_ = std::string(name);
  sink.worker_.store(worker, std::memory_order_relaxed);
}

void Timeline::flush_into(Registry& registry) {
  std::vector<std::shared_ptr<ThreadSink>> sinks;
  {
    const std::lock_guard<std::mutex> lock(sinks_mutex_);
    sinks = sinks_;
  }
  for (const auto& sink : sinks) {
    std::unordered_map<std::uint32_t, LabelAggregate> drained;
    {
      const std::lock_guard<std::mutex> lock(sink->agg_mutex_);
      drained.swap(sink->aggs_);
    }
    for (const auto& [id, agg] : drained) {
      std::string label;
      {
        const std::lock_guard<std::mutex> lock(intern_mutex_);
        label = id < names_.size() ? names_[id] : "<unknown>";
      }
      registry.merge_span(label, agg.stats, agg.hist);
    }
  }
}

std::string Timeline::chrome_json() const {
  std::vector<std::shared_ptr<ThreadSink>> sinks;
  {
    const std::lock_guard<std::mutex> lock(sinks_mutex_);
    sinks = sinks_;
  }
  struct Row {
    TimelineEvent ev;
    std::size_t tid;
  };
  std::vector<Row> rows;
  std::vector<std::string> lane_names(sinks.size());
  std::uint64_t dropped = 0;
  for (std::size_t t = 0; t < sinks.size(); ++t) {
    ThreadSink& sink = *sinks[t];
    {
      const std::lock_guard<std::mutex> lock(sink.agg_mutex_);
      lane_names[t] = sink.name_.empty()
                          ? "thread" + std::to_string(t)
                          : sink.name_;
    }
    const std::uint64_t n = sink.published_.load(std::memory_order_acquire);
    dropped += sink.dropped();
    for (std::uint64_t i = 0; i < n && i < sink.ring_.size(); ++i) {
      rows.push_back(Row{sink.ring_[i], t});
    }
  }
  // Chrome/Perfetto tolerate any order, but a time-sorted stream is what
  // tools/trace_check.py asserts (monotonic timestamps) and what makes the
  // file diffable.
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.ev.start_ns < b.ev.start_ns;
  });

  std::vector<std::string> labels;
  {
    const std::lock_guard<std::mutex> lock(intern_mutex_);
    labels = names_;
  }
  auto label_of = [&labels](std::uint32_t id) -> std::string {
    return id < labels.size() ? labels[id] : "<unknown>";
  };

  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
                    "{\"schema\": \"fcma.timeline.v1\", \"dropped_events\": " +
                    std::to_string(dropped) + "},\n\"traceEvents\": [\n";
  out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"fcma\"}}";
  for (std::size_t t = 0; t < sinks.size(); ++t) {
    out += ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(t) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
           json_escape(lane_names[t]) + "\"}}";
  }
  for (const Row& row : rows) {
    out += ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(row.tid) + ", \"name\": \"" +
           json_escape(label_of(row.ev.label)) + "\", \"ts\": " +
           json_us(row.ev.start_ns) + ", \"dur\": " +
           json_us(row.ev.end_ns - row.ev.start_ns) + "}";
  }
  out += "\n]\n}\n";
  return out;
}

void Timeline::write_chrome_json(const std::string& path) const {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  FCMA_CHECK(f != nullptr, "cannot open timeline output file " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  FCMA_CHECK(written == json.size(), "short write to timeline file " + path);
}

std::uint64_t Timeline::events_published() const {
  const std::lock_guard<std::mutex> lock(sinks_mutex_);
  std::uint64_t total = 0;
  for (const auto& sink : sinks_) {
    total += sink->published_.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t Timeline::events_dropped() const {
  const std::lock_guard<std::mutex> lock(sinks_mutex_);
  std::uint64_t total = 0;
  for (const auto& sink : sinks_) total += sink->dropped();
  return total;
}

void Timeline::reset() {
  {
    const std::lock_guard<std::mutex> lock(sinks_mutex_);
    sinks_.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(intern_mutex_);
    ids_.clear();
    names_.clear();
  }
  generation_.fetch_add(1, std::memory_order_release);
}

}  // namespace fcma::trace
