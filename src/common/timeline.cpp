#include "common/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "common/trace.hpp"

namespace fcma::trace {

namespace {

/// The calling thread's sink plus the generation it was registered under
/// (reset() bumps the generation; stale threads re-register lazily).
struct LocalSink {
  std::shared_ptr<ThreadSink> sink;
  std::uint64_t generation = ~std::uint64_t{0};
};
thread_local LocalSink t_local;

/// Per-thread label-intern cache; cleared on generation change so ids from
/// before a reset() never leak into the new intern table.
struct LocalInterns {
  std::unordered_map<std::string, std::uint32_t> ids;
  std::uint64_t generation = ~std::uint64_t{0};
};
thread_local LocalInterns t_interns;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with sub-ns-safe precision for Chrome's "ts"/"dur" fields.
std::string json_us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

void ThreadSink::record(std::uint32_t label, std::uint64_t start_ns,
                        std::uint64_t end_ns, bool event, std::uint64_t span,
                        std::uint64_t parent) {
  // One uncontended per-thread lock covers the aggregate fold AND the ring
  // publish: spill must be able to recycle ring slots, so readers snapshot
  // rings under this mutex too — the release/acquire pair on published_
  // still lets the TSan stress test's lock-free counter reads stay exact.
  const std::lock_guard<std::mutex> lock(agg_mutex_);
  {
    LabelAggregate& agg = aggs_[label];
    const std::uint64_t dur_ns = end_ns - start_ns;
    agg.stats.record(static_cast<double>(dur_ns) * 1e-9);
    agg.hist.record_ns(dur_ns);
  }
  if (!event) return;
  if (ring_.empty()) {
    // Event capture was off when this sink was created: nowhere to put the
    // event, visibly counted.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uint64_t n = published_.load(std::memory_order_relaxed);
  if (n >= ring_.size()) {
    // Full ring: spill to the stream (events keep flowing, dropped stays
    // 0), or — with no stream armed — drop the newest event, counted.
    if (spill_locked()) n = published_.load(std::memory_order_relaxed);
    if (n >= ring_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  ring_[n] = TimelineEvent{start_ns, end_ns, span, parent, label};
  published_.store(n + 1, std::memory_order_release);
}

bool ThreadSink::spill_locked(bool force) {
  const auto stream = owner_->stream_state();
  if (stream == nullptr || stream->config.dir.empty()) return false;
  if (!force && stream->finalized.load(std::memory_order_acquire)) {
    return false;
  }
  const std::uint64_t n = published_.load(std::memory_order_relaxed);
  if (n == 0) return true;  // nothing to spill: don't even open a lane
  if (writer_ == nullptr) {
    writer_ = std::make_unique<tlstream::SegmentWriter>(
        stream->config, stream->used_bytes, lane_,
        name_.empty() ? "thread" + std::to_string(lane_) : name_, run_id());
  }
  const std::vector<std::string> labels = owner_->label_names();
  bool ok = true;
  for (std::uint64_t i = 0; i < n && i < ring_.size(); ++i) {
    const TimelineEvent& ev = ring_[i];
    tlstream::EventRecord rec;
    rec.label = ev.label < labels.size() ? std::string_view(labels[ev.label])
                                         : std::string_view("<unknown>");
    rec.start_ns = ev.start_ns;
    rec.end_ns = ev.end_ns;
    rec.span = ev.span;
    rec.parent = ev.parent;
    if (writer_->append(rec)) {
      spilled_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Disk budget exhausted (or I/O failure): the event is gone, and the
      // dropped counter says so — never a silent truncation.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      ok = false;
    }
  }
  // Batch flush: concurrent --follow readers see whole lines, once per
  // spill rather than per event.
  writer_->flush();
  published_.store(0, std::memory_order_release);
  return ok;
}

Timeline& Timeline::global() {
  // Deliberately leaked: detached/late threads may record during static
  // destruction, and an immortal collector makes that safe.
  static Timeline* instance = new Timeline();
  return *instance;
}

void Timeline::set_ring_capacity(std::size_t events) {
  const std::lock_guard<std::mutex> lock(sinks_mutex_);
  ring_capacity_ = std::max<std::size_t>(events, 16);
}

void Timeline::set_stream(tlstream::StreamConfig config) {
  if (!config.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.dir, ec);
    FCMA_CHECK(!ec, "cannot create stream directory " + config.dir + ": " +
                        ec.message());
  }
  const std::lock_guard<std::mutex> lock(stream_mutex_);
  if (config.dir.empty()) {
    stream_.reset();
    return;
  }
  stream_ = std::make_shared<StreamState>();
  stream_->config = std::move(config);
}

bool Timeline::streaming() const {
  const std::lock_guard<std::mutex> lock(stream_mutex_);
  return stream_ != nullptr;
}

std::shared_ptr<Timeline::StreamState> Timeline::stream_state() const {
  const std::lock_guard<std::mutex> lock(stream_mutex_);
  return stream_;
}

std::vector<std::string> Timeline::label_names() const {
  const std::lock_guard<std::mutex> lock(intern_mutex_);
  return names_;
}

void Timeline::finalize_stream() {
  const auto stream = stream_state();
  if (stream == nullptr) return;
  if (stream->finalized.exchange(true, std::memory_order_acq_rel)) return;
  std::vector<std::shared_ptr<ThreadSink>> sinks;
  {
    const std::lock_guard<std::mutex> lock(sinks_mutex_);
    sinks = sinks_;
  }
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  std::size_t lanes = 0;
  for (const auto& sink : sinks) {
    const std::lock_guard<std::mutex> lock(sink->agg_mutex_);
    // Force: the finalized flag is already up (it exists to fence off
    // *later* spills from stale counts), but this last flush must land.
    (void)sink->spill_locked(/*force=*/true);
    if (sink->writer_ != nullptr) {
      sink->writer_->finalize();
      ++lanes;
    }
    events += sink->spilled_.load(std::memory_order_relaxed);
    dropped += sink->dropped_.load(std::memory_order_relaxed);
  }
  tlstream::write_done_manifest(stream->config.dir, run_id(), events, dropped,
                                lanes);
}

ThreadSink& Timeline::local() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_local.sink == nullptr || t_local.generation != gen) {
    const std::lock_guard<std::mutex> lock(sinks_mutex_);
    const bool collect = collect_.load(std::memory_order_relaxed);
    t_local.sink = std::make_shared<ThreadSink>(collect ? ring_capacity_ : 0,
                                                this, next_lane_++);
    t_local.generation = gen;
    sinks_.push_back(t_local.sink);
  }
  return *t_local.sink;
}

std::uint32_t Timeline::intern(std::string_view label) {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_interns.generation != gen) {
    t_interns.ids.clear();
    t_interns.generation = gen;
  }
  const auto cached = t_interns.ids.find(std::string(label));
  if (cached != t_interns.ids.end()) return cached->second;
  std::uint32_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(intern_mutex_);
    const auto [it, inserted] =
        ids_.emplace(std::string(label),
                     static_cast<std::uint32_t>(names_.size()));
    if (inserted) names_.emplace_back(label);
    id = it->second;
  }
  t_interns.ids.emplace(std::string(label), id);
  return id;
}

void Timeline::name_thread(std::string_view name, int worker) {
  ThreadSink& sink = local();
  const std::lock_guard<std::mutex> lock(sink.agg_mutex_);
  sink.name_ = std::string(name);
  sink.worker_.store(worker, std::memory_order_relaxed);
}

void Timeline::flush_into(Registry& registry) {
  std::vector<std::shared_ptr<ThreadSink>> sinks;
  {
    const std::lock_guard<std::mutex> lock(sinks_mutex_);
    sinks = sinks_;
  }
  for (const auto& sink : sinks) {
    std::unordered_map<std::uint32_t, LabelAggregate> drained;
    {
      const std::lock_guard<std::mutex> lock(sink->agg_mutex_);
      drained.swap(sink->aggs_);
    }
    for (const auto& [id, agg] : drained) {
      std::string label;
      {
        const std::lock_guard<std::mutex> lock(intern_mutex_);
        label = id < names_.size() ? names_[id] : "<unknown>";
      }
      registry.merge_span(label, agg.stats, agg.hist);
    }
  }
}

std::string Timeline::chrome_json() const {
  std::vector<std::shared_ptr<ThreadSink>> sinks;
  {
    const std::lock_guard<std::mutex> lock(sinks_mutex_);
    sinks = sinks_;
  }
  std::vector<std::string> labels;
  {
    const std::lock_guard<std::mutex> lock(intern_mutex_);
    labels = names_;
  }
  auto label_of = [&labels](std::uint32_t id) -> std::string {
    return id < labels.size() ? labels[id] : "<unknown>";
  };

  struct Row {
    std::string label;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint64_t span = 0;
    std::uint64_t parent = 0;
    std::size_t tid = 0;
  };
  std::vector<Row> rows;
  std::vector<std::string> lane_names(sinks.size());
  std::unordered_map<std::size_t, std::size_t> lane_to_tid;  // stream lane id
  std::uint64_t dropped = 0;
  const auto stream = stream_state();
  for (std::size_t t = 0; t < sinks.size(); ++t) {
    ThreadSink& sink = *sinks[t];
    const std::lock_guard<std::mutex> lock(sink.agg_mutex_);
    lane_names[t] =
        sink.name_.empty() ? "thread" + std::to_string(t) : sink.name_;
    lane_to_tid.emplace(sink.lane_, t);
    dropped += sink.dropped();
    // Ring snapshot under the sink mutex: spill recycles slots, so the
    // acquire-only protocol from PR 4 is no longer enough when streaming.
    const std::uint64_t n = sink.published_.load(std::memory_order_acquire);
    for (std::uint64_t i = 0; i < n && i < sink.ring_.size(); ++i) {
      const TimelineEvent& ev = sink.ring_[i];
      rows.push_back(Row{label_of(ev.label), ev.start_ns, ev.end_ns, ev.span,
                         ev.parent, t});
    }
    // Make every spilled line visible to the disk read below.
    if (sink.writer_ != nullptr) sink.writer_->flush();
  }

  // Merge back the spilled half.  Ring and segments are disjoint: a spill
  // moves events out of the ring, so no dedup is needed.
  if (stream != nullptr && !stream->config.dir.empty()) {
    const tlstream::StreamRead disk =
        tlstream::read_stream_dir(stream->config.dir);
    for (const tlstream::StreamEvent& ev : disk.events) {
      auto it = lane_to_tid.find(ev.lane_id);
      if (it == lane_to_tid.end()) {
        // A lane from a detached generation (or another run's leftovers in
        // the same dir): give it a fresh tid so nothing is silently merged.
        const std::size_t tid = lane_names.size();
        lane_names.push_back(ev.lane);
        it = lane_to_tid.emplace(ev.lane_id, tid).first;
      }
      rows.push_back(Row{ev.label, ev.start_ns, ev.end_ns, ev.span, ev.parent,
                         it->second});
    }
  }

  // Chrome/Perfetto tolerate any order, but a time-sorted stream is what
  // tools/trace_check.py asserts (monotonic timestamps) and what makes the
  // file diffable.
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.start_ns < b.start_ns;
  });

  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
                    "{\"schema\": \"fcma.timeline.v1\", \"dropped_events\": " +
                    std::to_string(dropped) + "},\n\"traceEvents\": [\n";
  out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"fcma\"}}";
  for (std::size_t t = 0; t < lane_names.size(); ++t) {
    out += ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(t) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
           json_escape(lane_names[t]) + "\"}}";
  }
  for (const Row& row : rows) {
    out += ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(row.tid) + ", \"name\": \"" +
           json_escape(row.label) + "\", \"ts\": " + json_us(row.start_ns) +
           ", \"dur\": " + json_us(row.end_ns - row.start_ns);
    if (row.span != 0) {
      out += ", \"args\": {\"span\": \"" + tlstream::trace_hex(row.span) +
             "\", \"parent\": \"" + tlstream::trace_hex(row.parent) + "\"}";
    }
    out += "}";
  }
  out += "\n]\n}\n";
  return out;
}

void Timeline::write_chrome_json(const std::string& path) const {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  FCMA_CHECK(f != nullptr, "cannot open timeline output file " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  FCMA_CHECK(written == json.size(), "short write to timeline file " + path);
}

std::uint64_t Timeline::events_published() const {
  const std::lock_guard<std::mutex> lock(sinks_mutex_);
  std::uint64_t total = 0;
  for (const auto& sink : sinks_) {
    total += sink->published_.load(std::memory_order_acquire);
    total += sink->spilled_.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Timeline::events_dropped() const {
  const std::lock_guard<std::mutex> lock(sinks_mutex_);
  std::uint64_t total = 0;
  for (const auto& sink : sinks_) total += sink->dropped();
  return total;
}

void Timeline::reset() {
  {
    const std::lock_guard<std::mutex> lock(sinks_mutex_);
    sinks_.clear();
    next_lane_ = 0;
  }
  {
    const std::lock_guard<std::mutex> lock(stream_mutex_);
    stream_.reset();
  }
  {
    const std::lock_guard<std::mutex> lock(intern_mutex_);
    ids_.clear();
    names_.clear();
  }
  generation_.fetch_add(1, std::memory_order_release);
}

}  // namespace fcma::trace
