// Wall-clock timing utilities used by the benchmark harness.
#pragma once

#include <chrono>

namespace fcma {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates elapsed time into a double on scope exit.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace fcma
