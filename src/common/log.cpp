#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fcma::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[fcma %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace fcma::log
