// ASCII table printer for the benchmark harness.
//
// Every bench binary reproduces one table or figure of the paper and prints
// its rows through this formatter so that all outputs look alike and are
// trivially diffable against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace fcma {

/// Column-aligned ASCII table with an optional caption.
///
/// Usage:
///   Table t("Table 5: matmul GFLOPS");
///   t.header({"impl", "function", "time (ms)", "GFLOPS"});
///   t.row({"ours", "corr gemm", Table::num(ms), Table::num(gf)});
///   t.print();
class Table {
 public:
  explicit Table(std::string caption) : caption_(std::move(caption)) {}

  /// Sets the header row; must be called before the first row().
  void header(std::vector<std::string> cells);

  /// Appends one data row; the cell count must match the header.
  void row(std::vector<std::string> cells);

  /// Formats a double with `digits` significant decimals.
  static std::string num(double v, int digits = 2);

  /// Formats an integer with thousands separators (1,234,567).
  static std::string count(long long v);

  /// Renders the table to stdout.
  void print() const;

  /// Renders the table into a string (used by tests).
  [[nodiscard]] std::string str() const;

 private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fcma
