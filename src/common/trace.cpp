#include "common/trace.hpp"

#ifndef FCMA_TRACE_DISABLED

namespace fcma::trace {

namespace detail {

std::atomic<bool> g_enabled{false};

// Per-thread span nesting path; spans push "<label>" segments separated by
// '/' on construction and pop them on destruction.
thread_local std::string t_path;

const std::string& thread_path() { return t_path; }

std::string qualified(std::string_view label) {
  if (t_path.empty()) return std::string(label);
  std::string full;
  full.reserve(t_path.size() + 1 + label.size());
  full += t_path;
  full += '/';
  full += label;
  return full;
}

}  // namespace detail

Span::Span(std::string_view label, Registry* registry) {
  if (!enabled()) return;
  registry_ = registry != nullptr ? registry : &global();
  std::string& path = detail::t_path;
  parent_len_ = path.size();
  if (!path.empty()) path += '/';
  path += label;
  label_ = path;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (registry_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  detail::t_path.resize(parent_len_);
  registry_->record_span(label_, seconds);
}

void record_span(std::string_view label, double seconds) {
  if (!enabled()) return;
  global().record_span(detail::qualified(label), seconds);
}

void count(std::string_view name, std::int64_t delta) {
  if (!enabled()) return;
  global().count(std::string(name), delta);
}

void gauge_set(std::string_view name, double value) {
  if (!enabled()) return;
  global().gauge_set(std::string(name), value);
}

void gauge_max(std::string_view name, double value) {
  if (!enabled()) return;
  global().gauge_max(std::string(name), value);
}

void meta_set(std::string_view name, std::string_view value) {
  if (!enabled()) return;
  global().meta_set(std::string(name), std::string(value));
}

}  // namespace fcma::trace

#endif  // FCMA_TRACE_DISABLED
