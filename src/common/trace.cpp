#include "common/trace.hpp"

#ifndef FCMA_TRACE_DISABLED

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <random>
#include <utility>

#include "common/error.hpp"
#include "common/timeline.hpp"

namespace fcma::trace {

namespace detail {

std::atomic<bool> g_enabled{false};

// Per-thread span nesting path; spans push "<label>" segments separated by
// '/' on construction and pop them on destruction.
thread_local std::string t_path;

// The span id currently active on this thread (0 outside spans).  Span
// ctors/dtors and ScopedParent maintain it; comm send-paths read it.
thread_local std::uint64_t t_current_span = 0;

// Span ids are process-unique and never 0 (0 means "no span").
std::atomic<std::uint64_t> g_next_span{1};

// Run trace id: drawn lazily, nonzero, replaceable for test isolation.
std::atomic<std::uint64_t> g_run_id{0};

std::uint64_t draw_run_id() {
  std::random_device rd;
  std::uint64_t id = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  id ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return id != 0 ? id : 1;
}

const std::string& thread_path() { return t_path; }

std::string qualified(std::string_view label) {
  if (t_path.empty()) return std::string(label);
  std::string full;
  full.reserve(t_path.size() + 1 + label.size());
  full += t_path;
  full += '/';
  full += label;
  return full;
}

namespace {

// Exit-dump state: armed by set_exit_dump(), fired at most once.
std::mutex g_dump_mutex;
std::string g_dump_trace_path;
std::string g_dump_timeline_path;
bool g_dump_done = false;
bool g_atexit_registered = false;

void record_to_sink(const std::string& label, std::uint64_t start_ns,
                    std::uint64_t end_ns, bool want_event,
                    std::uint64_t span = 0, std::uint64_t parent = 0) {
  Timeline& tl = Timeline::global();
  const std::uint32_t id = tl.intern(label);
  tl.local().record(id, start_ns, end_ns, want_event && tl.collect_events(),
                    span, parent);
}

}  // namespace

}  // namespace detail

void set_timeline_enabled(bool on) {
  Timeline::global().set_collect_events(on);
}

bool timeline_enabled() { return Timeline::global().collect_events(); }

std::uint64_t run_id() {
  std::uint64_t id = detail::g_run_id.load(std::memory_order_acquire);
  if (id != 0) return id;
  std::uint64_t fresh = detail::draw_run_id();
  if (detail::g_run_id.compare_exchange_strong(id, fresh,
                                               std::memory_order_acq_rel)) {
    return fresh;
  }
  return id;  // another thread won the race
}

void new_run_id() {
  detail::g_run_id.store(detail::draw_run_id(), std::memory_order_release);
}

std::uint64_t current_span() { return detail::t_current_span; }

std::uint64_t now_ns() { return Timeline::global().now_ns(); }

ScopedParent::ScopedParent(std::uint64_t parent_span)
    : saved_(detail::t_current_span) {
  detail::t_current_span = parent_span;
}

ScopedParent::~ScopedParent() { detail::t_current_span = saved_; }

void set_stream_dir(const std::string& dir, std::uint64_t budget_bytes,
                    std::uint64_t rotate_bytes) {
  tlstream::StreamConfig config;
  config.dir = dir;
  if (budget_bytes != 0) config.budget_bytes = budget_bytes;
  if (rotate_bytes != 0) config.rotate_bytes = rotate_bytes;
  Timeline::global().set_stream(std::move(config));
}

bool streaming() { return Timeline::global().streaming(); }

Span::Span(std::string_view label, Registry* registry) {
  if (!enabled()) return;
  active_ = true;
  registry_ = registry;
  std::string& path = detail::t_path;
  parent_len_ = path.size();
  if (!path.empty()) path += '/';
  path += label;
  label_ = path;
  // Become the thread's current span for the scope, so nested spans — and
  // comm messages sent from inside it — record this span as their parent.
  id_ = detail::g_next_span.fetch_add(1, std::memory_order_relaxed);
  saved_parent_ = detail::t_current_span;
  detail::t_current_span = id_;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  detail::t_path.resize(parent_len_);
  detail::t_current_span = saved_parent_;
  if (registry_ != nullptr) {
    registry_->record_span(label_,
                           std::chrono::duration<double>(end - start_).count());
    return;
  }
  Timeline& tl = Timeline::global();
  detail::record_to_sink(label_, tl.since_epoch_ns(start_),
                         tl.since_epoch_ns(end), /*want_event=*/true, id_,
                         saved_parent_);
}

void record_span(std::string_view label, double seconds) {
  if (!enabled()) return;
  // No true start time: aggregate only, anchored at "now - duration" so the
  // sink sees a consistent [start, end) pair.
  Timeline& tl = Timeline::global();
  const std::uint64_t end_ns = tl.now_ns();
  const auto dur_ns =
      static_cast<std::uint64_t>(seconds > 0.0 ? seconds * 1e9 : 0.0);
  detail::record_to_sink(detail::qualified(label),
                         end_ns > dur_ns ? end_ns - dur_ns : 0, end_ns,
                         /*want_event=*/false);
}

void record_interval(std::string_view label,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end) {
  if (!enabled()) return;
  if (end < start) end = start;
  Timeline& tl = Timeline::global();
  detail::record_to_sink(
      detail::qualified(label), tl.since_epoch_ns(start),
      tl.since_epoch_ns(end), /*want_event=*/true,
      detail::g_next_span.fetch_add(1, std::memory_order_relaxed),
      detail::t_current_span);
}

void record_interval_ns(std::string_view label, std::uint64_t start_ns,
                        std::uint64_t end_ns) {
  if (!enabled()) return;
  if (end_ns < start_ns) end_ns = start_ns;
  detail::record_to_sink(
      detail::qualified(label), start_ns, end_ns, /*want_event=*/true,
      detail::g_next_span.fetch_add(1, std::memory_order_relaxed),
      detail::t_current_span);
}

void set_thread_name(std::string_view name, int worker) {
  if (!enabled()) return;
  Timeline::global().name_thread(name, worker);
}

void flush() { Timeline::global().flush_into(global()); }

void write_timeline_json(const std::string& path) {
  Timeline::global().write_chrome_json(path);
}

void set_exit_dump(std::string trace_path, std::string timeline_path) {
  const std::lock_guard<std::mutex> lock(detail::g_dump_mutex);
  detail::g_dump_trace_path = std::move(trace_path);
  detail::g_dump_timeline_path = std::move(timeline_path);
  detail::g_dump_done = false;
  if (!detail::g_atexit_registered) {
    detail::g_atexit_registered = true;
    std::atexit([] { dump_now(); });
  }
}

void dump_now() {
  std::string trace_path;
  std::string timeline_path;
  {
    const std::lock_guard<std::mutex> lock(detail::g_dump_mutex);
    if (detail::g_dump_done) return;
    detail::g_dump_done = true;
    trace_path = detail::g_dump_trace_path;
    timeline_path = detail::g_dump_timeline_path;
  }
  const bool stream_armed = streaming();
  if (trace_path.empty() && timeline_path.empty() && !stream_armed) return;
  // May run from atexit, where an escaping exception aborts the process:
  // report write failures instead of throwing.
  try {
    flush();
    if (!trace_path.empty()) global().write_json(trace_path);
    if (!timeline_path.empty()) write_timeline_json(timeline_path);
    // A killed rank's ring tail must still land on disk: finalize the
    // stream so the master-side merged report accounts its spans.
    if (stream_armed) Timeline::global().finalize_stream();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fcma: trace exit dump failed: %s\n", e.what());
  }
}

void count(std::string_view name, std::int64_t delta) {
  if (!enabled()) return;
  global().count(std::string(name), delta);
}

void gauge_set(std::string_view name, double value) {
  if (!enabled()) return;
  global().gauge_set(std::string(name), value);
}

void gauge_max(std::string_view name, double value) {
  if (!enabled()) return;
  global().gauge_max(std::string(name), value);
}

void meta_set(std::string_view name, std::string_view value) {
  if (!enabled()) return;
  global().meta_set(std::string(name), std::string(value));
}

}  // namespace fcma::trace

#endif  // FCMA_TRACE_DISABLED
