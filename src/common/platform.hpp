// Platform and micro-architecture detection for FCMA kernels.
//
// FCMA's optimized kernels are written three times: an AVX-512 path, an
// AVX2+FMA path, and a portable scalar path.  This header centralizes the
// compile-time dispatch so that every kernel shares a single notion of the
// native SIMD width.
#pragma once

#include <cstddef>

#if defined(__AVX512F__)
#define FCMA_HAVE_AVX512 1
#else
#define FCMA_HAVE_AVX512 0
#endif

#if defined(__AVX2__) && defined(__FMA__)
#define FCMA_HAVE_AVX2 1
#else
#define FCMA_HAVE_AVX2 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define FCMA_FORCE_INLINE inline __attribute__((always_inline))
#define FCMA_RESTRICT __restrict__
#else
#define FCMA_FORCE_INLINE inline
#define FCMA_RESTRICT
#endif

namespace fcma {

/// Cache line size assumed by the blocking heuristics and by the cache
/// simulator.  64 bytes holds for every x86 part including the Xeon Phi
/// 5110P modeled in this repository.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Alignment used for all numeric buffers.  64-byte alignment satisfies
/// AVX-512 loads and keeps rows cache-line aligned.
inline constexpr std::size_t kDefaultAlignment = 64;

/// Number of single-precision lanes in the widest SIMD unit this build
/// targets.  The Xeon Phi VPU the paper targets is 16-wide; modern AVX-512
/// hosts match it, AVX2 hosts are 8-wide.
inline constexpr std::size_t kNativeSimdWidthF32 =
#if FCMA_HAVE_AVX512
    16;
#elif FCMA_HAVE_AVX2
    8;
#else
    4;  // assume at least SSE-class vectorization by the compiler
#endif

}  // namespace fcma
