#include "common/workspace.hpp"

#include <bit>

#include "common/error.hpp"
#include "common/trace.hpp"

namespace fcma::core {

void Workspace::Lease::release() noexcept {
  if (owner_ != nullptr && !buf_.empty()) {
    owner_->put_back(std::move(buf_));
  }
  owner_ = nullptr;
}

std::size_t Workspace::bucket_of(std::size_t floats) noexcept {
  const std::size_t units =
      (floats + kMinBucketFloats - 1) / kMinBucketFloats;
  return std::bit_width(std::bit_ceil(units)) - 1;
}

Workspace::Lease Workspace::acquire(std::size_t floats) {
  if (floats == 0) return {};
  if (acquires_ == 0 && trace::enabled()) {
    // Workspaces are thread-local, so every pool hit is NUMA-node-local by
    // construction.  Seed the remote-hit counter at 0 so traces state that
    // explicitly (and so a future cross-thread handoff path has a counter
    // to increment rather than a silently absent key).
    trace::count("numa/remote_hits", 0);
  }
  ++acquires_;
  const std::size_t b = bucket_of(floats);
  FCMA_ASSERT(b < kBucketCount);
  if (free_count_[b] > 0) {
    ++hits_;
    AlignedBuffer<float> buf = std::move(free_[b][--free_count_[b]]);
    bytes_held_ -= buf.size() * sizeof(float);
    if (trace::enabled()) trace::count("workspace/pool_hits");
    return Lease(this, std::move(buf));
  }
  if (trace::enabled()) trace::count("workspace/pool_misses");
  return Lease(this, AlignedBuffer<float>(kMinBucketFloats << b));
}

void Workspace::put_back(AlignedBuffer<float> buf) noexcept {
  const std::size_t b = bucket_of(buf.size());
  if (b < kBucketCount && free_count_[b] < kMaxFreePerBucket &&
      (kMinBucketFloats << b) == buf.size()) {
    bytes_held_ += buf.size() * sizeof(float);
    free_[b][free_count_[b]++] = std::move(buf);
    if (trace::enabled()) {
      trace::gauge_max("workspace/bytes_held",
                       static_cast<double>(bytes_held_));
    }
  }
  // Otherwise the buffer simply frees here.
}

void Workspace::trim() {
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    for (std::size_t i = 0; i < free_count_[b]; ++i) {
      free_[b][i] = AlignedBuffer<float>();
    }
    free_count_[b] = 0;
  }
  bytes_held_ = 0;
}

Workspace& Workspace::local() {
  thread_local Workspace workspace;
  return workspace;
}

}  // namespace fcma::core
