#include "common/workspace.hpp"

#include <bit>

#include "common/error.hpp"
#include "common/numa.hpp"
#include "common/trace.hpp"

namespace fcma::core {

void Workspace::Lease::release() noexcept {
  if (owner_ != nullptr && !buf_.empty()) {
    owner_->put_back(std::move(buf_), node_);
  }
  owner_ = nullptr;
}

std::size_t Workspace::bucket_of(std::size_t floats) noexcept {
  const std::size_t units =
      (floats + kMinBucketFloats - 1) / kMinBucketFloats;
  return std::bit_width(std::bit_ceil(units)) - 1;
}

Workspace::Lease Workspace::acquire(std::size_t floats) {
  if (floats == 0) return {};
  if (acquires_ == 0 && trace::enabled()) {
    // Seed the counter at 0 so single-node traces state "no remote hits"
    // explicitly rather than with a silently absent key.
    trace::count("numa/remote_hits", 0);
  }
  ++acquires_;
  const std::size_t b = bucket_of(floats);
  FCMA_ASSERT(b < kBucketCount);
  if (free_count_[b] > 0) {
    ++hits_;
    AlignedBuffer<float> buf = std::move(free_[b][--free_count_[b]]);
    const int node = free_node_[b][free_count_[b]];
    bytes_held_ -= buf.size() * sizeof(float);
    if (trace::enabled()) trace::count("workspace/pool_hits");
    // Remote hit: the buffer's pages live on the node the arena's thread
    // first-touched them on, but the OS has since migrated the thread
    // elsewhere — every access through this lease crosses the interconnect.
    const int here = numa::current_node();
    if (node >= 0 && here >= 0 && node != here) {
      ++remote_hits_;
      if (trace::enabled()) trace::count("numa/remote_hits");
    }
    return Lease(this, std::move(buf), node);
  }
  if (trace::enabled()) trace::count("workspace/pool_misses");
  AlignedBuffer<float> buf(kMinBucketFloats << b);
  // First-touch on the acquiring thread pins the pages to its current node
  // (first-touch placement), then record where they landed.
  numa::first_touch(buf.data(), buf.size() * sizeof(float));
  const int node = numa::node_of(buf.data());
  return Lease(this, std::move(buf), node);
}

void Workspace::put_back(AlignedBuffer<float> buf, int node) noexcept {
  const std::size_t b = bucket_of(buf.size());
  if (b < kBucketCount && free_count_[b] < kMaxFreePerBucket &&
      (kMinBucketFloats << b) == buf.size()) {
    bytes_held_ += buf.size() * sizeof(float);
    free_node_[b][free_count_[b]] = node;
    free_[b][free_count_[b]++] = std::move(buf);
    if (trace::enabled()) {
      trace::gauge_max("workspace/bytes_held",
                       static_cast<double>(bytes_held_));
    }
  }
  // Otherwise the buffer simply frees here.
}

void Workspace::trim() {
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    for (std::size_t i = 0; i < free_count_[b]; ++i) {
      free_[b][i] = AlignedBuffer<float>();
    }
    free_count_[b] = 0;
  }
  bytes_held_ = 0;
}

Workspace& Workspace::local() {
  thread_local Workspace workspace;
  return workspace;
}

}  // namespace fcma::core
