// Timeline collector: sharded per-thread span sinks + lock-free event rings.
//
// PR 1's trace layer funnels every span through one registry mutex — fine at
// stage granularity, hostile once the work-stealing scheduler (PR 3) records
// a busy span per task across every worker.  This layer removes the global
// mutex from the span hot path and adds the two things an aggregate registry
// cannot answer: *when* did each span run (a timeline), and *how are span
// latencies distributed* (percentiles).
//
// Sharding.  Each recording thread owns one ThreadSink, registered with the
// process-wide Timeline on first use and kept alive past thread exit (a
// cluster worker's spans survive the worker).  A sink holds
//
//   * a label-keyed aggregate map (SpanStats + LatencyHistogram) guarded by
//     the sink's own mutex — only the owner writes, so the lock is
//     uncontended until trace::flush() drains every shard into the global
//     Registry at export;
//   * a lock-free single-writer event ring: the owner publishes
//     TimelineEvents with a release store of the publish counter, readers
//     snapshot with an acquire load.  Filled rings drop the *newest* events
//     (counted), keeping published entries immutable forever.
//
// Span labels are interned to 32-bit ids through a per-thread cache, so the
// steady-state record path touches no process-wide lock at all.
//
// Event collection (the ring half) is off unless set_collect_events(true) —
// `fcma analyze --trace-timeline` — because rings cost memory per thread;
// aggregate collection runs whenever tracing is enabled.  Rings are sized
// at sink creation, so enable event capture *before* the recording threads
// first record (a thread whose sink predates the switch drops its events,
// visibly, into the dropped counter).  chrome_json() exports the merged,
// time-sorted timeline in Chrome-trace / Perfetto JSON ("chrome://tracing",
// https://ui.perfetto.dev), one lane per recording thread, named via
// set_thread_name() (scheduler workers, cluster ranks).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/histogram.hpp"
#include "common/metrics.hpp"

namespace fcma::trace {

/// One completed span occurrence: [start_ns, end_ns) since the collector's
/// process epoch, with its interned label.
struct TimelineEvent {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t label = 0;
};

/// Per-label aggregate carried by each sink shard.
struct LabelAggregate {
  SpanStats stats;
  LatencyHistogram hist;
};

/// One thread's shard: written only by the owning thread.
class ThreadSink {
 public:
  /// `ring_capacity` of 0 disables event storage for this sink (aggregates
  /// still collect; attempted events count as dropped).
  explicit ThreadSink(std::size_t ring_capacity) { ring_.resize(ring_capacity); }

  /// Records one span occurrence: always folds the duration into the
  /// aggregate shard; appends a timeline event only when `event` is set.
  void record(std::uint32_t label, std::uint64_t start_ns,
              std::uint64_t end_ns, bool event);

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class Timeline;

  std::vector<TimelineEvent> ring_;
  std::atomic<std::uint64_t> published_{0};  // events visible to readers
  std::atomic<std::uint64_t> dropped_{0};    // events lost to a full ring
  std::atomic<std::int32_t> worker_{-1};     // scheduler worker id, if any

  std::mutex agg_mutex_;  // guards aggs_ and name_
  std::unordered_map<std::uint32_t, LabelAggregate> aggs_;
  std::string name_;
};

/// Process-wide sink registry, label interner, and timeline exporter.
class Timeline {
 public:
  /// The process-wide instance (immortal: never destroyed, so worker
  /// threads outliving main() can still record safely).
  [[nodiscard]] static Timeline& global();

  /// Turns event-ring collection on/off (aggregates are always collected).
  void set_collect_events(bool on) {
    collect_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool collect_events() const {
    return collect_.load(std::memory_order_relaxed);
  }

  /// Ring capacity (events per thread) for sinks created afterwards.
  void set_ring_capacity(std::size_t events);

  /// The calling thread's sink (registered on first use, re-registered
  /// after reset()).
  [[nodiscard]] ThreadSink& local();

  /// Interns `label`, returning its stable 32-bit id.  Per-thread cache:
  /// the global intern table is touched once per (thread, label).
  [[nodiscard]] std::uint32_t intern(std::string_view label);

  /// Names the calling thread's timeline lane (e.g. "sched/worker3") and
  /// optionally tags its scheduler-worker id.
  void name_thread(std::string_view name, int worker = -1);

  /// Nanoseconds since the collector's epoch for a steady_clock instant.
  [[nodiscard]] std::uint64_t since_epoch_ns(
      std::chrono::steady_clock::time_point tp) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
            .count());
  }
  [[nodiscard]] std::uint64_t now_ns() const {
    return since_epoch_ns(std::chrono::steady_clock::now());
  }

  /// Drains every sink's aggregate shard into `registry` (the shards are
  /// emptied; re-flushing adds nothing).  Events stay in their rings.
  void flush_into(Registry& registry);

  /// Chrome-trace JSON of every published event, sorted by start time, one
  /// pid=1 lane per recording thread plus thread_name metadata.
  [[nodiscard]] std::string chrome_json() const;

  /// Writes chrome_json() to `path` (throws fcma::Error on I/O failure).
  void write_chrome_json(const std::string& path) const;

  /// Total events published / dropped across every sink.
  [[nodiscard]] std::uint64_t events_published() const;
  [[nodiscard]] std::uint64_t events_dropped() const;

  /// Detaches every sink and starts a new generation: live threads get a
  /// fresh sink on their next record.  Test isolation only.
  void reset();

 private:
  Timeline() : epoch_(std::chrono::steady_clock::now()) {}

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> collect_{false};
  std::atomic<std::uint64_t> generation_{0};

  mutable std::mutex sinks_mutex_;  // guards sinks_ and ring_capacity_
  std::vector<std::shared_ptr<ThreadSink>> sinks_;
  std::size_t ring_capacity_ = 1u << 16;

  mutable std::mutex intern_mutex_;  // guards ids_ and names_
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace fcma::trace
