// Timeline collector: sharded per-thread span sinks + lock-free event rings.
//
// PR 1's trace layer funnels every span through one registry mutex — fine at
// stage granularity, hostile once the work-stealing scheduler (PR 3) records
// a busy span per task across every worker.  This layer removes the global
// mutex from the span hot path and adds the two things an aggregate registry
// cannot answer: *when* did each span run (a timeline), and *how are span
// latencies distributed* (percentiles).
//
// Sharding.  Each recording thread owns one ThreadSink, registered with the
// process-wide Timeline on first use and kept alive past thread exit (a
// cluster worker's spans survive the worker).  A sink holds
//
//   * a label-keyed aggregate map (SpanStats + LatencyHistogram) guarded by
//     the sink's own mutex — only the owner writes, so the lock is
//     uncontended until trace::flush() drains every shard into the global
//     Registry at export;
//   * a lock-free single-writer event ring: the owner publishes
//     TimelineEvents with a release store of the publish counter, readers
//     snapshot with an acquire load.  Filled rings drop the *newest* events
//     (counted), keeping published entries immutable forever.
//
// Span labels are interned to 32-bit ids through a per-thread cache, so the
// steady-state record path touches no process-wide lock at all.
//
// Event collection (the ring half) is off unless set_collect_events(true) —
// `fcma analyze --trace-timeline` — because rings cost memory per thread;
// aggregate collection runs whenever tracing is enabled.  Rings are sized
// at sink creation, so enable event capture *before* the recording threads
// first record (a thread whose sink predates the switch drops its events,
// visibly, into the dropped counter).  chrome_json() exports the merged,
// time-sorted timeline in Chrome-trace / Perfetto JSON ("chrome://tracing",
// https://ui.perfetto.dev), one lane per recording thread, named via
// set_thread_name() (scheduler workers, cluster ranks).
//
// Continuous profiling (PR 9).  set_stream() arms incremental spill: a ring
// that fills no longer drops its newest events — the owning thread spills
// the ring to its per-lane fcma.tlstream.v1 segment files (tlstream.hpp)
// and keeps recording, so `dropped_events` stays 0 for as long as the disk
// budget holds.  Ring publish moves inside the sink's (per-thread,
// uncontended) mutex so spill can recycle ring slots without tearing a
// reader's snapshot; chrome_json() merges the on-disk segments back with
// whatever is still in the rings.  finalize_stream() flushes every ring
// tail to disk and publishes the stream.done manifest — it runs from the
// crash-safe exit dump too, so a fault-killed rank's spans still reach the
// merged report.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/histogram.hpp"
#include "common/metrics.hpp"
#include "common/tlstream.hpp"

namespace fcma::trace {

/// One completed span occurrence: [start_ns, end_ns) since the collector's
/// process epoch, with its interned label and span-context ids (0 = none):
/// `span` identifies this occurrence, `parent` the span it ran under —
/// possibly on another rank, via the comm-piggybacked context.
struct TimelineEvent {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::uint32_t label = 0;
};

/// Per-label aggregate carried by each sink shard.
struct LabelAggregate {
  SpanStats stats;
  LatencyHistogram hist;
};

class Timeline;

/// One thread's shard: written only by the owning thread.
class ThreadSink {
 public:
  /// `ring_capacity` of 0 disables event storage for this sink (aggregates
  /// still collect; attempted events count as dropped).  `lane` is the
  /// sink's stable stream-lane id; `owner` resolves labels and stream
  /// configuration at spill time.
  ThreadSink(std::size_t ring_capacity, Timeline* owner, std::size_t lane)
      : owner_(owner), lane_(lane) {
    ring_.resize(ring_capacity);
  }

  /// Records one span occurrence: always folds the duration into the
  /// aggregate shard; appends a timeline event only when `event` is set.
  /// A full ring spills to the stream (when armed) or counts a drop.
  void record(std::uint32_t label, std::uint64_t start_ns,
              std::uint64_t end_ns, bool event, std::uint64_t span = 0,
              std::uint64_t parent = 0);

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class Timeline;

  /// Spills every published ring event to this lane's segment files and
  /// recycles the ring.  Caller holds agg_mutex_.  False when streaming is
  /// not armed (or already finalized, unless `force`) or the disk budget
  /// refused the events.
  bool spill_locked(bool force = false);

  Timeline* owner_ = nullptr;
  std::size_t lane_ = 0;
  std::vector<TimelineEvent> ring_;
  std::atomic<std::uint64_t> published_{0};  // events visible to readers
  std::atomic<std::uint64_t> spilled_{0};    // events moved to segment files
  std::atomic<std::uint64_t> dropped_{0};    // events lost to a full ring
  std::atomic<std::int32_t> worker_{-1};     // scheduler worker id, if any

  std::mutex agg_mutex_;  // guards aggs_, name_, writer_, and ring recycling
  std::unordered_map<std::uint32_t, LabelAggregate> aggs_;
  std::string name_;
  std::unique_ptr<tlstream::SegmentWriter> writer_;
};

/// Process-wide sink registry, label interner, and timeline exporter.
class Timeline {
 public:
  /// The process-wide instance (immortal: never destroyed, so worker
  /// threads outliving main() can still record safely).
  [[nodiscard]] static Timeline& global();

  /// Turns event-ring collection on/off (aggregates are always collected).
  void set_collect_events(bool on) {
    collect_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool collect_events() const {
    return collect_.load(std::memory_order_relaxed);
  }

  /// Ring capacity (events per thread) for sinks created afterwards.
  void set_ring_capacity(std::size_t events);

  /// Arms incremental spill: full rings stream to per-lane segment files
  /// under `config.dir` instead of dropping events.  Arm before the
  /// recording threads start; an empty dir disarms (new spills drop again).
  void set_stream(tlstream::StreamConfig config);
  [[nodiscard]] bool streaming() const;

  /// Flushes every sink's remaining ring events to its segment files,
  /// finalizes the active segments, and publishes the stream.done manifest.
  /// Idempotent per run; no-op when streaming is not armed.  Runs from the
  /// crash-safe exit dump, so a killed worker's partial lane still lands.
  void finalize_stream();

  /// The calling thread's sink (registered on first use, re-registered
  /// after reset()).
  [[nodiscard]] ThreadSink& local();

  /// Interns `label`, returning its stable 32-bit id.  Per-thread cache:
  /// the global intern table is touched once per (thread, label).
  [[nodiscard]] std::uint32_t intern(std::string_view label);

  /// Names the calling thread's timeline lane (e.g. "sched/worker3") and
  /// optionally tags its scheduler-worker id.
  void name_thread(std::string_view name, int worker = -1);

  /// Nanoseconds since the collector's epoch for a steady_clock instant.
  [[nodiscard]] std::uint64_t since_epoch_ns(
      std::chrono::steady_clock::time_point tp) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
            .count());
  }
  [[nodiscard]] std::uint64_t now_ns() const {
    return since_epoch_ns(std::chrono::steady_clock::now());
  }

  /// Drains every sink's aggregate shard into `registry` (the shards are
  /// emptied; re-flushing adds nothing).  Events stay in their rings.
  void flush_into(Registry& registry);

  /// Chrome-trace JSON of every published event, sorted by start time, one
  /// pid=1 lane per recording thread plus thread_name metadata.
  [[nodiscard]] std::string chrome_json() const;

  /// Writes chrome_json() to `path` (throws fcma::Error on I/O failure).
  void write_chrome_json(const std::string& path) const;

  /// Total events captured (still in rings + spilled to segments) /
  /// dropped across every sink.
  [[nodiscard]] std::uint64_t events_published() const;
  [[nodiscard]] std::uint64_t events_dropped() const;

  /// Detaches every sink and starts a new generation: live threads get a
  /// fresh sink on their next record.  Test isolation only.
  void reset();

 private:
  friend class ThreadSink;

  /// Stream-wide spill state shared by every lane writer.
  struct StreamState {
    tlstream::StreamConfig config;
    std::shared_ptr<std::atomic<std::uint64_t>> used_bytes =
        std::make_shared<std::atomic<std::uint64_t>>(0);
    /// Set once the done manifest is out: later spills drop (counted) so
    /// the manifest's event total stays the truth about the segments.
    std::atomic<bool> finalized{false};
  };

  Timeline() : epoch_(std::chrono::steady_clock::now()) {}

  /// Snapshot of the stream state (null when not armed).  Lock-ordering
  /// leaf: stream_mutex_ is never held while taking another mutex.
  [[nodiscard]] std::shared_ptr<StreamState> stream_state() const;

  /// Copy of the intern table, for spill-time label resolution.
  [[nodiscard]] std::vector<std::string> label_names() const;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> collect_{false};
  std::atomic<std::uint64_t> generation_{0};

  mutable std::mutex sinks_mutex_;  // guards sinks_, ring_capacity_, lanes_
  std::vector<std::shared_ptr<ThreadSink>> sinks_;
  std::size_t ring_capacity_ = 1u << 16;
  std::size_t next_lane_ = 0;

  mutable std::mutex stream_mutex_;  // guards stream_
  std::shared_ptr<StreamState> stream_;

  mutable std::mutex intern_mutex_;  // guards ids_ and names_
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace fcma::trace
