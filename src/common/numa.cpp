#include "common/numa.hpp"

#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>

// From <linux/mempolicy.h>, which not every toolchain sysroot carries.
#ifndef MPOL_F_NODE
#define MPOL_F_NODE (1 << 0)
#endif
#ifndef MPOL_F_ADDR
#define MPOL_F_ADDR (1 << 1)
#endif
#endif  // __linux__

namespace fcma::numa {

namespace {

int read_node_count() {
#if defined(__linux__)
  // "possible" is a range list like "0" or "0-3"; the highest id bounds the
  // node count.  Missing file (pre-NUMA kernels) means a single node.
  std::FILE* f = std::fopen("/sys/devices/system/node/possible", "re");
  if (f == nullptr) return 1;
  char buf[64] = {};
  const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (got == 0) return 1;
  int highest = 0;
  int value = -1;
  for (const char* p = buf; *p != '\0'; ++p) {
    if (*p >= '0' && *p <= '9') {
      value = (value < 0 ? 0 : value * 10) + (*p - '0');
    } else {
      if (value > highest) highest = value;
      value = -1;
    }
  }
  if (value > highest) highest = value;
  return highest + 1;
#else
  return 1;
#endif
}

}  // namespace

int node_count() {
  static const int count = read_node_count();
  return count;
}

int current_node() {
#if defined(__linux__)
  unsigned cpu = 0;
  unsigned node = 0;
  if (syscall(SYS_getcpu, &cpu, &node, nullptr) != 0) return -1;
  return static_cast<int>(node);
#else
  return -1;
#endif
}

int node_of(const void* p) {
#if defined(__linux__)
  int node = -1;
  if (syscall(SYS_get_mempolicy, &node, nullptr, 0UL, p,
              MPOL_F_NODE | MPOL_F_ADDR) != 0) {
    return -1;
  }
  return node;
#else
  (void)p;
  return -1;
#endif
}

void first_touch(void* p, std::size_t bytes) {
  if (p == nullptr || bytes == 0) return;
  constexpr std::size_t kPage = 4096;
  auto* bytes_p = static_cast<unsigned char*>(p);
  for (std::size_t off = 0; off < bytes; off += kPage) bytes_p[off] = 0;
  bytes_p[bytes - 1] = 0;
}

}  // namespace fcma::numa
