// Log-bucketed latency histogram: fixed-footprint percentile tracking.
//
// The trace layer's SpanStats answer "how much total time", but the paper's
// load-balance story (§3.1.1, Table 3) and any straggler diagnosis need the
// *distribution* of span latencies — a handful of slow SVM voxels can hide
// behind a healthy mean.  LatencyHistogram buckets durations by power-of-two
// nanoseconds (bucket b counts durations whose nanosecond value has bit
// width b), which covers 1 ns .. ~290 years in 64 fixed counters with a
// worst-case quantile error of one octave, tightened by linear interpolation
// inside the winning bucket.  Recording is one bit-scan plus one increment;
// merging is 64 additions — cheap enough to keep one histogram per span
// label per thread and merge shards at export (see common/timeline.hpp).
#pragma once

#include <bit>
#include <cstdint>

#include <array>

namespace fcma::trace {

class LatencyHistogram {
 public:
  // Bucket b holds durations whose nanosecond count has bit width b:
  // bucket 0 is exactly {0 ns}, bucket b >= 1 covers [2^(b-1), 2^b - 1].
  static constexpr std::size_t kBuckets = 65;  // bit_width ranges 0..64

  /// Folds one duration into the histogram (negative clamps to zero).
  void record_seconds(double seconds) { record_ns(to_ns(seconds)); }

  void record_ns(std::uint64_t ns) {
    ++buckets_[bucket_of(ns)];
    ++count_;
  }

  /// Accumulates every bucket of `other` into this histogram.
  void merge(const LatencyHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const {
    return buckets_[b];
  }

  /// Quantile estimate in seconds for p in [0, 1]: finds the bucket holding
  /// the rank-p sample and interpolates linearly across the bucket's
  /// nanosecond range.  Returns 0 for an empty histogram.  Callers that
  /// track exact min/max (SpanStats) should clamp the estimate to them.
  [[nodiscard]] double quantile(double p) const;

  void reset() {
    buckets_.fill(0);
    count_ = 0;
  }

  /// Bucket index of a nanosecond duration: bit width of ns (0 for ns==0).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns) {
    return static_cast<std::size_t>(std::bit_width(ns));
  }

  [[nodiscard]] static std::uint64_t to_ns(double seconds) {
    if (seconds <= 0.0) return 0;
    const double ns = seconds * 1e9;
    if (ns >= 9.2e18) return ~std::uint64_t{0} >> 1;  // clamp, no UB
    return static_cast<std::uint64_t>(ns);
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

}  // namespace fcma::trace
