#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace fcma {

Cli::Cli(std::string program, std::string blurb)
    : program_(std::move(program)), blurb_(std::move(blurb)) {}

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  FCMA_CHECK(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, help, std::nullopt};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    FCMA_CHECK(arg.rfind("--", 0) == 0, "unexpected positional arg: " + arg);
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    bool have_value = false;
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(arg);
    FCMA_CHECK(it != flags_.end(), "unknown flag: --" + arg);
    if (!have_value) {
      const bool is_bool = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (is_bool) {
        value = "true";
      } else {
        FCMA_CHECK(i + 1 < argc, "missing value for --" + arg);
        value = argv[++i];
      }
    }
    it->second.value = value;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  FCMA_CHECK(it != flags_.end(), "flag not registered: " + name);
  return it->second.value.value_or(it->second.default_value);
}

long long Cli::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string Cli::help() const {
  std::ostringstream os;
  os << program_ << " — " << blurb_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_value << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace fcma
