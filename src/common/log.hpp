// Minimal leveled logger.
//
// The library itself logs nothing by default; examples and benches raise the
// level to Info to narrate progress.  Logging goes through a single mutex so
// multi-threaded examples produce readable output.
#pragma once

#include <sstream>
#include <string>

namespace fcma::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void set_level(Level level);
[[nodiscard]] Level level();

/// Emits one line at `level` (thread safe, appends '\n').
void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace fcma::log
