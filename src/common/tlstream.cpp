#include "common/tlstream.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "common/json.hpp"

namespace fcma::trace::tlstream {

namespace fs = std::filesystem;

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string u64(std::uint64_t v) {
  return std::to_string(static_cast<unsigned long long>(v));
}

}  // namespace

std::string trace_hex(std::uint64_t trace_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

SegmentWriter::SegmentWriter(
    StreamConfig config, std::shared_ptr<std::atomic<std::uint64_t>> used_bytes,
    std::size_t lane_id, std::string lane_name, std::uint64_t trace_id)
    : config_(std::move(config)),
      used_bytes_(std::move(used_bytes)),
      lane_id_(lane_id),
      lane_name_(std::move(lane_name)),
      trace_id_(trace_id) {}

SegmentWriter::~SegmentWriter() { finalize(); }

bool SegmentWriter::open_segment() {
  const std::string stem = config_.dir + "/lane" + std::to_string(lane_id_) +
                           "-" + std::to_string(seq_) + ".tls";
  part_path_ = stem + ".part";
  final_path_ = stem;
  file_ = std::fopen(part_path_.c_str(), "w");
  if (file_ == nullptr) {
    failed_ = true;
    return false;
  }
  segment_bytes_ = 0;
  const std::string header =
      std::string("{\"schema\": \"") + std::string(kSchema) +
      "\", \"lane\": \"" + json_escape(lane_name_) +
      "\", \"lane_id\": " + std::to_string(lane_id_) +
      ", \"seq\": " + u64(seq_) + ", \"trace\": \"" + trace_hex(trace_id_) +
      "\"}\n";
  return write_line(header);
}

bool SegmentWriter::write_line(const std::string& line) {
  // Budget check first: a refused line leaves the shared accounting and the
  // file untouched, so the caller's dropped counter stays exact.
  const std::uint64_t before =
      used_bytes_->fetch_add(line.size(), std::memory_order_relaxed);
  if (before + line.size() > config_.budget_bytes) {
    used_bytes_->fetch_sub(line.size(), std::memory_order_relaxed);
    failed_ = true;
    return false;
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    used_bytes_->fetch_sub(line.size(), std::memory_order_relaxed);
    failed_ = true;
    return false;
  }
  segment_bytes_ += line.size();
  return true;
}

bool SegmentWriter::append(const EventRecord& ev) {
  if (failed_) return false;
  if (file_ == nullptr && !open_segment()) return false;
  std::string line;
  line.reserve(96 + ev.label.size());
  line += "{\"ts\": ";
  line += u64(ev.start_ns);
  line += ", \"dur\": ";
  line += u64(ev.end_ns - ev.start_ns);
  line += ", \"label\": \"";
  line += json_escape(ev.label);
  line += "\", \"span\": ";
  line += u64(ev.span);
  line += ", \"parent\": ";
  line += u64(ev.parent);
  line += ", \"trace\": \"";
  line += trace_hex(trace_id_);
  line += "\"}\n";
  if (!write_line(line)) return false;
  ++events_;
  if (segment_bytes_ >= config_.rotate_bytes) finalize();
  return true;
}

void SegmentWriter::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void SegmentWriter::finalize() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  // Same-directory rename: the segment appears under its final name with
  // every line intact or not at all — readers never see a renamed torn file.
  if (std::rename(part_path_.c_str(), final_path_.c_str()) != 0) {
    // The .part stays readable in place; rotation just didn't promote it.
    failed_ = failed_ || false;
  }
  ++seq_;
}

void write_done_manifest(const std::string& dir, std::uint64_t trace_id,
                         std::uint64_t events, std::uint64_t dropped,
                         std::size_t lanes) {
  const std::string tmp = dir + "/" + std::string(kDoneFile) + ".part";
  const std::string final_path = dir + "/" + std::string(kDoneFile);
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  FCMA_CHECK(f != nullptr, "cannot write stream manifest " + tmp);
  const std::string body =
      std::string("{\"schema\": \"") + std::string(kSchema) +
      "\", \"done\": true, \"trace\": \"" + trace_hex(trace_id) +
      "\", \"events\": " + u64(events) + ", \"dropped\": " + u64(dropped) +
      ", \"lanes\": " + std::to_string(lanes) + "}\n";
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  FCMA_CHECK(written == body.size(), "short write to stream manifest " + tmp);
  FCMA_CHECK(std::rename(tmp.c_str(), final_path.c_str()) == 0,
             "cannot publish stream manifest " + final_path);
}

namespace {

std::uint64_t parse_hex(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

struct SegmentFile {
  fs::path path;
  bool partial = false;
};

/// Parses one segment into `out.events`; returns false (with a warning) when
/// the header is unusable.  Torn or malformed event lines are skipped: a
/// final line without '\n' is an in-flight append, anything else malformed
/// gets a warning so validators can distinguish corruption from a tail.
bool read_segment(const fs::path& path, StreamRead& out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) {
    out.warnings.push_back("unreadable segment " + path.string());
    return false;
  }
  std::string text;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    text.append(buf, n);
    if (n < sizeof(buf)) break;
  }
  std::fclose(f);

  std::string lane;
  std::size_t lane_id = 0;
  std::uint64_t seq = 0;
  std::uint64_t trace_id = 0;
  bool have_header = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail: an in-flight append
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    json::Value v;
    try {
      v = json::parse(line);
    } catch (const Error&) {
      out.warnings.push_back("malformed line in " + path.string());
      continue;
    }
    if (!have_header) {
      if (v.at("schema").as_string() != kSchema) {
        out.warnings.push_back("bad segment header in " + path.string());
        return false;
      }
      lane = v.at("lane").as_string();
      lane_id = static_cast<std::size_t>(v.at("lane_id").as_number());
      seq = static_cast<std::uint64_t>(v.at("seq").as_number());
      trace_id = parse_hex(v.at("trace").as_string());
      if (out.trace_id == 0) out.trace_id = trace_id;
      have_header = true;
      continue;
    }
    StreamEvent ev;
    ev.lane = lane;
    ev.lane_id = lane_id;
    ev.seq = seq;
    ev.label = v.at("label").as_string();
    ev.start_ns = static_cast<std::uint64_t>(v.at("ts").as_number());
    ev.end_ns = ev.start_ns + static_cast<std::uint64_t>(
                                  v.at("dur").as_number());
    ev.span = static_cast<std::uint64_t>(v.at("span").as_number());
    ev.parent = static_cast<std::uint64_t>(v.at("parent").as_number());
    ev.trace_id = parse_hex(v.at("trace").as_string());
    out.events.push_back(std::move(ev));
  }
  if (!have_header) {
    out.warnings.push_back("segment without header " + path.string());
    return false;
  }
  return true;
}

}  // namespace

StreamRead read_stream_dir(const std::string& dir) {
  StreamRead out;
  std::error_code ec;
  FCMA_CHECK(fs::is_directory(dir, ec), "not a stream directory: " + dir);
  std::vector<SegmentFile> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("lane", 0) != 0) continue;
    if (name.size() >= 4 && name.substr(name.size() - 4) == ".tls") {
      files.push_back(SegmentFile{entry.path(), false});
    } else if (name.size() >= 9 &&
               name.substr(name.size() - 9) == ".tls.part") {
      files.push_back(SegmentFile{entry.path(), true});
    }
  }
  // Lexicographic path order is a stable pre-sort; the authoritative order
  // is (lane_id, seq) from the headers, applied after parsing.
  std::sort(files.begin(), files.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.path.string() < b.path.string();
            });
  for (const SegmentFile& file : files) {
    if (read_segment(file.path, out)) ++out.segments;
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     if (a.lane_id != b.lane_id) return a.lane_id < b.lane_id;
                     return a.seq < b.seq;
                   });

  const fs::path done = fs::path(dir) / std::string(kDoneFile);
  if (fs::exists(done, ec)) {
    try {
      const json::Value v = json::parse_file(done.string());
      if (v.at("schema").as_string() == kSchema) {
        out.done = true;
        out.done_events =
            static_cast<std::uint64_t>(v.at("events").as_number());
        out.done_dropped =
            static_cast<std::uint64_t>(v.at("dropped").as_number());
        if (out.trace_id == 0) {
          out.trace_id = parse_hex(v.at("trace").as_string());
        }
      }
    } catch (const Error&) {
      out.warnings.push_back("unreadable stream.done manifest");
    }
  }
  return out;
}

std::string span_class_of(std::string_view label) {
  std::string out;
  out.reserve(label.size());
  std::size_t pos = 0;
  while (pos <= label.size()) {
    const std::size_t slash = label.find('/', pos);
    const std::string_view seg =
        label.substr(pos, slash == std::string_view::npos ? std::string_view::npos
                                                          : slash - pos);
    bool folded = false;
    if (seg.size() > 6 && seg.substr(0, 6) == "worker") {
      folded = true;
      for (const char c : seg.substr(6)) {
        if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
          folded = false;
          break;
        }
      }
    }
    if (!out.empty()) out += '/';
    out += folded ? std::string_view("worker") : seg;
    if (slash == std::string_view::npos) break;
    pos = slash + 1;
  }
  return out;
}

std::vector<SloRule> parse_slo_rules(std::string_view spec) {
  std::vector<SloRule> rules;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view raw = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (raw.empty()) continue;
    const std::size_t colon = raw.rfind(':');
    FCMA_CHECK(colon != std::string_view::npos && colon > 0,
               "SLO rule needs '<class>:p<q><<limit>': " + std::string(raw));
    SloRule rule;
    rule.raw = std::string(raw);
    rule.span_class = std::string(raw.substr(0, colon));
    std::string_view rest = raw.substr(colon + 1);
    FCMA_CHECK(!rest.empty() && rest[0] == 'p',
               "SLO rule quantile must be p50/p95/p99: " + std::string(raw));
    const std::size_t lt = rest.find('<');
    FCMA_CHECK(lt != std::string_view::npos,
               "SLO rule needs '<' before its limit: " + std::string(raw));
    const std::string q(rest.substr(1, lt - 1));
    if (q == "50") {
      rule.quantile = 0.50;
    } else if (q == "95") {
      rule.quantile = 0.95;
    } else if (q == "99") {
      rule.quantile = 0.99;
    } else {
      raise("SLO rule quantile must be p50/p95/p99: " + std::string(raw));
    }
    const std::string limit(rest.substr(lt + 1));
    char* end = nullptr;
    const double value = std::strtod(limit.c_str(), &end);
    FCMA_CHECK(end != limit.c_str() && value >= 0.0,
               "bad SLO limit: " + std::string(raw));
    const std::string unit(end);
    double scale = 0.0;
    if (unit == "s") {
      scale = 1.0;
    } else if (unit == "ms") {
      scale = 1e-3;
    } else if (unit == "us") {
      scale = 1e-6;
    } else if (unit == "ns") {
      scale = 1e-9;
    } else {
      raise("SLO limit unit must be ns/us/ms/s: " + std::string(raw));
    }
    rule.limit_s = value * scale;
    rules.push_back(std::move(rule));
  }
  return rules;
}

bool rule_matches(const SloRule& rule, std::string_view span_class) {
  if (span_class == rule.span_class) return true;
  // Path-suffix match: "task:p99<1s" governs "cluster/task".
  if (span_class.size() > rule.span_class.size() + 1 &&
      span_class.substr(span_class.size() - rule.span_class.size()) ==
          rule.span_class &&
      span_class[span_class.size() - rule.span_class.size() - 1] == '/') {
    return true;
  }
  return false;
}

}  // namespace fcma::trace::tlstream
