// Deterministic random number generation.
//
// Everything stochastic in this repository (synthetic fMRI data, SVM test
// problems, property-test sweeps) is seeded through Rng so that every test,
// bench and example is reproducible bit-for-bit across runs.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace fcma {

/// xoshiro256** PRNG with a splitmix64 seeding sequence.
///
/// Chosen over std::mt19937 because its state is tiny (matters when each of
/// thousands of simulated voxels carries its own stream) and its output is
/// identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Scale a 53-bit uniform; the bias is < 2^-40 for every n used in this
    // codebase (all far below 2^32).
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
  }

  /// Standard normal deviate via Box-Muller (no cached spare: keeps the
  /// generator state a pure function of the draw count).
  double gaussian() noexcept {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Gaussian with explicit mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Derives an independent stream for substream `n` (per-voxel streams).
  [[nodiscard]] Rng fork(std::uint64_t n) const noexcept {
    Rng child(state_[0] ^ (0xD2B74407B1CE6E93ull * (n + 1)));
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace fcma
