// RAII buffer with cache-line alignment.
//
// All numeric working sets in FCMA (voxel matrices, correlation blocks,
// kernel matrices) are allocated through AlignedBuffer so that SIMD loads
// never straddle cache lines and the blocking arithmetic in the optimized
// kernels can assume line-aligned rows.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

#include "common/platform.hpp"

namespace fcma {

/// Owning, movable, 64-byte-aligned array of trivially-copyable T.
///
/// Unlike std::vector this never default-constructs elements on resize and
/// guarantees the alignment required by the AVX-512 kernels.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer only supports trivially copyable types");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { reset(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Discards contents and reallocates for `count` elements (uninitialized).
  void reset(std::size_t count) {
    release();
    if (count == 0) return;
    const std::size_t bytes =
        round_up(count * sizeof(T), kDefaultAlignment);
    void* p = std::aligned_alloc(kDefaultAlignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    data_ = static_cast<T*>(p);
    size_ = count;
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, size_};
  }

 private:
  static std::size_t round_up(std::size_t v, std::size_t a) noexcept {
    return (v + a - 1) / a * a;
  }

  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace fcma
