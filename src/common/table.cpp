#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace fcma {

void Table::header(std::vector<std::string> cells) {
  FCMA_CHECK(rows_.empty(), "Table::header must precede rows");
  header_ = std::move(cells);
}

void Table::row(std::vector<std::string> cells) {
  FCMA_CHECK(header_.empty() || cells.size() == header_.size(),
             "Table row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::count(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&width](const std::vector<std::string>& cells) {
    if (width.size() < cells.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  os << "== " << caption_ << " ==\n";
  auto emit = [&os, &width](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ") << cells[i]
         << std::string(width[i] - cells[i].size(), ' ');
    }
    os << " |\n";
  };
  auto rule = [&os, &width] {
    for (std::size_t w : width) os << "+" << std::string(w + 2, '-');
    os << "+\n";
  };
  if (!header_.empty()) {
    rule();
    emit(header_);
  }
  rule();
  for (const auto& r : rows_) emit(r);
  rule();
  return os.str();
}

void Table::print() const {
  const std::string s = str();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace fcma
