// Thread-safe metrics registry: span statistics, counters, and gauges.
//
// This is the aggregation substrate of the fcma::trace layer (trace.hpp).
// A Registry holds four label-keyed families:
//
//   spans     — duration aggregates (count / total / min / max seconds plus
//               a log-bucketed latency histogram for p50/p95/p99), fed by
//               trace::Span RAII timers, record_span() directly, or merged
//               from the per-thread timeline shards at trace::flush();
//   counters  — monotonically adjusted signed integers (messages, bytes,
//               tasks executed, SVM iterations, ...);
//   gauges    — last-or-max point-in-time values (queue depth, ...);
//   roofline  — per-kernel roofline attributions (modeled time, arithmetic
//               intensity, % of the machine roofline) attached by the
//               memsim-instrumented paths (see archsim/roofline.hpp).
//
// All mutation goes through one mutex.  That is fine for the families that
// record at *stage* granularity (counters, gauges, direct record_span), but
// the per-task span hot path does NOT come here anymore: trace::Span records
// into the calling thread's timeline shard (common/timeline.hpp) and the
// shards merge into this registry via merge_span() at export.  The
// process-wide instance is trace::global(); tests construct their own.
//
// Read semantics: span(), counter(), gauge(), span_quantile() and meta() on
// a name that was never recorded return a zero value (empty string for
// meta) and do NOT insert the name — lookups never grow the registry or
// change its exported JSON.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"

namespace fcma::trace {

/// Aggregate of every duration recorded under one span label.
struct SpanStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;

  void record(double seconds) {
    if (count == 0 || seconds < min_s) min_s = seconds;
    if (count == 0 || seconds > max_s) max_s = seconds;
    total_s += seconds;
    ++count;
  }

  /// Folds another aggregate into this one.
  void merge(const SpanStats& other) {
    if (other.count == 0) return;
    if (count == 0 || other.min_s < min_s) min_s = other.min_s;
    if (count == 0 || other.max_s > max_s) max_s = other.max_s;
    total_s += other.total_s;
    count += other.count;
  }
};

/// Roofline attribution of one kernel/stage (archsim::roofline_point()).
struct RooflineStats {
  double modeled_s = 0.0;          ///< modeled execution time on the machine
  double gflops = 0.0;             ///< achieved GFLOPS under the model
  double ai_flops_per_byte = 0.0;  ///< FLOPs per byte moved from memory
  double pct_roofline = 0.0;       ///< achieved / roof(AI), in percent
  std::string bound;               ///< "compute" or "memory"
};

/// Label-keyed holder of span aggregates, counters, gauges, and rooflines.
class Registry {
 public:
  /// Folds one duration into the aggregate (and histogram) for `label`.
  void record_span(const std::string& label, double seconds);

  /// Merges a pre-aggregated shard (stats + histogram) into `label` — the
  /// export path of the per-thread timeline sinks.
  void merge_span(const std::string& label, const SpanStats& stats,
                  const LatencyHistogram& hist);

  /// Adjusts the counter `name` by `delta` (creating it at zero).
  void count(const std::string& name, std::int64_t delta = 1);

  /// Sets the gauge `name` to `value`.
  void gauge_set(const std::string& name, double value);

  /// Raises the gauge `name` to `value` if larger (high-water mark).
  void gauge_max(const std::string& name, double value);

  /// Sets the run-metadata string `name` (ISA in use, host name, ...).
  void meta_set(const std::string& name, const std::string& value);

  /// Attaches the roofline attribution for `label` (last write wins).
  void roofline_set(const std::string& label, const RooflineStats& stats);

  // Reads return zero values for unknown names and never insert (see the
  // header comment).
  [[nodiscard]] SpanStats span(const std::string& label) const;
  /// Latency quantile estimate for `label`, clamped to the recorded
  /// [min_s, max_s]; 0 when the label has no samples.
  [[nodiscard]] double span_quantile(const std::string& label,
                                     double p) const;
  [[nodiscard]] std::int64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] std::string meta(const std::string& name) const;
  [[nodiscard]] RooflineStats roofline(const std::string& label) const;
  [[nodiscard]] std::vector<std::string> span_labels() const;

  /// Serializes everything as one JSON object — schema `fcma.trace.v2`.
  /// Every v1 field is preserved; v2 adds the per-span p50_s/p95_s/p99_s
  /// quantiles and the "roofline" section:
  ///   {"schema": "fcma.trace.v2",
  ///    "meta": {"<name>": "<value>", ...},
  ///    "spans": {"<label>": {"count": C, "total_s": T, "min_s": m,
  ///              "max_s": M, "p50_s": q50, "p95_s": q95, "p99_s": q99},
  ///              ...},
  ///    "counters": {"<name>": N, ...},
  ///    "gauges": {"<name>": V, ...},
  ///    "roofline": {"<label>": {"modeled_s": S, "gflops": G,
  ///                 "ai_flops_per_byte": I, "pct_roofline": P,
  ///                 "bound": "compute|memory"}, ...}}
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path` (throws fcma::Error on I/O failure).
  void write_json(const std::string& path) const;

  /// Drops every recorded value (labels included).
  void reset();

 private:
  struct SpanEntry {
    SpanStats stats;
    LatencyHistogram hist;
  };

  [[nodiscard]] static double clamped_quantile(const SpanEntry& entry,
                                               double p);

  mutable std::mutex mutex_;
  std::map<std::string, SpanEntry> spans_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::string> meta_;
  std::map<std::string, RooflineStats> roofline_;
};

/// The process-wide registry every production span/counter reports to.
[[nodiscard]] Registry& global();

}  // namespace fcma::trace
