// Thread-safe metrics registry: span statistics, counters, and gauges.
//
// This is the aggregation substrate of the fcma::trace layer (trace.hpp).
// A Registry holds three label-keyed families:
//
//   spans     — duration aggregates (count / total / min / max seconds),
//               fed by trace::Span RAII timers or record_span() directly;
//   counters  — monotonically adjusted signed integers (messages, bytes,
//               tasks executed, SVM iterations, ...);
//   gauges    — last-or-max point-in-time values (queue depth, ...).
//
// All mutation goes through one mutex: the layer records at *stage*
// granularity (a pipeline stage, a thread-pool task, a cluster message),
// where a lock per record is noise next to the work being measured.  The
// process-wide instance is trace::global(); tests construct their own.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace fcma::trace {

/// Aggregate of every duration recorded under one span label.
struct SpanStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;

  void record(double seconds) {
    if (count == 0 || seconds < min_s) min_s = seconds;
    if (count == 0 || seconds > max_s) max_s = seconds;
    total_s += seconds;
    ++count;
  }
};

/// Label-keyed holder of span aggregates, counters, and gauges.
class Registry {
 public:
  /// Folds one duration into the aggregate for `label`.
  void record_span(const std::string& label, double seconds);

  /// Adjusts the counter `name` by `delta` (creating it at zero).
  void count(const std::string& name, std::int64_t delta = 1);

  /// Sets the gauge `name` to `value`.
  void gauge_set(const std::string& name, double value);

  /// Raises the gauge `name` to `value` if larger (high-water mark).
  void gauge_max(const std::string& name, double value);

  /// Sets the run-metadata string `name` (ISA in use, host name, ...).
  void meta_set(const std::string& name, const std::string& value);

  [[nodiscard]] SpanStats span(const std::string& label) const;
  [[nodiscard]] std::int64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] std::string meta(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> span_labels() const;

  /// Serializes everything as one JSON object:
  ///   {"schema": "fcma.trace.v1",
  ///    "meta": {"<name>": "<value>", ...},
  ///    "spans": {"<label>": {"count": C, "total_s": T, "min_s": m,
  ///              "max_s": M}, ...},
  ///    "counters": {"<name>": N, ...},
  ///    "gauges": {"<name>": V, ...}}
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path` (throws fcma::Error on I/O failure).
  void write_json(const std::string& path) const;

  /// Drops every recorded value (labels included).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, SpanStats> spans_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::string> meta_;
};

/// The process-wide registry every production span/counter reports to.
[[nodiscard]] Registry& global();

}  // namespace fcma::trace
