// Structured tracing: RAII spans + cheap counter/gauge helpers.
//
// Tracing answers the question the whole paper is built on (§3.3, Tables
// 1/5-8): *where* do the time and events of an analysis go, per stage?
// Every pipeline stage, thread-pool task, cluster message and blocked
// kernel reports here when tracing is on; `fcma analyze --trace out.json`
// and the bench MetricsSidecar export the aggregate.
//
// Label hierarchy.  A Span opened while another Span is active *on the same
// thread* records under "<parent>/<label>", so one analyze run aggregates
// e.g. "task", "task/correlation", "task/correlation/gemm_nt",
// "task/svm", ... — a static call-tree profile.  Threads root their own
// hierarchy (a pool worker's spans are not children of the submitter's).
//
// Recording path.  Spans bound to the global registry do NOT take the
// registry mutex: they record into the calling thread's timeline shard
// (common/timeline.hpp) and the shards merge into the registry at flush()
// — which every exporter (CLI --trace dump, bench MetricsSidecar) calls
// before serializing.  Readers of trace::global() mid-run must flush()
// first or they will not see span aggregates recorded since the last
// flush.  Spans given an explicit Registry record into it directly.
//
// Timelines.  set_timeline_enabled(true) additionally captures each span
// occurrence as a timestamped event in the shard's lock-free ring;
// write_timeline_json() exports the merged Chrome-trace timeline
// (`fcma analyze --trace-timeline out.json`).
//
// Crash safety.  set_exit_dump() arms an idempotent dump (flush + write of
// the configured --trace/--trace-timeline outputs) that the CLI fires from
// its fcma::Error handler and an atexit backstop, so a run that dies
// mid-pipeline still leaves its trace on disk.
//
// Kill switches.  Runtime: tracing is *off* by default; when off, every
// helper is one relaxed atomic load + branch, so instrumented hot paths
// (the blocked kernels run millions of times in benches) pay nothing
// measurable.  Compile time: configure with -DFCMA_TRACE=OFF (defines
// FCMA_TRACE_DISABLED) and every helper collapses to an inline no-op.
//
// Distributed correlation (PR 9).  Every process run carries one trace id
// (run_id()) and every Span an id unique within the process; the span
// active on the calling thread is current_span().  Cluster comm stamps
// {run_id, current_span} onto each outgoing message, and the receiver
// adopts the sender's span as parent via ScopedParent — so a worker's task
// spans stitch causally under the master's dispatch spans in the merged
// timeline, across ranks.  set_stream_dir() arms continuous profiling
// (timeline rings spill to fcma.tlstream.v1 segments instead of dropping);
// dump_now() finalizes the stream too, so a fault-killed rank's partial
// lane still reaches the master-side merged report.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/metrics.hpp"

namespace fcma::trace {

#ifndef FCMA_TRACE_DISABLED

namespace detail {
extern std::atomic<bool> g_enabled;
/// Current span path of the calling thread ("" outside any span).
[[nodiscard]] const std::string& thread_path();
/// Prefixes `label` with the calling thread's span path.
[[nodiscard]] std::string qualified(std::string_view label);
}  // namespace detail

/// Turns the runtime switch on/off (off at process start).
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// True when tracing is recording.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns per-event timeline capture on/off (implies nothing about the main
/// switch: aggregates need enabled(), events need both).
void set_timeline_enabled(bool on);
[[nodiscard]] bool timeline_enabled();

/// The process run's trace id: one nonzero 64-bit id per run, lazily drawn,
/// shared by every rank (ranks are threads) and stamped on every stream
/// segment and comm message.
[[nodiscard]] std::uint64_t run_id();

/// Draws a fresh run id (test isolation; a new CLI invocation gets a fresh
/// id automatically by being a new process).
void new_run_id();

/// The span id currently active on the calling thread (0 outside spans and
/// while tracing is disabled).  This is what comm send-paths capture as the
/// remote parent.
[[nodiscard]] std::uint64_t current_span();

/// Nanoseconds since the timeline epoch (one epoch per process, so ranks'
/// timestamps compare directly).  0 when tracing is compiled out.
[[nodiscard]] std::uint64_t now_ns();

/// Adopts `parent_span` (typically a remote rank's span id, from a comm
/// message) as the calling thread's current span for this scope: spans and
/// intervals recorded inside parent to it, stitching the cross-rank edge.
class ScopedParent {
 public:
  explicit ScopedParent(std::uint64_t parent_span);
  ~ScopedParent();

  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  std::uint64_t saved_ = 0;
};

/// Arms continuous profiling: timeline rings spill to fcma.tlstream.v1
/// segment files under `dir` (empty disarms).  0 keeps a default budget /
/// rotation threshold.  Arm before recording threads start.
void set_stream_dir(const std::string& dir, std::uint64_t budget_bytes = 0,
                    std::uint64_t rotate_bytes = 0);
[[nodiscard]] bool streaming();

/// RAII span: times its scope and folds the duration into the registry
/// under the nesting-qualified label.  No-op while tracing is disabled.
class Span {
 public:
  /// Opens a span against `registry`; by default the span records into the
  /// calling thread's timeline shard, which merges into the global
  /// registry at flush().
  explicit Span(std::string_view label, Registry* registry = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's process-unique id (0 when tracing was off at
  /// construction).  Valid for the span's whole lifetime — comm send-paths
  /// read it through current_span() while the span is open.
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  Registry* registry_ = nullptr;  // non-null = explicit-registry direct path
  bool active_ = false;           // false = disabled at construction
  std::size_t parent_len_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t saved_parent_ = 0;  // current_span() to restore at close
  std::string label_;               // full nesting-qualified label
  std::chrono::steady_clock::time_point start_;
};

/// Records one duration under the nesting-qualified `label` without the
/// RAII scope — for callers that time disjoint pieces themselves (e.g. the
/// fused correlate+normalize stage separating its two halves).  Aggregates
/// only: with no true start time there is no timeline event.
void record_span(std::string_view label, double seconds);

/// Records one span occurrence with its true wall-clock interval — the
/// timestamped cousin of record_span() for callers that already hold both
/// endpoints (scheduler worker busy periods).  Emits a timeline event when
/// timeline capture is on.
void record_interval(std::string_view label,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end);

/// record_interval() with timeline-epoch endpoints the caller already holds
/// in ns — e.g. a comm flight time [ctx.sent_ns, recv now_ns()], whose
/// start was stamped on another rank.
void record_interval_ns(std::string_view label, std::uint64_t start_ns,
                        std::uint64_t end_ns);

/// Names the calling thread's timeline lane (e.g. "sched/worker3") and
/// optionally tags its scheduler-worker id.  No-op while tracing is
/// disabled.
void set_thread_name(std::string_view name, int worker = -1);

/// Drains every per-thread shard into the global registry.  Call before
/// reading span aggregates from trace::global() or exporting its JSON.
void flush();

/// Writes the Chrome-trace timeline JSON to `path` (throws fcma::Error on
/// I/O failure).
void write_timeline_json(const std::string& path);

/// Arms the idempotent exit dump: dump_now() — and an atexit backstop —
/// will flush() and write the global registry JSON to `trace_path` and/or
/// the timeline JSON to `timeline_path` (empty = skip that output).
void set_exit_dump(std::string trace_path, std::string timeline_path);

/// Fires the armed exit dump once; later calls (and the atexit backstop)
/// are no-ops.  Safe to call with nothing armed.
void dump_now();

/// Counter/gauge helpers against the global registry; no-ops when disabled.
/// Names are used verbatim (no nesting prefix): counters are process-wide
/// totals, not call-tree nodes.
void count(std::string_view name, std::int64_t delta = 1);
void gauge_set(std::string_view name, double value);
void gauge_max(std::string_view name, double value);

/// Attaches a run-metadata string (e.g. "simd/isa" -> "avx512") to the
/// global registry's exported JSON.  No-op while tracing is disabled.
void meta_set(std::string_view name, std::string_view value);

#else  // FCMA_TRACE_DISABLED: everything collapses to no-ops.

inline void set_enabled(bool) {}
[[nodiscard]] constexpr bool enabled() { return false; }
inline void set_timeline_enabled(bool) {}
[[nodiscard]] constexpr bool timeline_enabled() { return false; }
[[nodiscard]] constexpr std::uint64_t run_id() { return 0; }
inline void new_run_id() {}
[[nodiscard]] constexpr std::uint64_t current_span() { return 0; }
[[nodiscard]] constexpr std::uint64_t now_ns() { return 0; }

class ScopedParent {
 public:
  explicit ScopedParent(std::uint64_t) {}
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;
};

inline void set_stream_dir(const std::string&, std::uint64_t = 0,
                           std::uint64_t = 0) {}
[[nodiscard]] constexpr bool streaming() { return false; }

class Span {
 public:
  explicit Span(std::string_view, Registry* = nullptr) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  [[nodiscard]] constexpr std::uint64_t id() const { return 0; }
};

inline void record_span(std::string_view, double) {}
inline void record_interval(std::string_view,
                            std::chrono::steady_clock::time_point,
                            std::chrono::steady_clock::time_point) {}
inline void record_interval_ns(std::string_view, std::uint64_t,
                               std::uint64_t) {}
inline void set_thread_name(std::string_view, int = -1) {}
inline void flush() {}
inline void write_timeline_json(const std::string&) {}
inline void set_exit_dump(std::string, std::string) {}
inline void dump_now() {}
inline void count(std::string_view, std::int64_t = 1) {}
inline void gauge_set(std::string_view, double) {}
inline void gauge_max(std::string_view, double) {}
inline void meta_set(std::string_view, std::string_view) {}

#endif  // FCMA_TRACE_DISABLED

}  // namespace fcma::trace
