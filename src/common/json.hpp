// Minimal JSON reader for fcma's own trace files.
//
// `fcma report --trace-in run.json` re-reads what `--trace` wrote, and the
// container ships no JSON library — so this is a small recursive-descent
// parser of standard JSON (RFC 8259: objects, arrays, strings with the
// usual escapes, numbers, true/false/null).  It is a *reader for trusted,
// self-produced files*: inputs are parsed strictly (trailing garbage or
// malformed syntax throw fcma::Error with a byte offset), but the API
// favours convenience over schema enforcement — lookups on the wrong kind
// return empty/zero values instead of throwing, so report code can probe
// optional sections ("roofline" may be absent in a v1 file) without
// ceremony.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fcma::json {

/// One parsed JSON value; a tree of these represents the document.
class Value {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::Number), num_(n) {}
  explicit Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }

  /// Loose accessors: wrong-kind reads return the zero value.
  [[nodiscard]] bool as_bool() const { return kind_ == Kind::Bool && bool_; }
  [[nodiscard]] double as_number() const {
    return kind_ == Kind::Number ? num_ : 0.0;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  /// Object lookup; a shared Null value for missing keys / non-objects.
  [[nodiscard]] const Value& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;
  /// Object members in document order (empty for non-objects).
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const {
    return object_;
  }
  /// Array elements (empty for non-arrays).
  [[nodiscard]] const std::vector<Value>& elements() const { return array_; }
  [[nodiscard]] std::size_t size() const {
    return kind_ == Kind::Array ? array_.size() : object_.size();
  }

 private:
  friend class Parser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses a complete JSON document (throws fcma::Error on malformed input
/// or trailing non-whitespace).
[[nodiscard]] Value parse(std::string_view text);

/// Reads and parses the file at `path` (throws fcma::Error on I/O or
/// syntax failure).
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace fcma::json
