#include "fmri/volume.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <unordered_set>

namespace fcma::fmri {

BrainMask::BrainMask(VolumeGeometry geometry,
                     const std::vector<bool>& in_brain)
    : geometry_(geometry) {
  FCMA_CHECK(in_brain.size() == geometry.size(),
             "mask grid size mismatch");
  grid_to_mask_.assign(geometry.size(), -1);
  for (std::size_t g = 0; g < in_brain.size(); ++g) {
    if (in_brain[g]) {
      grid_to_mask_[g] = static_cast<std::int64_t>(mask_to_grid_.size());
      mask_to_grid_.push_back(static_cast<std::uint32_t>(g));
    }
  }
  FCMA_CHECK(!mask_to_grid_.empty(), "mask contains no brain voxels");
}

BrainMask BrainMask::ellipsoid(VolumeGeometry geometry, double fill) {
  FCMA_CHECK(fill > 0.0 && fill <= 1.0, "fill must be in (0,1]");
  std::vector<bool> in_brain(geometry.size(), false);
  const double cx = (geometry.nx - 1) / 2.0;
  const double cy = (geometry.ny - 1) / 2.0;
  const double cz = (geometry.nz - 1) / 2.0;
  const double rx = std::max(0.5, fill * geometry.nx / 2.0);
  const double ry = std::max(0.5, fill * geometry.ny / 2.0);
  const double rz = std::max(0.5, fill * geometry.nz / 2.0);
  for (int z = 0; z < geometry.nz; ++z) {
    for (int y = 0; y < geometry.ny; ++y) {
      for (int x = 0; x < geometry.nx; ++x) {
        const double dx = (x - cx) / rx;
        const double dy = (y - cy) / ry;
        const double dz = (z - cz) / rz;
        if (dx * dx + dy * dy + dz * dz <= 1.0) {
          in_brain[geometry.index_of(Coord{x, y, z})] = true;
        }
      }
    }
  }
  return BrainMask(geometry, in_brain);
}

std::int64_t BrainMask::mask_index(const Coord& c) const {
  if (!geometry_.contains(c)) return -1;
  return grid_to_mask_[geometry_.index_of(c)];
}

std::vector<RoiCluster> find_clusters(
    const BrainMask& mask, std::span<const std::uint32_t> selected,
    std::size_t min_size) {
  // Membership lookup for the selected set.
  std::unordered_set<std::uint32_t> pending(selected.begin(), selected.end());
  for (const std::uint32_t v : selected) {
    FCMA_CHECK(v < mask.voxels(), "selected voxel outside the mask");
  }

  static constexpr int kNeighbors[6][3] = {{1, 0, 0},  {-1, 0, 0},
                                           {0, 1, 0},  {0, -1, 0},
                                           {0, 0, 1},  {0, 0, -1}};
  std::vector<RoiCluster> clusters;
  // Deterministic seed order: ascending mask index.
  std::vector<std::uint32_t> seeds(selected.begin(), selected.end());
  std::sort(seeds.begin(), seeds.end());
  for (const std::uint32_t seed : seeds) {
    if (!pending.count(seed)) continue;
    RoiCluster cluster;
    std::deque<std::uint32_t> frontier{seed};
    pending.erase(seed);
    while (!frontier.empty()) {
      const std::uint32_t v = frontier.front();
      frontier.pop_front();
      cluster.voxels.push_back(v);
      const Coord c = mask.coord(v);
      for (const auto& d : kNeighbors) {
        const Coord nc{c.x + d[0], c.y + d[1], c.z + d[2]};
        const std::int64_t nm = mask.mask_index(nc);
        if (nm < 0) continue;
        const auto nv = static_cast<std::uint32_t>(nm);
        if (pending.erase(nv) > 0) frontier.push_back(nv);
      }
    }
    if (cluster.voxels.size() < min_size) continue;
    std::sort(cluster.voxels.begin(), cluster.voxels.end());
    // Centroid + peak (member closest to the centroid).
    double sx = 0.0;
    double sy = 0.0;
    double sz = 0.0;
    for (const std::uint32_t v : cluster.voxels) {
      const Coord c = mask.coord(v);
      sx += c.x;
      sy += c.y;
      sz += c.z;
    }
    const auto n = static_cast<double>(cluster.voxels.size());
    cluster.centroid_x = sx / n;
    cluster.centroid_y = sy / n;
    cluster.centroid_z = sz / n;
    double best = std::numeric_limits<double>::infinity();
    for (const std::uint32_t v : cluster.voxels) {
      const Coord c = mask.coord(v);
      const double dx = c.x - cluster.centroid_x;
      const double dy = c.y - cluster.centroid_y;
      const double dz = c.z - cluster.centroid_z;
      const double dist = dx * dx + dy * dy + dz * dz;
      if (dist < best) {
        best = dist;
        cluster.peak = c;
      }
    }
    clusters.push_back(std::move(cluster));
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const RoiCluster& a, const RoiCluster& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.voxels.front() < b.voxels.front();
            });
  return clusters;
}

}  // namespace fcma::fmri
