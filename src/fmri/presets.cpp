#include "fmri/presets.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fcma::fmri {

DatasetSpec DatasetSpec::scaled_voxels(double factor) const {
  FCMA_CHECK(factor > 0.0 && factor <= 1.0, "scale factor must be in (0,1]");
  DatasetSpec s = *this;
  s.voxels = std::max<std::size_t>(
      64, static_cast<std::size_t>(std::llround(voxels * factor)));
  s.informative = std::max<std::size_t>(
      8, static_cast<std::size_t>(std::llround(informative * factor)));
  s.informative = std::min(s.informative, s.voxels / 4);
  s.name = name + "-x" + std::to_string(factor);
  return s;
}

DatasetSpec DatasetSpec::scaled_subjects(std::int32_t n) const {
  FCMA_CHECK(n > 0, "subject count must be positive");
  DatasetSpec s = *this;
  s.epochs_total = epochs_per_subject() * static_cast<std::size_t>(n);
  s.subjects = n;
  return s;
}

DatasetSpec face_scene_spec() {
  return DatasetSpec{.name = "face-scene",
                     .voxels = 34470,
                     .subjects = 18,
                     .epochs_total = 216,
                     .epoch_length = 12,
                     .informative = 400,
                     .signal = 0.8,
                     .ar1 = 0.3,
                     .seed = 0xFACE5CE0};
}

DatasetSpec attention_spec() {
  return DatasetSpec{.name = "attention",
                     .voxels = 25260,
                     .subjects = 30,
                     .epochs_total = 540,
                     .epoch_length = 12,
                     .informative = 300,
                     .signal = 0.8,
                     .ar1 = 0.3,
                     .seed = 0xA77E4710};
}

DatasetSpec tiny_spec() {
  return DatasetSpec{.name = "tiny",
                     .voxels = 96,
                     .subjects = 4,
                     .epochs_total = 32,
                     .epoch_length = 12,
                     .informative = 16,
                     .signal = 1.0,
                     .ar1 = 0.2,
                     .seed = 7};
}

}  // namespace fcma::fmri
