// Dataset presets matching the paper's Table 2, plus proportional scaling.
//
// The paper evaluates on two private human datasets.  Their dimensions are
// public (Table 2) and fully determine FCMA's computational behaviour, so
// the presets carry exactly those dimensions; the synthetic generator fills
// them with planted-connectivity data.
#pragma once

#include <cstdint>
#include <string>

namespace fcma::fmri {

/// Shape and generation parameters of a synthetic dataset.
struct DatasetSpec {
  std::string name;
  std::size_t voxels = 0;
  std::int32_t subjects = 0;
  std::size_t epochs_total = 0;    ///< across all subjects, half per label
  std::size_t epoch_length = 0;    ///< time points per epoch
  std::size_t informative = 0;     ///< planted informative voxels
  double signal = 0.8;             ///< latent loading on informative voxels
  double ar1 = 0.3;                ///< AR(1) coefficient of the noise
  std::uint64_t seed = 42;

  [[nodiscard]] std::size_t epochs_per_subject() const {
    return epochs_total / static_cast<std::size_t>(subjects);
  }

  /// Scales voxel-related sizes by `factor` in (0, 1]; subjects, epochs and
  /// epoch length are preserved so the protocol structure is unchanged.
  [[nodiscard]] DatasetSpec scaled_voxels(double factor) const;

  /// Scales the number of subjects (and with it total epochs).
  [[nodiscard]] DatasetSpec scaled_subjects(std::int32_t n) const;
};

/// Table 2, row 1: face-scene — 34,470 voxels, 18 subjects, 216 epochs of
/// 12 time points.
[[nodiscard]] DatasetSpec face_scene_spec();

/// Table 2, row 2: attention — 25,260 voxels, 30 subjects, 540 epochs of
/// 12 time points.
[[nodiscard]] DatasetSpec attention_spec();

/// Small deterministic spec for unit tests (runs in milliseconds).
[[nodiscard]] DatasetSpec tiny_spec();

}  // namespace fcma::fmri
